// T3 — baseline comparison: Baswana-Sen [BS07] (the paper's baseline:
// optimal stretch 2k-1 but Theta(k) iterations) against the paper's three
// algorithms, across graph families. "Who wins": the fast algorithms use
// exponentially fewer iterations at a polynomial stretch penalty.
#include <cmath>

#include "bench/bench_common.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/cluster_merging.hpp"
#include "spanner/sqrtk.hpp"
#include "spanner/tradeoff.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

int main() {
  const std::size_t n = 4096;
  const std::uint32_t k = 8;
  printHeader("T3 / baselines", "[BS07]: k-1 iters, stretch 2k-1; Sec.4: log k iters, "
                                "k^{log 3}; Sec.5(t=log k): k^{1+o(1)}; Sec.3: sqrt(k) iters, O(k)");

  struct W {
    const char* name;
    Graph g;
  };
  Rng rng(3);
  std::vector<W> workloads;
  workloads.push_back({"gnm-weighted", weightedGnm(n, 8 * n, 3)});
  workloads.push_back({"barabasi-albert",
                       barabasiAlbert(n, 4, rng, {WeightModel::kUniform, 100.0})});
  workloads.push_back({"grid64x64", grid2d(64, 64, rng, {WeightModel::kUniform, 100.0})});

  for (const W& w : workloads) {
    Table table(std::string("k=8 on ") + w.name + " (n=" +
                std::to_string(w.g.numVertices()) + ", m=" +
                std::to_string(w.g.numEdges()) + ")");
    table.header({"algorithm", "iters", "mpc rounds(g=.5)", "certified", "measured",
                  "|E_S|", "|E_S|/n"});
    auto addRow = [&](const char* name, const SpannerResult& r) {
      table.addRow({name, Table::num(r.iterations), Table::num(r.cost.mpcRounds(0.5)),
                    Table::num(r.stretchBound, 1),
                    Table::num(measuredStretch(w.g, r), 2), Table::num(r.edges.size()),
                    Table::num(double(r.edges.size()) / double(w.g.numVertices()), 2)});
    };
    addRow("baswana-sen [BS07]", buildBaswanaSen(w.g, {.k = k, .seed = 5}));
    addRow("cluster-merging (Sec.4)",
           buildClusterMergingSpanner(w.g, {.k = k, .seed = 5}));
    TradeoffParams tp;
    tp.k = k;
    tp.t = 0;
    tp.seed = 5;
    addRow("tradeoff t=log k (Sec.5)", buildTradeoffSpanner(w.g, tp));
    addRow("sqrt-k (Sec.3)", buildSqrtKSpanner(w.g, {.k = k, .seed = 5}));
    table.print();
  }
  std::printf("# expectation: BS07 lowest measured stretch and most iterations;\n"
              "# cluster-merging fewest iterations and highest stretch; the others between.\n");
  return 0;
}
