// A1 — ablations of the two design choices DESIGN.md calls out:
//
//  (a) Step B3's strictly-lighter rule: when a super-node joins its closest
//      sampled cluster with edge e, it must also add the minimum edge to
//      every neighbouring cluster lighter than e. This is what makes the
//      construction correct on *weighted* graphs (Theorem 4.8's property
//      (B)); without it the per-edge stretch certificate can fail.
//  (b) The doubly-exponential probability schedule p_i = n^{-(t+1)^{i-1}/k}
//      vs a naive fixed p = n^{-1/k}: the decreasing schedule is what makes
//      super-node counts collapse doubly exponentially (Lemma 5.12) and
//      keeps phase 2 cheap.
#include <cmath>

#include "bench/bench_common.hpp"
#include "spanner/engine.hpp"
#include "spanner/tradeoff.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

int main() {
  const std::size_t n = 4096;
  printHeader("A1 / ablations",
              "(a) strictly-lighter rule [weighted correctness]; "
              "(b) probability schedule [doubly-exponential decay]");

  // --- (a) strictly-lighter rule -------------------------------------------
  {
    Rng rng(71);
    // Heavy-tailed weights maximize the rule's bite.
    const Graph g =
        gnmRandom(n, 8 * n, rng, {WeightModel::kExponential, 1000.0}, true);
    Table table("(a) Step B3 lighter-rule on/off, k=8, t=1, heavy-tailed weights");
    table.header({"variant", "|E_S|", "max edge stretch", "certified",
                  "violations (full audit)"});
    for (bool rule : {true, false}) {
      ClusterEngine::Options opts;
      opts.seed = 73;
      opts.strictLighterRule = rule;
      ClusterEngine engine(g, 8, opts);
      const SpannerResult r = engine.run(tradeoffSchedule(n, 8, 1));
      const StretchReport report =
          verifySpanner(g, r.edges, r.stretchBound,
                        {.maxEdgeChecks = 6000, .pairSources = 0});
      table.addRow({rule ? "with rule (paper)" : "WITHOUT rule",
                    Table::num(r.edges.size()),
                    Table::num(report.maxEdgeStretch, 1),
                    Table::num(r.stretchBound, 1),
                    Table::num(report.violations)});
    }
    table.print();
  }

  // --- (b) probability schedule --------------------------------------------
  {
    Rng rng(79);
    const Graph g = gnmRandom(n, 8 * n, rng, {WeightModel::kUniform, 50.0}, true);
    const std::uint32_t k = 16;
    const double pFixed = std::pow(double(n), -1.0 / double(k));
    Table table("(b) p_i schedule: doubly-exponential vs fixed n^{-1/k} "
                "(k=16, t=1, same epoch count)");
    table.header({"schedule", "epochs", "supernodes at last epoch", "|E_S|",
                  "measured stretch"});

    ClusterEngine::Options opts;
    opts.seed = 83;
    {
      ClusterEngine engine(g, k, opts);
      const SpannerResult r = engine.run(tradeoffSchedule(n, k, 1));
      table.addRow({"n^{-2^{i-1}/k} (paper)", Table::num(r.epochs),
                    Table::num(r.supernodesPerEpoch.back()),
                    Table::num(r.edges.size()),
                    Table::num(measuredStretch(g, r), 2)});
    }
    {
      std::vector<EpochSpec> fixed(tradeoffSchedule(n, k, 1).size());
      for (auto& e : fixed) {
        e.iterations = 1;
        e.prob = [pFixed](std::size_t) { return pFixed; };
        e.contractAfter = true;
      }
      ClusterEngine engine(g, k, opts);
      const SpannerResult r = engine.run(fixed);
      table.addRow({"fixed n^{-1/k}", Table::num(r.epochs),
                    Table::num(r.supernodesPerEpoch.back()),
                    Table::num(r.edges.size()),
                    Table::num(measuredStretch(g, r), 2)});
    }
    table.print();
  }
  std::printf("# expectation: (a) removing the rule produces certificate violations\n"
              "# on weighted inputs (stretch above the certified bound) — with it,\n"
              "# zero; (b) the fixed schedule leaves orders of magnitude more\n"
              "# super-nodes alive at the last epoch, inflating phase-2 size.\n");
  return 0;
}
