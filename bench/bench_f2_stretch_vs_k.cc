// F2 — stretch scaling (figure): measured max pairwise stretch vs k for
// each algorithm. The paper's crossover story: [BS07] has the least stretch
// (2k-1) but Theta(k) rounds; the fast algorithms pay k^s with s in
// (1, log2 3].
#include <cmath>

#include "bench/bench_common.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/cluster_merging.hpp"
#include "spanner/sqrtk.hpp"
#include "spanner/tradeoff.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

int main() {
  const std::size_t n = 2048;
  const Graph g = weightedGnm(n, 10 * n, /*seed=*/41);

  printHeader("F2 / stretch vs k",
              "measured stretch per algorithm; BS07 smallest, t=1 largest");
  std::printf("# workload: weighted G(n=%zu, m=%zu); 6-source pairwise audit\n", n,
              g.numEdges());

  Table table("measured max pairwise stretch vs k");
  table.header({"k", "bs07 (2k-1)", "cluster-merging", "tradeoff t=logk", "sqrtk",
                "bs07 iters", "cm iters"});
  for (std::uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
    const auto bs = buildBaswanaSen(g, {.k = k, .seed = 43});
    const auto cm = buildClusterMergingSpanner(g, {.k = k, .seed = 43});
    TradeoffParams tp;
    tp.k = k;
    tp.t = 0;
    tp.seed = 43;
    const auto to = buildTradeoffSpanner(g, tp);
    const auto sq = buildSqrtKSpanner(g, {.k = k, .seed = 43});
    table.addRow({Table::num(int(k)), Table::num(measuredStretch(g, bs), 2),
                  Table::num(measuredStretch(g, cm), 2),
                  Table::num(measuredStretch(g, to), 2),
                  Table::num(measuredStretch(g, sq), 2), Table::num(bs.iterations),
                  Table::num(cm.iterations)});
  }
  table.print();
  std::printf("# expectation: every column grows with k; BS07 column smallest;\n"
              "# cluster-merging grows fastest (k^{log2 3} worst case), with the\n"
              "# trade-off and sqrt-k columns in between.\n");
  return 0;
}
