// F5 — weak scaling (figure): the paper's round counts depend on k (and
// gamma), NOT on n. Fixing k and growing n by 64x must leave the round
// ledger untouched while the work (edges touched) grows linearly — the
// defining property of an MPC algorithm in the strongly sublinear regime.
#include <chrono>
#include <cmath>

#include "bench/bench_common.hpp"
#include "spanner/tradeoff.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

int main() {
  const std::uint32_t k = 8, t = 2;
  printHeader("F5 / weak scaling",
              "rounds independent of n at fixed k (Theorem 1.1); host time ~ m");

  Table table("n sweep at k=8, t=2 (weighted G(n, 8n))");
  table.header({"n", "m", "iters", "mpc rounds(g=.5)", "|E_S|", "|E_S|/n",
                "host ms", "ms/edge (x1e-3)"});
  for (std::size_t n : {1024u, 4096u, 16384u, 65536u}) {
    const Graph g = weightedGnm(n, 8 * n, /*seed=*/n + 9);
    TradeoffParams p;
    p.k = k;
    p.t = t;
    p.seed = 91;
    const auto start = std::chrono::steady_clock::now();
    const SpannerResult r = buildTradeoffSpanner(g, p);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    table.addRow({Table::num(n), Table::num(g.numEdges()), Table::num(r.iterations),
                  Table::num(r.cost.mpcRounds(0.5)), Table::num(r.edges.size()),
                  Table::num(double(r.edges.size()) / double(n), 2),
                  Table::num(ms, 1),
                  Table::num(1000.0 * ms / double(g.numEdges()), 3)});
  }
  table.print();
  std::printf("# expectation: the rounds column is constant over a 64x growth in\n"
              "# n; host time per edge is flat (linear total work).\n");
  return 0;
}
