// F5 — weak scaling (figure): the paper's round counts depend on k (and
// gamma), NOT on n. Fixing k and growing n by 64x must leave the round
// ledger untouched while the work (edges touched) grows linearly — the
// defining property of an MPC algorithm in the strongly sublinear regime.
//
// The sweep runs end-to-end through distIterationKernel (every find-minimum
// of every iteration moves real tuples through capacity-enforced simulator
// rounds via buildDistributedTradeoff), so the timed path IS the
// distributed path; the host ClusterEngine run is kept only as the
// per-edge-work reference. Lanes/shards follow MPCSPAN_THREADS /
// MPCSPAN_SHARDS.
#include <chrono>
#include <cmath>

#include "bench/bench_common.hpp"
#include "mpc/dist_spanner.hpp"
#include "spanner/tradeoff.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  const std::uint32_t k = 8, t = 2;
  printHeader("F5 / weak scaling",
              "simulator rounds independent of n at fixed k (Theorem 1.1); "
              "distributed time ~ m");
  BenchJson json("f5_weak_scaling");

  Table table("n sweep at k=8, t=2 (weighted G(n, 8n)), distributed path");
  table.header({"n", "m", "iters", "sim rounds", "words moved", "|E_S|",
                "|E_S|/n", "dist ms", "ms/edge (x1e-3)", "host ms"});
  for (std::size_t n : {1024u, 4096u, 16384u, 65536u}) {
    const Graph g = weightedGnm(n, 8 * n, /*seed=*/n + 9);

    MpcSimulator sim(MpcConfig::forInput(8 * g.numEdges(), 0.6, 3.0));
    const auto distStart = std::chrono::steady_clock::now();
    const DistSpannerResult dist = buildDistributedTradeoff(sim, g, k, t, 91);
    const double distMs = msSince(distStart);

    TradeoffParams p;
    p.k = k;
    p.t = t;
    p.seed = 91;
    const auto hostStart = std::chrono::steady_clock::now();
    const SpannerResult host = buildTradeoffSpanner(g, p);
    const double hostMs = msSince(hostStart);
    if (dist.edges != host.edges)
      std::printf("# WARNING: distributed/host spanner mismatch at n=%zu\n", n);

    table.addRow({Table::num(n), Table::num(g.numEdges()),
                  Table::num(dist.iterations), Table::num(dist.simulatorRounds),
                  Table::num(dist.wordsMoved), Table::num(dist.edges.size()),
                  Table::num(double(dist.edges.size()) / double(n), 2),
                  Table::num(distMs, 1),
                  Table::num(1000.0 * distMs / double(g.numEdges()), 3),
                  Table::num(hostMs, 1)});
    json.record({{"n", double(n)},
                 {"m", double(g.numEdges())},
                 {"sim_rounds", double(dist.simulatorRounds)},
                 {"words_moved", double(dist.wordsMoved)},
                 {"dist_ms", distMs},
                 {"host_ms", hostMs}});
  }
  table.print();
  std::printf("# expectation: the sim-rounds column is constant over a 64x growth in\n"
              "# n (weak scaling); distributed time per edge is flat (linear total\n"
              "# work through the machine rounds).\n");
  return 0;
}
