// F4 — the paper's central message as a frontier plot: (iterations,
// measured stretch) pairs over t, with [BS07] as the anchor. poly(log k)
// iterations suffice for k^{1+o(1)} stretch.
#include <cmath>

#include "bench/bench_common.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/tradeoff.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

int main() {
  const std::size_t n = 4096;
  const std::uint32_t k = 32;
  const Graph g = weightedGnm(n, 12 * n, /*seed=*/61);

  printHeader("F4 / round-stretch frontier",
              "poly(log k) rounds for k^{1+o(1)} stretch (vs Theta(k) rounds for 2k-1)");
  std::printf("# workload: weighted G(n=%zu, m=%zu), k=%u\n", n, g.numEdges(), k);

  Table table("frontier points (iterations vs stretch)");
  table.header({"point", "iters", "mpc rounds(g=.5)", "certified", "measured",
                "|E_S|"});
  for (std::uint32_t t : {1u, 2u, 3u, 5u, 8u, 16u, 32u}) {
    TradeoffParams p;
    p.k = k;
    p.t = t;
    p.seed = 67;
    const SpannerResult r = buildTradeoffSpanner(g, p);
    table.addRow({"tradeoff t=" + std::to_string(t), Table::num(r.iterations),
                  Table::num(r.cost.mpcRounds(0.5)), Table::num(r.stretchBound, 1),
                  Table::num(measuredStretch(g, r), 2), Table::num(r.edges.size())});
  }
  const SpannerResult bs = buildBaswanaSen(g, {.k = k, .seed = 67});
  table.addRow({"baswana-sen", Table::num(bs.iterations),
                Table::num(bs.cost.mpcRounds(0.5)), Table::num(bs.stretchBound, 1),
                Table::num(measuredStretch(g, bs), 2), Table::num(bs.edges.size())});
  table.print();
  std::printf("# expectation: moving down the t column trades iterations for\n"
              "# stretch; Baswana-Sen sits at the (most iterations, least stretch)\n"
              "# end of the frontier.\n");
  return 0;
}
