// Shared helpers for the table/figure benchmark binaries. Each binary
// regenerates one entry of DESIGN.md's per-experiment index and prints a
// markdown table; EXPERIMENTS.md records the paper-vs-measured comparison.
#pragma once

#include <cstdio>
#include <string>

#include "graph/generators.hpp"
#include "spanner/types.hpp"
#include "spanner/verify.hpp"
#include "util/table.hpp"

namespace mpcspan::bench {

/// Standard weighted G(n,m) workload (connected overlay).
inline Graph weightedGnm(std::size_t n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  return gnmRandom(n, m, rng, {WeightModel::kUniform, 100.0}, /*connected=*/true);
}

inline Graph unweightedGnm(std::size_t n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  return gnmRandom(n, m, rng, {}, /*connected=*/true);
}

/// Max pairwise stretch over `sources` Dijkstra sources (cheap audit).
inline double measuredStretch(const Graph& g, const SpannerResult& r,
                              std::size_t sources = 6) {
  return measurePairStretch(g, r.edges, sources, /*seed=*/12345);
}

/// |E_S| / (n^{1+1/k} * extra) — the size-bound constant.
inline double sizeConstant(const SpannerResult& r, double extra) {
  return r.sizeRatio(extra);
}

inline void printHeader(const char* id, const char* claim) {
  std::printf("\n##### %s\n# paper claim: %s\n", id, claim);
}

}  // namespace mpcspan::bench
