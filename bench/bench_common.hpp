// Shared helpers for the table/figure benchmark binaries. Each binary
// regenerates one entry of DESIGN.md's per-experiment index and prints a
// markdown table; EXPERIMENTS.md records the paper-vs-measured comparison.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "runtime/shard/sharded_engine.hpp"
#include "runtime/thread_pool.hpp"
#include "spanner/types.hpp"
#include "spanner/verify.hpp"
#include "util/table.hpp"

namespace mpcspan::bench {

/// Standard weighted G(n,m) workload (connected overlay).
inline Graph weightedGnm(std::size_t n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  return gnmRandom(n, m, rng, {WeightModel::kUniform, 100.0}, /*connected=*/true);
}

inline Graph unweightedGnm(std::size_t n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  return gnmRandom(n, m, rng, {}, /*connected=*/true);
}

/// Max pairwise stretch over `sources` Dijkstra sources (cheap audit).
inline double measuredStretch(const Graph& g, const SpannerResult& r,
                              std::size_t sources = 6) {
  return measurePairStretch(g, r.edges, sources, /*seed=*/12345);
}

/// |E_S| / (n^{1+1/k} * extra) — the size-bound constant.
inline double sizeConstant(const SpannerResult& r, double extra) {
  return r.sizeRatio(extra);
}

inline void printHeader(const char* id, const char* claim) {
  std::printf("\n##### %s\n# paper claim: %s\n", id, claim);
}

/// Machine-readable benchmark sink for the CI benchmark matrix: when the
/// MPCSPAN_BENCH_JSON env var names a path, every record() becomes one
/// object in that file's `results` array, stamped with the bench name and
/// the pool-lane / shard configuration the process ran under. Without the
/// env var the writer is inert, so interactive table output is unchanged.
class BenchJson {
 public:
  explicit BenchJson(std::string benchName) : bench_(std::move(benchName)) {
    if (const char* p = std::getenv("MPCSPAN_BENCH_JSON")) path_ = p;
  }

  void record(
      std::initializer_list<std::pair<const char*, double>> fields) {
    if (path_.empty()) return;
    std::string row = "    {";
    bool first = true;
    for (const auto& [key, value] : fields) {
      char buf[64];
      // Ledger counters (rounds, words) must survive exactly — they are the
      // cross-config bit-identity signal; only genuine reals get rounded.
      if (value == static_cast<double>(static_cast<long long>(value)))
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
      else
        std::snprintf(buf, sizeof(buf), "%.6g", value);
      row += std::string(first ? "" : ", ") + "\"" + key + "\": " + buf;
      first = false;
    }
    row += "}";
    rows_.push_back(std::move(row));
  }

  ~BenchJson() {
    if (path_.empty() || rows_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (!f) return;
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"lanes\": %zu,\n  \"shards\": %zu,\n  \"results\": [\n",
                 bench_.c_str(), runtime::ThreadPool::defaultThreads(),
                 runtime::shard::ShardedEngine::defaultShards());
    for (std::size_t i = 0; i < rows_.size(); ++i)
      std::fprintf(f, "%s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

 private:
  std::string bench_;
  std::string path_;
  std::vector<std::string> rows_;
};

}  // namespace mpcspan::bench
