// T7 — Corollary 1.5 + Theorem 8.1: weighted APSP in the Congested Clique.
// Spanner rounds (with the O(1)/iteration repetition overhead), Lenzen
// collection rounds, w.h.p. size behaviour across seeds, and approximation.
#include <cmath>

#include "bench/bench_common.hpp"
#include "cclique/apsp_cc.hpp"
#include "graph/distance.hpp"
#include "util/stats.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

int main() {
  printHeader("T7 / Corollary 1.5 + Theorem 8.1",
              "first sublogarithmic weighted APSP in Congested Clique: "
              "O(t log log n / log(t+1)) rounds incl. spanner collection");

  Table table("n sweep (auto k = log n, t = log log n)");
  table.header({"n", "m", "k", "t", "spanner rds", "collect rds", "total",
                "|E_S|", "|E_S|/n", "retries", "max approx"});
  for (std::size_t n : {512u, 2048u, 8192u}) {
    const Graph g = weightedGnm(n, 8 * n, /*seed=*/n + 1);
    const CcApspResult r = runCcApsp(g, {.seed = 23});
    // approximation audit from two sources
    double worst = 1.0;
    for (VertexId src : {VertexId(0), VertexId(n / 2)}) {
      const auto exact = dijkstra(g, src);
      const auto approx = r.distancesFrom(g, src);
      for (VertexId v = 0; v < g.numVertices(); ++v)
        if (v != src && exact[v] != kInfDist && exact[v] > 0)
          worst = std::max(worst, approx[v] / exact[v]);
    }
    table.addRow({Table::num(n), Table::num(g.numEdges()), Table::num(int(r.kUsed)),
                  Table::num(int(r.tUsed)), Table::num(r.spannerRounds),
                  Table::num(r.collectRounds), Table::num(r.totalRounds),
                  Table::num(r.spanner.edges.size()),
                  Table::num(double(r.spanner.edges.size()) / double(n), 2),
                  Table::num(r.spanner.repetition.iterationsWithRetry),
                  Table::num(worst, 2)});
  }

  table.print();

  // w.h.p. size: the repetition machinery should keep every seed's size
  // inside one envelope (Theorem 8.1 vs the expectation-only MPC run).
  const std::size_t n = 2048;
  const Graph g = weightedGnm(n, 8 * n, /*seed=*/77);
  std::vector<double> sizes;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const CcApspResult r = runCcApsp(g, {.seed = seed});
    sizes.push_back(double(r.spanner.edges.size()));
  }
  const Summary s = summarize(sizes);
  std::printf("\nw.h.p. size across 10 seeds (n=%zu): min=%.0f p50=%.0f max=%.0f "
              "(max/min = %.3f)\n",
              n, s.min, s.p50, s.max, s.max / s.min);
  std::printf("# expectation: collect rounds ~ 2|E_S|/n ~ O(log log n)-ish scaling;\n"
              "# size spread across seeds stays within a small constant factor.\n");
  return 0;
}
