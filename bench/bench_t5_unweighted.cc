// T5 — Theorem 1.3 / Appendix B: unweighted O(k)-stretch spanners in
// O(log k / gamma) rounds with total memory O(m + n^{1+gamma}). Reports the
// sparse/dense split, hitting-set machinery and size/stretch per k, on two
// regimes:
//   - grid: bounded degree, so (4k)-hop balls are ~(4k)^2 vertices and the
//     sparse/dense classification genuinely splits the graph;
//   - G(n,m): expander-like, every ball explodes, everything is dense and
//     the hitting-set + auxiliary-spanner path carries the whole load.
#include <cmath>

#include "bench/bench_common.hpp"
#include "spanner/unweighted_fast.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

namespace {

void sweep(const char* name, const Graph& g, double gamma,
           std::initializer_list<std::uint32_t> ks, std::size_t cap = 0) {
  Table table(std::string(name) + " (n=" + std::to_string(g.numVertices()) +
              ", m=" + std::to_string(g.numEdges()) + ", gamma=" +
              Table::num(gamma, 2) + ")");
  table.header({"k", "sparse", "dense", "|Z|", "unhit", "bs-kept", "forest",
                "aux", "|E_S|", "size/(k n^{1+1/k})", "measured", "supersteps"});
  const double n = double(g.numVertices());
  for (std::uint32_t k : ks) {
    const UnweightedFastResult r =
        buildUnweightedFastSpanner(
            g, {.k = k, .gamma = gamma, .seed = 17, .capOverride = cap});
    const double denom = double(k) * std::pow(n, 1.0 + 1.0 / double(k));
    table.addRow({Table::num(int(k)), Table::num(r.sparseVertices),
                  Table::num(r.denseVertices), Table::num(r.hittingSetSize),
                  Table::num(r.unhitDense), Table::num(r.bsEdgesKept),
                  Table::num(r.forestEdges), Table::num(r.auxEdges),
                  Table::num(r.spanner.edges.size()),
                  Table::num(double(r.spanner.edges.size()) / denom, 3),
                  Table::num(measuredStretch(g, r.spanner), 2),
                  Table::num(r.spanner.cost.supersteps())});
  }
  table.print();
}

}  // namespace

int main() {
  printHeader("T5 / Theorem 1.3",
              "O(log k / gamma) rounds, stretch O(k), size O(k n^{1+1/k}), "
              "memory O(m + n^{1+gamma})");

  Rng rng(5);
  // The asymptotic cap n^{gamma/2} is meaningful only at astronomically
  // large n; capOverride = 256 emulates that regime at bench scale (it
  // corresponds to n ~ 256^{2/gamma}; see UnweightedFastParams).
  const Graph grid = grid2d(64, 64, rng);
  sweep("grid, cap=256 (sparse->dense transition)", grid, 0.5, {2, 3, 4, 6}, 256);

  const Graph g = unweightedGnm(4096, 8 * 4096, /*seed=*/5);
  sweep("gnm, cap=256 (dense-dominant: balls explode)", g, 0.5, {2, 4, 8}, 256);
  sweep("gnm, paper cap n^{gamma/2} (degenerate at this n)", g, 0.5, {2, 4, 8});

  std::printf("# expectation: supersteps grow ~log k (exponentiation doublings).\n"
              "# On the grid, small k keeps vertices sparse (Baswana-Sen path) and\n"
              "# larger k flips them dense, engaging the forest + hitting set + aux\n"
              "# spanner; on gnm everything is dense at any realistic cap.\n");
  return 0;
}
