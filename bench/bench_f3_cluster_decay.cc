// F3 — the mechanism behind the speedup (figure): super-node counts decay
// doubly exponentially across epochs (Lemma 4.12 / Lemma 5.12):
// E[|V^(i)|] = n^{1 - ((t+1)^i - 1)/k}.
#include <cmath>

#include "bench/bench_common.hpp"
#include "spanner/tradeoff.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

int main() {
  const std::size_t n = 32768;
  const std::uint32_t k = 16;
  const Graph g = weightedGnm(n, 4 * n, /*seed=*/53);

  printHeader("F3 / cluster decay",
              "E[supernodes at epoch i] = n^{1-((t+1)^i-1)/k}  (Lemma 5.12)");
  std::printf("# workload: weighted G(n=%zu, m=%zu), k=%u\n", n, g.numEdges(), k);

  for (std::uint32_t t : {1u, 2u}) {
    TradeoffParams p;
    p.k = k;
    p.t = t;
    p.seed = 59;
    const SpannerResult r = buildTradeoffSpanner(g, p);
    Table table("t = " + std::to_string(t) + " (epochs = " +
                std::to_string(r.epochs) + ")");
    table.header({"epoch", "supernodes", "predicted n^{1-((t+1)^i-1)/k}",
                  "ratio", "sampling p"});
    for (std::size_t i = 0; i < r.supernodesPerEpoch.size(); ++i) {
      const double predicted = std::pow(
          double(n), 1.0 - (std::pow(double(t) + 1.0, double(i)) - 1.0) / double(k));
      table.addRow({Table::num(i), Table::num(r.supernodesPerEpoch[i]),
                    Table::num(predicted, 1),
                    Table::num(double(r.supernodesPerEpoch[i]) / predicted, 3),
                    Table::num(r.samplingProbs[i], 5)});
    }
    table.print();
  }
  std::printf("# expectation: the measured counts track the doubly-exponential\n"
              "# prediction within a small constant (exits make them smaller).\n");
  return 0;
}
