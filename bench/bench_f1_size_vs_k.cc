// F1 — size-bound validation (figure): the constant
// |E_S| / (n^{1+1/k} (t + log k)) stays O(1) as k grows, for the trade-off
// algorithm (Theorem 5.15) and the [BS07] baseline (k n^{1+1/k}).
#include <cmath>

#include "bench/bench_common.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/tradeoff.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

int main() {
  const std::size_t n = 8192;
  const Graph g = weightedGnm(n, 16 * n, /*seed=*/31);

  printHeader("F1 / size vs k",
              "|E_S| = O(n^{1+1/k}(t+log k)) [Thm 5.15] and O(k n^{1+1/k}) [BS07]");
  std::printf("# workload: weighted G(n=%zu, m=%zu); series over k\n", n, g.numEdges());

  Table table("size constants vs k (t = log k for the trade-off)");
  table.header({"k", "tradeoff |E_S|", "tradeoff const", "bs07 |E_S|", "bs07 const",
                "graph m"});
  for (std::uint32_t k : {2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u}) {
    TradeoffParams p;
    p.k = k;
    p.t = 0;
    p.seed = 37;
    const SpannerResult tr = buildTradeoffSpanner(g, p);
    const SpannerResult bs = buildBaswanaSen(g, {.k = k, .seed = 37});
    const double logk = std::max(1.0, std::log2(double(k)));
    table.addRow({Table::num(int(k)), Table::num(tr.edges.size()),
                  Table::num(tr.sizeRatio(double(tr.t) + logk), 3),
                  Table::num(bs.edges.size()), Table::num(bs.sizeRatio(double(k)), 3),
                  Table::num(g.numEdges())});
  }
  table.print();
  std::printf("# expectation: both constants bounded (no growth with k); spanner size\n"
              "# falls toward ~n as k rises while the input stays m=%zu.\n", g.numEdges());
  return 0;
}
