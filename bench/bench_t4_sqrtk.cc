// T4 — Section 3: O(sqrt(k)) rounds, stretch O(k), size O(sqrt(k) n^{1+1/k}).
// Sweep k on unweighted G(n,m); compare the iteration count against
// Baswana-Sen's k-1 and check the near-linear stretch scaling.
#include <cmath>

#include "bench/bench_common.hpp"
#include "spanner/sqrtk.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

int main() {
  const std::size_t n = 4096;
  const Graph g = unweightedGnm(n, 8 * n, /*seed=*/4);

  printHeader("T4 / Section 3", "O(sqrt k) rounds, stretch O(k), size O(sqrt(k) n^{1+1/k})");
  std::printf("# workload: unweighted G(n=%zu, m=%zu)\n", n, g.numEdges());

  Table table("k sweep");
  table.header({"k", "iters", "BS07 iters (k-1)", "mpc rounds(g=.5)", "certified",
                "measured", "certified/k", "|E_S|", "size/(sqrt(k) n^{1+1/k})"});
  for (std::uint32_t k : {4u, 9u, 16u, 25u, 36u, 49u}) {
    const SpannerResult r = buildSqrtKSpanner(g, {.k = k, .seed = 13});
    const double denom = std::sqrt(double(k)) *
                         std::pow(double(n), 1.0 + 1.0 / double(k));
    table.addRow({Table::num(int(k)), Table::num(r.iterations),
                  Table::num(int(k - 1)), Table::num(r.cost.mpcRounds(0.5)),
                  Table::num(r.stretchBound, 1), Table::num(measuredStretch(g, r), 2),
                  Table::num(r.stretchBound / double(k), 2),
                  Table::num(r.edges.size()),
                  Table::num(double(r.edges.size()) / denom, 3)});
  }
  table.print();
  std::printf("# expectation: iters ~ 2*sqrt(k) << k-1; certified/k roughly constant\n"
              "# (stretch linear in k); size constant stays O(1).\n");
  return 0;
}
