// Query-path benchmark: per-tier latency and end-to-end tiered throughput.
//
// Builds one artifact (tradeoff spanner + TZ sketches), assembles the
// canonical serving stack (sketch -> spanner-cache -> exact), then measures:
//   - per-tier p50/p99 query latency, each tier driven directly with a
//     workload it can answer (the spanner tier from warmed sources),
//   - tiered qps + latency percentiles at 1 thread and at the default pool
//     width, concurrent clients hammering one TieredOracle.
//
// With MPCSPAN_BENCH_JSON set, emits one row per tier and one row per
// thread count (BENCH_query_path.json in the CI benchmark job).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_common.hpp"
#include "query/build.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace mpcspan;
using Clock = std::chrono::steady_clock;

namespace {

double usSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

/// Client-side latency samples for `q` queries against one provider.
std::vector<double> sampleLatencies(const query::DistanceProvider& p,
                                    const std::vector<query::QueryPair>& pairs) {
  std::vector<double> us;
  us.reserve(pairs.size());
  double sink = 0;  // defeat dead-code elimination
  for (const auto& [u, v] : pairs) {
    const auto t0 = Clock::now();
    sink += p.tryQuery(u, v);
    us.push_back(usSince(t0));
  }
  if (sink == 42.5) std::printf("!");
  return us;
}

std::vector<query::QueryPair> randomPairs(std::size_t q, std::size_t n,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<query::QueryPair> pairs(q);
  for (auto& p : pairs)
    p = {static_cast<VertexId>(rng.next(n)), static_cast<VertexId>(rng.next(n))};
  return pairs;
}

}  // namespace

int main() {
  bench::printHeader("query-path",
                     "build once, serve many: tier latency + tiered qps");
  bench::BenchJson json("query_path");

  const std::size_t n = 3000, m = 24000;
  const Graph g = bench::weightedGnm(n, m, /*seed=*/7);

  query::BuildPlan plan;
  plan.algo = "tradeoff";
  plan.k = 6;
  plan.sketchK = 3;
  plan.cacheSources = 256;
  const query::QueryArtifact a = query::buildArtifact(g, plan);
  std::printf("artifact: n=%zu m=%zu, spanner %zu edges, sketch %zu entries\n",
              n, m, a.spannerEdges.size(), a.sketches.totalBunchEntries());

  query::QueryPlane plane = query::makeQueryPlane(a);

  // Warm the oracle from a small source pool so the spanner-cache tier has
  // resident rows to answer from.
  runtime::ThreadPool pool;
  std::vector<VertexId> warmPool;
  Rng wrng(99);
  for (std::size_t i = 0; i < 128; ++i)
    warmPool.push_back(static_cast<VertexId>(wrng.next(n)));
  plane.oracle->warm(warmPool, pool);

  // --- Per-tier latency, each tier driven with answerable load. ---
  struct TierRun {
    const char* label;
    const query::DistanceProvider* provider;
    std::vector<query::QueryPair> pairs;
  };
  // Spanner tier: sources from the warm pool, so cached rows answer.
  std::vector<query::QueryPair> warmPairs;
  Rng prng(5);
  for (std::size_t i = 0; i < 20000; ++i)
    warmPairs.push_back({warmPool[prng.next(warmPool.size())],
                         static_cast<VertexId>(prng.next(n))});
  std::vector<TierRun> runs;
  runs.push_back({"sketch", &plane.tiered->tier(0), randomPairs(20000, n, 11)});
  runs.push_back({"spanner-cache", &plane.tiered->tier(1), std::move(warmPairs)});
  runs.push_back({"exact", &plane.tiered->tier(2), randomPairs(300, n, 13)});

  std::printf("\n%-14s %8s %10s %10s\n", "tier", "queries", "p50-us", "p99-us");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    auto us = sampleLatencies(*runs[i].provider, runs[i].pairs);
    const Summary s = summarize(us);
    std::printf("%-14s %8zu %10.2f %10.2f\n", runs[i].label, s.count, s.p50,
                s.p99);
    json.record({{"tier", static_cast<double>(i)},
                 {"queries", static_cast<double>(s.count)},
                 {"p50_us", s.p50},
                 {"p99_us", s.p99}});
  }

  // --- Tiered throughput at 1 and N client threads. ---
  const std::size_t q = 40000;
  const auto pairs = randomPairs(q, n, 17);
  std::printf("\n%-8s %10s %10s %10s\n", "threads", "qps", "p50-us", "p99-us");
  for (std::size_t threads :
       {std::size_t{1}, runtime::ThreadPool::defaultThreads()}) {
    runtime::ThreadPool clients(threads);
    std::vector<double> us(q);
    std::vector<Weight> answers(q);
    const auto t0 = Clock::now();
    clients.parallelFor(q, [&](std::size_t i) {
      const auto s0 = Clock::now();
      answers[i] = plane.tiered->query(pairs[i].first, pairs[i].second);
      us[i] = usSince(s0);
    });
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const Summary s = summarize(us);
    const double qps = elapsed > 0 ? static_cast<double>(q) / elapsed : 0.0;
    std::printf("%-8zu %10.0f %10.2f %10.2f\n", threads, qps, s.p50, s.p99);
    json.record({{"threads", static_cast<double>(threads)},
                 {"qps", qps},
                 {"p50_us", s.p50},
                 {"p99_us", s.p99}});
    if (threads == runtime::ThreadPool::defaultThreads()) break;
  }

  const auto stats = plane.tiered->stats();
  std::printf("\ntier hit mix:");
  for (const auto& s : stats)
    std::printf(" %s=%llu", s.name.c_str(),
                static_cast<unsigned long long>(s.hits));
  std::printf("\n");
  return 0;
}
