// T8 — Section 6 / Lemma 6.1: the distributed primitives (sort, broadcast,
// group-by-min) run in O(1/gamma) rounds on the word-accurate machine
// simulator, across gamma and input size. These are the primitives every
// spanner iteration charges.
//
// Also the CI pool-scaling probe: wall-clock per primitive is measured and,
// under MPCSPAN_BENCH_JSON, written machine-readably so the benchmark job
// can compare 1-lane vs N-lane (and sharded) runs. Lanes and shards come
// from MPCSPAN_THREADS / MPCSPAN_SHARDS as everywhere else.
#include <algorithm>
#include <chrono>
#include <cmath>

#include "bench/bench_common.hpp"
#include "mpc/primitives.hpp"
#include "util/rng.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

namespace {

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  printHeader("T8 / Lemma 6.1",
              "sort / broadcast / find-min in O(1/gamma) MPC rounds, "
              "memory n^gamma per machine");
  BenchJson json("t8_primitives");

  Table table("primitive rounds vs gamma and N");
  table.header({"N", "gamma", "machines", "words/machine", "floored?", "sort rds",
                "broadcast rds", "group-min rds", "total words", "sort ms",
                "gmin ms"});
  for (std::size_t N : {4096u, 16384u, 65536u}) {
    for (double gamma : {0.55, 0.7, 0.85}) {
      const MpcConfig cfg = MpcConfig::forInput(N, gamma, /*slack=*/3.0);
      MpcSimulator sim(cfg);
      Rng rng(N + static_cast<std::size_t>(gamma * 100));
      std::vector<std::uint64_t> data(N);
      for (auto& x : data) x = rng.next(1u << 20);

      DistVector<std::uint64_t> dv(sim, data);
      const std::size_t r0 = sim.rounds();
      const auto tSort = std::chrono::steady_clock::now();
      distSort(dv, std::less<>());
      const double sortMs = msSince(tSort);
      const std::size_t sortRounds = sim.rounds() - r0;

      const std::size_t r1 = sim.rounds();
      const auto tBcast = std::chrono::steady_clock::now();
      treeBroadcastWords(sim, {1, 2, 3, 4});
      const double bcastMs = msSince(tBcast);
      const std::size_t bcastRounds = sim.rounds() - r1;

      const std::size_t r2 = sim.rounds();
      auto keyOf = [](std::uint64_t x) { return x >> 8; };
      auto better = [](std::uint64_t a, std::uint64_t b) { return a < b; };
      const auto tGmin = std::chrono::steady_clock::now();
      segmentedMinSorted(dv, keyOf, better);
      const double gminMs = msSince(tGmin);
      const std::size_t gminRounds = sim.rounds() - r2;

      const bool floored =
          cfg.wordsPerMachine >
          static_cast<std::size_t>(std::pow(double(N), gamma)) + 1;
      table.addRow({Table::num(N), Table::num(gamma, 2),
                    Table::num(cfg.numMachines), Table::num(cfg.wordsPerMachine),
                    floored ? "yes" : "no", Table::num(sortRounds),
                    Table::num(bcastRounds), Table::num(gminRounds),
                    Table::num(sim.totalWordsSent()), Table::num(sortMs, 2),
                    Table::num(gminMs, 2)});
      json.record({{"n", double(N)},
                   {"gamma", gamma},
                   {"machines", double(cfg.numMachines)},
                   {"sort_rounds", double(sortRounds)},
                   {"sort_ms", sortMs},
                   {"bcast_ms", bcastMs},
                   {"gmin_ms", gminMs},
                   {"total_words", double(sim.totalWordsSent())}});
    }
  }
  table.print();
  std::printf("# expectation: all round counts stay O(1) and do NOT grow with N at fixed\n"
              "# gamma. (\"floored?\" marks configs where the simulator raised S to the\n"
              "# coordinator floor ~sqrt(N); see MpcConfig::forInput.)\n");
  return 0;
}
