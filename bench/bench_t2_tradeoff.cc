// T2 — Theorem 1.1 / Theorem 5.15: the full trade-off sweep over t at fixed
// k. Rounds O(t log k / log(t+1)); stretch O(k^s), s = log(2t+1)/log(t+1);
// size O(n^{1+1/k} (t + log k)).
#include <cmath>

#include "bench/bench_common.hpp"
#include "spanner/tradeoff.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

int main() {
  const std::size_t n = 4096;
  const std::uint32_t k = 16;
  const Graph g = weightedGnm(n, 16 * n, /*seed=*/2);

  printHeader("T2 / Theorem 1.1", "rounds O(t log k/log(t+1)), stretch O(k^s), "
                                  "size O(n^{1+1/k}(t+log k))");
  std::printf("# workload: weighted G(n=%zu, m=%zu), k=%u\n", n, g.numEdges(), k);

  Table table("t sweep at k=16");
  table.header({"t", "epochs", "iters", "mpc rounds(g=.5)", "s", "k^s",
                "certified", "measured", "|E_S|", "size-const"});
  for (std::uint32_t t : {1u, 2u, 3u, 4u, 8u, 16u}) {
    TradeoffParams p;
    p.k = k;
    p.t = t;
    p.seed = 11;
    const SpannerResult r = buildTradeoffSpanner(g, p);
    const double s = tradeoffStretchExponent(t);
    table.addRow({Table::num(int(t)), Table::num(r.epochs), Table::num(r.iterations),
                  Table::num(r.cost.mpcRounds(0.5)), Table::num(s, 3),
                  Table::num(std::pow(double(k), s), 1),
                  Table::num(r.stretchBound, 1), Table::num(measuredStretch(g, r), 2),
                  Table::num(r.edges.size()),
                  Table::num(sizeConstant(r, t + std::log2(double(k))), 3)});
  }
  table.print();
  std::printf("# expectation: iterations grow ~t/log(t+1) * log k; stretch exponent\n"
              "# s falls from log2(3)=1.585 toward 1; crossover: t=k is Baswana-Sen.\n");
  return 0;
}
