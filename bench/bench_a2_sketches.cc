// A2 — the [DN19] application the paper highlights: distance-sketch
// (Thorup–Zwick) preprocessing accelerated by first sparsifying with a
// spanner. Compares preprocessing relaxations, sketch storage, and realized
// approximation for sketches built directly on G vs on its spanner.
#include <cmath>

#include "apsp/sketches.hpp"
#include "bench/bench_common.hpp"
#include "graph/distance.hpp"
#include "spanner/tradeoff.hpp"
#include "util/stats.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

namespace {

std::pair<double, double> auditSketch(const Graph& g, const DistanceSketches& sk,
                                      std::size_t queries) {
  Rng pick(4242);
  std::vector<double> ratios;
  while (ratios.size() < queries) {
    const auto u = static_cast<VertexId>(pick.next(g.numVertices()));
    const auto v = static_cast<VertexId>(pick.next(g.numVertices()));
    if (u == v) continue;
    const Weight exact = dijkstraPair(g, u, v);
    if (exact == kInfDist || exact == 0) continue;
    ratios.push_back(sk.query(u, v) / exact);
  }
  const Summary s = summarize(ratios);
  return {s.mean, s.max};
}

}  // namespace

int main() {
  printHeader("A2 / spanner-accelerated distance sketches",
              "[DN19]: preprocess Thorup-Zwick sketches on the spanner to cut "
              "the dominant O~(m n^{1/k}) cost; stretch composes multiplicatively");

  Table table("TZ(k=3) directly on G vs on the Section-5 spanner");
  table.header({"n", "m", "variant", "edges used", "relaxations", "bunch entries",
                "mean approx", "max approx", "certified"});
  for (std::size_t n : {1000u, 4000u}) {
    const Graph g = weightedGnm(n, 24 * n, /*seed=*/n + 3);
    const SketchParams sp{.k = 3, .seed = 5};

    const DistanceSketches direct(g, sp);
    const auto [dm, dx] = auditSketch(g, direct, 200);
    table.addRow({Table::num(n), Table::num(g.numEdges()), "direct",
                  Table::num(g.numEdges()), Table::num(direct.preprocessingRelaxations()),
                  Table::num(direct.totalBunchEntries()), Table::num(dm, 3),
                  Table::num(dx, 2), Table::num(direct.stretchBound(), 1)});

    TradeoffParams tp;
    tp.k = 6;
    tp.t = 0;
    tp.seed = 7;
    const SpannerResult spanner = buildTradeoffSpanner(g, tp);
    const SpannerSketches accel = buildSketchesOnSpanner(g, spanner, sp);
    const auto [am, ax] = auditSketch(g, accel.sketches, 200);
    table.addRow({Table::num(n), Table::num(g.numEdges()), "on spanner (k=6)",
                  Table::num(spanner.edges.size()),
                  Table::num(accel.sketches.preprocessingRelaxations()),
                  Table::num(accel.sketches.totalBunchEntries()), Table::num(am, 3),
                  Table::num(ax, 2), Table::num(accel.composedStretchBound, 1)});
  }
  table.print();
  std::printf("# expectation: on dense inputs the spanner variant does several\n"
              "# times fewer preprocessing relaxations at a modest realized\n"
              "# approximation penalty (the certified bound composes, the\n"
              "# measured ratio barely moves on random graphs).\n");
  return 0;
}
