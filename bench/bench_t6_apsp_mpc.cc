// T6 — Corollary 1.4: O(log^s n)-approximate APSP in near-linear-memory MPC
// in O(t log log n / log(t+1)) rounds. Checks that the spanner fits one
// O~(n)-word machine and audits the realized approximation over sampled
// pairs, for t = 1 and the paper's t = log log n.
#include <cmath>

#include "apsp/apsp_mpc.hpp"
#include "bench/bench_common.hpp"
#include "graph/distance.hpp"
#include "util/stats.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

namespace {

// Mean/max approximation ratio over all pairs from a few sources. The
// oracle side runs its Dijkstras in parallel (warm), as every machine of
// the model computes locally at once.
std::pair<double, double> auditApprox(const Graph& g, MpcApspResult& r,
                                      std::size_t sources) {
  std::vector<double> ratios;
  Rng rng(99);
  std::vector<VertexId> srcs;
  for (std::size_t s = 0; s < sources; ++s)
    srcs.push_back(static_cast<VertexId>(rng.next(g.numVertices())));
  runtime::ThreadPool pool;
  r.oracle.warm(srcs, pool);
  for (const VertexId src : srcs) {
    const auto exact = dijkstra(g, src);
    const auto approxRow = r.oracle.distancesFrom(src);
    const auto& approx = *approxRow;
    for (VertexId v = 0; v < g.numVertices(); ++v)
      if (v != src && exact[v] != kInfDist && exact[v] > 0)
        ratios.push_back(approx[v] / exact[v]);
  }
  const Summary s = summarize(ratios);
  return {s.mean, s.max};
}

}  // namespace

int main() {
  printHeader("T6 / Corollary 1.4",
              "O(log^s n)-approx APSP, O(t log log n / log(t+1)) rounds, "
              "near-linear machine memory O~(n)");

  Table table("n sweep, t in {1, ceil(log log n)}");
  table.header({"n", "m", "t", "k", "rounds", "|E_S|", "fits O~(n)?",
                "log^s n", "certified", "mean approx", "max approx"});
  for (std::size_t n : {1024u, 4096u, 16384u}) {
    const Graph g = weightedGnm(n, 8 * n, /*seed=*/n);
    for (std::uint32_t t : {1u, 0u}) {  // 0 = auto log log n
      MpcApspParams p;
      p.t = t;
      p.seed = 21;
      MpcApspResult r = runMpcApsp(g, p);
      const auto [mean, mx] = auditApprox(g, r, /*sources=*/4);
      table.addRow({Table::num(n), Table::num(g.numEdges()),
                    Table::num(int(r.tUsed)), Table::num(int(r.kUsed)),
                    Table::num(r.roundsNearLinear),
                    Table::num(r.oracle.spanner().edges.size()),
                    r.fitsOneMachine ? "yes" : "NO",
                    Table::num(r.approxTheoretical, 1),
                    Table::num(r.approxCertified, 1), Table::num(mean, 3),
                    Table::num(mx, 2)});
    }
  }
  table.print();
  std::printf("# expectation: rounds grow with log log n, not log n; spanner always\n"
              "# fits one machine; realized approximation far below the worst-case bound.\n");
  return 0;
}
