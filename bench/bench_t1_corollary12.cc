// T1 — Corollary 1.2: the four headline round/stretch/size settings of the
// general trade-off algorithm, on weighted G(n,m) with k = ceil(log2 n).
//
//  row 1: t=1        -> O(log k) rounds,            stretch O(k^{log2 3})
//  row 2: t=3 (~eps) -> O(2^{1/e} e^{-1} log k),    stretch O(k^{1+e})
//  row 3: t=log k    -> O(log^2 k / log log k),     stretch O(k^{1+o(1)})
//  row 4: k=log n, t=log log n -> O(log^2 log n / log log log n) rounds,
//         stretch O(log^{1+o(1)} n), size O(n log log n)  (APSP setting)
#include <cmath>

#include "bench/bench_common.hpp"
#include "spanner/tradeoff.hpp"

using namespace mpcspan;
using namespace mpcspan::bench;

int main() {
  const std::size_t n = 4096;
  const Graph g = weightedGnm(n, 8 * n, /*seed=*/1);
  const auto k = static_cast<std::uint32_t>(std::ceil(std::log2(double(n))));
  const auto logk = static_cast<std::uint32_t>(std::ceil(std::log2(double(k))));
  const auto loglog = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(std::log2(std::log2(double(n))))));

  printHeader("T1 / Corollary 1.2",
              "four (rounds, stretch, size) settings of Theorem 1.1; k = log n");
  std::printf("# workload: weighted G(n=%zu, m=%zu), k=%u\n", n, g.numEdges(), k);

  Table table("Corollary 1.2 rows (gamma = 0.5 for MPC round conversion)");
  table.header({"row", "t", "iters", "mpc rounds", "paper stretch", "certified",
                "measured", "|E_S|", "size-const"});

  struct Row {
    const char* label;
    std::uint32_t kk, t;
  };
  const Row rows[] = {
      {"1 (t=1)", k, 1},
      {"2 (t=3, eps~0.4)", k, 3},
      {"3 (t=log k)", k, logk},
      {"4 (k=log n, t=loglog n)", k, loglog},
  };
  for (const Row& row : rows) {
    TradeoffParams p;
    p.k = row.kk;
    p.t = row.t;
    p.seed = 7;
    const SpannerResult r = buildTradeoffSpanner(g, p);
    const double paperStretch = tradeoffTheoreticalStretch(row.kk, row.t);
    const double extra = row.t + std::log2(double(row.kk));
    table.addRow({row.label, Table::num(int(row.t)),
                  Table::num(r.iterations), Table::num(r.cost.mpcRounds(0.5)),
                  Table::num(paperStretch, 1), Table::num(r.stretchBound, 1),
                  Table::num(measuredStretch(g, r), 2),
                  Table::num(r.edges.size()), Table::num(sizeConstant(r, extra), 3)});
  }
  table.print();
  std::printf("# expectation: rounds shrink from row 4 pattern, stretch grows as t\n"
              "# drops; size-const stays O(1) across rows.\n");
  return 0;
}
