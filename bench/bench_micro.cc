// M1 — google-benchmark micro suite: throughput of the substrate pieces
// (generators, Dijkstra, engine iterations, distributed primitives, and the
// round-engine runtime itself at the configured lane/shard counts —
// MPCSPAN_THREADS / MPCSPAN_SHARDS — which is what the CI benchmark job
// sweeps).
#include <benchmark/benchmark.h>

#include <memory>
#include <numeric>
#include <string>
#include <unordered_map>

#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "mpc/dist_iteration.hpp"
#include "mpc/primitives.hpp"
#include "runtime/round_engine.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/engine.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/verify.hpp"
#include "util/rng.hpp"

namespace {

using namespace mpcspan;

void BM_GnmGenerate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(gnmRandom(n, 8 * n, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * n);
}
BENCHMARK(BM_GnmGenerate)->Arg(1 << 10)->Arg(1 << 13);

void BM_Dijkstra(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const Graph g = gnmRandom(n, 8 * n, rng, {WeightModel::kUniform, 10.0}, true);
  VertexId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, src));
    src = static_cast<VertexId>((src + 1) % n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * n);
}
BENCHMARK(BM_Dijkstra)->Arg(1 << 10)->Arg(1 << 13);

void BM_BaswanaSen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const Graph g = gnmRandom(n, 8 * n, rng, {WeightModel::kUniform, 10.0}, true);
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(buildBaswanaSen(g, {.k = 4, .seed = seed++}));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * n);
}
BENCHMARK(BM_BaswanaSen)->Arg(1 << 10)->Arg(1 << 13);

void BM_TradeoffSpanner(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  const Graph g = gnmRandom(n, 8 * n, rng, {WeightModel::kUniform, 10.0}, true);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    TradeoffParams p;
    p.k = 16;
    p.t = 0;
    p.seed = seed++;
    benchmark::DoNotOptimize(buildTradeoffSpanner(g, p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * n);
}
BENCHMARK(BM_TradeoffSpanner)->Arg(1 << 10)->Arg(1 << 13);

void BM_DistSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(17);
  std::vector<std::uint64_t> data(n);
  for (auto& x : data) x = rng.next(1u << 24);
  for (auto _ : state) {
    MpcSimulator sim(MpcConfig::forInput(n, 0.6, 3.0));
    DistVector<std::uint64_t> dv(sim, data);
    distSort(dv, std::less<>());
    benchmark::DoNotOptimize(dv.collectHostSide());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DistSort)->Arg(1 << 12)->Arg(1 << 15);

/// One machine-centric engine round with per-machine local compute: the
/// stepping pool's scaling surface. Lanes follow MPCSPAN_THREADS, shards
/// MPCSPAN_SHARDS, so the CI job compares 1-lane vs N-lane (and sharded)
/// wall-clock on the identical deterministic workload.
void BM_EngineStep(benchmark::State& state) {
  using namespace mpcspan::runtime;
  const auto machines = static_cast<std::size_t>(state.range(0));
  const auto spin = static_cast<std::size_t>(state.range(1));
  RoundEngine eng(EngineConfig{machines, 0, 0},
                  std::make_unique<MpcTopology>(1u << 20));
  for (auto _ : state) {
    eng.step([&](std::size_t m, const std::vector<Delivery>&) {
      // Deterministic local work standing in for a machine's round compute.
      std::uint64_t h = m + 1;
      for (std::size_t i = 0; i < spin; ++i)
        h = h * 6364136223846793005ULL + 1442695040888963407ULL;
      std::vector<Message> out;
      out.push_back({(m + 1) % machines, {h}});
      return out;
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(machines * spin));
}
BENCHMARK(BM_EngineStep)->Args({64, 20000})->Args({256, 5000});

/// Per-round dispatch latency of the sharded backends: the same tiny
/// exchange round (4 machines per shard, one single-word message each)
/// driven through resident workers vs the legacy fork-per-round snapshot
/// dispatch at a fixed shard count. This is the probe behind the
/// resident-workers acceptance criterion: the round trip over the control
/// frames must beat fork + snapshot + reap per round. arg0 = shards,
/// arg1 = 1 for resident, 0 for fork-per-round.
void BM_ShardRoundDispatch(benchmark::State& state) {
  using namespace mpcspan::runtime;
  const auto shards = static_cast<std::size_t>(state.range(0));
  const bool resident = state.range(1) != 0;
  const std::size_t machines = 4 * shards;
  EngineConfig cfg{machines, 1, shards};
  cfg.resident = resident ? 1 : 0;
  RoundEngine eng(cfg, std::make_unique<MpcTopology>(64));
  for (auto _ : state) {
    std::vector<std::vector<Message>> out(machines);
    for (std::size_t m = 0; m < machines; ++m)
      out[m].push_back({(m + 1) % machines, {m}});
    benchmark::DoNotOptimize(eng.exchange(std::move(out)));
  }
  state.SetLabel(resident ? "resident" : "fork-per-round");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardRoundDispatch)
    ->Args({4, 1})
    ->Args({4, 0})
    ->Args({2, 1})
    ->Args({2, 0})
    ->Unit(benchmark::kMicrosecond);

/// One full growth-iteration wave (both find-min supersteps) through the
/// registered kernels, resident workers vs the coordinator-driven
/// fork-per-round reference, at a fixed shard count. This is the probe
/// behind the kernel-port acceptance criterion: with the candidate blocks
/// and kernel state living inside the resident workers, the wave must beat
/// the backend that re-marshals every round coordinator-side. The simulated
/// ledger is identical on both (asserted by test_wave_kernels); only the
/// dispatch cost differs. arg0 = shards, arg1 = 1 resident / 0 legacy,
/// arg2 = 1 pipelined barrier / 0 strict (resident mesh rounds only —
/// pipelining is inert on the fork-per-round reference).
void BM_IterationRoundDispatch(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const bool resident = state.range(1) != 0;
  const bool pipelined = state.range(2) != 0;
  Rng rng(23);
  const Graph g = gnmRandom(400, 2000, rng, {WeightModel::kUniform, 12.0}, true);
  const std::size_t n = g.numVertices();
  std::vector<VertexId> ident(n);
  std::iota(ident.begin(), ident.end(), 0);
  const std::vector<char> sampled =
      HashCoinPolicy::draw(std::vector<char>(n, 1), 0.3, 23, 1);
  MpcSimulator sim(MpcConfig::forInput(4 * g.numEdges(), 0.6, 3.0),
                   /*threads=*/1, shards, resident ? 1 : 0,
                   runtime::Transport::kDefault, pipelined ? 1 : 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(distIterationKernel(sim, g, ident, ident, sampled));
  state.SetLabel(resident
                     ? (pipelined ? "resident-pipelined" : "resident-strict")
                     : "fork-per-round");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IterationRoundDispatch)
    ->Args({4, 1, 1})
    ->Args({4, 1, 0})
    ->Args({4, 0, 0})
    ->Args({2, 1, 1})
    ->Args({2, 1, 0})
    ->Args({2, 0, 0})
    ->Unit(benchmark::kMillisecond);

/// The transport acceptance probe: exchange-heavy kernel rounds (every
/// machine ships one multi-word payload to every machine outside its own
/// shard, distSort-phase / clique-label-round shaped traffic) at a fixed
/// shard count, cross-shard sections routed through the shared-memory
/// rings vs the socket mesh vs the coordinator relay. The ledger and
/// contents are identical on all three (asserted by test_peer_exchange /
/// test_shm_exchange); only where the bytes travel differs — the shm ring
/// must beat the socket mesh by cutting the kernel socket copies out of
/// the payload path, and the tcp-loopback axis prices the cross-machine
/// transport against its same-host siblings. arg0 = shards (1 = the
/// in-process reference), arg1 = 3 tcp mesh / 2 shm ring / 1 socket mesh /
/// 0 coordinator relay, arg2 = 1 pipelined barrier / 0 strict (the
/// overlap axis: speculative delivery under the fused single-verdict
/// barrier vs the two-phase reference; inert on the relay).
void BM_CrossShardExchange(benchmark::State& state) {
  using namespace mpcspan::runtime;
  class AllToAllKernel final : public StepKernel {
   public:
    std::vector<Message> step(const KernelCtx& ctx) override {
      const auto words = static_cast<std::size_t>(ctx.args[0]);
      std::vector<Word> pay(words);
      for (std::size_t i = 0; i < words; ++i) pay[i] = ctx.machine * 7919 + i;
      std::vector<Message> out;
      out.reserve(ctx.numMachines - 1);
      for (std::size_t d = 0; d < ctx.numMachines; ++d)
        if (d != ctx.machine) out.push_back({d, pay});
      return out;
    }
  };
  const auto shards = static_cast<std::size_t>(state.range(0));
  const Transport transport = state.range(1) == 3   ? Transport::kTcp
                              : state.range(1) == 2 ? Transport::kShmRing
                              : state.range(1) == 1 ? Transport::kSocketMesh
                                                    : Transport::kRelay;
  const bool pipelined = state.range(2) != 0;
  const std::size_t machines = 4 * shards;
  const std::size_t payloadWords = 256;
  EngineConfig cfg{machines, 1, shards, /*resident=*/1,
                   /*peerExchange=*/-1, transport, pipelined ? 1 : 0};
  RoundEngine eng(cfg,
                  std::make_unique<MpcTopology>(machines * payloadWords));
  const KernelId k = eng.registerKernel(
      "bench.alltoall", [] { return std::make_unique<AllToAllKernel>(); });
  for (auto _ : state) eng.step(k, {payloadWords});
  std::string label = shards == 1                          ? "in-process"
                      : transport == Transport::kTcp       ? "tcp-loopback"
                      : transport == Transport::kShmRing   ? "shm-ring"
                      : transport == Transport::kSocketMesh ? "peer-mesh"
                                                            : "coordinator-relay";
  if (pipelined && shards > 1) label += "+pipelined";
  state.SetLabel(label);
  // Cross-shard words moved per round (the traffic whose routing is probed).
  const std::size_t crossWords =
      shards == 1 ? 0 : machines * (machines - 4) * payloadWords;
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(crossWords * sizeof(Word)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CrossShardExchange)
    ->Args({4, 3, 1})
    ->Args({4, 3, 0})
    ->Args({4, 2, 1})
    ->Args({4, 2, 0})
    ->Args({4, 1, 1})
    ->Args({4, 1, 0})
    ->Args({4, 0, 0})
    ->Args({2, 3, 1})
    ->Args({2, 3, 0})
    ->Args({2, 2, 1})
    ->Args({2, 2, 0})
    ->Args({2, 1, 1})
    ->Args({2, 1, 0})
    ->Args({2, 0, 0})
    ->Args({1, 2, 0})
    ->Unit(benchmark::kMicrosecond);

/// The arena acceptance probe: BlockStore block churn shaped like the sort
/// kernels' per-round traffic — every machine's block is cleared and
/// refilled each "round", with the block capacity run recycled through the
/// store's arena (vs the per-block heap vector the store used before).
/// arg0 = 1 arena-backed store / 0 plain heap vectors.
void BM_ArenaBlockChurn(benchmark::State& state) {
  using namespace mpcspan::runtime;
  const bool arenaBacked = state.range(0) != 0;
  constexpr std::size_t kMachines = 64;
  constexpr std::size_t kWords = 2048;
  std::vector<Word> fill(kWords);
  for (std::size_t i = 0; i < kWords; ++i) fill[i] = i * 2654435761u;
  BlockStore store(kMachines);
  // The pre-arena BlockStore: handles in an unordered_map, each block a
  // bare std::vector<Word> that create() constructs and erase() frees.
  std::unordered_map<int, std::vector<std::vector<Word>>> heapStore;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    if (arenaBacked) {
      // Handle lifecycle churn (the growth driver emits into a fresh
      // handle each iteration): erase recycles every block's run into the
      // store's arena, create + append draws them straight back out.
      store.create(1);
      for (std::size_t m = 0; m < kMachines; ++m) {
        WordBuf& b = store.block(1, m);
        b.append(fill.data(), (m % 2) ? kWords : kWords / 2);
        sink += b.data()[0] + b.size();
      }
      store.erase(1);
    } else {
      auto [it, _ins] = heapStore.emplace(
          1, std::vector<std::vector<Word>>(kMachines));
      for (std::size_t m = 0; m < kMachines; ++m) {
        std::vector<Word>& b = it->second[m];  // fresh allocation each round
        b.insert(b.end(), fill.begin(),
                 fill.begin() + ((m % 2) ? kWords : kWords / 2));
        sink += b.data()[0] + b.size();
      }
      heapStore.erase(it);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetLabel(arenaBacked ? "arena-blockstore" : "heap-vectors");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kMachines));
}
BENCHMARK(BM_ArenaBlockChurn)->Arg(1)->Arg(0)->Unit(benchmark::kMicrosecond);

void BM_VerifyPairStretch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(19);
  const Graph g = gnmRandom(n, 8 * n, rng, {WeightModel::kUniform, 10.0}, true);
  const auto r = buildBaswanaSen(g, {.k = 3, .seed = 5});
  for (auto _ : state)
    benchmark::DoNotOptimize(measurePairStretch(g, r.edges, 2, 1));
}
BENCHMARK(BM_VerifyPairStretch)->Arg(1 << 10);

}  // namespace

BENCHMARK_MAIN();
