// M1 — google-benchmark micro suite: throughput of the substrate pieces
// (generators, Dijkstra, engine iterations, distributed primitives).
#include <benchmark/benchmark.h>

#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "mpc/primitives.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/verify.hpp"
#include "util/rng.hpp"

namespace {

using namespace mpcspan;

void BM_GnmGenerate(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(gnmRandom(n, 8 * n, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * n);
}
BENCHMARK(BM_GnmGenerate)->Arg(1 << 10)->Arg(1 << 13);

void BM_Dijkstra(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const Graph g = gnmRandom(n, 8 * n, rng, {WeightModel::kUniform, 10.0}, true);
  VertexId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dijkstra(g, src));
    src = static_cast<VertexId>((src + 1) % n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * n);
}
BENCHMARK(BM_Dijkstra)->Arg(1 << 10)->Arg(1 << 13);

void BM_BaswanaSen(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(11);
  const Graph g = gnmRandom(n, 8 * n, rng, {WeightModel::kUniform, 10.0}, true);
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(buildBaswanaSen(g, {.k = 4, .seed = seed++}));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * n);
}
BENCHMARK(BM_BaswanaSen)->Arg(1 << 10)->Arg(1 << 13);

void BM_TradeoffSpanner(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(13);
  const Graph g = gnmRandom(n, 8 * n, rng, {WeightModel::kUniform, 10.0}, true);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    TradeoffParams p;
    p.k = 16;
    p.t = 0;
    p.seed = seed++;
    benchmark::DoNotOptimize(buildTradeoffSpanner(g, p));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8 * n);
}
BENCHMARK(BM_TradeoffSpanner)->Arg(1 << 10)->Arg(1 << 13);

void BM_DistSort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(17);
  std::vector<std::uint64_t> data(n);
  for (auto& x : data) x = rng.next(1u << 24);
  for (auto _ : state) {
    MpcSimulator sim(MpcConfig::forInput(n, 0.6, 3.0));
    DistVector<std::uint64_t> dv(sim, data);
    distSort(dv, std::less<>());
    benchmark::DoNotOptimize(dv.shards());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_DistSort)->Arg(1 << 12)->Arg(1 << 15);

void BM_VerifyPairStretch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(19);
  const Graph g = gnmRandom(n, 8 * n, rng, {WeightModel::kUniform, 10.0}, true);
  const auto r = buildBaswanaSen(g, {.k = 3, .seed = 5});
  for (auto _ : state)
    benchmark::DoNotOptimize(measurePairStretch(g, r.edges, 2, 1));
}
BENCHMARK(BM_VerifyPairStretch)->Arg(1 << 10);

}  // namespace

BENCHMARK_MAIN();
