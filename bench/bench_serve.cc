// Serving-daemon benchmark: end-to-end wire qps and latency against an
// in-process mpcspand Server, plus the degradation behaviour under a tight
// per-query deadline.
//
// Three sweeps over a 3000-vertex artifact:
//   - 1 client thread, unbounded deadline (the exact tier answers),
//   - N client threads, unbounded deadline (contention on the wire path),
//   - N client threads, 0 ms deadline (every answer degrades to the
//     sketch floor — the overload posture, measuring the latency the
//     degradation ladder buys).
//
// With MPCSPAN_BENCH_JSON set, emits one row per (threads, deadline)
// configuration (BENCH_serve.json in the CI benchmark job).
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "query/build.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace mpcspan;
using Clock = std::chrono::steady_clock;

namespace {

double usSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

struct RunResult {
  double qps = 0;
  Summary latency;
  double degradedFrac = 0;
};

RunResult hammer(std::uint16_t port, std::size_t n, std::size_t threads,
                 std::size_t queriesPerThread, std::uint64_t deadlineMs) {
  std::vector<std::vector<double>> us(threads);
  std::vector<std::size_t> degraded(threads, 0);
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      serve::ClientOptions copt;
      copt.port = port;
      copt.seed = 100 + t;
      serve::ServeClient client(copt);
      Rng rng(41 + t);
      us[t].reserve(queriesPerThread);
      for (std::size_t i = 0; i < queriesPerThread; ++i) {
        const auto u = static_cast<VertexId>(rng.next(n));
        const auto v = static_cast<VertexId>(rng.next(n));
        const auto s0 = Clock::now();
        const serve::WireAnswer ans = client.query(u, v, deadlineMs);
        us[t].push_back(usSince(s0));
        if (ans.degraded) ++degraded[t];
      }
    });
  }
  for (std::thread& c : clients) c.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - t0).count();

  RunResult r;
  std::vector<double> all;
  std::size_t totalDegraded = 0;
  for (std::size_t t = 0; t < threads; ++t) {
    all.insert(all.end(), us[t].begin(), us[t].end());
    totalDegraded += degraded[t];
  }
  r.latency = summarize(all);
  const auto total = static_cast<double>(threads * queriesPerThread);
  r.qps = elapsed > 0 ? total / elapsed : 0.0;
  r.degradedFrac = total > 0 ? static_cast<double>(totalDegraded) / total : 0;
  return r;
}

}  // namespace

int main() {
  bench::printHeader("serve",
                     "daemon wire path: qps, tail latency, degraded fraction");
  bench::BenchJson json("serve");

  const std::size_t n = 3000, m = 24000;
  const Graph g = bench::weightedGnm(n, m, /*seed=*/7);
  query::BuildPlan plan;
  plan.algo = "tradeoff";
  plan.k = 6;
  plan.sketchK = 3;
  const query::QueryArtifact a = query::buildArtifact(g, plan);
  const std::string artifact = "/tmp/bench_serve_artifact.mpqa";
  query::saveArtifactFile(a, artifact);

  serve::ServerOptions sopt;
  sopt.artifactPath = artifact;
  sopt.sessionThreads = runtime::ThreadPool::defaultThreads();
  serve::Server server(sopt);
  server.start();
  std::printf("daemon: n=%zu on 127.0.0.1:%u, %zu session threads\n", n,
              server.port(), sopt.sessionThreads);

  const std::size_t wide = runtime::ThreadPool::defaultThreads();
  const std::size_t perThread = 4000;
  struct Config {
    std::size_t threads;
    std::uint64_t deadlineMs;
    const char* label;
  };
  const Config configs[] = {
      {1, serve::kDeadlineDefault, "1xunbounded"},
      {wide, serve::kDeadlineDefault, "Nxunbounded"},
      {wide, 0, "Nxdeadline0"},
  };

  std::printf("\n%-14s %8s %10s %10s %10s %10s\n", "config", "threads", "qps",
              "p50-us", "p99-us", "degraded");
  for (const Config& c : configs) {
    const RunResult r =
        hammer(server.port(), n, c.threads, perThread, c.deadlineMs);
    std::printf("%-14s %8zu %10.0f %10.2f %10.2f %9.1f%%\n", c.label,
                c.threads, r.qps, r.latency.p50, r.latency.p99,
                100.0 * r.degradedFrac);
    json.record({{"threads", static_cast<double>(c.threads)},
                 {"deadline_ms",
                  c.deadlineMs == serve::kDeadlineDefault
                      ? -1.0
                      : static_cast<double>(c.deadlineMs)},
                 {"qps", r.qps},
                 {"p50_us", r.latency.p50},
                 {"p99_us", r.latency.p99},
                 {"degraded_frac", r.degradedFrac}});
  }

  const serve::ServeStats s = server.statsSnapshot();
  std::printf(
      "\ndaemon counters: accepted %llu, queries %llu (degraded %llu), "
      "shed %llu, malformed %llu\n",
      static_cast<unsigned long long>(s.accepted),
      static_cast<unsigned long long>(s.queries),
      static_cast<unsigned long long>(s.degraded),
      static_cast<unsigned long long>(s.shedQueueFull),
      static_cast<unsigned long long>(s.malformedFrames));
  server.stop();
  std::remove(artifact.c_str());
  return 0;
}
