// mpcspan_worker — standalone shard process for the TCP transport.
//
// Two modes, both ends of the same rendezvous (see
// src/runtime/shard/tcp_transport.hpp):
//
//   mpcspan_worker --connect host:port --shard k [--timeout ms]
//     Attaches shard k to a coordinator that is awaiting remote workers
//     (MPCSPAN_TCP_REMOTE=1): dials the rendezvous port, sends an epoch-0
//     control hello, receives the roster + SETUP frame, forms the peer
//     mesh, and runs the resident command loop until SHUTDOWN. Kernels are
//     resolved by name against this binary's global registry, so the
//     coordinator and the workers must run the same build.
//
//   mpcspan_worker --coordinate S --port P [--machines N] [--rounds R]
//                  [--threads T] [--timeout ms]
//     Hosts a sharded MPC run with S shards over the TCP transport and
//     waits for every shard to attach via --connect. Drives R rounds of a
//     deterministic probe kernel and prints the fetched state checksum —
//     the same workload either way the workers are provisioned, so CI can
//     diff the checksum against a local run.
//
// Exit status: 0 clean, 1 ShardError (rendezvous failure, peer death,
// timeout — the failure modes CI's fault-injection smoke greps for),
// 2 usage error.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "runtime/kernel.hpp"
#include "runtime/round_engine.hpp"
#include "runtime/shard/tcp_transport.hpp"
#include "runtime/shard/transport.hpp"
#include "runtime/shard/wire.hpp"
#include "runtime/shard/worker_loop.hpp"
#include "runtime/topology.hpp"
#include "util/args.hpp"

namespace {

using namespace mpcspan;
using namespace mpcspan::runtime;
using namespace mpcspan::runtime::shard;

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// The coordinate-mode workload: every round each machine folds its inbox
/// into an accumulator and passes a mixed word to its ring successor.
/// Globally registered so a remote worker (this same binary, different
/// process) can construct it by name after receiving only the kernel name
/// in its SETUP frame.
class TcpProbeKernel final : public StepKernel {
 public:
  static std::string kernelName() { return "tools.tcpprobe"; }

  std::vector<Message> step(const KernelCtx& ctx) override {
    std::uint64_t& acc = accFor(ctx);
    for (const Delivery& d : ctx.inbox)
      for (std::size_t i = 0; i < d.payload.size(); ++i)
        acc = mix64(acc ^ d.payload[i] ^ (static_cast<Word>(d.src) << 32));
    const Word round = ctx.args.empty() ? 0 : ctx.args[0];
    const Word out = mix64(acc ^ round ^ ctx.machine);
    std::vector<Message> msgs;
    msgs.push_back({(ctx.machine + 1) % ctx.numMachines, {out}});
    return msgs;
  }

  std::vector<Word> fetch(const KernelCtx& ctx) override {
    return {accFor(ctx)};
  }

 private:
  /// Machines step in parallel, so the one-time sizing must be fenced;
  /// afterwards each machine touches only its own slot.
  std::uint64_t& accFor(const KernelCtx& ctx) {
    std::call_once(sized_, [&] { acc_.assign(ctx.numMachines, 0); });
    return acc_[ctx.machine];
  }
  std::once_flag sized_;
  std::vector<std::uint64_t> acc_;
};

int runConnect(const std::string& endpoint, std::size_t shardId,
               int timeoutMs) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    std::fprintf(stderr, "error: --connect expects host:port, got '%s'\n",
                 endpoint.c_str());
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  const long port = std::strtol(endpoint.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr, "error: bad port in --connect '%s'\n",
                 endpoint.c_str());
    return 2;
  }

  // Mesh listener first: its port rides in the control hello.
  TcpListener meshListener(0);
  Channel ctrl(tcpConnect(host, static_cast<std::uint16_t>(port), timeoutMs),
               timeoutMs);
  sendControlHello(ctrl, {shardId, /*epoch=*/0, meshListener.port()});

  std::uint64_t epoch = 0;
  const std::vector<TcpPeerAddr> roster =
      readRoster(ctrl, /*expectedEpoch=*/0, &epoch);
  RemoteSetup setup = readWorkerSetup(ctrl);
  if (setup.cfg.shard != shardId)
    throw ShardError("tcp worker: coordinator assigned shard " +
                     std::to_string(setup.cfg.shard) + ", dialed as " +
                     std::to_string(shardId));
  if (roster.size() != setup.cfg.shards)
    throw ShardError("tcp worker: roster size mismatch");
  setup.cfg.meshTimeoutMs = timeoutMs;

  std::vector<WireFd> peers =
      formTcpMesh(shardId, epoch, meshListener, roster, timeoutMs);
  meshListener.reset();
  std::fprintf(stderr, "mpcspan_worker: shard %zu/%zu attached (%zu machines)\n",
               shardId, setup.cfg.shards, setup.cfg.numMachines);
  runResidentWorker(setup.cfg, ctrl, peers, std::move(setup.kernels),
                    *setup.store, std::move(setup.inboxes));
  return 0;
}

int runCoordinate(std::size_t shards, std::uint16_t port,
                  std::size_t machines, std::size_t rounds,
                  std::size_t threads, int timeoutMs, bool local) {
  if (port == 0 && !local) {
    std::fprintf(stderr,
                 "error: --coordinate requires a fixed --port (remote "
                 "workers must know where to dial)\n");
    return 2;
  }
  // The engine reads the rendezvous knobs from the environment; pin them to
  // the flag values so the lazily-started backend sees exactly this setup.
  // --local runs the identical workload with fork()ed tcp workers instead
  // of awaited attaches, so CI can diff the two checksums.
  ::setenv("MPCSPAN_TCP_REMOTE", local ? "0" : "1", 1);
  ::setenv("MPCSPAN_TCP_PORT", std::to_string(port).c_str(), 1);
  if (timeoutMs > 0)
    ::setenv("MPCSPAN_TCP_TIMEOUT_MS", std::to_string(timeoutMs).c_str(), 1);

  EngineConfig cfg;
  cfg.numMachines = machines;
  cfg.threads = threads;
  cfg.shards = shards;
  cfg.resident = 1;
  cfg.transport = Transport::kTcp;
  RoundEngine eng(cfg, std::make_unique<MpcTopology>(/*wordsPerMachine=*/256));
  const KernelId probe = ensureKernel<TcpProbeKernel>(eng);

  if (local)
    std::fprintf(stderr, "mpcspan_worker: coordinating %zu local shard(s)\n",
                 shards);
  else
    std::fprintf(stderr,
                 "mpcspan_worker: coordinating %zu shard(s) on port %u — "
                 "waiting for `mpcspan_worker --connect` attaches\n",
                 shards, static_cast<unsigned>(port));
  for (std::size_t r = 0; r < rounds; ++r)
    eng.step(probe, {static_cast<Word>(r)});

  std::uint64_t checksum = 0;
  const std::vector<std::vector<Word>> fetched = eng.fetchKernel(probe);
  for (std::size_t m = 0; m < fetched.size(); ++m)
    for (const Word w : fetched[m]) checksum = mix64(checksum ^ w ^ m);
  std::fprintf(stdout, "rounds=%zu shards=%zu checksum=%016llx\n",
               eng.rounds(), eng.numShards(),
               static_cast<unsigned long long>(checksum));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("mpcspan_worker",
                 "TCP shard worker / rendezvous coordinator (see "
                 "src/runtime/shard/tcp_transport.hpp)");
  args.flag("connect", "", "coordinator rendezvous endpoint host:port")
      .flag("shard", "0", "shard id to attach as (--connect mode)")
      .flag("coordinate", "0",
            "host a sharded run awaiting this many remote shards (0 = "
            "worker mode)")
      .flag("port", "0", "rendezvous port to listen on (--coordinate mode)")
      .flag("local", "false",
            "--coordinate with fork()ed local tcp workers instead of remote "
            "attaches (checksum reference)")
      .flag("machines", "8", "simulated machines (--coordinate mode)")
      .flag("rounds", "6", "probe kernel rounds to drive (--coordinate mode)")
      .flag("threads", "0", "stepping-pool lanes (0 = MPCSPAN_THREADS)")
      .flag("timeout", "0",
            "per-blocking-wait deadline in ms (0 = MPCSPAN_TCP_TIMEOUT_MS "
            "default)");

  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n\n%s", args.error().c_str(),
                 args.usage().c_str());
    return 2;
  }
  if (args.helpRequested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }

  try {
    int timeoutMs = static_cast<int>(args.getInt("timeout"));
    if (timeoutMs <= 0) timeoutMs = mpcspan::runtime::shard::defaultTcpTimeoutMs();

    const auto shards = static_cast<std::size_t>(args.getInt("coordinate"));
    if (shards > 0)
      return runCoordinate(shards,
                           static_cast<std::uint16_t>(args.getInt("port")),
                           static_cast<std::size_t>(args.getInt("machines")),
                           static_cast<std::size_t>(args.getInt("rounds")),
                           static_cast<std::size_t>(args.getInt("threads")),
                           timeoutMs, args.getBool("local"));
    if (args.get("connect").empty()) {
      std::fprintf(stderr, "error: one of --connect or --coordinate is required\n\n%s",
                   args.usage().c_str());
      return 2;
    }
    return runConnect(args.get("connect"),
                      static_cast<std::size_t>(args.getInt("shard")),
                      timeoutMs);
  } catch (const mpcspan::runtime::shard::ShardError& e) {
    std::fprintf(stderr, "ShardError: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
