// mpcspan — command-line spanner builder.
//
// Reads a graph (edge-list file or generated family), runs the chosen
// spanner algorithm, reports the execution profile, optionally audits the
// stretch and writes the spanner as an edge list.
//
//   mpcspan --family gnm --n 10000 --deg 12 --weights uniform
//           --algo tradeoff --k 8 --t 0 --verify --out spanner.txt
//   mpcspan --input graph.txt --algo baswana-sen --k 4
//   mpcspan --algo dist-tradeoff --n 2000 --k 8 --shards 4 --threads 2
//
// The dist-* algorithms run end-to-end on the word-accurate MPC machine
// simulator; --threads sets the stepping-pool lanes and --shards the worker
// processes of the sharded runtime backend (0 = MPCSPAN_THREADS /
// MPCSPAN_SHARDS env defaults).
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mpc/dist_spanner.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/cluster_merging.hpp"
#include "spanner/sqrtk.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/unweighted_fast.hpp"
#include "spanner/verify.hpp"
#include "util/args.hpp"

using namespace mpcspan;

namespace {

Graph loadGraph(const ArgParser& args) {
  if (args.has("input")) return readEdgeListFile(args.get("input"));
  const auto n = static_cast<std::size_t>(args.getInt("n"));
  const double deg = args.getDouble("deg");
  WeightSpec weights;
  const std::string wm = args.get("weights");
  if (wm == "uniform")
    weights = {WeightModel::kUniform, args.getDouble("wmax")};
  else if (wm == "integer")
    weights = {WeightModel::kInteger, args.getDouble("wmax")};
  else if (wm == "exponential")
    weights = {WeightModel::kExponential, args.getDouble("wmax")};
  else if (wm != "unit")
    throw std::invalid_argument("unknown --weights: " + wm);

  const std::string fam = args.get("family");
  Rng rng(static_cast<std::uint64_t>(args.getInt("seed")));
  for (Family f : {Family::kGnm, Family::kBarabasiAlbert, Family::kGrid,
                   Family::kGeometric, Family::kCycle, Family::kHypercube,
                   Family::kComplete})
    if (fam == familyName(f)) return makeFamily(f, n, deg, rng, weights);
  throw std::invalid_argument("unknown --family: " + fam);
}

SpannerResult runAlgorithm(const ArgParser& args, const Graph& g) {
  const auto k = static_cast<std::uint32_t>(args.getInt("k"));
  const auto t = static_cast<std::uint32_t>(args.getInt("t"));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed"));
  const std::string algo = args.get("algo");
  if (algo == "baswana-sen") return buildBaswanaSen(g, {.k = k, .seed = seed});
  if (algo == "cluster-merging")
    return buildClusterMergingSpanner(g, {.k = k, .seed = seed});
  if (algo == "sqrtk") return buildSqrtKSpanner(g, {.k = k, .seed = seed});
  if (algo == "tradeoff") {
    TradeoffParams p;
    p.k = k;
    p.t = t;
    p.seed = seed;
    return buildTradeoffSpanner(g, p);
  }
  if (algo == "unweighted-fast") {
    UnweightedFastParams p;
    p.k = k;
    p.gamma = args.getDouble("gamma");
    p.seed = seed;
    return buildUnweightedFastSpanner(g, p).spanner;
  }
  throw std::invalid_argument("unknown --algo: " + algo);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("mpcspan", "spanner construction CLI (SPAA 2021 reproduction)");
  args.flag("input", "", "edge-list file (overrides --family)")
      .flag("family", "gnm", "generator: gnm|barabasi-albert|grid|geometric|cycle|hypercube|complete")
      .flag("n", "10000", "vertices (generated graphs)")
      .flag("deg", "12", "target average degree (generated graphs)")
      .flag("weights", "uniform", "unit|uniform|integer|exponential")
      .flag("wmax", "100", "max weight for non-unit models")
      .flag("algo", "tradeoff",
            "baswana-sen|cluster-merging|sqrtk|tradeoff|unweighted-fast|"
            "dist-baswana-sen|dist-tradeoff")
      .flag("k", "8", "stretch parameter")
      .flag("t", "0", "trade-off growth iterations (0 = log k)")
      .flag("gamma", "0.5", "machine-memory exponent (round conversion; unweighted-fast)")
      .flag("threads", "0", "stepping-pool lanes (0 = MPCSPAN_THREADS/hardware)")
      .flag("shards", "0",
            "simulator worker processes (0 = MPCSPAN_SHARDS, 1 = in-process; "
            ">1 forks resident workers, MPCSPAN_RESIDENT=0 for fork-per-round, "
            "MPCSPAN_PEER_EXCHANGE=0 for the coordinator-relay exchange)")
      .flag("transport", "",
            "cross-shard section route: shm (shared-memory rings, default), "
            "socket (PR-5 socket mesh), tcp (rendezvous mesh, cross-machine "
            "capable), relay (coordinator relay); empty = MPCSPAN_TCP_EXCHANGE "
            "/ MPCSPAN_SHM_EXCHANGE / MPCSPAN_PEER_EXCHANGE defaults")
      .flag("pipeline", "",
            "pipelined resident rounds: on (overlap cross-shard delivery "
            "with the next round's local phase, the default), off (strict "
            "barrier, the bit-identical reference); empty = MPCSPAN_PIPELINE")
      .flag("seed", "1", "random seed")
      .flag("verify", "false", "audit stretch (sampled) before exiting")
      .flag("out", "", "write the spanner as an edge list to this path");

  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n\n%s", args.error().c_str(), args.usage().c_str());
    return 2;
  }
  if (args.helpRequested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }

  try {
    const Graph g = loadGraph(args);
    std::fprintf(stdout, "graph: n=%zu m=%zu %s\n", g.numVertices(), g.numEdges(),
                 g.isUnweighted() ? "(unweighted)" : "(weighted)");

    const std::string algo = args.get("algo");
    if (algo == "dist-baswana-sen" || algo == "dist-tradeoff") {
      const auto k = static_cast<std::uint32_t>(args.getInt("k"));
      const auto t = static_cast<std::uint32_t>(args.getInt("t"));
      const auto seed = static_cast<std::uint64_t>(args.getInt("seed"));
      const std::string transportName = args.get("transport");
      runtime::Transport transport = runtime::Transport::kDefault;
      if (transportName == "shm")
        transport = runtime::Transport::kShmRing;
      else if (transportName == "socket")
        transport = runtime::Transport::kSocketMesh;
      else if (transportName == "tcp")
        transport = runtime::Transport::kTcp;
      else if (transportName == "relay")
        transport = runtime::Transport::kRelay;
      else if (!transportName.empty())
        throw std::invalid_argument("unknown --transport: " + transportName);
      const std::string pipelineName = args.get("pipeline");
      int pipeline = -1;
      if (pipelineName == "on")
        pipeline = 1;
      else if (pipelineName == "off")
        pipeline = 0;
      else if (!pipelineName.empty())
        throw std::invalid_argument("unknown --pipeline: " + pipelineName +
                                    " (expected on or off)");
      // Negative counts fall back to the defaults (0 = env var / hardware),
      // matching the env vars' own garbage handling.
      MpcSimulator sim(
          MpcConfig::forInput(8 * g.numEdges(), args.getDouble("gamma"), 3.0),
          static_cast<std::size_t>(std::max<std::int64_t>(0, args.getInt("threads"))),
          static_cast<std::size_t>(std::max<std::int64_t>(0, args.getInt("shards"))),
          /*resident=*/-1, transport, pipeline);
      std::fprintf(stdout,
                   "simulator: %zu machines x %zu words, %zu shard(s)%s%s\n",
                   sim.numMachines(), sim.wordsPerMachine(), sim.numShards(),
                   sim.numShards() > 1
                       ? (sim.residentShards()
                              ? (sim.tcpMeshShards()
                                     ? " (resident workers, tcp mesh)"
                                     : (sim.shmRingShards()
                                            ? " (resident workers, shm ring)"
                                            : (sim.peerMeshShards()
                                                   ? " (resident workers, peer "
                                                     "mesh)"
                                                   : " (resident workers, "
                                                     "coordinator relay)")))
                              : " (fork per round)")
                       : "",
                   sim.numShards() > 1 && sim.residentShards()
                       ? (sim.pipelinedShards() ? " [pipelined rounds]"
                                                : " [strict barrier]")
                       : "");
      const DistSpannerResult r =
          algo == "dist-tradeoff"
              ? buildDistributedTradeoff(sim, g, k, t, seed)
              : buildDistributedBaswanaSen(sim, g, k, seed);
      const double bound = 2.0 * k - 1.0;
      std::fprintf(stdout,
                   "%s: %zu edges (%.1f%%), k=%u, %zu iterations, "
                   "%zu simulator rounds, %zu words moved\n",
                   algo.c_str(), r.edges.size(),
                   g.numEdges() ? 100.0 * static_cast<double>(r.edges.size()) /
                                      static_cast<double>(g.numEdges())
                                : 0.0,
                   k, r.iterations, r.simulatorRounds, r.wordsMoved);
      if (args.getBool("verify")) {
        const StretchReport report = verifySpanner(
            g, r.edges, bound, {.maxEdgeChecks = 4000, .pairSources = 4});
        std::fprintf(stdout,
                     "audit: spanning=%s maxEdgeStretch=%.2f maxPairStretch=%.2f "
                     "violations=%zu\n",
                     report.spanning ? "yes" : "NO", report.maxEdgeStretch,
                     report.maxPairStretch, report.violations);
        if (!report.spanning || report.violations > 0) return 1;
      }
      if (args.has("out")) {
        const Graph h = subgraph(g, r.edges);
        writeEdgeListFile(h, args.get("out"));
        std::fprintf(stdout, "spanner written to %s\n", args.get("out").c_str());
      }
      return 0;
    }

    const SpannerResult r = runAlgorithm(args, g);
    std::fprintf(stdout,
                 "%s: %zu edges (%.1f%%), k=%u, %zu iterations / %zu epochs\n",
                 r.algorithm.c_str(), r.edges.size(),
                 g.numEdges()
                     ? 100.0 * static_cast<double>(r.edges.size()) /
                           static_cast<double>(g.numEdges())
                     : 0.0,
                 r.k, r.iterations, r.epochs);
    const double gamma = args.getDouble("gamma");
    std::fprintf(stdout,
                 "rounds: %ld MPC (gamma=%.2f) | %ld near-linear | %ld clique\n",
                 r.cost.mpcRounds(gamma), gamma, r.cost.nearLinearRounds(),
                 r.cost.cliqueRounds());
    std::fprintf(stdout, "certified stretch <= %.1f; ledger: %s\n", r.stretchBound,
                 r.cost.ledgerString().c_str());

    if (args.getBool("verify")) {
      const StretchReport report = verifySpanner(
          g, r.edges, r.stretchBound, {.maxEdgeChecks = 4000, .pairSources = 4});
      std::fprintf(stdout,
                   "audit: spanning=%s maxEdgeStretch=%.2f maxPairStretch=%.2f "
                   "violations=%zu\n",
                   report.spanning ? "yes" : "NO", report.maxEdgeStretch,
                   report.maxPairStretch, report.violations);
      if (!report.spanning || report.violations > 0) return 1;
    }
    if (args.has("out")) {
      const Graph h = subgraph(g, r.edges);
      writeEdgeListFile(h, args.get("out"));
      std::fprintf(stdout, "spanner written to %s\n", args.get("out").c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
