// mpcspan — command-line spanner builder.
//
// Reads a graph (edge-list file or generated family), runs the chosen
// spanner algorithm, reports the execution profile, optionally audits the
// stretch and writes the spanner as an edge list.
//
//   mpcspan --family gnm --n 10000 --deg 12 --weights uniform
//           --algo tradeoff --k 8 --t 0 --verify --out spanner.txt
//   mpcspan --input graph.txt --algo baswana-sen --k 4
//   mpcspan --algo dist-tradeoff --n 2000 --k 8 --shards 4 --threads 2
//
// Subcommands wire up the build-once / serve-many query plane (src/query):
//
//   mpcspan build-oracle --n 2000 --algo tradeoff --k 6 --out g.mpqa
//   mpcspan query --artifact g.mpqa --queries 20000 --threads 4
//
// The dist-* algorithms run end-to-end on the word-accurate MPC machine
// simulator; --threads sets the stepping-pool lanes and --shards the worker
// processes of the sharded runtime backend (0 = MPCSPAN_THREADS /
// MPCSPAN_SHARDS env defaults).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "graph/connectivity.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "mpc/dist_spanner.hpp"
#include "query/audit.hpp"
#include "query/build.hpp"
#include "runtime/thread_pool.hpp"
#include "serve/client.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/cluster_merging.hpp"
#include "spanner/sqrtk.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/unweighted_fast.hpp"
#include "spanner/verify.hpp"
#include "util/args.hpp"

using namespace mpcspan;

namespace {

Graph loadGraphFile(const std::string& path, const std::string& format) {
  if (format == "mpcspan") return readEdgeListFile(path);
  if (format == "snap") return readSnapDimacsFile(path);
  if (format != "auto")
    throw std::invalid_argument("unknown --format: " + format +
                                " (want auto|mpcspan|snap)");
  // Sniff: mpcspan edge lists start with an "n <count>" header line.
  std::ifstream probe(path);
  if (!probe) throw std::runtime_error("cannot open for read: " + path);
  std::string line, tok;
  while (std::getline(probe, line)) {
    std::istringstream ss(line);
    if (!(ss >> tok)) continue;
    if (tok[0] == '#' || tok[0] == '%') continue;
    probe.close();
    return tok == "n" ? readEdgeListFile(path) : readSnapDimacsFile(path);
  }
  throw std::runtime_error("empty input file: " + path);
}

Graph loadGraph(const ArgParser& args) {
  if (args.has("input"))
    return loadGraphFile(args.get("input"), args.get("format"));
  const auto n = static_cast<std::size_t>(args.getInt("n"));
  const double deg = args.getDouble("deg");
  WeightSpec weights;
  const std::string wm = args.get("weights");
  if (wm == "uniform")
    weights = {WeightModel::kUniform, args.getDouble("wmax")};
  else if (wm == "integer")
    weights = {WeightModel::kInteger, args.getDouble("wmax")};
  else if (wm == "exponential")
    weights = {WeightModel::kExponential, args.getDouble("wmax")};
  else if (wm != "unit")
    throw std::invalid_argument("unknown --weights: " + wm);

  const std::string fam = args.get("family");
  Rng rng(static_cast<std::uint64_t>(args.getInt("seed")));
  for (Family f : {Family::kGnm, Family::kBarabasiAlbert, Family::kGrid,
                   Family::kGeometric, Family::kCycle, Family::kHypercube,
                   Family::kComplete})
    if (fam == familyName(f)) return makeFamily(f, n, deg, rng, weights);
  throw std::invalid_argument("unknown --family: " + fam);
}

SpannerResult runAlgorithm(const ArgParser& args, const Graph& g) {
  const auto k = static_cast<std::uint32_t>(args.getInt("k"));
  const auto t = static_cast<std::uint32_t>(args.getInt("t"));
  const auto seed = static_cast<std::uint64_t>(args.getInt("seed"));
  const std::string algo = args.get("algo");
  if (algo == "baswana-sen") return buildBaswanaSen(g, {.k = k, .seed = seed});
  if (algo == "cluster-merging")
    return buildClusterMergingSpanner(g, {.k = k, .seed = seed});
  if (algo == "sqrtk") return buildSqrtKSpanner(g, {.k = k, .seed = seed});
  if (algo == "tradeoff") {
    TradeoffParams p;
    p.k = k;
    p.t = t;
    p.seed = seed;
    return buildTradeoffSpanner(g, p);
  }
  if (algo == "unweighted-fast") {
    UnweightedFastParams p;
    p.k = k;
    p.gamma = args.getDouble("gamma");
    p.seed = seed;
    return buildUnweightedFastSpanner(g, p).spanner;
  }
  throw std::invalid_argument("unknown --algo: " + algo);
}

// ---------------------------------------------------------------------------
// build-oracle: run the full pipeline (spanner + sketches) once and save the
// query artifact.

int runBuildOracle(int argc, const char* const* argv) {
  ArgParser args("mpcspan build-oracle",
                 "build a query artifact (spanner + TZ sketches) and save it");
  args.flag("input", "", "graph file (overrides --family)")
      .flag("format", "auto", "input format: auto|mpcspan|snap (SNAP/DIMACS)")
      .flag("family", "gnm",
            "generator: gnm|barabasi-albert|grid|geometric|cycle|hypercube|complete")
      .flag("n", "10000", "vertices (generated graphs)")
      .flag("deg", "12", "target average degree (generated graphs)")
      .flag("weights", "uniform", "unit|uniform|integer|exponential")
      .flag("wmax", "100", "max weight for non-unit models")
      .flag("algo", "tradeoff",
            "tradeoff|baswana-sen|dist-tradeoff|dist-baswana-sen")
      .flag("k", "8", "spanner stretch parameter")
      .flag("t", "0", "trade-off growth iterations (0 = log k)")
      .flag("gamma", "0.5", "machine-memory exponent (dist-* simulator)")
      .flag("threads", "0", "simulator stepping-pool lanes (dist-*)")
      .flag("shards", "0", "simulator worker processes (dist-*)")
      .flag("sketch-k", "3", "Thorup-Zwick levels (stretch 2k-1 on the spanner)")
      .flag("sketch-seed", "1", "sketch sampling seed")
      .flag("cache", "64", "oracle LRU capacity (rows) when serving")
      .flag("seed", "1", "spanner random seed")
      .flag("out", "", "artifact output path (required)");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n\n%s", args.error().c_str(), args.usage().c_str());
    return 2;
  }
  if (args.helpRequested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  try {
    if (args.get("out").empty())
      throw std::invalid_argument("build-oracle requires --out <path>");
    const Graph g = loadGraph(args);
    std::fprintf(stdout, "graph: n=%zu m=%zu %s\n", g.numVertices(), g.numEdges(),
                 g.isUnweighted() ? "(unweighted)" : "(weighted)");

    query::BuildPlan plan;
    plan.algo = args.get("algo");
    plan.k = static_cast<std::uint32_t>(args.getInt("k"));
    plan.t = static_cast<std::uint32_t>(args.getInt("t"));
    plan.seed = static_cast<std::uint64_t>(args.getInt("seed"));
    plan.sketchK = static_cast<std::uint32_t>(args.getInt("sketch-k"));
    plan.sketchSeed = static_cast<std::uint64_t>(args.getInt("sketch-seed"));
    plan.cacheSources = static_cast<std::size_t>(
        std::max<std::int64_t>(1, args.getInt("cache")));
    plan.threads = static_cast<std::size_t>(
        std::max<std::int64_t>(0, args.getInt("threads")));
    plan.shards = static_cast<std::size_t>(
        std::max<std::int64_t>(0, args.getInt("shards")));
    plan.gamma = args.getDouble("gamma");

    const auto t0 = std::chrono::steady_clock::now();
    const query::QueryArtifact a = query::buildArtifact(g, plan);
    const double buildS =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::fprintf(stdout,
                 "%s: spanner %zu edges (%.1f%%), k=%u, stretch <= %.1f\n",
                 a.algorithm.c_str(), a.spannerEdges.size(),
                 g.numEdges() ? 100.0 * static_cast<double>(a.spannerEdges.size()) /
                                    static_cast<double>(g.numEdges())
                              : 0.0,
                 a.k, a.spannerStretch);
    std::fprintf(stdout,
                 "sketches: k=%u, %zu bunch entries, composed stretch <= %.1f\n",
                 a.sketchParams.k, a.sketches.totalBunchEntries(),
                 a.composedStretch);
    if (a.buildRounds)
      std::fprintf(stdout, "simulator: %zu rounds, %zu words moved\n",
                   a.buildRounds, a.wordsMoved);
    std::fprintf(stdout, "build time: %.2f s\n", buildS);

    query::saveArtifactFile(a, args.get("out"));
    std::fprintf(stdout, "artifact written to %s\n", args.get("out").c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// query: reload an artifact and serve distance queries from it (no rebuild).

// --connect: the same subcommand as a network client of mpcspand. Keeps
// the local flags' meaning; --audit stays local-only (it needs the graph).
int runQueryConnected(const ArgParser& args) {
  const std::string where = args.get("connect");
  const auto colon = where.rfind(':');
  if (colon == std::string::npos || colon + 1 >= where.size())
    throw std::invalid_argument("--connect wants host:port, got '" + where +
                                "'");
  serve::ClientOptions copt;
  copt.host = where.substr(0, colon);
  copt.port = static_cast<std::uint16_t>(
      std::stoul(where.substr(colon + 1)));
  copt.seed = static_cast<std::uint64_t>(args.getInt("seed"));
  serve::ServeClient client(copt);

  if (!args.get("reload").empty()) {
    const std::uint64_t version = client.reload(args.get("reload"));
    std::fprintf(stdout, "reloaded: snapshot v%llu now serving\n",
                 static_cast<unsigned long long>(version));
    return 0;
  }
  if (args.getBool("stats")) {
    const serve::ServeStats s = client.stats();
    std::fprintf(stdout,
                 "snapshot v%llu, n=%llu\n"
                 "accepted %llu, active %llu, queries %llu (degraded %llu)\n"
                 "shed %llu, slow-drops %llu, malformed %llu, reloads ok %llu "
                 "failed %llu\n",
                 static_cast<unsigned long long>(s.snapshotVersion),
                 static_cast<unsigned long long>(s.numVertices),
                 static_cast<unsigned long long>(s.accepted),
                 static_cast<unsigned long long>(s.activeSessions),
                 static_cast<unsigned long long>(s.queries),
                 static_cast<unsigned long long>(s.degraded),
                 static_cast<unsigned long long>(s.shedQueueFull),
                 static_cast<unsigned long long>(s.slowClientDrops),
                 static_cast<unsigned long long>(s.malformedFrames),
                 static_cast<unsigned long long>(s.reloadsOk),
                 static_cast<unsigned long long>(s.reloadsFailed));
    std::fprintf(stdout, "\n%-14s %10s %10s %10s\n", "tier", "attempts",
                 "hits", "mean-us");
    for (const serve::TierCounters& t : s.tiers)
      std::fprintf(stdout, "%-14s %10llu %10llu %10.2f\n", t.name.c_str(),
                   static_cast<unsigned long long>(t.attempts),
                   static_cast<unsigned long long>(t.hits),
                   t.attempts ? static_cast<double>(t.nanos) / 1e3 /
                                    static_cast<double>(t.attempts)
                              : 0.0);
    return 0;
  }

  const std::int64_t deadlineArg = args.getInt("deadline-ms");
  const std::uint64_t deadlineMs =
      deadlineArg < 0 ? serve::kDeadlineDefault
                      : static_cast<std::uint64_t>(deadlineArg);

  if (args.has("u") || args.has("v")) {
    if (!(args.has("u") && args.has("v")))
      throw std::invalid_argument("--u and --v must be given together");
    const auto u = static_cast<VertexId>(args.getInt("u"));
    const auto v = static_cast<VertexId>(args.getInt("v"));
    const serve::WireAnswer ans = client.query(u, v, deadlineMs);
    std::fprintf(stdout,
                 "d(%u, %u) <= %.6g (tier %lld, stretch <= %.1f%s, "
                 "snapshot v%llu)\n",
                 u, v, ans.dist, static_cast<long long>(ans.tier),
                 ans.stretch, ans.degraded ? ", degraded" : "",
                 static_cast<unsigned long long>(ans.snapshotVersion));
    return 0;
  }

  const serve::HelloInfo info = client.serverInfo();
  if (info.numVertices == 0) throw std::runtime_error("server graph is empty");
  const auto q = static_cast<std::size_t>(
      std::max<std::int64_t>(1, args.getInt("queries")));
  Rng qrng(static_cast<std::uint64_t>(args.getInt("seed")));
  std::size_t degraded = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < q; ++i) {
    const auto u = static_cast<VertexId>(qrng.next(info.numVertices));
    const auto v = static_cast<VertexId>(qrng.next(info.numVertices));
    const serve::WireAnswer ans = client.query(u, v, deadlineMs);
    if (ans.degraded) ++degraded;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::fprintf(stdout,
               "served %zu remote queries in %.3f s (%.0f qps), "
               "%zu degraded (%.1f%%)\n",
               q, elapsed, elapsed > 0 ? static_cast<double>(q) / elapsed : 0.0,
               degraded, 100.0 * static_cast<double>(degraded) /
                             static_cast<double>(q));
  return 0;
}

int runQuery(int argc, const char* const* argv) {
  ArgParser args("mpcspan query",
                 "serve distance queries from a saved artifact");
  args.flag("artifact", "", "artifact path (required unless --connect)")
      .flag("connect", "",
            "host:port of a running mpcspand; queries go over the wire "
            "instead of a locally loaded artifact")
      .flag("deadline-ms", "-1",
            "per-query deadline budget sent with --connect queries "
            "(-1 = server default)")
      .flag("stats", "false", "with --connect: print daemon counters and exit")
      .flag("reload", "",
            "with --connect: ask the daemon to hot-swap to this artifact path")
      .flag("queries", "10000", "random query count")
      .flag("seed", "1", "query rng seed")
      .flag("threads", "1", "client threads for the random-query run")
      .flag("warm", "-1", "oracle rows to warm before serving (-1 = cache capacity)")
      .flag("cached-only", "true",
            "middle tier answers only from warm cache rows (declines when cold)")
      .flag("audit", "false", "compare a sample of answers against exact Dijkstra")
      .flag("u", "", "single query source (with --v; skips the random run)")
      .flag("v", "", "single query target");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n\n%s", args.error().c_str(), args.usage().c_str());
    return 2;
  }
  if (args.helpRequested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }
  try {
    if (!args.get("connect").empty()) {
      if (args.getBool("audit"))
        throw std::invalid_argument(
            "--audit needs the graph and is local-only; drop --connect");
      return runQueryConnected(args);
    }
    if (args.get("artifact").empty())
      throw std::invalid_argument("query requires --artifact <path>");
    const query::QueryArtifact a = query::loadArtifactFile(args.get("artifact"));
    const std::size_t n = a.graph.numVertices();
    std::fprintf(stdout,
                 "loaded artifact: n=%zu m=%zu, spanner %zu edges (%s, k=%u), "
                 "sketch k=%u, composed stretch <= %.1f\n",
                 n, a.graph.numEdges(), a.spannerEdges.size(),
                 a.algorithm.c_str(), a.k, a.sketchParams.k, a.composedStretch);
    if (n == 0) throw std::runtime_error("artifact graph is empty");

    query::QueryPlaneOptions opt;
    opt.spannerCachedOnly = args.getBool("cached-only");
    query::QueryPlane plane = query::makeQueryPlane(a, opt);

    const auto clientThreads = static_cast<std::size_t>(
        std::max<std::int64_t>(1, args.getInt("threads")));
    runtime::ThreadPool pool(clientThreads);

    std::int64_t warmN = args.getInt("warm");
    if (warmN < 0) warmN = static_cast<std::int64_t>(plane.oracle->cacheCapacity());
    if (warmN > 0) {
      Rng wrng(static_cast<std::uint64_t>(args.getInt("seed")) ^ 0x9e3779b97f4a7c15ull);
      std::vector<VertexId> sources;
      sources.reserve(static_cast<std::size_t>(warmN));
      for (std::int64_t i = 0; i < warmN; ++i)
        sources.push_back(static_cast<VertexId>(wrng.next(n)));
      const std::size_t warmed = plane.oracle->warm(sources, pool);
      std::fprintf(stdout, "warmed %zu oracle rows (capacity %zu)\n", warmed,
                   plane.oracle->cacheCapacity());
    }

    if (args.has("u") || args.has("v")) {
      if (!(args.has("u") && args.has("v")))
        throw std::invalid_argument("--u and --v must be given together");
      const auto u = static_cast<VertexId>(args.getInt("u"));
      const auto v = static_cast<VertexId>(args.getInt("v"));
      if (u >= n || v >= n)
        throw std::invalid_argument("--u/--v out of range [0, n)");
      const Weight est = plane.tiered->query(u, v);
      const Weight exact = dijkstraPair(a.graph, u, v);
      std::fprintf(stdout, "d(%u, %u) <= %.6g (exact %.6g)\n", u, v, est, exact);
      return 0;
    }

    const auto q = static_cast<std::size_t>(
        std::max<std::int64_t>(1, args.getInt("queries")));
    Rng qrng(static_cast<std::uint64_t>(args.getInt("seed")));
    std::vector<query::QueryPair> pairs(q);
    for (auto& p : pairs)
      p = {static_cast<VertexId>(qrng.next(n)),
           static_cast<VertexId>(qrng.next(n))};
    std::vector<Weight> answers(q);

    const auto t0 = std::chrono::steady_clock::now();
    pool.parallelFor(q, [&](std::size_t i) {
      answers[i] = plane.tiered->query(pairs[i].first, pairs[i].second);
    });
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    std::fprintf(stdout, "\n%-14s %10s %10s %6s %9s\n", "tier", "attempts",
                 "hits", "hit%", "mean-us");
    for (const query::TierStats& s : plane.tiered->stats()) {
      const double hitPct =
          s.attempts ? 100.0 * static_cast<double>(s.hits) /
                           static_cast<double>(s.attempts)
                     : 0.0;
      const double meanUs =
          s.attempts ? static_cast<double>(s.nanos) / 1e3 /
                           static_cast<double>(s.attempts)
                     : 0.0;
      std::fprintf(stdout, "%-14s %10llu %10llu %5.1f%% %9.2f\n", s.name.c_str(),
                   static_cast<unsigned long long>(s.attempts),
                   static_cast<unsigned long long>(s.hits), hitPct, meanUs);
    }
    std::fprintf(stdout,
                 "\nserved %zu queries in %.3f s (%.0f qps, %zu client threads)\n",
                 q, elapsed,
                 elapsed > 0 ? static_cast<double>(q) / elapsed : 0.0,
                 clientThreads);

    if (args.getBool("audit")) {
      const query::AuditReport report =
          query::auditEnvelope(a.graph, pairs, answers, a.composedStretch);
      for (const query::AuditViolation& bad : report.violations)
        std::fprintf(stdout,
                     "audit violation: u=%u v=%u got=%.9g exact=%.9g "
                     "(envelope [1, %.3f])\n",
                     bad.u, bad.v, bad.got, bad.exact, a.composedStretch);
      std::fprintf(stdout,
                   "audit: %zu pairs, mean ratio %.3f, max %.3f, violations %zu\n",
                   report.audited, report.meanRatio, report.maxRatio,
                   report.violations.size());
      if (!report.ok()) return 1;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && argv[1][0] != '-') {
    const std::string cmd = argv[1];
    if (cmd == "build-oracle") return runBuildOracle(argc - 1, argv + 1);
    if (cmd == "query") return runQuery(argc - 1, argv + 1);
    std::fprintf(stderr,
                 "error: unknown subcommand '%s' (want build-oracle or query)\n",
                 cmd.c_str());
    return 2;
  }
  ArgParser args("mpcspan", "spanner construction CLI (SPAA 2021 reproduction)");
  args.flag("input", "", "edge-list file (overrides --family)")
      .flag("format", "auto", "input format: auto|mpcspan|snap (SNAP/DIMACS)")
      .flag("family", "gnm", "generator: gnm|barabasi-albert|grid|geometric|cycle|hypercube|complete")
      .flag("n", "10000", "vertices (generated graphs)")
      .flag("deg", "12", "target average degree (generated graphs)")
      .flag("weights", "uniform", "unit|uniform|integer|exponential")
      .flag("wmax", "100", "max weight for non-unit models")
      .flag("algo", "tradeoff",
            "baswana-sen|cluster-merging|sqrtk|tradeoff|unweighted-fast|"
            "dist-baswana-sen|dist-tradeoff")
      .flag("k", "8", "stretch parameter")
      .flag("t", "0", "trade-off growth iterations (0 = log k)")
      .flag("gamma", "0.5", "machine-memory exponent (round conversion; unweighted-fast)")
      .flag("threads", "0", "stepping-pool lanes (0 = MPCSPAN_THREADS/hardware)")
      .flag("shards", "0",
            "simulator worker processes (0 = MPCSPAN_SHARDS, 1 = in-process; "
            ">1 forks resident workers, MPCSPAN_RESIDENT=0 for fork-per-round, "
            "MPCSPAN_PEER_EXCHANGE=0 for the coordinator-relay exchange)")
      .flag("transport", "",
            "cross-shard section route: shm (shared-memory rings, default), "
            "socket (PR-5 socket mesh), tcp (rendezvous mesh, cross-machine "
            "capable), relay (coordinator relay); empty = MPCSPAN_TCP_EXCHANGE "
            "/ MPCSPAN_SHM_EXCHANGE / MPCSPAN_PEER_EXCHANGE defaults")
      .flag("pipeline", "",
            "pipelined resident rounds: on (overlap cross-shard delivery "
            "with the next round's local phase, the default), off (strict "
            "barrier, the bit-identical reference); empty = MPCSPAN_PIPELINE")
      .flag("seed", "1", "random seed")
      .flag("verify", "false", "audit stretch (sampled) before exiting")
      .flag("out", "", "write the spanner as an edge list to this path");

  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n\n%s", args.error().c_str(), args.usage().c_str());
    return 2;
  }
  if (args.helpRequested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }

  try {
    const Graph g = loadGraph(args);
    std::fprintf(stdout, "graph: n=%zu m=%zu %s\n", g.numVertices(), g.numEdges(),
                 g.isUnweighted() ? "(unweighted)" : "(weighted)");

    const std::string algo = args.get("algo");
    if (algo == "dist-baswana-sen" || algo == "dist-tradeoff") {
      const auto k = static_cast<std::uint32_t>(args.getInt("k"));
      const auto t = static_cast<std::uint32_t>(args.getInt("t"));
      const auto seed = static_cast<std::uint64_t>(args.getInt("seed"));
      const std::string transportName = args.get("transport");
      runtime::Transport transport = runtime::Transport::kDefault;
      if (transportName == "shm")
        transport = runtime::Transport::kShmRing;
      else if (transportName == "socket")
        transport = runtime::Transport::kSocketMesh;
      else if (transportName == "tcp")
        transport = runtime::Transport::kTcp;
      else if (transportName == "relay")
        transport = runtime::Transport::kRelay;
      else if (!transportName.empty())
        throw std::invalid_argument("unknown --transport: " + transportName);
      const std::string pipelineName = args.get("pipeline");
      int pipeline = -1;
      if (pipelineName == "on")
        pipeline = 1;
      else if (pipelineName == "off")
        pipeline = 0;
      else if (!pipelineName.empty())
        throw std::invalid_argument("unknown --pipeline: " + pipelineName +
                                    " (expected on or off)");
      // Negative counts fall back to the defaults (0 = env var / hardware),
      // matching the env vars' own garbage handling.
      MpcSimulator sim(
          MpcConfig::forInput(8 * g.numEdges(), args.getDouble("gamma"), 3.0),
          static_cast<std::size_t>(std::max<std::int64_t>(0, args.getInt("threads"))),
          static_cast<std::size_t>(std::max<std::int64_t>(0, args.getInt("shards"))),
          /*resident=*/-1, transport, pipeline);
      std::fprintf(stdout,
                   "simulator: %zu machines x %zu words, %zu shard(s)%s%s\n",
                   sim.numMachines(), sim.wordsPerMachine(), sim.numShards(),
                   sim.numShards() > 1
                       ? (sim.residentShards()
                              ? (sim.tcpMeshShards()
                                     ? " (resident workers, tcp mesh)"
                                     : (sim.shmRingShards()
                                            ? " (resident workers, shm ring)"
                                            : (sim.peerMeshShards()
                                                   ? " (resident workers, peer "
                                                     "mesh)"
                                                   : " (resident workers, "
                                                     "coordinator relay)")))
                              : " (fork per round)")
                       : "",
                   sim.numShards() > 1 && sim.residentShards()
                       ? (sim.pipelinedShards() ? " [pipelined rounds]"
                                                : " [strict barrier]")
                       : "");
      const DistSpannerResult r =
          algo == "dist-tradeoff"
              ? buildDistributedTradeoff(sim, g, k, t, seed)
              : buildDistributedBaswanaSen(sim, g, k, seed);
      const double bound = 2.0 * k - 1.0;
      std::fprintf(stdout,
                   "%s: %zu edges (%.1f%%), k=%u, %zu iterations, "
                   "%zu simulator rounds, %zu words moved\n",
                   algo.c_str(), r.edges.size(),
                   g.numEdges() ? 100.0 * static_cast<double>(r.edges.size()) /
                                      static_cast<double>(g.numEdges())
                                : 0.0,
                   k, r.iterations, r.simulatorRounds, r.wordsMoved);
      if (args.getBool("verify")) {
        const StretchReport report = verifySpanner(
            g, r.edges, bound, {.maxEdgeChecks = 4000, .pairSources = 4});
        std::fprintf(stdout,
                     "audit: spanning=%s maxEdgeStretch=%.2f maxPairStretch=%.2f "
                     "violations=%zu\n",
                     report.spanning ? "yes" : "NO", report.maxEdgeStretch,
                     report.maxPairStretch, report.violations);
        if (!report.spanning || report.violations > 0) return 1;
      }
      if (args.has("out")) {
        const Graph h = subgraph(g, r.edges);
        writeEdgeListFile(h, args.get("out"));
        std::fprintf(stdout, "spanner written to %s\n", args.get("out").c_str());
      }
      return 0;
    }

    const SpannerResult r = runAlgorithm(args, g);
    std::fprintf(stdout,
                 "%s: %zu edges (%.1f%%), k=%u, %zu iterations / %zu epochs\n",
                 r.algorithm.c_str(), r.edges.size(),
                 g.numEdges()
                     ? 100.0 * static_cast<double>(r.edges.size()) /
                           static_cast<double>(g.numEdges())
                     : 0.0,
                 r.k, r.iterations, r.epochs);
    const double gamma = args.getDouble("gamma");
    std::fprintf(stdout,
                 "rounds: %ld MPC (gamma=%.2f) | %ld near-linear | %ld clique\n",
                 r.cost.mpcRounds(gamma), gamma, r.cost.nearLinearRounds(),
                 r.cost.cliqueRounds());
    std::fprintf(stdout, "certified stretch <= %.1f; ledger: %s\n", r.stretchBound,
                 r.cost.ledgerString().c_str());

    if (args.getBool("verify")) {
      const StretchReport report = verifySpanner(
          g, r.edges, r.stretchBound, {.maxEdgeChecks = 4000, .pairSources = 4});
      std::fprintf(stdout,
                   "audit: spanning=%s maxEdgeStretch=%.2f maxPairStretch=%.2f "
                   "violations=%zu\n",
                   report.spanning ? "yes" : "NO", report.maxEdgeStretch,
                   report.maxPairStretch, report.violations);
      if (!report.spanning || report.violations > 0) return 1;
    }
    if (args.has("out")) {
      const Graph h = subgraph(g, r.edges);
      writeEdgeListFile(h, args.get("out"));
      std::fprintf(stdout, "spanner written to %s\n", args.get("out").c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return 0;
}
