#!/usr/bin/env bash
# Fault-injection smoke for the TCP shard transport: launch a remote-attached
# sharded run (coordinator + two `mpcspan_worker --connect` shards over
# loopback), SIGKILL one worker mid-run, and assert the whole fleet fails
# *cleanly* — the coordinator exits nonzero with a ShardError on stderr
# within its poll deadline (no hang), and no worker process is left behind.
#
#   tools/tcp_fault_smoke.sh [build-dir] [port]
#
# Exit status: 0 = clean failure observed, 1 = wrong failure shape,
# 2 = setup problem. CI wraps this in `timeout` so a hung rendezvous or a
# never-returning coordinator also fails the job fast.
set -u

BUILD_DIR="${1:-build}"
PORT="${2:-39411}"
TIMEOUT_MS=8000
WORKER="$BUILD_DIR/mpcspan_worker"

if [[ ! -x "$WORKER" ]]; then
  echo "tcp_fault_smoke: $WORKER not found (build first)" >&2
  exit 2
fi

OUT="$(mktemp -d)"
trap 'rm -rf "$OUT"' EXIT

# Enough rounds that the run is guaranteed to still be mid-wave when the
# kill lands; the coordinator must abort long before finishing them.
"$WORKER" --coordinate 2 --port "$PORT" --machines 8 --rounds 200000 \
  --timeout "$TIMEOUT_MS" >"$OUT/coord.out" 2>"$OUT/coord.err" &
COORD=$!
sleep 0.5

"$WORKER" --connect "127.0.0.1:$PORT" --shard 0 --timeout "$TIMEOUT_MS" \
  2>"$OUT/w0.err" &
W0=$!
"$WORKER" --connect "127.0.0.1:$PORT" --shard 1 --timeout "$TIMEOUT_MS" \
  2>"$OUT/w1.err" &
W1=$!

# Let the mesh form and the round traffic start, then murder shard 1.
sleep 1.0
if ! kill -9 "$W1" 2>/dev/null; then
  echo "tcp_fault_smoke: worker 1 died before the injected kill" >&2
  cat "$OUT"/w1.err >&2
  exit 2
fi

wait "$COORD"
COORD_RC=$?
wait "$W0" 2>/dev/null
wait "$W1" 2>/dev/null

echo "--- coordinator stdout ---"; cat "$OUT/coord.out"
echo "--- coordinator stderr ---"; cat "$OUT/coord.err"
echo "--- surviving worker stderr ---"; cat "$OUT/w0.err"

if [[ "$COORD_RC" -ne 1 ]]; then
  echo "tcp_fault_smoke: coordinator exit=$COORD_RC, want 1 (ShardError)" >&2
  exit 1
fi
if ! grep -q "ShardError" "$OUT/coord.err"; then
  echo "tcp_fault_smoke: no ShardError on coordinator stderr" >&2
  exit 1
fi
if pgrep -f "mpcspan_worker --connect 127.0.0.1:$PORT" >/dev/null; then
  echo "tcp_fault_smoke: worker processes left behind" >&2
  exit 1
fi

echo "tcp_fault_smoke: PASS (coordinator exit=1, clean ShardError, no stray workers)"
