// mpcspand — the long-lived distance-serving daemon.
//
// Loads a query artifact (mpcspan build-oracle), assembles the tiered
// query plane, and answers distance queries over a length-prefixed socket
// protocol until SIGTERM/SIGINT. SIGHUP (or a client RELOAD command) hot-
// swaps the artifact without dropping a single in-flight query; a corrupt
// replacement is rejected and the old snapshot keeps serving.
//
//   mpcspan build-oracle --n 2000 --k 6 --out g.mpqa
//   mpcspand --artifact g.mpqa --port 7021 &
//   mpcspan query --connect 127.0.0.1:7021 --u 3 --v 99
//   kill -HUP $!    # reload g.mpqa in place
//   kill $!         # clean shutdown, exit 0
//
// Signal handling is self-pipe only: the handlers write one byte ('T'
// terminate, 'H' reload) to the server's nonblocking signal fd and do
// nothing else — every async-signal-safety question ends there.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <exception>

#include "serve/server.hpp"
#include "util/args.hpp"

namespace {

int gSignalFd = -1;

void onTerm(int) {
  const char c = 'T';
  if (gSignalFd >= 0) (void)!::write(gSignalFd, &c, 1);
}

void onHup(int) {
  const char c = 'H';
  if (gSignalFd >= 0) (void)!::write(gSignalFd, &c, 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpcspan;
  std::setvbuf(stdout, nullptr, _IOLBF, 0);  // greppable from a pipe/log

  ArgParser args("mpcspand",
                 "distance-serving daemon over a saved query artifact");
  args.flag("artifact", "", "query artifact path (required)")
      .flag("host", "127.0.0.1", "listen address")
      .flag("port", "0", "listen port (0 = ephemeral, printed at startup)")
      .flag("threads", "4", "session threads")
      .flag("queue", "64", "accept-queue watermark (connections beyond it are shed)")
      .flag("deadline-ms", "-1",
            "default per-query deadline budget; queries past it answer from "
            "a cheaper tier with the degraded flag (-1 = unbounded)")
      .flag("frame-timeout-ms", "10000", "budget for a started frame to finish arriving")
      .flag("write-timeout-ms", "10000", "budget for a reply to drain to the client")
      .flag("cached-only", "true",
            "middle tier answers only from warm cache rows (declines when cold)")
      .flag("warm", "0", "oracle rows to warm per snapshot load (-1 = cache capacity)");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n\n%s", args.error().c_str(),
                 args.usage().c_str());
    return 2;
  }
  if (args.helpRequested()) {
    std::fputs(args.usage().c_str(), stdout);
    return 0;
  }

  try {
    if (args.get("artifact").empty())
      throw std::invalid_argument("mpcspand requires --artifact <path>");

    serve::ServerOptions opts;
    opts.artifactPath = args.get("artifact");
    opts.host = args.get("host");
    opts.port = static_cast<std::uint16_t>(args.getInt("port"));
    opts.sessionThreads = static_cast<std::size_t>(
        std::max<std::int64_t>(1, args.getInt("threads")));
    opts.queueCapacity = static_cast<std::size_t>(
        std::max<std::int64_t>(1, args.getInt("queue")));
    opts.defaultDeadlineMs = static_cast<int>(args.getInt("deadline-ms"));
    opts.frameTimeoutMs = static_cast<int>(args.getInt("frame-timeout-ms"));
    opts.writeTimeoutMs = static_cast<int>(args.getInt("write-timeout-ms"));
    opts.cachedOnly = args.getBool("cached-only");
    opts.warmRows = args.getInt("warm");

    serve::Server server(opts);
    server.start();  // installs the process-wide SIGPIPE ignore

    gSignalFd = server.signalFd();
    struct sigaction sa {};
    sa.sa_handler = onTerm;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    sa.sa_handler = onHup;
    ::sigaction(SIGHUP, &sa, nullptr);

    const serve::ServeStats s = server.statsSnapshot();
    std::fprintf(stdout,
                 "mpcspand: serving %s (snapshot v%llu, n=%llu) listening on "
                 "%s:%u\n",
                 opts.artifactPath.c_str(),
                 static_cast<unsigned long long>(s.snapshotVersion),
                 static_cast<unsigned long long>(s.numVertices),
                 opts.host.c_str(), server.port());

    server.waitUntilStopRequested();
    gSignalFd = -1;
    server.stop();
    std::fprintf(stdout, "mpcspand: clean shutdown\n");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mpcspand: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
