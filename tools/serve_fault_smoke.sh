#!/usr/bin/env bash
# Fault-injection smoke for the serving daemon: start mpcspand over a small
# artifact, then throw the standard catalogue of client-side abuse at it —
# a client killed mid-run, garbage and oversized frames, a reload pointed
# at a bit-flipped artifact, a slow partial-frame writer, a connection
# burst past the shed watermark — and assert after every fault that the
# daemon still answers a correctness probe. Finish with SIGHUP (reload
# works) and SIGTERM (exit 0, "clean shutdown" on stdout, no stray
# process, port freed, no fd growth).
#
#   tools/serve_fault_smoke.sh [build-dir] [port]
#
# Exit status: 0 = daemon survived everything, 1 = a fault took it down or
# a probe failed, 2 = setup problem. CI wraps this in `timeout`.
set -u -o pipefail

BUILD_DIR="${1:-build}"
PORT="${2:-39427}"
MPCSPAN="$BUILD_DIR/mpcspan"
MPCSPAND="$BUILD_DIR/mpcspand"

if [[ ! -x "$MPCSPAN" || ! -x "$MPCSPAND" ]]; then
  echo "serve_fault_smoke: $MPCSPAN / $MPCSPAND not found (build first)" >&2
  exit 2
fi

OUT="$(mktemp -d)"
DAEMON=""
cleanup() {
  [[ -n "$DAEMON" ]] && kill -9 "$DAEMON" 2>/dev/null
  rm -rf "$OUT"
}
trap cleanup EXIT

fail() {
  echo "serve_fault_smoke: FAIL: $*" >&2
  echo "--- daemon log ---" >&2
  cat "$OUT/daemon.log" >&2
  exit 1
}

# The correctness probe: the same pair, every time; the answer must never
# change while any version of the same artifact is serving. The snapshot
# version is stripped — it legitimately bumps on reload.
probe() {
  "$MPCSPAN" query --connect "127.0.0.1:$PORT" --u 1 --v 7 \
    | sed 's/, snapshot v[0-9]*//'
}

daemon_fds() {
  ls "/proc/$DAEMON/fd" 2>/dev/null | wc -l
}

# --- Setup: artifact + daemon ---------------------------------------------

"$MPCSPAN" build-oracle --n 400 --deg 6 --k 4 --sketch-k 2 \
  --out "$OUT/a.mpqa" >/dev/null 2>&1 || exit 2

"$MPCSPAND" --artifact "$OUT/a.mpqa" --port "$PORT" --queue 4 --threads 2 \
  >"$OUT/daemon.log" 2>&1 &
DAEMON=$!
for _ in $(seq 50); do
  grep -q "listening on" "$OUT/daemon.log" && break
  sleep 0.1
done
grep -q "listening on" "$OUT/daemon.log" || fail "daemon never came up"

BASELINE="$(probe)" || fail "initial probe failed"
echo "baseline: $BASELINE"
FDS_BASE="$(daemon_fds)"

# --- Fault 1: client killed mid-request-stream -----------------------------

"$MPCSPAN" query --connect "127.0.0.1:$PORT" --queries 2000000 \
  >/dev/null 2>&1 &
VICTIM=$!
sleep 0.3
kill -9 "$VICTIM" 2>/dev/null
wait "$VICTIM" 2>/dev/null
[[ "$(probe)" == "$BASELINE" ]] || fail "probe changed after client kill"
echo "fault 1 (client killed mid-stream): survived"

# --- Fault 2: garbage frames and an oversized length prefix ---------------

# Raw garbage bytes (not even a valid length prefix stream).
head -c 64 /dev/urandom >"/dev/tcp/127.0.0.1/$PORT" 2>/dev/null
# A length prefix claiming 1 GiB, then nothing.
printf '\x00\x00\x00\x40\x00\x00\x00\x00' >"/dev/tcp/127.0.0.1/$PORT" 2>/dev/null
sleep 0.3
[[ "$(probe)" == "$BASELINE" ]] || fail "probe changed after garbage frames"
echo "fault 2 (garbage + oversized frames): survived"

# --- Fault 3: reload of a truncated, bit-flipped artifact ------------------

head -c 2000 "$OUT/a.mpqa" >"$OUT/corrupt.mpqa"
printf '\x5a' | dd of="$OUT/corrupt.mpqa" bs=1 seek=100 conv=notrunc 2>/dev/null
if "$MPCSPAN" query --connect "127.0.0.1:$PORT" --reload "$OUT/corrupt.mpqa" \
    >/dev/null 2>&1; then
  fail "corrupt reload reported success"
fi
[[ "$(probe)" == "$BASELINE" ]] || fail "probe changed after corrupt reload"
"$MPCSPAN" query --connect "127.0.0.1:$PORT" --stats | tee "$OUT/stats.txt" \
  | grep -q "failed 1" || fail "stats do not show the failed reload"
# ... and a good reload still lands afterwards.
"$MPCSPAN" query --connect "127.0.0.1:$PORT" --reload "$OUT/a.mpqa" \
  >/dev/null || fail "good reload after corrupt one failed"
[[ "$(probe)" == "$BASELINE" ]] || fail "probe changed after good reload"
echo "fault 3 (bit-flipped artifact reload): survived"

# --- Fault 4: slow client writing a partial frame and stalling -------------

(
  exec 3<>"/dev/tcp/127.0.0.1/$PORT" || exit 0
  # 8-byte length prefix promising 32 bytes, then only 2 of them, then stall.
  printf '\x20\x00\x00\x00\x00\x00\x00\x00\x01\x02' >&3
  sleep 3
  exec 3>&-
) &
SLOW=$!
sleep 0.5
[[ "$(probe)" == "$BASELINE" ]] || fail "probe stalled behind slow client"
echo "fault 4 (slow partial-frame client): survived"
wait "$SLOW" 2>/dev/null

# --- Fault 5: connection burst past the shed watermark ---------------------

BURST=()
for i in $(seq 60); do
  "$MPCSPAN" query --connect "127.0.0.1:$PORT" --u 1 --v 7 \
    >>"$OUT/burst.out" 2>>"$OUT/burst.err" &
  BURST+=($!)
done
wait "${BURST[@]}" 2>/dev/null
[[ "$(probe)" == "$BASELINE" ]] || fail "probe failed after burst storm"
echo "fault 5 (60-client burst): survived"

# --- Fd stability ----------------------------------------------------------

sleep 0.5
FDS_NOW="$(daemon_fds)"
if (( FDS_NOW > FDS_BASE + 6 )); then
  fail "daemon fd count grew: $FDS_BASE -> $FDS_NOW"
fi
echo "fds stable: $FDS_BASE -> $FDS_NOW"

# --- SIGHUP reload, then SIGTERM clean shutdown ----------------------------

kill -HUP "$DAEMON" || fail "SIGHUP delivery failed"
sleep 0.5
[[ "$(probe)" == "$BASELINE" ]] || fail "probe changed after SIGHUP reload"

kill -TERM "$DAEMON" || fail "SIGTERM delivery failed"
DAEMON_WAIT="$DAEMON"
DAEMON=""  # cleanup() must not SIGKILL it; we are asserting a clean exit
wait "$DAEMON_WAIT"
RC=$?
[[ "$RC" -eq 0 ]] || fail "daemon exit=$RC after SIGTERM, want 0"
grep -q "clean shutdown" "$OUT/daemon.log" || fail "no clean-shutdown banner"
if pgrep -f "mpcspand --artifact $OUT" >/dev/null; then
  fail "stray mpcspand left behind"
fi
# Port freed: a fresh bind on the same port must succeed.
"$MPCSPAND" --artifact "$OUT/a.mpqa" --port "$PORT" >"$OUT/rebind.log" 2>&1 &
REBIND=$!
for _ in $(seq 50); do
  grep -q "listening on" "$OUT/rebind.log" && break
  sleep 0.1
done
grep -q "listening on" "$OUT/rebind.log" || fail "port not freed after exit"
kill -TERM "$REBIND" && wait "$REBIND" || fail "rebound daemon unclean exit"

echo "serve_fault_smoke: PASS (daemon survived kill/garbage/corrupt-reload/slow-client/burst, clean SIGTERM exit)"
