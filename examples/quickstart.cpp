// Quickstart: build a spanner of a random weighted graph with the general
// trade-off algorithm, verify it, and print the execution profile.
//
//   ./examples/quickstart [n] [avg_degree] [k] [t]
#include <cstdio>
#include <cstdlib>

#include "graph/generators.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/verify.hpp"

using namespace mpcspan;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10000;
  const double deg = argc > 2 ? std::strtod(argv[2], nullptr) : 12.0;
  const std::uint32_t k = argc > 3 ? std::atoi(argv[3]) : 8;
  const std::uint32_t t = argc > 4 ? std::atoi(argv[4]) : 0;  // 0 = log k

  // 1. A workload: weighted Erdos-Renyi graph.
  Rng rng(2024);
  const Graph g = gnmRandom(n, static_cast<std::size_t>(n * deg / 2), rng,
                            {WeightModel::kUniform, 100.0}, /*connected=*/true);
  std::printf("graph: n=%zu m=%zu (weighted)\n", g.numVertices(), g.numEdges());

  // 2. Build the Section-5 spanner.
  TradeoffParams params;
  params.k = k;
  params.t = t;
  params.seed = 42;
  const SpannerResult r = buildTradeoffSpanner(g, params);

  std::printf("spanner: %zu edges (%.1f%% of input), k=%u t=%u\n", r.edges.size(),
              100.0 * static_cast<double>(r.edges.size()) /
                  static_cast<double>(g.numEdges()),
              r.k, r.t);
  std::printf("rounds:  %zu growth iterations over %zu epochs\n", r.iterations,
              r.epochs);
  std::printf("         MPC sublinear (gamma=0.5): %ld rounds; near-linear: %ld; "
              "congested clique: %ld\n",
              r.cost.mpcRounds(0.5), r.cost.nearLinearRounds(),
              r.cost.cliqueRounds());
  std::printf("ledger:  %s\n", r.cost.ledgerString().c_str());
  std::printf("stretch: certified <= %.1f\n", r.stretchBound);

  // 3. Audit it.
  const StretchReport report = verifySpanner(
      g, r.edges, r.stretchBound, {.maxEdgeChecks = 2000, .pairSources = 4});
  std::printf("audit:   spanning=%s, max edge stretch %.2f, max pair stretch %.2f, "
              "violations %zu\n",
              report.spanning ? "yes" : "NO", report.maxEdgeStretch,
              report.maxPairStretch, report.violations);
  return report.spanning && report.violations == 0 ? 0 : 1;
}
