// Scenario: sparsifying a social network for analytics.
//
// Heavy-tailed (Barabasi-Albert) graphs are the canonical "MapReduce-scale"
// workload the MPC literature motivates. This example compares all four
// spanner algorithms as sparsifiers: how many edges survive, how distorted
// distances get, and how many rounds a real deployment would pay.
#include <cstdio>
#include <cstdlib>

#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/cluster_merging.hpp"
#include "spanner/sqrtk.hpp"
#include "spanner/tradeoff.hpp"
#include "spanner/verify.hpp"
#include "util/table.hpp"

using namespace mpcspan;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const std::uint32_t k = argc > 2 ? std::atoi(argv[2]) : 8;

  Rng rng(7);
  const Graph g = barabasiAlbert(n, 8, rng, {WeightModel::kUniform, 10.0});
  std::printf("social graph: n=%zu m=%zu (preferential attachment, weighted)\n",
              g.numVertices(), g.numEdges());

  Table table("sparsification trade-offs (k=" + std::to_string(k) + ")");
  table.header({"algorithm", "kept edges", "kept %", "iters",
                "rounds (near-linear)", "measured stretch"});
  auto addRow = [&](const char* name, const SpannerResult& r) {
    table.addRow({name, Table::num(r.edges.size()),
                  Table::num(100.0 * double(r.edges.size()) / double(g.numEdges()), 1),
                  Table::num(r.iterations), Table::num(r.cost.nearLinearRounds()),
                  Table::num(measurePairStretch(g, r.edges, 4, 1), 2)});
  };

  addRow("baswana-sen", buildBaswanaSen(g, {.k = k, .seed = 1}));
  addRow("cluster-merging", buildClusterMergingSpanner(g, {.k = k, .seed = 1}));
  TradeoffParams tp;
  tp.k = k;
  tp.t = 0;
  tp.seed = 1;
  addRow("tradeoff (t=log k)", buildTradeoffSpanner(g, tp));
  addRow("sqrt-k", buildSqrtKSpanner(g, {.k = k, .seed = 1}));
  table.print();

  std::printf("\nReading: hubs make BA graphs easy to sparsify; the fast\n"
              "algorithms keep roughly the same number of edges as Baswana-Sen\n"
              "while using a fraction of the rounds.\n");
  return 0;
}
