// Scenario: compact per-vertex distance sketches for a dense network
// (the [DN19] application of the paper's spanners).
//
// Building Thorup-Zwick sketches directly on a dense graph costs
// O~(m n^{1/k}) preprocessing; sparsifying first with the Section-5 spanner
// cuts that to O~(n^{1+1/k+o(1)}) while queries stay O(k)-time and the
// stretch certificate composes. This demo builds both and races them.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apsp/sketches.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "spanner/tradeoff.hpp"
#include "util/stats.hpp"

using namespace mpcspan;

namespace {

void audit(const char* label, const Graph& g, const DistanceSketches& sk,
           double certified) {
  Rng pick(99);
  std::vector<double> ratios;
  while (ratios.size() < 300) {
    const auto u = static_cast<VertexId>(pick.next(g.numVertices()));
    const auto v = static_cast<VertexId>(pick.next(g.numVertices()));
    if (u == v) continue;
    const Weight exact = dijkstraPair(g, u, v);
    if (exact == kInfDist || exact == 0) continue;
    ratios.push_back(sk.query(u, v) / exact);
  }
  const Summary s = summarize(ratios);
  std::printf("  %-12s relaxations=%-10zu storage=%-8zu mean=%.3f p90=%.3f "
              "max=%.2f (certified <= %.0f)\n",
              label, sk.preprocessingRelaxations(), sk.totalBunchEntries(),
              s.mean, s.p90, s.max, certified);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;

  Rng rng(21);
  const Graph g = gnmRandom(n, 30 * n, rng, {WeightModel::kUniform, 60.0},
                            /*connected=*/true);
  std::printf("dense network: n=%zu m=%zu (avg degree %.0f)\n", g.numVertices(),
              g.numEdges(), 2.0 * double(g.numEdges()) / double(n));

  const SketchParams sp{.k = 3, .seed = 11};
  std::printf("\nThorup-Zwick sketches, k=%u (stretch 2k-1 = %u):\n", sp.k,
              2 * sp.k - 1);
  const DistanceSketches direct(g, sp);
  audit("direct", g, direct, direct.stretchBound());

  TradeoffParams tp;
  tp.k = 6;
  tp.t = 0;
  tp.seed = 12;
  const SpannerResult spanner = buildTradeoffSpanner(g, tp);
  std::printf("\nSection-5 spanner first: %zu -> %zu edges in %zu iterations\n",
              g.numEdges(), spanner.edges.size(), spanner.iterations);
  const SpannerSketches accel = buildSketchesOnSpanner(g, spanner, sp);
  audit("on spanner", g, accel.sketches, accel.composedStretchBound);

  const double speedup =
      double(direct.preprocessingRelaxations()) /
      double(std::max<std::size_t>(1, accel.sketches.preprocessingRelaxations()));
  std::printf("\npreprocessing speedup: %.1fx fewer edge relaxations\n", speedup);
  return speedup > 1.0 ? 0 : 1;
}
