// Scenario: weighted APSP in the Congested Clique (Corollary 1.5 +
// Theorem 8.1), end to end.
//
// n cluster nodes hold one vertex each. They build the Theorem 8.1 spanner
// (parallel-repetition sampling so the size bound holds w.h.p., not just in
// expectation), disseminate it with Lenzen routing, and then every node
// answers distance queries locally. The demo prints the full round budget
// and compares against what a naive "collect the graph" approach would pay.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "cclique/apsp_cc.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"

using namespace mpcspan;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;

  Rng rng(3);
  const Graph g = gnmRandom(n, 16 * n, rng, {WeightModel::kInteger, 1000.0},
                            /*connected=*/true);
  std::printf("clique: %zu nodes; input graph m=%zu (weighted)\n", n, g.numEdges());

  const CcApspResult r = runCcApsp(g, {.seed = 9});
  std::printf("spanner: k=%u t=%u -> %zu edges; %ld construction rounds "
              "(incl. 2/iteration repetition overhead), %ld collection rounds\n",
              r.kUsed, r.tUsed, r.spanner.edges.size(), r.spannerRounds,
              r.collectRounds);
  std::printf("total: %ld clique rounds; retried iterations: %ld of %zu\n",
              r.totalRounds, r.spanner.repetition.iterationsWithRetry,
              r.spanner.iterations);

  // The naive alternative: every node learns the whole graph.
  CongestedClique naive(n);
  const std::size_t naiveRounds = naive.collectToAll(2 * g.numEdges());
  std::printf("naive collect-everything: %zu rounds (%.1fx more)\n", naiveRounds,
              static_cast<double>(naiveRounds) / static_cast<double>(r.totalRounds));

  // Sample a query from node 0's local table.
  const auto approx = r.distancesFrom(g, 0);
  const auto exact = dijkstra(g, 0);
  double worst = 1.0;
  for (VertexId v = 1; v < g.numVertices(); v += 131)
    if (exact[v] != kInfDist && exact[v] > 0)
      worst = std::max(worst, approx[v] / exact[v]);
  std::printf("sampled approximation from node 0: max ratio %.2f (certified <= %.1f)\n",
              worst, r.approxBound);
  return 0;
}
