// Scenario: an approximate distance oracle for a road-like network
// (Corollary 1.4 / Section 7 end-to-end).
//
// A random geometric graph with Euclidean weights stands in for a road
// network. We run the near-linear-memory MPC APSP pipeline: build the
// k=log n spanner, confirm it fits a single O~(n)-word machine, then answer
// point-to-point queries from that machine and compare with exact Dijkstra.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "apsp/apsp_mpc.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "util/stats.hpp"

using namespace mpcspan;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16000;

  Rng rng(12);
  const double radius = std::sqrt(10.0 / (3.14159265 * static_cast<double>(n)));
  const Graph g = randomGeometric(n, radius, rng, /*euclideanWeights=*/true);
  std::printf("road network: n=%zu m=%zu (geometric, Euclidean weights)\n",
              g.numVertices(), g.numEdges());

  MpcApspResult r = runMpcApsp(g, {.seed = 5});
  std::printf("oracle: k=%u t=%u, spanner %zu edges (%zu words), machine budget %zu "
              "words -> fits: %s\n",
              r.kUsed, r.tUsed, r.oracle.spanner().edges.size(),
              r.oracle.spannerWords(), r.machineMemoryWords,
              r.fitsOneMachine ? "yes" : "NO");
  std::printf("rounds (near-linear regime): %ld; certified approximation <= %.1f; "
              "theoretical log^s n = %.1f\n",
              r.roundsNearLinear, r.approxCertified, r.approxTheoretical);

  // Point-to-point queries vs ground truth.
  std::vector<double> ratios;
  Rng qrng(17);
  for (int q = 0; q < 5; ++q) {
    const auto src = static_cast<VertexId>(qrng.next(g.numVertices()));
    const auto exact = dijkstra(g, src);
    const auto approxRow = r.oracle.distancesFrom(src);
    const auto& approx = *approxRow;
    for (VertexId v = 0; v < g.numVertices(); v += 97)
      if (v != src && exact[v] != kInfDist && exact[v] > 0)
        ratios.push_back(approx[v] / exact[v]);
  }
  const Summary s = summarize(ratios);
  std::printf("query audit over %zu pairs: mean ratio %.3f, p90 %.3f, max %.3f\n",
              s.count, s.mean, s.p90, s.max);
  std::printf("\nReading: geometric graphs are locally tree-like, so realized\n"
              "approximation is drastically better than the worst-case bound.\n");
  return r.fitsOneMachine ? 0 : 1;
}
