// Wire protocol of the distance-serving daemon (mpcspand): request/reply
// opcodes, frame limits, and the typed encode/decode helpers both the
// server sessions and serve/client.hpp speak.
//
// The codec discipline is inherited from runtime/shard/wire.hpp: every
// frame is `u64 length + body`, fields are host-endian u8/u64/str appended
// by WireWriter and vetted by WireReader (short frame -> ShardError, never
// an over-read). On top of that the serve layer adds what a *public* port
// needs and the trusted shard mesh does not:
//   - a hello with magic + version, so a stray client of the wrong protocol
//     gets a typed error instead of garbage answers;
//   - a 1 MiB frame cap (kMaxServeFrameBytes) — no legitimate request or
//     reply is near it, so a bigger length prefix can only be garbage and
//     is rejected before any allocation;
//   - typed error and shed replies, so the client can tell "retry later"
//     (shed, transport) from "your request is wrong" (error).
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/shard/wire.hpp"

namespace mpcspan::serve {

using runtime::shard::WireReader;
using runtime::shard::WireWriter;

/// Base of every client-visible serve failure.
class ServeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The transport broke (connect/read/write failed, timeout, peer died,
/// malformed reply). Retriable for idempotent requests.
class ServeTransportError : public ServeError {
 public:
  using ServeError::ServeError;
};

/// The server shed the request under overload. Retriable with backoff.
class ServeShedError : public ServeError {
 public:
  using ServeError::ServeError;
};

/// The server understood the request and rejected it (bad vertex id,
/// reload of a corrupt artifact, version mismatch). Not retriable.
class ServeRemoteError : public ServeError {
 public:
  using ServeError::ServeError;
};

/// "MPSD" little-endian — distinct from the shard mesh's magic, so a serve
/// client dialing a shard port (or vice versa) fails the handshake loudly.
inline constexpr std::uint64_t kServeMagic = 0x4453504Dull;
inline constexpr std::uint8_t kServeVersion = 1;

/// No legitimate serve frame is near 1 MiB (stats with every tier is a few
/// hundred bytes); larger length prefixes are treated as garbage.
inline constexpr std::uint64_t kMaxServeFrameBytes = 1ull << 20;

/// QUERY deadline sentinel: "use the server's configured default".
inline constexpr std::uint64_t kDeadlineDefault = ~0ull;

// Request opcodes (first byte of every client -> server frame).
inline constexpr std::uint8_t kOpHello = 1;
inline constexpr std::uint8_t kOpQuery = 2;
inline constexpr std::uint8_t kOpStats = 3;
inline constexpr std::uint8_t kOpReload = 4;
inline constexpr std::uint8_t kOpPing = 5;

// Reply opcodes (first byte of every server -> client frame). High bit set
// so a desynced stream can never alias a request.
inline constexpr std::uint8_t kReHello = 0x81;
inline constexpr std::uint8_t kReAnswer = 0x82;
inline constexpr std::uint8_t kReStats = 0x83;
inline constexpr std::uint8_t kReOk = 0x84;
inline constexpr std::uint8_t kReError = 0x85;
inline constexpr std::uint8_t kReShed = 0x86;

/// What the server tells a client at handshake.
struct HelloInfo {
  std::uint64_t snapshotVersion = 0;  // bumps on every successful reload
  std::uint64_t numVertices = 0;
  double composedStretch = 1.0;  // certified envelope of exact:no, tiers:yes
};

/// One answered distance query plus its degradation certificate — the wire
/// form of TieredOracle::BudgetedAnswer, stamped with the snapshot that
/// produced it.
struct WireAnswer {
  double dist = 0;
  std::int64_t tier = -1;  // answering tier index; -1 = all declined
  bool degraded = false;   // a more accurate tier was skipped for budget
  double stretch = 1.0;    // stretchBound() of the answering tier
  std::uint64_t snapshotVersion = 0;
};

/// Per-tier oracle counters as served by STATS.
struct TierCounters {
  std::string name;
  std::uint64_t attempts = 0;
  std::uint64_t hits = 0;
  std::uint64_t nanos = 0;
};

/// Everything the daemon's STATS command reports: snapshot identity, query
/// totals, the robustness counters (shed/slow/malformed/reload), and the
/// per-tier oracle breakdown.
struct ServeStats {
  std::uint64_t snapshotVersion = 0;
  std::uint64_t numVertices = 0;
  std::uint64_t accepted = 0;        // connections accepted (not shed)
  std::uint64_t activeSessions = 0;  // currently being served
  std::uint64_t queries = 0;         // QUERY frames answered
  std::uint64_t degraded = 0;        // ... of which budget-degraded
  std::uint64_t shedQueueFull = 0;   // connections shed at the watermark
  std::uint64_t slowClientDrops = 0;  // sessions dropped for stalled I/O
  std::uint64_t malformedFrames = 0;  // frames rejected by the codec
  std::uint64_t reloadsOk = 0;
  std::uint64_t reloadsFailed = 0;  // rejected artifacts (old one kept)
  std::vector<TierCounters> tiers;
};

inline void putF64(WireWriter& w, double v) {
  w.u64(std::bit_cast<std::uint64_t>(v));
}
inline double getF64(WireReader& r) { return std::bit_cast<double>(r.u64()); }

// Body encoders/decoders (the opcode byte is written/consumed by the
// caller; decoders throw ShardError via WireReader on truncation).
void encodeHelloInfo(WireWriter& w, const HelloInfo& h);
HelloInfo decodeHelloInfo(WireReader& r);

void encodeAnswer(WireWriter& w, const WireAnswer& a);
WireAnswer decodeAnswer(WireReader& r);

void encodeStats(WireWriter& w, const ServeStats& s);
ServeStats decodeStats(WireReader& r);

}  // namespace mpcspan::serve
