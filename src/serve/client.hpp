// ServeClient: the daemon's counterpart — connect/request timeouts, typed
// errors, and bounded exponential-backoff retries with jitter.
//
// Retry policy: only *transport* faults (connect/read/write failed, timed
// out, malformed reply) and *shed* replies are retried, and only for
// idempotent reads (query/stats/ping). A reload is never retried — the
// first attempt may have landed and a second would double-bump the
// snapshot version behind the operator's back. A remote error ("your
// request is wrong") is never retried: the server already understood it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "graph/graph.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "util/rng.hpp"

namespace mpcspan::serve {

struct ClientOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connectTimeoutMs = 2000;
  int requestTimeoutMs = 5000;
  /// Retries after the first attempt (0 = single attempt).
  int maxRetries = 3;
  int backoffBaseMs = 25;
  int backoffMaxMs = 500;
  std::uint64_t seed = 1;  // jitter stream
};

class ServeClient {
 public:
  explicit ServeClient(ClientOptions opts);
  ~ServeClient() = default;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// One distance query. deadlineMs = kDeadlineDefault lets the server
  /// apply its configured default. Retried (idempotent).
  WireAnswer query(VertexId u, VertexId v,
                   std::uint64_t deadlineMs = kDeadlineDefault);

  /// Daemon counters. Retried (idempotent).
  ServeStats stats();

  /// Liveness probe. Retried (idempotent).
  void ping();

  /// Asks the daemon to load `path` (empty = its current artifact path)
  /// and swap it in. NOT retried; returns the new snapshot version.
  /// Throws ServeRemoteError if the daemon rejected the artifact.
  std::uint64_t reload(const std::string& path);

  /// Handshake info of the current connection (connects if needed).
  HelloInfo serverInfo();

  /// Drops the connection; the next request redials.
  void close();

  /// Backoff before retry `attempt` (0-based): min(maxMs, base << attempt)
  /// scaled by uniform jitter in [0.5, 1.0) — a fleet of clients bounced
  /// by the same shed wave must not reconverge in lockstep. Exposed for
  /// tests.
  static int backoffDelayMs(int attempt, const ClientOptions& opts, Rng& rng);

 private:
  void ensureConnected();
  /// One attempt of one request frame: send, read reply, vet the reply
  /// opcode. Throws the typed ServeError hierarchy.
  WireReader requestOnce(const WireWriter& req, std::uint8_t expectRe);
  /// Retry loop around requestOnce for idempotent requests.
  WireReader requestIdempotent(const WireWriter& req, std::uint8_t expectRe);

  ClientOptions opts_;
  WireFd conn_;
  std::optional<HelloInfo> hello_;
  Rng rng_;
};

}  // namespace mpcspan::serve
