#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace mpcspan::serve {

using runtime::shard::ShardError;

Server::Server(ServerOptions opts) : opts_(std::move(opts)) {
  if (opts_.artifactPath.empty())
    throw std::invalid_argument("Server: artifactPath is required");
  if (opts_.sessionThreads == 0) opts_.sessionThreads = 1;
  if (opts_.queueCapacity == 0) opts_.queueCapacity = 1;
}

Server::~Server() { stop(); }

std::shared_ptr<const Server::Snapshot> Server::loadSnapshot(
    const std::string& path, std::uint64_t version) const {
  const query::QueryArtifact a = query::loadArtifactFile(path);
  if (a.graph.numVertices() == 0)
    throw std::runtime_error("artifact graph is empty: " + path);
  query::QueryPlaneOptions planeOpt;
  planeOpt.spannerCachedOnly = opts_.cachedOnly;
  auto snap = std::make_shared<Snapshot>();
  snap->plane = query::makeQueryPlane(a, planeOpt);
  snap->version = version;
  snap->path = path;
  snap->numVertices = a.graph.numVertices();
  snap->composedStretch = a.composedStretch;
  if (opts_.warmRows != 0) {
    const std::int64_t warmN =
        opts_.warmRows < 0
            ? static_cast<std::int64_t>(snap->plane.oracle->cacheCapacity())
            : opts_.warmRows;
    Rng rng(0x9e3779b97f4a7c15ull ^ version);
    std::vector<VertexId> sources;
    sources.reserve(static_cast<std::size_t>(warmN));
    for (std::int64_t i = 0; i < warmN; ++i)
      sources.push_back(static_cast<VertexId>(rng.next(snap->numVertices)));
    runtime::ThreadPool pool(2);
    snap->plane.oracle->warm(sources, pool);
  }
  return snap;
}

void Server::start() {
  if (started_) return;
  ignoreSigpipe();
  snapshot_.store(loadSnapshot(opts_.artifactPath, 1));
  listener_ = listenTcp(opts_.host, opts_.port, 0, &port_);
  int fds[2];
  if (::pipe2(fds, O_CLOEXEC | O_NONBLOCK) != 0)
    throw std::runtime_error(std::string("serve self-pipe: ") +
                             std::strerror(errno));
  signalRead_.reset(fds[0]);
  signalWrite_.reset(fds[1]);
  stopping_.store(false);
  {
    std::lock_guard<std::mutex> lk(stopMutex_);
    stopRequested_ = false;
  }
  acceptor_ = std::thread(&Server::acceptorLoop, this);
  for (std::size_t i = 0; i < opts_.sessionThreads; ++i)
    sessions_.emplace_back(&Server::sessionLoop, this);
  reloader_ = std::thread(&Server::reloaderLoop, this);
  started_ = true;
}

void Server::requestStopLocked() {
  {
    std::lock_guard<std::mutex> lk(stopMutex_);
    stopRequested_ = true;
  }
  stopping_.store(true);
  stopCv_.notify_all();
  queueCv_.notify_all();
  reloadCv_.notify_all();
}

void Server::stop() {
  if (!started_) return;
  requestStopLocked();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& t : sessions_)
    if (t.joinable()) t.join();
  sessions_.clear();
  if (reloader_.joinable()) reloader_.join();
  {
    std::lock_guard<std::mutex> lk(queueMutex_);
    pending_.clear();  // unserved connections close unanswered
  }
  listener_.reset();
  signalRead_.reset();
  signalWrite_.reset();
  started_ = false;
}

void Server::waitUntilStopRequested() {
  std::unique_lock<std::mutex> lk(stopMutex_);
  stopCv_.wait(lk, [&] { return stopRequested_; });
}

bool Server::reload(const std::string& path, std::string* err) {
  // One load at a time; queries never take this lock — they only read the
  // atomic snapshot pointer.
  std::lock_guard<std::mutex> lk(reloadMutex_);
  const auto cur = snapshot_.load();
  const std::string target = path.empty() ? cur->path : path;
  try {
    snapshot_.store(loadSnapshot(target, cur->version + 1));
    reloadsOk_.fetch_add(1, std::memory_order_relaxed);
    return true;
  } catch (const std::exception& e) {
    // The old snapshot was never touched; it keeps serving.
    reloadsFailed_.fetch_add(1, std::memory_order_relaxed);
    if (err != nullptr) *err = e.what();
    return false;
  }
}

ServeStats Server::statsSnapshot() const {
  ServeStats s;
  const auto snap = snapshot_.load();
  if (snap) {
    s.snapshotVersion = snap->version;
    s.numVertices = snap->numVertices;
    const query::OracleSnapshot os = snap->plane.tiered->snapshot();
    s.tiers.reserve(os.tiers.size());
    for (const query::TierStats& t : os.tiers)
      s.tiers.push_back({t.name, t.attempts, t.hits, t.nanos});
  }
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.activeSessions = activeSessions_.load(std::memory_order_relaxed);
  s.queries = queries_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.shedQueueFull = shedQueueFull_.load(std::memory_order_relaxed);
  s.slowClientDrops = slowClientDrops_.load(std::memory_order_relaxed);
  s.malformedFrames = malformedFrames_.load(std::memory_order_relaxed);
  s.reloadsOk = reloadsOk_.load(std::memory_order_relaxed);
  s.reloadsFailed = reloadsFailed_.load(std::memory_order_relaxed);
  return s;
}

void Server::acceptorLoop() {
  // Shed connections linger here until the client has seen the reply. A
  // close right after the shed write races the client's in-flight hello:
  // data arriving at a closed socket triggers an RST, which can destroy
  // the unread shed frame in the client's receive buffer. Instead the fd
  // is drained and held (bounded: ~250 ms or the client's own close),
  // polled nonblockingly from this loop — shedding never blocks accepts.
  struct Shedding {
    WireFd fd;
    util::DeadlineBudget linger;
  };
  std::vector<Shedding> shedding;
  const auto pumpShedding = [&shedding] {
    std::erase_if(shedding, [](Shedding& s) {
      char sink[256];
      for (;;) {
        const ssize_t rc = ::recv(s.fd.fd(), sink, sizeof(sink), 0);
        if (rc > 0) continue;                      // discard stray bytes
        if (rc == 0) return true;                  // client closed: done
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          return s.linger.expired();               // keep until expiry
        return true;                               // socket error: drop
      }
    });
  };

  while (!stopping_.load(std::memory_order_relaxed)) {
    pumpShedding();
    pollfd fds[2] = {{listener_.fd(), POLLIN, 0},
                     {signalRead_.fd(), POLLIN, 0}};
    const int rc = ::poll(fds, 2, opts_.pollSliceMs > 0 ? opts_.pollSliceMs
                                                        : 200);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;  // a broken poll fd set is unrecoverable; stop() cleans up
    }
    if (fds[1].revents != 0) {
      char cmds[64];
      for (;;) {
        const ssize_t nr = ::read(signalRead_.fd(), cmds, sizeof(cmds));
        if (nr <= 0) break;  // EAGAIN / EINTR: drained (or retry next poll)
        for (ssize_t i = 0; i < nr; ++i) {
          if (cmds[i] == 'T') requestStopLocked();
          if (cmds[i] == 'H') {
            {
              std::lock_guard<std::mutex> lk(reloadReqMutex_);
              ++reloadRequests_;
            }
            reloadCv_.notify_one();
          }
        }
      }
    }
    if (stopping_.load(std::memory_order_relaxed)) break;
    if (fds[0].revents == 0) continue;
    // Drain every pending connection; past the watermark, shed instead of
    // queueing — bounded memory, and the client learns "retry later" now
    // rather than timing out in a line that will never move.
    for (;;) {
      WireFd conn = acceptOn(listener_.fd());
      if (!conn.valid()) break;
      bool shed = false;
      {
        std::lock_guard<std::mutex> lk(queueMutex_);
        if (pending_.size() >= opts_.queueCapacity) {
          shed = true;
        } else {
          pending_.push_back(std::move(conn));
          accepted_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (shed) {
        shedQueueFull_.fetch_add(1, std::memory_order_relaxed);
        WireWriter w;
        w.u8(kReShed);
        w.str("server overloaded: accept queue full, retry with backoff");
        // Best effort: one write attempt, no waiting on the shed client.
        (void)writeFrame(conn.fd(), w.data(), w.size(), 0,
                         IoPacing{&stopping_, 1});
        (void)::shutdown(conn.fd(), SHUT_WR);  // FIN after the shed frame
        if (shedding.size() < 128)
          shedding.push_back({std::move(conn), util::DeadlineBudget(250)});
      } else {
        queueCv_.notify_one();
      }
    }
  }
  queueCv_.notify_all();
  reloadCv_.notify_all();
}

void Server::sessionLoop() {
  for (;;) {
    WireFd conn;
    {
      std::unique_lock<std::mutex> lk(queueMutex_);
      queueCv_.wait(lk, [&] {
        return stopping_.load(std::memory_order_relaxed) || !pending_.empty();
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      conn = std::move(pending_.front());
      pending_.pop_front();
    }
    activeSessions_.fetch_add(1, std::memory_order_relaxed);
    serveConnection(std::move(conn));
    activeSessions_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Server::reloaderLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(reloadReqMutex_);
      reloadCv_.wait(lk, [&] {
        return stopping_.load(std::memory_order_relaxed) ||
               reloadRequests_ > 0;
      });
      if (stopping_.load(std::memory_order_relaxed)) return;
      reloadRequests_ = 0;  // coalesce a burst of SIGHUPs into one load
    }
    std::string err;
    if (!reload("", &err))
      std::fprintf(stderr, "mpcspand: reload failed (still serving old snapshot): %s\n",
                   err.c_str());
  }
}

void Server::serveConnection(WireFd conn) {
  const IoPacing pacing{&stopping_, opts_.pollSliceMs};
  const util::DeadlineBudget idle;  // a quiet client may sit connected
  std::vector<std::uint8_t> body;
  bool helloDone = false;
  for (;;) {
    const IoStatus st = readFrame(conn.fd(), body, kMaxServeFrameBytes, idle,
                                  opts_.frameTimeoutMs, pacing);
    if (st == IoStatus::kOk) {
      if (!dispatch(conn, body, helloDone)) break;
      continue;
    }
    if (st == IoStatus::kMalformed) {
      malformedFrames_.fetch_add(1, std::memory_order_relaxed);
      sendError(conn, "malformed frame: implausible length prefix");
      break;
    }
    if (st == IoStatus::kTimeout)
      slowClientDrops_.fetch_add(1, std::memory_order_relaxed);
    break;  // kEof / kStopped / kError: nothing left to say
  }
}

bool Server::sendReply(WireFd& conn, const WireWriter& w) {
  const IoPacing pacing{&stopping_, opts_.pollSliceMs};
  const IoStatus st =
      writeFrame(conn.fd(), w.data(), w.size(), opts_.writeTimeoutMs, pacing);
  if (st == IoStatus::kTimeout)
    slowClientDrops_.fetch_add(1, std::memory_order_relaxed);
  return st == IoStatus::kOk;
}

bool Server::sendError(WireFd& conn, const std::string& msg) {
  WireWriter w;
  w.u8(kReError);
  w.str(msg);
  return sendReply(conn, w);
}

bool Server::dispatch(WireFd& conn, const std::vector<std::uint8_t>& body,
                      bool& helloDone) {
  WireReader r = WireReader::fromBytes(std::vector<std::uint8_t>(body));
  try {
    const std::uint8_t op = r.u8();
    if (!helloDone && op != kOpHello) {
      sendError(conn, "hello required before requests");
      return false;
    }
    switch (op) {
      case kOpHello: {
        const std::uint64_t magic = r.u64();
        const std::uint8_t version = r.u8();
        if (magic != kServeMagic) {
          sendError(conn, "bad magic (not an mpcspand client)");
          return false;
        }
        if (version != kServeVersion) {
          sendError(conn, "protocol version " + std::to_string(version) +
                              " != " + std::to_string(kServeVersion));
          return false;
        }
        const auto snap = snapshot_.load();
        WireWriter w;
        w.u8(kReHello);
        encodeHelloInfo(
            w, {snap->version, snap->numVertices, snap->composedStretch});
        helloDone = true;
        return sendReply(conn, w);
      }
      case kOpQuery: {
        const std::uint64_t u = r.u64();
        const std::uint64_t v = r.u64();
        const std::uint64_t deadlineMs = r.u64();
        // Queries pin the snapshot they started with; a concurrent reload
        // swaps the pointer but cannot pull this one out from under us.
        const auto snap = snapshot_.load();
        if (u >= snap->numVertices || v >= snap->numVertices)
          return sendError(conn, "vertex id out of range [0, " +
                                     std::to_string(snap->numVertices) + ")");
        int budgetMs = opts_.defaultDeadlineMs;
        if (deadlineMs != kDeadlineDefault)
          budgetMs = deadlineMs >
                             static_cast<std::uint64_t>(
                                 std::numeric_limits<int>::max())
                         ? std::numeric_limits<int>::max()
                         : static_cast<int>(deadlineMs);
        const util::DeadlineBudget budget(budgetMs);
        const query::BudgetedAnswer ans = snap->plane.tiered->queryBudgeted(
            static_cast<VertexId>(u), static_cast<VertexId>(v), budget);
        queries_.fetch_add(1, std::memory_order_relaxed);
        if (ans.degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
        WireWriter w;
        w.u8(kReAnswer);
        encodeAnswer(w, {ans.dist, ans.tier, ans.degraded, ans.stretch,
                         snap->version});
        return sendReply(conn, w);
      }
      case kOpStats: {
        WireWriter w;
        w.u8(kReStats);
        encodeStats(w, statsSnapshot());
        return sendReply(conn, w);
      }
      case kOpReload: {
        const std::string path = r.str();
        std::string err;
        if (!reload(path, &err))
          return sendError(conn, "reload rejected: " + err);
        WireWriter w;
        w.u8(kReOk);
        w.u64(snapshot_.load()->version);
        return sendReply(conn, w);
      }
      case kOpPing: {
        WireWriter w;
        w.u8(kReOk);
        w.u64(0);
        return sendReply(conn, w);
      }
      default:
        sendError(conn, "unknown opcode " + std::to_string(op));
        return false;
    }
  } catch (const ShardError& e) {
    // A frame that passed the length vetting but not the codec: garbage.
    malformedFrames_.fetch_add(1, std::memory_order_relaxed);
    sendError(conn, std::string("malformed frame: ") + e.what());
    return false;
  }
}

}  // namespace mpcspan::serve
