#include "serve/protocol.hpp"

#include "runtime/shard/wire.hpp"

namespace mpcspan::serve {

using runtime::shard::ShardError;

void encodeHelloInfo(WireWriter& w, const HelloInfo& h) {
  w.u64(h.snapshotVersion);
  w.u64(h.numVertices);
  putF64(w, h.composedStretch);
}

HelloInfo decodeHelloInfo(WireReader& r) {
  HelloInfo h;
  h.snapshotVersion = r.u64();
  h.numVertices = r.u64();
  h.composedStretch = getF64(r);
  return h;
}

void encodeAnswer(WireWriter& w, const WireAnswer& a) {
  putF64(w, a.dist);
  w.u64(static_cast<std::uint64_t>(a.tier));
  w.u8(a.degraded ? 1 : 0);
  putF64(w, a.stretch);
  w.u64(a.snapshotVersion);
}

WireAnswer decodeAnswer(WireReader& r) {
  WireAnswer a;
  a.dist = getF64(r);
  a.tier = static_cast<std::int64_t>(r.u64());
  a.degraded = r.u8() != 0;
  a.stretch = getF64(r);
  a.snapshotVersion = r.u64();
  return a;
}

void encodeStats(WireWriter& w, const ServeStats& s) {
  w.u64(s.snapshotVersion);
  w.u64(s.numVertices);
  w.u64(s.accepted);
  w.u64(s.activeSessions);
  w.u64(s.queries);
  w.u64(s.degraded);
  w.u64(s.shedQueueFull);
  w.u64(s.slowClientDrops);
  w.u64(s.malformedFrames);
  w.u64(s.reloadsOk);
  w.u64(s.reloadsFailed);
  w.u64(s.tiers.size());
  for (const TierCounters& t : s.tiers) {
    w.str(t.name);
    w.u64(t.attempts);
    w.u64(t.hits);
    w.u64(t.nanos);
  }
}

ServeStats decodeStats(WireReader& r) {
  ServeStats s;
  s.snapshotVersion = r.u64();
  s.numVertices = r.u64();
  s.accepted = r.u64();
  s.activeSessions = r.u64();
  s.queries = r.u64();
  s.degraded = r.u64();
  s.shedQueueFull = r.u64();
  s.slowClientDrops = r.u64();
  s.malformedFrames = r.u64();
  s.reloadsOk = r.u64();
  s.reloadsFailed = r.u64();
  const std::uint64_t count = r.u64();
  // A tier row is at least 4 u64-sized fields; vet before sizing.
  if (count > r.remaining() / (4 * sizeof(std::uint64_t)) + 1)
    throw ShardError("serve stats frame: implausible tier count");
  s.tiers.resize(count);
  for (TierCounters& t : s.tiers) {
    t.name = r.str();
    t.attempts = r.u64();
    t.hits = r.u64();
    t.nanos = r.u64();
  }
  return s;
}

}  // namespace mpcspan::serve
