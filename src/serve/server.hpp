// The serving daemon's core: a Server owns a listening socket, a bounded
// accept queue drained by a small session-thread pool, and an RCU-swapped
// snapshot of the query plane. tools/mpcspand.cc is a thin main() around
// it; tests drive the same class in-process.
//
// Robustness layers (see src/serve/README.md for the full story):
//   deadlines   every QUERY carries a budget; TieredOracle::queryBudgeted
//               degrades to a cheaper tier (flagged, stretch-certified)
//               rather than blowing it.
//   hot reload  RELOAD command or SIGHUP loads a new artifact off-thread
//               and swaps it in atomically (std::atomic<shared_ptr> RCU).
//               A corrupt artifact is rejected; the old snapshot keeps
//               serving. In-flight queries hold the snapshot they started
//               with.
//   shedding    past the accept-queue watermark a connection gets a
//               best-effort shed reply and a close — bounded memory,
//               bounded latency for everyone already admitted.
//   isolation   per-session faults (garbage frames, slow readers, peers
//               dying mid-request) close that session, bump a counter,
//               and never touch the daemon.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "query/build.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"

namespace mpcspan::serve {

struct ServerOptions {
  std::string artifactPath;  // required: initial snapshot
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral (port() reports the bound one)
  std::size_t sessionThreads = 4;
  /// Accept-queue watermark: connections beyond it are shed, not queued.
  std::size_t queueCapacity = 64;
  /// Budget for QUERY frames that don't carry their own (-1 = unbounded).
  int defaultDeadlineMs = -1;
  /// A started frame must finish arriving within this (slow senders).
  int frameTimeoutMs = 10000;
  /// A reply must drain within this (slow readers).
  int writeTimeoutMs = 10000;
  /// Stop-flag check granularity of every blocking wait.
  int pollSliceMs = 200;
  /// Middle tier serves only warm cache rows (the deterministic default).
  bool cachedOnly = true;
  /// Oracle rows to warm on each snapshot load (0 = none, -1 = capacity).
  std::int64_t warmRows = 0;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads the initial artifact, binds, and spawns the acceptor, session,
  /// and reloader threads. Throws on a bad artifact or un-bindable port —
  /// a daemon that cannot serve must die loudly at startup, not limp.
  void start();

  /// Requests shutdown and joins every thread. Idempotent; called by the
  /// destructor. Pending (unserved) connections are closed unanswered.
  void stop();

  /// Blocks until a stop was requested ('T' on the signal fd or stop()).
  void waitUntilStopRequested();

  std::uint16_t port() const { return port_; }

  /// Write end of the self-pipe — the only thing a signal handler touches.
  /// Async-signal-safe by construction: one nonblocking write() of 'T'
  /// (terminate) or 'H' (reload current artifact path).
  int signalFd() const { return signalWrite_.fd(); }

  /// Loads `path` (empty = the current snapshot's path) and atomically
  /// swaps it in. On any load failure the old snapshot keeps serving,
  /// reloadsFailed is bumped, and *err gets the reason. Serialized — one
  /// reload at a time; queries are never blocked by it.
  bool reload(const std::string& path, std::string* err);

  ServeStats statsSnapshot() const;

 private:
  /// One immutable generation of serving state. Sessions grab the current
  /// one per request; a reload swaps the pointer and the old generation
  /// dies when its last in-flight query drops it.
  struct Snapshot {
    query::QueryPlane plane;
    std::uint64_t version = 0;
    std::string path;
    std::size_t numVertices = 0;
    double composedStretch = 1.0;
  };

  std::shared_ptr<const Snapshot> loadSnapshot(const std::string& path,
                                               std::uint64_t version) const;
  void acceptorLoop();
  void sessionLoop();
  void reloaderLoop();
  void serveConnection(WireFd conn);
  /// Dispatches one parsed request frame; returns false to close the
  /// session. Throws nothing — codec faults are handled inside.
  bool dispatch(WireFd& conn, const std::vector<std::uint8_t>& body,
                bool& helloDone);
  bool sendReply(WireFd& conn, const WireWriter& w);
  bool sendError(WireFd& conn, const std::string& msg);
  void requestStopLocked();

  ServerOptions opts_;
  std::uint16_t port_ = 0;
  WireFd listener_;
  WireFd signalRead_, signalWrite_;  // self-pipe (both ends nonblocking)

  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
  std::mutex reloadMutex_;  // serializes loads, not queries

  std::thread acceptor_;
  std::vector<std::thread> sessions_;
  std::thread reloader_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;

  std::mutex queueMutex_;
  std::condition_variable queueCv_;
  std::deque<WireFd> pending_;

  std::mutex reloadReqMutex_;
  std::condition_variable reloadCv_;
  std::size_t reloadRequests_ = 0;

  std::mutex stopMutex_;
  std::condition_variable stopCv_;
  bool stopRequested_ = false;

  // Daemon-lifetime counters (tier counters live in the snapshot's oracle
  // and restart on reload; these persist across reloads).
  mutable std::atomic<std::uint64_t> accepted_{0};
  mutable std::atomic<std::uint64_t> activeSessions_{0};
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> degraded_{0};
  mutable std::atomic<std::uint64_t> shedQueueFull_{0};
  mutable std::atomic<std::uint64_t> slowClientDrops_{0};
  mutable std::atomic<std::uint64_t> malformedFrames_{0};
  mutable std::atomic<std::uint64_t> reloadsOk_{0};
  mutable std::atomic<std::uint64_t> reloadsFailed_{0};
};

}  // namespace mpcspan::serve
