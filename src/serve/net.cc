#include "serve/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "serve/protocol.hpp"

namespace mpcspan::serve {

void ignoreSigpipe() {
  struct sigaction sa {};
  sa.sa_handler = SIG_IGN;
  (void)::sigaction(SIGPIPE, &sa, nullptr);
}

void setNonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw std::runtime_error(std::string("serve fcntl O_NONBLOCK: ") +
                             std::strerror(errno));
}

const char* ioStatusName(IoStatus s) {
  switch (s) {
    case IoStatus::kOk: return "ok";
    case IoStatus::kEof: return "eof";
    case IoStatus::kStopped: return "stopped";
    case IoStatus::kTimeout: return "timeout";
    case IoStatus::kMalformed: return "malformed";
    case IoStatus::kError: return "error";
  }
  return "?";
}

IoStatus awaitFd(int fd, short events, const util::DeadlineBudget& budget,
                 const IoPacing& pacing) {
  for (;;) {
    if (pacing.stop != nullptr &&
        pacing.stop->load(std::memory_order_relaxed))
      return IoStatus::kStopped;
    int waitMs = pacing.pollSliceMs > 0 ? pacing.pollSliceMs : 200;
    const int rem = budget.remainingMs();
    if (rem >= 0) {
      if (rem == 0) return IoStatus::kTimeout;
      waitMs = std::min(waitMs, rem);
    }
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, waitMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    // POLLHUP/POLLERR fall through as ready: the read/write that follows
    // reports the accurate condition (EOF or errno).
    if (rc > 0) return IoStatus::kOk;
  }
}

IoStatus readBytes(int fd, void* buf, std::size_t n,
                   const util::DeadlineBudget& budget, const IoPacing& pacing) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::recv(fd, p + done, n - done, 0);
    if (rc > 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) return IoStatus::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const IoStatus st = awaitFd(fd, POLLIN, budget, pacing);
      if (st != IoStatus::kOk) return st;
      continue;
    }
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus writeBytes(int fd, const void* buf, std::size_t n,
                    const util::DeadlineBudget& budget,
                    const IoPacing& pacing) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t done = 0;
  while (done < n) {
    const ssize_t rc = ::send(fd, p + done, n - done, MSG_NOSIGNAL);
    if (rc > 0) {
      done += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) return IoStatus::kError;  // send never returns 0 for n > 0
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const IoStatus st = awaitFd(fd, POLLOUT, budget, pacing);
      if (st != IoStatus::kOk) return st;
      continue;
    }
    if (errno == EPIPE || errno == ECONNRESET) return IoStatus::kEof;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus readFrame(int fd, std::vector<std::uint8_t>& body,
                   std::uint64_t maxBytes,
                   const util::DeadlineBudget& idleBudget, int frameTimeoutMs,
                   const IoPacing& pacing) {
  // Idle wait: nothing of the frame has arrived yet.
  const IoStatus ready = awaitFd(fd, POLLIN, idleBudget, pacing);
  if (ready != IoStatus::kOk) return ready;
  // From the first byte on, the whole frame must land within its own
  // budget — a stalled sender is a fault, not idleness.
  const util::DeadlineBudget frameBudget(frameTimeoutMs);
  std::uint64_t len = 0;
  const IoStatus hdr = readBytes(fd, &len, sizeof(len), frameBudget, pacing);
  if (hdr != IoStatus::kOk) return hdr;
  if (len == 0 || len > maxBytes) return IoStatus::kMalformed;
  body.resize(len);
  return readBytes(fd, body.data(), len, frameBudget, pacing);
}

IoStatus writeFrame(int fd, const std::uint8_t* body, std::size_t n,
                    int writeTimeoutMs, const IoPacing& pacing) {
  const util::DeadlineBudget budget(writeTimeoutMs);
  const std::uint64_t len = n;
  const IoStatus hdr = writeBytes(fd, &len, sizeof(len), budget, pacing);
  if (hdr != IoStatus::kOk) return hdr;
  return writeBytes(fd, body, n, budget, pacing);
}

namespace {

void tuneServeFd(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in resolveV4(const std::string& host, std::uint16_t port,
                      const char* what) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int gai =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (gai != 0 || res == nullptr)
    throw ServeTransportError(std::string(what) + " " + host + ":" +
                              std::to_string(port) +
                              ": resolve failed: " + ::gai_strerror(gai));
  sockaddr_in addr{};
  std::memcpy(&addr, res->ai_addr,
              std::min(sizeof(addr), static_cast<std::size_t>(res->ai_addrlen)));
  ::freeaddrinfo(res);
  return addr;
}

}  // namespace

WireFd dialTcp(const std::string& host, std::uint16_t port,
               int connectTimeoutMs) {
  const std::string where = host + ":" + std::to_string(port);
  const sockaddr_in addr = resolveV4(host, port, "serve dial");
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0)
    throw ServeTransportError("serve dial socket: " +
                              std::string(std::strerror(errno)));
  WireFd owned(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (errno != EINPROGRESS)
      throw ServeTransportError("serve dial " + where + ": " +
                                std::strerror(errno));
    const util::DeadlineBudget budget(connectTimeoutMs);
    const IoStatus st = awaitFd(fd, POLLOUT, budget, IoPacing{});
    if (st != IoStatus::kOk)
      throw ServeTransportError("serve dial " + where + ": connect " +
                                ioStatusName(st));
    int err = 0;
    socklen_t errLen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errLen) != 0 || err != 0)
      throw ServeTransportError("serve dial " + where + ": " +
                                std::strerror(err != 0 ? err : errno));
  }
  tuneServeFd(fd);
  return owned;
}

WireFd listenTcp(const std::string& host, std::uint16_t port, int backlog,
                 std::uint16_t* boundPort) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0)
    throw std::runtime_error("serve listen socket: " +
                             std::string(std::strerror(errno)));
  WireFd owned(fd);
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  try {
    addr = resolveV4(host, port, "serve listen");
  } catch (const ServeTransportError& e) {
    throw std::runtime_error(e.what());
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throw std::runtime_error("serve listen bind " + host + ":" +
                             std::to_string(port) + ": " +
                             std::strerror(errno));
  if (::listen(fd, backlog > 0 ? backlog : SOMAXCONN) != 0)
    throw std::runtime_error("serve listen: " +
                             std::string(std::strerror(errno)));
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw std::runtime_error("serve listen getsockname: " +
                             std::string(std::strerror(errno)));
  if (boundPort != nullptr) *boundPort = ntohs(addr.sin_port);
  return owned;
}

WireFd acceptOn(int listenFd) {
  for (;;) {
    const int conn =
        ::accept4(listenFd, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (conn >= 0) {
      tuneServeFd(conn);
      return WireFd(conn);
    }
    if (errno == EINTR) continue;
    // EAGAIN: nothing pending. Anything else (ECONNABORTED, EMFILE burst,
    // proto errors) is a per-connection transient — report "none" and let
    // the acceptor loop continue; a daemon must not die in accept().
    return WireFd();
  }
}

}  // namespace mpcspan::serve
