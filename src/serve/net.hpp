// Nonblocking, EINTR-safe socket plumbing of the serving daemon.
//
// Everything here is poll-paced: no call ever blocks past its deadline
// budget, and every wait is sliced (pollSliceMs) against a stop flag so a
// shutting-down server never waits on a silent peer. Errors are *status
// codes*, not exceptions — a serving daemon's I/O paths hit EOF, timeouts,
// and garbage as a matter of course, and each caller decides which of those
// is a counter bump, an error reply, or a plain connection close. Contrast
// runtime/shard/wire.hpp, whose blocking helpers throw: there a broken peer
// aborts the round; here it must never take the daemon down.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/shard/wire.hpp"
#include "util/deadline.hpp"

namespace mpcspan::serve {

using runtime::shard::WireFd;

/// Installs SIG_IGN for SIGPIPE, process-wide and idempotent. A serving
/// daemon writes to sockets whose peers vanish at will; every such write
/// must surface as EPIPE on the one affected session, never a signal that
/// kills the process. (The shard wire already passes MSG_NOSIGNAL per
/// call; this covers every other write the daemon will ever make.)
void ignoreSigpipe();

/// Sets O_NONBLOCK (throws std::runtime_error on fcntl failure — this only
/// happens on a bogus fd, which is a programming error, not a peer fault).
void setNonblocking(int fd);

enum class IoStatus {
  kOk,         // full transfer done
  kEof,        // peer closed (possibly mid-frame)
  kStopped,    // the stop flag was raised mid-wait
  kTimeout,    // the deadline budget ran out
  kMalformed,  // frame failed vetting (length 0 or > cap)
  kError,      // socket error (errno-level)
};
const char* ioStatusName(IoStatus s);

/// How waits are paced: an optional stop flag checked every pollSliceMs.
struct IoPacing {
  const std::atomic<bool>* stop = nullptr;
  int pollSliceMs = 200;
};

/// Waits for `events` (POLLIN/POLLOUT) on fd within the budget. POLLHUP /
/// POLLERR report as kOk — the subsequent read/write surfaces the real
/// condition (EOF or errno), which is the accurate one.
IoStatus awaitFd(int fd, short events, const util::DeadlineBudget& budget,
                 const IoPacing& pacing);

/// Full-buffer nonblocking read/write on a socket fd, poll-paced within
/// the budget. Partial progress then EOF/timeout reports as such — the
/// caller treats any non-kOk as "this connection is done".
IoStatus readBytes(int fd, void* buf, std::size_t n,
                   const util::DeadlineBudget& budget, const IoPacing& pacing);
IoStatus writeBytes(int fd, const void* buf, std::size_t n,
                    const util::DeadlineBudget& budget, const IoPacing& pacing);

/// Receives one `u64 length + body` frame into `body`. The *idle* wait (no
/// first header byte yet) runs under idleBudget — unbounded for a server
/// session at top-of-loop, the request timeout for a client. Once the first
/// byte arrives the rest of the frame must land within frameTimeoutMs (a
/// fresh budget): a peer that starts a frame and stalls is a slow-client
/// fault, not an idle one. A length of 0 or > maxBytes returns kMalformed
/// without reading (or allocating for) the body.
IoStatus readFrame(int fd, std::vector<std::uint8_t>& body,
                   std::uint64_t maxBytes, const util::DeadlineBudget& idleBudget,
                   int frameTimeoutMs, const IoPacing& pacing);

/// Sends one `u64 length + body` frame within writeTimeoutMs. A peer that
/// will not drain its socket within the timeout gets kTimeout — the slow
/// reader is dropped, the daemon's thread is not held hostage.
IoStatus writeFrame(int fd, const std::uint8_t* body, std::size_t n,
                    int writeTimeoutMs, const IoPacing& pacing);

/// Connects to host:port within connectTimeoutMs. The returned fd is
/// nonblocking + CLOEXEC with TCP_NODELAY set. Throws ServeTransportError
/// (protocol.hpp) on resolve/connect failure or timeout.
WireFd dialTcp(const std::string& host, std::uint16_t port,
               int connectTimeoutMs);

/// Binds + listens on host:port (port 0 = ephemeral; *boundPort receives
/// the actual one). Nonblocking + CLOEXEC. Throws std::runtime_error on
/// failure — a daemon that cannot bind must die loudly at startup.
WireFd listenTcp(const std::string& host, std::uint16_t port, int backlog,
                 std::uint16_t* boundPort);

/// Accepts one pending connection off a nonblocking listener: a valid
/// nonblocking + CLOEXEC fd, or an invalid WireFd when none is pending
/// (EAGAIN) or the handshake-level accept failed transiently.
WireFd acceptOn(int listenFd);

}  // namespace mpcspan::serve
