#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

namespace mpcspan::serve {

using runtime::shard::ShardError;

ServeClient::ServeClient(ClientOptions opts)
    : opts_(std::move(opts)), rng_(opts_.seed ^ 0x5e21e0d1c0ffee01ull) {}

void ServeClient::close() {
  conn_.reset();
  hello_.reset();
}

int ServeClient::backoffDelayMs(int attempt, const ClientOptions& opts,
                                Rng& rng) {
  const long long base = std::max(1, opts.backoffBaseMs);
  const long long cap = std::max(1, opts.backoffMaxMs);
  long long raw = base;
  for (int i = 0; i < attempt && raw < cap; ++i) raw <<= 1;
  raw = std::min(raw, cap);
  const double jitter = rng.uniform(0.5, 1.0);
  return std::max(1, static_cast<int>(static_cast<double>(raw) * jitter));
}

void ServeClient::ensureConnected() {
  if (conn_.valid()) return;
  conn_ = dialTcp(opts_.host, opts_.port, opts_.connectTimeoutMs);
  // Handshake: magic + version up, server identity down. A shed reply can
  // arrive here instead (the server sheds at accept time) — it surfaces as
  // ServeShedError, which the idempotent retry loops treat as "back off".
  WireWriter w;
  w.u8(kOpHello);
  w.u64(kServeMagic);
  w.u8(kServeVersion);
  const IoPacing pacing{};
  IoStatus st = writeFrame(conn_.fd(), w.data(), w.size(),
                           opts_.requestTimeoutMs, pacing);
  if (st != IoStatus::kOk) {
    close();
    throw ServeTransportError(std::string("serve hello write: ") +
                              ioStatusName(st));
  }
  std::vector<std::uint8_t> body;
  const util::DeadlineBudget idle(opts_.requestTimeoutMs);
  st = readFrame(conn_.fd(), body, kMaxServeFrameBytes, idle,
                 opts_.requestTimeoutMs, pacing);
  if (st != IoStatus::kOk) {
    close();
    throw ServeTransportError(std::string("serve hello reply: ") +
                              ioStatusName(st));
  }
  WireReader r = WireReader::fromBytes(std::move(body));
  try {
    const std::uint8_t re = r.u8();
    if (re == kReShed) {
      const std::string msg = r.str();
      close();
      throw ServeShedError(msg);
    }
    if (re == kReError) {
      const std::string msg = r.str();
      close();
      throw ServeRemoteError(msg);
    }
    if (re != kReHello) {
      close();
      throw ServeTransportError("serve hello: unexpected reply opcode");
    }
    hello_ = decodeHelloInfo(r);
  } catch (const ShardError& e) {
    close();
    throw ServeTransportError(std::string("serve hello: malformed reply: ") +
                              e.what());
  }
}

WireReader ServeClient::requestOnce(const WireWriter& req,
                                    std::uint8_t expectRe) {
  ensureConnected();
  const IoPacing pacing{};
  IoStatus st = writeFrame(conn_.fd(), req.data(), req.size(),
                           opts_.requestTimeoutMs, pacing);
  if (st != IoStatus::kOk) {
    close();
    throw ServeTransportError(std::string("serve request write: ") +
                              ioStatusName(st));
  }
  std::vector<std::uint8_t> body;
  const util::DeadlineBudget idle(opts_.requestTimeoutMs);
  st = readFrame(conn_.fd(), body, kMaxServeFrameBytes, idle,
                 opts_.requestTimeoutMs, pacing);
  if (st != IoStatus::kOk) {
    close();
    throw ServeTransportError(std::string("serve reply read: ") +
                              ioStatusName(st));
  }
  WireReader r = WireReader::fromBytes(std::move(body));
  try {
    const std::uint8_t re = r.u8();
    if (re == kReShed) {
      const std::string msg = r.str();
      close();
      throw ServeShedError(msg);
    }
    if (re == kReError) throw ServeRemoteError(r.str());
    if (re != expectRe) {
      close();
      throw ServeTransportError("serve reply: unexpected opcode");
    }
  } catch (const ShardError& e) {
    close();
    throw ServeTransportError(std::string("serve reply: malformed: ") +
                              e.what());
  }
  return r;
}

WireReader ServeClient::requestIdempotent(const WireWriter& req,
                                          std::uint8_t expectRe) {
  for (int attempt = 0;; ++attempt) {
    try {
      return requestOnce(req, expectRe);
    } catch (const ServeRemoteError&) {
      throw;  // the server understood and said no — retrying can't help
    } catch (const ServeError&) {
      if (attempt >= opts_.maxRetries) throw;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoffDelayMs(attempt, opts_, rng_)));
    }
  }
}

WireAnswer ServeClient::query(VertexId u, VertexId v,
                              std::uint64_t deadlineMs) {
  WireWriter w;
  w.u8(kOpQuery);
  w.u64(u);
  w.u64(v);
  w.u64(deadlineMs);
  WireReader r = requestIdempotent(w, kReAnswer);
  try {
    return decodeAnswer(r);
  } catch (const ShardError& e) {
    close();
    throw ServeTransportError(std::string("serve answer: malformed: ") +
                              e.what());
  }
}

ServeStats ServeClient::stats() {
  WireWriter w;
  w.u8(kOpStats);
  WireReader r = requestIdempotent(w, kReStats);
  try {
    return decodeStats(r);
  } catch (const ShardError& e) {
    close();
    throw ServeTransportError(std::string("serve stats: malformed: ") +
                              e.what());
  }
}

void ServeClient::ping() {
  WireWriter w;
  w.u8(kOpPing);
  (void)requestIdempotent(w, kReOk);
}

std::uint64_t ServeClient::reload(const std::string& path) {
  WireWriter w;
  w.u8(kOpReload);
  w.str(path);
  // Single attempt by design: the first try may have landed server-side,
  // and reload is not idempotent (each success bumps the version).
  WireReader r = requestOnce(w, kReOk);
  try {
    return r.u64();
  } catch (const ShardError& e) {
    close();
    throw ServeTransportError(std::string("serve reload: malformed: ") +
                              e.what());
  }
}

HelloInfo ServeClient::serverInfo() {
  for (int attempt = 0;; ++attempt) {
    try {
      ensureConnected();
      return *hello_;
    } catch (const ServeRemoteError&) {
      throw;
    } catch (const ServeError&) {
      if (attempt >= opts_.maxRetries) throw;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoffDelayMs(attempt, opts_, rng_)));
    }
  }
}

}  // namespace mpcspan::serve
