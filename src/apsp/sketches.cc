#include "apsp/sketches.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "graph/connectivity.hpp"
#include "graph/distance.hpp"
#include "util/rng.hpp"

namespace mpcspan {

namespace {
using QItem = std::pair<Weight, VertexId>;
using MinHeap = std::priority_queue<QItem, std::vector<QItem>, std::greater<>>;
}  // namespace

DistanceSketches::DistanceSketches(const Graph& g, const SketchParams& params)
    : k_(std::max<std::uint32_t>(params.k, 1)), n_(g.numVertices()) {
  build(g, params.seed);
}

DistanceSketches::DistanceSketches(SketchTables t)
    : k_(t.k), n_(static_cast<std::size_t>(t.n)) {
  if (k_ == 0) throw std::invalid_argument("sketch tables: k must be >= 1");
  if (t.pivotDist.size() != k_ + 1 || t.pivot.size() != k_ + 1)
    throw std::invalid_argument("sketch tables: pivot level count != k+1");
  for (std::uint32_t i = 0; i <= k_; ++i)
    if (t.pivotDist[i].size() != n_ || t.pivot[i].size() != n_)
      throw std::invalid_argument("sketch tables: pivot row size != n");
  if (t.bunchStart.size() != n_ + 1 || t.bunchStart.front() != 0)
    throw std::invalid_argument("sketch tables: bad bunch offsets");
  for (std::size_t v = 0; v < n_; ++v)
    if (t.bunchStart[v] > t.bunchStart[v + 1])
      throw std::invalid_argument("sketch tables: non-monotone bunch offsets");
  if (t.bunchStart.back() != t.bunchW.size() ||
      t.bunchW.size() != t.bunchDist.size())
    throw std::invalid_argument("sketch tables: bunch array size mismatch");
  for (VertexId w : t.bunchW)
    if (w >= n_) throw std::invalid_argument("sketch tables: bunch vertex out of range");
  if (t.levelSizes.size() != k_)
    throw std::invalid_argument("sketch tables: level size count != k");
  pivotDist_ = std::move(t.pivotDist);
  pivot_ = std::move(t.pivot);
  bunchStart_ = std::move(t.bunchStart);
  bunchW_ = std::move(t.bunchW);
  bunchDist_ = std::move(t.bunchDist);
  levelSizes_ = std::move(t.levelSizes);
  relaxations_ = static_cast<std::size_t>(t.relaxations);
}

SketchTables DistanceSketches::exportTables() const {
  SketchTables t;
  t.k = k_;
  t.n = n_;
  t.pivotDist = pivotDist_;
  t.pivot = pivot_;
  t.bunchStart = bunchStart_;
  t.bunchW = bunchW_;
  t.bunchDist = bunchDist_;
  t.levelSizes = levelSizes_;
  t.relaxations = relaxations_;
  return t;
}

void DistanceSketches::build(const Graph& g, std::uint64_t seed) {
  // Levels: A_0 = V; A_i keeps each member of A_{i-1} with prob n^{-1/k}.
  const double p =
      std::pow(static_cast<double>(std::max<std::size_t>(n_, 2)),
               -1.0 / static_cast<double>(k_));
  std::vector<std::vector<VertexId>> levels(k_);
  levels[0].resize(n_);
  for (VertexId v = 0; v < n_; ++v) levels[0][v] = v;
  for (std::uint32_t i = 1; i < k_; ++i)
    for (VertexId v : levels[i - 1]) {
      const std::uint64_t h = mix64(seed ^ mix64((std::uint64_t(i) << 32) | v));
      if (static_cast<double>(h >> 11) * 0x1.0p-53 < p) levels[i].push_back(v);
    }
  levelSizes_.clear();
  for (const auto& lvl : levels)
    levelSizes_.push_back(static_cast<VertexId>(lvl.size()));

  // Pivots: multi-source Dijkstra from each level (level k == empty set,
  // distance infinity by convention).
  pivotDist_.assign(k_ + 1, std::vector<Weight>(n_, kInfDist));
  pivot_.assign(k_ + 1, std::vector<VertexId>(n_, kNoVertex));
  for (std::uint32_t i = 0; i < k_; ++i) {
    auto& dist = pivotDist_[i];
    auto& piv = pivot_[i];
    MinHeap heap;
    for (VertexId s : levels[i]) {
      dist[s] = 0;
      piv[s] = s;
      heap.emplace(0.0, s);
    }
    while (!heap.empty()) {
      const auto [d, v] = heap.top();
      heap.pop();
      if (d > dist[v]) continue;
      for (const Incidence& inc : g.neighbors(v)) {
        const Weight nd = d + g.edge(inc.edge).w;
        ++relaxations_;
        if (nd < dist[inc.to]) {
          dist[inc.to] = nd;
          piv[inc.to] = piv[v];
          heap.emplace(nd, inc.to);
        }
      }
    }
  }

  // Bunches: for each w in A_i \ A_{i+1}, a Dijkstra truncated to the
  // region where d(w, v) < d(A_{i+1}, v). Emissions are collected per
  // vertex and flattened to w-sorted arrays afterwards; a vertex can be
  // re-settled at its final distance along tied paths, so emissions are
  // deduplicated by w (the duplicates carry the identical distance).
  std::vector<std::vector<std::pair<VertexId, Weight>>> tmp(n_);
  std::vector<char> inNext(n_, 0);
  for (std::uint32_t i = 0; i < k_; ++i) {
    std::fill(inNext.begin(), inNext.end(), 0);
    if (i + 1 < k_)
      for (VertexId v : levels[i + 1]) inNext[v] = 1;
    for (VertexId w : levels[i]) {
      if (i + 1 < k_ && inNext[w]) continue;  // belongs to a higher level
      std::unordered_map<VertexId, Weight> dist;
      dist.emplace(w, 0.0);
      MinHeap heap;
      heap.emplace(0.0, w);
      while (!heap.empty()) {
        const auto [d, v] = heap.top();
        heap.pop();
        const auto dv = dist.find(v);
        if (dv == dist.end() || d > dv->second) continue;
        tmp[v].emplace_back(w, d);
        for (const Incidence& inc : g.neighbors(v)) {
          const Weight nd = d + g.edge(inc.edge).w;
          ++relaxations_;
          if (nd >= pivotDist_[i + 1][inc.to]) continue;  // TZ truncation
          const auto it = dist.find(inc.to);
          if (it == dist.end() || nd < it->second) {
            dist[inc.to] = nd;
            heap.emplace(nd, inc.to);
          }
        }
      }
    }
  }

  bunchStart_.assign(n_ + 1, 0);
  for (std::size_t v = 0; v < n_; ++v) {
    auto& b = tmp[v];
    std::sort(b.begin(), b.end(),
              [](const auto& a, const auto& c) { return a.first < c.first; });
    b.erase(std::unique(b.begin(), b.end(),
                        [](const auto& a, const auto& c) {
                          return a.first == c.first;
                        }),
            b.end());
    bunchStart_[v + 1] = bunchStart_[v] + b.size();
  }
  bunchW_.reserve(bunchStart_.back());
  bunchDist_.reserve(bunchStart_.back());
  for (std::size_t v = 0; v < n_; ++v) {
    for (const auto& [w, d] : tmp[v]) {
      bunchW_.push_back(w);
      bunchDist_.push_back(d);
    }
    tmp[v].clear();
    tmp[v].shrink_to_fit();
  }
}

Weight DistanceSketches::query(VertexId u, VertexId v) const {
  if (u == v) return 0;
  VertexId w = u;
  Weight du = 0;  // d(w, u)
  for (std::uint32_t i = 0;; ) {
    const auto first = bunchW_.begin() + static_cast<std::ptrdiff_t>(bunchStart_[v]);
    const auto last = bunchW_.begin() + static_cast<std::ptrdiff_t>(bunchStart_[v + 1]);
    const auto it = std::lower_bound(first, last, w);
    if (it != last && *it == w)
      return du + bunchDist_[static_cast<std::size_t>(it - bunchW_.begin())];
    ++i;
    if (i >= k_) return kInfDist;
    std::swap(u, v);
    w = pivot_[i][u];
    if (w == kNoVertex) return kInfDist;
    du = pivotDist_[i][u];
  }
}

std::size_t DistanceSketches::memoryWords() const {
  // One word per stored scalar: pivot distance + pivot id per (level,
  // vertex), the bunch offset array, and the two flat bunch arrays.
  return 2 * (static_cast<std::size_t>(k_) + 1) * n_ + (n_ + 1) +
         2 * bunchW_.size();
}

SpannerSketches buildSketchesOnSpanner(const Graph& g, const SpannerResult& spanner,
                                       const SketchParams& params) {
  const Graph h = subgraph(g, spanner.edges);
  SpannerSketches out{DistanceSketches(h, params),
                      (2.0 * params.k - 1.0) * spanner.stretchBound,
                      spanner.edges.size()};
  return out;
}

}  // namespace mpcspan
