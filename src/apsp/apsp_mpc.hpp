// Corollary 1.4: O(log^s n)-approximate weighted APSP in the near-linear
// memory regime of MPC.
//
// Build the Section 5 spanner with k = ceil(log2 n) and t = O(log log n):
// its size is O(n^{1+1/log n} (t + log k)) = O~(n), so it fits a single
// machine with O~(n) memory; ship it there (O(1) rounds) and answer all
// queries locally. Total rounds O(t log log n / log(t+1)); approximation
// O(log^s n), s = log(2t+1)/log(t+1).
#pragma once

#include <cstdint>

#include "apsp/oracle.hpp"
#include "graph/graph.hpp"

namespace mpcspan {

struct MpcApspParams {
  std::uint32_t t = 0;  // 0 selects ceil(log2 log2 n)
  std::uint64_t seed = 1;
  /// One machine's memory in words: c * n * log2(n) ("O~(n)").
  double machineMemoryFactor = 4.0;
};

struct MpcApspResult {
  SpannerDistanceOracle oracle;
  std::uint32_t kUsed = 0;
  std::uint32_t tUsed = 0;
  long roundsNearLinear = 0;   // supersteps (1 round each) + O(1) collection
  std::size_t machineMemoryWords = 0;
  bool fitsOneMachine = false;
  double approxTheoretical = 0;  // log^s n
  double approxCertified = 0;    // the run's certified stretch bound
};

MpcApspResult runMpcApsp(const Graph& g, const MpcApspParams& params);

}  // namespace mpcspan
