#include "apsp/apsp_mpc.hpp"

#include <cmath>

#include "spanner/tradeoff.hpp"

namespace mpcspan {

MpcApspResult runMpcApsp(const Graph& g, const MpcApspParams& params) {
  const std::size_t n = std::max<std::size_t>(g.numVertices(), 2);
  const double log2n = std::max(2.0, std::log2(static_cast<double>(n)));

  TradeoffParams tp;
  tp.k = static_cast<std::uint32_t>(std::ceil(log2n));
  tp.t = params.t != 0
             ? params.t
             : static_cast<std::uint32_t>(std::max(1.0, std::ceil(std::log2(log2n))));
  tp.seed = params.seed;
  SpannerResult spanner = buildTradeoffSpanner(g, tp);
  spanner.algorithm = "apsp-mpc";
  // Shipping the spanner to one machine is a single constant-round step in
  // the near-linear regime.
  spanner.cost.charge(Prim::kBroadcast);

  const std::uint32_t kUsed = tp.k;
  const std::uint32_t tUsed = tp.t;
  const long rounds = spanner.cost.nearLinearRounds();
  const auto memWords = static_cast<std::size_t>(
      params.machineMemoryFactor * static_cast<double>(n) * log2n);
  const double certified = spanner.stretchBound;
  const bool fits = 2 * spanner.edges.size() <= memWords;

  MpcApspResult out{
      SpannerDistanceOracle(g, std::move(spanner),
                            /*cacheSources=*/std::max<std::size_t>(64, 4)),
      kUsed,
      tUsed,
      rounds,
      memWords,
      fits,
      std::pow(log2n, tradeoffStretchExponent(tUsed)),
      certified,
  };
  return out;
}

}  // namespace mpcspan
