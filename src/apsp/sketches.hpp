// Thorup–Zwick distance sketches, and the spanner-accelerated variant.
//
// The paper motivates its spanners partly through [DN19]: distance-sketch
// preprocessing is dominated by graph size, so computing the sketches on a
// near-linear-size spanner instead of the input graph cuts the work from
// O~(m n^{1/k}) to O~(n^{1+1/k+o(1)}) at a multiplicative stretch cost.
// This module implements the classical Thorup–Zwick construction
// (levels A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1}, pivots, bunches; stretch 2k-1 and
// expected bunch size O(k n^{1/k})) plus a helper that builds it on top of
// any SpannerResult, with the composed stretch certificate.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "spanner/types.hpp"

namespace mpcspan {

struct SketchParams {
  std::uint32_t k = 3;  // levels; stretch 2k-1
  std::uint64_t seed = 1;
};

class DistanceSketches {
 public:
  DistanceSketches(const Graph& g, const SketchParams& params);

  /// Estimated distance; at most (2k-1) * d(u,v), at least d(u,v).
  /// kInfDist when u,v are disconnected.
  Weight query(VertexId u, VertexId v) const;

  std::uint32_t k() const { return k_; }
  double stretchBound() const { return 2.0 * k_ - 1.0; }

  /// Sum of bunch sizes (the sketch storage; expected O(k n^{1+1/k})).
  std::size_t totalBunchEntries() const;

  /// Edge relaxations performed during preprocessing (the [DN19] cost that
  /// spanners shrink).
  std::size_t preprocessingRelaxations() const { return relaxations_; }

  const std::vector<VertexId>& levelSizes() const { return levelSizes_; }

 private:
  void build(const Graph& g, std::uint64_t seed);

  std::uint32_t k_;
  std::size_t n_;
  // pivotDist_[i][v] = d(A_i, v); pivot_[i][v] = the realizing vertex.
  std::vector<std::vector<Weight>> pivotDist_;
  std::vector<std::vector<VertexId>> pivot_;
  // bunch_[v]: w -> d(w, v).
  std::vector<std::unordered_map<VertexId, Weight>> bunch_;
  std::vector<VertexId> levelSizes_;
  std::size_t relaxations_ = 0;
};

/// Sketches computed on the spanner instead of g (the [DN19] application).
/// The composed stretch certificate is (2k-1) * spanner.stretchBound.
struct SpannerSketches {
  DistanceSketches sketches;
  double composedStretchBound = 0;
  std::size_t spannerEdges = 0;
};

SpannerSketches buildSketchesOnSpanner(const Graph& g, const SpannerResult& spanner,
                                       const SketchParams& params);

}  // namespace mpcspan
