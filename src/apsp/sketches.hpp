// Thorup–Zwick distance sketches, and the spanner-accelerated variant.
//
// The paper motivates its spanners partly through [DN19]: distance-sketch
// preprocessing is dominated by graph size, so computing the sketches on a
// near-linear-size spanner instead of the input graph cuts the work from
// O~(m n^{1/k}) to O~(n^{1+1/k+o(1)}) at a multiplicative stretch cost.
// This module implements the classical Thorup–Zwick construction
// (levels A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1}, pivots, bunches; stretch 2k-1 and
// expected bunch size O(k n^{1/k})) plus a helper that builds it on top of
// any SpannerResult, with the composed stretch certificate.
//
// Bunches are stored as flat per-vertex (w, dist) arrays sorted by w —
// query is a binary search over a contiguous segment, construction cost
// and memory are the flat arrays instead of n hash maps, and the whole
// structure round-trips through SketchTables for the build-once /
// serve-many query artifacts (src/query/build.hpp). All query methods are
// const and safe to call concurrently.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "spanner/types.hpp"

namespace mpcspan {

struct SketchParams {
  std::uint32_t k = 3;  // levels; stretch 2k-1
  std::uint64_t seed = 1;
};

/// The complete serialized state of a DistanceSketches instance: everything
/// queries touch, exported for artifact save and adopted on artifact load
/// (no rebuild). Field invariants are validated by the adopting
/// constructor.
struct SketchTables {
  std::uint32_t k = 0;
  std::uint64_t n = 0;
  // pivotDist[i][v] = d(A_i, v); pivot[i][v] = the realizing vertex.
  // k+1 levels each (level k = empty set, distance infinity).
  std::vector<std::vector<Weight>> pivotDist;
  std::vector<std::vector<VertexId>> pivot;
  // Bunch of v: entries [bunchStart[v], bunchStart[v+1]) of the flat
  // arrays, sorted by bunchW within the segment.
  std::vector<std::uint64_t> bunchStart;  // n + 1 offsets
  std::vector<VertexId> bunchW;
  std::vector<Weight> bunchDist;
  std::vector<VertexId> levelSizes;
  std::uint64_t relaxations = 0;
};

class DistanceSketches {
 public:
  DistanceSketches(const Graph& g, const SketchParams& params);

  /// Adopts prebuilt tables (artifact load path). Throws
  /// std::invalid_argument on any internal inconsistency (size mismatch,
  /// non-monotone bunch offsets, out-of-range ids), so a corrupt artifact
  /// fails cleanly instead of constructing a partially valid sketch.
  explicit DistanceSketches(SketchTables tables);

  /// Copies the query state out for serialization.
  SketchTables exportTables() const;

  /// Estimated distance; at most (2k-1) * d(u,v), at least d(u,v).
  /// kInfDist when u,v are disconnected. Thread-safe (const state only).
  Weight query(VertexId u, VertexId v) const;

  std::uint32_t k() const { return k_; }
  std::size_t numVertices() const { return n_; }
  double stretchBound() const { return 2.0 * k_ - 1.0; }

  /// Sum of bunch sizes (the sketch storage; expected O(k n^{1+1/k})).
  std::size_t totalBunchEntries() const { return bunchW_.size(); }

  /// Resident size in 8-byte words (pivot tables + flat bunch arrays).
  std::size_t memoryWords() const;

  /// Edge relaxations performed during preprocessing (the [DN19] cost that
  /// spanners shrink).
  std::size_t preprocessingRelaxations() const { return relaxations_; }

  const std::vector<VertexId>& levelSizes() const { return levelSizes_; }

 private:
  void build(const Graph& g, std::uint64_t seed);

  std::uint32_t k_;
  std::size_t n_;
  // pivotDist_[i][v] = d(A_i, v); pivot_[i][v] = the realizing vertex.
  std::vector<std::vector<Weight>> pivotDist_;
  std::vector<std::vector<VertexId>> pivot_;
  // Flat bunches: the bunch of v is the w-sorted segment
  // [bunchStart_[v], bunchStart_[v+1]) of (bunchW_, bunchDist_).
  std::vector<std::uint64_t> bunchStart_;
  std::vector<VertexId> bunchW_;
  std::vector<Weight> bunchDist_;
  std::vector<VertexId> levelSizes_;
  std::size_t relaxations_ = 0;
};

/// Sketches computed on the spanner instead of g (the [DN19] application).
/// The composed stretch certificate is (2k-1) * spanner.stretchBound.
struct SpannerSketches {
  DistanceSketches sketches;
  double composedStretchBound = 0;
  std::size_t spannerEdges = 0;
};

SpannerSketches buildSketchesOnSpanner(const Graph& g, const SpannerResult& spanner,
                                       const SketchParams& params);

}  // namespace mpcspan
