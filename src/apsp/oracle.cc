#include "apsp/oracle.hpp"

#include "graph/connectivity.hpp"
#include "graph/distance.hpp"

namespace mpcspan {

SpannerDistanceOracle::SpannerDistanceOracle(const Graph& g, SpannerResult spanner,
                                             std::size_t cacheSources)
    : spanner_(std::move(spanner)),
      h_(subgraph(g, spanner_.edges)),
      cacheSources_(cacheSources) {}

const std::vector<Weight>& SpannerDistanceOracle::distancesFrom(VertexId src) {
  auto it = cache_.find(src);
  if (it != cache_.end()) return it->second;
  if (cache_.size() >= cacheSources_) cache_.clear();  // APSP sweeps sources once
  return cache_.emplace(src, dijkstra(h_, src)).first->second;
}

Weight SpannerDistanceOracle::query(VertexId u, VertexId v) {
  if (u == v) return 0;
  return distancesFrom(u)[v];
}

}  // namespace mpcspan
