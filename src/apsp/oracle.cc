#include "apsp/oracle.hpp"

#include <algorithm>

#include "graph/connectivity.hpp"
#include "graph/distance.hpp"

namespace mpcspan {

SpannerDistanceOracle::SpannerDistanceOracle(const Graph& g, SpannerResult spanner,
                                             std::size_t cacheSources)
    : spanner_(std::move(spanner)),
      h_(subgraph(g, spanner_.edges)),
      cacheSources_(cacheSources) {}

void SpannerDistanceOracle::warm(const std::vector<VertexId>& sources,
                                 runtime::ThreadPool& pool) {
  std::vector<VertexId> missing;
  missing.reserve(sources.size());
  for (VertexId s : sources)
    if (cache_.find(s) == cache_.end() &&
        std::find(missing.begin(), missing.end(), s) == missing.end())
      missing.push_back(s);
  // Never compute more than the cache retains, and evict at most once, up
  // front — mid-batch eviction would discard results computed moments ago.
  if (missing.size() > cacheSources_) missing.resize(cacheSources_);
  if (missing.empty()) return;
  if (cache_.size() + missing.size() > cacheSources_) cache_.clear();
  std::vector<std::vector<Weight>> dist(missing.size());
  pool.parallelFor(missing.size(),
                   [&](std::size_t i) { dist[i] = dijkstra(h_, missing[i]); });
  for (std::size_t i = 0; i < missing.size(); ++i)
    cache_.emplace(missing[i], std::move(dist[i]));
}

const std::vector<Weight>& SpannerDistanceOracle::distancesFrom(VertexId src) {
  auto it = cache_.find(src);
  if (it != cache_.end()) return it->second;
  if (cache_.size() >= cacheSources_) cache_.clear();  // APSP sweeps sources once
  return cache_.emplace(src, dijkstra(h_, src)).first->second;
}

Weight SpannerDistanceOracle::query(VertexId u, VertexId v) {
  if (u == v) return 0;
  return distancesFrom(u)[v];
}

}  // namespace mpcspan
