#include "apsp/oracle.hpp"

#include <unordered_set>

#include "graph/connectivity.hpp"
#include "graph/distance.hpp"

namespace mpcspan {

SpannerDistanceOracle::SpannerDistanceOracle(const Graph& g, SpannerResult spanner,
                                             std::size_t cacheSources)
    : spanner_(std::move(spanner)),
      h_(subgraph(g, spanner_.edges)),
      cache_(cacheSources) {}

std::size_t SpannerDistanceOracle::warm(const std::vector<VertexId>& sources,
                                        runtime::ThreadPool& pool) {
  std::vector<VertexId> missing;
  missing.reserve(sources.size());
  std::unordered_set<VertexId> seen;
  for (VertexId s : sources)
    if (seen.insert(s).second && !cache_.contains(s)) missing.push_back(s);
  // Never compute more than the cache retains: sources past the capacity
  // are dropped (and reported via the return value) rather than churning
  // rows warmed moments ago out of the LRU.
  if (missing.size() > cache_.capacity()) missing.resize(cache_.capacity());
  if (missing.empty()) return 0;
  std::vector<std::vector<Weight>> dist(missing.size());
  pool.parallelFor(missing.size(),
                   [&](std::size_t i) { dist[i] = dijkstra(h_, missing[i]); });
  // Insertion order follows `sources`, independent of the thread count.
  for (std::size_t i = 0; i < missing.size(); ++i)
    cache_.insertOrGet(missing[i],
                       std::make_shared<const std::vector<Weight>>(
                           std::move(dist[i])));
  return missing.size();
}

SpannerDistanceOracle::DistRow SpannerDistanceOracle::distancesFrom(
    VertexId src) const {
  return cache_.getOrCompute(src, [&] { return dijkstra(h_, src); });
}

SpannerDistanceOracle::DistRow SpannerDistanceOracle::cachedDistancesFrom(
    VertexId src) const {
  return cache_.get(src);
}

Weight SpannerDistanceOracle::query(VertexId u, VertexId v) const {
  if (u == v) return 0;
  return (*distancesFrom(u))[v];
}

}  // namespace mpcspan
