// SpannerDistanceOracle — the local half of the Section 7 APSP application:
// once the near-linear-size spanner sits on one machine, that machine
// answers any distance query by Dijkstra on the spanner. Per-source results
// are cached (LRU-less bounded cache: the APSP use case touches every
// source once, so a simple bound suffices).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/thread_pool.hpp"
#include "spanner/types.hpp"

namespace mpcspan {

class SpannerDistanceOracle {
 public:
  /// Takes the host graph (for vertex count / ids) and the spanner to
  /// answer from. `cacheSources` bounds the number of cached Dijkstra runs.
  SpannerDistanceOracle(const Graph& g, SpannerResult spanner,
                        std::size_t cacheSources = 64);

  const SpannerResult& spanner() const { return spanner_; }
  const Graph& spannerGraph() const { return h_; }

  /// Upper bound on d_G(u,v): the spanner distance. kInfDist if disconnected.
  Weight query(VertexId u, VertexId v);

  /// All approximate distances from src (cached).
  const std::vector<Weight>& distancesFrom(VertexId src);

  /// Fills the cache for `sources` with one Dijkstra per source, run in
  /// parallel on `pool` — the "every node computes locally at once" step of
  /// the APSP applications. Insertion order follows `sources`, independent
  /// of the thread count. At most `cacheSources` entries are warmed: the
  /// cache never computes more than it can retain, so sources past the cap
  /// fall back to lazy computation in distancesFrom (which, past the cap,
  /// evicts by clearing — batch accordingly).
  void warm(const std::vector<VertexId>& sources, runtime::ThreadPool& pool);

  /// Memory footprint of the spanner in words (2 per edge), the quantity
  /// that must fit one machine in the near-linear regime.
  std::size_t spannerWords() const { return 2 * spanner_.edges.size(); }

 private:
  SpannerResult spanner_;
  Graph h_;
  std::size_t cacheSources_;
  std::unordered_map<VertexId, std::vector<Weight>> cache_;
};

}  // namespace mpcspan
