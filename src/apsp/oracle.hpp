// SpannerDistanceOracle — the local half of the Section 7 APSP application:
// once the near-linear-size spanner sits on one machine, that machine
// answers any distance query by Dijkstra on the spanner.
//
// The per-source result rows live in a sharded, bounded LRU cache
// (util/lru_cache.hpp), so the oracle is a *concurrent* serving structure:
// query()/distancesFrom() are const and safe to call from any number of
// threads, including while warm() is filling the cache from another thread.
// Rows are handed out as shared_ptr — eviction never invalidates a row a
// caller still holds.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/thread_pool.hpp"
#include "spanner/types.hpp"
#include "util/lru_cache.hpp"

namespace mpcspan {

class SpannerDistanceOracle {
 public:
  /// One cached row: all spanner distances from a source.
  using DistRow = std::shared_ptr<const std::vector<Weight>>;

  /// Takes the host graph (for vertex count / ids) and the spanner to
  /// answer from. `cacheSources` bounds the number of cached Dijkstra runs.
  SpannerDistanceOracle(const Graph& g, SpannerResult spanner,
                        std::size_t cacheSources = 64);

  const SpannerResult& spanner() const { return spanner_; }
  const Graph& spannerGraph() const { return h_; }

  /// Upper bound on d_G(u,v): the spanner distance. kInfDist if
  /// disconnected. Thread-safe; computes (and caches) the source row on a
  /// cache miss.
  Weight query(VertexId u, VertexId v) const;

  /// All approximate distances from src. Computes and caches on miss;
  /// the returned row stays valid after eviction. Thread-safe.
  DistRow distancesFrom(VertexId src) const;

  /// Cache-only probe: the row for src if resident (promoted to MRU),
  /// nullptr otherwise — never runs a Dijkstra. This is the "answer only
  /// from warm cache" mode the tiered query plane uses to keep its middle
  /// tier O(1). Thread-safe.
  DistRow cachedDistancesFrom(VertexId src) const;

  /// Fills the cache for `sources` with one Dijkstra per source, run in
  /// parallel on `pool` — the "every node computes locally at once" step of
  /// the APSP applications. At most cacheCapacity() distinct uncached
  /// sources are warmed (the cache never computes more than it can retain);
  /// the rest fall back to lazy computation in distancesFrom. Returns the
  /// number of rows actually computed and inserted by this call. Safe to
  /// run while other threads query.
  std::size_t warm(const std::vector<VertexId>& sources,
                   runtime::ThreadPool& pool);

  std::size_t cacheCapacity() const { return cache_.capacity(); }
  /// Resident row count (O(shards); locks each cache shard).
  std::size_t cachedRows() const { return cache_.size(); }
  std::uint64_t cacheHits() const { return cache_.hits(); }
  std::uint64_t cacheMisses() const { return cache_.misses(); }

  /// Memory footprint of the spanner in words (2 per edge), the quantity
  /// that must fit one machine in the near-linear regime.
  std::size_t spannerWords() const { return 2 * spanner_.edges.size(); }

 private:
  SpannerResult spanner_;
  Graph h_;
  mutable ShardedLruCache<VertexId, std::vector<Weight>> cache_;
};

}  // namespace mpcspan
