// Vectorized word-array passes for the hot kernel inner loops, enabled by
// rows living contiguously (arena-backed blocks, flat key scratch).
//
// Everything has a portable scalar form written so the compiler can
// autovectorize it (flat arrays, no early exits in the steady state), plus
// a hand-written AVX2 form behind a feature check. Nothing here is
// compiled unless the build enables AVX2 (`-mavx2` / `-march=...`;
// `MPCSPAN_NATIVE=ON` in CMake) — baseline builds take the scalar path,
// so the two paths must stay bit-identical: these are exact integer
// passes, never reductions with reassociation.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/types.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace mpcspan::runtime::simd {

inline constexpr bool kHaveAvx2 =
#if defined(__AVX2__)
    true;
#else
    false;
#endif

/// out[i] = base[i * stride + offset] — pulls one word per fixed-width
/// packed item cell into a flat array (key extraction without unpacking).
inline void gatherStride(const Word* base, std::size_t offset,
                         std::size_t stride, std::size_t count, Word* out) {
  if (stride == 1) {
    for (std::size_t i = 0; i < count; ++i) out[i] = base[offset + i];
    return;
  }
  std::size_t i = 0;
#if defined(__AVX2__)
  const auto* b = reinterpret_cast<const long long*>(base + offset);
  __m256i idx = _mm256_setr_epi64x(0, static_cast<long long>(stride),
                                   static_cast<long long>(2 * stride),
                                   static_cast<long long>(3 * stride));
  const __m256i step = _mm256_set1_epi64x(static_cast<long long>(4 * stride));
  for (; i + 4 <= count; i += 4) {
    const __m256i v = _mm256_i64gather_epi64(b, idx, 8);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    idx = _mm256_add_epi64(idx, step);
  }
#endif
  for (; i < count; ++i) out[i] = base[i * stride + offset];
}

/// Appends to `starts` the index of every run start in keys[0..n): 0 and
/// every i with keys[i] != keys[i-1]. The neighbour-compare is the
/// vectorized part; run indices are u32 (a block never holds 2^32 items —
/// it fits one machine's memory).
inline void runStarts(const Word* keys, std::size_t n,
                      std::vector<std::uint32_t>& starts) {
  starts.clear();
  if (n == 0) return;
  starts.push_back(0);
  std::size_t i = 1;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    const __m256i cur =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i prev =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i - 1));
    const __m256i eq = _mm256_cmpeq_epi64(cur, prev);
    std::uint32_t diff =
        ~static_cast<std::uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(eq))) &
        0xFu;
    while (diff) {
      starts.push_back(static_cast<std::uint32_t>(i) + std::countr_zero(diff));
      diff &= diff - 1;
    }
  }
#endif
  for (; i < n; ++i)
    if (keys[i] != keys[i - 1]) starts.push_back(static_cast<std::uint32_t>(i));
}

/// First index in ascending keys[lo..n) with keys[i] > key (unsigned) — the
/// partition bound of a sorted run. Under AVX2 this is a forward block
/// scan: bounds are consumed left to right, so each call resumes where the
/// last bound ended and the whole partition pass touches keys[lo..n) once,
/// four lanes at a time. The scalar form is a plain binary search — both
/// return the same index, so builds with and without AVX2 stay
/// bit-identical.
inline std::size_t upperBoundFrom(const Word* keys, std::size_t lo,
                                  std::size_t n, Word key) {
#if defined(__AVX2__)
  std::size_t i = lo;
  // Unsigned compare via sign-bit flip (AVX2 only has signed 64-bit >).
  const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(1ull << 63));
  const __m256i kv = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(key)), bias);
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), bias);
    const std::uint32_t gt = static_cast<std::uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, kv))));
    if (gt) return i + std::countr_zero(gt);
  }
  while (i < n && keys[i] <= key) ++i;
  return i;
#else
  return static_cast<std::size_t>(std::upper_bound(keys + lo, keys + n, key) -
                                  keys);
#endif
}

/// First index in ascending keys[lo..n) with keys[i] >= key (unsigned) —
/// the companion bound: together with upperBoundFrom it brackets the
/// equal-key run around `key`. Same scan/search split as upperBoundFrom.
inline std::size_t lowerBoundFrom(const Word* keys, std::size_t lo,
                                  std::size_t n, Word key) {
#if defined(__AVX2__)
  std::size_t i = lo;
  const __m256i bias = _mm256_set1_epi64x(static_cast<long long>(1ull << 63));
  const __m256i kv = _mm256_xor_si256(
      _mm256_set1_epi64x(static_cast<long long>(key)), bias);
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i)), bias);
    // lanes with keys[i] < key; the first clear lane is the bound.
    const std::uint32_t lt =
        static_cast<std::uint32_t>(
            _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(kv, v))));
    if (lt != 0xFu) return i + std::countr_zero(~lt & 0xFu);
  }
  while (i < n && keys[i] < key) ++i;
  return i;
#else
  return static_cast<std::size_t>(std::lower_bound(keys + lo, keys + n, key) -
                                  keys);
#endif
}

}  // namespace mpcspan::runtime::simd
