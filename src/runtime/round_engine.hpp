// RoundEngine — the unified round-synchronous runtime behind the MPC,
// Congested Clique, and PRAM substrates.
//
// The engine owns a set of simulated machines, a Topology transport policy
// (what a legal round looks like in the chosen model), a work-stealing
// thread pool that steps machines in parallel *within* a round, and the
// round/traffic ledger. With EngineConfig::shards > 1 (or MPCSPAN_SHARDS)
// the machines are partitioned over forked worker processes instead — see
// runtime/shard/sharded_engine.hpp — behind this same interface. Message
// delivery is deterministic: every inbox holds its deliveries in (source
// id, send position) order regardless of the thread or shard count, so
// 1-thread, N-thread, 1-shard, and N-shard runs of the same workload are
// bit-identical — rounds, traffic totals, and message contents.
//
// MpcSimulator and CongestedClique are thin model-specific facades over
// this class; see src/runtime/README.md for the design.
#pragma once

#include <functional>
#include <memory>

#include "runtime/thread_pool.hpp"
#include "runtime/topology.hpp"
#include "runtime/types.hpp"

namespace mpcspan::runtime {

namespace shard {
class ShardedEngine;
}

struct EngineConfig {
  std::size_t numMachines = 0;
  /// Lanes of the stepping pool, including the caller; 0 selects the
  /// default (MPCSPAN_THREADS env var, else hardware concurrency).
  std::size_t threads = 0;
  /// Worker processes the machines are partitioned over. 1 runs everything
  /// in-process (the single-node special case); 0 selects the default
  /// (MPCSPAN_SHARDS env var, else 1). Clamped to numMachines. Sharded or
  /// not, the same workload is bit-identical — rounds, ledger, contents.
  std::size_t shards = 0;
};

class RoundEngine {
 public:
  RoundEngine(EngineConfig cfg, std::unique_ptr<Topology> topology);
  ~RoundEngine();

  std::size_t numMachines() const { return numMachines_; }
  /// Worker processes executing the rounds (1 = in-process).
  std::size_t numShards() const;
  const Topology& topology() const { return *topology_; }
  ThreadPool& pool() { return pool_; }

  std::size_t rounds() const { return ledger_.rounds; }
  std::size_t totalWordsSent() const { return ledger_.wordsSent; }
  std::size_t maxRoundWords() const { return ledger_.maxRoundWords; }

  /// Charges rounds / traffic whose execution is proven rather than
  /// simulated message-by-message (e.g. Lenzen routing, spanner collection).
  void chargeRounds(std::size_t n) { ledger_.rounds += n; }
  void chargeTraffic(std::size_t words) { ledger_.wordsSent += words; }

  /// One synchronous communication round: bounds-checks destinations,
  /// validates the outboxes against the topology, delivers, and updates the
  /// ledger. inbox[d] holds deliveries ordered by (src, position in src's
  /// outbox). Under Topology::Mode::kPriorityWrite only the first delivery
  /// per destination lands. Outboxes are consumed.
  std::vector<std::vector<Delivery>> exchange(
      std::vector<std::vector<Message>> outboxes);

  /// Machine-centric round: runs step(machine, inbox) for every machine in
  /// parallel on the pool (the inbox is the previous step's deliveries),
  /// then exchanges the produced outboxes. The deliveries are stored and
  /// readable via inbox() until the next step.
  ///
  /// Sharded caveat: under shards > 1 the step closure executes in forked
  /// worker processes against a copy-on-write snapshot, so it may *read*
  /// any captured state but every mutation it makes to captured state is
  /// discarded with the worker — only the returned messages survive. A
  /// StepFn that must behave identically in-process and sharded therefore
  /// keeps per-machine state in the messages/inboxes it returns, never in
  /// captured variables.
  using StepFn = std::function<std::vector<Message>(
      std::size_t machine, const std::vector<Delivery>& inbox)>;
  void step(const StepFn& fn);
  const std::vector<Delivery>& inbox(std::size_t machine) const {
    return inboxes_[machine];
  }

  /// Deterministic parallel loop on the engine's pool. fn must write to
  /// disjoint outputs; then the result is identical for every thread count.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
    pool_.parallelFor(n, fn);
  }

 private:
  std::size_t numMachines_;
  std::unique_ptr<Topology> topology_;
  ThreadPool pool_;
  Accounting ledger_;
  std::vector<std::vector<Delivery>> inboxes_;
  /// Multi-process backend; null when shards resolve to 1 (in-process).
  std::unique_ptr<shard::ShardedEngine> shard_;
};

}  // namespace mpcspan::runtime
