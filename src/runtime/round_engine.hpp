// RoundEngine — the unified round-synchronous runtime behind the MPC,
// Congested Clique, and PRAM substrates.
//
// The engine owns a set of simulated machines, a Topology transport policy
// (what a legal round looks like in the chosen model), a work-stealing
// thread pool that steps machines in parallel *within* a round, and the
// round/traffic ledger. With EngineConfig::shards > 1 (or MPCSPAN_SHARDS)
// the machines are partitioned over worker processes instead — resident
// ones that fork once per engine and are driven by control frames (see
// runtime/shard/sharded_engine.hpp) — behind this same interface. Message
// delivery is deterministic: every inbox holds its deliveries in (source
// id, send position) order regardless of the thread or shard count, so
// 1-thread, N-thread, 1-shard, and N-shard runs of the same workload are
// bit-identical — rounds, traffic totals, and message contents.
//
// Two ways to step the machines:
//   - the legacy closure step(StepFn): convenient, but a closure cannot
//     follow machines into another process, so under sharding its compute
//     wave still runs against a per-round fork snapshot and must keep its
//     per-machine state in messages/inboxes (see step below);
//   - registered kernels (runtime/kernel.hpp): registerKernel gives the
//     engine a named factory, step(KernelId, args) drives one round, and
//     the kernel instance lives *where the machines live* — inside each
//     resident worker — owning per-machine state (inboxes, BlockStore
//     blocks) across rounds without ever re-shipping it.
//
// MpcSimulator and CongestedClique are thin model-specific facades over
// this class; see src/runtime/README.md for the design.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "runtime/kernel.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/topology.hpp"
#include "runtime/types.hpp"

namespace mpcspan::runtime {

namespace shard {
class ShardedEngine;
}

struct EngineConfig {
  std::size_t numMachines = 0;
  /// Lanes of the stepping pool, including the caller; 0 selects the
  /// default (MPCSPAN_THREADS env var, else hardware concurrency).
  std::size_t threads = 0;
  /// Worker processes the machines are partitioned over. 1 runs everything
  /// in-process (the single-node special case); 0 selects the default
  /// (MPCSPAN_SHARDS env var, else 1). Clamped to numMachines. Sharded or
  /// not, the same workload is bit-identical — rounds, ledger, contents.
  std::size_t shards = 0;
  /// Shard worker lifetime: 1 = resident workers (fork once per engine,
  /// control frames per round — the default), 0 = legacy fork-per-round
  /// snapshot dispatch (kept as the bench_micro baseline; no kernel/block
  /// support), -1 = the MPCSPAN_RESIDENT env var (default resident).
  int resident = -1;
  /// Cross-shard section routing of resident kernel rounds: 1 = worker-to-
  /// worker peer mesh (the coordinator only arbitrates the barrier — the
  /// default), 0 = coordinator relay (the bit-identical equivalence
  /// reference), -1 = the MPCSPAN_PEER_EXCHANGE env var (default peer).
  int peerExchange = -1;
  /// Concrete transport override. kDefault resolves from `peerExchange`
  /// first (0 -> kRelay), then MPCSPAN_TCP_EXCHANGE (1 -> kTcp), then
  /// MPCSPAN_SHM_EXCHANGE between the two same-host mesh kinds (unset/1 ->
  /// kShmRing, 0 -> kSocketMesh). An explicit value here wins over all
  /// knobs. kTcp forms the mesh by rendezvous through an ephemeral
  /// listener instead of fd inheritance, so its workers may also be remote
  /// processes (MPCSPAN_TCP_REMOTE=1 + mpcspan_worker --connect).
  Transport transport = Transport::kDefault;
  /// Pipelined resident rounds: 1 = overlap a round's cross-shard delivery
  /// with the next round's local phase when the topology allows it
  /// (Topology::canOverlap — fused epoch-tagged barrier, speculative
  /// pre-verdict merge into double-buffered inboxes), 0 = strict barrier
  /// (every transport's classic conversation, the bit-identical reference),
  /// -1 = the MPCSPAN_PIPELINE env var (default pipelined). Only the
  /// resident mesh transports pipeline; relay and fork-per-round stay
  /// strict regardless.
  int pipeline = -1;
};

class RoundEngine {
 public:
  RoundEngine(EngineConfig cfg, std::unique_ptr<Topology> topology);
  ~RoundEngine();

  std::size_t numMachines() const { return numMachines_; }
  /// Worker processes executing the rounds (1 = in-process).
  std::size_t numShards() const;
  /// True when rounds run on resident shard workers (shards > 1 and the
  /// resident backend selected).
  bool residentShards() const;
  /// True when resident kernel rounds route cross-shard sections over the
  /// worker-to-worker mesh — either kind (false: coordinator relay, or not
  /// sharded).
  bool peerMeshShards() const;
  /// True when the mesh sections move through shared-memory rings (false:
  /// socket mesh, relay, or not sharded).
  bool shmRingShards() const;
  /// True when the mesh is TCP, formed by rendezvous (cross-machine
  /// capable; false: same-host transports, relay, or not sharded).
  bool tcpMeshShards() const;
  /// True when resident rounds run the pipelined (epoch-tagged, overlap-
  /// capable) barrier rather than the strict reference barrier (false:
  /// strict mode, relay, or not sharded).
  bool pipelinedShards() const;
  /// The multi-process backend, null when in-process (introspection: worker
  /// pids, shard ranges).
  const shard::ShardedEngine* shardBackend() const { return shard_.get(); }
  const Topology& topology() const { return *topology_; }
  ThreadPool& pool() { return pool_; }

  std::size_t rounds() const { return ledger_.rounds; }
  std::size_t totalWordsSent() const { return ledger_.wordsSent; }
  std::size_t maxRoundWords() const { return ledger_.maxRoundWords; }

  /// Charges rounds / traffic whose execution is proven rather than
  /// simulated message-by-message (e.g. Lenzen routing, spanner collection).
  void chargeRounds(std::size_t n) { ledger_.rounds += n; }
  void chargeTraffic(std::size_t words) { ledger_.wordsSent += words; }

  /// One synchronous communication round: bounds-checks destinations,
  /// validates the outboxes against the topology, delivers, and updates the
  /// ledger. inbox[d] holds deliveries ordered by (src, position in src's
  /// outbox). Under Topology::Mode::kPriorityWrite only the first delivery
  /// per destination lands. Outboxes are consumed.
  std::vector<std::vector<Delivery>> exchange(
      std::vector<std::vector<Message>> outboxes);

  /// Machine-centric round: runs step(machine, inbox) for every machine in
  /// parallel on the pool (the inbox is the previous step's deliveries),
  /// then exchanges the produced outboxes. The deliveries are stored and
  /// readable via inbox() until the next step.
  ///
  /// Sharded caveat: the closure executes its compute wave in per-round
  /// forked processes against a copy-on-write snapshot (the resident
  /// workers forked before the closure existed, so they cannot run it). It
  /// may *read* any captured state, but every mutation it makes to captured
  /// state is discarded with the wave — only the returned messages survive.
  /// A StepFn that must behave identically in-process and sharded therefore
  /// keeps per-machine state in the messages/inboxes it returns, never in
  /// captured variables. Kernels (below) replace that purity caveat with an
  /// explicit owned-state contract.
  using StepFn = std::function<std::vector<Message>(
      std::size_t machine, const std::vector<Delivery>& inbox)>;
  void step(const StepFn& fn);
  const std::vector<Delivery>& inbox(std::size_t machine) const {
    return inboxes_[machine];
  }

  // --- Registered kernels: the resident step path. ---

  /// Registers a kernel under `name`. With a factory, the registration is
  /// engine-local: it crosses into the resident workers with their one fork
  /// snapshot, so it must happen before the engine's first sharded
  /// operation (afterwards the name must also be globally registered —
  /// GlobalKernelRegistrar — or this throws). With no factory the name is
  /// resolved against the global registry on both sides of the fork, any
  /// time. Names are unique per engine.
  KernelId registerKernel(std::string name, KernelFactory factory = {});
  /// The id `name` was registered under, or an invalid id.
  KernelId findKernel(const std::string& name) const;

  /// One kernel round: the kernel steps every machine where that machine
  /// lives (in-process, or inside its resident worker), the outboxes are
  /// validated/delivered under the topology exactly like exchange(), and
  /// the deliveries land in the machines' resident inboxes (worker-owned
  /// when sharded — they are not shipped back; use snapshotInboxes() or
  /// fetchKernel() to observe state). `args` is broadcast to every machine.
  /// A kernel throw aborts the round for all shards: ledger and inboxes
  /// untouched, engine and workers still usable.
  void step(KernelId kernel, std::vector<Word> args = {});
  /// A free data-placement round: the kernel steps every machine and the
  /// messages are delivered (all of them, (src, send-position) order) into
  /// the resident inboxes, but nothing is validated against the topology
  /// and the ledger is never charged. This is the worker-to-worker
  /// equivalent of host-side data management (createBlocks/readBlocks are
  /// free for the same reason): re-laying out worker-owned state between
  /// simulated supersteps without shipping it through the coordinator.
  /// Never use it for algorithmic communication — that must go through
  /// step(), where the model's limits are enforced.
  void stepShuffle(KernelId kernel, std::vector<Word> args = {});
  /// A free local phase: kernel.local on every machine, no round, no
  /// messages, no ledger (the "local computation is free" half of the MPC
  /// model).
  void stepLocal(KernelId kernel, std::vector<Word> args = {});
  /// Per-machine kernel.fetch readout (free; host-side collection).
  std::vector<std::vector<Word>> fetchKernel(KernelId kernel,
                                             std::vector<Word> args = {});

  // --- Worker-owned block storage (DistVector backing). ---

  /// Ships perMachine[m] to machine m's owner and returns the handle.
  /// Blocks live beside the kernels: in-process in the engine's own store,
  /// sharded inside the resident workers (created before the workers start,
  /// they simply cross with the fork snapshot).
  std::uint64_t createBlocks(std::vector<std::vector<Word>> perMachine);
  std::vector<std::vector<Word>> readBlocks(std::uint64_t handle);
  void freeBlocks(std::uint64_t handle);

  /// Every machine's resident inbox, fetched from wherever it lives. The
  /// inbox(machine) accessor only tracks closure-step rounds; after kernel
  /// rounds on a sharded engine this is the authoritative view.
  std::vector<std::vector<Delivery>> snapshotInboxes();

  /// Deterministic parallel loop on the engine's pool. fn must write to
  /// disjoint outputs; then the result is identical for every thread count.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
    pool_.parallelFor(n, fn);
  }

 private:
  StepKernel& ensureKernelInstance(KernelId kernel);
  /// In-process kernel compute wave: kernel.step on every machine on the
  /// pool (step's and stepShuffle's shared half).
  std::vector<std::vector<Message>> runKernelWave(KernelId kernel,
                                                  const std::vector<Word>& args);
  std::vector<std::vector<Delivery>> exchangeImpl(
      std::vector<std::vector<Message>> outboxes, bool updateResident);
  /// Unvalidated, uncharged deliver-all into inboxes_ (stepShuffle's
  /// in-process half).
  void deliverFree(std::vector<std::vector<Message>> outboxes);
  /// Refreshes inboxes_ from the workers if kernel rounds left the
  /// authoritative copy worker-side.
  void syncInboxes();

  std::size_t numMachines_;
  std::unique_ptr<Topology> topology_;
  ThreadPool pool_;
  Accounting ledger_;
  std::vector<std::vector<Delivery>> inboxes_;
  /// True while the worker-resident inboxes are ahead of inboxes_ (kernel
  /// rounds ran on the sharded backend).
  bool inboxesResident_ = false;
  std::vector<KernelRegistration> kernels_;
  std::vector<std::unique_ptr<StepKernel>> kernelInstances_;  // in-process
  BlockStore store_;  // in-process blocks; pre-start staging when sharded
  std::uint64_t nextBlockHandle_ = 1;
  /// Multi-process backend; null when shards resolve to 1 (in-process).
  std::unique_ptr<shard::ShardedEngine> shard_;
};

/// RAII lease on a createBlocks() handle for kernel drivers that stage
/// worker-resident blocks across several phases: the blocks are freed on
/// scope exit — including a thrown, aborted round, which by contract leaves
/// the engine usable, so a driver that retries must not accumulate dead
/// blocks in the workers — unless release() hands ownership elsewhere
/// (e.g. DistVector::adopt).
class BlockLease {
 public:
  BlockLease(RoundEngine& eng, std::uint64_t handle)
      : eng_(&eng), handle_(handle) {}
  BlockLease(const BlockLease&) = delete;
  BlockLease& operator=(const BlockLease&) = delete;
  ~BlockLease() {
    if (!eng_) return;
    try {
      eng_->freeBlocks(handle_);
    } catch (...) {
      // A dead shard backend already surfaced loudly; freeing afterwards
      // must not terminate (same policy as DistVector's destructor).
    }
  }

  std::uint64_t handle() const { return handle_; }
  std::uint64_t release() {
    eng_ = nullptr;
    return handle_;
  }

 private:
  RoundEngine* eng_;
  std::uint64_t handle_;
};

/// Finds or registers kernel K on the engine. odr-using the global
/// registrar plants K's factory in every process at static initialization,
/// so a resident worker that forked long before this call can still
/// construct K by name. K needs a static kernelName() and a default
/// constructor (the GlobalKernelRegistrar contract).
template <class K>
KernelId ensureKernel(RoundEngine& eng) {
  (void)&globalKernelRegistrar<K>;
  const std::string name = K::kernelName();
  if (const KernelId id = eng.findKernel(name); id.valid()) return id;
  return eng.registerKernel(name);
}

}  // namespace mpcspan::runtime
