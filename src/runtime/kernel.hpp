// Registered step kernels and worker-owned state — the resident half of the
// round-engine runtime.
//
// The legacy RoundEngine::step(StepFn) closure cannot outlive a process
// boundary: under the sharded backend it executes against a fork snapshot,
// so its captured-state mutations die with the worker. A *registered* kernel
// inverts that contract: the engine constructs one kernel instance per
// worker process (or one in-process instance when shards == 1), and that
// instance **owns** its per-machine state across rounds — per-machine
// inboxes and blocks stay resident where they are used and are never
// re-shipped through the coordinator. What the legacy path expressed as
// "StepFn must be pure" becomes explicit ownership: anything a kernel wants
// to persist lives in the kernel instance or the BlockStore, and anything
// it wants to communicate moves through returned messages.
//
// Identity across processes: a kernel is named. A factory registered on the
// engine *before its workers fork* crosses into them with the fork
// snapshot; a kernel registered *after* the fork is resolved inside each
// worker by name against the process-global registry (populated at static
// initialization — see GlobalKernelRegistrar), which both sides of the fork
// share by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/arena.hpp"
#include "runtime/types.hpp"

namespace mpcspan::runtime {

/// Handle for a kernel registered on one RoundEngine. Deliberately a struct
/// (not a bare index) so RoundEngine::step(KernelId, args) can never be
/// confused with the legacy closure overload.
struct KernelId {
  static constexpr std::size_t kInvalid = static_cast<std::size_t>(-1);
  std::size_t index = kInvalid;
  bool valid() const { return index != kInvalid; }
};

/// Machine-indexed word-block storage owned by the executing side: the
/// worker process for the machines it hosts, the engine itself when running
/// in-process. Handles are allocated by the coordinator
/// (RoundEngine::createBlocks) and are dense vectors over all machines —
/// a worker simply leaves the blocks outside its range empty.
///
/// Ownership: every block is an arena-backed WordBuf drawing from the
/// store's private Arena. The store owns the words for as long as the
/// handle lives — kernels get a reference via block(), may resize/rewrite
/// it freely, and must never retain the data pointer across a round (a
/// regrow moves the words to a different arena run). erase()/clear()
/// recycle the runs inside the arena; the arena itself lives exactly as
/// long as the store, so no block reference can outlive its memory.
///
/// Thread-safety: create/erase only between parallel phases (the engine's
/// frame handling is single-threaded); block() for *distinct* machines is
/// safe from concurrent kernel steps because lookups never rehash, and
/// concurrent regrows are safe because the arena is internally locked.
class BlockStore {
 public:
  explicit BlockStore(std::size_t numMachines) : numMachines_(numMachines) {}

  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  std::size_t numMachines() const { return numMachines_; }

  void create(std::uint64_t handle);
  bool has(std::uint64_t handle) const { return slots_.count(handle) != 0; }
  void erase(std::uint64_t handle) { slots_.erase(handle); }
  void clear() { slots_.clear(); }

  WordBuf& block(std::uint64_t handle, std::size_t machine);
  const WordBuf& block(std::uint64_t handle, std::size_t machine) const;

  /// Live handles in ascending order (snapshot adoption at worker fork).
  std::vector<std::uint64_t> handles() const;

  /// Words of arena memory backing all blocks (diagnostics / benches).
  std::size_t arenaReservedWords() const { return arena_.reservedWords(); }

 private:
  std::size_t numMachines_;
  Arena arena_;  // declared before slots_: blocks must die first
  std::unordered_map<std::uint64_t, std::vector<WordBuf>> slots_;
};

/// Everything a kernel sees when stepping one machine. `inbox` is the
/// machine's resident inbox — the deliveries of the last committed kernel
/// round — and `args` is the round's broadcast argument vector (identical
/// on every machine; the coordinator-side driver's only per-round input).
struct KernelCtx {
  std::size_t machine;
  std::size_t numMachines;
  const std::vector<Delivery>& inbox;
  const std::vector<Word>& args;
  BlockStore& store;
};

/// A registered step kernel. One instance per executing side; per-machine
/// state is keyed by ctx.machine inside the instance (a sharded instance
/// only ever sees the machines of its worker's range). All three entry
/// points run in parallel over machines on the local pool, so they must
/// write only to per-machine disjoint state.
class StepKernel {
 public:
  virtual ~StepKernel() = default;

  /// One communication round: consume ctx.inbox, return this machine's
  /// outbox. Throwing aborts the round for every shard (the resident inbox
  /// and the ledger stay untouched; instance state mutated before the throw
  /// persists, exactly as in-process captured state would).
  virtual std::vector<Message> step(const KernelCtx& ctx) = 0;

  /// A free local phase: no round, no messages (RoundEngine::stepLocal).
  virtual void local(const KernelCtx& ctx) { (void)ctx; }

  /// Serializes per-machine results for a coordinator-side collect
  /// (RoundEngine::fetchKernel). Free — diagnostics and host-side readout.
  virtual std::vector<Word> fetch(const KernelCtx& ctx) {
    (void)ctx;
    return {};
  }
};

using KernelFactory = std::function<std::unique_ptr<StepKernel>()>;

/// One engine-local registration: the factory is empty when the kernel is
/// resolved by name against the global registry instead (the only option
/// once resident workers have forked).
struct KernelRegistration {
  std::string name;
  KernelFactory factory;
};

/// Bit-set packing for broadcast kernel args: a per-entity flag vector
/// (sampled clusters, alive edges) travels to the workers as
/// ceil(n / 64) words instead of n, and the kernels test bits in place.
inline std::vector<Word> packArgBits(const std::vector<char>& flags) {
  std::vector<Word> words((flags.size() + 63) / 64, 0);
  for (std::size_t i = 0; i < flags.size(); ++i)
    if (flags[i]) words[i >> 6] |= Word{1} << (i & 63);
  return words;
}

/// Tests bit i of a packArgBits vector; out-of-range reads as unset (a
/// kernel must never index past the words the coordinator shipped).
inline bool testArgBit(const Word* words, std::size_t numBits, std::size_t i) {
  return i < numBits && ((words[i >> 6] >> (i & 63)) & 1) != 0;
}

/// Process-global kernel registry. Registration is idempotent per name (the
/// first factory wins; returns false on a duplicate). Thread-safe.
bool registerGlobalKernel(std::string name, KernelFactory factory);
const KernelFactory* findGlobalKernel(const std::string& name);

/// Static-initialization registrar: odr-using globalKernelRegistrar<K>
/// plants K in the global registry of every process before main — i.e.
/// before any worker can fork — so resident workers resolve K::kernelName()
/// no matter when the engine first hears about it. K needs a static
/// kernelName() and a default constructor.
template <class K>
struct GlobalKernelRegistrar {
  GlobalKernelRegistrar() {
    registerGlobalKernel(K::kernelName(),
                         [] { return std::unique_ptr<StepKernel>(new K()); });
  }
};
template <class K>
inline GlobalKernelRegistrar<K> globalKernelRegistrar{};

}  // namespace mpcspan::runtime
