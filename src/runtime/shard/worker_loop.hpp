// The resident worker's command loop, extracted from ShardedEngine so it
// can run in two kinds of process:
//
//   - a fork()ed child of the coordinator (kRelay/kSocketMesh/kShmRing, and
//     kTcp's default local mode): the WorkerConfig is built from the
//     engine's members and the kernel table / block store / inboxes arrive
//     with the fork snapshot;
//   - a *remote* process (`mpcspan_worker --connect host:port --shard k`)
//     that dialed the tcp rendezvous: the same state arrives in a SETUP
//     frame (kOpSetup) instead, and kernels resolve by name against the
//     process-global registry — the only identities that exist across
//     binaries.
//
// Either way the loop speaks the protocol.hpp control frames over `ctrl`
// and exchanges cross-shard sections over `peers`, and its observable
// behavior (delivery order, validation, error surface) is identical — the
// transports are bit-identical by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/kernel.hpp"
#include "runtime/shard/transport.hpp"
#include "runtime/topology.hpp"
#include "runtime/types.hpp"

namespace mpcspan::runtime::shard {

class ShmArena;

/// The balanced contiguous machine split shared by the coordinator and the
/// workers (the one definition — coordinator-side bucketing and worker-side
/// range checks must never drift apart).
std::size_t shardRangeBegin(std::size_t numMachines, std::size_t shards,
                            std::size_t s);
inline std::size_t shardRangeEnd(std::size_t numMachines, std::size_t shards,
                                 std::size_t s) {
  return shardRangeBegin(numMachines, shards, s + 1);
}
std::size_t shardOfMachine(std::size_t numMachines, std::size_t shards,
                           std::size_t machine);

/// Everything the command loop needs to know about its place in the engine.
/// `topology` is borrowed (fork-shared or owned by the caller's
/// RemoteSetup); `shmArena` is non-null only under kShmRing.
struct WorkerConfig {
  std::size_t numMachines = 0;
  std::size_t shards = 0;
  std::size_t shard = 0;
  std::size_t threads = 1;
  const Topology* topology = nullptr;
  Transport transport = Transport::kSocketMesh;
  ShmArena* shmArena = nullptr;
  /// Total communication budget of one round's peer-exchange waits (ms;
  /// < 0 = unbounded). Same-host meshes pass -1; tcp passes its channel
  /// deadline. Seeded into one DeadlineBudget per round — shared across
  /// every wait, so a trickling peer spends it rather than resetting it.
  int meshTimeoutMs = -1;
  /// Engine-level pipeline mode (informational — the authoritative
  /// per-round overlap decision rides each kOpStep frame's mode byte;
  /// this mirrors ShardedEngine::pipelined() for diagnostics and the
  /// remote SETUP frame).
  bool pipelined = false;
};

/// Runs the resident command loop until SHUTDOWN or wire EOF (both return
/// cleanly; protocol violations and transport corruption throw out as the
/// caller's exit-status policy dictates). `ctrl` is the coordinator
/// channel; `peers` is this worker's mesh row (empty under kRelay).
/// `kernels`, `store`, and `inboxes` are the snapshot state the loop
/// adopts; `store` is caller-owned because BlockStore is non-copyable and
/// the remote path materializes it straight off the wire.
void runResidentWorker(const WorkerConfig& cfg, Channel& ctrl,
                       std::vector<WireFd>& peers,
                       std::vector<KernelRegistration> kernels,
                       BlockStore& store,
                       std::vector<std::vector<Delivery>> inboxes);

/// Coordinator side of remote provisioning: one kOpSetup frame carrying
/// what shard `shard`'s fork snapshot would have carried — dimensions, the
/// topology's wire descriptor, the kernel *names* (factories cannot cross
/// binaries; the worker resolves them globally), the shard's slice of the
/// block store, and its slice of the closure-step inboxes. Throws
/// ShardError if the topology is not wire-serializable
/// (Topology::WireKind::kOpaque — a custom subclass).
void sendWorkerSetup(Channel& ch, std::size_t numMachines, std::size_t shards,
                     std::size_t shard, std::size_t threads,
                     const Topology& topology,
                     const std::vector<KernelRegistration>* kernels,
                     const BlockStore* blocks,
                     const std::vector<std::vector<Delivery>>* inboxes,
                     bool pipelined = false);

/// What readWorkerSetup materializes from the frame. `cfg.topology` points
/// at `topology`; move the struct as a unit.
struct RemoteSetup {
  WorkerConfig cfg;
  std::unique_ptr<Topology> topology;
  std::vector<KernelRegistration> kernels;  // names only
  std::unique_ptr<BlockStore> store;
  std::vector<std::vector<Delivery>> inboxes;  // this shard's slice
};

/// Worker side: reads the kOpSetup frame off `ch` and rebuilds the snapshot
/// state. Every wire-supplied size is vetted; a malformed frame (or a frame
/// that is not kOpSetup) throws ShardError.
RemoteSetup readWorkerSetup(Channel& ch);

}  // namespace mpcspan::runtime::shard
