// Shared-memory ring transport for the resident worker mesh.
//
// With the shm exchange selected (Transport::kShmRing — the default on a
// same-host engine, see MPCSPAN_SHM_EXCHANGE), every ordered worker pair
// (a → b) shares one fixed-size SPSC byte ring inside a single
// mmap(MAP_SHARED) arena that the coordinator creates *before the first
// fork* and shm_unlink()s the moment it is mapped — a crashed run can
// never leave an orphan under /dev/shm. Senders serialize each cross-shard
// section exactly once, straight into the ring (same frame bytes as the
// socket mesh: `u64 bodyLen | u64 rowCount | rows`); receivers parse a
// frame that fits the ring *in place* through a non-owning WireReader view
// and only release the ring span after the merge has consumed it
// (ShmArena::releaseInbound), so a cross-shard payload is copied exactly
// once on the whole path — ring bytes into the receiver's delivery arena.
//
// The PR-5 socketpair mesh stays underneath as the wakeup channel: a
// worker that advances its ring (produced or consumed) rings a one-byte
// doorbell so a blocked peer re-pumps. Doorbell sends are nonblocking and
// EAGAIN is safely ignored — a full doorbell buffer means the peer already
// has wakeups queued. Peer death keeps the mesh semantics: the doorbell
// socket reports EOF, the survivor drains the ring one last time, and an
// incomplete frame becomes the same "peer shard worker died mid-exchange"
// ShardError the socket mesh raises.
//
// Frame placement rules (both ends compute from the same free-running
// stream position, so no flags cross the wire):
//   - the 8-byte length prefix never wraps: a position within 8 bytes of
//     the ring edge is an implicit filler the sender skips and the
//     receiver skips identically;
//   - a body that fits the ring (bodyLen <= cap - 8) is kept contiguous:
//     if it would wrap, the sender writes a kPadMarker length and restarts
//     the frame at the ring edge, and the receiver hands out a zero-copy
//     view of the body;
//   - a larger body streams through the ring in chunks, the receiver
//     copying into a heap frame and releasing ring space as it goes
//     (backpressure: sender and receiver ping-pong on the doorbell).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/shard/wire.hpp"

namespace mpcspan::runtime::shard {

/// Producer/consumer cursors of one ring, each on its own cache line so
/// the two sides never false-share. Positions are free-running byte
/// offsets (never wrapped); `pos & (cap - 1)` is the ring offset.
struct alignas(64) RingHdr {
  std::atomic<std::uint64_t> produced;
  char pad0[64 - sizeof(std::atomic<std::uint64_t>)];
  std::atomic<std::uint64_t> consumed;
  char pad1[64 - sizeof(std::atomic<std::uint64_t>)];
};
static_assert(sizeof(RingHdr) == 128, "two cache lines");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm ring cursors must be lock-free across processes");

/// Length-prefix value that can never be a real body length (it exceeds
/// kMaxFrameBytes): "skip to the ring edge and re-read the prefix there".
constexpr std::uint64_t kPadMarker = ~0ull;

/// Ring capacity in bytes: MPCSPAN_SHM_RING_BYTES rounded up to a power of
/// two and clamped to [4 KiB, 1 GiB]; 1 MiB when unset.
std::size_t defaultShmRingBytes();

/// The process-shared arena: workers * workers ring slots (diagonal
/// unused), created pre-fork so every worker inherits the same mapping.
/// The backing shm object is unlinked immediately after mmap — the mapping
/// lives exactly as long as the processes that hold it.
class ShmArena {
 public:
  ShmArena(std::size_t workers, std::size_t ringBytes = defaultShmRingBytes());
  ~ShmArena();

  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  std::size_t workers() const { return workers_; }
  std::size_t ringBytes() const { return ringBytes_; }

  /// The (from → to) ring's cursors / data bytes.
  RingHdr& hdr(std::size_t from, std::size_t to) const;
  std::uint8_t* data(std::size_t from, std::size_t to) const;

  /// Records that the (from → to) ring's consumed cursor must advance to
  /// `newConsumed` once the in-place frame view has been merged. Pending
  /// entries are process-local: each worker only defers its own inbound
  /// rings.
  void deferRelease(std::size_t from, std::size_t to,
                    std::uint64_t newConsumed);
  /// Applies every deferred release. Must run after the merge consumed the
  /// frame views and before the worker reports phase B — the commit
  /// barrier then guarantees no peer writes the next round's frame into a
  /// span that is still being read.
  void releaseInbound();

 private:
  std::size_t slotBytes() const { return sizeof(RingHdr) + ringBytes_; }

  std::uint8_t* base_ = nullptr;
  std::size_t mapBytes_ = 0;
  std::size_t workers_ = 0;
  std::size_t ringBytes_ = 0;

  struct Pending {
    std::size_t from, to;
    std::uint64_t newConsumed;
  };
  std::vector<Pending> pending_;
};

/// One outgoing frame's progress through its ring. `stage` 0 is still
/// placing the length prefix (and, for ring-sized bodies, the whole frame
/// at once); stage 1 streams an oversized body chunk by chunk.
struct ShmSendFrame {
  RingHdr* h = nullptr;
  std::uint8_t* d = nullptr;
  std::uint64_t cap = 0;
  std::uint64_t rowCount = 0;
  const std::uint8_t* rows = nullptr;  // borrowed from the caller's section
  std::uint64_t rowsLen = 0;
  std::uint64_t bodyLen = 0;
  std::uint64_t bodyOff = 0;
  std::uint64_t savedProduced = 0;  // rewind point for an aborted round
  int stage = 0;
  bool contiguous = false;
  bool done = true;
};

/// The send half of one STEP round's exchange, indexed by peer shard.
struct ShmSendState {
  std::vector<ShmSendFrame> outs;
};

/// Starts shipping this round's sections: writes as much of every outbound
/// frame as its ring accepts *right now*, without blocking, and rings the
/// doorbell for every ring it advanced — a peer that already reached its
/// own exchange may be parked in poll waiting for exactly this frame.
/// Called straight after phase-A compute, before any barrier report; in
/// the steady state (empty rings) every ring-sized frame is fully placed
/// here and finishShmExchange never blocks. The sections must outlive the
/// returned state (rows are borrowed).
ShmSendState beginShmSend(ShmArena& arena, std::size_t self,
                          const std::vector<std::uint64_t>& counts,
                          const std::vector<WireWriter>& sections,
                          std::vector<WireFd>& doorbells);

/// Aborted round (no go byte): rewinds every outbound ring's produced
/// cursor to its pre-frame position. Safe because a receiver only reads
/// after go — no peer byte was ever consumed, exactly the socket mesh's
/// abort guarantee.
void abortShmSend(ShmSendState& st);

/// Completes the exchange after the go byte: finishes any oversized sends
/// and receives one frame from every peer's (t → self) ring, multiplexed
/// on the doorbell sockets (`doorbells` is the worker's mesh row). Returns
/// the frame bodies indexed by peer shard (empty reader at `self`), each
/// positioned at its leading row count — in-place ring views for bodies
/// that fit the ring (release them with arena.releaseInbound() after
/// merging), owned heap frames for larger bodies. Same body bytes, same
/// ShardError surface as meshExchange.
std::vector<WireReader> finishShmExchange(ShmArena& arena,
                                          std::vector<WireFd>& doorbells,
                                          std::size_t self, ShmSendState& st);

/// beginShmSend + finishShmExchange in one call (unit tests and one-shot
/// exchanges; the engine splits the two around the barrier).
std::vector<WireReader> shmExchange(ShmArena& arena,
                                    std::vector<WireFd>& doorbells,
                                    std::size_t self,
                                    const std::vector<std::uint64_t>& counts,
                                    const std::vector<WireWriter>& sections);

}  // namespace mpcspan::runtime::shard
