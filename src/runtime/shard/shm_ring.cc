#include "runtime/shard/shm_ring.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

namespace mpcspan::runtime::shard {

namespace {

[[noreturn]] void peerDied(const char* what) {
  throw ShardError(std::string("peer shard worker died mid-exchange (") +
                   what + ")");
}

/// One ring as seen by the exchange state machines.
struct RingView {
  RingHdr* h = nullptr;
  std::uint8_t* d = nullptr;
  std::uint64_t cap = 0;
};

/// Incoming frame: parse the length prefix at the consumed cursor, then
/// either wait for the whole body and hand out an in-place view, or copy
/// an oversized body out chunk by chunk (releasing ring space as we go).
struct ShmIn {
  RingView ring;
  bool haveLen = false;
  std::uint64_t bodyLen = 0;
  std::uint64_t bodyStart = 0;  // free-running position of the body
  bool contiguous = false;
  const std::uint8_t* viewPtr = nullptr;
  std::vector<std::uint8_t> heapBody;
  std::uint64_t bodyOff = 0;
  bool done = true;
};

/// Copies [bodyOff, bodyOff + n) of the logical body (rowCount word, then
/// rows) into the ring at byte offset `off` (caller guarantees no wrap).
void copyBodyChunk(const ShmSendFrame& o, std::uint64_t off, std::uint64_t n) {
  std::uint64_t src = o.bodyOff;
  std::uint8_t* dst = o.d + off;
  if (src < sizeof(o.rowCount)) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&o.rowCount);
    const std::uint64_t k = std::min<std::uint64_t>(sizeof(o.rowCount) - src, n);
    std::memcpy(dst, p + src, k);
    src += k;
    dst += k;
    n -= k;
  }
  if (n > 0) std::memcpy(dst, o.rows + (src - sizeof(o.rowCount)), n);
}

/// Advances one outgoing frame as far as ring space allows. Returns true
/// if the produced cursor moved (the peer then needs a doorbell).
bool pumpShmSend(ShmSendFrame& o) {
  if (o.done) return false;
  RingHdr& h = *o.h;
  const std::uint64_t cap = o.cap;
  bool progress = false;
  for (;;) {
    const std::uint64_t produced = h.produced.load(std::memory_order_relaxed);
    const std::uint64_t consumed = h.consumed.load(std::memory_order_acquire);
    const std::uint64_t free = cap - (produced - consumed);
    const std::uint64_t off = produced & (cap - 1);
    if (o.stage == 0) {
      if (off + sizeof(std::uint64_t) > cap) {
        // Implicit filler: the length prefix never wraps, so both ends
        // skip the sub-8-byte tail without writing anything.
        const std::uint64_t pad = cap - off;
        if (free < pad) return progress;
        h.produced.store(produced + pad, std::memory_order_release);
        progress = true;
        continue;
      }
      if (o.contiguous && off + sizeof(std::uint64_t) + o.bodyLen > cap) {
        // The body would wrap: burn the rest of the ring behind an
        // explicit pad marker and restart the frame at the edge.
        if (free < cap - off) return progress;
        std::memcpy(o.d + off, &kPadMarker, sizeof(kPadMarker));
        h.produced.store(produced + (cap - off), std::memory_order_release);
        progress = true;
        continue;
      }
      if (o.contiguous) {
        if (free < sizeof(std::uint64_t) + o.bodyLen) return progress;
        std::memcpy(o.d + off, &o.bodyLen, sizeof(o.bodyLen));
        std::memcpy(o.d + off + 8, &o.rowCount, sizeof(o.rowCount));
        if (o.rowsLen > 0)
          std::memcpy(o.d + off + 16, o.rows, o.rowsLen);
        h.produced.store(produced + sizeof(std::uint64_t) + o.bodyLen,
                         std::memory_order_release);
        o.done = true;
        return true;
      }
      // Oversized body: place just the prefix, then stream.
      if (free < sizeof(std::uint64_t)) return progress;
      std::memcpy(o.d + off, &o.bodyLen, sizeof(o.bodyLen));
      h.produced.store(produced + sizeof(std::uint64_t),
                       std::memory_order_release);
      o.stage = 1;
      progress = true;
      continue;
    }
    if (o.bodyOff == o.bodyLen) {
      o.done = true;
      return true;
    }
    const std::uint64_t n =
        std::min({free, o.bodyLen - o.bodyOff, cap - off});
    if (n == 0) return progress;
    copyBodyChunk(o, off, n);
    h.produced.store(produced + n, std::memory_order_release);
    o.bodyOff += n;
    progress = true;
  }
}

/// Advances one incoming frame as far as produced bytes allow. Returns
/// true if the consumed cursor moved (the peer then needs a doorbell).
bool pumpShmRecv(ShmArena& arena, std::size_t from, std::size_t self,
                 ShmIn& in) {
  if (in.done) return false;
  RingHdr& h = *in.ring.h;
  const std::uint64_t cap = in.ring.cap;
  bool progress = false;
  for (;;) {
    const std::uint64_t produced = h.produced.load(std::memory_order_acquire);
    if (!in.haveLen) {
      const std::uint64_t consumed =
          h.consumed.load(std::memory_order_relaxed);
      if (produced == consumed) return progress;
      const std::uint64_t off = consumed & (cap - 1);
      if (off + sizeof(std::uint64_t) > cap) {
        // Implicit filler (the sender advanced past it in one store, so
        // produced already covers the whole skip).
        h.consumed.store(consumed + (cap - off), std::memory_order_release);
        progress = true;
        continue;
      }
      if (produced - consumed < sizeof(std::uint64_t)) return progress;
      std::uint64_t len;
      std::memcpy(&len, in.ring.d + off, sizeof(len));
      if (len == kPadMarker) {
        h.consumed.store(consumed + (cap - off), std::memory_order_release);
        progress = true;
        continue;
      }
      // Same plausibility vet as the socket mesh: the body always leads
      // with a u64 row count, and nothing legitimate exceeds the frame
      // cap. A garbled ring header dies here, before any allocation.
      if (len < sizeof(std::uint64_t) || len > kMaxFrameBytes)
        throw ShardError("shm ring frame: implausible length");
      in.bodyLen = len;
      in.bodyStart = consumed + sizeof(std::uint64_t);
      in.contiguous = len <= cap - sizeof(std::uint64_t);
      in.haveLen = true;
      if (in.contiguous) {
        if ((in.bodyStart & (cap - 1)) + len > cap)
          throw ShardError("shm ring frame: wrapped contiguous body");
      } else {
        in.heapBody.resize(len);
        // Release the prefix now; body chunks release as they copy out.
        h.consumed.store(consumed + sizeof(std::uint64_t),
                         std::memory_order_release);
        progress = true;
      }
      continue;
    }
    if (in.contiguous) {
      if (produced < in.bodyStart + in.bodyLen) return progress;
      in.viewPtr = in.ring.d + (in.bodyStart & (cap - 1));
      arena.deferRelease(from, self, in.bodyStart + in.bodyLen);
      in.done = true;
      return progress;
    }
    if (in.bodyOff == in.bodyLen) {
      in.done = true;
      return progress;
    }
    const std::uint64_t consumed = h.consumed.load(std::memory_order_relaxed);
    const std::uint64_t avail = produced - consumed;
    if (avail == 0) return progress;
    const std::uint64_t off = consumed & (cap - 1);
    const std::uint64_t n =
        std::min({avail, in.bodyLen - in.bodyOff, cap - off});
    std::memcpy(in.heapBody.data() + in.bodyOff, in.ring.d + off, n);
    in.bodyOff += n;
    h.consumed.store(consumed + n, std::memory_order_release);
    progress = true;
  }
}

/// Nonblocking one-byte wakeup. EAGAIN means the peer has unread wakeups
/// queued already; EPIPE means the peer died, which the recv side reports.
void ringDoorbell(WireFd& fd) {
  const std::uint8_t b = 1;
  for (;;) {
    const ssize_t w = ::send(fd.fd(), &b, 1, MSG_NOSIGNAL);
    if (w >= 0 || errno != EINTR) return;
  }
}

/// Drains queued doorbell bytes. Returns false when the peer is gone
/// (EOF or a hard socket error) — the caller pumps the ring one last time
/// and only then decides whether the exchange is short.
bool drainDoorbell(WireFd& fd) {
  std::uint8_t buf[256];
  for (;;) {
    const ssize_t r = ::recv(fd.fd(), buf, sizeof(buf), 0);
    if (r > 0) continue;
    if (r == 0) return false;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

}  // namespace

std::size_t defaultShmRingBytes() {
  constexpr std::size_t kDefault = std::size_t{1} << 20;  // 1 MiB
  constexpr std::size_t kMin = std::size_t{1} << 12;      // 4 KiB
  constexpr std::size_t kMax = std::size_t{1} << 30;      // 1 GiB
  const char* env = std::getenv("MPCSPAN_SHM_RING_BYTES");
  if (env == nullptr || *env == '\0') return kDefault;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env) return kDefault;
  return std::bit_ceil(std::clamp<std::size_t>(
      static_cast<std::size_t>(v), kMin, kMax));
}

ShmArena::ShmArena(std::size_t workers, std::size_t ringBytes)
    : workers_(workers), ringBytes_(std::bit_ceil(ringBytes)) {
  if (ringBytes_ < (std::size_t{1} << 12)) ringBytes_ = std::size_t{1} << 12;
  mapBytes_ = workers_ * workers_ * slotBytes();
  // A name collision is possible across processes; retry with a fresh
  // suffix rather than ever opening someone else's segment.
  int fd = -1;
  std::string name;
  for (unsigned attempt = 0; attempt < 64; ++attempt) {
    name = "/mpcspan-shm-" + std::to_string(::getpid()) + "-" +
           std::to_string(attempt);
    fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd >= 0) break;
    if (errno != EEXIST)
      throw ShardError(std::string("shm_open: ") + std::strerror(errno));
  }
  if (fd < 0) throw ShardError("shm_open: could not find a free name");
  if (::ftruncate(fd, static_cast<off_t>(mapBytes_)) != 0) {
    const int err = errno;
    ::shm_unlink(name.c_str());
    ::close(fd);
    throw ShardError(std::string("shm ftruncate: ") + std::strerror(err));
  }
  void* p = ::mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE, MAP_SHARED,
                   fd, 0);
  // Unlink before anything else can fail: the mapping (inherited by every
  // forked worker) keeps the memory alive, and /dev/shm never shows an
  // entry a crashed run could orphan.
  ::shm_unlink(name.c_str());
  ::close(fd);
  if (p == MAP_FAILED)
    throw ShardError(std::string("shm mmap: ") + std::strerror(errno));
  base_ = static_cast<std::uint8_t*>(p);
  // The mapping is zero-filled, which is exactly the initial cursor state.
}

ShmArena::~ShmArena() {
  if (base_ != nullptr) ::munmap(base_, mapBytes_);
}

RingHdr& ShmArena::hdr(std::size_t from, std::size_t to) const {
  return *reinterpret_cast<RingHdr*>(base_ +
                                     (from * workers_ + to) * slotBytes());
}

std::uint8_t* ShmArena::data(std::size_t from, std::size_t to) const {
  return base_ + (from * workers_ + to) * slotBytes() + sizeof(RingHdr);
}

void ShmArena::deferRelease(std::size_t from, std::size_t to,
                            std::uint64_t newConsumed) {
  pending_.push_back({from, to, newConsumed});
}

void ShmArena::releaseInbound() {
  for (const Pending& p : pending_)
    hdr(p.from, p.to).consumed.store(p.newConsumed, std::memory_order_release);
  pending_.clear();
}

ShmSendState beginShmSend(ShmArena& arena, std::size_t self,
                          const std::vector<std::uint64_t>& counts,
                          const std::vector<WireWriter>& sections,
                          std::vector<WireFd>& doorbells) {
  const std::size_t n = doorbells.size();
  const std::uint64_t cap = arena.ringBytes();
  ShmSendState st;
  st.outs.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (t == self || !doorbells[t].valid()) continue;
    ShmSendFrame& o = st.outs[t];
    o.h = &arena.hdr(self, t);
    o.d = arena.data(self, t);
    o.cap = cap;
    o.rowCount = counts[t];
    o.rows = sections[t].data();
    o.rowsLen = sections[t].size();
    o.bodyLen = sizeof(std::uint64_t) + o.rowsLen;
    o.contiguous = o.bodyLen <= cap - sizeof(std::uint64_t);
    o.savedProduced = o.h->produced.load(std::memory_order_relaxed);
    o.done = false;
    // Pre-write as much as the ring accepts right now, and wake the
    // receiver: with the fused barrier a faster peer may already be
    // parked in its exchange poll waiting for exactly this frame (its
    // own opportunistic pump ran before these bytes existed).
    if (pumpShmSend(o)) ringDoorbell(doorbells[t]);
  }
  return st;
}

void abortShmSend(ShmSendState& st) {
  for (ShmSendFrame& o : st.outs) {
    if (o.h == nullptr) continue;
    // Receivers only read their rings after the go byte, and an aborted
    // round never issues one — nothing we pre-wrote was observed, so a
    // plain cursor rewind erases the frame on every peer at once.
    o.h->produced.store(o.savedProduced, std::memory_order_release);
    o.done = true;
  }
  st.outs.clear();
}

std::vector<WireReader> finishShmExchange(ShmArena& arena,
                                          std::vector<WireFd>& doorbells,
                                          std::size_t self, ShmSendState& st) {
  const std::size_t n = doorbells.size();
  const std::uint64_t cap = arena.ringBytes();
  std::vector<ShmSendFrame>& outs = st.outs;
  std::vector<ShmIn> ins(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (t == self || !doorbells[t].valid()) continue;
    ins[t].ring = {&arena.hdr(t, self), arena.data(t, self), cap};
    ins[t].done = false;
  }

  // Opportunistic pass — in the steady state every ring-sized frame was
  // already placed by beginShmSend, so this pass completes the whole
  // exchange without ever touching the doorbells or poll.
  for (std::size_t t = 0; t < n; ++t) {
    if (t == self || !doorbells[t].valid()) continue;
    const bool sent = pumpShmSend(outs[t]);
    const bool got = pumpShmRecv(arena, t, self, ins[t]);
    if (sent || got) ringDoorbell(doorbells[t]);
  }

  // Bounded spin before blocking: under the fused barrier a missing frame
  // means its sender is at most one scheduling quantum behind, and a yield
  // is far cheaper than a sleep/wake cycle through the doorbell sockets.
  // The poll fallback below stays fully armed (senders always ring), so
  // exhausting the budget — e.g. against a dead peer — only defers the
  // same detection path.
  constexpr int kSpinYields = 64;
  for (int spin = 0; spin < kSpinYields; ++spin) {
    bool busy = false;
    for (std::size_t t = 0; t < n; ++t) {
      if (t == self || !doorbells[t].valid()) continue;
      if (outs[t].done && ins[t].done) continue;
      const bool sent = pumpShmSend(outs[t]);
      const bool got = pumpShmRecv(arena, t, self, ins[t]);
      if (sent || got) ringDoorbell(doorbells[t]);
      if (!outs[t].done || !ins[t].done) busy = true;
    }
    if (!busy) break;
    ::sched_yield();
  }

  std::vector<pollfd> pfds;
  std::vector<std::size_t> who;
  pfds.reserve(n);
  who.reserve(n);
  for (;;) {
    pfds.clear();
    who.clear();
    for (std::size_t t = 0; t < n; ++t) {
      if (t == self || !doorbells[t].valid()) continue;
      if (outs[t].done && ins[t].done) continue;
      pfds.push_back({doorbells[t].fd(), POLLIN, 0});
      who.push_back(t);
    }
    if (pfds.empty()) break;
    const int rc = ::poll(pfds.data(), pfds.size(), -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw ShardError(std::string("shm doorbell poll: ") +
                       std::strerror(errno));
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const std::size_t t = who[i];
      const short re = pfds[i].revents;
      if (re == 0) continue;
      if ((re & POLLNVAL) != 0) peerDied("invalid doorbell fd");
      const bool alive = drainDoorbell(doorbells[t]);
      // Pump both directions before reacting to death: a dead peer's last
      // ring bytes are still mapped and may complete the frame.
      const bool got = pumpShmRecv(arena, t, self, ins[t]);
      const bool sent = pumpShmSend(outs[t]);
      if ((sent || got) && alive) ringDoorbell(doorbells[t]);
      if (!alive && (!ins[t].done || !outs[t].done)) peerDied("peer closed");
    }
  }

  std::vector<WireReader> frames(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (t == self || !doorbells[t].valid()) continue;
    frames[t] = ins[t].contiguous
                    ? WireReader::view(ins[t].viewPtr, ins[t].bodyLen)
                    : WireReader::fromBytes(std::move(ins[t].heapBody));
  }
  return frames;
}

std::vector<WireReader> shmExchange(ShmArena& arena,
                                    std::vector<WireFd>& doorbells,
                                    std::size_t self,
                                    const std::vector<std::uint64_t>& counts,
                                    const std::vector<WireWriter>& sections) {
  ShmSendState st = beginShmSend(arena, self, counts, sections, doorbells);
  return finishShmExchange(arena, doorbells, self, st);
}

}  // namespace mpcspan::runtime::shard
