#include "runtime/shard/peer_mesh.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace mpcspan::runtime::shard {

void setNonBlocking(const WireFd& fd) {
  const int flags = ::fcntl(fd.fd(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.fd(), F_SETFL, flags | O_NONBLOCK) < 0)
    throw ShardError(std::string("peer mesh fcntl: ") + std::strerror(errno));
}

namespace {

[[noreturn]] void peerDied(const char* what) {
  throw ShardError(std::string("peer shard worker died mid-exchange (") +
                   what + ")");
}

/// Outgoing frame: a 16-byte header (frame length, row count) gathered with
/// the section's row bytes; one logical offset across both pieces.
struct PeerOut {
  std::uint64_t hdr[2] = {0, 0};
  const std::uint8_t* rows = nullptr;
  std::size_t rowsLen = 0;
  std::size_t off = 0;
  std::size_t total = 0;

  bool done() const { return off == total; }
};

/// Incoming frame: the 8-byte length prefix, then the body.
struct PeerIn {
  std::uint8_t lenBuf[8];
  std::size_t lenOff = 0;
  bool haveLen = false;
  std::vector<std::uint8_t> body;
  std::size_t bodyOff = 0;
  bool done = false;
};

/// Drains one peer's send state as far as the socket accepts (nonblocking).
void pumpSend(WireFd& fd, PeerOut& out) {
  while (!out.done()) {
    iovec iov[2];
    int cnt = 0;
    const auto* hp = reinterpret_cast<const std::uint8_t*>(out.hdr);
    if (out.off < sizeof(out.hdr))
      iov[cnt++] = {const_cast<std::uint8_t*>(hp + out.off),
                    sizeof(out.hdr) - out.off};
    const std::size_t bodyOff =
        out.off < sizeof(out.hdr) ? 0 : out.off - sizeof(out.hdr);
    if (bodyOff < out.rowsLen)
      iov[cnt++] = {const_cast<std::uint8_t*>(out.rows + bodyOff),
                    out.rowsLen - bodyOff};
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = cnt;
    const ssize_t w = ::sendmsg(fd.fd(), &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      peerDied(std::strerror(errno));
    }
    out.off += static_cast<std::size_t>(w);
  }
}

/// Drains one peer's receive state as far as the socket has bytes.
void pumpRecv(WireFd& fd, PeerIn& in) {
  while (!in.done) {
    std::uint8_t* dst;
    std::size_t want;
    if (!in.haveLen) {
      dst = in.lenBuf + in.lenOff;
      want = sizeof(in.lenBuf) - in.lenOff;
    } else {
      dst = in.body.data() + in.bodyOff;
      want = in.body.size() - in.bodyOff;
    }
    const ssize_t r = ::recv(fd.fd(), dst, want, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      peerDied(std::strerror(errno));
    }
    if (r == 0) peerDied("peer closed");
    if (!in.haveLen) {
      in.lenOff += static_cast<std::size_t>(r);
      if (in.lenOff == sizeof(in.lenBuf)) {
        std::uint64_t len;
        std::memcpy(&len, in.lenBuf, sizeof(len));
        // The body always starts with a u64 row count; anything shorter (or
        // beyond the frame cap) is a corrupt prefix, not a short frame.
        if (len < sizeof(std::uint64_t) || len > kMaxFrameBytes)
          throw ShardError("peer mesh frame: implausible length");
        in.body.resize(len);
        in.haveLen = true;
      }
    } else {
      in.bodyOff += static_cast<std::size_t>(r);
      if (in.bodyOff == in.body.size()) in.done = true;
    }
  }
}

}  // namespace

std::vector<std::vector<WireFd>> makeMesh(std::size_t count) {
  std::vector<std::vector<WireFd>> mesh(count);
  for (auto& row : mesh) row.resize(count);
  for (std::size_t a = 0; a < count; ++a)
    for (std::size_t b = a + 1; b < count; ++b) {
      makeSocketPair(mesh[a][b], mesh[b][a]);
      setNonBlocking(mesh[a][b]);
      setNonBlocking(mesh[b][a]);
    }
  return mesh;
}

std::vector<WireReader> meshExchange(std::vector<WireFd>& peers,
                                     std::size_t self,
                                     const std::vector<std::uint64_t>& counts,
                                     const std::vector<WireWriter>& sections,
                                     const DeadlineBudget* budget) {
  const std::size_t n = peers.size();
  std::vector<PeerOut> outs(n);
  std::vector<PeerIn> ins(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (t == self || !peers[t].valid()) {
      ins[t].done = true;
      continue;
    }
    outs[t].hdr[0] = sizeof(std::uint64_t) + sections[t].size();
    outs[t].hdr[1] = counts[t];
    outs[t].rows = sections[t].data();
    outs[t].rowsLen = sections[t].size();
    outs[t].total = sizeof(outs[t].hdr) + outs[t].rowsLen;
  }

  // Opportunistic first pass — small frames complete without ever polling.
  for (std::size_t t = 0; t < n; ++t) {
    if (t == self || !peers[t].valid()) continue;
    if (!outs[t].done()) pumpSend(peers[t], outs[t]);
    if (!ins[t].done) pumpRecv(peers[t], ins[t]);
  }

  std::vector<pollfd> pfds;
  std::vector<std::size_t> who;
  pfds.reserve(n);
  who.reserve(n);
  for (;;) {
    pfds.clear();
    who.clear();
    for (std::size_t t = 0; t < n; ++t) {
      if (t == self || !peers[t].valid()) continue;
      short events = 0;
      if (!outs[t].done()) events |= POLLOUT;
      if (!ins[t].done) events |= POLLIN;
      if (events == 0) continue;
      pfds.push_back({peers[t].fd(), events, 0});
      who.push_back(t);
    }
    if (pfds.empty()) break;
    // One budget across every wait of the exchange: remainingMs() shrinks
    // monotonically, so partial progress (a peer trickling bytes) cannot
    // stretch the round past the budget's total.
    const int waitMs = budget != nullptr ? budget->remainingMs() : -1;
    const int rc = ::poll(pfds.data(), pfds.size(), waitMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw ShardError(std::string("peer mesh poll: ") + std::strerror(errno));
    }
    if (rc == 0)
      throw ShardError("peer mesh exchange exceeded its round budget of " +
                       std::to_string(budget != nullptr ? budget->totalMs()
                                                        : waitMs) +
                       " ms (peer hung, trickling, or unreachable)");
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      const std::size_t t = who[i];
      const short re = pfds[i].revents;
      if (re == 0) continue;
      // Read before reacting to HUP/ERR: a dead peer's final bytes may
      // still be queued, and recv reports the true failure.
      if ((re & (POLLIN | POLLHUP | POLLERR)) && !ins[t].done)
        pumpRecv(peers[t], ins[t]);
      if ((re & (POLLOUT | POLLHUP | POLLERR)) && !outs[t].done())
        pumpSend(peers[t], outs[t]);
      if ((re & POLLNVAL) != 0) peerDied("invalid mesh fd");
    }
  }

  std::vector<WireReader> frames(n);
  for (std::size_t t = 0; t < n; ++t)
    if (t != self && peers[t].valid())
      frames[t] = WireReader::fromBytes(std::move(ins[t].body));
  return frames;
}

void mergeSectionRows(WireReader& r, std::uint64_t count, std::size_t srcLo,
                      std::size_t srcHi, std::size_t dstLo, std::size_t dstHi,
                      std::vector<std::vector<Message>>& projected,
                      Arena* arena) {
  // A row is at least three u64 headers; vet the count before any pass.
  if (count > r.remaining() / (3 * sizeof(std::uint64_t)))
    throw ShardError("shard wire frame: corrupt row count");
  const std::size_t mark = r.pos();
  std::vector<std::uint32_t> perSrc(srcHi - srcLo, 0);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t src = r.u64();
    const std::uint64_t dst = r.u64();
    const std::uint64_t len = r.u64();
    if (src < srcLo || src >= srcHi || dst < dstLo || dst >= dstHi)
      throw ShardError("shard wire frame: row out of range");
    if (len > r.remaining() / sizeof(Word))
      throw ShardError("shard wire frame: corrupt payload length");
    (void)r.raw(len * sizeof(Word));  // skip the payload; need() re-vets
    ++perSrc[src - srcLo];
  }
  r.seek(mark);
  for (std::size_t src = srcLo; src < srcHi; ++src)
    if (perSrc[src - srcLo] > 0)
      projected[src].reserve(projected[src].size() + perSrc[src - srcLo]);
  std::vector<Word> scratch;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t src = r.u64();
    const std::uint64_t dst = r.u64();
    const std::uint64_t len = r.u64();
    if (arena != nullptr && len > 1) {
      Word* run = arena->allocate(len);
      r.words(run, len);
      projected[src].push_back(
          {static_cast<std::size_t>(dst), Payload::borrowed(run, len)});
      continue;
    }
    scratch.resize(len);
    r.words(scratch.data(), len);
    projected[src].push_back(
        {static_cast<std::size_t>(dst), Payload(scratch.data(), len)});
  }
}

}  // namespace mpcspan::runtime::shard
