#include "runtime/shard/transport.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

namespace mpcspan::runtime::shard {

namespace {

void setBlockingMode(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(fd, F_SETFL,
              nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK)) < 0)
    throw ShardError(std::string("channel fcntl: ") + std::strerror(errno));
}

}  // namespace

Channel::Channel(WireFd fd, int deadlineMs)
    : fd_(std::move(fd)), deadlineMs_(deadlineMs), paced_(deadlineMs >= 0) {
  // Deadline channels pace nonblocking I/O with poll(); deadline-less ones
  // keep the fd blocking and reuse WireFd's paths untouched. Pacing is fixed
  // at construction — setDeadline(-1) on a paced channel means "poll without
  // expiry", not "go back to blocking I/O".
  if (fd_.valid() && paced_) setBlockingMode(fd_.fd(), true);
}

WireFd Channel::release() {
  if (fd_.valid() && paced_) setBlockingMode(fd_.fd(), false);
  paced_ = false;
  return std::move(fd_);
}

void Channel::awaitReady(short events) {
  pollfd pfd{fd_.fd(), events, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, deadlineMs_);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw ShardError(std::string("channel poll: ") + std::strerror(errno));
    }
    if (rc == 0)
      throw ShardError("tcp channel timed out after " +
                       std::to_string(deadlineMs_) +
                       " ms (peer hung or unreachable)");
    // POLLERR/POLLHUP fall through to the recv/send call, which reports the
    // specific error (EOF, ECONNRESET, EPIPE) with its usual message.
    return;
  }
}

void Channel::readAll(void* buf, std::size_t n) {
  if (!paced_) {
    fd_.readAll(buf, n);
    return;
  }
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t r = ::recv(fd_.fd(), p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        awaitReady(POLLIN);
        continue;
      }
      throw ShardError(std::string("shard wire read: ") + std::strerror(errno));
    }
    if (r == 0) throw ShardError("shard wire read: peer closed (worker died?)");
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

void Channel::writeAll(const void* buf, std::size_t n) {
  if (!paced_) {
    fd_.writeAll(buf, n);
    return;
  }
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t w = ::send(fd_.fd(), p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        awaitReady(POLLOUT);
        continue;
      }
      throw ShardError(std::string("shard wire write: ") +
                       std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void Channel::writeAll2(const void* hdr, std::size_t nHdr, const void* body,
                        std::size_t nBody) {
  if (!paced_) {
    fd_.writeAll2(hdr, nHdr, body, nBody);
    return;
  }
  const auto* hp = static_cast<const std::uint8_t*>(hdr);
  const auto* bp = static_cast<const std::uint8_t*>(body);
  while (nHdr + nBody > 0) {
    iovec iov[2];
    int cnt = 0;
    if (nHdr > 0) iov[cnt++] = {const_cast<std::uint8_t*>(hp), nHdr};
    if (nBody > 0) iov[cnt++] = {const_cast<std::uint8_t*>(bp), nBody};
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = cnt;
    const ssize_t w = ::sendmsg(fd_.fd(), &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        awaitReady(POLLOUT);
        continue;
      }
      throw ShardError(std::string("shard wire write: ") +
                       std::strerror(errno));
    }
    auto adv = static_cast<std::size_t>(w);
    const std::size_t fromHdr = std::min(adv, nHdr);
    hp += fromHdr;
    nHdr -= fromHdr;
    adv -= fromHdr;
    bp += adv;
    nBody -= adv;
  }
}

// The Channel overloads of the frame helpers live here, not in wire.cc, so
// the wire layer keeps zero knowledge of transports.

void WireWriter::sendFramed(Channel& ch) const {
  const std::uint64_t len = buf_.size();
  ch.writeAll2(&len, sizeof(len), buf_.data(), buf_.size());
}

WireReader WireReader::recvFramed(Channel& ch) {
  std::uint64_t len = 0;
  ch.readAll(&len, sizeof(len));
  if (len > kMaxFrameBytes)
    throw ShardError("shard wire frame: implausible length (corrupt prefix)");
  WireReader r;
  r.buf_.resize(len);
  if (len > 0) ch.readAll(r.buf_.data(), len);
  r.data_ = r.buf_.data();
  r.size_ = r.buf_.size();
  return r;
}

}  // namespace mpcspan::runtime::shard
