#include "runtime/shard/protocol.hpp"

#include <poll.h>
#include <sched.h>

#include <stdexcept>

#include "runtime/shard/transport.hpp"

namespace mpcspan::runtime::shard {

void rethrow(std::uint8_t kind, const std::string& msg) {
  switch (kind) {
    case kCapacityKind:
      throw CapacityError(msg);
    case kBoundsKind:
      throw std::invalid_argument(msg);
    case kRangeKind:
      throw std::out_of_range(msg);
    default:
      throw std::runtime_error(msg);
  }
}

std::uint8_t classify(std::string& err) {
  try {
    throw;
  } catch (const CapacityError& e) {
    err = e.what();
    return kCapacityKind;
  } catch (const std::invalid_argument& e) {
    err = e.what();
    return kBoundsKind;
  } catch (const std::out_of_range& e) {
    err = e.what();
    return kRangeKind;
  } catch (const std::exception& e) {
    err = e.what();
    return kOtherKind;
  }
}

void spinAwaitReadable(int fd, const DeadlineBudget* budget) {
  constexpr int kBarrierSpins = 128;
  for (int i = 0; i < kBarrierSpins; ++i) {
    if (budget != nullptr && budget->expired()) return;
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 0) > 0) return;
    ::sched_yield();
  }
}

void writeArgs(WireWriter& w, const std::vector<Word>& args) {
  w.u64(args.size());
  w.words(args.data(), args.size());
}

std::vector<Word> readArgs(WireReader& r) {
  const std::uint64_t argc = r.u64();
  if (argc > r.remaining() / sizeof(Word))
    throw ShardError("shard wire frame: corrupt arg count");
  std::vector<Word> args(argc);
  r.words(args.data(), argc);
  return args;
}

void writeRows(WireWriter& w, const std::vector<Message>& outbox) {
  w.u64(outbox.size());
  for (const Message& m : outbox)
    w.idRow(m.dst, m.payload.data(), m.payload.size());
}

std::vector<std::vector<Ref>> indexByDst(
    const std::vector<std::vector<Message>>& projected, std::size_t lo,
    std::size_t hi, bool priorityWrite) {
  std::vector<std::vector<Ref>> byDst(hi - lo);
  for (std::size_t src = 0; src < projected.size(); ++src) {
    const auto& outbox = projected[src];
    for (std::size_t pos = 0; pos < outbox.size(); ++pos) {
      const std::size_t d = outbox[pos].dst;
      if (d < lo || d >= hi) continue;
      auto& refs = byDst[d - lo];
      if (priorityWrite && !refs.empty()) continue;
      refs.push_back(
          {static_cast<std::uint32_t>(src), static_cast<std::uint32_t>(pos)});
    }
  }
  return byDst;
}

}  // namespace mpcspan::runtime::shard
