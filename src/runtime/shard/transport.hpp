// The transport seam of the shard layer: a Channel is one end of a
// coordinator<->worker or worker<->worker stream, whatever created the fd.
//
// Two implementations share the class:
//   - fd-pair:  pre-fork AF_UNIX socketpairs (and the shm transport's
//     doorbell sockets). No deadline — both ends are children of the same
//     process, so peer death always surfaces as an EOF/EPIPE cascade.
//   - tcp:      fds produced by the tcp_transport.hpp rendezvous. A real
//     network can stall without ever delivering EOF (half-open peers,
//     black-holed routes), so these channels carry a poll deadline: every
//     blocking read/write first waits for readiness at most deadlineMs and
//     throws ShardError on expiry instead of hanging the round.
//
// With no deadline set, Channel delegates straight to WireFd — the fd stays
// blocking and the fast paths (gathered writes, full-buffer reads) are
// byte-for-byte the pre-transport behavior. With a deadline, the fd is
// switched to nonblocking I/O paced by poll(). The deadline is per blocking
// wait, not per frame: progress resets the clock, silence expires it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "runtime/shard/wire.hpp"
#include "util/deadline.hpp"

namespace mpcspan::runtime::shard {

/// One shared wall-clock budget for every communication wait of a round.
///
/// The Channel deadline below is *per blocking wait*: progress resets the
/// clock. That is the right contract for a single stream (a peer making
/// progress is alive), but wrong for a round barrier composed of many
/// waits — a peer trickling one byte per poll interval would reset the
/// clock forever and extend the round unbounded past MPCSPAN_TCP_TIMEOUT_MS.
/// The budget fixes the expiry instant once; trickling spends it instead of
/// refreshing it. The class itself now lives in util/deadline.hpp (the
/// serving daemon paces per-request deadlines with the same type); this
/// alias keeps the shard layer's historical spelling working.
using DeadlineBudget = ::mpcspan::util::DeadlineBudget;

class Channel {
 public:
  Channel() = default;
  explicit Channel(WireFd fd, int deadlineMs = -1);

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.fd(); }
  void reset() { fd_.reset(); }

  /// Deadline (ms) applied to each blocking wait; < 0 means wait forever.
  /// Mutable because one channel alternates between round I/O (bounded) and
  /// the worker's idle top-of-loop command read (unbounded — an idle engine
  /// may legitimately not speak for minutes; SO_KEEPALIVE covers a peer
  /// that died silently in the meantime). A channel constructed without a
  /// deadline stays a pure WireFd delegate; one constructed *with* a
  /// deadline keeps its poll-paced nonblocking I/O even while the deadline
  /// is temporarily -1 (infinite poll, same semantics).
  void setDeadline(int deadlineMs) { deadlineMs_ = deadlineMs; }
  int deadline() const { return deadlineMs_; }

  /// Full-buffer I/O with the same ShardError contract as WireFd; honors
  /// the deadline when one is set.
  void readAll(void* buf, std::size_t n);
  void writeAll(const void* buf, std::size_t n);
  void writeAll2(const void* hdr, std::size_t nHdr, const void* body,
                 std::size_t nBody);

  /// Surrenders the owned fd (restored to blocking mode) — used by the
  /// rendezvous, which handshakes through a deadline Channel and then hands
  /// the raw fd to the peer mesh.
  WireFd release();

 private:
  /// Waits for `events` (POLLIN/POLLOUT) within the deadline; throws
  /// ShardError("tcp channel timed out...") on expiry.
  void awaitReady(short events);

  WireFd fd_;
  int deadlineMs_ = -1;
  bool paced_ = false;  // fd is nonblocking, I/O runs through awaitReady
};

}  // namespace mpcspan::runtime::shard
