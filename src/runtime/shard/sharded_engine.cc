#include "runtime/shard/sharded_engine.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/thread_pool.hpp"

namespace mpcspan::runtime::shard {

namespace {

// Error kinds carried in a worker's phase-1 / result headers. The exception
// type cannot cross the process boundary, so it travels as a tag and is
// re-thrown coordinator-side.
constexpr std::uint8_t kOk = 0;
constexpr std::uint8_t kCapacityError = 1;
constexpr std::uint8_t kBoundsError = 2;
constexpr std::uint8_t kOtherError = 3;

struct Worker {
  pid_t pid = -1;
  WireFd fd;  // coordinator end of the socketpair
};

/// Forks one worker per shard; `body(s, fd)` runs in the child, which then
/// exits without unwinding (no destructors, no atexit — the child shares
/// the parent's stdio buffers and thread-owning objects by fork).
std::vector<Worker> forkWorkers(
    std::size_t shards, const std::function<void(std::size_t, WireFd&)>& body) {
  std::vector<WireFd> parentEnds(shards);
  std::vector<WireFd> childEnds(shards);
  for (std::size_t s = 0; s < shards; ++s)
    makeSocketPair(parentEnds[s], childEnds[s]);

  std::vector<Worker> workers(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Abort the round: close our ends (children see EOF and exit) and
      // reap what was already forked.
      for (std::size_t j = 0; j < s; ++j) {
        workers[j].fd.reset();
        int st = 0;
        ::waitpid(workers[j].pid, &st, 0);
      }
      throw ShardError("ShardedEngine: fork failed");
    }
    if (pid == 0) {
      // Worker: keep only this shard's child end. All pairs were created
      // before the first fork, so every sibling end is inherited and must
      // be dropped for EOF detection to work.
      for (std::size_t j = 0; j < shards; ++j) {
        parentEnds[j].reset();
        if (j != s) childEnds[j].reset();
      }
      try {
        body(s, childEnds[s]);
      } catch (...) {
        // Broken socket mid-protocol (coordinator died). Nothing to do.
        std::_Exit(3);
      }
      std::_Exit(0);
    }
    workers[s].pid = pid;
    workers[s].fd = std::move(parentEnds[s]);
  }
  // Coordinator: drop the child ends so a worker's death is visible as EOF.
  for (std::size_t s = 0; s < shards; ++s) childEnds[s].reset();
  return workers;
}

/// Reaps every worker. Closing the coordinator ends first unblocks any
/// worker still waiting on the barrier byte (it reads EOF and exits).
void reapWorkers(std::vector<Worker>& workers, bool& anyCrashed) {
  for (Worker& w : workers) w.fd.reset();
  for (Worker& w : workers) {
    if (w.pid < 0) continue;
    int st = 0;
    ::waitpid(w.pid, &st, 0);
    if (!WIFEXITED(st) || WEXITSTATUS(st) != 0) anyCrashed = true;
    w.pid = -1;
  }
}

[[noreturn]] void rethrow(std::uint8_t kind, const std::string& msg) {
  switch (kind) {
    case kCapacityError:
      throw CapacityError(msg);
    case kBoundsError:
      throw std::invalid_argument(msg);
    default:
      throw std::runtime_error(msg);
  }
}

}  // namespace

ShardedEngine::ShardedEngine(std::size_t numMachines, std::size_t shards,
                             std::size_t threadsPerShard,
                             const Topology* topology)
    : numMachines_(numMachines),
      shards_(shards),
      threadsPerShard_(threadsPerShard == 0 ? 1 : threadsPerShard),
      topology_(topology) {
  if (numMachines_ == 0)
    throw std::invalid_argument("ShardedEngine: numMachines must be positive");
  if (shards_ < 2 || shards_ > numMachines_)
    throw std::invalid_argument(
        "ShardedEngine: shards must be in [2, numMachines]");
  if (!topology_) throw std::invalid_argument("ShardedEngine: null topology");
}

std::size_t ShardedEngine::shardBegin(std::size_t s) const {
  // Same balanced contiguous split as ThreadPool's lane slices.
  const std::size_t base = numMachines_ / shards_;
  const std::size_t extra = numMachines_ % shards_;
  return s * base + std::min(s, extra);
}

std::size_t ShardedEngine::defaultShards() {
  if (const char* env = std::getenv("MPCSPAN_SHARDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return 1;
}

std::vector<std::vector<Delivery>> ShardedEngine::exchange(
    const std::vector<std::vector<Message>>& outboxes,
    std::size_t& roundWords) {
  const std::size_t n = numMachines_;
  const bool priorityWrite = topology_->mode() == Topology::Mode::kPriorityWrite;

  std::vector<Worker> workers = forkWorkers(shards_, [&](std::size_t s,
                                                         WireFd& fd) {
    const std::size_t lo = shardBegin(s), hi = shardEnd(s);

    // --- Phase 1: validate locally (bounds + this range's topology
    // constraints), report {ok, words sent by my sources} or the error.
    std::uint8_t kind = kOk;
    std::string err;
    std::uint64_t words = 0;
    try {
      for (std::size_t src = lo; src < hi; ++src)
        for (const Message& msg : outboxes[src])
          if (msg.dst >= n)
            throw std::invalid_argument(
                "RoundEngine: message to unknown machine");
      words = topology_->validateSlice(n, outboxes, lo, hi);
    } catch (const CapacityError& e) {
      kind = kCapacityError;
      err = e.what();
    } catch (const std::invalid_argument& e) {
      kind = kBoundsError;
      err = e.what();
    } catch (const std::exception& e) {
      kind = kOtherError;
      err = e.what();
    }
    {
      WireWriter report;
      report.u8(kind);
      if (kind == kOk)
        report.u64(words);
      else
        report.str(err);
      report.sendFramed(fd);
    }
    if (kind != kOk) return;  // the coordinator aborts the round

    // --- Barrier: the round commits only once every shard validated. A 0
    // byte means another shard failed validation — exit cleanly; only a
    // torn socket (coordinator death) surfaces as an abnormal exit.
    std::uint8_t go = 0;
    fd.readAll(&go, 1);
    if (go == 0) return;

    // --- Phase 2: materialize this shard's destination range. The index
    // pass scans sources in ascending (src, position) order, which *is* the
    // delivery order — the merge is deterministic by construction.
    const std::size_t local = hi - lo;
    struct Ref {
      std::uint32_t src;
      std::uint32_t pos;
    };
    std::vector<std::vector<Ref>> byDst(local);
    for (std::size_t src = 0; src < n; ++src) {
      const auto& outbox = outboxes[src];
      for (std::size_t pos = 0; pos < outbox.size(); ++pos) {
        const std::size_t d = outbox[pos].dst;
        if (d >= lo && d < hi)
          byDst[d - lo].push_back({static_cast<std::uint32_t>(src),
                                   static_cast<std::uint32_t>(pos)});
      }
    }
    // Serialize each destination's deliveries on the shard's local pool
    // (disjoint fragments), then concatenate in destination order.
    std::vector<WireWriter> fragments(local);
    ThreadPool pool(threadsPerShard_);
    pool.parallelFor(local, [&](std::size_t i) {
      const auto& refs = byDst[i];
      const std::size_t take =
          priorityWrite && !refs.empty() ? 1 : refs.size();
      WireWriter& w = fragments[i];
      w.u64(take);
      for (std::size_t r = 0; r < take; ++r) {
        const Payload& p = outboxes[refs[r].src][refs[r].pos].payload;
        w.u64(refs[r].src);
        w.u64(p.size());
        w.words(p.data(), p.size());
      }
    });
    WireWriter body;
    for (const WireWriter& f : fragments) body.append(f);
    body.sendFramed(fd);
  });

  // --- Coordinator, phase 1: collect every report before releasing anyone.
  struct Report {
    std::uint8_t kind = kOk;
    std::uint64_t words = 0;
    std::string err;
  };
  std::vector<Report> reports(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    try {
      WireReader r = WireReader::recvFramed(workers[s].fd);
      reports[s].kind = r.u8();
      if (reports[s].kind == kOk)
        reports[s].words = r.u64();
      else
        reports[s].err = r.str();
    } catch (const ShardError& e) {
      reports[s].kind = kOtherError;
      reports[s].err = e.what();
    }
  }
  for (std::size_t s = 0; s < shards_; ++s) {
    if (reports[s].kind == kOk) continue;
    // Abort: release the barrier with a 0 byte so healthy workers exit
    // cleanly (best effort — a dead worker's socket just errors), then reap
    // and surface the lowest failed shard's error.
    for (std::size_t j = 0; j < shards_; ++j) {
      const std::uint8_t stop = 0;
      try {
        workers[j].fd.writeAll(&stop, 1);
      } catch (const ShardError&) {
      }
    }
    bool crashed = false;
    reapWorkers(workers, crashed);
    rethrow(reports[s].kind, reports[s].err);
  }

  // --- Barrier release.
  for (std::size_t s = 0; s < shards_; ++s) {
    const std::uint8_t go = 1;
    try {
      workers[s].fd.writeAll(&go, 1);
    } catch (const ShardError& e) {
      bool crashed = false;
      reapWorkers(workers, crashed);
      throw ShardError(std::string("shard ") + std::to_string(s) +
                       " died at the barrier: " + e.what());
    }
  }

  // --- Coordinator, phase 2: merge fragments in shard (= destination) order.
  std::vector<std::vector<Delivery>> inbox(n);
  std::vector<Word> scratch;
  for (std::size_t s = 0; s < shards_; ++s) {
    WireReader r = [&] {
      try {
        return WireReader::recvFramed(workers[s].fd);
      } catch (const ShardError& e) {
        bool crashed = false;
        reapWorkers(workers, crashed);
        throw ShardError(std::string("shard ") + std::to_string(s) +
                         " died in delivery: " + e.what());
      }
    }();
    for (std::size_t d = shardBegin(s); d < shardEnd(s); ++d) {
      const std::uint64_t count = r.u64();
      inbox[d].reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t src = r.u64();
        const std::uint64_t len = r.u64();
        scratch.resize(len);
        r.words(scratch.data(), len);
        inbox[d].push_back(
            {static_cast<std::size_t>(src), Payload(scratch.data(), len)});
      }
    }
  }

  bool crashed = false;
  reapWorkers(workers, crashed);
  if (crashed) throw ShardError("a shard worker exited abnormally");

  roundWords = 0;
  for (const Report& rep : reports) roundWords += rep.words;
  return inbox;
}

std::vector<std::vector<Message>> ShardedEngine::computeOutboxes(
    const StepFn& fn, const std::vector<std::vector<Delivery>>& inboxes) {
  const std::size_t n = numMachines_;

  std::vector<Worker> workers =
      forkWorkers(shards_, [&](std::size_t s, WireFd& fd) {
        const std::size_t lo = shardBegin(s), hi = shardEnd(s);
        const std::size_t local = hi - lo;
        std::uint8_t kind = kOk;
        std::string err;
        std::vector<std::vector<Message>> out(local);
        try {
          ThreadPool pool(threadsPerShard_);
          pool.parallelFor(local, [&](std::size_t i) {
            out[i] = fn(lo + i, inboxes[lo + i]);
          });
        } catch (const CapacityError& e) {
          kind = kCapacityError;
          err = e.what();
        } catch (const std::exception& e) {
          kind = kOtherError;
          err = e.what();
        }
        WireWriter body;
        body.u8(kind);
        if (kind != kOk) {
          body.str(err);
        } else {
          for (const auto& outbox : out) {
            body.u64(outbox.size());
            for (const Message& m : outbox) {
              body.u64(m.dst);
              body.u64(m.payload.size());
              body.words(m.payload.data(), m.payload.size());
            }
          }
        }
        body.sendFramed(fd);
      });

  std::vector<std::vector<Message>> outboxes(n);
  std::uint8_t failKind = kOk;
  std::string failErr;
  std::vector<Word> scratch;
  for (std::size_t s = 0; s < shards_; ++s) {
    WireReader r = [&]() -> WireReader {
      try {
        return WireReader::recvFramed(workers[s].fd);
      } catch (const ShardError& e) {
        if (failKind == kOk) {
          failKind = kOtherError;
          failErr = std::string("shard ") + std::to_string(s) +
                    " died in step: " + e.what();
        }
        return WireReader();
      }
    }();
    if (failKind != kOk) continue;  // keep draining frames, keep first error
    const std::uint8_t kind = r.u8();
    if (kind != kOk) {
      failKind = kind;
      failErr = r.str();
      continue;
    }
    for (std::size_t m = shardBegin(s); m < shardEnd(s); ++m) {
      const std::uint64_t count = r.u64();
      outboxes[m].reserve(count);
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t dst = r.u64();
        const std::uint64_t len = r.u64();
        scratch.resize(len);
        r.words(scratch.data(), len);
        outboxes[m].push_back(
            {static_cast<std::size_t>(dst), Payload(scratch.data(), len)});
      }
    }
  }

  bool crashed = false;
  reapWorkers(workers, crashed);
  if (failKind != kOk) rethrow(failKind, failErr);
  if (crashed) throw ShardError("a shard worker exited abnormally");
  return outboxes;
}

}  // namespace mpcspan::runtime::shard
