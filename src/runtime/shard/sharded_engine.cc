#include "runtime/shard/sharded_engine.hpp"

#include <poll.h>
#include <sched.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/shard/peer_mesh.hpp"
#include "runtime/shard/shm_ring.hpp"
#include "runtime/thread_pool.hpp"

namespace mpcspan::runtime::shard {

namespace {

// Error kinds carried in a worker's report headers. The exception type
// cannot cross the process boundary, so it travels as a tag and is re-thrown
// coordinator-side.
constexpr std::uint8_t kOk = 0;
constexpr std::uint8_t kCapacityKind = 1;
constexpr std::uint8_t kBoundsKind = 2;
constexpr std::uint8_t kOtherKind = 3;
constexpr std::uint8_t kRangeKind = 4;

// Control-frame opcodes of the resident worker protocol (first byte of
// every coordinator -> worker frame).
constexpr std::uint8_t kOpExchange = 1;
constexpr std::uint8_t kOpStep = 2;
constexpr std::uint8_t kOpLocal = 3;
constexpr std::uint8_t kOpFetchKernel = 4;
constexpr std::uint8_t kOpRegisterKernel = 5;
constexpr std::uint8_t kOpStoreBlocks = 6;
constexpr std::uint8_t kOpFetchBlocks = 7;
constexpr std::uint8_t kOpFreeBlocks = 8;
constexpr std::uint8_t kOpFetchInboxes = 9;
constexpr std::uint8_t kOpShutdown = 10;

// Barrier verdicts (1-byte frame bodies). Only kGo commits; any other value
// (including a stray opcode) reads as abort, so a desynced stream can never
// be mistaken for a commit.
constexpr std::uint8_t kAbort = 0;
constexpr std::uint8_t kGo = 1;

struct Proc {
  pid_t pid = -1;
  WireFd fd;  // coordinator end of the socketpair
};

/// Forks one process per index; `body(i, fd)` runs in the child, which then
/// exits without unwinding (no destructors, no atexit — the child shares
/// the parent's stdio buffers and thread-owning objects by fork).
std::vector<Proc> forkProcs(
    std::size_t count, const std::function<void(std::size_t, WireFd&)>& body) {
  std::vector<WireFd> parentEnds(count);
  std::vector<WireFd> childEnds(count);
  for (std::size_t s = 0; s < count; ++s)
    makeSocketPair(parentEnds[s], childEnds[s]);

  std::vector<Proc> procs(count);
  for (std::size_t s = 0; s < count; ++s) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Abort: close our ends (children see EOF and exit) and reap what was
      // already forked.
      for (std::size_t j = 0; j < s; ++j) {
        procs[j].fd.reset();
        int st = 0;
        while (::waitpid(procs[j].pid, &st, 0) < 0 && errno == EINTR) {
        }
      }
      throw ShardError("ShardedEngine: fork failed");
    }
    if (pid == 0) {
      // Worker: keep only this shard's child end. All pairs were created
      // before the first fork, so every sibling end is inherited and must
      // be dropped for EOF detection to work.
      for (std::size_t j = 0; j < count; ++j) {
        parentEnds[j].reset();
        if (j != s) childEnds[j].reset();
      }
      try {
        body(s, childEnds[s]);
      } catch (...) {
        // Wire failure mid-protocol or an unhandled internal error. Exit
        // abnormally; the coordinator reads it as a crash.
        std::_Exit(3);
      }
      std::_Exit(0);
    }
    procs[s].pid = pid;
    procs[s].fd = std::move(parentEnds[s]);
  }
  // Coordinator: drop the child ends so a worker's death is visible as EOF.
  for (std::size_t s = 0; s < count; ++s) childEnds[s].reset();
  return procs;
}

/// Reaps every worker of a {pid, fd} collection (the per-round fork waves
/// and the resident workers share this). Closing the coordinator ends first
/// unblocks any worker still waiting on a frame (it reads EOF and exits).
/// Crash detection relies on waitpid seeing each child's exit status, so
/// the host process must not disown its children (SIGCHLD set to SIG_IGN
/// or SA_NOCLDWAIT): auto-reaped workers read as crashes (ECHILD), which
/// is loud rather than wrong, but makes every sharded round throw.
template <class W>
void reapAll(std::vector<W>& procs, bool& anyCrashed) {
  for (W& p : procs) p.fd.reset();
  for (W& p : procs) {
    if (p.pid < 0) continue;
    int st = 0;
    pid_t r;
    do {
      r = ::waitpid(p.pid, &st, 0);
    } while (r < 0 && errno == EINTR);
    // A wait failure (ECHILD etc.) means the exit status is unknowable —
    // treat it as a crash rather than reading st == 0 as a clean exit.
    if (r < 0 || !WIFEXITED(st) || WEXITSTATUS(st) != 0) anyCrashed = true;
    p.pid = -1;
  }
}

/// Parses one shard's per-machine section of a frame into rows[m] for m in
/// [lo, hi): a u64 count, then (u64 id, u64 len, len words) per row. Row is
/// Message (id = dst) or Delivery (id = src). Wire-supplied sizes are vetted
/// against the frame's remaining bytes before sizing any container, so a
/// corrupt frame throws ShardError, never bad_alloc.
template <class Row>
void parseRows(WireReader& r, std::size_t lo, std::size_t hi,
               std::vector<std::vector<Row>>& rows) {
  std::vector<Word> scratch;
  for (std::size_t m = lo; m < hi; ++m) {
    const std::uint64_t count = r.u64();
    // A row is at least two u64s.
    if (count > r.remaining() / (2 * sizeof(std::uint64_t)))
      throw ShardError("shard wire frame: corrupt row count");
    rows[m].reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t id = r.u64();
      const std::uint64_t len = r.u64();
      if (len > r.remaining() / sizeof(Word))
        throw ShardError("shard wire frame: corrupt payload length");
      scratch.resize(len);
      r.words(scratch.data(), len);
      rows[m].push_back(
          {static_cast<std::size_t>(id), Payload(scratch.data(), len)});
    }
  }
}

/// Serializes one machine's section in the parseRows format.
void writeRows(WireWriter& w, const std::vector<Message>& outbox) {
  w.u64(outbox.size());
  for (const Message& m : outbox)
    w.idRow(m.dst, m.payload.data(), m.payload.size());
}

[[noreturn]] void rethrow(std::uint8_t kind, const std::string& msg) {
  switch (kind) {
    case kCapacityKind:
      throw CapacityError(msg);
    case kBoundsKind:
      throw std::invalid_argument(msg);
    case kRangeKind:
      throw std::out_of_range(msg);
    default:
      throw std::runtime_error(msg);
  }
}

/// Classifies an in-flight exception for the wire (the inverse of rethrow).
std::uint8_t classify(std::string& err) {
  try {
    throw;
  } catch (const CapacityError& e) {
    err = e.what();
    return kCapacityKind;
  } catch (const std::invalid_argument& e) {
    err = e.what();
    return kBoundsKind;
  } catch (const std::out_of_range& e) {
    err = e.what();
    return kRangeKind;
  } catch (const std::exception& e) {
    err = e.what();
    return kOtherKind;
  }
}

/// Briefly spin-polls a wire for readability before the caller blocks on
/// it. The fused shm barrier turns a round into pure hand-offs (reports
/// up, one verdict byte down); letting each side stay runnable while the
/// other finishes converts those hand-offs into cheap runqueue rotations
/// instead of sleep/wake cycles — a woken sleeper preempts its waker, so
/// blocking doubles the context switches per round. Bounded: an idle
/// engine still parks in the normal blocking read.
void spinAwaitReadable(int fd) {
  constexpr int kBarrierSpins = 128;
  for (int i = 0; i < kBarrierSpins; ++i) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 0) > 0) return;
    ::sched_yield();
  }
}

void writeReport(WireFd& fd, std::uint8_t kind, const std::string& err,
                 std::uint64_t words = 0) {
  WireWriter w;
  w.u8(kind);
  if (kind == kOk)
    w.u64(words);
  else
    w.str(err);
  w.sendFramed(fd);
}

void writeArgs(WireWriter& w, const std::vector<Word>& args) {
  w.u64(args.size());
  w.words(args.data(), args.size());
}

std::vector<Word> readArgs(WireReader& r) {
  const std::uint64_t argc = r.u64();
  if (argc > r.remaining() / sizeof(Word))
    throw ShardError("shard wire frame: corrupt arg count");
  std::vector<Word> args(argc);
  r.words(args.data(), argc);
  return args;
}

/// Reference to one message of a projected round view, in global delivery
/// order (source id, send position).
struct Ref {
  std::uint32_t src;
  std::uint32_t pos;
};

/// Index pass over a projected view: per local destination d in [lo, hi),
/// the refs of its deliveries in (src, pos) order — which *is* the
/// in-process delivery order, because projection preserves each source's
/// send-position order and the scan walks sources ascending. Under
/// priority-write only the first ref per destination is kept.
std::vector<std::vector<Ref>> indexByDst(
    const std::vector<std::vector<Message>>& projected, std::size_t lo,
    std::size_t hi, bool priorityWrite) {
  std::vector<std::vector<Ref>> byDst(hi - lo);
  for (std::size_t src = 0; src < projected.size(); ++src) {
    const auto& outbox = projected[src];
    for (std::size_t pos = 0; pos < outbox.size(); ++pos) {
      const std::size_t d = outbox[pos].dst;
      if (d < lo || d >= hi) continue;
      auto& refs = byDst[d - lo];
      if (priorityWrite && !refs.empty()) continue;
      refs.push_back(
          {static_cast<std::uint32_t>(src), static_cast<std::uint32_t>(pos)});
    }
  }
  return byDst;
}

}  // namespace

ShardedEngine::ShardedEngine(std::size_t numMachines, std::size_t shards,
                             std::size_t threadsPerShard,
                             const Topology* topology, bool resident,
                             const std::vector<KernelRegistration>* kernels,
                             BlockStore* blocks,
                             const std::vector<std::vector<Delivery>>* inboxes,
                             Transport transport)
    : numMachines_(numMachines),
      shards_(shards),
      threadsPerShard_(threadsPerShard == 0 ? 1 : threadsPerShard),
      topology_(topology),
      resident_(resident),
      transport_(transport == Transport::kDefault
                     ? (defaultShmExchange() ? Transport::kShmRing
                                             : Transport::kSocketMesh)
                     : transport),
      kernels_(kernels),
      blocks_(blocks),
      inboxes_(inboxes) {
  if (numMachines_ == 0)
    throw std::invalid_argument("ShardedEngine: numMachines must be positive");
  if (shards_ < 2 || shards_ > numMachines_)
    throw std::invalid_argument(
        "ShardedEngine: shards must be in [2, numMachines]");
  if (!topology_) throw std::invalid_argument("ShardedEngine: null topology");
}

ShardedEngine::~ShardedEngine() { shutdownWorkers(); }

std::size_t ShardedEngine::shardBegin(std::size_t s) const {
  // Same balanced contiguous split as ThreadPool's lane slices.
  const std::size_t base = numMachines_ / shards_;
  const std::size_t extra = numMachines_ % shards_;
  return s * base + std::min(s, extra);
}

std::size_t ShardedEngine::shardOf(std::size_t machine) const {
  // Inverse of shardBegin: the first `extra` shards own base + 1 machines.
  const std::size_t base = numMachines_ / shards_;
  const std::size_t extra = numMachines_ % shards_;
  const std::size_t split = extra * (base + 1);
  return machine < split ? machine / (base + 1)
                         : extra + (machine - split) / base;
}

std::size_t ShardedEngine::defaultShards() {
  if (const char* env = std::getenv("MPCSPAN_SHARDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return 1;
}

bool ShardedEngine::defaultResident() {
  if (const char* env = std::getenv("MPCSPAN_RESIDENT"))
    return std::strtol(env, nullptr, 10) != 0;
  return true;
}

bool ShardedEngine::defaultPeerExchange() {
  if (const char* env = std::getenv("MPCSPAN_PEER_EXCHANGE"))
    return std::strtol(env, nullptr, 10) != 0;
  return true;
}

bool ShardedEngine::defaultShmExchange() {
  if (const char* env = std::getenv("MPCSPAN_SHM_EXCHANGE"))
    return std::strtol(env, nullptr, 10) != 0;
  return true;
}

std::vector<pid_t> ShardedEngine::workerPids() const {
  std::vector<pid_t> pids;
  pids.reserve(workers_.size());
  for (const Worker& w : workers_) pids.push_back(w.pid);
  return pids;
}

void ShardedEngine::requireResident(const char* op) const {
  if (!resident_)
    throw std::logic_error(
        std::string(op) +
        " requires the resident shard backend (MPCSPAN_RESIDENT=1 / "
        "EngineConfig::resident)");
}

void ShardedEngine::start() {
  if (failed_)
    throw ShardError(
        "ShardedEngine: shard backend is down (a worker died earlier)");
  if (started()) return;
  // The peer mesh must exist before the first fork so every worker can
  // inherit its row; worker s keeps row s and drops every other row's fds
  // (both ends of foreign pairs), so a dead peer reads as EOF, never as a
  // silently-held open socket. The coordinator closes the whole matrix when
  // this frame unwinds — it never touches a mesh byte.
  std::vector<std::vector<WireFd>> mesh;
  if (resident_ && transport_ != Transport::kRelay) {
    mesh = makeMesh(shards_);
    if (transport_ == Transport::kShmRing) {
      // The shared arena must also exist before the first fork (every
      // worker inherits the one mapping); the mesh then only carries
      // doorbell bytes. A host that cannot map POSIX shm (no /dev/shm)
      // falls back to the socket mesh rather than failing the run.
      try {
        shmArena_ = std::make_unique<ShmArena>(shards_);
      } catch (const ShardError&) {
        transport_ = Transport::kSocketMesh;
      }
    }
  }
  std::vector<Proc> procs =
      forkProcs(shards_, [this, &mesh](std::size_t s, WireFd& fd) {
        std::vector<WireFd> peers;
        if (!mesh.empty()) {
          for (std::size_t j = 0; j < shards_; ++j)
            if (j != s)
              for (WireFd& end : mesh[j]) end.reset();
          peers = std::move(mesh[s]);
        }
        workerMain(s, fd, peers);
      });
  workers_.resize(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    workers_[s].pid = procs[s].pid;
    workers_[s].fd = std::move(procs[s].fd);
  }
  // The snapshot just adopted every block; drop the coordinator copies so a
  // later fetch can never read a stale one.
  if (blocks_) blocks_->clear();
}

void ShardedEngine::shutdownWorkers() noexcept {
  if (workers_.empty()) return;
  // Best-effort polite SHUTDOWN (only meaningful when the workers sit at the
  // command loop; a failed backend skips straight to the close below — a
  // mid-round worker must never parse SHUTDOWN as a barrier verdict).
  if (!failed_) {
    for (Worker& w : workers_) {
      if (!w.fd.valid()) continue;
      try {
        WireWriter bye;
        bye.u8(kOpShutdown);
        bye.sendFramed(w.fd);
      } catch (...) {
      }
    }
  }
  // Closing the fds unblocks any worker still reading (EOF -> clean exit);
  // crash status is deliberately ignored here — either the failure already
  // surfaced as ShardError, or this is a destructor.
  bool crashed = false;
  reapAll(workers_, crashed);
  workers_.clear();
}

void ShardedEngine::fail(const std::string& what) {
  failed_ = true;
  shutdownWorkers();
  throw ShardError(what);
}

template <typename Fn>
auto ShardedEngine::guarded(Fn&& io) -> decltype(io()) {
  try {
    return io();
  } catch (const ShardError& e) {
    fail(e.what());
  }
}

// ---------------------------------------------------------------------------
// Resident worker (child process).
// ---------------------------------------------------------------------------

void ShardedEngine::workerMain(std::size_t s, WireFd& fd,
                               std::vector<WireFd>& peers) {
  const std::size_t n = numMachines_;
  const std::size_t lo = shardBegin(s), hi = shardEnd(s);
  const std::size_t local = hi - lo;
  const bool priorityWrite =
      topology_->mode() == Topology::Mode::kPriorityWrite;
  const bool peerMode = transport_ != Transport::kRelay && !peers.empty();
  const bool shmMode =
      peerMode && transport_ == Transport::kShmRing && shmArena_ != nullptr;
  // Test-only fault injection: the named shard exits abnormally right after
  // the phase-A go, i.e. mid peer exchange from every peer's point of view.
  // Exercised by test_peer_exchange; never set outside tests.
  long dieShard = -1;
  if (const char* env = std::getenv("MPCSPAN_TEST_PEER_DIE_SHARD"))
    dieShard = std::strtol(env, nullptr, 10);

  // Worker-owned state, alive across rounds. The kernel table, block store,
  // and closure-step inboxes registered before the fork arrive with the
  // snapshot; everything later comes over the wire.
  ThreadPool pool(threadsPerShard_);
  std::vector<KernelRegistration> kernels =
      kernels_ ? *kernels_ : std::vector<KernelRegistration>{};
  std::vector<std::unique_ptr<StepKernel>> instances(kernels.size());
  BlockStore store(n);
  if (blocks_) {
    for (const std::uint64_t h : blocks_->handles()) {
      store.create(h);
      for (std::size_t m = lo; m < hi; ++m)
        store.block(h, m) = blocks_->block(h, m);
    }
  }
  std::vector<std::vector<Delivery>> inboxes(local);
  if (inboxes_ && inboxes_->size() == n)
    for (std::size_t i = 0; i < local; ++i) inboxes[i] = (*inboxes_)[lo + i];

  // Double-buffered delivery arenas: the merged cross-shard payloads of
  // round N live (Payload::borrowed) in deliveryArena[curArena] while the
  // resident inboxes reference them; round N + 1 merges into the *other*
  // arena after resetting it, so round N - 1's runs are freed wholesale
  // with no per-payload bookkeeping. Own-shard messages (kernel-produced)
  // stay heap/inline — only inbound rows are arena-backed. An aborted
  // round never flips, so its half-filled arena is simply reset again.
  Arena deliveryArena[2];
  std::size_t curArena = 0;

  auto ensureInstance = [&](std::uint64_t id) -> StepKernel& {
    if (id >= kernels.size())
      throw std::runtime_error("ShardedEngine: unknown kernel id in worker");
    if (!instances[id]) {
      const KernelRegistration& reg = kernels[id];
      KernelFactory factory = reg.factory;
      if (!factory) {
        const KernelFactory* global = findGlobalKernel(reg.name);
        if (!global)
          throw std::runtime_error(
              "kernel '" + reg.name +
              "' is not resolvable in the worker process: register it before "
              "the engine's first round, or globally (GlobalKernelRegistrar) "
              "so the fork inherits it");
        factory = *global;
      }
      instances[id] = factory();
      if (!instances[id])
        throw std::runtime_error("kernel '" + reg.name +
                                 "': factory returned null");
    }
    return *instances[id];
  };

  // Installs the committed deliveries of a projected round view into the
  // resident inboxes, in (src, pos) order.
  auto installDeliveries =
      [&](const std::vector<std::vector<Ref>>& byDst,
          std::vector<std::vector<Message>>& projected) {
        std::vector<std::vector<Delivery>> next(local);
        pool.parallelFor(local, [&](std::size_t i) {
          const auto& refs = byDst[i];
          next[i].reserve(refs.size());
          for (const Ref& ref : refs)
            next[i].push_back(
                {ref.src, std::move(projected[ref.src][ref.pos].payload)});
        });
        inboxes = std::move(next);
      };

  try {
    for (;;) {
      if (shmMode) spinAwaitReadable(fd.fd());
      WireReader cmd = WireReader::recvFramed(fd);  // EOF -> ShardError below
      const std::uint8_t op = cmd.u8();
      switch (op) {
        case kOpShutdown:
          return;

        case kOpRegisterKernel: {
          const std::uint64_t id = cmd.u64();
          const std::string name = cmd.str();
          std::uint8_t kind = kOk;
          std::string err;
          try {
            if (id != kernels.size())
              throw std::runtime_error(
                  "ShardedEngine: kernel id out of order in worker");
            // Append-only, even on failure: another worker may have
            // resolved this id, so removing the slot would desync the id
            // tables. A failed slot is inert — the coordinator tombstones
            // the name, so no step can ever reference it.
            kernels.push_back({name, KernelFactory{}});
            instances.emplace_back();
            ensureInstance(id);  // construct eagerly: fail at registration
          } catch (...) {
            kind = classify(err);
          }
          writeReport(fd, kind, err);
          break;
        }

        case kOpStep: {
          const std::uint64_t kid = cmd.u64();
          // Data-placement shuffles reuse the whole STEP barrier; the flag
          // only disables validation and the priority-write drop (free
          // movement is deliver-all and never charged).
          const bool freePlacement = cmd.u8() != 0;
          const std::vector<Word> args = readArgs(cmd);

          // Phase A: run the kernel over this shard's machines, keep the
          // messages, and bucket every cross-shard one straight into its
          // destination shard's section in one pass over the outboxes
          // (rows land in (src asc, send-position asc) order because the
          // scan walks machines ascending). This is the local validation
          // gate: a kernel throw or a rogue destination is reported before
          // any section leaves the worker.
          std::uint8_t kind = kOk;
          std::string err;
          std::uint64_t words = 0;
          std::vector<std::vector<Message>> own(local);
          std::vector<WireWriter> sections(shards_);
          std::vector<std::uint64_t> counts(shards_, 0);
          // Shm fused barrier: the report also carries this worker's
          // contribution to every machine's inbound words, so the
          // coordinator can run the receiver-side validation without a
          // second barrier.
          const bool wantSums =
              shmMode && !freePlacement && topology_->needsInboundSums();
          std::vector<std::uint64_t> recvWords(wantSums ? n : 0, 0);
          try {
            StepKernel& ker = ensureInstance(kid);
            pool.parallelFor(local, [&](std::size_t i) {
              own[i] = ker.step(
                  KernelCtx{lo + i, n, inboxes[i], args, store});
            });
            for (std::size_t i = 0; i < local; ++i)
              for (const Message& msg : own[i]) {
                if (msg.dst >= n)
                  throw std::invalid_argument(
                      "RoundEngine: message to unknown machine");
                if (wantSums) recvWords[msg.dst] += msg.payload.size();
                if (msg.dst >= lo && msg.dst < hi) continue;
                const std::size_t t = shardOf(msg.dst);
                sections[t].row(lo + i, msg.dst, msg.payload.data(),
                                msg.payload.size());
                ++counts[t];
              }
            // Shm mode validates sources here, pre-exchange: `own` is the
            // complete outbox set for [lo, hi), which is all the
            // source-side half needs. The receive-side half runs at the
            // coordinator over the summed report columns.
            if (shmMode && !freePlacement)
              words = topology_->validateSources(n, own, lo);
          } catch (...) {
            kind = classify(err);
            sections.assign(shards_, WireWriter());
            counts.assign(shards_, 0);
          }
          if (shmMode) {
            // Fused single barrier (shm ring only). Sections are
            // pre-written into the rings and validation is already split
            // around the report (sources here, inbound sums at the
            // coordinator), so ONE report and ONE verdict byte cover the
            // whole round: by the time the commit verdict arrives, every
            // peer has pre-written its frames — reports precede the
            // verdict, pre-writes precede the reports — and the
            // post-verdict drain completes without ever blocking. An
            // abort drains and discards, never touching resident state —
            // the two-phase guarantee at half the barrier waves.
            if (dieShard == static_cast<long>(s)) std::_Exit(4);
            ShmSendState shmSend =
                beginShmSend(*shmArena_, s, counts, sections, peers);
            {
              WireWriter r;
              r.u8(kind);
              if (kind == kOk) {
                r.u64(words);
                for (const std::uint64_t w : recvWords) r.u64(w);
              } else {
                r.str(err);
              }
              r.sendFramed(fd);
            }
            spinAwaitReadable(fd.fd());
            WireReader v = WireReader::recvFramed(fd);
            const bool commit = kind == kOk && v.u8() == kGo;
            // Drain every peer frame on commit AND abort — the rings must
            // be empty again before the next round's pre-write. A
            // ShardError (peer death, garbled ring) exits the worker so
            // the coordinator sees EOF and fails with it.
            std::vector<WireReader> frames =
                finishShmExchange(*shmArena_, peers, s, shmSend);
            if (commit) {
              std::vector<std::vector<Message>> projected(n);
              for (std::size_t i = 0; i < local; ++i)
                projected[lo + i] = std::move(own[i]);
              Arena& mergeArena = deliveryArena[1 - curArena];
              mergeArena.reset();
              try {
                for (std::size_t t = 0; t < shards_; ++t) {
                  if (t == s) continue;
                  const std::uint64_t count = frames[t].u64();
                  mergeSectionRows(frames[t], count, shardBegin(t),
                                   shardEnd(t), lo, hi, projected,
                                   &mergeArena);
                }
              } catch (const ShardError&) {
                throw;
              } catch (const std::exception& e) {
                // The round is already committed; a garbled frame here can
                // only be transport corruption, so fail the backend.
                throw ShardError(std::string("shm post-commit merge: ") +
                                 e.what());
              }
              // The merge copied every inbound row out of the rings (ring
              // bytes -> arena runs, the one copy on the whole path).
              shmArena_->releaseInbound();
              installDeliveries(
                  indexByDst(projected, lo, hi,
                             priorityWrite && !freePlacement),
                  projected);
              curArena = 1 - curArena;
            } else {
              shmArena_->releaseInbound();
            }
            break;
          }

          if (peerMode) {
            // Peer exchange: the report is the whole phase-A upload — the
            // sections wait for the go byte and then travel the mesh.
            writeReport(fd, kind, err);
          } else {
            // Coordinator relay: sections ride the report, per peer shard t
            // (ascending, skipping self): row count, raw byte length, rows.
            // The byte length lets the coordinator re-scatter without
            // walking rows.
            WireWriter a;
            a.u8(kind);
            if (kind != kOk) {
              a.str(err);
            } else {
              for (std::size_t t = 0; t < shards_; ++t) {
                if (t == s) continue;
                a.u64(counts[t]);
                a.u64(sections[t].size());
                a.append(sections[t]);
              }
            }
            a.sendFramed(fd);
          }

          // Barrier: wait for the coordinator's verdict even after a local
          // error (lockstep). Abort means no peer byte ever moved.
          WireReader b = WireReader::recvFramed(fd);
          if (kind != kOk || b.u8() != kGo) break;  // round aborted

          if (peerMode && dieShard == static_cast<long>(s)) std::_Exit(4);

          // Phase B: assemble the projected round view — own sources
          // complete, inbound rows for everyone else, merged in ascending
          // source-shard order — validate this machine range, report, and
          // await the commit verdict.
          std::vector<std::vector<Message>> projected(n);
          for (std::size_t i = 0; i < local; ++i)
            projected[lo + i] = std::move(own[i]);
          Arena& mergeArena = deliveryArena[1 - curArena];
          mergeArena.reset();
          try {
            if (peerMode) {
              std::vector<WireReader> frames =
                  meshExchange(peers, s, counts, sections);
              for (std::size_t t = 0; t < shards_; ++t) {
                if (t == s) continue;
                const std::uint64_t count = frames[t].u64();
                mergeSectionRows(frames[t], count, shardBegin(t), shardEnd(t),
                                 lo, hi, projected, &mergeArena);
              }
            } else {
              for (std::size_t t = 0; t < shards_; ++t) {
                if (t == s) continue;
                const std::uint64_t count = b.u64();
                (void)b.u64();  // byte length (coordinator-side convenience)
                mergeSectionRows(b, count, shardBegin(t), shardEnd(t), lo, hi,
                                 projected, &mergeArena);
              }
            }
            if (!freePlacement)
              words = topology_->validateSlice(n, projected, lo, hi);
          } catch (const ShardError&) {
            throw;  // wire/mesh corruption or peer death: exit, the
                    // coordinator sees EOF and fails the round for all
          } catch (...) {
            kind = classify(err);
          }
          writeReport(fd, kind, err, words);

          WireReader c = WireReader::recvFramed(fd);
          if (kind != kOk || c.u8() != kGo) break;  // round aborted;
                                                    // received peer bytes
                                                    // are discarded unread

          // Commit: install the deliveries into the resident inboxes. The
          // arena flip keeps this round's borrowed payloads alive until
          // the round after next resets their buffer.
          installDeliveries(
              indexByDst(projected, lo, hi, priorityWrite && !freePlacement),
              projected);
          curArena = 1 - curArena;
          break;
        }

        case kOpExchange: {
          const bool updateResident = cmd.u8() != 0;
          // The whole projected view arrives in one frame: own sources'
          // outboxes (destinations already bounds-checked by the
          // coordinator) plus inbound cross-shard rows.
          std::vector<std::vector<Message>> projected(n);
          std::uint8_t kind = kOk;
          std::string err;
          std::uint64_t words = 0;
          Arena& mergeArena = deliveryArena[1 - curArena];
          mergeArena.reset();
          try {
            parseRows<Message>(cmd, lo, hi, projected);
            // Inbound cross-shard rows: the section header's per-source
            // counts pre-reserve the projected rows, so a source fanning
            // many messages into this range never reallocates per delivery.
            const std::uint64_t count = cmd.u64();
            mergeSectionRows(cmd, count, 0, n, lo, hi, projected, &mergeArena);
            words = topology_->validateSlice(n, projected, lo, hi);
          } catch (const ShardError&) {
            throw;
          } catch (...) {
            kind = classify(err);
          }
          writeReport(fd, kind, err, words);

          WireReader b = WireReader::recvFramed(fd);
          if (kind != kOk || b.u8() != kGo) break;  // round aborted

          // Commit: materialize this destination range, ship it back, and
          // (for step-driven rounds) keep it resident too.
          const std::vector<std::vector<Ref>> byDst =
              indexByDst(projected, lo, hi, priorityWrite);
          std::vector<WireWriter> fragments(local);
          pool.parallelFor(local, [&](std::size_t i) {
            WireWriter& w = fragments[i];
            w.u64(byDst[i].size());
            for (const Ref& ref : byDst[i]) {
              const Payload& p = projected[ref.src][ref.pos].payload;
              w.idRow(ref.src, p.data(), p.size());
            }
          });
          WireWriter body;
          for (const WireWriter& f : fragments) body.append(f);
          body.sendFramed(fd);
          if (updateResident) {
            installDeliveries(byDst, projected);
            curArena = 1 - curArena;
          }
          break;
        }

        case kOpLocal: {
          const std::uint64_t kid = cmd.u64();
          const std::vector<Word> args = readArgs(cmd);
          std::uint8_t kind = kOk;
          std::string err;
          try {
            StepKernel& ker = ensureInstance(kid);
            pool.parallelFor(local, [&](std::size_t i) {
              ker.local(KernelCtx{lo + i, n, inboxes[i], args, store});
            });
          } catch (...) {
            kind = classify(err);
          }
          writeReport(fd, kind, err);
          break;
        }

        case kOpFetchKernel: {
          const std::uint64_t kid = cmd.u64();
          const std::vector<Word> args = readArgs(cmd);
          std::uint8_t kind = kOk;
          std::string err;
          std::vector<std::vector<Word>> out(local);
          try {
            StepKernel& ker = ensureInstance(kid);
            pool.parallelFor(local, [&](std::size_t i) {
              out[i] = ker.fetch(KernelCtx{lo + i, n, inboxes[i], args, store});
            });
          } catch (...) {
            kind = classify(err);
          }
          WireWriter w;
          w.u8(kind);
          if (kind != kOk) {
            w.str(err);
          } else {
            for (const std::vector<Word>& block : out) {
              w.u64(block.size());
              w.words(block.data(), block.size());
            }
          }
          w.sendFramed(fd);
          break;
        }

        case kOpStoreBlocks: {
          const std::uint64_t handle = cmd.u64();
          std::uint8_t kind = kOk;
          std::string err;
          try {
            store.create(handle);
            for (std::size_t m = lo; m < hi; ++m) {
              const std::uint64_t len = cmd.u64();
              if (len > cmd.remaining() / sizeof(Word))
                throw ShardError("shard wire frame: corrupt block length");
              WordBuf& block = store.block(handle, m);
              block.resize(len);
              cmd.words(block.data(), len);
            }
          } catch (const ShardError&) {
            throw;
          } catch (...) {
            kind = classify(err);
          }
          writeReport(fd, kind, err);
          break;
        }

        case kOpFetchBlocks: {
          const std::uint64_t handle = cmd.u64();
          std::uint8_t kind = kOk;
          std::string err;
          WireWriter w;
          try {
            WireWriter rows;
            for (std::size_t m = lo; m < hi; ++m) {
              const WordBuf& block = store.block(handle, m);
              rows.u64(block.size());
              rows.words(block.data(), block.size());
            }
            w.u8(kOk);
            w.append(rows);
          } catch (...) {
            kind = classify(err);
            w = WireWriter();
            w.u8(kind);
            w.str(err);
          }
          w.sendFramed(fd);
          break;
        }

        case kOpFreeBlocks: {
          const std::uint64_t handle = cmd.u64();
          store.erase(handle);
          writeReport(fd, kOk, std::string());
          break;
        }

        case kOpFetchInboxes: {
          WireWriter w;
          for (const std::vector<Delivery>& inbox : inboxes) {
            w.u64(inbox.size());
            for (const Delivery& d : inbox) {
              w.u64(d.src);
              w.u64(d.payload.size());
              w.words(d.payload.data(), d.payload.size());
            }
          }
          w.sendFramed(fd);
          break;
        }

        default:
          throw std::runtime_error(
              "ShardedEngine: unknown opcode in worker (protocol bug)");
      }
    }
  } catch (const ShardError&) {
    // Coordinator closed the wire (engine destroyed or died) — clean exit.
    return;
  }
}

// ---------------------------------------------------------------------------
// Coordinator side.
// ---------------------------------------------------------------------------

namespace {

/// One worker's {kind, words | error} report.
struct Report {
  std::uint8_t kind = kOk;
  std::uint64_t words = 0;
  std::string err;
};

Report readReport(WireFd& fd) {
  WireReader r = WireReader::recvFramed(fd);
  Report rep;
  rep.kind = r.u8();
  if (rep.kind == kOk)
    rep.words = r.u64();
  else
    rep.err = r.str();
  return rep;
}

/// Collects one report per worker, in shard order.
template <class W>
std::vector<Report> collectReports(std::vector<W>& workers) {
  std::vector<Report> reports(workers.size());
  for (std::size_t s = 0; s < workers.size(); ++s)
    reports[s] = readReport(workers[s].fd);
  return reports;
}

/// The shared tail of every coordinator barrier: broadcasts the one-byte
/// go/abort verdict derived from the reports to every worker, and on abort
/// rethrows the lowest failed shard's error.
template <class W>
void broadcastVerdict(std::vector<W>& workers,
                      const std::vector<Report>& reports) {
  std::size_t firstErr = reports.size();
  for (std::size_t s = 0; s < reports.size(); ++s)
    if (reports[s].kind != kOk) {
      firstErr = s;
      break;
    }
  const std::uint8_t verdict = firstErr == reports.size() ? kGo : kAbort;
  for (W& w : workers) {
    WireWriter f;
    f.u8(verdict);
    f.sendFramed(w.fd);
  }
  if (verdict == kAbort)
    rethrow(reports[firstErr].kind, reports[firstErr].err);
}

}  // namespace

void ShardedEngine::registerKernel(std::size_t id, const std::string& name) {
  requireResident("registerKernel");
  if (!started()) return;  // the fork snapshot will carry the table
  guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpRegisterKernel);
      f.u64(id);
      f.str(name);
      f.sendFramed(w.fd);
    }
    std::uint8_t kind = kOk;
    std::string err;
    for (Worker& w : workers_) {
      const Report rep = readReport(w.fd);
      if (rep.kind != kOk && kind == kOk) {
        kind = rep.kind;
        err = rep.err;
      }
    }
    if (kind != kOk) rethrow(kind, err);
  });
}

void ShardedEngine::stepKernel(std::size_t id, const std::vector<Word>& args,
                               std::size_t& roundWords, bool freePlacement) {
  requireResident("step(KernelId)");
  start();
  guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpStep);
      f.u64(id);
      f.u8(freePlacement ? 1 : 0);
      writeArgs(f, args);
      f.sendFramed(w.fd);
    }

    if (transport_ == Transport::kShmRing && shmArena_ != nullptr) {
      // Shm ring: fused single barrier. Workers validate their own
      // sources at phase A and pre-write their sections into the rings;
      // each report carries the source verdict plus (for topologies with
      // inbound budgets) this worker's per-destination word sums. The
      // coordinator totals the sums, runs the receiver-side validation,
      // and broadcasts the one commit/abort byte — two scheduling waves
      // per round instead of four, and no worker ever waits on a frame
      // mid-round: every pre-write precedes its report, so all frames
      // exist before the verdict does.
      const bool wantSums = !freePlacement && topology_->needsInboundSums();
      std::vector<std::uint64_t> received(wantSums ? numMachines_ : 0, 0);
      std::vector<Report> reports(shards_);
      for (std::size_t s = 0; s < shards_; ++s) {
        spinAwaitReadable(workers_[s].fd.fd());
        WireReader r = WireReader::recvFramed(workers_[s].fd);
        reports[s].kind = r.u8();
        if (reports[s].kind == kOk) {
          reports[s].words = r.u64();
          if (wantSums)
            for (std::size_t m = 0; m < numMachines_; ++m)
              received[m] += r.u64();
        } else {
          reports[s].err = r.str();
        }
      }
      std::size_t firstErr = reports.size();
      for (std::size_t s = 0; s < reports.size(); ++s)
        if (reports[s].kind != kOk) {
          firstErr = s;
          break;
        }
      std::uint8_t inKind = kOk;
      std::string inErr;
      if (firstErr == reports.size() && wantSums) {
        try {
          topology_->validateInbound(numMachines_, received);
        } catch (...) {
          inKind = classify(inErr);
        }
      }
      const bool ok = firstErr == reports.size() && inKind == kOk;
      for (Worker& w : workers_) {
        WireWriter f;
        f.u8(ok ? kGo : kAbort);
        f.sendFramed(w.fd);
      }
      if (!ok) {
        if (firstErr != reports.size())
          rethrow(reports[firstErr].kind, reports[firstErr].err);
        rethrow(inKind, inErr);
      }
      roundWords = 0;
      for (const Report& rep : reports) roundWords += rep.words;
      return;
    }

    if (transport_ != Transport::kRelay) {
      // Peer exchange: the coordinator is a pure barrier arbiter. Phase A
      // reports carry only verdicts — one abort byte kills the round for
      // all before any peer byte moves; on go the workers exchange their
      // sections over the mesh and report validation, and the coordinator
      // broadcasts the one-byte commit/abort. Per-round coordinator
      // traffic is O(shards) regardless of the payload volume.
      broadcastVerdict(workers_, collectReports(workers_));

      // Validation barrier (the workers are mid-mesh-exchange), then commit.
      const std::vector<Report> reports = collectReports(workers_);
      broadcastVerdict(workers_, reports);

      roundWords = 0;
      for (const Report& rep : reports) roundWords += rep.words;
      return;
    }

    // Coordinator relay (MPCSPAN_PEER_EXCHANGE=0, the equivalence
    // reference). Phase A barrier: collect every compute report. The ok
    // ones carry the cross-shard sections (s -> t) as raw byte slices,
    // which are appended straight into the per-target phase-B frames as
    // they are parsed — replies arrive in ascending origin order, which is
    // exactly the section order the workers expect, so no intermediate
    // copy is needed.
    std::vector<Report> reports(shards_);
    std::vector<WireWriter> scatter(shards_);
    for (WireWriter& f : scatter) f.u8(kGo);
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = WireReader::recvFramed(workers_[s].fd);
      reports[s].kind = r.u8();
      if (reports[s].kind != kOk) {
        reports[s].err = r.str();
        continue;
      }
      for (std::size_t t = 0; t < shards_; ++t) {
        if (t == s) continue;
        const std::uint64_t count = r.u64();
        const std::uint64_t byteLen = r.u64();
        WireWriter& f = scatter[t];
        f.u64(count);
        f.u64(byteLen);
        f.bytes(r.raw(byteLen), byteLen);
      }
    }
    std::size_t firstErr = shards_;
    for (std::size_t s = 0; s < shards_; ++s)
      if (reports[s].kind != kOk) {
        firstErr = s;
        break;
      }
    if (firstErr != shards_) {
      for (Worker& w : workers_) {
        WireWriter f;
        f.u8(kAbort);
        f.sendFramed(w.fd);
      }
      rethrow(reports[firstErr].kind, reports[firstErr].err);
    }

    // Phase B: scatter each worker its inbound sections (origin order).
    for (std::size_t t = 0; t < shards_; ++t) scatter[t].sendFramed(workers_[t].fd);

    // Validation barrier, then commit.
    reports = collectReports(workers_);
    broadcastVerdict(workers_, reports);

    roundWords = 0;
    for (const Report& rep : reports) roundWords += rep.words;
  });
}

void ShardedEngine::localKernel(std::size_t id, const std::vector<Word>& args) {
  requireResident("stepLocal(KernelId)");
  start();
  guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpLocal);
      f.u64(id);
      writeArgs(f, args);
      f.sendFramed(w.fd);
    }
    std::uint8_t kind = kOk;
    std::string err;
    for (Worker& w : workers_) {
      const Report rep = readReport(w.fd);
      if (rep.kind != kOk && kind == kOk) {
        kind = rep.kind;
        err = rep.err;
      }
    }
    if (kind != kOk) rethrow(kind, err);
  });
}

std::vector<std::vector<Word>> ShardedEngine::fetchKernel(
    std::size_t id, const std::vector<Word>& args) {
  requireResident("fetchKernel");
  start();
  return guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpFetchKernel);
      f.u64(id);
      writeArgs(f, args);
      f.sendFramed(w.fd);
    }
    std::vector<std::vector<Word>> out(numMachines_);
    std::uint8_t kind = kOk;
    std::string err;
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = WireReader::recvFramed(workers_[s].fd);
      const std::uint8_t k = r.u8();
      if (k != kOk) {
        if (kind == kOk) {
          kind = k;
          err = r.str();
        }
        continue;
      }
      for (std::size_t m = shardBegin(s); m < shardEnd(s); ++m) {
        const std::uint64_t len = r.u64();
        if (len > r.remaining() / sizeof(Word))
          throw ShardError("shard wire frame: corrupt block length");
        out[m].resize(len);
        r.words(out[m].data(), len);
      }
    }
    if (kind != kOk) rethrow(kind, err);
    return out;
  });
}

void ShardedEngine::storeBlocks(std::uint64_t handle,
                                std::vector<std::vector<Word>> perMachine) {
  requireResident("createBlocks");
  start();
  guarded([&] {
    for (std::size_t s = 0; s < shards_; ++s) {
      WireWriter f;
      f.u8(kOpStoreBlocks);
      f.u64(handle);
      for (std::size_t m = shardBegin(s); m < shardEnd(s); ++m) {
        f.u64(perMachine[m].size());
        f.words(perMachine[m].data(), perMachine[m].size());
      }
      f.sendFramed(workers_[s].fd);
    }
    std::uint8_t kind = kOk;
    std::string err;
    for (Worker& w : workers_) {
      const Report rep = readReport(w.fd);
      if (rep.kind != kOk && kind == kOk) {
        kind = rep.kind;
        err = rep.err;
      }
    }
    if (kind != kOk) rethrow(kind, err);
  });
}

std::vector<std::vector<Word>> ShardedEngine::fetchBlocks(
    std::uint64_t handle) {
  requireResident("readBlocks");
  start();
  return guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpFetchBlocks);
      f.u64(handle);
      f.sendFramed(w.fd);
    }
    std::vector<std::vector<Word>> out(numMachines_);
    std::uint8_t kind = kOk;
    std::string err;
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = WireReader::recvFramed(workers_[s].fd);
      const std::uint8_t k = r.u8();
      if (k != kOk) {
        if (kind == kOk) {
          kind = k;
          err = r.str();
        }
        continue;
      }
      for (std::size_t m = shardBegin(s); m < shardEnd(s); ++m) {
        const std::uint64_t len = r.u64();
        if (len > r.remaining() / sizeof(Word))
          throw ShardError("shard wire frame: corrupt block length");
        out[m].resize(len);
        r.words(out[m].data(), len);
      }
    }
    if (kind != kOk) rethrow(kind, err);
    return out;
  });
}

void ShardedEngine::freeBlocks(std::uint64_t handle) {
  requireResident("freeBlocks");
  start();
  guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpFreeBlocks);
      f.u64(handle);
      f.sendFramed(w.fd);
    }
    for (Worker& w : workers_) (void)readReport(w.fd);
  });
}

std::vector<std::vector<Delivery>> ShardedEngine::fetchInboxes() {
  requireResident("fetchInboxes");
  start();
  return guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpFetchInboxes);
      f.sendFramed(w.fd);
    }
    std::vector<std::vector<Delivery>> out(numMachines_);
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = WireReader::recvFramed(workers_[s].fd);
      parseRows<Delivery>(r, shardBegin(s), shardEnd(s), out);
    }
    return out;
  });
}

std::vector<std::vector<Delivery>> ShardedEngine::exchange(
    const std::vector<std::vector<Message>>& outboxes, std::size_t& roundWords,
    bool updateResident) {
  return resident_ ? exchangeResident(outboxes, roundWords, updateResident)
                   : exchangeForked(outboxes, roundWords);
}

std::vector<std::vector<Delivery>> ShardedEngine::exchangeResident(
    const std::vector<std::vector<Message>>& outboxes, std::size_t& roundWords,
    bool updateResident) {
  const std::size_t n = numMachines_;

  // Bounds-check and bucket the cross-shard messages in one scan, appending
  // each row straight into its destination shard's section instead of
  // collecting refs and re-walking outboxes[src][pos] per message. Nothing
  // has been sent when a rogue destination throws std::invalid_argument, so
  // the engine (and the workers) stay untouched, exactly like in-process.
  std::vector<WireWriter> cross(shards_);
  std::vector<std::uint64_t> crossCount(shards_, 0);
  std::vector<std::size_t> ownBytes(shards_, 0);  // each shard's writeRows span
  for (std::size_t src = 0; src < n; ++src) {
    const std::size_t home = shardOf(src);
    for (const Message& msg : outboxes[src]) {
      if (msg.dst >= n)
        throw std::invalid_argument("RoundEngine: message to unknown machine");
      ownBytes[home] += 2 * sizeof(std::uint64_t) + sizeof(Word) * msg.payload.size();
      const std::size_t t = shardOf(msg.dst);
      if (t == home) continue;
      cross[t].row(src, msg.dst, msg.payload.data(), msg.payload.size());
      ++crossCount[t];
    }
  }

  start();
  return guarded([&] {
    for (std::size_t s = 0; s < shards_; ++s) {
      WireWriter f;
      // Exact frame size: op + flag bytes, a count word per own machine,
      // the own-outbox rows, the cross count word, the cross section.
      f.reserve(2 + 8 * (shardEnd(s) - shardBegin(s)) + ownBytes[s] + 8 +
                cross[s].size());
      f.u8(kOpExchange);
      f.u8(updateResident ? 1 : 0);
      for (std::size_t m = shardBegin(s); m < shardEnd(s); ++m)
        writeRows(f, outboxes[m]);
      f.u64(crossCount[s]);
      f.append(cross[s]);
      f.sendFramed(workers_[s].fd);
    }

    // Validation barrier: every slice must pass before anyone commits; one
    // failed shard aborts the round for all, and the workers stay alive.
    const std::vector<Report> reports = collectReports(workers_);
    broadcastVerdict(workers_, reports);

    // Commit: merge the delivery fragments in shard (= destination) order.
    std::vector<std::vector<Delivery>> inbox(n);
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = WireReader::recvFramed(workers_[s].fd);
      parseRows<Delivery>(r, shardBegin(s), shardEnd(s), inbox);
    }
    roundWords = 0;
    for (const Report& rep : reports) roundWords += rep.words;
    return inbox;
  });
}

// ---------------------------------------------------------------------------
// Legacy fork-per-round dispatch (resident == false) and the closure-step
// compute wave. The wave is fork-per-round even on the resident backend:
// RoundEngine::step's closure and its captures exist only in the
// coordinator's address space — the resident workers forked before the
// closure did — so a copy-on-write snapshot is the only way the closure can
// read captured state without marshalling.
// ---------------------------------------------------------------------------

std::vector<std::vector<Delivery>> ShardedEngine::exchangeForked(
    const std::vector<std::vector<Message>>& outboxes,
    std::size_t& roundWords) {
  const std::size_t n = numMachines_;
  const bool priorityWrite =
      topology_->mode() == Topology::Mode::kPriorityWrite;

  std::vector<Proc> procs = forkProcs(shards_, [&](std::size_t s,
                                                   WireFd& fd) {
    const std::size_t lo = shardBegin(s), hi = shardEnd(s);

    // --- Phase 1: validate locally (bounds + this range's topology
    // constraints), report {ok, words sent by my sources} or the error.
    // The bounds scan covers this shard's own sources; the union over all
    // shards covers every message, and a validateSlice that scans sources
    // outside [lo, hi) checks msg.dst itself (the topology.hpp contract),
    // so a rogue destination can never index anything out of bounds.
    std::uint8_t kind = kOk;
    std::string err;
    std::uint64_t words = 0;
    try {
      for (std::size_t src = lo; src < hi; ++src)
        for (const Message& msg : outboxes[src])
          if (msg.dst >= n)
            throw std::invalid_argument(
                "RoundEngine: message to unknown machine");
      words = topology_->validateSlice(n, outboxes, lo, hi);
    } catch (...) {
      kind = classify(err);
    }
    writeReport(fd, kind, err, words);
    if (kind != kOk) return;  // the coordinator aborts the round

    // --- Barrier: the round commits only once every shard validated. A 0
    // byte means another shard failed validation — exit cleanly; only a
    // torn socket (coordinator death) surfaces as an abnormal exit.
    std::uint8_t go = 0;
    fd.readAll(&go, 1);
    if (go == 0) return;

    // --- Phase 2: materialize this shard's destination range. The index
    // pass scans sources in ascending (src, position) order, which *is* the
    // delivery order — the merge is deterministic by construction.
    const std::size_t local = hi - lo;
    const std::vector<std::vector<Ref>> byDst =
        indexByDst(outboxes, lo, hi, priorityWrite);
    std::vector<WireWriter> fragments(local);
    ThreadPool pool(threadsPerShard_);
    pool.parallelFor(local, [&](std::size_t i) {
      WireWriter& w = fragments[i];
      w.u64(byDst[i].size());
      for (const Ref& ref : byDst[i]) {
        const Payload& p = outboxes[ref.src][ref.pos].payload;
        w.u64(ref.src);
        w.u64(p.size());
        w.words(p.data(), p.size());
      }
    });
    WireWriter body;
    for (const WireWriter& f : fragments) body.append(f);
    body.sendFramed(fd);
  });

  // --- Coordinator, phase 1: collect every report before releasing anyone.
  std::vector<Report> reports(shards_);
  try {
    for (std::size_t s = 0; s < shards_; ++s) {
      try {
        reports[s] = readReport(procs[s].fd);
      } catch (const ShardError& e) {
        reports[s].kind = kOtherKind;
        reports[s].err = e.what();
      }
    }
  } catch (...) {
    // Non-ShardError (e.g. bad_alloc from a corrupted frame-length prefix):
    // reap before propagating so no worker leaks as a zombie.
    bool crashed = false;
    reapAll(procs, crashed);
    throw;
  }
  for (std::size_t s = 0; s < shards_; ++s) {
    if (reports[s].kind == kOk) continue;
    // Abort: release the barrier with a 0 byte so healthy workers exit
    // cleanly (best effort — a dead worker's socket just errors), then reap
    // and surface the lowest failed shard's error.
    for (std::size_t j = 0; j < shards_; ++j) {
      const std::uint8_t stop = 0;
      try {
        procs[j].fd.writeAll(&stop, 1);
      } catch (const ShardError&) {
      }
    }
    bool crashed = false;
    reapAll(procs, crashed);
    // Workers exit 0 even in an aborted round, so an abnormal exit here is
    // an infrastructure bug (e.g. a sanitizer abort inside a child) — keep
    // it loud instead of letting the validation error mask it, or CI's
    // sanitizer jobs would never see a child-side crash.
    if (crashed && reports[s].kind == kOtherKind)
      throw ShardError("a shard worker exited abnormally (" + reports[s].err +
                       ")");
    if (crashed)
      throw ShardError("a shard worker exited abnormally while aborting on: " +
                       reports[s].err);
    rethrow(reports[s].kind, reports[s].err);
  }

  // --- Barrier release.
  for (std::size_t s = 0; s < shards_; ++s) {
    const std::uint8_t go = 1;
    try {
      procs[s].fd.writeAll(&go, 1);
    } catch (const ShardError& e) {
      bool crashed = false;
      reapAll(procs, crashed);
      throw ShardError(std::string("shard ") + std::to_string(s) +
                       " died at the barrier: " + e.what());
    }
  }

  // --- Coordinator, phase 2: merge fragments in shard (= destination) order.
  // Any failure (worker death, truncated frame, corrupt wire-supplied
  // count/length) reaps the workers in the enclosing catch before
  // propagating — no zombies on a bad frame.
  std::vector<std::vector<Delivery>> inbox(n);
  try {
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = [&] {
        try {
          return WireReader::recvFramed(procs[s].fd);
        } catch (const ShardError& e) {
          throw ShardError(std::string("shard ") + std::to_string(s) +
                           " died in delivery: " + e.what());
        }
      }();
      parseRows(r, shardBegin(s), shardEnd(s), inbox);
    }
  } catch (...) {
    bool crashed = false;
    reapAll(procs, crashed);
    throw;
  }

  bool crashed = false;
  reapAll(procs, crashed);
  if (crashed) throw ShardError("a shard worker exited abnormally");

  roundWords = 0;
  for (const Report& rep : reports) roundWords += rep.words;
  return inbox;
}

std::vector<std::vector<Message>> ShardedEngine::computeOutboxes(
    const StepFn& fn, const std::vector<std::vector<Delivery>>& inboxes) {
  const std::size_t n = numMachines_;

  std::vector<Proc> procs =
      forkProcs(shards_, [&](std::size_t s, WireFd& fd) {
        const std::size_t lo = shardBegin(s), hi = shardEnd(s);
        const std::size_t local = hi - lo;
        std::uint8_t kind = kOk;
        std::string err;
        std::vector<std::vector<Message>> out(local);
        try {
          ThreadPool pool(threadsPerShard_);
          pool.parallelFor(local, [&](std::size_t i) {
            out[i] = fn(lo + i, inboxes[lo + i]);
          });
        } catch (const CapacityError& e) {
          kind = kCapacityKind;
          err = e.what();
        } catch (const std::exception& e) {
          kind = kOtherKind;
          err = e.what();
        }
        WireWriter body;
        body.u8(kind);
        if (kind != kOk) {
          body.str(err);
        } else {
          for (const auto& outbox : out) writeRows(body, outbox);
        }
        body.sendFramed(fd);
      });

  std::vector<std::vector<Message>> outboxes(n);
  std::uint8_t failKind = kOk;
  std::string failErr;
  try {
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = [&]() -> WireReader {
        try {
          return WireReader::recvFramed(procs[s].fd);
        } catch (const ShardError& e) {
          if (failKind == kOk) {
            failKind = kOtherKind;
            failErr = std::string("shard ") + std::to_string(s) +
                      " died in step: " + e.what();
          }
          return WireReader();
        }
      }();
      if (failKind != kOk) continue;  // keep draining frames, keep first error
      const std::uint8_t kind = r.u8();
      if (kind != kOk) {
        failKind = kind;
        failErr = r.str();
        continue;
      }
      parseRows(r, shardBegin(s), shardEnd(s), outboxes);
    }
  } catch (...) {
    // Parse failure (truncated frame, corrupt count/length): reap before
    // propagating so no worker leaks as a zombie.
    bool crashed = false;
    reapAll(procs, crashed);
    throw;
  }

  bool crashed = false;
  reapAll(procs, crashed);
  // Crash first, then the step error: a worker that reports an error still
  // exits 0, so an abnormal exit is an infrastructure bug (e.g. a sanitizer
  // abort inside a child) that must not hide behind a concurrent StepFn
  // failure — same rule as the abort path of the forked exchange.
  if (crashed)
    throw ShardError(failKind != kOk
                         ? "a shard worker exited abnormally (" + failErr + ")"
                         : "a shard worker exited abnormally");
  if (failKind != kOk) rethrow(failKind, failErr);
  return outboxes;
}

}  // namespace mpcspan::runtime::shard
