#include "runtime/shard/sharded_engine.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/thread_pool.hpp"

namespace mpcspan::runtime::shard {

namespace {

// Error kinds carried in a worker's phase-1 / result headers. The exception
// type cannot cross the process boundary, so it travels as a tag and is
// re-thrown coordinator-side.
constexpr std::uint8_t kOk = 0;
constexpr std::uint8_t kCapacityError = 1;
constexpr std::uint8_t kBoundsError = 2;
constexpr std::uint8_t kOtherError = 3;

struct Worker {
  pid_t pid = -1;
  WireFd fd;  // coordinator end of the socketpair
};

/// Forks one worker per shard; `body(s, fd)` runs in the child, which then
/// exits without unwinding (no destructors, no atexit — the child shares
/// the parent's stdio buffers and thread-owning objects by fork).
std::vector<Worker> forkWorkers(
    std::size_t shards, const std::function<void(std::size_t, WireFd&)>& body) {
  std::vector<WireFd> parentEnds(shards);
  std::vector<WireFd> childEnds(shards);
  for (std::size_t s = 0; s < shards; ++s)
    makeSocketPair(parentEnds[s], childEnds[s]);

  std::vector<Worker> workers(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Abort the round: close our ends (children see EOF and exit) and
      // reap what was already forked.
      for (std::size_t j = 0; j < s; ++j) {
        workers[j].fd.reset();
        int st = 0;
        while (::waitpid(workers[j].pid, &st, 0) < 0 && errno == EINTR) {
        }
      }
      throw ShardError("ShardedEngine: fork failed");
    }
    if (pid == 0) {
      // Worker: keep only this shard's child end. All pairs were created
      // before the first fork, so every sibling end is inherited and must
      // be dropped for EOF detection to work.
      for (std::size_t j = 0; j < shards; ++j) {
        parentEnds[j].reset();
        if (j != s) childEnds[j].reset();
      }
      try {
        body(s, childEnds[s]);
      } catch (...) {
        // Broken socket mid-protocol (coordinator died). Nothing to do.
        std::_Exit(3);
      }
      std::_Exit(0);
    }
    workers[s].pid = pid;
    workers[s].fd = std::move(parentEnds[s]);
  }
  // Coordinator: drop the child ends so a worker's death is visible as EOF.
  for (std::size_t s = 0; s < shards; ++s) childEnds[s].reset();
  return workers;
}

/// Reaps every worker. Closing the coordinator ends first unblocks any
/// worker still waiting on the barrier byte (it reads EOF and exits).
/// Crash detection relies on waitpid seeing each child's exit status, so
/// the host process must not disown its children (SIGCHLD set to SIG_IGN
/// or SA_NOCLDWAIT): auto-reaped workers read as crashes (ECHILD), which
/// is loud rather than wrong, but makes every sharded round throw.
void reapWorkers(std::vector<Worker>& workers, bool& anyCrashed) {
  for (Worker& w : workers) w.fd.reset();
  for (Worker& w : workers) {
    if (w.pid < 0) continue;
    int st = 0;
    pid_t r;
    do {
      r = ::waitpid(w.pid, &st, 0);
    } while (r < 0 && errno == EINTR);
    // A wait failure (ECHILD etc.) means the exit status is unknowable —
    // treat it as a crash rather than reading st == 0 as a clean exit.
    if (r < 0 || !WIFEXITED(st) || WEXITSTATUS(st) != 0) anyCrashed = true;
    w.pid = -1;
  }
}

/// Parses one shard's per-machine section of a phase-2 frame into rows[m]
/// for m in [lo, hi): a u64 count, then (u64 id, u64 len, len words) per
/// row. Row is Message (id = dst) or Delivery (id = src). Wire-supplied
/// sizes are vetted against the frame's remaining bytes before sizing any
/// container, so a corrupt frame throws ShardError, never bad_alloc.
template <class Row>
void parseRows(WireReader& r, std::size_t lo, std::size_t hi,
               std::vector<std::vector<Row>>& rows) {
  std::vector<Word> scratch;
  for (std::size_t m = lo; m < hi; ++m) {
    const std::uint64_t count = r.u64();
    // A row is at least two u64s.
    if (count > r.remaining() / (2 * sizeof(std::uint64_t)))
      throw ShardError("shard wire frame: corrupt row count");
    rows[m].reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t id = r.u64();
      const std::uint64_t len = r.u64();
      if (len > r.remaining() / sizeof(Word))
        throw ShardError("shard wire frame: corrupt payload length");
      scratch.resize(len);
      r.words(scratch.data(), len);
      rows[m].push_back(
          {static_cast<std::size_t>(id), Payload(scratch.data(), len)});
    }
  }
}

[[noreturn]] void rethrow(std::uint8_t kind, const std::string& msg) {
  switch (kind) {
    case kCapacityError:
      throw CapacityError(msg);
    case kBoundsError:
      throw std::invalid_argument(msg);
    default:
      throw std::runtime_error(msg);
  }
}

}  // namespace

ShardedEngine::ShardedEngine(std::size_t numMachines, std::size_t shards,
                             std::size_t threadsPerShard,
                             const Topology* topology)
    : numMachines_(numMachines),
      shards_(shards),
      threadsPerShard_(threadsPerShard == 0 ? 1 : threadsPerShard),
      topology_(topology) {
  if (numMachines_ == 0)
    throw std::invalid_argument("ShardedEngine: numMachines must be positive");
  if (shards_ < 2 || shards_ > numMachines_)
    throw std::invalid_argument(
        "ShardedEngine: shards must be in [2, numMachines]");
  if (!topology_) throw std::invalid_argument("ShardedEngine: null topology");
}

std::size_t ShardedEngine::shardBegin(std::size_t s) const {
  // Same balanced contiguous split as ThreadPool's lane slices.
  const std::size_t base = numMachines_ / shards_;
  const std::size_t extra = numMachines_ % shards_;
  return s * base + std::min(s, extra);
}

std::size_t ShardedEngine::defaultShards() {
  if (const char* env = std::getenv("MPCSPAN_SHARDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return 1;
}

std::vector<std::vector<Delivery>> ShardedEngine::exchange(
    const std::vector<std::vector<Message>>& outboxes,
    std::size_t& roundWords) {
  const std::size_t n = numMachines_;
  const bool priorityWrite = topology_->mode() == Topology::Mode::kPriorityWrite;

  std::vector<Worker> workers = forkWorkers(shards_, [&](std::size_t s,
                                                         WireFd& fd) {
    const std::size_t lo = shardBegin(s), hi = shardEnd(s);

    // --- Phase 1: validate locally (bounds + this range's topology
    // constraints), report {ok, words sent by my sources} or the error.
    // The bounds scan covers this shard's own sources; the union over all
    // shards covers every message, and a validateSlice that scans sources
    // outside [lo, hi) checks msg.dst itself (the topology.hpp contract),
    // so a rogue destination can never index anything out of bounds.
    std::uint8_t kind = kOk;
    std::string err;
    std::uint64_t words = 0;
    try {
      for (std::size_t src = lo; src < hi; ++src)
        for (const Message& msg : outboxes[src])
          if (msg.dst >= n)
            throw std::invalid_argument(
                "RoundEngine: message to unknown machine");
      words = topology_->validateSlice(n, outboxes, lo, hi);
    } catch (const CapacityError& e) {
      kind = kCapacityError;
      err = e.what();
    } catch (const std::invalid_argument& e) {
      kind = kBoundsError;
      err = e.what();
    } catch (const std::exception& e) {
      kind = kOtherError;
      err = e.what();
    }
    {
      WireWriter report;
      report.u8(kind);
      if (kind == kOk)
        report.u64(words);
      else
        report.str(err);
      report.sendFramed(fd);
    }
    if (kind != kOk) return;  // the coordinator aborts the round

    // --- Barrier: the round commits only once every shard validated. A 0
    // byte means another shard failed validation — exit cleanly; only a
    // torn socket (coordinator death) surfaces as an abnormal exit.
    std::uint8_t go = 0;
    fd.readAll(&go, 1);
    if (go == 0) return;

    // --- Phase 2: materialize this shard's destination range. The index
    // pass scans sources in ascending (src, position) order, which *is* the
    // delivery order — the merge is deterministic by construction.
    const std::size_t local = hi - lo;
    struct Ref {
      std::uint32_t src;
      std::uint32_t pos;
    };
    std::vector<std::vector<Ref>> byDst(local);
    for (std::size_t src = 0; src < n; ++src) {
      const auto& outbox = outboxes[src];
      for (std::size_t pos = 0; pos < outbox.size(); ++pos) {
        const std::size_t d = outbox[pos].dst;
        if (d >= lo && d < hi)
          byDst[d - lo].push_back({static_cast<std::uint32_t>(src),
                                   static_cast<std::uint32_t>(pos)});
      }
    }
    // Serialize each destination's deliveries on the shard's local pool
    // (disjoint fragments), then concatenate in destination order.
    std::vector<WireWriter> fragments(local);
    ThreadPool pool(threadsPerShard_);
    pool.parallelFor(local, [&](std::size_t i) {
      const auto& refs = byDst[i];
      const std::size_t take =
          priorityWrite && !refs.empty() ? 1 : refs.size();
      WireWriter& w = fragments[i];
      w.u64(take);
      for (std::size_t r = 0; r < take; ++r) {
        const Payload& p = outboxes[refs[r].src][refs[r].pos].payload;
        w.u64(refs[r].src);
        w.u64(p.size());
        w.words(p.data(), p.size());
      }
    });
    WireWriter body;
    for (const WireWriter& f : fragments) body.append(f);
    body.sendFramed(fd);
  });

  // --- Coordinator, phase 1: collect every report before releasing anyone.
  struct Report {
    std::uint8_t kind = kOk;
    std::uint64_t words = 0;
    std::string err;
  };
  std::vector<Report> reports(shards_);
  try {
    for (std::size_t s = 0; s < shards_; ++s) {
      try {
        WireReader r = WireReader::recvFramed(workers[s].fd);
        reports[s].kind = r.u8();
        if (reports[s].kind == kOk)
          reports[s].words = r.u64();
        else
          reports[s].err = r.str();
      } catch (const ShardError& e) {
        reports[s].kind = kOtherError;
        reports[s].err = e.what();
      }
    }
  } catch (...) {
    // Non-ShardError (e.g. bad_alloc from a corrupted frame-length prefix):
    // reap before propagating so no worker leaks as a zombie.
    bool crashed = false;
    reapWorkers(workers, crashed);
    throw;
  }
  for (std::size_t s = 0; s < shards_; ++s) {
    if (reports[s].kind == kOk) continue;
    // Abort: release the barrier with a 0 byte so healthy workers exit
    // cleanly (best effort — a dead worker's socket just errors), then reap
    // and surface the lowest failed shard's error.
    for (std::size_t j = 0; j < shards_; ++j) {
      const std::uint8_t stop = 0;
      try {
        workers[j].fd.writeAll(&stop, 1);
      } catch (const ShardError&) {
      }
    }
    bool crashed = false;
    reapWorkers(workers, crashed);
    // Workers exit 0 even in an aborted round, so an abnormal exit here is
    // an infrastructure bug (e.g. a sanitizer abort inside a child) — keep
    // it loud instead of letting the validation error mask it, or CI's
    // sanitizer jobs would never see a child-side crash.
    if (crashed && reports[s].kind == kOtherError)
      throw ShardError("a shard worker exited abnormally (" + reports[s].err +
                       ")");
    if (crashed)
      throw ShardError("a shard worker exited abnormally while aborting on: " +
                       reports[s].err);
    rethrow(reports[s].kind, reports[s].err);
  }

  // --- Barrier release.
  for (std::size_t s = 0; s < shards_; ++s) {
    const std::uint8_t go = 1;
    try {
      workers[s].fd.writeAll(&go, 1);
    } catch (const ShardError& e) {
      bool crashed = false;
      reapWorkers(workers, crashed);
      throw ShardError(std::string("shard ") + std::to_string(s) +
                       " died at the barrier: " + e.what());
    }
  }

  // --- Coordinator, phase 2: merge fragments in shard (= destination) order.
  // Any failure (worker death, truncated frame, corrupt wire-supplied
  // count/length) reaps the workers in the enclosing catch before
  // propagating — no zombies on a bad frame.
  std::vector<std::vector<Delivery>> inbox(n);
  try {
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = [&] {
        try {
          return WireReader::recvFramed(workers[s].fd);
        } catch (const ShardError& e) {
          throw ShardError(std::string("shard ") + std::to_string(s) +
                           " died in delivery: " + e.what());
        }
      }();
      parseRows(r, shardBegin(s), shardEnd(s), inbox);
    }
  } catch (...) {
    bool crashed = false;
    reapWorkers(workers, crashed);
    throw;
  }

  bool crashed = false;
  reapWorkers(workers, crashed);
  if (crashed) throw ShardError("a shard worker exited abnormally");

  roundWords = 0;
  for (const Report& rep : reports) roundWords += rep.words;
  return inbox;
}

std::vector<std::vector<Message>> ShardedEngine::computeOutboxes(
    const StepFn& fn, const std::vector<std::vector<Delivery>>& inboxes) {
  const std::size_t n = numMachines_;

  std::vector<Worker> workers =
      forkWorkers(shards_, [&](std::size_t s, WireFd& fd) {
        const std::size_t lo = shardBegin(s), hi = shardEnd(s);
        const std::size_t local = hi - lo;
        std::uint8_t kind = kOk;
        std::string err;
        std::vector<std::vector<Message>> out(local);
        try {
          ThreadPool pool(threadsPerShard_);
          pool.parallelFor(local, [&](std::size_t i) {
            out[i] = fn(lo + i, inboxes[lo + i]);
          });
        } catch (const CapacityError& e) {
          kind = kCapacityError;
          err = e.what();
        } catch (const std::exception& e) {
          kind = kOtherError;
          err = e.what();
        }
        WireWriter body;
        body.u8(kind);
        if (kind != kOk) {
          body.str(err);
        } else {
          for (const auto& outbox : out) {
            body.u64(outbox.size());
            for (const Message& m : outbox) {
              body.u64(m.dst);
              body.u64(m.payload.size());
              body.words(m.payload.data(), m.payload.size());
            }
          }
        }
        body.sendFramed(fd);
      });

  std::vector<std::vector<Message>> outboxes(n);
  std::uint8_t failKind = kOk;
  std::string failErr;
  try {
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = [&]() -> WireReader {
        try {
          return WireReader::recvFramed(workers[s].fd);
        } catch (const ShardError& e) {
          if (failKind == kOk) {
            failKind = kOtherError;
            failErr = std::string("shard ") + std::to_string(s) +
                      " died in step: " + e.what();
          }
          return WireReader();
        }
      }();
      if (failKind != kOk) continue;  // keep draining frames, keep first error
      const std::uint8_t kind = r.u8();
      if (kind != kOk) {
        failKind = kind;
        failErr = r.str();
        continue;
      }
      parseRows(r, shardBegin(s), shardEnd(s), outboxes);
    }
  } catch (...) {
    // Parse failure (truncated frame, corrupt count/length): reap before
    // propagating so no worker leaks as a zombie.
    bool crashed = false;
    reapWorkers(workers, crashed);
    throw;
  }

  bool crashed = false;
  reapWorkers(workers, crashed);
  // Crash first, then the step error: a worker that reports an error still
  // exits 0, so an abnormal exit is an infrastructure bug (e.g. a sanitizer
  // abort inside a child) that must not hide behind a concurrent StepFn
  // failure — same rule as exchange()'s abort path.
  if (crashed)
    throw ShardError(failKind != kOk
                         ? "a shard worker exited abnormally (" + failErr + ")"
                         : "a shard worker exited abnormally");
  if (failKind != kOk) rethrow(failKind, failErr);
  return outboxes;
}

}  // namespace mpcspan::runtime::shard
