#include "runtime/shard/sharded_engine.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/shard/peer_mesh.hpp"
#include "runtime/shard/protocol.hpp"
#include "runtime/shard/shm_ring.hpp"
#include "runtime/shard/tcp_transport.hpp"
#include "runtime/shard/worker_loop.hpp"
#include "runtime/thread_pool.hpp"

namespace mpcspan::runtime::shard {

namespace {

struct Proc {
  pid_t pid = -1;
  WireFd fd;  // coordinator end of the socketpair
};

/// Forks one process per index; `body(i, fd)` runs in the child, which then
/// exits without unwinding (no destructors, no atexit — the child shares
/// the parent's stdio buffers and thread-owning objects by fork).
std::vector<Proc> forkProcs(
    std::size_t count, const std::function<void(std::size_t, WireFd&)>& body) {
  std::vector<WireFd> parentEnds(count);
  std::vector<WireFd> childEnds(count);
  for (std::size_t s = 0; s < count; ++s)
    makeSocketPair(parentEnds[s], childEnds[s]);

  std::vector<Proc> procs(count);
  for (std::size_t s = 0; s < count; ++s) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Abort: close our ends (children see EOF and exit) and reap what was
      // already forked.
      for (std::size_t j = 0; j < s; ++j) {
        procs[j].fd.reset();
        int st = 0;
        while (::waitpid(procs[j].pid, &st, 0) < 0 && errno == EINTR) {
        }
      }
      throw ShardError("ShardedEngine: fork failed");
    }
    if (pid == 0) {
      // Worker: keep only this shard's child end. All pairs were created
      // before the first fork, so every sibling end is inherited and must
      // be dropped for EOF detection to work.
      for (std::size_t j = 0; j < count; ++j) {
        parentEnds[j].reset();
        if (j != s) childEnds[j].reset();
      }
      try {
        body(s, childEnds[s]);
      } catch (...) {
        // Wire failure mid-protocol or an unhandled internal error. Exit
        // abnormally; the coordinator reads it as a crash.
        std::_Exit(3);
      }
      std::_Exit(0);
    }
    procs[s].pid = pid;
    procs[s].fd = std::move(parentEnds[s]);
  }
  // Coordinator: drop the child ends so a worker's death is visible as EOF.
  for (std::size_t s = 0; s < count; ++s) childEnds[s].reset();
  return procs;
}

/// Reaps every worker of a {pid, fd} collection (the per-round fork waves
/// and the resident workers share this). Closing the coordinator ends first
/// unblocks any worker still waiting on a frame (it reads EOF and exits).
/// Crash detection relies on waitpid seeing each child's exit status, so
/// the host process must not disown its children (SIGCHLD set to SIG_IGN
/// or SA_NOCLDWAIT): auto-reaped workers read as crashes (ECHILD), which
/// is loud rather than wrong, but makes every sharded round throw.
template <class W>
void reapAll(std::vector<W>& procs, bool& anyCrashed) {
  for (W& p : procs) p.fd.reset();
  for (W& p : procs) {
    if (p.pid < 0) continue;
    int st = 0;
    pid_t r;
    do {
      r = ::waitpid(p.pid, &st, 0);
    } while (r < 0 && errno == EINTR);
    // A wait failure (ECHILD etc.) means the exit status is unknowable —
    // treat it as a crash rather than reading st == 0 as a clean exit.
    if (r < 0 || !WIFEXITED(st) || WEXITSTATUS(st) != 0) anyCrashed = true;
    p.pid = -1;
  }
}

}  // namespace

ShardedEngine::ShardedEngine(std::size_t numMachines, std::size_t shards,
                             std::size_t threadsPerShard,
                             const Topology* topology, bool resident,
                             const std::vector<KernelRegistration>* kernels,
                             BlockStore* blocks,
                             const std::vector<std::vector<Delivery>>* inboxes,
                             Transport transport, int pipeline)
    : numMachines_(numMachines),
      shards_(shards),
      threadsPerShard_(threadsPerShard == 0 ? 1 : threadsPerShard),
      topology_(topology),
      resident_(resident),
      transport_(transport == Transport::kDefault
                     ? (defaultTcpExchange()
                            ? Transport::kTcp
                            : (defaultShmExchange() ? Transport::kShmRing
                                                    : Transport::kSocketMesh))
                     : transport),
      pipelined_(pipeline < 0 ? defaultPipeline() : pipeline != 0),
      kernels_(kernels),
      blocks_(blocks),
      inboxes_(inboxes) {
  if (numMachines_ == 0)
    throw std::invalid_argument("ShardedEngine: numMachines must be positive");
  if (shards_ < 2 || shards_ > numMachines_)
    throw std::invalid_argument(
        "ShardedEngine: shards must be in [2, numMachines]");
  if (!topology_) throw std::invalid_argument("ShardedEngine: null topology");
}

ShardedEngine::~ShardedEngine() { shutdownWorkers(); }

std::size_t ShardedEngine::shardBegin(std::size_t s) const {
  return shardRangeBegin(numMachines_, shards_, s);
}

std::size_t ShardedEngine::shardOf(std::size_t machine) const {
  return shardOfMachine(numMachines_, shards_, machine);
}

std::size_t ShardedEngine::defaultShards() {
  if (const char* env = std::getenv("MPCSPAN_SHARDS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return 1;
}

bool ShardedEngine::defaultResident() {
  if (const char* env = std::getenv("MPCSPAN_RESIDENT"))
    return std::strtol(env, nullptr, 10) != 0;
  return true;
}

bool ShardedEngine::defaultPeerExchange() {
  if (const char* env = std::getenv("MPCSPAN_PEER_EXCHANGE"))
    return std::strtol(env, nullptr, 10) != 0;
  return true;
}

bool ShardedEngine::defaultShmExchange() {
  if (const char* env = std::getenv("MPCSPAN_SHM_EXCHANGE"))
    return std::strtol(env, nullptr, 10) != 0;
  return true;
}

bool ShardedEngine::defaultTcpExchange() {
  if (const char* env = std::getenv("MPCSPAN_TCP_EXCHANGE"))
    return std::strtol(env, nullptr, 10) != 0;
  return false;
}

bool ShardedEngine::defaultPipeline() {
  if (const char* env = std::getenv("MPCSPAN_PIPELINE"))
    return std::strtol(env, nullptr, 10) != 0;
  return true;
}

std::vector<pid_t> ShardedEngine::workerPids() const {
  std::vector<pid_t> pids;
  pids.reserve(workers_.size());
  for (const Worker& w : workers_) pids.push_back(w.pid);
  return pids;
}

void ShardedEngine::requireResident(const char* op) const {
  if (!resident_)
    throw std::logic_error(
        std::string(op) +
        " requires the resident shard backend (MPCSPAN_RESIDENT=1 / "
        "EngineConfig::resident)");
}

void ShardedEngine::start() {
  if (failed_)
    throw ShardError(
        "ShardedEngine: shard backend is down (a worker died earlier)");
  if (started()) return;
  if (resident_ && transport_ == Transport::kTcp) {
    startTcp();
    return;
  }
  // The peer mesh must exist before the first fork so every worker can
  // inherit its row; worker s keeps row s and drops every other row's fds
  // (both ends of foreign pairs), so a dead peer reads as EOF, never as a
  // silently-held open socket. The coordinator closes the whole matrix when
  // this frame unwinds — it never touches a mesh byte.
  std::vector<std::vector<WireFd>> mesh;
  if (resident_ && transport_ != Transport::kRelay) {
    mesh = makeMesh(shards_);
    if (transport_ == Transport::kShmRing) {
      // The shm transport commits rounds off the fused barrier, whose
      // validation is the validateSources + validateInbound split — a
      // custom topology that only implements validateSlice would silently
      // under-validate there (the base validateSources just counts words).
      // Such topologies take the socket mesh instead, whose strict
      // conversation runs the full validateSlice; same fallback as a host
      // that cannot map POSIX shm (no /dev/shm).
      if (!topology_->canOverlap(/*freePlacement=*/false)) {
        transport_ = Transport::kSocketMesh;
      } else {
        // The shared arena must also exist before the first fork (every
        // worker inherits the one mapping); the mesh then only carries
        // doorbell bytes.
        try {
          shmArena_ = std::make_unique<ShmArena>(shards_);
        } catch (const ShardError&) {
          transport_ = Transport::kSocketMesh;
        }
      }
    }
  }
  std::vector<Proc> procs =
      forkProcs(shards_, [this, &mesh](std::size_t s, WireFd& fd) {
        std::vector<WireFd> peers;
        if (!mesh.empty()) {
          for (std::size_t j = 0; j < shards_; ++j)
            if (j != s)
              for (WireFd& end : mesh[j]) end.reset();
          peers = std::move(mesh[s]);
        }
        Channel ctrl(std::move(fd));
        runSnapshotWorker(s, ctrl, peers, -1);
      });
  workers_.resize(shards_);
  for (std::size_t s = 0; s < shards_; ++s) {
    workers_[s].pid = procs[s].pid;
    workers_[s].fd = Channel(std::move(procs[s].fd));
  }
  // The snapshot just adopted every block; drop the coordinator copies so a
  // later fetch can never read a stale one.
  if (blocks_) blocks_->clear();
}

void ShardedEngine::startTcp() {
  const int deadline = defaultTcpTimeoutMs();
  const bool remote = defaultTcpRemote();
  TcpListener rendezvous(defaultTcpPort());
  const std::uint64_t epoch = makeTcpEpoch();

  // Local mode: fork one dialing worker per shard. The children carry the
  // fork snapshot exactly like the socketpair path — only the *wires* are
  // different. Remote mode forks nothing; every shard must be attached by
  // `mpcspan_worker --connect host:port --shard k` within the deadline.
  std::vector<pid_t> pids;
  if (!remote) {
    const std::uint16_t port = rendezvous.port();
    for (std::size_t s = 0; s < shards_; ++s) {
      const pid_t pid = ::fork();
      if (pid < 0) {
        rendezvous.reset();  // dialing children fail fast on ECONNREFUSED
        for (const pid_t p : pids) {
          int st = 0;
          while (::waitpid(p, &st, 0) < 0 && errno == EINTR) {
          }
        }
        throw ShardError("ShardedEngine: fork failed");
      }
      if (pid == 0) {
        rendezvous.reset();  // the child dials; it must not hold the listener
        try {
          tcpWorkerMain(s, port, epoch, deadline);
        } catch (...) {
          std::_Exit(3);
        }
        std::_Exit(0);
      }
      pids.push_back(pid);
    }
  }

  std::vector<Worker> workers(shards_);
  std::vector<TcpPeerAddr> roster(shards_);
  try {
    // Collect one control hello per shard, in whatever order the dials
    // land. Every vetting failure (bad magic/version, stale epoch, rogue
    // shard id, duplicate) throws — a tcp rendezvous never limps along
    // with a partial mesh.
    for (std::size_t got = 0; got < shards_; ++got) {
      Channel ch(rendezvous.accept(deadline), deadline);
      const TcpHello hello = readControlHello(ch);
      if (remote) {
        // Remote attaches cannot know the epoch; they announce 0 and learn
        // the real one from the roster. A nonzero value is a worker from
        // some earlier (possibly dead) engine's rendezvous.
        if (hello.epoch != 0)
          throw ShardError(
              "tcp rendezvous: hello from a stale epoch (a worker of a "
              "previous engine dialed in)");
      } else if (hello.epoch != epoch) {
        throw ShardError(
            "tcp rendezvous: hello epoch mismatch (stale or foreign dial)");
      }
      if (hello.shard >= shards_)
        throw ShardError("tcp rendezvous: shard id " +
                         std::to_string(hello.shard) + " out of range (" +
                         std::to_string(shards_) + " shards)");
      if (workers[hello.shard].fd.valid())
        throw ShardError("tcp rendezvous: duplicate hello for shard " +
                         std::to_string(hello.shard));
      roster[hello.shard] = {
          remote ? peerHostOf(ch.fd()) : std::string("127.0.0.1"),
          hello.meshPort};
      workers[hello.shard].pid =
          remote ? -1 : pids[hello.shard];  // remote: not ours to reap
      workers[hello.shard].fd = std::move(ch);
    }
    for (std::size_t s = 0; s < shards_; ++s)
      sendRoster(workers[s].fd, epoch, roster);
    if (remote)
      for (std::size_t s = 0; s < shards_; ++s)
        sendWorkerSetup(workers[s].fd, numMachines_, shards_, s,
                        threadsPerShard_, *topology_, kernels_, blocks_,
                        inboxes_, pipelined_);
  } catch (...) {
    // Unwind without zombies or hangs: closing the listener and every
    // accepted control channel gives each worker EOF/ECONNREFUSED within
    // its own deadline, then reap the locally forked ones.
    rendezvous.reset();
    for (Worker& w : workers) w.fd.reset();
    for (const pid_t pid : pids) {
      int st = 0;
      while (::waitpid(pid, &st, 0) < 0 && errno == EINTR) {
      }
    }
    throw;
  }
  workers_ = std::move(workers);
  // The snapshot (fork or SETUP frame) just adopted every block; drop the
  // coordinator copies so a later fetch can never read a stale one.
  if (blocks_) blocks_->clear();
}

void ShardedEngine::tcpWorkerMain(std::size_t s, std::uint16_t port,
                                  std::uint64_t epoch, int deadlineMs) {
  TcpListener meshListener(0);
  Channel ctrl(tcpConnect("127.0.0.1", port, deadlineMs), deadlineMs);
  sendControlHello(ctrl, TcpHello{s, epoch, meshListener.port()});
  const std::vector<TcpPeerAddr> roster = readRoster(ctrl, epoch, nullptr);
  if (roster.size() != shards_)
    throw ShardError("tcp roster: shard count mismatch");
  std::vector<WireFd> peers =
      formTcpMesh(s, epoch, meshListener, roster, deadlineMs);
  meshListener.reset();
  runSnapshotWorker(s, ctrl, peers, deadlineMs);
}

void ShardedEngine::runSnapshotWorker(std::size_t s, Channel& ctrl,
                                      std::vector<WireFd>& peers,
                                      int meshTimeoutMs) {
  WorkerConfig cfg;
  cfg.numMachines = numMachines_;
  cfg.shards = shards_;
  cfg.shard = s;
  cfg.threads = threadsPerShard_;
  cfg.topology = topology_;
  cfg.transport = transport_;
  cfg.shmArena = shmArena_.get();
  cfg.meshTimeoutMs = meshTimeoutMs;
  cfg.pipelined = pipelined_;
  std::vector<KernelRegistration> kernels =
      kernels_ ? *kernels_ : std::vector<KernelRegistration>{};
  const std::size_t lo = shardBegin(s), hi = shardEnd(s);
  BlockStore store(numMachines_);
  if (blocks_) {
    for (const std::uint64_t h : blocks_->handles()) {
      store.create(h);
      for (std::size_t m = lo; m < hi; ++m)
        store.block(h, m) = blocks_->block(h, m);
    }
  }
  std::vector<std::vector<Delivery>> inboxes(hi - lo);
  if (inboxes_ && inboxes_->size() == numMachines_)
    for (std::size_t i = 0; i < hi - lo; ++i) inboxes[i] = (*inboxes_)[lo + i];
  runResidentWorker(cfg, ctrl, peers, std::move(kernels), store,
                    std::move(inboxes));
}

void ShardedEngine::shutdownWorkers() noexcept {
  if (workers_.empty()) return;
  // Best-effort polite SHUTDOWN (only meaningful when the workers sit at the
  // command loop; a failed backend skips straight to the close below — a
  // mid-round worker must never parse SHUTDOWN as a barrier verdict).
  if (!failed_) {
    for (Worker& w : workers_) {
      if (!w.fd.valid()) continue;
      try {
        WireWriter bye;
        bye.u8(kOpShutdown);
        bye.sendFramed(w.fd);
      } catch (...) {
      }
    }
  }
  // Closing the fds unblocks any worker still reading (EOF -> clean exit);
  // crash status is deliberately ignored here — either the failure already
  // surfaced as ShardError, or this is a destructor.
  bool crashed = false;
  reapAll(workers_, crashed);
  workers_.clear();
}

void ShardedEngine::fail(const std::string& what) {
  failed_ = true;
  shutdownWorkers();
  throw ShardError(what);
}

template <typename Fn>
auto ShardedEngine::guarded(Fn&& io) -> decltype(io()) {
  try {
    return io();
  } catch (const ShardError& e) {
    fail(e.what());
  }
}

// ---------------------------------------------------------------------------
// Coordinator side.
// ---------------------------------------------------------------------------

namespace {

/// Collects one report per worker, in shard order.
template <class W>
std::vector<Report> collectReports(std::vector<W>& workers) {
  std::vector<Report> reports(workers.size());
  for (std::size_t s = 0; s < workers.size(); ++s)
    reports[s] = readReport(workers[s].fd);
  return reports;
}

/// The shared tail of every coordinator barrier: broadcasts the one-byte
/// go/abort verdict derived from the reports to every worker, and on abort
/// rethrows the lowest failed shard's error.
template <class W>
void broadcastVerdict(std::vector<W>& workers,
                      const std::vector<Report>& reports) {
  std::size_t firstErr = reports.size();
  for (std::size_t s = 0; s < reports.size(); ++s)
    if (reports[s].kind != kOk) {
      firstErr = s;
      break;
    }
  const std::uint8_t verdict = firstErr == reports.size() ? kGo : kAbort;
  for (W& w : workers) {
    WireWriter f;
    f.u8(verdict);
    f.sendFramed(w.fd);
  }
  if (verdict == kAbort)
    rethrow(reports[firstErr].kind, reports[firstErr].err);
}

}  // namespace

void ShardedEngine::registerKernel(std::size_t id, const std::string& name) {
  requireResident("registerKernel");
  if (!started()) return;  // the fork snapshot will carry the table
  guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpRegisterKernel);
      f.u64(id);
      f.str(name);
      f.sendFramed(w.fd);
    }
    std::uint8_t kind = kOk;
    std::string err;
    for (Worker& w : workers_) {
      const Report rep = readReport(w.fd);
      if (rep.kind != kOk && kind == kOk) {
        kind = rep.kind;
        err = rep.err;
      }
    }
    if (kind != kOk) rethrow(kind, err);
  });
}

void ShardedEngine::stepKernel(std::size_t id, const std::vector<Word>& args,
                               std::size_t& roundWords, bool freePlacement) {
  requireResident("step(KernelId)");
  start();
  // One epoch per STEP attempt, aborts included; the workers advance their
  // own counters in lockstep, so both sides can vet every frame of the
  // conversation against it (essential once rounds overlap: a verdict must
  // never be appliable to the wrong round's speculative state).
  const std::uint64_t epoch = stepEpoch_++;
  // Overlap eligibility is per round: pipelined engine, and a topology
  // whose validation splits across the fused barrier for this round kind.
  // Ineligible rounds fall back to the strict conversation below — the two
  // modes interleave freely on one engine because the kOpStep frame carries
  // the mode byte.
  const bool overlap = pipelined() && topology_->canOverlap(freePlacement);
  guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpStep);
      f.u64(epoch);
      f.u8(overlap ? 1 : 0);
      f.u64(id);
      f.u8(freePlacement ? 1 : 0);
      writeArgs(f, args);
      f.sendFramed(w.fd);
    }

    const bool shmMode =
        transport_ == Transport::kShmRing && shmArena_ != nullptr;
    if (shmMode || overlap) {
      // Fused single barrier — the shm ring's native conversation,
      // generalized to every mesh transport for pipelined rounds. Workers
      // validate their own sources at phase A and ship their sections
      // (pre-written into the rings, or speculatively exchanged over the
      // mesh before the verdict lands); each report carries the source
      // verdict plus (for topologies with inbound budgets) this worker's
      // per-destination word sums. The coordinator totals the sums, runs
      // the receiver-side validation, and broadcasts the one commit/abort
      // frame — two scheduling waves per round instead of four. Reports
      // and verdicts echo the epoch so a desynced stream fails loudly
      // instead of committing round r against round r+1's state.
      const bool wantSums = !freePlacement && topology_->needsInboundSums();
      std::vector<std::uint64_t> received(wantSums ? numMachines_ : 0, 0);
      std::vector<Report> reports(shards_);
      for (std::size_t s = 0; s < shards_; ++s) {
        spinAwaitReadable(workers_[s].fd.fd());
        WireReader r = WireReader::recvFramed(workers_[s].fd);
        reports[s].kind = r.u8();
        if (r.u64() != epoch)
          throw ShardError("step barrier: report epoch mismatch (shard " +
                           std::to_string(s) + " desynced)");
        if (reports[s].kind == kOk) {
          reports[s].words = r.u64();
          if (wantSums)
            for (std::size_t m = 0; m < numMachines_; ++m)
              received[m] += r.u64();
        } else {
          reports[s].err = r.str();
        }
      }
      std::size_t firstErr = reports.size();
      for (std::size_t s = 0; s < reports.size(); ++s)
        if (reports[s].kind != kOk) {
          firstErr = s;
          break;
        }
      std::uint8_t inKind = kOk;
      std::string inErr;
      if (firstErr == reports.size() && wantSums) {
        try {
          topology_->validateInbound(numMachines_, received);
        } catch (...) {
          inKind = classify(inErr);
        }
      }
      const bool ok = firstErr == reports.size() && inKind == kOk;
      for (Worker& w : workers_) {
        WireWriter f;
        f.u8(ok ? kGo : kAbort);
        f.u64(epoch);
        f.sendFramed(w.fd);
      }
      if (!ok) {
        if (firstErr != reports.size())
          rethrow(reports[firstErr].kind, reports[firstErr].err);
        rethrow(inKind, inErr);
      }
      roundWords = 0;
      for (const Report& rep : reports) roundWords += rep.words;
      return;
    }

    if (transport_ != Transport::kRelay) {
      // Peer exchange: the coordinator is a pure barrier arbiter. Phase A
      // reports carry only verdicts — one abort byte kills the round for
      // all before any peer byte moves; on go the workers exchange their
      // sections over the mesh and report validation, and the coordinator
      // broadcasts the one-byte commit/abort. Per-round coordinator
      // traffic is O(shards) regardless of the payload volume.
      broadcastVerdict(workers_, collectReports(workers_));

      // Validation barrier (the workers are mid-mesh-exchange), then commit.
      const std::vector<Report> reports = collectReports(workers_);
      broadcastVerdict(workers_, reports);

      roundWords = 0;
      for (const Report& rep : reports) roundWords += rep.words;
      return;
    }

    // Coordinator relay (MPCSPAN_PEER_EXCHANGE=0, the equivalence
    // reference). Phase A barrier: collect every compute report. The ok
    // ones carry the cross-shard sections (s -> t) as raw byte slices,
    // which are appended straight into the per-target phase-B frames as
    // they are parsed — replies arrive in ascending origin order, which is
    // exactly the section order the workers expect, so no intermediate
    // copy is needed.
    std::vector<Report> reports(shards_);
    std::vector<WireWriter> scatter(shards_);
    for (WireWriter& f : scatter) f.u8(kGo);
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = WireReader::recvFramed(workers_[s].fd);
      reports[s].kind = r.u8();
      if (reports[s].kind != kOk) {
        reports[s].err = r.str();
        continue;
      }
      for (std::size_t t = 0; t < shards_; ++t) {
        if (t == s) continue;
        const std::uint64_t count = r.u64();
        const std::uint64_t byteLen = r.u64();
        WireWriter& f = scatter[t];
        f.u64(count);
        f.u64(byteLen);
        f.bytes(r.raw(byteLen), byteLen);
      }
    }
    std::size_t firstErr = shards_;
    for (std::size_t s = 0; s < shards_; ++s)
      if (reports[s].kind != kOk) {
        firstErr = s;
        break;
      }
    if (firstErr != shards_) {
      for (Worker& w : workers_) {
        WireWriter f;
        f.u8(kAbort);
        f.sendFramed(w.fd);
      }
      rethrow(reports[firstErr].kind, reports[firstErr].err);
    }

    // Phase B: scatter each worker its inbound sections (origin order).
    for (std::size_t t = 0; t < shards_; ++t) scatter[t].sendFramed(workers_[t].fd);

    // Validation barrier, then commit.
    reports = collectReports(workers_);
    broadcastVerdict(workers_, reports);

    roundWords = 0;
    for (const Report& rep : reports) roundWords += rep.words;
  });
}

void ShardedEngine::localKernel(std::size_t id, const std::vector<Word>& args) {
  requireResident("stepLocal(KernelId)");
  start();
  guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpLocal);
      f.u64(id);
      writeArgs(f, args);
      f.sendFramed(w.fd);
    }
    std::uint8_t kind = kOk;
    std::string err;
    for (Worker& w : workers_) {
      const Report rep = readReport(w.fd);
      if (rep.kind != kOk && kind == kOk) {
        kind = rep.kind;
        err = rep.err;
      }
    }
    if (kind != kOk) rethrow(kind, err);
  });
}

std::vector<std::vector<Word>> ShardedEngine::fetchKernel(
    std::size_t id, const std::vector<Word>& args) {
  requireResident("fetchKernel");
  start();
  return guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpFetchKernel);
      f.u64(id);
      writeArgs(f, args);
      f.sendFramed(w.fd);
    }
    std::vector<std::vector<Word>> out(numMachines_);
    std::uint8_t kind = kOk;
    std::string err;
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = WireReader::recvFramed(workers_[s].fd);
      const std::uint8_t k = r.u8();
      if (k != kOk) {
        if (kind == kOk) {
          kind = k;
          err = r.str();
        }
        continue;
      }
      for (std::size_t m = shardBegin(s); m < shardEnd(s); ++m) {
        const std::uint64_t len = r.u64();
        if (len > r.remaining() / sizeof(Word))
          throw ShardError("shard wire frame: corrupt block length");
        out[m].resize(len);
        r.words(out[m].data(), len);
      }
    }
    if (kind != kOk) rethrow(kind, err);
    return out;
  });
}

void ShardedEngine::storeBlocks(std::uint64_t handle,
                                std::vector<std::vector<Word>> perMachine) {
  requireResident("createBlocks");
  start();
  guarded([&] {
    for (std::size_t s = 0; s < shards_; ++s) {
      WireWriter f;
      f.u8(kOpStoreBlocks);
      f.u64(handle);
      for (std::size_t m = shardBegin(s); m < shardEnd(s); ++m) {
        f.u64(perMachine[m].size());
        f.words(perMachine[m].data(), perMachine[m].size());
      }
      f.sendFramed(workers_[s].fd);
    }
    std::uint8_t kind = kOk;
    std::string err;
    for (Worker& w : workers_) {
      const Report rep = readReport(w.fd);
      if (rep.kind != kOk && kind == kOk) {
        kind = rep.kind;
        err = rep.err;
      }
    }
    if (kind != kOk) rethrow(kind, err);
  });
}

std::vector<std::vector<Word>> ShardedEngine::fetchBlocks(
    std::uint64_t handle) {
  requireResident("readBlocks");
  start();
  return guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpFetchBlocks);
      f.u64(handle);
      f.sendFramed(w.fd);
    }
    std::vector<std::vector<Word>> out(numMachines_);
    std::uint8_t kind = kOk;
    std::string err;
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = WireReader::recvFramed(workers_[s].fd);
      const std::uint8_t k = r.u8();
      if (k != kOk) {
        if (kind == kOk) {
          kind = k;
          err = r.str();
        }
        continue;
      }
      for (std::size_t m = shardBegin(s); m < shardEnd(s); ++m) {
        const std::uint64_t len = r.u64();
        if (len > r.remaining() / sizeof(Word))
          throw ShardError("shard wire frame: corrupt block length");
        out[m].resize(len);
        r.words(out[m].data(), len);
      }
    }
    if (kind != kOk) rethrow(kind, err);
    return out;
  });
}

void ShardedEngine::freeBlocks(std::uint64_t handle) {
  requireResident("freeBlocks");
  start();
  guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpFreeBlocks);
      f.u64(handle);
      f.sendFramed(w.fd);
    }
    for (Worker& w : workers_) (void)readReport(w.fd);
  });
}

std::vector<std::vector<Delivery>> ShardedEngine::fetchInboxes() {
  requireResident("fetchInboxes");
  start();
  return guarded([&] {
    for (Worker& w : workers_) {
      WireWriter f;
      f.u8(kOpFetchInboxes);
      f.sendFramed(w.fd);
    }
    std::vector<std::vector<Delivery>> out(numMachines_);
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = WireReader::recvFramed(workers_[s].fd);
      parseRows<Delivery>(r, shardBegin(s), shardEnd(s), out);
    }
    return out;
  });
}

std::vector<std::vector<Delivery>> ShardedEngine::exchange(
    const std::vector<std::vector<Message>>& outboxes, std::size_t& roundWords,
    bool updateResident) {
  return resident_ ? exchangeResident(outboxes, roundWords, updateResident)
                   : exchangeForked(outboxes, roundWords);
}

std::vector<std::vector<Delivery>> ShardedEngine::exchangeResident(
    const std::vector<std::vector<Message>>& outboxes, std::size_t& roundWords,
    bool updateResident) {
  const std::size_t n = numMachines_;

  // Bounds-check and bucket the cross-shard messages in one scan, appending
  // each row straight into its destination shard's section instead of
  // collecting refs and re-walking outboxes[src][pos] per message. Nothing
  // has been sent when a rogue destination throws std::invalid_argument, so
  // the engine (and the workers) stay untouched, exactly like in-process.
  std::vector<WireWriter> cross(shards_);
  std::vector<std::uint64_t> crossCount(shards_, 0);
  std::vector<std::size_t> ownBytes(shards_, 0);  // each shard's writeRows span
  for (std::size_t src = 0; src < n; ++src) {
    const std::size_t home = shardOf(src);
    for (const Message& msg : outboxes[src]) {
      if (msg.dst >= n)
        throw std::invalid_argument("RoundEngine: message to unknown machine");
      ownBytes[home] += 2 * sizeof(std::uint64_t) + sizeof(Word) * msg.payload.size();
      const std::size_t t = shardOf(msg.dst);
      if (t == home) continue;
      cross[t].row(src, msg.dst, msg.payload.data(), msg.payload.size());
      ++crossCount[t];
    }
  }

  start();
  return guarded([&] {
    for (std::size_t s = 0; s < shards_; ++s) {
      WireWriter f;
      // Exact frame size: op + flag bytes, a count word per own machine,
      // the own-outbox rows, the cross count word, the cross section.
      f.reserve(2 + 8 * (shardEnd(s) - shardBegin(s)) + ownBytes[s] + 8 +
                cross[s].size());
      f.u8(kOpExchange);
      f.u8(updateResident ? 1 : 0);
      for (std::size_t m = shardBegin(s); m < shardEnd(s); ++m)
        writeRows(f, outboxes[m]);
      f.u64(crossCount[s]);
      f.append(cross[s]);
      f.sendFramed(workers_[s].fd);
    }

    // Validation barrier: every slice must pass before anyone commits; one
    // failed shard aborts the round for all, and the workers stay alive.
    const std::vector<Report> reports = collectReports(workers_);
    broadcastVerdict(workers_, reports);

    // Commit: merge the delivery fragments in shard (= destination) order.
    std::vector<std::vector<Delivery>> inbox(n);
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = WireReader::recvFramed(workers_[s].fd);
      parseRows<Delivery>(r, shardBegin(s), shardEnd(s), inbox);
    }
    roundWords = 0;
    for (const Report& rep : reports) roundWords += rep.words;
    return inbox;
  });
}

// ---------------------------------------------------------------------------
// Legacy fork-per-round dispatch (resident == false) and the closure-step
// compute wave. The wave is fork-per-round even on the resident backend:
// RoundEngine::step's closure and its captures exist only in the
// coordinator's address space — the resident workers forked before the
// closure did — so a copy-on-write snapshot is the only way the closure can
// read captured state without marshalling.
// ---------------------------------------------------------------------------

std::vector<std::vector<Delivery>> ShardedEngine::exchangeForked(
    const std::vector<std::vector<Message>>& outboxes,
    std::size_t& roundWords) {
  const std::size_t n = numMachines_;
  const bool priorityWrite =
      topology_->mode() == Topology::Mode::kPriorityWrite;

  std::vector<Proc> procs = forkProcs(shards_, [&](std::size_t s,
                                                   WireFd& fd) {
    const std::size_t lo = shardBegin(s), hi = shardEnd(s);

    // --- Phase 1: validate locally (bounds + this range's topology
    // constraints), report {ok, words sent by my sources} or the error.
    // The bounds scan covers this shard's own sources; the union over all
    // shards covers every message, and a validateSlice that scans sources
    // outside [lo, hi) checks msg.dst itself (the topology.hpp contract),
    // so a rogue destination can never index anything out of bounds.
    std::uint8_t kind = kOk;
    std::string err;
    std::uint64_t words = 0;
    try {
      for (std::size_t src = lo; src < hi; ++src)
        for (const Message& msg : outboxes[src])
          if (msg.dst >= n)
            throw std::invalid_argument(
                "RoundEngine: message to unknown machine");
      words = topology_->validateSlice(n, outboxes, lo, hi);
    } catch (...) {
      kind = classify(err);
    }
    writeReport(fd, kind, err, words);
    if (kind != kOk) return;  // the coordinator aborts the round

    // --- Barrier: the round commits only once every shard validated. A 0
    // byte means another shard failed validation — exit cleanly; only a
    // torn socket (coordinator death) surfaces as an abnormal exit.
    std::uint8_t go = 0;
    fd.readAll(&go, 1);
    if (go == 0) return;

    // --- Phase 2: materialize this shard's destination range. The index
    // pass scans sources in ascending (src, position) order, which *is* the
    // delivery order — the merge is deterministic by construction.
    const std::size_t local = hi - lo;
    const std::vector<std::vector<Ref>> byDst =
        indexByDst(outboxes, lo, hi, priorityWrite);
    std::vector<WireWriter> fragments(local);
    ThreadPool pool(threadsPerShard_);
    pool.parallelFor(local, [&](std::size_t i) {
      WireWriter& w = fragments[i];
      w.u64(byDst[i].size());
      for (const Ref& ref : byDst[i]) {
        const Payload& p = outboxes[ref.src][ref.pos].payload;
        w.u64(ref.src);
        w.u64(p.size());
        w.words(p.data(), p.size());
      }
    });
    WireWriter body;
    for (const WireWriter& f : fragments) body.append(f);
    body.sendFramed(fd);
  });

  // --- Coordinator, phase 1: collect every report before releasing anyone.
  std::vector<Report> reports(shards_);
  try {
    for (std::size_t s = 0; s < shards_; ++s) {
      try {
        reports[s] = readReport(procs[s].fd);
      } catch (const ShardError& e) {
        reports[s].kind = kOtherKind;
        reports[s].err = e.what();
      }
    }
  } catch (...) {
    // Non-ShardError (e.g. bad_alloc from a corrupted frame-length prefix):
    // reap before propagating so no worker leaks as a zombie.
    bool crashed = false;
    reapAll(procs, crashed);
    throw;
  }
  for (std::size_t s = 0; s < shards_; ++s) {
    if (reports[s].kind == kOk) continue;
    // Abort: release the barrier with a 0 byte so healthy workers exit
    // cleanly (best effort — a dead worker's socket just errors), then reap
    // and surface the lowest failed shard's error.
    for (std::size_t j = 0; j < shards_; ++j) {
      const std::uint8_t stop = 0;
      try {
        procs[j].fd.writeAll(&stop, 1);
      } catch (const ShardError&) {
      }
    }
    bool crashed = false;
    reapAll(procs, crashed);
    // Workers exit 0 even in an aborted round, so an abnormal exit here is
    // an infrastructure bug (e.g. a sanitizer abort inside a child) — keep
    // it loud instead of letting the validation error mask it, or CI's
    // sanitizer jobs would never see a child-side crash.
    if (crashed && reports[s].kind == kOtherKind)
      throw ShardError("a shard worker exited abnormally (" + reports[s].err +
                       ")");
    if (crashed)
      throw ShardError("a shard worker exited abnormally while aborting on: " +
                       reports[s].err);
    rethrow(reports[s].kind, reports[s].err);
  }

  // --- Barrier release.
  for (std::size_t s = 0; s < shards_; ++s) {
    const std::uint8_t go = 1;
    try {
      procs[s].fd.writeAll(&go, 1);
    } catch (const ShardError& e) {
      bool crashed = false;
      reapAll(procs, crashed);
      throw ShardError(std::string("shard ") + std::to_string(s) +
                       " died at the barrier: " + e.what());
    }
  }

  // --- Coordinator, phase 2: merge fragments in shard (= destination) order.
  // Any failure (worker death, truncated frame, corrupt wire-supplied
  // count/length) reaps the workers in the enclosing catch before
  // propagating — no zombies on a bad frame.
  std::vector<std::vector<Delivery>> inbox(n);
  try {
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = [&] {
        try {
          return WireReader::recvFramed(procs[s].fd);
        } catch (const ShardError& e) {
          throw ShardError(std::string("shard ") + std::to_string(s) +
                           " died in delivery: " + e.what());
        }
      }();
      parseRows(r, shardBegin(s), shardEnd(s), inbox);
    }
  } catch (...) {
    bool crashed = false;
    reapAll(procs, crashed);
    throw;
  }

  bool crashed = false;
  reapAll(procs, crashed);
  if (crashed) throw ShardError("a shard worker exited abnormally");

  roundWords = 0;
  for (const Report& rep : reports) roundWords += rep.words;
  return inbox;
}

std::vector<std::vector<Message>> ShardedEngine::computeOutboxes(
    const StepFn& fn, const std::vector<std::vector<Delivery>>& inboxes) {
  const std::size_t n = numMachines_;

  std::vector<Proc> procs =
      forkProcs(shards_, [&](std::size_t s, WireFd& fd) {
        const std::size_t lo = shardBegin(s), hi = shardEnd(s);
        const std::size_t local = hi - lo;
        std::uint8_t kind = kOk;
        std::string err;
        std::vector<std::vector<Message>> out(local);
        try {
          ThreadPool pool(threadsPerShard_);
          pool.parallelFor(local, [&](std::size_t i) {
            out[i] = fn(lo + i, inboxes[lo + i]);
          });
        } catch (const CapacityError& e) {
          kind = kCapacityKind;
          err = e.what();
        } catch (const std::exception& e) {
          kind = kOtherKind;
          err = e.what();
        }
        WireWriter body;
        body.u8(kind);
        if (kind != kOk) {
          body.str(err);
        } else {
          for (const auto& outbox : out) writeRows(body, outbox);
        }
        body.sendFramed(fd);
      });

  std::vector<std::vector<Message>> outboxes(n);
  std::uint8_t failKind = kOk;
  std::string failErr;
  try {
    for (std::size_t s = 0; s < shards_; ++s) {
      WireReader r = [&]() -> WireReader {
        try {
          return WireReader::recvFramed(procs[s].fd);
        } catch (const ShardError& e) {
          if (failKind == kOk) {
            failKind = kOtherKind;
            failErr = std::string("shard ") + std::to_string(s) +
                      " died in step: " + e.what();
          }
          return WireReader();
        }
      }();
      if (failKind != kOk) continue;  // keep draining frames, keep first error
      const std::uint8_t kind = r.u8();
      if (kind != kOk) {
        failKind = kind;
        failErr = r.str();
        continue;
      }
      parseRows(r, shardBegin(s), shardEnd(s), outboxes);
    }
  } catch (...) {
    // Parse failure (truncated frame, corrupt count/length): reap before
    // propagating so no worker leaks as a zombie.
    bool crashed = false;
    reapAll(procs, crashed);
    throw;
  }

  bool crashed = false;
  reapAll(procs, crashed);
  // Crash first, then the step error: a worker that reports an error still
  // exits 0, so an abnormal exit is an infrastructure bug (e.g. a sanitizer
  // abort inside a child) that must not hide behind a concurrent StepFn
  // failure — same rule as the abort path of the forked exchange.
  if (crashed)
    throw ShardError(failKind != kOk
                         ? "a shard worker exited abnormally (" + failErr + ")"
                         : "a shard worker exited abnormally");
  if (failKind != kOk) rethrow(failKind, failErr);
  return outboxes;
}

}  // namespace mpcspan::runtime::shard
