#include "runtime/shard/wire.hpp"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace mpcspan::runtime::shard {

void WireFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void WireFd::writeAll(const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE (-> ShardError), not
    // kill the whole process with SIGPIPE.
    const ssize_t w = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw ShardError(std::string("shard wire write: ") + std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void WireFd::readAll(void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const ssize_t r = ::recv(fd_, p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw ShardError(std::string("shard wire read: ") + std::strerror(errno));
    }
    if (r == 0) throw ShardError("shard wire read: peer closed (worker died?)");
    p += r;
    n -= static_cast<std::size_t>(r);
  }
}

void WireFd::writeAll2(const void* hdr, std::size_t nHdr, const void* body,
                       std::size_t nBody) {
  const auto* hp = static_cast<const std::uint8_t*>(hdr);
  const auto* bp = static_cast<const std::uint8_t*>(body);
  while (nHdr + nBody > 0) {
    iovec iov[2];
    int cnt = 0;
    if (nHdr > 0) iov[cnt++] = {const_cast<std::uint8_t*>(hp), nHdr};
    if (nBody > 0) iov[cnt++] = {const_cast<std::uint8_t*>(bp), nBody};
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = cnt;
    const ssize_t w = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw ShardError(std::string("shard wire write: ") + std::strerror(errno));
    }
    auto adv = static_cast<std::size_t>(w);
    const std::size_t fromHdr = std::min(adv, nHdr);
    hp += fromHdr;
    nHdr -= fromHdr;
    adv -= fromHdr;
    bp += adv;
    nBody -= adv;
  }
}

void makeSocketPair(WireFd& parentEnd, WireFd& childEnd) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0)
    throw ShardError(std::string("socketpair: ") + std::strerror(errno));
  parentEnd.reset(fds[0]);
  childEnd.reset(fds[1]);
}

void WireWriter::u64(std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf_.insert(buf_.end(), p, p + sizeof(v));
}

void WireWriter::words(const Word* p, std::size_t n) {
  const auto* b = reinterpret_cast<const std::uint8_t*>(p);
  buf_.insert(buf_.end(), b, b + n * sizeof(Word));
}

void WireWriter::str(const std::string& s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::bytes(const std::uint8_t* p, std::size_t n) {
  buf_.insert(buf_.end(), p, p + n);
}

void WireWriter::row(std::uint64_t a, std::uint64_t b, const Word* w,
                     std::size_t n) {
  const std::uint64_t hdr[3] = {a, b, n};
  const auto* hp = reinterpret_cast<const std::uint8_t*>(hdr);
  buf_.insert(buf_.end(), hp, hp + sizeof(hdr));
  words(w, n);
}

void WireWriter::idRow(std::uint64_t id, const Word* w, std::size_t n) {
  const std::uint64_t hdr[2] = {id, n};
  const auto* hp = reinterpret_cast<const std::uint8_t*>(hdr);
  buf_.insert(buf_.end(), hp, hp + sizeof(hdr));
  words(w, n);
}

void WireWriter::append(const WireWriter& other) {
  buf_.insert(buf_.end(), other.buf_.begin(), other.buf_.end());
}

void WireWriter::sendFramed(WireFd& fd) const {
  const std::uint64_t len = buf_.size();
  fd.writeAll2(&len, sizeof(len), buf_.data(), buf_.size());
}

WireReader WireReader::recvFramed(WireFd& fd) {
  std::uint64_t len = 0;
  fd.readAll(&len, sizeof(len));
  if (len > kMaxFrameBytes)
    throw ShardError("shard wire frame: implausible length (corrupt prefix)");
  WireReader r;
  r.buf_.resize(len);
  if (len > 0) fd.readAll(r.buf_.data(), len);
  r.data_ = r.buf_.data();
  r.size_ = r.buf_.size();
  return r;
}

WireReader WireReader::fromBytes(std::vector<std::uint8_t> bytes) {
  WireReader r;
  r.buf_ = std::move(bytes);
  r.data_ = r.buf_.data();
  r.size_ = r.buf_.size();
  return r;
}

WireReader WireReader::view(const std::uint8_t* p, std::size_t n) {
  WireReader r;
  r.data_ = p;
  r.size_ = n;
  r.view_ = true;
  return r;
}

void WireReader::seek(std::size_t pos) {
  if (pos > size_) throw ShardError("shard wire frame: seek past end");
  pos_ = pos;
}

void WireReader::need(std::size_t n) const {
  // pos_ <= size_ always holds, so the subtraction cannot wrap;
  // `pos_ + n` could, for a corrupted wire-supplied length.
  if (n > size_ - pos_) throw ShardError("shard wire frame: truncated");
}

std::uint8_t WireReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint64_t WireReader::u64() {
  need(sizeof(std::uint64_t));
  std::uint64_t v;
  std::memcpy(&v, data_ + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::string WireReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

const std::uint8_t* WireReader::raw(std::size_t n) {
  need(n);
  const std::uint8_t* p = data_ + pos_;
  pos_ += n;
  return p;
}

void WireReader::words(Word* out, std::size_t n) {
  // n == 0 exits early: `out` may be a null data() of an empty vector, and
  // memcpy's nonnull contract holds even for zero-length copies.
  if (n == 0) return;
  // Reject before multiplying: n comes off the wire, n * sizeof(Word) wraps.
  if (n > remaining() / sizeof(Word))
    throw ShardError("shard wire frame: truncated");
  std::memcpy(out, data_ + pos_, n * sizeof(Word));
  pos_ += n * sizeof(Word);
}

}  // namespace mpcspan::runtime::shard
