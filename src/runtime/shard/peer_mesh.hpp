// Worker-to-worker exchange mesh for the resident shard backend.
//
// With the peer exchange enabled (MPCSPAN_PEER_EXCHANGE, default on), every
// pair of resident workers shares a dedicated nonblocking AF_UNIX
// socketpair, created by the coordinator *before the first fork* so each
// worker can inherit exactly its own row of the mesh. After local phase-A
// validation, each worker ships its cross-shard sections straight to the
// destination workers over these sockets; the coordinator never relays a
// payload byte — it only arbitrates the round barrier (per-shard verdicts
// in, one-byte go/commit out), so per-round coordinator traffic is
// O(shards) and per-round wall-clock scales with per-shard traffic, not
// total traffic.
//
// The section row format is shared with the coordinator-relay path
// ((src, dst, len, words) per row, rows in (src asc, send-position asc)
// order within a section), and receivers merge sections in ascending source
// shard order — so peer and relay rounds are bit-identical by construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/arena.hpp"
#include "runtime/shard/transport.hpp"
#include "runtime/shard/wire.hpp"
#include "runtime/types.hpp"

namespace mpcspan::runtime::shard {

/// Switches a mesh fd to nonblocking mode (the mode meshExchange requires;
/// also used on tcp mesh fds after their blocking handshake).
void setNonBlocking(const WireFd& fd);

/// Creates the full worker mesh: one nonblocking socketpair per unordered
/// worker pair (count * (count - 1) / 2 pairs). mesh[a][b] is a's end of
/// the (a, b) pair; the diagonal stays invalid. Must run before the first
/// worker fork; worker s keeps row s and closes every other row's fds, the
/// coordinator closes the whole matrix once all workers forked.
std::vector<std::vector<WireFd>> makeMesh(std::size_t count);

/// Full-duplex one-frame-each exchange over a worker's mesh row: sends
/// peer t the frame `u64 bodyLen | u64 counts[t] | sections[t] row bytes`
/// and receives exactly one such frame from every peer, multiplexed with
/// poll() so arbitrarily large frames cannot deadlock on full socket
/// buffers (no pairwise send/recv ordering is ever relied on). Returns the
/// received frame bodies indexed by peer shard (empty reader at `self`),
/// each positioned at its leading row count. A peer that dies mid-exchange
/// (EOF, EPIPE, ECONNRESET) throws ShardError — the worker exits and the
/// coordinator turns the dropped verdict into ShardError for everyone.
/// `budget` bounds the *whole* exchange (ShardError once it expires, no
/// matter how the waits were sliced — a trickling peer spends the budget
/// rather than resetting a per-wait timer). Same-host meshes pass null /
/// an unbounded budget (peer death always surfaces as an fd event there);
/// tcp meshes pass the round's shared budget, seeded from their channel
/// deadline, so a half-open or throttled remote cannot hang the round.
std::vector<WireReader> meshExchange(std::vector<WireFd>& peers,
                                     std::size_t self,
                                     const std::vector<std::uint64_t>& counts,
                                     const std::vector<WireWriter>& sections,
                                     const DeadlineBudget* budget = nullptr);

/// Merges `count` section rows (src, dst, len, words) into the projected
/// round view: pass 1 vets every header (src in [srcLo, srcHi), dst in
/// [dstLo, dstHi), len against the bytes actually remaining — all before
/// any multiplication that could wrap) and counts rows per source; pass 2
/// rewinds and fills the exactly-reserved vectors. A corrupt frame throws
/// ShardError before any row is consumed; projected[] is only touched once
/// the whole section has been vetted.
///
/// With a non-null `arena`, multi-word payloads are copied once from the
/// frame into arena runs and delivered as Payload::borrowed — no per-row
/// heap vector. The borrowed payloads are valid until the caller resets
/// that arena (the resident workers double-buffer two delivery arenas and
/// reset the incoming one at the top of each merge, so payloads installed
/// in round N die when round N + 2 starts merging).
void mergeSectionRows(WireReader& r, std::uint64_t count, std::size_t srcLo,
                      std::size_t srcHi, std::size_t dstLo, std::size_t dstHi,
                      std::vector<std::vector<Message>>& projected,
                      Arena* arena = nullptr);

}  // namespace mpcspan::runtime::shard
