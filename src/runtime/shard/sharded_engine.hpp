// ShardedEngine — the multi-process backend of runtime::RoundEngine.
//
// The simulated machines are partitioned into contiguous shards; every round
// each shard is executed by a worker *process* (fork + socketpair, never
// exec) that runs the existing work-stealing ThreadPool over its local
// machines. Rounds are synchronized by a two-phase barrier protocol:
//
//   phase 1  validate-locally: each worker bounds-checks and
//            Topology::validateSlice()-validates the constraints owned by
//            its machine range and reports {ok, words sent} (or the error)
//            to the coordinator;
//   barrier  the coordinator collects every report before releasing anyone;
//            one failed shard aborts the round for all (the same loud
//            CapacityError the in-process engine throws);
//   phase 2  exchange cross-shard outboxes: each worker materializes the
//            deliveries of its destination range and ships them back; the
//            coordinator merges the fragments in stable (source id, send
//            position) order.
//
// Because the delivery order is fixed by that serial merge rule — never by
// process or thread scheduling — a 1-shard, N-shard, 1-thread, and N-thread
// run of the same workload are bit-identical: same rounds, same traffic
// ledger, same message contents. RoundEngine asserts nothing weaker.
//
// Workers are forked per round, not kept resident: fork gives every phase a
// copy-on-write snapshot of the full round state (outboxes, inboxes, the
// step closure), so a StepFn can *read* anything it captured without any
// marshalling. The snapshot is one-way, though — mutations a StepFn makes
// to captured state die with the worker, where the in-process path would
// persist them — so under sharding a StepFn must be pure: per-machine state
// flows only through the returned messages and the next round's inboxes
// (see RoundEngine::step). A fork costs ~100us — noise next to a simulated
// round — and a crashed or deadlocked worker can never poison the next
// round.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/shard/wire.hpp"
#include "runtime/topology.hpp"
#include "runtime/types.hpp"

namespace mpcspan::runtime::shard {

class ShardedEngine {
 public:
  /// `topology` is borrowed from the owning RoundEngine. `threadsPerShard`
  /// is the lane count of each worker's local pool (>= 1). `shards` must be
  /// in [2, numMachines] — a single shard is RoundEngine's in-process path.
  ShardedEngine(std::size_t numMachines, std::size_t shards,
                std::size_t threadsPerShard, const Topology* topology);

  std::size_t numShards() const { return shards_; }
  std::size_t threadsPerShard() const { return threadsPerShard_; }

  /// Machine range [shardBegin(s), shardEnd(s)) owned by shard s.
  std::size_t shardBegin(std::size_t s) const;
  std::size_t shardEnd(std::size_t s) const { return shardBegin(s + 1); }

  using StepFn = std::function<std::vector<Message>(
      std::size_t machine, const std::vector<Delivery>& inbox)>;

  /// One sharded synchronous round over the two-phase barrier. Returns the
  /// per-machine inboxes and writes the words moved to `roundWords` (the
  /// caller owns the ledger). Throws CapacityError / std::invalid_argument
  /// exactly as the in-process path would, and ShardError if a worker dies.
  std::vector<std::vector<Delivery>> exchange(
      const std::vector<std::vector<Message>>& outboxes,
      std::size_t& roundWords);

  /// The compute half of RoundEngine::step, sharded: runs fn over each
  /// shard's machines inside that shard's worker process (on its local
  /// pool) and returns the assembled full outboxes. An exception thrown by
  /// fn is re-thrown here as CapacityError (if it was one) or
  /// std::runtime_error — the type cannot cross the process boundary.
  std::vector<std::vector<Message>> computeOutboxes(
      const StepFn& fn, const std::vector<std::vector<Delivery>>& inboxes);

  /// The MPCSPAN_SHARDS env var (clamped to >= 1), else 1.
  static std::size_t defaultShards();

 private:
  std::size_t numMachines_;
  std::size_t shards_;
  std::size_t threadsPerShard_;
  const Topology* topology_;
};

}  // namespace mpcspan::runtime::shard
