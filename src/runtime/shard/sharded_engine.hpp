// ShardedEngine — the multi-process backend of runtime::RoundEngine.
//
// The simulated machines are partitioned into contiguous shards, each owned
// by a worker *process* (fork + socketpair, never exec) running the
// work-stealing ThreadPool over its machine range. Since PR "resident shard
// workers" the workers are **resident**: they fork once per engine — lazily,
// at the first operation that needs them, so every kernel factory and block
// registered up to that point crosses in the fork snapshot — and then stay
// alive across rounds, driven by small control frames over the wire:
//
//   REGISTER_KERNEL  bind a kernel id to a name/factory (ack'd);
//   STEP             one kernel round: compute shard-side, exchange the
//                    cross-shard sections worker-to-worker over the peer
//                    mesh (or through the coordinator relay), validate the
//                    slice, commit into the worker-resident inboxes;
//   LOCAL / FETCH    free kernel phases (no round): per-machine local
//                    compute, per-machine state readout;
//   EXCHANGE         one legacy round whose outboxes were built coordinator-
//                    side: ship each worker its sources' outboxes plus the
//                    cross-shard messages for its destinations, validate,
//                    ship the materialized deliveries back;
//   STORE/FETCH/FREE worker-owned BlockStore maintenance (DistVector);
//   SHUTDOWN         clean exit; the destructor sends it and reaps.
//
// A round is a lockstep barrier conversation. For STEP (with the default
// worker-to-worker peer exchange, MPCSPAN_PEER_EXCHANGE=1):
//   phase A  every worker runs kernel->step over its machines, buckets the
//            *cross-shard* messages into per-peer sections (own-destined
//            ones never leave), and reports only its verdict — no payload
//            goes up the coordinator wire;
//   barrier  the coordinator collects every phase-A report and broadcasts
//            one go/abort byte — one failed shard aborts the round for all
//            before any peer byte moves, resident state untouched;
//   phase B  each worker ships its sections *directly to the destination
//            workers* over the pre-forked peer mesh (runtime/shard/
//            peer_mesh.hpp), merges inbound sections in ascending source
//            shard order into the projected round view (its own sources
//            complete + inbound rows) and runs Topology::validateSlice
//            over its machine range — the same slice-validation reuse as
//            the legacy path;
//   commit   all slices valid: workers install the deliveries into their
//            resident inboxes in (source shard, src, send position) order;
//            any slice invalid: every worker discards the peer bytes it
//            received (nothing was consumed), the coordinator rethrows the
//            loud CapacityError / std::invalid_argument, the ledger is
//            never charged.
//
// The coordinator therefore only arbitrates the barrier: its per-round
// traffic is O(shards) bytes (verdicts in, go/commit bytes out), and
// per-round wall-clock scales with per-shard traffic instead of total
// traffic. MPCSPAN_PEER_EXCHANGE=0 keeps the coordinator-relay STEP (the
// sections ride the phase-A report up and the phase-B barrier frame down)
// as the bit-identical equivalence reference.
//
// Delivery order is fixed by that serial merge rule — never by process or
// thread scheduling — so 1-shard, N-shard, 1-thread, N-thread runs of one
// workload stay bit-identical: same rounds, same ledger, same contents.
//
// The legacy fork-per-round dispatch is kept behind resident == false
// (MPCSPAN_RESIDENT=0): it is the baseline the bench_micro round-latency
// probe compares against, and its fork snapshot is still how the legacy
// closure RoundEngine::step(StepFn) reads captured state (see
// computeOutboxes — a closure captured after the residents forked cannot
// reach them, so the closure compute wave still snapshots per round).
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/kernel.hpp"
#include "runtime/shard/transport.hpp"
#include "runtime/shard/wire.hpp"
#include "runtime/topology.hpp"
#include "runtime/types.hpp"

namespace mpcspan::runtime::shard {

class ShmArena;

class ShardedEngine {
 public:
  /// `topology`, `kernels`, `blocks`, and `inboxes` are borrowed from the
  /// owning RoundEngine; the worker fork snapshots whatever they hold at
  /// start() time (kernels registered, blocks created, and closure-step
  /// inboxes delivered before the first sharded round all cross for free).
  /// `threadsPerShard` is the lane count of each worker's local pool (>= 1).
  /// `shards` must be in [2, numMachines] — a single shard is RoundEngine's
  /// in-process path. `resident` selects the backend described above; false
  /// keeps the fork-per-round snapshot dispatch. `transport` routes the
  /// cross-shard sections of resident STEP rounds: kShmRing (shared-memory
  /// rings, the doorbell mesh underneath — the default), kSocketMesh (the
  /// PR-5 socket mesh, the bit-identical reference), kRelay (coordinator
  /// relay); kTcp forms the same mesh by rendezvous over TCP (loopback
  /// forks by default; MPCSPAN_TCP_REMOTE=1 awaits `mpcspan_worker`
  /// attaches instead). Irrelevant when `resident` is false. kDefault here
  /// resolves to defaultTcpExchange(), then defaultShmExchange()'s pick
  /// between the two same-host mesh kinds. `pipeline` selects the
  /// epoch-tagged pipelined STEP barrier (1), the strict reference
  /// conversation (0), or defaultPipeline() (-1); it only takes effect on
  /// the resident mesh transports — relay and fork-per-round are always
  /// strict.
  ShardedEngine(std::size_t numMachines, std::size_t shards,
                std::size_t threadsPerShard, const Topology* topology,
                bool resident = true,
                const std::vector<KernelRegistration>* kernels = nullptr,
                BlockStore* blocks = nullptr,
                const std::vector<std::vector<Delivery>>* inboxes = nullptr,
                Transport transport = Transport::kDefault, int pipeline = -1);

  /// Sends SHUTDOWN to every resident worker and reaps it (EINTR-safe);
  /// never throws, never leaks a zombie.
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  std::size_t numShards() const { return shards_; }
  std::size_t threadsPerShard() const { return threadsPerShard_; }
  bool resident() const { return resident_; }
  /// True when resident STEP rounds exchange cross-shard sections worker to
  /// worker — over either mesh kind (false: coordinator relay).
  bool peerExchange() const {
    return resident_ && transport_ != Transport::kRelay;
  }
  /// The selected cross-shard section route (already resolved — never
  /// kDefault).
  Transport transport() const { return transport_; }
  /// True when resident STEP rounds move sections through the shared-memory
  /// rings (the doorbell mesh only carries wakeup bytes).
  bool shmExchange() const {
    return resident_ && transport_ == Transport::kShmRing;
  }
  /// True when resident STEP rounds move sections over the TCP mesh (the
  /// only transport that can span machines).
  bool tcpExchange() const {
    return resident_ && transport_ == Transport::kTcp;
  }
  /// True when resident STEP rounds run the pipelined barrier: the fused
  /// epoch-tagged report/verdict conversation on every mesh transport,
  /// with workers speculatively exchanging and merging into back-buffer
  /// inboxes before the verdict lands (discarded on abort). False: the
  /// strict reference conversation (also always the case for relay and
  /// fork-per-round).
  bool pipelined() const { return peerExchange() && pipelined_; }
  /// True once the resident workers have forked (they fork lazily, at the
  /// first round / kernel / block operation).
  bool started() const { return !workers_.empty(); }
  /// Pids of the live resident workers (empty before start()); stable
  /// across rounds — the acceptance check that forking happens once.
  std::vector<pid_t> workerPids() const;

  /// Machine range [shardBegin(s), shardEnd(s)) owned by shard s, and the
  /// inverse map (the one definition of the balanced contiguous split —
  /// the coordinator's cross-shard bucketing and the workers' range checks
  /// must never drift apart).
  std::size_t shardBegin(std::size_t s) const;
  std::size_t shardEnd(std::size_t s) const { return shardBegin(s + 1); }
  std::size_t shardOf(std::size_t machine) const;

  using StepFn = std::function<std::vector<Message>(
      std::size_t machine, const std::vector<Delivery>& inbox)>;

  /// One sharded synchronous round over coordinator-built outboxes. Returns
  /// the per-machine inboxes and writes the words moved to `roundWords`
  /// (the caller owns the ledger). With `updateResident` the deliveries are
  /// also installed into the workers' resident inboxes (the step-driven
  /// variant; a raw RoundEngine::exchange leaves them alone, exactly as the
  /// in-process path leaves RoundEngine::inboxes_ alone). Throws
  /// CapacityError / std::invalid_argument exactly as the in-process path
  /// would, and ShardError if a worker dies.
  std::vector<std::vector<Delivery>> exchange(
      const std::vector<std::vector<Message>>& outboxes,
      std::size_t& roundWords, bool updateResident = false);

  /// The compute half of the legacy closure RoundEngine::step, sharded:
  /// runs fn over each shard's machines inside a *fork-per-round* worker
  /// wave (the closure and its captures exist only in the coordinator, so
  /// this wave still snapshots even when the resident backend is on) and
  /// returns the assembled full outboxes. An exception thrown by fn is
  /// re-thrown here as CapacityError (if it was one) or std::runtime_error.
  std::vector<std::vector<Message>> computeOutboxes(
      const StepFn& fn, const std::vector<std::vector<Delivery>>& inboxes);

  // --- Resident-only operations (throw std::logic_error when the legacy
  // backend is selected). ---

  /// Announces an engine-level registration to the running workers; no-op
  /// before start() (the fork snapshot carries the table). The workers
  /// resolve `name` against their registries and ack, so an unresolvable
  /// kernel fails loudly here, not mid-round.
  void registerKernel(std::size_t id, const std::string& name);

  /// One resident kernel round (the STEP barrier above). Writes the words
  /// moved to roundWords; deliveries land in the worker-resident inboxes.
  /// With `freePlacement` the round is a data-placement shuffle
  /// (RoundEngine::stepShuffle): same barrier and delivery order, but no
  /// topology validation, deliver-all even under priority-write, and
  /// roundWords stays 0 — the caller must not charge the ledger.
  void stepKernel(std::size_t id, const std::vector<Word>& args,
                  std::size_t& roundWords, bool freePlacement = false);

  /// Free kernel phases (LOCAL / FETCH): no round, no ledger.
  void localKernel(std::size_t id, const std::vector<Word>& args);
  std::vector<std::vector<Word>> fetchKernel(std::size_t id,
                                             const std::vector<Word>& args);

  /// Worker-owned BlockStore maintenance. Before start() the blocks live in
  /// the coordinator's store and cross with the fork snapshot; afterwards
  /// they move over the wire to the worker owning each machine.
  void storeBlocks(std::uint64_t handle,
                   std::vector<std::vector<Word>> perMachine);
  std::vector<std::vector<Word>> fetchBlocks(std::uint64_t handle);
  void freeBlocks(std::uint64_t handle);

  /// Ships every worker's resident inboxes back (free; diagnostics and the
  /// closure-step sync when closure and kernel rounds are interleaved).
  std::vector<std::vector<Delivery>> fetchInboxes();

  /// The MPCSPAN_SHARDS env var (clamped to >= 1), else 1.
  static std::size_t defaultShards();
  /// MPCSPAN_RESIDENT env var: 0 selects the legacy fork-per-round
  /// dispatch; anything else (or unset) the resident workers.
  static bool defaultResident();
  /// MPCSPAN_PEER_EXCHANGE env var: 0 selects the coordinator-relay STEP
  /// exchange; anything else (or unset) the worker-to-worker peer mesh.
  static bool defaultPeerExchange();
  /// MPCSPAN_SHM_EXCHANGE env var: 0 selects the socket mesh for the peer
  /// exchange; anything else (or unset) the shared-memory rings.
  static bool defaultShmExchange();
  /// MPCSPAN_TCP_EXCHANGE env var: 1 selects the TCP rendezvous mesh
  /// (default off — same-host engines keep the shm/socket fast paths).
  /// Wins over defaultShmExchange() when set.
  static bool defaultTcpExchange();
  /// MPCSPAN_PIPELINE env var: 0 selects the strict-barrier reference
  /// conversation; anything else (or unset) the pipelined barrier.
  static bool defaultPipeline();

 private:
  struct Worker {
    pid_t pid = -1;  // -1 for remote tcp workers (not ours to reap)
    Channel fd;      // coordinator end: socketpair, or the tcp control dial
  };

  /// Forks (or, for kTcp, rendezvouses) the resident workers if they are
  /// not running yet. Throws ShardError if the backend already failed (a
  /// worker died earlier).
  void start();
  /// The kTcp half of start(): listens, forks local workers (unless
  /// MPCSPAN_TCP_REMOTE=1), collects one control hello per shard, answers
  /// with the mesh roster (+ SETUP frames for remote attaches).
  void startTcp();
  /// Body of a locally forked kTcp worker: dial the rendezvous, handshake,
  /// form the mesh, run the command loop.
  void tcpWorkerMain(std::size_t s, std::uint16_t port, std::uint64_t epoch,
                     int deadlineMs);
  void requireResident(const char* op) const;
  /// Marks the backend failed, best-effort shuts down and reaps every
  /// worker, and throws ShardError built from `what`.
  [[noreturn]] void fail(const std::string& what);
  /// Runs `io` and converts any ShardError into a backend failure.
  template <typename Fn>
  auto guarded(Fn&& io) -> decltype(io());
  void shutdownWorkers() noexcept;

  /// Runs shard s's command loop (worker_loop.hpp) in the child after
  /// building its WorkerConfig and the fork-snapshot state (kernel table
  /// copy, the shard's BlockStore slice, its inbox slice). `peers` is this
  /// worker's row of the exchange mesh (empty vector when the peer
  /// exchange is off).
  void runSnapshotWorker(std::size_t s, Channel& ctrl,
                         std::vector<WireFd>& peers, int meshTimeoutMs);

  std::vector<std::vector<Delivery>> exchangeResident(
      const std::vector<std::vector<Message>>& outboxes,
      std::size_t& roundWords, bool updateResident);
  std::vector<std::vector<Delivery>> exchangeForked(
      const std::vector<std::vector<Message>>& outboxes,
      std::size_t& roundWords);

  std::size_t numMachines_;
  std::size_t shards_;
  std::size_t threadsPerShard_;
  const Topology* topology_;
  bool resident_;
  Transport transport_;
  /// Pipelined STEP barrier selected (see pipelined(); resolved at
  /// construction, may be cleared by start() if the topology cannot ride
  /// the fused barrier).
  bool pipelined_ = false;
  /// Round epoch of the STEP conversation, incremented per attempt (aborts
  /// included) in lockstep with every worker's own counter; stamped into
  /// each kOpStep frame and echoed through reports/verdicts so a desynced
  /// stream fails loudly instead of committing round r's verdict against
  /// round r+1's state.
  std::uint64_t stepEpoch_ = 0;
  bool failed_ = false;
  /// The pre-fork shared-memory arena (kShmRing only); inherited by every
  /// worker's address space, coordinator-held for teardown.
  std::unique_ptr<ShmArena> shmArena_;
  const std::vector<KernelRegistration>* kernels_;  // owner: RoundEngine
  BlockStore* blocks_;                              // owner: RoundEngine
  const std::vector<std::vector<Delivery>>* inboxes_;  // owner: RoundEngine
  std::vector<Worker> workers_;
};

}  // namespace mpcspan::runtime::shard
