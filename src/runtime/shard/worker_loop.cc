#include "runtime/shard/worker_loop.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>

#include "runtime/arena.hpp"
#include "runtime/shard/peer_mesh.hpp"
#include "runtime/shard/protocol.hpp"
#include "runtime/shard/shm_ring.hpp"
#include "runtime/thread_pool.hpp"

namespace mpcspan::runtime::shard {

std::size_t shardRangeBegin(std::size_t numMachines, std::size_t shards,
                            std::size_t s) {
  // Same balanced contiguous split as ThreadPool's lane slices.
  const std::size_t base = numMachines / shards;
  const std::size_t extra = numMachines % shards;
  return s * base + std::min(s, extra);
}

std::size_t shardOfMachine(std::size_t numMachines, std::size_t shards,
                           std::size_t machine) {
  // Inverse of shardRangeBegin: the first `extra` shards own base + 1
  // machines.
  const std::size_t base = numMachines / shards;
  const std::size_t extra = numMachines % shards;
  const std::size_t split = extra * (base + 1);
  return machine < split ? machine / (base + 1)
                         : extra + (machine - split) / base;
}

void runResidentWorker(const WorkerConfig& cfg, Channel& ctrl,
                       std::vector<WireFd>& peers,
                       std::vector<KernelRegistration> kernels,
                       BlockStore& store,
                       std::vector<std::vector<Delivery>> inboxes) {
  const std::size_t n = cfg.numMachines;
  const std::size_t s = cfg.shard;
  const std::size_t lo = shardRangeBegin(n, cfg.shards, s);
  const std::size_t hi = shardRangeEnd(n, cfg.shards, s);
  const std::size_t local = hi - lo;
  const bool priorityWrite =
      cfg.topology->mode() == Topology::Mode::kPriorityWrite;
  const bool peerMode = cfg.transport != Transport::kRelay && !peers.empty();
  const bool shmMode = peerMode && cfg.transport == Transport::kShmRing &&
                       cfg.shmArena != nullptr;
  // The intra-round deadline. The idle top-of-loop command read is
  // unbounded (an idle engine may legitimately not speak for minutes) but
  // every read *inside* a round keeps the channel's deadline, so a
  // coordinator or peer that hangs mid-round surfaces as ShardError.
  const int roundDeadline = ctrl.deadline();
  // Test-only fault injection: the named shard exits abnormally right after
  // the phase-A go, i.e. mid peer exchange from every peer's point of view.
  // Exercised by test_peer_exchange / test_tcp_transport; never set outside
  // tests.
  long dieShard = -1;
  if (const char* env = std::getenv("MPCSPAN_TEST_PEER_DIE_SHARD"))
    dieShard = std::strtol(env, nullptr, 10);

  // Worker-owned state, alive across rounds. The kernel table, block store,
  // and closure-step inboxes arrived with the fork snapshot (or the SETUP
  // frame); everything later comes over the wire.
  ThreadPool pool(cfg.threads);
  std::vector<std::unique_ptr<StepKernel>> instances(kernels.size());

  // Double-buffered delivery arenas: the merged cross-shard payloads of
  // round N live (Payload::borrowed) in deliveryArena[curArena] while the
  // resident inboxes reference them; round N + 1 merges into the *other*
  // arena after resetting it, so round N - 1's runs are freed wholesale
  // with no per-payload bookkeeping. Own-shard messages (kernel-produced)
  // stay heap/inline — only inbound rows are arena-backed. An aborted
  // round never flips, so its half-filled arena is simply reset again.
  Arena deliveryArena[2];
  std::size_t curArena = 0;

  // Double-buffered resident inboxes, flipped in lockstep with the arenas:
  // every reader (kernel phases, fetches) sees inboxBuf[curInbox], while a
  // round's deliveries are installed into the *back* buffer and only a
  // commit flips them live. That separation is what makes pipelined rounds
  // safe — a speculative pre-verdict install touches nothing a reader (or
  // an abort) can see, so discarding r+1 state after an abort at r is just
  // "don't flip".
  std::vector<std::vector<Delivery>> inboxBuf[2];
  inboxBuf[0] = std::move(inboxes);
  inboxBuf[1].resize(local);
  std::size_t curInbox = 0;

  // This worker's STEP epoch, advanced once per kOpStep attempt (aborts
  // included) in lockstep with the coordinator's counter; every frame of
  // the fused conversation is vetted against it.
  std::uint64_t stepEpoch = 0;

  auto ensureInstance = [&](std::uint64_t id) -> StepKernel& {
    if (id >= kernels.size())
      throw std::runtime_error("ShardedEngine: unknown kernel id in worker");
    if (!instances[id]) {
      const KernelRegistration& reg = kernels[id];
      KernelFactory factory = reg.factory;
      if (!factory) {
        const KernelFactory* global = findGlobalKernel(reg.name);
        if (!global)
          throw std::runtime_error(
              "kernel '" + reg.name +
              "' is not resolvable in the worker process: register it before "
              "the engine's first round, or globally (GlobalKernelRegistrar) "
              "so the fork inherits it");
        factory = *global;
      }
      instances[id] = factory();
      if (!instances[id])
        throw std::runtime_error("kernel '" + reg.name +
                                 "': factory returned null");
    }
    return *instances[id];
  };

  // Stages the deliveries of a projected round view into the *back* inbox
  // buffer, in (src, pos) order; the caller flips curInbox (and curArena)
  // to commit, or leaves them put to discard.
  auto installDeliveries =
      [&](const std::vector<std::vector<Ref>>& byDst,
          std::vector<std::vector<Message>>& projected) {
        std::vector<std::vector<Delivery>>& next = inboxBuf[1 - curInbox];
        next.assign(local, std::vector<Delivery>());
        pool.parallelFor(local, [&](std::size_t i) {
          const auto& refs = byDst[i];
          next[i].reserve(refs.size());
          for (const Ref& ref : refs)
            next[i].push_back(
                {ref.src, std::move(projected[ref.src][ref.pos].payload)});
        });
      };

  try {
    for (;;) {
      if (shmMode) spinAwaitReadable(ctrl.fd());
      ctrl.setDeadline(-1);  // idle wait: unbounded by design
      WireReader cmd = WireReader::recvFramed(ctrl);  // EOF -> ShardError
      ctrl.setDeadline(roundDeadline);
      const std::uint8_t op = cmd.u8();
      switch (op) {
        case kOpShutdown:
          return;

        case kOpRegisterKernel: {
          const std::uint64_t id = cmd.u64();
          const std::string name = cmd.str();
          std::uint8_t kind = kOk;
          std::string err;
          try {
            if (id != kernels.size())
              throw std::runtime_error(
                  "ShardedEngine: kernel id out of order in worker");
            // Append-only, even on failure: another worker may have
            // resolved this id, so removing the slot would desync the id
            // tables. A failed slot is inert — the coordinator tombstones
            // the name, so no step can ever reference it.
            kernels.push_back({name, KernelFactory{}});
            instances.emplace_back();
            ensureInstance(id);  // construct eagerly: fail at registration
          } catch (...) {
            kind = classify(err);
          }
          writeReport(ctrl, kind, err);
          break;
        }

        case kOpStep: {
          const std::uint64_t epoch = cmd.u64();
          if (epoch != stepEpoch)
            throw std::runtime_error(
                "ShardedEngine: step epoch mismatch in worker (desynced "
                "stream)");
          ++stepEpoch;
          // The round's barrier mode, decided coordinator-side: 1 = this
          // round may overlap (pipelined engine + an overlap-eligible
          // topology) and runs the fused conversation with a speculative
          // pre-verdict exchange; 0 = the strict reference conversation.
          const bool overlap = cmd.u8() != 0 && peerMode;
          const std::uint64_t kid = cmd.u64();
          // Data-placement shuffles reuse the whole STEP barrier; the flag
          // only disables validation and the priority-write drop (free
          // movement is deliver-all and never charged).
          const bool freePlacement = cmd.u8() != 0;
          const std::vector<Word> args = readArgs(cmd);
          // Fused single-report/single-verdict rounds: the shm ring always
          // (its native barrier), any mesh transport when overlapping.
          const bool fusedRound = shmMode || overlap;

          // Phase A: run the kernel over this shard's machines, keep the
          // messages, and bucket every cross-shard one straight into its
          // destination shard's section in one pass over the outboxes
          // (rows land in (src asc, send-position asc) order because the
          // scan walks machines ascending). This is the local validation
          // gate: a kernel throw or a rogue destination is reported before
          // any section leaves the worker.
          std::uint8_t kind = kOk;
          std::string err;
          std::uint64_t words = 0;
          std::vector<std::vector<Message>> own(local);
          std::vector<WireWriter> sections(cfg.shards);
          std::vector<std::uint64_t> counts(cfg.shards, 0);
          // Fused barrier: the report also carries this worker's
          // contribution to every machine's inbound words, so the
          // coordinator can run the receiver-side validation without a
          // second barrier.
          const bool wantSums =
              fusedRound && !freePlacement && cfg.topology->needsInboundSums();
          std::vector<std::uint64_t> recvWords(wantSums ? n : 0, 0);
          try {
            StepKernel& ker = ensureInstance(kid);
            pool.parallelFor(local, [&](std::size_t i) {
              own[i] = ker.step(
                  KernelCtx{lo + i, n, inboxBuf[curInbox][i], args, store});
            });
            for (std::size_t i = 0; i < local; ++i)
              for (const Message& msg : own[i]) {
                if (msg.dst >= n)
                  throw std::invalid_argument(
                      "RoundEngine: message to unknown machine");
                if (wantSums) recvWords[msg.dst] += msg.payload.size();
                if (msg.dst >= lo && msg.dst < hi) continue;
                const std::size_t t = shardOfMachine(n, cfg.shards, msg.dst);
                sections[t].row(lo + i, msg.dst, msg.payload.data(),
                                msg.payload.size());
                ++counts[t];
              }
            // Fused rounds validate sources here, pre-exchange: `own` is
            // the complete outbox set for [lo, hi), which is all the
            // source-side half needs. The receive-side half runs at the
            // coordinator over the summed report columns. (Only reachable
            // for topologies whose canOverlap() promises the split covers
            // validateSlice — see start()'s shm fallback and the per-round
            // overlap gate.)
            if (fusedRound && !freePlacement)
              words = cfg.topology->validateSources(n, own, lo);
          } catch (...) {
            kind = classify(err);
            sections.assign(cfg.shards, WireWriter());
            counts.assign(cfg.shards, 0);
          }
          // Drains every shm peer frame and, when this worker's phase A
          // succeeded, merges them into the projected view and stages the
          // deliveries in the back buffers. Shared by the strict order
          // (drain after the verdict) and the pipelined order (drain
          // speculatively before it). A ShardError (peer death, garbled
          // ring) exits the worker so the coordinator sees EOF and fails
          // with it; the rings are always left empty for the next round's
          // pre-write.
          auto drainAndStageShm = [&](ShmSendState& shmSend, bool stage,
                                      std::vector<std::vector<Message>>& ownRef) {
            std::vector<WireReader> frames =
                finishShmExchange(*cfg.shmArena, peers, s, shmSend);
            if (!stage) {
              cfg.shmArena->releaseInbound();
              return;
            }
            std::vector<std::vector<Message>> projected(n);
            for (std::size_t i = 0; i < local; ++i)
              projected[lo + i] = std::move(ownRef[i]);
            Arena& mergeArena = deliveryArena[1 - curArena];
            mergeArena.reset();
            try {
              for (std::size_t t = 0; t < cfg.shards; ++t) {
                if (t == s) continue;
                const std::uint64_t count = frames[t].u64();
                mergeSectionRows(frames[t], count,
                                 shardRangeBegin(n, cfg.shards, t),
                                 shardRangeEnd(n, cfg.shards, t), lo, hi,
                                 projected, &mergeArena);
              }
            } catch (const ShardError&) {
              throw;
            } catch (const std::exception& e) {
              // Validation is already settled source-side; a garbled frame
              // here can only be transport corruption, so fail the backend.
              throw ShardError(std::string("shm section merge: ") + e.what());
            }
            // The merge copied every inbound row out of the rings (ring
            // bytes -> arena runs, the one copy on the whole path).
            cfg.shmArena->releaseInbound();
            installDeliveries(
                indexByDst(projected, lo, hi, priorityWrite && !freePlacement),
                projected);
          };

          if (shmMode) {
            // Fused single barrier (the shm ring's native conversation).
            // Sections are pre-written into the rings and validation is
            // already split around the report (sources here, inbound sums
            // at the coordinator), so ONE report and ONE verdict frame
            // cover the whole round: every pre-write precedes its report,
            // so all frames exist before the verdict does. An abort drains
            // and discards, never touching resident state — the two-phase
            // guarantee at half the barrier waves. Pipelined rounds
            // (overlap) drain/merge/stage *before* the verdict — every
            // peer beginShmSend's unconditionally (error rounds ship empty
            // sections), so the speculative drain cannot deadlock, and it
            // only touches back buffers, so an abort discards it by simply
            // not flipping.
            if (dieShard == static_cast<long>(s)) std::_Exit(4);
            ShmSendState shmSend =
                beginShmSend(*cfg.shmArena, s, counts, sections, peers);
            {
              WireWriter r;
              r.u8(kind);
              r.u64(epoch);
              if (kind == kOk) {
                r.u64(words);
                for (const std::uint64_t w : recvWords) r.u64(w);
              } else {
                r.str(err);
              }
              r.sendFramed(ctrl);
            }
            if (overlap) drainAndStageShm(shmSend, kind == kOk, own);
            spinAwaitReadable(ctrl.fd());
            WireReader v = WireReader::recvFramed(ctrl);
            // Read the verdict byte unconditionally — error rounds must
            // still consume it, or the epoch parse shifts by one byte.
            const std::uint8_t verdict = v.u8();
            const bool commit = kind == kOk && verdict == kGo;
            if (v.u64() != epoch)
              throw ShardError(
                  "step barrier: verdict epoch mismatch (desynced stream)");
            // Strict order: drain only after the verdict, stage on commit.
            if (!overlap) drainAndStageShm(shmSend, commit, own);
            if (commit) {
              curArena = 1 - curArena;
              curInbox = 1 - curInbox;
            } else {
              inboxBuf[1 - curInbox].assign(local, std::vector<Delivery>());
            }
            break;
          }

          if (overlap) {
            // Pipelined socket/tcp mesh round: the fused conversation of
            // the shm barrier, generalized. One report up (source verdict
            // + inbound sums), then the worker speculatively exchanges and
            // merges *before* the verdict — the sections travel the mesh
            // while the coordinator is still totting up reports, and a
            // fast worker that staged its deliveries parks at the verdict
            // read, ready to flip and start round r+1's compute the moment
            // the commit frame lands, while slow peers are still merging
            // round r.
            // Test-only fault: die before the report, as every peer is
            // entering its speculative exchange — the peers see the death
            // mid-mesh and the coordinator sees it on the report read, so
            // the round (not a later one) fails for everyone.
            if (dieShard == static_cast<long>(s)) std::_Exit(4);
            {
              WireWriter r;
              r.u8(kind);
              r.u64(epoch);
              if (kind == kOk) {
                r.u64(words);
                for (const std::uint64_t w : recvWords) r.u64(w);
              } else {
                r.str(err);
              }
              r.sendFramed(ctrl);
            }
            // One communication budget for every wait left in the round,
            // created *after* the compute so a slow kernel cannot spend
            // it; a trickling peer drains it instead of resetting it.
            DeadlineBudget budget(cfg.meshTimeoutMs);
            // The exchange itself is NOT conditional on kind: a worker
            // whose phase A failed still pumps the mesh (with its cleared,
            // empty sections) so its peers' speculative drains complete —
            // they are blocked in meshExchange before they ever read their
            // abort verdict.
            std::vector<std::vector<Message>> projected(n);
            for (std::size_t i = 0; i < local; ++i)
              projected[lo + i] = std::move(own[i]);
            Arena& mergeArena = deliveryArena[1 - curArena];
            mergeArena.reset();
            std::vector<WireReader> frames =
                meshExchange(peers, s, counts, sections, &budget);
            if (kind == kOk) {
              try {
                for (std::size_t t = 0; t < cfg.shards; ++t) {
                  if (t == s) continue;
                  const std::uint64_t count = frames[t].u64();
                  mergeSectionRows(frames[t], count,
                                   shardRangeBegin(n, cfg.shards, t),
                                   shardRangeEnd(n, cfg.shards, t), lo, hi,
                                   projected, &mergeArena);
                }
              } catch (const ShardError&) {
                throw;
              } catch (const std::exception& e) {
                // Validation is settled source-side; a garbled peer frame
                // can only be transport corruption — fail the backend.
                throw ShardError(std::string("pipelined section merge: ") +
                                 e.what());
              }
              installDeliveries(
                  indexByDst(projected, lo, hi,
                             priorityWrite && !freePlacement),
                  projected);
            }
            spinAwaitReadable(ctrl.fd(), &budget);
            WireReader v = WireReader::recvFramed(ctrl);
            const std::uint8_t verdict = v.u8();
            const bool commit = kind == kOk && verdict == kGo;
            if (v.u64() != epoch)
              throw ShardError(
                  "step barrier: verdict epoch mismatch (desynced stream)");
            if (commit) {
              curArena = 1 - curArena;
              curInbox = 1 - curInbox;
            } else {
              // Abort at round r discards all speculative state: the back
              // buffers are cleared, the front buffers were never touched.
              inboxBuf[1 - curInbox].assign(local, std::vector<Delivery>());
            }
            break;
          }

          if (peerMode) {
            // Peer exchange: the report is the whole phase-A upload — the
            // sections wait for the go byte and then travel the mesh.
            writeReport(ctrl, kind, err);
          } else {
            // Coordinator relay: sections ride the report, per peer shard t
            // (ascending, skipping self): row count, raw byte length, rows.
            // The byte length lets the coordinator re-scatter without
            // walking rows.
            WireWriter a;
            a.u8(kind);
            if (kind != kOk) {
              a.str(err);
            } else {
              for (std::size_t t = 0; t < cfg.shards; ++t) {
                if (t == s) continue;
                a.u64(counts[t]);
                a.u64(sections[t].size());
                a.append(sections[t]);
              }
            }
            a.sendFramed(ctrl);
          }

          // Barrier: wait for the coordinator's verdict even after a local
          // error (lockstep). Abort means no peer byte ever moved.
          WireReader b = WireReader::recvFramed(ctrl);
          if (kind != kOk || b.u8() != kGo) break;  // round aborted

          if (peerMode && dieShard == static_cast<long>(s)) std::_Exit(4);

          // Phase B: assemble the projected round view — own sources
          // complete, inbound rows for everyone else, merged in ascending
          // source-shard order — validate this machine range, report, and
          // await the commit verdict.
          std::vector<std::vector<Message>> projected(n);
          for (std::size_t i = 0; i < local; ++i)
            projected[lo + i] = std::move(own[i]);
          Arena& mergeArena = deliveryArena[1 - curArena];
          mergeArena.reset();
          // Strict rounds spend one communication budget too: the mesh
          // waits share a single deadline seeded after phase A, so a
          // trickling peer exhausts it instead of resetting it per wait.
          DeadlineBudget budget(cfg.meshTimeoutMs);
          try {
            if (peerMode) {
              std::vector<WireReader> frames =
                  meshExchange(peers, s, counts, sections, &budget);
              for (std::size_t t = 0; t < cfg.shards; ++t) {
                if (t == s) continue;
                const std::uint64_t count = frames[t].u64();
                mergeSectionRows(frames[t], count,
                                 shardRangeBegin(n, cfg.shards, t),
                                 shardRangeEnd(n, cfg.shards, t), lo, hi,
                                 projected, &mergeArena);
              }
            } else {
              for (std::size_t t = 0; t < cfg.shards; ++t) {
                if (t == s) continue;
                const std::uint64_t count = b.u64();
                (void)b.u64();  // byte length (coordinator-side convenience)
                mergeSectionRows(b, count, shardRangeBegin(n, cfg.shards, t),
                                 shardRangeEnd(n, cfg.shards, t), lo, hi,
                                 projected, &mergeArena);
              }
            }
            if (!freePlacement)
              words = cfg.topology->validateSlice(n, projected, lo, hi);
          } catch (const ShardError&) {
            throw;  // wire/mesh corruption or peer death: exit, the
                    // coordinator sees EOF and fails the round for all
          } catch (...) {
            kind = classify(err);
          }
          writeReport(ctrl, kind, err, words);

          WireReader c = WireReader::recvFramed(ctrl);
          if (kind != kOk || c.u8() != kGo) break;  // round aborted;
                                                    // received peer bytes
                                                    // are discarded unread

          // Commit: install the deliveries into the resident inboxes. The
          // arena flip keeps this round's borrowed payloads alive until
          // the round after next resets their buffer.
          installDeliveries(
              indexByDst(projected, lo, hi, priorityWrite && !freePlacement),
              projected);
          curArena = 1 - curArena;
          curInbox = 1 - curInbox;
          break;
        }

        case kOpExchange: {
          const bool updateResident = cmd.u8() != 0;
          // The whole projected view arrives in one frame: own sources'
          // outboxes (destinations already bounds-checked by the
          // coordinator) plus inbound cross-shard rows.
          std::vector<std::vector<Message>> projected(n);
          std::uint8_t kind = kOk;
          std::string err;
          std::uint64_t words = 0;
          Arena& mergeArena = deliveryArena[1 - curArena];
          mergeArena.reset();
          try {
            parseRows<Message>(cmd, lo, hi, projected);
            // Inbound cross-shard rows: the section header's per-source
            // counts pre-reserve the projected rows, so a source fanning
            // many messages into this range never reallocates per delivery.
            const std::uint64_t count = cmd.u64();
            mergeSectionRows(cmd, count, 0, n, lo, hi, projected, &mergeArena);
            words = cfg.topology->validateSlice(n, projected, lo, hi);
          } catch (const ShardError&) {
            throw;
          } catch (...) {
            kind = classify(err);
          }
          writeReport(ctrl, kind, err, words);

          WireReader b = WireReader::recvFramed(ctrl);
          if (kind != kOk || b.u8() != kGo) break;  // round aborted

          // Commit: materialize this destination range, ship it back, and
          // (for step-driven rounds) keep it resident too.
          const std::vector<std::vector<Ref>> byDst =
              indexByDst(projected, lo, hi, priorityWrite);
          std::vector<WireWriter> fragments(local);
          pool.parallelFor(local, [&](std::size_t i) {
            WireWriter& w = fragments[i];
            w.u64(byDst[i].size());
            for (const Ref& ref : byDst[i]) {
              const Payload& p = projected[ref.src][ref.pos].payload;
              w.idRow(ref.src, p.data(), p.size());
            }
          });
          WireWriter body;
          for (const WireWriter& f : fragments) body.append(f);
          body.sendFramed(ctrl);
          if (updateResident) {
            installDeliveries(byDst, projected);
            curArena = 1 - curArena;
            curInbox = 1 - curInbox;
          }
          break;
        }

        case kOpLocal: {
          const std::uint64_t kid = cmd.u64();
          const std::vector<Word> args = readArgs(cmd);
          std::uint8_t kind = kOk;
          std::string err;
          try {
            StepKernel& ker = ensureInstance(kid);
            pool.parallelFor(local, [&](std::size_t i) {
              ker.local(
                  KernelCtx{lo + i, n, inboxBuf[curInbox][i], args, store});
            });
          } catch (...) {
            kind = classify(err);
          }
          writeReport(ctrl, kind, err);
          break;
        }

        case kOpFetchKernel: {
          const std::uint64_t kid = cmd.u64();
          const std::vector<Word> args = readArgs(cmd);
          std::uint8_t kind = kOk;
          std::string err;
          std::vector<std::vector<Word>> out(local);
          try {
            StepKernel& ker = ensureInstance(kid);
            pool.parallelFor(local, [&](std::size_t i) {
              out[i] = ker.fetch(
                  KernelCtx{lo + i, n, inboxBuf[curInbox][i], args, store});
            });
          } catch (...) {
            kind = classify(err);
          }
          WireWriter w;
          w.u8(kind);
          if (kind != kOk) {
            w.str(err);
          } else {
            for (const std::vector<Word>& block : out) {
              w.u64(block.size());
              w.words(block.data(), block.size());
            }
          }
          w.sendFramed(ctrl);
          break;
        }

        case kOpStoreBlocks: {
          const std::uint64_t handle = cmd.u64();
          std::uint8_t kind = kOk;
          std::string err;
          try {
            store.create(handle);
            for (std::size_t m = lo; m < hi; ++m) {
              const std::uint64_t len = cmd.u64();
              if (len > cmd.remaining() / sizeof(Word))
                throw ShardError("shard wire frame: corrupt block length");
              WordBuf& block = store.block(handle, m);
              block.resize(len);
              cmd.words(block.data(), len);
            }
          } catch (const ShardError&) {
            throw;
          } catch (...) {
            kind = classify(err);
          }
          writeReport(ctrl, kind, err);
          break;
        }

        case kOpFetchBlocks: {
          const std::uint64_t handle = cmd.u64();
          std::uint8_t kind = kOk;
          std::string err;
          WireWriter w;
          try {
            WireWriter rows;
            for (std::size_t m = lo; m < hi; ++m) {
              const WordBuf& block = store.block(handle, m);
              rows.u64(block.size());
              rows.words(block.data(), block.size());
            }
            w.u8(kOk);
            w.append(rows);
          } catch (...) {
            kind = classify(err);
            w = WireWriter();
            w.u8(kind);
            w.str(err);
          }
          w.sendFramed(ctrl);
          break;
        }

        case kOpFreeBlocks: {
          const std::uint64_t handle = cmd.u64();
          store.erase(handle);
          writeReport(ctrl, kOk, std::string());
          break;
        }

        case kOpFetchInboxes: {
          WireWriter w;
          for (const std::vector<Delivery>& inbox : inboxBuf[curInbox]) {
            w.u64(inbox.size());
            for (const Delivery& d : inbox) {
              w.u64(d.src);
              w.u64(d.payload.size());
              w.words(d.payload.data(), d.payload.size());
            }
          }
          w.sendFramed(ctrl);
          break;
        }

        default:
          throw std::runtime_error(
              "ShardedEngine: unknown opcode in worker (protocol bug)");
      }
    }
  } catch (const ShardError&) {
    // Coordinator closed the wire (engine destroyed or died) — clean exit.
    return;
  }
}

// ---------------------------------------------------------------------------
// Remote provisioning (kOpSetup): the fork snapshot, serialized.
// ---------------------------------------------------------------------------

void sendWorkerSetup(Channel& ch, std::size_t numMachines, std::size_t shards,
                     std::size_t shard, std::size_t threads,
                     const Topology& topology,
                     const std::vector<KernelRegistration>* kernels,
                     const BlockStore* blocks,
                     const std::vector<std::vector<Delivery>>* inboxes,
                     bool pipelined) {
  if (topology.wireKind() == Topology::WireKind::kOpaque)
    throw ShardError(
        "tcp remote workers need a wire-serializable topology (a custom "
        "Topology subclass cannot cross machines)");
  const std::size_t lo = shardRangeBegin(numMachines, shards, shard);
  const std::size_t hi = shardRangeEnd(numMachines, shards, shard);
  WireWriter w;
  w.u8(kOpSetup);
  w.u64(numMachines);
  w.u64(shards);
  w.u64(shard);
  w.u64(threads);
  w.u8(pipelined ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(topology.wireKind()));
  w.u64(topology.wireParam());
  const std::size_t kernelCount = kernels ? kernels->size() : 0;
  w.u64(kernelCount);
  for (std::size_t k = 0; k < kernelCount; ++k) w.str((*kernels)[k].name);
  const std::vector<std::uint64_t> handles =
      blocks ? blocks->handles() : std::vector<std::uint64_t>{};
  w.u64(handles.size());
  for (const std::uint64_t h : handles) {
    w.u64(h);
    for (std::size_t m = lo; m < hi; ++m) {
      const WordBuf& block = blocks->block(h, m);
      w.u64(block.size());
      w.words(block.data(), block.size());
    }
  }
  const bool haveInboxes = inboxes && inboxes->size() == numMachines;
  for (std::size_t m = lo; m < hi; ++m) {
    if (!haveInboxes) {
      w.u64(0);
      continue;
    }
    const std::vector<Delivery>& inbox = (*inboxes)[m];
    w.u64(inbox.size());
    for (const Delivery& d : inbox) {
      w.u64(d.src);
      w.u64(d.payload.size());
      w.words(d.payload.data(), d.payload.size());
    }
  }
  w.sendFramed(ch);
}

RemoteSetup readWorkerSetup(Channel& ch) {
  WireReader r = WireReader::recvFramed(ch);
  if (r.u8() != kOpSetup)
    throw ShardError("tcp setup: expected a SETUP frame (protocol desync)");
  RemoteSetup setup;
  setup.cfg.numMachines = r.u64();
  setup.cfg.shards = r.u64();
  setup.cfg.shard = r.u64();
  setup.cfg.threads = r.u64();
  if (setup.cfg.numMachines == 0 || setup.cfg.shards < 2 ||
      setup.cfg.shards > setup.cfg.numMachines ||
      setup.cfg.shard >= setup.cfg.shards || setup.cfg.threads == 0)
    throw ShardError("tcp setup: implausible engine dimensions");
  setup.cfg.pipelined = r.u8() != 0;
  const std::uint8_t topoKind = r.u8();
  const std::uint64_t topoParam = r.u64();
  try {
    setup.topology = makeWireTopology(topoKind, topoParam);
  } catch (const std::exception& e) {
    throw ShardError(std::string("tcp setup: ") + e.what());
  }
  setup.cfg.topology = setup.topology.get();
  setup.cfg.transport = Transport::kTcp;
  const std::uint64_t kernelCount = r.u64();
  // A serialized kernel entry is at least its 8-byte name-length prefix.
  if (kernelCount > r.remaining() / sizeof(std::uint64_t))
    throw ShardError("tcp setup: corrupt kernel count");
  setup.kernels.reserve(kernelCount);
  for (std::uint64_t k = 0; k < kernelCount; ++k)
    setup.kernels.push_back({r.str(), KernelFactory{}});
  setup.store = std::make_unique<BlockStore>(setup.cfg.numMachines);
  const std::size_t lo =
      shardRangeBegin(setup.cfg.numMachines, setup.cfg.shards, setup.cfg.shard);
  const std::size_t hi =
      shardRangeEnd(setup.cfg.numMachines, setup.cfg.shards, setup.cfg.shard);
  const std::uint64_t handleCount = r.u64();
  if (handleCount > r.remaining() / sizeof(std::uint64_t))
    throw ShardError("tcp setup: corrupt block handle count");
  for (std::uint64_t i = 0; i < handleCount; ++i) {
    const std::uint64_t h = r.u64();
    setup.store->create(h);
    for (std::size_t m = lo; m < hi; ++m) {
      const std::uint64_t len = r.u64();
      if (len > r.remaining() / sizeof(Word))
        throw ShardError("tcp setup: corrupt block length");
      WordBuf& block = setup.store->block(h, m);
      block.resize(len);
      r.words(block.data(), len);
    }
  }
  setup.inboxes.resize(hi - lo);
  for (std::size_t i = 0; i < hi - lo; ++i) {
    const std::uint64_t count = r.u64();
    if (count > r.remaining() / (2 * sizeof(std::uint64_t)))
      throw ShardError("tcp setup: corrupt inbox count");
    setup.inboxes[i].reserve(count);
    std::vector<Word> scratch;
    for (std::uint64_t d = 0; d < count; ++d) {
      const std::uint64_t src = r.u64();
      const std::uint64_t len = r.u64();
      if (len > r.remaining() / sizeof(Word))
        throw ShardError("tcp setup: corrupt delivery length");
      scratch.resize(len);
      r.words(scratch.data(), len);
      setup.inboxes[i].push_back(
          {static_cast<std::size_t>(src), Payload(scratch.data(), len)});
    }
  }
  return setup;
}

}  // namespace mpcspan::runtime::shard
