// TCP rendezvous for the sharded engine: the connector half of the
// Transport::kTcp path, replacing pre-fork fd inheritance so shards can live
// on other machines.
//
// Shape of a rendezvous (coordinator = the engine process, one worker per
// shard; workers are either fork()ed locally or attached remotely by
// `mpcspan_worker --connect host:port --shard k`):
//
//   1. The coordinator listens on MPCSPAN_TCP_PORT (0 / unset = ephemeral).
//   2. Each worker opens its own ephemeral *mesh* listener, dials the
//      coordinator, and sends a control hello:
//        u64 magic "MPCSPAN1" | u8 version | u64 shard | u64 epoch |
//        u64 mesh-listener port
//      epoch 0 means "attach me" (remote workers cannot know the epoch);
//      forked workers echo the epoch they inherited, and anything else is a
//      stale/foreign dial the coordinator rejects with ShardError.
//   3. Once every shard has checked in, the coordinator answers each with a
//      roster: u64 magic | u8 version | u64 epoch | u64 shards |
//      shards x (str host + u64 mesh port). Remote attachers additionally
//      get a SETUP frame (see worker_loop.hpp) carrying the engine state a
//      fork snapshot would have given them.
//   4. Workers dial each other to form the full mesh — shard s dials every
//      t < s and accepts from every t > s (deadlock-free: connects complete
//      against the listen backlog) — each connection opening with a mesh
//      hello (magic | version | shard | epoch) + one ack byte.
//
// Every blocking wait in the rendezvous and in the per-round traffic runs
// under a poll deadline (MPCSPAN_TCP_TIMEOUT_MS); a refused dial, a
// half-open peer, or a hello from the wrong epoch surfaces as ShardError,
// never a hang.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/shard/transport.hpp"

namespace mpcspan::runtime::shard {

/// First field of every tcp hello ("MPCSPAN1" as a host-endian u64): a
/// stray client dialing the port fails the handshake immediately instead of
/// being interpreted as a shard.
constexpr std::uint64_t kTcpMagic = 0x314e415053504d4dull;
/// Bumped whenever a control or mesh frame changes shape; remote workers
/// from an older build are rejected at the handshake.
constexpr std::uint8_t kTcpVersion = 2;

/// MPCSPAN_TCP_TIMEOUT_MS (default 30000): per-blocking-wait deadline for
/// every tcp channel.
int defaultTcpTimeoutMs();
/// MPCSPAN_TCP_PORT (default 0 = kernel-assigned): the coordinator's
/// rendezvous port. Remote workers must be pointed at a fixed value.
std::uint16_t defaultTcpPort();
/// MPCSPAN_TCP_REMOTE=1: the coordinator forks nothing and instead waits
/// for every shard to attach via mpcspan_worker.
bool defaultTcpRemote();

/// Nonzero, unique-per-engine rendezvous epoch (pid + counter mix). Zero is
/// reserved as the remote worker's "attach me" hello value.
std::uint64_t makeTcpEpoch();

/// Listening IPv4 stream socket (INADDR_ANY); owns and closes the fd.
class TcpListener {
 public:
  TcpListener() = default;
  /// Binds and listens; port 0 asks the kernel for an ephemeral port
  /// (read back via port()). Throws ShardError on failure.
  explicit TcpListener(std::uint16_t port);

  bool valid() const { return fd_.valid(); }
  std::uint16_t port() const { return port_; }
  /// Closes the listener (also used by forked workers to drop the
  /// coordinator listener they inherited).
  void reset() { fd_.reset(); }

  /// Accepts one connection within deadlineMs (ShardError on expiry);
  /// the returned fd has TCP_NODELAY + SO_KEEPALIVE set.
  WireFd accept(int deadlineMs);

 private:
  WireFd fd_;
  std::uint16_t port_ = 0;
};

/// Dials host:port within deadlineMs. A refused, unreachable, or timed-out
/// connect throws ShardError; the returned fd is blocking with
/// TCP_NODELAY + SO_KEEPALIVE set.
WireFd tcpConnect(const std::string& host, std::uint16_t port, int deadlineMs);

/// The worker->coordinator control hello (step 2 above).
struct TcpHello {
  std::uint64_t shard = 0;
  std::uint64_t epoch = 0;  // 0 = remote attach request
  std::uint16_t meshPort = 0;
};

/// One roster row: where shard k's mesh listener can be dialed.
struct TcpPeerAddr {
  std::string host;
  std::uint16_t port = 0;
};

void sendControlHello(Channel& ch, const TcpHello& hello);
/// Vets magic + version (ShardError on mismatch); epoch/shard semantics are
/// the caller's to enforce.
TcpHello readControlHello(Channel& ch);

void sendRoster(Channel& ch, std::uint64_t epoch,
                const std::vector<TcpPeerAddr>& roster);
/// Vets magic + version and, when expectedEpoch != 0, the epoch too.
std::vector<TcpPeerAddr> readRoster(Channel& ch, std::uint64_t expectedEpoch,
                                    std::uint64_t* epochOut);

/// Forms shard `self`'s mesh row (step 4): dials roster[t] for t < self,
/// accepts the rest on meshListener, handshakes every connection against
/// `epoch`, and returns the fds nonblocking — ready for meshExchange().
/// peers[self] is left invalid.
std::vector<WireFd> formTcpMesh(std::size_t self, std::uint64_t epoch,
                                TcpListener& meshListener,
                                const std::vector<TcpPeerAddr>& roster,
                                int deadlineMs);

/// Numeric address of the connected peer ("127.0.0.1" style) — what the
/// coordinator advertises in the roster as a worker's mesh host.
std::string peerHostOf(int fd);

}  // namespace mpcspan::runtime::shard
