#include "runtime/shard/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "runtime/shard/peer_mesh.hpp"

namespace mpcspan::runtime::shard {

namespace {

long envLong(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

[[noreturn]] void throwErrno(const std::string& what) {
  throw ShardError(what + ": " + std::strerror(errno));
}

/// TCP_NODELAY (barrier bytes must not sit in Nagle buffers) and
/// SO_KEEPALIVE (an idle channel to a silently dead remote eventually
/// errors instead of staying half-open forever).
void tuneTcpFd(int fd) {
  int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  (void)::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
}

void awaitFd(int fd, short events, int deadlineMs, const char* what) {
  // The deadline is absolute: an EINTR restart polls only for the time
  // still remaining, so a signal-heavy process (the serving daemon's
  // SIGHUP reloads, profilers) cannot extend the wait past deadlineMs.
  const util::DeadlineBudget budget(deadlineMs);
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, budget.remainingMs());
    if (rc < 0) {
      if (errno == EINTR) continue;
      throwErrno(std::string(what) + " poll");
    }
    if (rc == 0)
      throw ShardError(std::string(what) + " timed out after " +
                       std::to_string(deadlineMs) + " ms");
    return;
  }
}

}  // namespace

int defaultTcpTimeoutMs() {
  const long ms = envLong("MPCSPAN_TCP_TIMEOUT_MS", 30000);
  return ms > 0 ? static_cast<int>(ms) : 30000;
}

std::uint16_t defaultTcpPort() {
  const long p = envLong("MPCSPAN_TCP_PORT", 0);
  return (p > 0 && p <= 65535) ? static_cast<std::uint16_t>(p) : 0;
}

bool defaultTcpRemote() { return envLong("MPCSPAN_TCP_REMOTE", 0) == 1; }

std::uint64_t makeTcpEpoch() {
  static std::atomic<std::uint64_t> counter{0};
  // pid in the high bits separates concurrent engines on one host; the
  // counter separates successive engines in one process; the clock guards
  // against pid reuse across coordinator restarts.
  std::uint64_t e = (static_cast<std::uint64_t>(::getpid()) << 40) ^
                    (counter.fetch_add(1) << 20) ^
                    static_cast<std::uint64_t>(std::time(nullptr));
  if (e == 0) e = 1;  // 0 is the "attach me" sentinel
  return e;
}

TcpListener::TcpListener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throwErrno("tcp listener socket");
  fd_.reset(fd);
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    throwErrno("tcp listener bind (port " + std::to_string(port) + ")");
  if (::listen(fd, SOMAXCONN) != 0) throwErrno("tcp listener listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throwErrno("tcp listener getsockname");
  port_ = ntohs(addr.sin_port);
}

WireFd TcpListener::accept(int deadlineMs) {
  awaitFd(fd_.fd(), POLLIN, deadlineMs, "tcp rendezvous accept");
  for (;;) {
    const int conn = ::accept4(fd_.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) {
      if (errno == EINTR) continue;
      throwErrno("tcp rendezvous accept");
    }
    tuneTcpFd(conn);
    return WireFd(conn);
  }
}

WireFd tcpConnect(const std::string& host, std::uint16_t port,
                  int deadlineMs) {
  const std::string where = host + ":" + std::to_string(port);
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int gai =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &res);
  if (gai != 0 || res == nullptr)
    throw ShardError("tcp connect to " + where +
                     ": resolve failed: " + ::gai_strerror(gai));
  sockaddr_storage addr{};
  const socklen_t addrLen = static_cast<socklen_t>(res->ai_addrlen);
  std::memcpy(&addr, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);

  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) throwErrno("tcp connect socket");
  WireFd owned(fd);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), addrLen) != 0) {
    if (errno != EINPROGRESS)
      throwErrno("tcp connect to " + where);
    awaitFd(fd, POLLOUT, deadlineMs, ("tcp connect to " + where).c_str());
    int err = 0;
    socklen_t errLen = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errLen) != 0)
      throwErrno("tcp connect getsockopt");
    if (err != 0)
      throw ShardError("tcp connect to " + where + ": " +
                       std::strerror(err));
  }
  // Back to blocking: Channel decides the pacing from here.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) < 0)
    throwErrno("tcp connect fcntl");
  tuneTcpFd(fd);
  return owned;
}

void sendControlHello(Channel& ch, const TcpHello& hello) {
  WireWriter w;
  w.u64(kTcpMagic);
  w.u8(kTcpVersion);
  w.u64(hello.shard);
  w.u64(hello.epoch);
  w.u64(hello.meshPort);
  w.sendFramed(ch);
}

namespace {

void vetMagicVersion(WireReader& r, const char* what) {
  if (r.u64() != kTcpMagic)
    throw ShardError(std::string(what) +
                     ": bad magic (not an mpcspan shard peer)");
  const std::uint8_t version = r.u8();
  if (version != kTcpVersion)
    throw ShardError(std::string(what) + ": protocol version " +
                     std::to_string(version) + " != " +
                     std::to_string(kTcpVersion) +
                     " (mixed builds across machines?)");
}

}  // namespace

TcpHello readControlHello(Channel& ch) {
  WireReader r = WireReader::recvFramed(ch);
  vetMagicVersion(r, "tcp control handshake");
  TcpHello hello;
  hello.shard = r.u64();
  hello.epoch = r.u64();
  const std::uint64_t meshPort = r.u64();
  if (meshPort == 0 || meshPort > 65535)
    throw ShardError("tcp control handshake: implausible mesh port " +
                     std::to_string(meshPort));
  hello.meshPort = static_cast<std::uint16_t>(meshPort);
  return hello;
}

void sendRoster(Channel& ch, std::uint64_t epoch,
                const std::vector<TcpPeerAddr>& roster) {
  WireWriter w;
  w.u64(kTcpMagic);
  w.u8(kTcpVersion);
  w.u64(epoch);
  w.u64(roster.size());
  for (const TcpPeerAddr& peer : roster) {
    w.str(peer.host);
    w.u64(peer.port);
  }
  w.sendFramed(ch);
}

std::vector<TcpPeerAddr> readRoster(Channel& ch, std::uint64_t expectedEpoch,
                                    std::uint64_t* epochOut) {
  WireReader r = WireReader::recvFramed(ch);
  vetMagicVersion(r, "tcp roster");
  const std::uint64_t epoch = r.u64();
  if (expectedEpoch != 0 && epoch != expectedEpoch)
    throw ShardError("tcp roster: epoch mismatch (stale rendezvous?)");
  const std::uint64_t count = r.u64();
  if (count == 0 || count > r.remaining())
    throw ShardError("tcp roster: implausible shard count");
  std::vector<TcpPeerAddr> roster(count);
  for (TcpPeerAddr& peer : roster) {
    peer.host = r.str();
    const std::uint64_t port = r.u64();
    if (port == 0 || port > 65535)
      throw ShardError("tcp roster: implausible mesh port");
    peer.port = static_cast<std::uint16_t>(port);
  }
  if (epochOut != nullptr) *epochOut = epoch;
  return roster;
}

std::vector<WireFd> formTcpMesh(std::size_t self, std::uint64_t epoch,
                                TcpListener& meshListener,
                                const std::vector<TcpPeerAddr>& roster,
                                int deadlineMs) {
  const std::size_t count = roster.size();
  std::vector<WireFd> peers(count);
  // Dial every lower shard; its hello identifies us, its ack confirms the
  // epoch matched on the far side.
  for (std::size_t t = 0; t < self; ++t) {
    Channel ch(tcpConnect(roster[t].host, roster[t].port, deadlineMs),
               deadlineMs);
    WireWriter w;
    w.u64(kTcpMagic);
    w.u8(kTcpVersion);
    w.u64(self);
    w.u64(epoch);
    w.sendFramed(ch);
    std::uint8_t ack = 0;
    ch.readAll(&ack, 1);
    if (ack != 1)
      throw ShardError("tcp mesh handshake: shard " + std::to_string(t) +
                       " refused the dial");
    peers[t] = ch.release();
  }
  // Accept every higher shard; the hello says which one arrived (dial order
  // across peers is not deterministic).
  for (std::size_t pending = count - self - 1; pending > 0; --pending) {
    Channel ch(meshListener.accept(deadlineMs), deadlineMs);
    WireReader r = WireReader::recvFramed(ch);
    vetMagicVersion(r, "tcp mesh handshake");
    const std::uint64_t from = r.u64();
    const std::uint64_t fromEpoch = r.u64();
    if (fromEpoch != epoch)
      throw ShardError("tcp mesh handshake: dial from stale epoch");
    if (from <= self || from >= count || peers[from].valid())
      throw ShardError("tcp mesh handshake: unexpected shard id " +
                       std::to_string(from));
    const std::uint8_t ack = 1;
    ch.writeAll(&ack, 1);
    peers[from] = ch.release();
  }
  // meshExchange drives these fds with poll + nonblocking pumps.
  for (std::size_t t = 0; t < count; ++t)
    if (peers[t].valid()) setNonBlocking(peers[t]);
  return peers;
}

std::string peerHostOf(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throwErrno("tcp getpeername");
  char buf[INET_ADDRSTRLEN] = {0};
  if (::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) == nullptr)
    throwErrno("tcp inet_ntop");
  return std::string(buf);
}

}  // namespace mpcspan::runtime::shard
