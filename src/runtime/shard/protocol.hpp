// Wire protocol shared by the sharded-engine coordinator, the resident
// worker loop, and the standalone `mpcspan_worker` attach tool: control
// opcodes, barrier verdicts, error-kind tags, and the frame helpers both
// sides use to speak them.
//
// Everything here used to live in sharded_engine.cc's anonymous namespace;
// it moved out when Transport::kTcp made the worker loop reachable from a
// *different binary* (tools/mpcspan_worker), which must agree with the
// coordinator on every byte. The frame helpers are templated over the wire
// type so the same code drives a raw WireFd (fork-per-round waves) and a
// Channel (resident workers, deadline-paced tcp channels).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/shard/wire.hpp"
#include "runtime/types.hpp"
#include "util/deadline.hpp"

namespace mpcspan::runtime::shard {

// Error kinds carried in a worker's report headers. The exception type
// cannot cross the process boundary, so it travels as a tag and is re-thrown
// coordinator-side.
inline constexpr std::uint8_t kOk = 0;
inline constexpr std::uint8_t kCapacityKind = 1;
inline constexpr std::uint8_t kBoundsKind = 2;
inline constexpr std::uint8_t kOtherKind = 3;
inline constexpr std::uint8_t kRangeKind = 4;

// Control-frame opcodes of the resident worker protocol (first byte of
// every coordinator -> worker frame).
inline constexpr std::uint8_t kOpExchange = 1;
inline constexpr std::uint8_t kOpStep = 2;
inline constexpr std::uint8_t kOpLocal = 3;
inline constexpr std::uint8_t kOpFetchKernel = 4;
inline constexpr std::uint8_t kOpRegisterKernel = 5;
inline constexpr std::uint8_t kOpStoreBlocks = 6;
inline constexpr std::uint8_t kOpFetchBlocks = 7;
inline constexpr std::uint8_t kOpFreeBlocks = 8;
inline constexpr std::uint8_t kOpFetchInboxes = 9;
inline constexpr std::uint8_t kOpShutdown = 10;
// Remote-attach provisioning: the engine state a fork snapshot would have
// carried (dimensions, topology descriptor, kernel names, blocks, inboxes),
// sent to a worker that dialed in over tcp instead of being forked. See
// worker_loop.hpp.
inline constexpr std::uint8_t kOpSetup = 11;

// Barrier verdicts (1-byte frame bodies). Only kGo commits; any other value
// (including a stray opcode) reads as abort, so a desynced stream can never
// be mistaken for a commit.
inline constexpr std::uint8_t kAbort = 0;
inline constexpr std::uint8_t kGo = 1;

/// One worker's {kind, words | error} report.
struct Report {
  std::uint8_t kind = kOk;
  std::uint64_t words = 0;
  std::string err;
};

/// Re-throws a reported error coordinator-side with its original type.
[[noreturn]] void rethrow(std::uint8_t kind, const std::string& msg);

/// Classifies an in-flight exception for the wire (the inverse of rethrow).
/// Must be called from inside a catch block.
std::uint8_t classify(std::string& err);

/// Briefly spin-polls a wire for readability before the caller blocks on
/// it. The fused shm barrier turns a round into pure hand-offs (reports
/// up, one verdict byte down); letting each side stay runnable while the
/// other finishes converts those hand-offs into cheap runqueue rotations
/// instead of sleep/wake cycles — a woken sleeper preempts its waker, so
/// blocking doubles the context switches per round. Bounded: an idle
/// engine still parks in the normal blocking read. A non-null `budget`
/// (the round's shared deadline budget) stops the spin early once the
/// round is out of time, so the expiry surfaces from the blocking read
/// instead of being hidden behind yields.
void spinAwaitReadable(int fd, const util::DeadlineBudget* budget = nullptr);

/// Broadcast kernel args on the wire: u64 count + words.
void writeArgs(WireWriter& w, const std::vector<Word>& args);
std::vector<Word> readArgs(WireReader& r);

/// Serializes one machine's outbox section in the parseRows format.
void writeRows(WireWriter& w, const std::vector<Message>& outbox);

/// Reference to one message of a projected round view, in global delivery
/// order (source id, send position).
struct Ref {
  std::uint32_t src;
  std::uint32_t pos;
};

/// Index pass over a projected view: per local destination d in [lo, hi),
/// the refs of its deliveries in (src, pos) order — which *is* the
/// in-process delivery order, because projection preserves each source's
/// send-position order and the scan walks sources ascending. Under
/// priority-write only the first ref per destination is kept.
std::vector<std::vector<Ref>> indexByDst(
    const std::vector<std::vector<Message>>& projected, std::size_t lo,
    std::size_t hi, bool priorityWrite);

/// Parses one shard's per-machine section of a frame into rows[m] for m in
/// [lo, hi): a u64 count, then (u64 id, u64 len, len words) per row. Row is
/// Message (id = dst) or Delivery (id = src). Wire-supplied sizes are vetted
/// against the frame's remaining bytes before sizing any container, so a
/// corrupt frame throws ShardError, never bad_alloc.
template <class Row>
void parseRows(WireReader& r, std::size_t lo, std::size_t hi,
               std::vector<std::vector<Row>>& rows) {
  std::vector<Word> scratch;
  for (std::size_t m = lo; m < hi; ++m) {
    const std::uint64_t count = r.u64();
    // A row is at least two u64s.
    if (count > r.remaining() / (2 * sizeof(std::uint64_t)))
      throw ShardError("shard wire frame: corrupt row count");
    rows[m].reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t id = r.u64();
      const std::uint64_t len = r.u64();
      if (len > r.remaining() / sizeof(Word))
        throw ShardError("shard wire frame: corrupt payload length");
      scratch.resize(len);
      r.words(scratch.data(), len);
      rows[m].push_back(
          {static_cast<std::size_t>(id), Payload(scratch.data(), len)});
    }
  }
}

/// Sends a {kind, words | error} report. Wire is WireFd or Channel.
template <class Wire>
void writeReport(Wire& fd, std::uint8_t kind, const std::string& err,
                 std::uint64_t words = 0) {
  WireWriter w;
  w.u8(kind);
  if (kind == kOk)
    w.u64(words);
  else
    w.str(err);
  w.sendFramed(fd);
}

template <class Wire>
Report readReport(Wire& fd) {
  WireReader r = WireReader::recvFramed(fd);
  Report rep;
  rep.kind = r.u8();
  if (rep.kind == kOk)
    rep.words = r.u64();
  else
    rep.err = r.str();
  return rep;
}

}  // namespace mpcspan::runtime::shard
