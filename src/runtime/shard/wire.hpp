// Byte-level transport between the ShardedEngine coordinator and its shard
// workers: an owned stream-socket end plus length-framed message helpers.
//
// The framing is deliberately dumb — host-endian u64/u8 fields appended to a
// flat buffer, sent as one `u64 length + body` frame per protocol phase —
// because both ends are always the same binary (workers are fork()ed or run
// the same-build mpcspan_worker; the tcp handshake's version byte pins the
// latter). Every helper throws ShardError on short reads/writes or peer
// death; the engine converts that into a loud round failure rather than a
// hang. WireFd is the raw fd-pair implementation; transport.hpp's Channel
// wraps it with optional poll deadlines for fds that cross a real network.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/types.hpp"

namespace mpcspan::runtime::shard {

class Channel;  // transport.hpp — deadline-aware wrapper over a WireFd

/// Transport-layer failure between the coordinator and a shard worker (a
/// worker died mid-round, a socket broke). Distinct from CapacityError: this
/// is an infrastructure fault, not an algorithm/model violation.
class ShardError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A legitimate frame serializes a subset of round state that already fits
/// in the sending process's memory; a length beyond this cap can only be a
/// garbled prefix. Both the coordinator wire and the worker mesh reject it
/// as ShardError instead of attempting a zero-filled overcommit allocation.
constexpr std::uint64_t kMaxFrameBytes = 1ull << 34;  // 16 GiB

/// One end of a shard socketpair; owns and closes the fd.
class WireFd {
 public:
  WireFd() = default;
  explicit WireFd(int fd) : fd_(fd) {}
  ~WireFd() { reset(); }

  WireFd(const WireFd&) = delete;
  WireFd& operator=(const WireFd&) = delete;
  WireFd(WireFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  WireFd& operator=(WireFd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void reset(int fd = -1);

  /// Blocking full-buffer send/recv (EINTR-safe, SIGPIPE suppressed).
  /// Throws ShardError on EOF, peer death, or any socket error.
  void writeAll(const void* buf, std::size_t n);
  void readAll(void* buf, std::size_t n);

  /// Gathered full send of two buffers (EINTR-safe, SIGPIPE suppressed):
  /// one sendmsg covers header + body, so a frame that fits the socket
  /// buffer costs one syscall instead of two writeAll round trips.
  void writeAll2(const void* hdr, std::size_t nHdr, const void* body,
                 std::size_t nBody);

 private:
  int fd_ = -1;
};

/// Creates a connected AF_UNIX stream socketpair (parent end, child end).
void makeSocketPair(WireFd& parentEnd, WireFd& childEnd);

/// Append-only frame builder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u64(std::uint64_t v);
  void words(const Word* p, std::size_t n);
  void str(const std::string& s);
  /// Raw byte append (re-scattering a slice another frame carried).
  void bytes(const std::uint8_t* p, std::size_t n);

  /// One (a, b, payload-length) header triple plus the payload words — the
  /// row format of the cross-shard sections — appended with two bulk
  /// inserts instead of four per-field ones (the resident hot path).
  void row(std::uint64_t a, std::uint64_t b, const Word* w, std::size_t n);
  /// One (id, payload-length) header pair plus the payload words (the
  /// two-field row of own-outbox / delivery sections).
  void idRow(std::uint64_t id, const Word* w, std::size_t n);

  /// Appends another writer's buffer verbatim (used to concatenate
  /// per-destination fragments built in parallel).
  void append(const WireWriter& other);

  /// Pre-sizes the buffer for a frame whose byte length is known (or
  /// bounded) upfront, so the hot row loops never reallocate mid-build.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  std::size_t size() const { return buf_.size(); }
  const std::uint8_t* data() const { return buf_.data(); }

  /// Sends `u64 length + body` as one frame (one gathered syscall).
  void sendFramed(WireFd& fd) const;
  /// Same frame over a Channel, honoring its deadline (defined in
  /// transport.cc — wire.cc stays fd-only).
  void sendFramed(Channel& ch) const;

 private:
  std::vector<std::uint8_t> buf_;
};

/// Cursor over one received frame. Either owns its bytes (recvFramed /
/// fromBytes) or is a non-owning view over bytes someone else owns
/// (view — the shm ring hands out frames in place, so the merge path
/// never copies them into a reader first). Same vetting either way.
class WireReader {
 public:
  static WireReader recvFramed(WireFd& fd);
  /// Same frame receive over a Channel, honoring its deadline (defined in
  /// transport.cc).
  static WireReader recvFramed(Channel& ch);
  /// Wraps an already-received (or test-crafted) frame body; the mesh
  /// exchange collects peer frames itself and hands the bytes here.
  static WireReader fromBytes(std::vector<std::uint8_t> bytes);
  /// Non-owning view: the caller guarantees [p, p + n) outlives every read
  /// (the shm exchange keeps the ring span reserved until the merge is
  /// done — see ShmArena::releaseInbound).
  static WireReader view(const std::uint8_t* p, std::size_t n);

  WireReader() = default;
  WireReader(const WireReader&) = delete;
  WireReader& operator=(const WireReader&) = delete;
  WireReader(WireReader&& o) noexcept { moveFrom(o); }
  WireReader& operator=(WireReader&& o) noexcept {
    if (this != &o) moveFrom(o);
    return *this;
  }

  std::uint8_t u8();
  std::uint64_t u64();
  std::string str();
  /// Reads n words into out (which must have room for n).
  void words(Word* out, std::size_t n);
  /// Vets and consumes n bytes (n is wire-supplied), returning a pointer
  /// into the frame buffer (valid while this reader lives) — copy-free
  /// re-scattering.
  const std::uint8_t* raw(std::size_t n);
  bool atEnd() const { return pos_ == size_; }
  /// Unread bytes left in the frame — lets callers sanity-check a
  /// wire-supplied element count before sizing containers by it.
  std::size_t remaining() const { return size_ - pos_; }
  /// Cursor save/restore for two-pass parses (vet + count, rewind, fill).
  std::size_t pos() const { return pos_; }
  void seek(std::size_t pos);

 private:
  void need(std::size_t n) const;
  void moveFrom(WireReader& o) noexcept {
    buf_ = std::move(o.buf_);
    view_ = o.view_;
    data_ = view_ ? o.data_ : buf_.data();
    size_ = o.size_;
    pos_ = o.pos_;
    o.data_ = nullptr;
    o.size_ = o.pos_ = 0;
    o.view_ = false;
  }

  std::vector<std::uint8_t> buf_;   // backing storage (owned mode only)
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t pos_ = 0;
  bool view_ = false;
};

}  // namespace mpcspan::runtime::shard
