// Byte-level transport between the ShardedEngine coordinator and its forked
// shard workers: an owned socketpair end plus length-framed message helpers.
//
// The framing is deliberately dumb — host-endian u64/u8 fields appended to a
// flat buffer, sent as one `u64 length + body` frame per protocol phase —
// because both ends are always the same binary on the same host (workers are
// fork()ed, never exec()ed). Every helper throws ShardError on short
// reads/writes or peer death; the engine converts that into a loud round
// failure rather than a hang.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/types.hpp"

namespace mpcspan::runtime::shard {

/// Transport-layer failure between the coordinator and a shard worker (a
/// worker died mid-round, a socket broke). Distinct from CapacityError: this
/// is an infrastructure fault, not an algorithm/model violation.
class ShardError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One end of a shard socketpair; owns and closes the fd.
class WireFd {
 public:
  WireFd() = default;
  explicit WireFd(int fd) : fd_(fd) {}
  ~WireFd() { reset(); }

  WireFd(const WireFd&) = delete;
  WireFd& operator=(const WireFd&) = delete;
  WireFd(WireFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  WireFd& operator=(WireFd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void reset(int fd = -1);

  /// Blocking full-buffer send/recv (EINTR-safe, SIGPIPE suppressed).
  /// Throws ShardError on EOF, peer death, or any socket error.
  void writeAll(const void* buf, std::size_t n);
  void readAll(void* buf, std::size_t n);

 private:
  int fd_ = -1;
};

/// Creates a connected AF_UNIX stream socketpair (parent end, child end).
void makeSocketPair(WireFd& parentEnd, WireFd& childEnd);

/// Append-only frame builder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u64(std::uint64_t v);
  void words(const Word* p, std::size_t n);
  void str(const std::string& s);
  /// Raw byte append (re-scattering a slice another frame carried).
  void bytes(const std::uint8_t* p, std::size_t n);

  /// Appends another writer's buffer verbatim (used to concatenate
  /// per-destination fragments built in parallel).
  void append(const WireWriter& other);

  std::size_t size() const { return buf_.size(); }

  /// Sends `u64 length + body` as one frame.
  void sendFramed(WireFd& fd) const;

 private:
  std::vector<std::uint8_t> buf_;
};

/// Cursor over one received frame.
class WireReader {
 public:
  static WireReader recvFramed(WireFd& fd);

  std::uint8_t u8();
  std::uint64_t u64();
  std::string str();
  /// Reads n words into out (which must have room for n).
  void words(Word* out, std::size_t n);
  /// Vets and consumes n bytes (n is wire-supplied), returning a pointer
  /// into the frame buffer (valid while this reader lives) — copy-free
  /// re-scattering.
  const std::uint8_t* raw(std::size_t n);
  bool atEnd() const { return pos_ == buf_.size(); }
  /// Unread bytes left in the frame — lets callers sanity-check a
  /// wire-supplied element count before sizing containers by it.
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  void need(std::size_t n) const;

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

}  // namespace mpcspan::runtime::shard
