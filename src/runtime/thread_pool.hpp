// Work-stealing std::thread pool for stepping simulated machines in
// parallel within one synchronous round.
//
// The unit of work is an index range: parallelFor(n, fn) splits [0, n) into
// one contiguous slice per lane (the calling thread is lane 0), each lane
// drains its slice front-to-back, and a lane that runs dry steals the upper
// half of the fullest remaining slice. Scheduling is dynamic, but callers
// write to disjoint outputs, so the result of every parallelFor is
// bit-identical no matter how many threads execute it — the determinism the
// round engine's tests pin down.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mpcspan::runtime {

class ThreadPool {
 public:
  /// `threads` counts lanes *including* the calling thread, so
  /// ThreadPool(1) spawns no workers and runs everything inline.
  /// 0 selects the default (MPCSPAN_THREADS env var, else
  /// std::thread::hardware_concurrency()).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t numThreads() const { return lanes_.size(); }

  /// Runs fn(i) for every i in [0, n); blocks until all indices ran.
  /// Rethrows the first exception fn threw (remaining indices are skipped).
  /// One job at a time: must not be called re-entrantly from inside fn,
  /// nor concurrently from two threads on the same pool (a second caller
  /// would re-stamp the first caller's lanes and lose indices).
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Chunked variant for fine-grained loops: runs fn(begin, end) over
  /// fixed-size chunks of [0, n). Chunking depends only on n and chunk —
  /// never on the thread count — so any chunk-indexed output is
  /// thread-count independent.
  void parallelForChunks(std::size_t n, std::size_t chunk,
                         const std::function<void(std::size_t, std::size_t)>& fn);

  static std::size_t defaultThreads();

 private:
  struct Lane {
    std::mutex m;
    std::size_t next = 0;  // first unclaimed index of the slice
    std::size_t end = 0;   // one past the last index of the slice
    std::uint64_t gen = 0;  // generation the slice belongs to
  };

  void ensureWorkers();
  void workerLoop(std::size_t lane);
  void runLanes(std::size_t self, std::uint64_t gen);
  bool claimOwn(std::size_t lane, std::size_t& idx);
  bool stealInto(std::size_t thief, std::uint64_t gen);
  void execute(std::size_t idx);

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> workers_;

  std::mutex jobMutex_;
  std::condition_variable jobCv_;   // workers wait for a new generation
  std::condition_variable doneCv_;  // caller waits for remaining_ == 0
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::atomic<std::size_t> remaining_{0};
  bool shutdown_ = false;

  std::mutex errorMutex_;
  std::exception_ptr error_;
  std::atomic<bool> abort_{false};  // hint: skip remaining indices
};

}  // namespace mpcspan::runtime
