// Pluggable transport policies for RoundEngine — the one place where the
// three models of the paper differ at the communication layer:
//
//   MpcTopology    — [KSV10/GSZ11/BKS13] all-to-all with per-machine word
//                    budgets: in one round no machine may send or receive
//                    more than wordsPerMachine words.
//   CliqueTopology — Congested Clique (Section 8): every ordered (src,dst)
//                    pair may carry at most one single-word message per
//                    round.
//   PramTopology   — CRCW PRAM leader-pointer memory (Section 6): machines
//                    are processors, destinations are shared-memory cells,
//                    any number of single-word concurrent writes per cell;
//                    the engine resolves them Priority-CRCW (lowest writer
//                    id wins), which is deterministic.
//
// A topology only *validates and classifies* a round; routing, delivery
// ordering, and accounting are the engine's job and identical across
// models. Violations throw CapacityError — an algorithm that breaks its
// model must fail loudly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/types.hpp"

namespace mpcspan::runtime {

class Topology {
 public:
  /// How the engine resolves the validated round.
  enum class Mode {
    kDeliverAll,     // every message reaches its destination's inbox
    kPriorityWrite,  // per destination only the lowest-src write lands
  };

  /// Wire descriptor for transports that must rebuild the topology in a
  /// process sharing no memory with the coordinator (tcp remote attach).
  /// kOpaque topologies cannot cross the wire; the tcp SETUP frame rejects
  /// them with ShardError instead of silently validating nothing.
  enum class WireKind : std::uint8_t {
    kMpc = 0,
    kClique = 1,
    kPram = 2,
    kOpaque = 255,
  };

  virtual ~Topology() = default;

  virtual const char* name() const = 0;

  virtual WireKind wireKind() const { return WireKind::kOpaque; }
  /// Single scalar parameter riding the wire descriptor (wordsPerMachine
  /// for MpcTopology; unused otherwise).
  virtual std::uint64_t wireParam() const { return 0; }

  /// Validates one round's outboxes (outboxes[src] = messages machine src
  /// sends; destination ids already bounds-checked by the engine). Throws
  /// CapacityError on a model violation. Returns the words moved.
  std::size_t validate(std::size_t numMachines,
                       const std::vector<std::vector<Message>>& outboxes) const {
    return validateSlice(numMachines, outboxes, 0, numMachines);
  }

  /// Shardable validation: checks every constraint *attributable to machines
  /// in [begin, end)* — their sends and their receives — against the full
  /// round's outboxes, and returns the words sent by sources in the range.
  /// Callers guarantee bounds-checked destinations only for sources in
  /// [begin, end); an implementation that scans sources outside the range
  /// (MpcTopology does, for receive budgets) must check msg.dst itself and
  /// throw std::invalid_argument, never index out of bounds.
  /// The union over a partition of [0, numMachines) validates the whole
  /// round, and the per-slice word counts sum to validate()'s return; this
  /// is what lets every ShardedEngine worker validate its own range — the
  /// fork-per-round workers against the snapshot outboxes, the resident
  /// workers against their projected round view (own sources complete,
  /// inbound cross-shard rows for the rest: receives of [begin, end) are
  /// complete by construction, and sends outside the slice, though
  /// partial, are never checked here).
  virtual std::size_t validateSlice(
      std::size_t numMachines,
      const std::vector<std::vector<Message>>& outboxes, std::size_t begin,
      std::size_t end) const = 0;

  /// Source-side half of validateSlice, over just the slice's own
  /// complete outboxes (sliceOutboxes[i] = every message machine
  /// begin + i sends; destinations already bounds-checked). Checks each
  /// constraint attributable to those sources and returns the words they
  /// send. Receiver-side constraints are covered by validateInbound()
  /// over the cross-shard per-destination sums — together the two halves
  /// check exactly what validateSlice checks. The split is what lets the
  /// shm transport's fused barrier validate a round *before* any frame
  /// is exchanged: sources are complete at phase A, and the inbound sums
  /// ride the barrier report for the coordinator to total up.
  virtual std::size_t validateSources(
      std::size_t numMachines,
      const std::vector<std::vector<Message>>& sliceOutboxes,
      std::size_t begin) const;

  /// True when the topology constrains per-machine *inbound* words; the
  /// sharded engine then ships per-destination word sums with each
  /// barrier report so the coordinator can run validateInbound().
  virtual bool needsInboundSums() const { return false; }

  /// Receiver-side half: received[m] = words delivered to machine m this
  /// round, summed across every shard (same-shard deliveries included).
  /// Throws CapacityError on a violation; the default has no receiver
  /// constraints.
  virtual void validateInbound(
      std::size_t numMachines,
      const std::vector<std::uint64_t>& received) const;

  /// Round independence for the pipelined shard barrier: true when a round
  /// of this topology can commit off the *fused* single-verdict barrier —
  /// i.e. when validateSources() + validateInbound() together check exactly
  /// what validateSlice() checks, so no post-exchange validation wave is
  /// needed and consecutive rounds may overlap (a worker that shipped its
  /// sections starts the next round's local phase while late peers still
  /// stream). The base class only promises that split for free placement
  /// rounds (nothing is validated there); a subclass whose constraints are
  /// fully covered by the source/inbound halves overrides this to return
  /// true unconditionally — all three built-in topologies do. A custom
  /// subclass that only implements validateSlice() keeps the strict
  /// two-phase barrier (and the shm transport falls back to the socket
  /// mesh), so its checks always run.
  virtual bool canOverlap(bool freePlacement) const { return freePlacement; }

  virtual Mode mode() const { return Mode::kDeliverAll; }
};

class MpcTopology final : public Topology {
 public:
  explicit MpcTopology(std::size_t wordsPerMachine)
      : wordsPerMachine_(wordsPerMachine) {}

  const char* name() const override { return "mpc"; }
  WireKind wireKind() const override { return WireKind::kMpc; }
  std::uint64_t wireParam() const override { return wordsPerMachine_; }
  std::size_t wordsPerMachine() const { return wordsPerMachine_; }
  std::size_t validateSlice(std::size_t numMachines,
                            const std::vector<std::vector<Message>>& outboxes,
                            std::size_t begin, std::size_t end) const override;
  std::size_t validateSources(
      std::size_t numMachines,
      const std::vector<std::vector<Message>>& sliceOutboxes,
      std::size_t begin) const override;
  bool needsInboundSums() const override { return true; }
  void validateInbound(
      std::size_t numMachines,
      const std::vector<std::uint64_t>& received) const override;
  // Send budgets are source-side, receive budgets ride the inbound sums:
  // the two halves cover validateSlice exactly, every round.
  bool canOverlap(bool) const override { return true; }

 private:
  std::size_t wordsPerMachine_;
};

class CliqueTopology final : public Topology {
 public:
  const char* name() const override { return "clique"; }
  WireKind wireKind() const override { return WireKind::kClique; }
  std::size_t validateSlice(std::size_t numMachines,
                            const std::vector<std::vector<Message>>& outboxes,
                            std::size_t begin, std::size_t end) const override;
  std::size_t validateSources(
      std::size_t numMachines,
      const std::vector<std::vector<Message>>& sliceOutboxes,
      std::size_t begin) const override;
  // Pair-uniqueness and single-word checks are fully source-side.
  bool canOverlap(bool) const override { return true; }
};

class PramTopology final : public Topology {
 public:
  const char* name() const override { return "pram"; }
  WireKind wireKind() const override { return WireKind::kPram; }
  std::size_t validateSlice(std::size_t numMachines,
                            const std::vector<std::vector<Message>>& outboxes,
                            std::size_t begin, std::size_t end) const override;
  std::size_t validateSources(
      std::size_t numMachines,
      const std::vector<std::vector<Message>>& sliceOutboxes,
      std::size_t begin) const override;
  // Single-word cell writes are checked entirely at the source.
  bool canOverlap(bool) const override { return true; }
  Mode mode() const override { return Mode::kPriorityWrite; }
};

/// Rebuilds a topology from its wire descriptor (the inverse of
/// wireKind()/wireParam()); throws std::invalid_argument for kOpaque or an
/// unknown kind byte.
std::unique_ptr<Topology> makeWireTopology(std::uint8_t kind,
                                           std::uint64_t param);

}  // namespace mpcspan::runtime
