#include "runtime/round_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/shard/sharded_engine.hpp"

namespace mpcspan::runtime {

RoundEngine::RoundEngine(EngineConfig cfg, std::unique_ptr<Topology> topology)
    : numMachines_(cfg.numMachines),
      topology_(std::move(topology)),
      pool_(cfg.threads),
      store_(cfg.numMachines) {
  if (numMachines_ == 0)
    throw std::invalid_argument("RoundEngine: numMachines must be positive");
  if (!topology_) throw std::invalid_argument("RoundEngine: null topology");
  inboxes_.resize(numMachines_);

  // Backend selection (the engine factory): 1 shard keeps the in-process
  // path below; more partitions the machines over worker processes —
  // resident ones by default, which fork once (lazily, at the first sharded
  // operation, so kernels/blocks registered until then cross with the fork
  // snapshot) — splitting the configured lane count across the workers. The
  // coordinator keeps its full-width pool_ anyway — sharded rounds bypass
  // it, but consumers run their host-side compute through
  // pool()/parallelFor() between rounds, and ThreadPool spawns its lanes
  // lazily on first use, so a sharded run that never touches pool() still
  // forks from a single-threaded parent.
  std::size_t shards =
      cfg.shards == 0 ? shard::ShardedEngine::defaultShards() : cfg.shards;
  shards = std::min(shards, numMachines_);
  if (shards > 1) {
    const std::size_t perShard =
        std::max<std::size_t>(1, pool_.numThreads() / shards);
    const bool resident = cfg.resident < 0
                              ? shard::ShardedEngine::defaultResident()
                              : cfg.resident != 0;
    const bool peer = cfg.peerExchange < 0
                          ? shard::ShardedEngine::defaultPeerExchange()
                          : cfg.peerExchange != 0;
    // An explicit transport wins; otherwise peerExchange=0 selects the
    // relay and the ShardedEngine resolves kDefault among the mesh kinds
    // (MPCSPAN_TCP_EXCHANGE first, then MPCSPAN_SHM_EXCHANGE, default shm).
    Transport transport = cfg.transport;
    if (transport == Transport::kDefault && !peer)
      transport = Transport::kRelay;
    shard_ = std::make_unique<shard::ShardedEngine>(
        numMachines_, shards, perShard, topology_.get(), resident, &kernels_,
        &store_, &inboxes_, transport, cfg.pipeline);
  }
}

RoundEngine::~RoundEngine() = default;

std::size_t RoundEngine::numShards() const {
  return shard_ ? shard_->numShards() : 1;
}

bool RoundEngine::residentShards() const {
  return shard_ && shard_->resident();
}

bool RoundEngine::peerMeshShards() const {
  return shard_ && shard_->peerExchange();
}

bool RoundEngine::shmRingShards() const {
  return shard_ && shard_->shmExchange();
}

bool RoundEngine::tcpMeshShards() const {
  return shard_ && shard_->tcpExchange();
}

bool RoundEngine::pipelinedShards() const {
  return shard_ && shard_->pipelined();
}

std::vector<std::vector<Delivery>> RoundEngine::exchange(
    std::vector<std::vector<Message>> outboxes) {
  return exchangeImpl(std::move(outboxes), /*updateResident=*/false);
}

std::vector<std::vector<Delivery>> RoundEngine::exchangeImpl(
    std::vector<std::vector<Message>> outboxes, bool updateResident) {
  if (outboxes.size() != numMachines_)
    throw std::invalid_argument("RoundEngine: outboxes size mismatch");

  if (shard_) {
    std::size_t roundWords = 0;
    auto inbox = shard_->exchange(outboxes, roundWords, updateResident);
    ledger_.noteRound(roundWords);
    return inbox;
  }

  // Index pass (serial, no payload movement): per-destination list of
  // (src, outbox position), naturally in (src, position) order.
  struct Ref {
    std::uint32_t src;
    std::uint32_t pos;
  };
  std::vector<std::vector<Ref>> byDst(numMachines_);
  for (std::size_t src = 0; src < numMachines_; ++src) {
    const auto& outbox = outboxes[src];
    for (std::size_t pos = 0; pos < outbox.size(); ++pos) {
      if (outbox[pos].dst >= numMachines_)
        throw std::invalid_argument("RoundEngine: message to unknown machine");
      byDst[outbox[pos].dst].push_back({static_cast<std::uint32_t>(src),
                                        static_cast<std::uint32_t>(pos)});
    }
  }

  const std::size_t roundWords = topology_->validate(numMachines_, outboxes);
  const bool priorityWrite = topology_->mode() == Topology::Mode::kPriorityWrite;

  // Materialize inboxes in parallel: each destination is owned by exactly
  // one loop index, and every message has exactly one destination, so the
  // payload moves below are disjoint — delivery order is fixed by the index
  // pass, not by the schedule.
  std::vector<std::vector<Delivery>> inbox(numMachines_);
  pool_.parallelFor(numMachines_, [&](std::size_t d) {
    const auto& refs = byDst[d];
    if (refs.empty()) return;
    const std::size_t take = priorityWrite ? 1 : refs.size();
    inbox[d].reserve(take);
    for (std::size_t i = 0; i < take; ++i)
      inbox[d].push_back(
          {refs[i].src, std::move(outboxes[refs[i].src][refs[i].pos].payload)});
  });

  ledger_.noteRound(roundWords);
  return inbox;
}

void RoundEngine::step(const StepFn& fn) {
  if (shard_) {
    // Compute in forked snapshot workers, then run the sharded exchange
    // over the assembled outboxes, keeping the worker-resident inboxes in
    // sync so closure and kernel rounds can interleave.
    syncInboxes();
    inboxes_ = exchangeImpl(shard_->computeOutboxes(fn, inboxes_),
                            /*updateResident=*/true);
    return;
  }
  std::vector<std::vector<Message>> outboxes(numMachines_);
  pool_.parallelFor(numMachines_,
                    [&](std::size_t m) { outboxes[m] = fn(m, inboxes_[m]); });
  inboxes_ = exchangeImpl(std::move(outboxes), /*updateResident=*/false);
}

// --- Registered kernels. ---

KernelId RoundEngine::registerKernel(std::string name, KernelFactory factory) {
  if (name.empty())
    throw std::invalid_argument("registerKernel: empty kernel name");
  if (findKernel(name).valid())
    throw std::invalid_argument("registerKernel: name already registered: " +
                                name);
  if (!factory && !findGlobalKernel(name))
    throw std::invalid_argument(
        "registerKernel: '" + name +
        "' has no factory and is not globally registered");
  const KernelId id{kernels_.size()};
  kernels_.push_back({std::move(name), std::move(factory)});
  kernelInstances_.emplace_back();
  if (shard_ && shard_->resident() && shard_->started()) {
    const KernelRegistration& reg = kernels_.back();
    if (reg.factory && !findGlobalKernel(reg.name)) {
      const std::string unreachable = reg.name;
      kernels_.pop_back();
      kernelInstances_.pop_back();
      throw std::logic_error(
          "registerKernel: the resident workers already forked, so the "
          "factory for '" +
          unreachable +
          "' cannot reach them — register it before the engine's first "
          "sharded operation, or globally (GlobalKernelRegistrar)");
    }
    try {
      shard_->registerKernel(id.index, reg.name);  // workers resolve + ack
    } catch (...) {
      // A worker could not resolve/construct the kernel. Ids are
      // append-only on every side (a partially-successful announcement may
      // have landed in some workers), so keep the dead slot but tombstone
      // its name — a corrected retry registers the same name under a fresh
      // id, and nothing can ever step the dead one.
      kernels_[id.index].name = "!failed " + kernels_[id.index].name;
      throw;
    }
  }
  return id;
}

KernelId RoundEngine::findKernel(const std::string& name) const {
  for (std::size_t i = 0; i < kernels_.size(); ++i)
    if (kernels_[i].name == name) return KernelId{i};
  return KernelId{};
}

StepKernel& RoundEngine::ensureKernelInstance(KernelId kernel) {
  if (kernel.index >= kernels_.size())
    throw std::invalid_argument("RoundEngine: unknown kernel id");
  auto& instance = kernelInstances_[kernel.index];
  if (!instance) {
    const KernelRegistration& reg = kernels_[kernel.index];
    KernelFactory factory = reg.factory;
    if (!factory) {
      const KernelFactory* global = findGlobalKernel(reg.name);
      if (!global)
        throw std::invalid_argument("RoundEngine: kernel '" + reg.name +
                                    "' is not globally registered");
      factory = *global;
    }
    instance = factory();
    if (!instance)
      throw std::runtime_error("RoundEngine: kernel '" + reg.name +
                               "': factory returned null");
  }
  return *instance;
}

void RoundEngine::step(KernelId kernel, std::vector<Word> args) {
  if (kernel.index >= kernels_.size())
    throw std::invalid_argument("RoundEngine: unknown kernel id");
  if (shard_ && shard_->resident()) {
    std::size_t roundWords = 0;
    shard_->stepKernel(kernel.index, args, roundWords);
    ledger_.noteRound(roundWords);
    inboxesResident_ = true;
    return;
  }
  // In-process — and the legacy fork-per-round backend, which has no
  // worker-resident state: the kernel computes coordinator-side and only
  // the exchange is sharded.
  inboxes_ = exchangeImpl(runKernelWave(kernel, args), /*updateResident=*/false);
}

std::vector<std::vector<Message>> RoundEngine::runKernelWave(
    KernelId kernel, const std::vector<Word>& args) {
  StepKernel& ker = ensureKernelInstance(kernel);
  std::vector<std::vector<Message>> outboxes(numMachines_);
  pool_.parallelFor(numMachines_, [&](std::size_t m) {
    outboxes[m] = ker.step(
        KernelCtx{m, numMachines_, inboxes_[m], args, store_});
  });
  return outboxes;
}

void RoundEngine::stepShuffle(KernelId kernel, std::vector<Word> args) {
  if (kernel.index >= kernels_.size())
    throw std::invalid_argument("RoundEngine: unknown kernel id");
  if (shard_ && shard_->resident()) {
    std::size_t ignoredWords = 0;
    shard_->stepKernel(kernel.index, args, ignoredWords, /*freePlacement=*/true);
    inboxesResident_ = true;
    return;
  }
  // In-process (and the legacy fork-per-round backend, whose kernels live
  // coordinator-side anyway): free movement needs no worker wave at all.
  deliverFree(runKernelWave(kernel, args));
}

void RoundEngine::deliverFree(std::vector<std::vector<Message>> outboxes) {
  struct Ref {
    std::uint32_t src;
    std::uint32_t pos;
  };
  std::vector<std::vector<Ref>> byDst(numMachines_);
  for (std::size_t src = 0; src < numMachines_; ++src) {
    const auto& outbox = outboxes[src];
    for (std::size_t pos = 0; pos < outbox.size(); ++pos) {
      if (outbox[pos].dst >= numMachines_)
        throw std::invalid_argument("RoundEngine: message to unknown machine");
      byDst[outbox[pos].dst].push_back({static_cast<std::uint32_t>(src),
                                        static_cast<std::uint32_t>(pos)});
    }
  }
  std::vector<std::vector<Delivery>> inbox(numMachines_);
  pool_.parallelFor(numMachines_, [&](std::size_t d) {
    const auto& refs = byDst[d];
    inbox[d].reserve(refs.size());
    for (const Ref& ref : refs)
      inbox[d].push_back(
          {ref.src, std::move(outboxes[ref.src][ref.pos].payload)});
  });
  inboxes_ = std::move(inbox);
}

void RoundEngine::stepLocal(KernelId kernel, std::vector<Word> args) {
  if (kernel.index >= kernels_.size())
    throw std::invalid_argument("RoundEngine: unknown kernel id");
  if (shard_ && shard_->resident()) {
    shard_->localKernel(kernel.index, args);
    return;
  }
  StepKernel& ker = ensureKernelInstance(kernel);
  pool_.parallelFor(numMachines_, [&](std::size_t m) {
    ker.local(KernelCtx{m, numMachines_, inboxes_[m], args, store_});
  });
}

std::vector<std::vector<Word>> RoundEngine::fetchKernel(
    KernelId kernel, std::vector<Word> args) {
  if (kernel.index >= kernels_.size())
    throw std::invalid_argument("RoundEngine: unknown kernel id");
  if (shard_ && shard_->resident()) return shard_->fetchKernel(kernel.index, args);
  StepKernel& ker = ensureKernelInstance(kernel);
  std::vector<std::vector<Word>> out(numMachines_);
  pool_.parallelFor(numMachines_, [&](std::size_t m) {
    out[m] = ker.fetch(KernelCtx{m, numMachines_, inboxes_[m], args, store_});
  });
  return out;
}

// --- Worker-owned blocks. ---

std::uint64_t RoundEngine::createBlocks(
    std::vector<std::vector<Word>> perMachine) {
  if (perMachine.size() != numMachines_)
    throw std::invalid_argument("createBlocks: perMachine size mismatch");
  const std::uint64_t handle = nextBlockHandle_++;
  if (shard_ && shard_->resident() && shard_->started()) {
    shard_->storeBlocks(handle, std::move(perMachine));
    return handle;
  }
  // In-process, or staged for the fork snapshot (the resident workers adopt
  // the store's contents when they start).
  store_.create(handle);
  for (std::size_t m = 0; m < numMachines_; ++m)
    store_.block(handle, m) = std::move(perMachine[m]);
  return handle;
}

std::vector<std::vector<Word>> RoundEngine::readBlocks(std::uint64_t handle) {
  if (shard_ && shard_->resident() && shard_->started())
    return shard_->fetchBlocks(handle);
  std::vector<std::vector<Word>> out(numMachines_);
  for (std::size_t m = 0; m < numMachines_; ++m)
    out[m] = store_.block(handle, m).toVector();
  return out;
}

void RoundEngine::freeBlocks(std::uint64_t handle) {
  if (shard_ && shard_->resident() && shard_->started()) {
    shard_->freeBlocks(handle);
    return;
  }
  store_.erase(handle);
}

std::vector<std::vector<Delivery>> RoundEngine::snapshotInboxes() {
  // inboxesResident_ implies the authoritative copy lives (lived) in the
  // resident workers — fetch it, and if the backend has since failed let
  // the ShardError surface rather than passing off the stale coordinator
  // copy as valid.
  if (inboxesResident_) return shard_->fetchInboxes();
  return inboxes_;
}

void RoundEngine::syncInboxes() {
  if (!inboxesResident_) return;
  inboxes_ = shard_->fetchInboxes();
  inboxesResident_ = false;
}

}  // namespace mpcspan::runtime
