#include "runtime/round_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/shard/sharded_engine.hpp"

namespace mpcspan::runtime {

RoundEngine::RoundEngine(EngineConfig cfg, std::unique_ptr<Topology> topology)
    : numMachines_(cfg.numMachines),
      topology_(std::move(topology)),
      pool_(cfg.threads) {
  if (numMachines_ == 0)
    throw std::invalid_argument("RoundEngine: numMachines must be positive");
  if (!topology_) throw std::invalid_argument("RoundEngine: null topology");
  inboxes_.resize(numMachines_);

  // Backend selection (the engine factory): 1 shard keeps the in-process
  // path below; more forks a worker process per shard each round, splitting
  // the configured lane count across the workers. The coordinator keeps its
  // full-width pool_ anyway — sharded rounds bypass it, but consumers run
  // their host-side compute through pool()/parallelFor() between rounds,
  // and ThreadPool spawns its lanes lazily on first use, so a sharded run
  // that never touches pool() still forks from a single-threaded parent.
  std::size_t shards =
      cfg.shards == 0 ? shard::ShardedEngine::defaultShards() : cfg.shards;
  shards = std::min(shards, numMachines_);
  if (shards > 1) {
    const std::size_t perShard =
        std::max<std::size_t>(1, pool_.numThreads() / shards);
    shard_ = std::make_unique<shard::ShardedEngine>(numMachines_, shards,
                                                    perShard, topology_.get());
  }
}

RoundEngine::~RoundEngine() = default;

std::size_t RoundEngine::numShards() const {
  return shard_ ? shard_->numShards() : 1;
}

std::vector<std::vector<Delivery>> RoundEngine::exchange(
    std::vector<std::vector<Message>> outboxes) {
  if (outboxes.size() != numMachines_)
    throw std::invalid_argument("RoundEngine: outboxes size mismatch");

  if (shard_) {
    std::size_t roundWords = 0;
    auto inbox = shard_->exchange(outboxes, roundWords);
    ledger_.noteRound(roundWords);
    return inbox;
  }

  // Index pass (serial, no payload movement): per-destination list of
  // (src, outbox position), naturally in (src, position) order.
  struct Ref {
    std::uint32_t src;
    std::uint32_t pos;
  };
  std::vector<std::vector<Ref>> byDst(numMachines_);
  for (std::size_t src = 0; src < numMachines_; ++src) {
    const auto& outbox = outboxes[src];
    for (std::size_t pos = 0; pos < outbox.size(); ++pos) {
      if (outbox[pos].dst >= numMachines_)
        throw std::invalid_argument("RoundEngine: message to unknown machine");
      byDst[outbox[pos].dst].push_back({static_cast<std::uint32_t>(src),
                                        static_cast<std::uint32_t>(pos)});
    }
  }

  const std::size_t roundWords = topology_->validate(numMachines_, outboxes);
  const bool priorityWrite = topology_->mode() == Topology::Mode::kPriorityWrite;

  // Materialize inboxes in parallel: each destination is owned by exactly
  // one loop index, and every message has exactly one destination, so the
  // payload moves below are disjoint — delivery order is fixed by the index
  // pass, not by the schedule.
  std::vector<std::vector<Delivery>> inbox(numMachines_);
  pool_.parallelFor(numMachines_, [&](std::size_t d) {
    const auto& refs = byDst[d];
    if (refs.empty()) return;
    const std::size_t take = priorityWrite ? 1 : refs.size();
    inbox[d].reserve(take);
    for (std::size_t i = 0; i < take; ++i)
      inbox[d].push_back(
          {refs[i].src, std::move(outboxes[refs[i].src][refs[i].pos].payload)});
  });

  ledger_.noteRound(roundWords);
  return inbox;
}

void RoundEngine::step(const StepFn& fn) {
  if (shard_) {
    // Compute in the shard workers, then run the (sharded) exchange over
    // the assembled outboxes — two forked waves per round, one per phase.
    inboxes_ = exchange(shard_->computeOutboxes(fn, inboxes_));
    return;
  }
  std::vector<std::vector<Message>> outboxes(numMachines_);
  pool_.parallelFor(numMachines_,
                    [&](std::size_t m) { outboxes[m] = fn(m, inboxes_[m]); });
  inboxes_ = exchange(std::move(outboxes));
}

}  // namespace mpcspan::runtime
