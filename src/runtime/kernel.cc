#include "runtime/kernel.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace mpcspan::runtime {

void BlockStore::create(std::uint64_t handle) {
  const auto [it, inserted] = slots_.try_emplace(handle);
  if (!inserted)
    throw std::invalid_argument("BlockStore: handle already exists");
  it->second.reserve(numMachines_);
  for (std::size_t m = 0; m < numMachines_; ++m)
    it->second.emplace_back(&arena_);
}

WordBuf& BlockStore::block(std::uint64_t handle, std::size_t machine) {
  const auto it = slots_.find(handle);
  if (it == slots_.end())
    throw std::out_of_range("BlockStore: unknown block handle");
  return it->second.at(machine);
}

const WordBuf& BlockStore::block(std::uint64_t handle,
                                 std::size_t machine) const {
  const auto it = slots_.find(handle);
  if (it == slots_.end())
    throw std::out_of_range("BlockStore: unknown block handle");
  return it->second.at(machine);
}

std::vector<std::uint64_t> BlockStore::handles() const {
  std::vector<std::uint64_t> out;
  out.reserve(slots_.size());
  for (const auto& [h, blocks] : slots_) out.push_back(h);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

struct GlobalRegistry {
  std::mutex mutex;
  std::unordered_map<std::string, KernelFactory> factories;
};

// Meyers singleton: safe to touch from other static initializers
// (GlobalKernelRegistrar instances) regardless of TU order.
GlobalRegistry& globalRegistry() {
  static GlobalRegistry* r = new GlobalRegistry();  // never destroyed
  return *r;
}

}  // namespace

bool registerGlobalKernel(std::string name, KernelFactory factory) {
  if (name.empty() || !factory)
    throw std::invalid_argument("registerGlobalKernel: empty name or factory");
  GlobalRegistry& reg = globalRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  return reg.factories.emplace(std::move(name), std::move(factory)).second;
}

const KernelFactory* findGlobalKernel(const std::string& name) {
  GlobalRegistry& reg = globalRegistry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  const auto it = reg.factories.find(name);
  return it == reg.factories.end() ? nullptr : &it->second;
}

}  // namespace mpcspan::runtime
