#include "runtime/topology.hpp"

#include <string>

namespace mpcspan::runtime {

std::size_t MpcTopology::validate(
    std::size_t numMachines,
    const std::vector<std::vector<Message>>& outboxes) const {
  std::vector<std::size_t> sent(numMachines, 0);
  std::vector<std::size_t> received(numMachines, 0);
  std::size_t roundWords = 0;
  for (std::size_t src = 0; src < outboxes.size(); ++src) {
    for (const Message& msg : outboxes[src]) {
      sent[src] += msg.payload.size();
      received[msg.dst] += msg.payload.size();
      roundWords += msg.payload.size();
    }
  }
  for (std::size_t i = 0; i < numMachines; ++i) {
    if (sent[i] > wordsPerMachine_)
      throw CapacityError("machine " + std::to_string(i) + " sends " +
                          std::to_string(sent[i]) + " words > capacity " +
                          std::to_string(wordsPerMachine_));
    if (received[i] > wordsPerMachine_)
      throw CapacityError("machine " + std::to_string(i) + " receives " +
                          std::to_string(received[i]) + " words > capacity " +
                          std::to_string(wordsPerMachine_));
  }
  return roundWords;
}

std::size_t CliqueTopology::validate(
    std::size_t numMachines,
    const std::vector<std::vector<Message>>& outboxes) const {
  std::size_t roundWords = 0;
  std::vector<char> usedRow;  // lazily sized per source
  for (std::size_t src = 0; src < outboxes.size(); ++src) {
    if (outboxes[src].empty()) continue;
    usedRow.assign(numMachines, 0);
    for (const Message& msg : outboxes[src]) {
      if (msg.payload.size() != 1)
        throw CapacityError(
            "CongestedClique: a pair carries exactly one word per round, got " +
            std::to_string(msg.payload.size()));
      if (usedRow[msg.dst])
        throw CapacityError("CongestedClique: pair (" + std::to_string(src) +
                            "," + std::to_string(msg.dst) +
                            ") used twice in one round");
      usedRow[msg.dst] = 1;
      ++roundWords;
    }
  }
  return roundWords;
}

std::size_t PramTopology::validate(
    std::size_t /*numMachines*/,
    const std::vector<std::vector<Message>>& outboxes) const {
  std::size_t roundWords = 0;
  for (const auto& outbox : outboxes)
    for (const Message& msg : outbox) {
      if (msg.payload.size() != 1)
        throw CapacityError("PRAM: a memory cell holds one word, write of " +
                            std::to_string(msg.payload.size()) + " words");
      ++roundWords;
    }
  return roundWords;
}

}  // namespace mpcspan::runtime
