#include "runtime/topology.hpp"

#include <stdexcept>
#include <string>

namespace mpcspan::runtime {

std::size_t MpcTopology::validateSlice(
    std::size_t numMachines, const std::vector<std::vector<Message>>& outboxes,
    std::size_t begin, std::size_t end) const {
  // Send budgets are attributable to sources, receive budgets to
  // destinations; a slice owns both sides for its machine range, so scanning
  // the full round's outboxes once suffices for any [begin, end).
  std::vector<std::size_t> sent(numMachines, 0);
  std::vector<std::size_t> received(numMachines, 0);
  std::size_t sliceWords = 0;
  for (std::size_t src = 0; src < outboxes.size(); ++src) {
    for (const Message& msg : outboxes[src]) {
      // The full-round scan sees sources outside [begin, end) whose
      // destinations no caller has vetted yet — check before indexing.
      if (msg.dst >= numMachines)
        throw std::invalid_argument("RoundEngine: message to unknown machine");
      sent[src] += msg.payload.size();
      received[msg.dst] += msg.payload.size();
      if (src >= begin && src < end) sliceWords += msg.payload.size();
    }
  }
  for (std::size_t i = begin; i < end; ++i) {
    if (sent[i] > wordsPerMachine_)
      throw CapacityError("machine " + std::to_string(i) + " sends " +
                          std::to_string(sent[i]) + " words > capacity " +
                          std::to_string(wordsPerMachine_));
    if (received[i] > wordsPerMachine_)
      throw CapacityError("machine " + std::to_string(i) + " receives " +
                          std::to_string(received[i]) + " words > capacity " +
                          std::to_string(wordsPerMachine_));
  }
  return sliceWords;
}

std::size_t CliqueTopology::validateSlice(
    std::size_t numMachines, const std::vector<std::vector<Message>>& outboxes,
    std::size_t begin, std::size_t end) const {
  // Every clique constraint (one single-word message per ordered pair) is
  // attributable to the source, so a slice only scans its own sources.
  std::size_t sliceWords = 0;
  std::vector<char> usedRow;  // lazily sized per source
  for (std::size_t src = begin; src < end && src < outboxes.size(); ++src) {
    if (outboxes[src].empty()) continue;
    usedRow.assign(numMachines, 0);
    for (const Message& msg : outboxes[src]) {
      if (msg.payload.size() != 1)
        throw CapacityError(
            "CongestedClique: a pair carries exactly one word per round, got " +
            std::to_string(msg.payload.size()));
      if (usedRow[msg.dst])
        throw CapacityError("CongestedClique: pair (" + std::to_string(src) +
                            "," + std::to_string(msg.dst) +
                            ") used twice in one round");
      usedRow[msg.dst] = 1;
      ++sliceWords;
    }
  }
  return sliceWords;
}

std::size_t PramTopology::validateSlice(
    std::size_t /*numMachines*/,
    const std::vector<std::vector<Message>>& outboxes, std::size_t begin,
    std::size_t end) const {
  // Single-word writes are a source-side constraint.
  std::size_t sliceWords = 0;
  for (std::size_t src = begin; src < end && src < outboxes.size(); ++src)
    for (const Message& msg : outboxes[src]) {
      if (msg.payload.size() != 1)
        throw CapacityError("PRAM: a memory cell holds one word, write of " +
                            std::to_string(msg.payload.size()) + " words");
      ++sliceWords;
    }
  return sliceWords;
}

std::size_t Topology::validateSources(
    std::size_t /*numMachines*/,
    const std::vector<std::vector<Message>>& sliceOutboxes,
    std::size_t /*begin*/) const {
  // No source-side constraints by default — just the word count, so the
  // per-slice sums still add up to validate()'s return.
  std::size_t words = 0;
  for (const std::vector<Message>& out : sliceOutboxes)
    for (const Message& msg : out) words += msg.payload.size();
  return words;
}

void Topology::validateInbound(
    std::size_t /*numMachines*/,
    const std::vector<std::uint64_t>& /*received*/) const {}

std::size_t MpcTopology::validateSources(
    std::size_t /*numMachines*/,
    const std::vector<std::vector<Message>>& sliceOutboxes,
    std::size_t begin) const {
  std::size_t sliceWords = 0;
  for (std::size_t i = 0; i < sliceOutboxes.size(); ++i) {
    std::size_t sent = 0;
    for (const Message& msg : sliceOutboxes[i]) sent += msg.payload.size();
    if (sent > wordsPerMachine_)
      throw CapacityError("machine " + std::to_string(begin + i) + " sends " +
                          std::to_string(sent) + " words > capacity " +
                          std::to_string(wordsPerMachine_));
    sliceWords += sent;
  }
  return sliceWords;
}

void MpcTopology::validateInbound(
    std::size_t numMachines, const std::vector<std::uint64_t>& received) const {
  for (std::size_t m = 0; m < numMachines && m < received.size(); ++m)
    if (received[m] > wordsPerMachine_)
      throw CapacityError("machine " + std::to_string(m) + " receives " +
                          std::to_string(received[m]) + " words > capacity " +
                          std::to_string(wordsPerMachine_));
}

std::size_t CliqueTopology::validateSources(
    std::size_t numMachines,
    const std::vector<std::vector<Message>>& sliceOutboxes,
    std::size_t begin) const {
  // Identical checks to validateSlice — every clique constraint is
  // already attributable to the source.
  std::size_t sliceWords = 0;
  std::vector<char> usedRow;
  for (std::size_t i = 0; i < sliceOutboxes.size(); ++i) {
    if (sliceOutboxes[i].empty()) continue;
    usedRow.assign(numMachines, 0);
    for (const Message& msg : sliceOutboxes[i]) {
      if (msg.payload.size() != 1)
        throw CapacityError(
            "CongestedClique: a pair carries exactly one word per round, got " +
            std::to_string(msg.payload.size()));
      if (usedRow[msg.dst])
        throw CapacityError("CongestedClique: pair (" +
                            std::to_string(begin + i) + "," +
                            std::to_string(msg.dst) +
                            ") used twice in one round");
      usedRow[msg.dst] = 1;
      ++sliceWords;
    }
  }
  return sliceWords;
}

std::size_t PramTopology::validateSources(
    std::size_t /*numMachines*/,
    const std::vector<std::vector<Message>>& sliceOutboxes,
    std::size_t /*begin*/) const {
  std::size_t sliceWords = 0;
  for (const std::vector<Message>& out : sliceOutboxes)
    for (const Message& msg : out) {
      if (msg.payload.size() != 1)
        throw CapacityError("PRAM: a memory cell holds one word, write of " +
                            std::to_string(msg.payload.size()) + " words");
      ++sliceWords;
    }
  return sliceWords;
}

std::unique_ptr<Topology> makeWireTopology(std::uint8_t kind,
                                           std::uint64_t param) {
  switch (static_cast<Topology::WireKind>(kind)) {
    case Topology::WireKind::kMpc:
      return std::make_unique<MpcTopology>(static_cast<std::size_t>(param));
    case Topology::WireKind::kClique:
      return std::make_unique<CliqueTopology>();
    case Topology::WireKind::kPram:
      return std::make_unique<PramTopology>();
    default:
      throw std::invalid_argument(
          "makeWireTopology: unknown topology kind byte " +
          std::to_string(static_cast<unsigned>(kind)));
  }
}

}  // namespace mpcspan::runtime
