#include "runtime/arena.hpp"

#include <bit>

namespace mpcspan::runtime {

Arena::Arena(std::size_t minChunkWords)
    : free_(64), minChunkWords_(std::max(minChunkWords, kMinRunWords)) {}

std::size_t Arena::roundCapacity(std::size_t words) {
  return std::bit_ceil(std::max(words, kMinRunWords));
}

std::size_t Arena::bucketOf(std::size_t capWords) {
  return static_cast<std::size_t>(std::countr_zero(capWords));
}

Word* Arena::allocate(std::size_t words) {
  const std::size_t cap = roundCapacity(words);
  const std::size_t bucket = bucketOf(cap);
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_[bucket].empty()) {
    Word* p = free_[bucket].back();
    free_[bucket].pop_back();
    return p;
  }
  // Bump from the first chunk with room; chunks filled earlier stay
  // fragmented until reset(), which is fine — runs this size will keep
  // coming back through the free lists.
  for (Chunk& c : chunks_) {
    if (c.cap - c.used >= cap) {
      Word* p = c.mem.get() + c.used;
      c.used += cap;
      return p;
    }
  }
  Chunk c;
  c.cap = std::max(minChunkWords_, cap);
  c.mem = std::make_unique_for_overwrite<Word[]>(c.cap);
  c.used = cap;
  reserved_ += c.cap;
  chunks_.push_back(std::move(c));
  return chunks_.back().mem.get();
}

void Arena::recycle(Word* p, std::size_t capWords) noexcept {
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  free_[bucketOf(capWords)].push_back(p);
}

void Arena::reset() noexcept {
  std::lock_guard<std::mutex> lock(mu_);
  for (Chunk& c : chunks_) c.used = 0;
  for (auto& bucket : free_) bucket.clear();
}

std::size_t Arena::reservedWords() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reserved_;
}

void WordBuf::grow(std::size_t n) {
  const std::size_t newCap = Arena::roundCapacity(n);
  Word* nd = arena_ ? arena_->allocate(newCap) : new Word[newCap];
  if (size_) std::memcpy(nd, data_, size_ * sizeof(Word));
  release();
  data_ = nd;
  cap_ = newCap;
}

void WordBuf::release() noexcept {
  if (data_ == nullptr) return;
  if (arena_)
    arena_->recycle(data_, cap_);
  else
    delete[] data_;
  data_ = nullptr;
  cap_ = 0;
}

}  // namespace mpcspan::runtime
