// Item <-> machine-word packing shared by registered kernels and their
// drivers across all substrates (MPC sort/growth kernels, the clique
// growth kernel). Items must be trivially copyable;
// an item occupies wordsPerItem<T>() whole words, so concatenating packed
// payloads and unpacking the concatenation is the same as unpacking each
// payload — the property the flat inbox views rely on.
#pragma once

#include <cstring>
#include <type_traits>
#include <vector>

#include "runtime/types.hpp"

namespace mpcspan {

template <typename T>
constexpr std::size_t wordsPerItem() {
  static_assert(std::is_trivially_copyable_v<T>);
  return (sizeof(T) + sizeof(Word) - 1) / sizeof(Word);
}

template <typename T>
std::vector<Word> packItems(const T* items, std::size_t count) {
  std::vector<Word> words(count * wordsPerItem<T>(), 0);
  for (std::size_t i = 0; i < count; ++i)
    std::memcpy(words.data() + i * wordsPerItem<T>(), items + i, sizeof(T));
  return words;
}

/// Works on any contiguous word container (std::vector<Word>, the
/// arena-backed runtime::WordBuf blocks) — only data()/size() are used.
template <typename T, typename Words>
std::vector<T> unpackItems(const Words& words) {
  const std::size_t count = words.size() / wordsPerItem<T>();
  std::vector<T> items(count);
  for (std::size_t i = 0; i < count; ++i)
    std::memcpy(&items[i], words.data() + i * wordsPerItem<T>(), sizeof(T));
  return items;
}

}  // namespace mpcspan
