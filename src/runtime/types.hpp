// Shared vocabulary of the round-engine runtime: the machine word, the
// capacity-violation error, message/delivery records, and the round/traffic
// ledger. Every substrate facade (MPC, Congested Clique, PRAM) speaks these
// types; nothing here depends on a particular model.
//
// `Word` and `CapacityError` live directly in namespace mpcspan — they are
// the library-wide currency (formerly defined in mpc/simulator.hpp, which
// forced cclique to include the MPC header just for them).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace mpcspan {

/// One Theta(log n)-bit machine word, the unit of all communication limits.
using Word = std::uint64_t;

/// Thrown when an algorithm violates the model's communication limits. A
/// violation means the *algorithm* breaks the model, so it must be loud.
class CapacityError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace runtime {

/// A message from one machine to another within a single synchronous round.
struct Message {
  std::size_t dst;
  std::vector<Word> payload;
};

/// A delivered message: the payload plus the sender's id. Inboxes hold
/// deliveries in stable (src, send-position) order, independent of how many
/// threads stepped the round.
struct Delivery {
  std::size_t src;
  std::vector<Word> payload;
};

/// Round/traffic ledger shared by all substrates.
struct Accounting {
  std::size_t rounds = 0;
  std::size_t wordsSent = 0;
  std::size_t maxRoundWords = 0;

  void noteRound(std::size_t roundWords) {
    ++rounds;
    wordsSent += roundWords;
    if (roundWords > maxRoundWords) maxRoundWords = roundWords;
  }
};

}  // namespace runtime
}  // namespace mpcspan
