// Shared vocabulary of the round-engine runtime: the machine word, the
// capacity-violation error, message/delivery records, and the round/traffic
// ledger. Every substrate facade (MPC, Congested Clique, PRAM) speaks these
// types; nothing here depends on a particular model.
//
// `Word` and `CapacityError` live directly in namespace mpcspan — they are
// the library-wide currency (formerly defined in mpc/simulator.hpp, which
// forced cclique to include the MPC header just for them).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <utility>
#include <vector>

namespace mpcspan {

/// One Theta(log n)-bit machine word, the unit of all communication limits.
using Word = std::uint64_t;

/// Thrown when an algorithm violates the model's communication limits. A
/// violation means the *algorithm* breaks the model, so it must be loud.
class CapacityError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace runtime {

/// Transport of resident cross-shard traffic (EngineConfig::transport;
/// resolved by RoundEngine before the backend is built, so ShardedEngine
/// only ever sees a concrete choice). kRelay/kSocketMesh/kShmRing are
/// same-host (pre-fork fd inheritance); kTcp rendezvouses over loopback or a
/// real network and is the only transport that can attach workers from
/// other machines (tools/mpcspan_worker).
enum class Transport : int {
  kDefault = -1,     ///< resolve from peerExchange + MPCSPAN_*_EXCHANGE env
  kRelay = 0,        ///< sections relayed through the coordinator
  kSocketMesh = 1,   ///< worker-to-worker socketpair mesh
  kShmRing = 2,      ///< shared-memory rings; mesh sockets carry doorbells
  kTcp = 3,          ///< TCP mesh formed by rendezvous (cross-machine capable)
};

/// Message payload with a single-word fast path. Most traffic in the clique
/// label rounds and the PRAM write rounds is exactly one word; storing it
/// inline avoids a heap allocation per message (the constant-factor
/// regression the flat pre-runtime delivery did not have). Longer payloads
/// spill to a heap vector — or, for merged cross-shard rows, *borrow* words
/// that a per-worker delivery arena owns (see Payload::borrowed), so the
/// resident inbox stops paying one vector per row per round.
class Payload {
 public:
  Payload() = default;
  Payload(std::initializer_list<Word> ws) { assignAny(ws.begin(), ws.size()); }
  Payload(const std::vector<Word>& ws) { assignAny(ws.data(), ws.size()); }
  Payload(std::vector<Word>&& ws) {
    if (ws.size() <= 1) {
      assign(ws.data(), ws.size());
    } else {
      heap_ = std::move(ws);
      size_ = kHeapTag;
    }
  }
  Payload(const Word* ws, std::size_t n) { assignAny(ws, n); }

  /// Wraps `n` words owned by an external allocator without copying them.
  /// The borrow is only as durable as the owner's memory: the sharded
  /// engine hands out arena words that stay valid until the round that
  /// *replaces* the inbox commits, which covers every legal access to a
  /// resident inbox (kernels read ctx.inbox only inside the round). A
  /// *copy* of a borrowed payload deep-copies to the heap — copies escape
  /// the round (inbox snapshots, test captures), so they must not extend
  /// the borrow. Single words still go inline.
  static Payload borrowed(const Word* ws, std::size_t n) {
    Payload p;
    if (n <= 1) {
      p.assign(ws, n);
    } else {
      p.ext_ = ws;
      p.inline_ = n;
      p.size_ = kExtTag;
    }
    return p;
  }

  Payload(const Payload& o) { *this = o; }
  Payload& operator=(const Payload& o) {
    if (this == &o) return *this;
    if (o.size_ == kExtTag) {
      heap_.assign(o.ext_, o.ext_ + o.inline_);
      size_ = kHeapTag;
      ext_ = nullptr;
    } else {
      inline_ = o.inline_;
      size_ = o.size_;
      heap_ = o.heap_;
      ext_ = nullptr;
    }
    return *this;
  }
  Payload(Payload&& o) noexcept
      : inline_(o.inline_), size_(o.size_), heap_(std::move(o.heap_)),
        ext_(o.ext_) {
    o.size_ = 0;
    o.ext_ = nullptr;
  }
  Payload& operator=(Payload&& o) noexcept {
    inline_ = o.inline_;
    size_ = o.size_;
    heap_ = std::move(o.heap_);
    ext_ = o.ext_;
    o.size_ = 0;
    o.ext_ = nullptr;
    return *this;
  }

  std::size_t size() const {
    return size_ == kHeapTag   ? heap_.size()
           : size_ == kExtTag ? static_cast<std::size_t>(inline_)
                              : size_;
  }
  bool empty() const { return size() == 0; }
  const Word* data() const {
    return size_ == kHeapTag ? heap_.data() : size_ == kExtTag ? ext_ : &inline_;
  }
  const Word* begin() const { return data(); }
  const Word* end() const { return data() + size(); }
  Word operator[](std::size_t i) const { return data()[i]; }
  Word front() const { return data()[0]; }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Payload& a, const std::vector<Word>& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const std::vector<Word>& a, const Payload& b) {
    return b == a;
  }

 private:
  static constexpr std::size_t kHeapTag = static_cast<std::size_t>(-1);
  static constexpr std::size_t kExtTag = static_cast<std::size_t>(-2);

  void assign(const Word* ws, std::size_t n) {  // n <= 1
    inline_ = n ? ws[0] : 0;
    size_ = n;
  }
  void assignAny(const Word* ws, std::size_t n) {
    if (n <= 1) {
      assign(ws, n);
    } else {
      heap_.assign(ws, ws + n);
      size_ = kHeapTag;
    }
  }

  Word inline_ = 0;  // the word itself, or the borrowed length (kExtTag)
  std::size_t size_ = 0;
  std::vector<Word> heap_;
  const Word* ext_ = nullptr;  // borrowed words (kExtTag only)
};

/// A message from one machine to another within a single synchronous round.
struct Message {
  std::size_t dst;
  Payload payload;
};

/// A delivered message: the payload plus the sender's id. Inboxes hold
/// deliveries in stable (src, send-position) order, independent of how many
/// threads stepped the round.
struct Delivery {
  std::size_t src;
  Payload payload;
};

/// Round/traffic ledger shared by all substrates.
struct Accounting {
  std::size_t rounds = 0;
  std::size_t wordsSent = 0;
  std::size_t maxRoundWords = 0;

  void noteRound(std::size_t roundWords) {
    ++rounds;
    wordsSent += roundWords;
    if (roundWords > maxRoundWords) maxRoundWords = roundWords;
  }
};

}  // namespace runtime
}  // namespace mpcspan
