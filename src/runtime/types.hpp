// Shared vocabulary of the round-engine runtime: the machine word, the
// capacity-violation error, message/delivery records, and the round/traffic
// ledger. Every substrate facade (MPC, Congested Clique, PRAM) speaks these
// types; nothing here depends on a particular model.
//
// `Word` and `CapacityError` live directly in namespace mpcspan — they are
// the library-wide currency (formerly defined in mpc/simulator.hpp, which
// forced cclique to include the MPC header just for them).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <utility>
#include <vector>

namespace mpcspan {

/// One Theta(log n)-bit machine word, the unit of all communication limits.
using Word = std::uint64_t;

/// Thrown when an algorithm violates the model's communication limits. A
/// violation means the *algorithm* breaks the model, so it must be loud.
class CapacityError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace runtime {

/// Message payload with a single-word fast path. Most traffic in the clique
/// label rounds and the PRAM write rounds is exactly one word; storing it
/// inline avoids a heap allocation per message (the constant-factor
/// regression the flat pre-runtime delivery did not have). Longer payloads
/// spill to a heap vector. The interface is the read-only slice the engine
/// and the substrates need — payloads are built as std::vector<Word> (or an
/// initializer list) and converted on construction.
class Payload {
 public:
  Payload() = default;
  Payload(std::initializer_list<Word> ws) { assignAny(ws.begin(), ws.size()); }
  Payload(const std::vector<Word>& ws) { assignAny(ws.data(), ws.size()); }
  Payload(std::vector<Word>&& ws) {
    if (ws.size() <= 1) {
      assign(ws.data(), ws.size());
    } else {
      heap_ = std::move(ws);
      size_ = kHeapTag;
    }
  }
  Payload(const Word* ws, std::size_t n) { assignAny(ws, n); }

  Payload(const Payload&) = default;
  Payload& operator=(const Payload&) = default;
  Payload(Payload&& o) noexcept
      : inline_(o.inline_), size_(o.size_), heap_(std::move(o.heap_)) {
    o.size_ = 0;
  }
  Payload& operator=(Payload&& o) noexcept {
    inline_ = o.inline_;
    size_ = o.size_;
    heap_ = std::move(o.heap_);
    o.size_ = 0;
    return *this;
  }

  std::size_t size() const { return size_ == kHeapTag ? heap_.size() : size_; }
  bool empty() const { return size() == 0; }
  const Word* data() const { return size_ == kHeapTag ? heap_.data() : &inline_; }
  const Word* begin() const { return data(); }
  const Word* end() const { return data() + size(); }
  Word operator[](std::size_t i) const { return data()[i]; }
  Word front() const { return data()[0]; }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const Payload& a, const std::vector<Word>& b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
  }
  friend bool operator==(const std::vector<Word>& a, const Payload& b) {
    return b == a;
  }

 private:
  static constexpr std::size_t kHeapTag = static_cast<std::size_t>(-1);

  void assign(const Word* ws, std::size_t n) {  // n <= 1
    inline_ = n ? ws[0] : 0;
    size_ = n;
  }
  void assignAny(const Word* ws, std::size_t n) {
    if (n <= 1) {
      assign(ws, n);
    } else {
      heap_.assign(ws, ws + n);
      size_ = kHeapTag;
    }
  }

  Word inline_ = 0;
  std::size_t size_ = 0;
  std::vector<Word> heap_;
};

/// A message from one machine to another within a single synchronous round.
struct Message {
  std::size_t dst;
  Payload payload;
};

/// A delivered message: the payload plus the sender's id. Inboxes hold
/// deliveries in stable (src, send-position) order, independent of how many
/// threads stepped the round.
struct Delivery {
  std::size_t src;
  Payload payload;
};

/// Round/traffic ledger shared by all substrates.
struct Accounting {
  std::size_t rounds = 0;
  std::size_t wordsSent = 0;
  std::size_t maxRoundWords = 0;

  void noteRound(std::size_t roundWords) {
    ++rounds;
    wordsSent += roundWords;
    if (roundWords > maxRoundWords) maxRoundWords = roundWords;
  }
};

}  // namespace runtime
}  // namespace mpcspan
