#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace mpcspan::runtime {

std::size_t ThreadPool::defaultThreads() {
  if (const char* env = std::getenv("MPCSPAN_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = defaultThreads();
  lanes_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) lanes_.push_back(std::make_unique<Lane>());
  // Workers spawn lazily on the first parallel job: accounting-only
  // substrate facades construct pools they never exercise.
}

void ThreadPool::ensureWorkers() {
  if (!workers_.empty()) return;
  workers_.reserve(lanes_.size() - 1);
  for (std::size_t i = 1; i < lanes_.size(); ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(jobMutex_);
    shutdown_ = true;
  }
  jobCv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::parallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t lanes = lanes_.size();
  if (lanes == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(jobMutex_);
    ensureWorkers();
    {
      std::lock_guard<std::mutex> errLock(errorMutex_);
      error_ = nullptr;
    }
    abort_.store(false, std::memory_order_relaxed);
    remaining_.store(n, std::memory_order_relaxed);
    job_ = &fn;
    gen = ++generation_;
    // Publish the lane ranges last: an index only becomes claimable (by a
    // fresh worker or a straggler from the previous generation) through a
    // lane mutex acquired after this point, which orders the job_ write
    // before any claim. Each lane is stamped with the generation so a
    // straggler still inside the previous runLanes can never steal this
    // job's slices (see stealInto).
    const std::size_t base = n / lanes;
    const std::size_t extra = n % lanes;
    std::size_t cursor = 0;
    for (std::size_t i = 0; i < lanes; ++i) {
      const std::size_t take = base + (i < extra ? 1 : 0);
      std::lock_guard<std::mutex> laneLock(lanes_[i]->m);
      lanes_[i]->next = cursor;
      lanes_[i]->end = cursor + take;
      lanes_[i]->gen = gen;
      cursor += take;
    }
  }
  jobCv_.notify_all();

  runLanes(0, gen);

  {
    std::unique_lock<std::mutex> lock(jobMutex_);
    doneCv_.wait(lock, [this] {
      return remaining_.load(std::memory_order_acquire) == 0;
    });
    job_ = nullptr;
  }
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> errLock(errorMutex_);
    err = error_;
  }
  if (err) std::rethrow_exception(err);
}

void ThreadPool::parallelForChunks(
    std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  if (chunk == 0) chunk = 1;
  const std::size_t numChunks = (n + chunk - 1) / chunk;
  parallelFor(numChunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    fn(begin, std::min(n, begin + chunk));
  });
}

void ThreadPool::workerLoop(std::size_t lane) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(jobMutex_);
      jobCv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    runLanes(lane, seen);
  }
}

void ThreadPool::runLanes(std::size_t self, std::uint64_t gen) {
  std::size_t idx;
  while (claimOwn(self, idx)) execute(idx);
  // Own slice drained: steal the upper half of the fullest remaining slice
  // into this lane, then drain it; repeat until no work is left anywhere.
  while (stealInto(self, gen))
    while (claimOwn(self, idx)) execute(idx);
}

bool ThreadPool::claimOwn(std::size_t lane, std::size_t& idx) {
  Lane& l = *lanes_[lane];
  std::lock_guard<std::mutex> lock(l.m);
  if (l.next >= l.end) return false;
  idx = l.next++;
  return true;
}

bool ThreadPool::stealInto(std::size_t thief, std::uint64_t gen) {
  // Only slices stamped with this thief's generation are stealable. A
  // straggler from a finished generation therefore finds nothing: if
  // unclaimed work of its generation still existed, the next generation
  // could not have started (the caller waits for remaining_ == 0), so a
  // gen mismatch always means "that slice is not my job". This also
  // protects the thief's own lane: it can only have been re-assigned to a
  // newer generation once the thief's generation has no stealable work
  // left, and then the install below is unreachable.
  const std::size_t lanes = lanes_.size();
  std::size_t victim = lanes;  // invalid
  std::size_t best = 0;
  for (std::size_t i = 0; i < lanes; ++i) {
    if (i == thief) continue;
    Lane& l = *lanes_[i];
    std::lock_guard<std::mutex> lock(l.m);
    if (l.gen != gen) continue;
    const std::size_t avail = l.end - l.next;
    if (avail > best) {
      best = avail;
      victim = i;
    }
  }
  if (victim == lanes) return false;
  std::size_t begin = 0, end = 0;
  {
    Lane& v = *lanes_[victim];
    std::lock_guard<std::mutex> lock(v.m);
    if (v.gen != gen) return true;  // raced away; let the caller retry
    const std::size_t avail = v.end - v.next;
    if (avail == 0) return true;  // raced away; let the caller retry
    const std::size_t take = (avail + 1) / 2;
    begin = v.end - take;
    end = v.end;
    v.end = begin;
  }
  Lane& mine = *lanes_[thief];
  std::lock_guard<std::mutex> lock(mine.m);
  mine.next = begin;
  mine.end = end;
  mine.gen = gen;
  return true;
}

void ThreadPool::execute(std::size_t idx) {
  if (!abort_.load(std::memory_order_relaxed)) {
    try {
      (*job_)(idx);
    } catch (...) {
      std::lock_guard<std::mutex> lock(errorMutex_);
      if (!error_) error_ = std::current_exception();
      abort_.store(true, std::memory_order_relaxed);
    }
  }
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(jobMutex_);
    doneCv_.notify_all();
  }
}

}  // namespace mpcspan::runtime
