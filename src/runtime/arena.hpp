// Per-worker bump/arena allocation for the resident runtime's hot word
// buffers: BlockStore blocks and merged cross-shard inbox rows.
//
// Both consumers share one allocation shape — word buffers that are
// rebuilt wholesale every kernel round — which a general-purpose heap
// serves with a malloc/free pair (plus touching fresh pages) per row per
// round. The Arena instead carves power-of-two word runs out of a few
// large chunks and recycles them by size class, so a steady-state round
// allocates nothing: every block and every inbox row lands in memory that
// the previous round already warmed.
//
// Two reclamation disciplines, chosen per consumer:
//  - recycle(): an owning WordBuf returns its run to the matching size
//    class on destruction/regrowth (BlockStore — block lifetimes overlap
//    arbitrarily, so individual runs must be reusable).
//  - reset(): the owner rewinds the whole arena once no allocation is
//    referenced anymore (delivery rows — the sharded engine double-buffers
//    two arenas and resets the one whose round has been superseded; see
//    Payload::borrowed for the lifetime contract).
// reset() invalidates every outstanding pointer, so an arena is either
// recycle-managed or reset-managed — never both at once.
//
// Thread-safety: allocate/recycle/reset are mutex-guarded (kernel steps
// resize blocks from pool threads concurrently). The memory itself is
// handed out exclusively, so readers/writers of distinct runs never race.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/types.hpp"

namespace mpcspan::runtime {

class Arena {
 public:
  /// Minimum capacity of any run (words); tiny rows still get a full
  /// cache line so neighbouring rows never false-share.
  static constexpr std::size_t kMinRunWords = 8;

  explicit Arena(std::size_t minChunkWords = std::size_t{1} << 13);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// The capacity class a request of `words` lands in: the power of two
  /// >= max(words, kMinRunWords). Callers that track capacity (WordBuf)
  /// compute it once and pass the rounded value back to recycle().
  static std::size_t roundCapacity(std::size_t words);

  /// Hands out an exclusively-owned run of roundCapacity(words) words
  /// (uninitialized). Never returns nullptr for words > 0.
  Word* allocate(std::size_t words);

  /// Returns a run to its size class for reuse. `capWords` must be the
  /// roundCapacity() the run was allocated with.
  void recycle(Word* p, std::size_t capWords) noexcept;

  /// Rewinds every chunk and drops the free lists: all previously handed
  /// out runs are invalidated, chunks are kept for reuse. Only legal when
  /// the owner can prove nothing references the arena anymore.
  void reset() noexcept;

  /// Total words of backing memory this arena has reserved (diagnostics).
  std::size_t reservedWords() const;

 private:
  struct Chunk {
    std::unique_ptr<Word[]> mem;
    std::size_t cap = 0;
    std::size_t used = 0;
  };

  static std::size_t bucketOf(std::size_t capWords);

  mutable std::mutex mu_;
  std::vector<Chunk> chunks_;
  std::vector<std::vector<Word*>> free_;  // indexed by log2(capWords)
  std::size_t minChunkWords_;
  std::size_t reserved_ = 0;
};

/// A contiguous word buffer with std::vector<Word>'s hot-path surface,
/// backed by an Arena when one is attached (heap otherwise, so standalone
/// construction in tests and benches still works). Growth recycles the old
/// run back to the arena; destruction does the same — WordBuf is only used
/// with recycle-managed arenas (BlockStore), never reset-managed ones.
class WordBuf {
 public:
  WordBuf() = default;
  explicit WordBuf(Arena* arena) : arena_(arena) {}
  ~WordBuf() { release(); }

  WordBuf(const WordBuf& o) : arena_(o.arena_) { assign(o.data_, o.size_); }
  WordBuf& operator=(const WordBuf& o) {
    if (this != &o) assign(o.data_, o.size_);
    return *this;
  }
  WordBuf(WordBuf&& o) noexcept
      : arena_(o.arena_), data_(o.data_), size_(o.size_), cap_(o.cap_) {
    o.data_ = nullptr;
    o.size_ = o.cap_ = 0;
  }
  WordBuf& operator=(WordBuf&& o) noexcept {
    if (this != &o) {
      release();
      arena_ = o.arena_;
      data_ = o.data_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.data_ = nullptr;
      o.size_ = o.cap_ = 0;
    }
    return *this;
  }

  /// Contents come in as std::vector<Word> from the kernels' pack step;
  /// both overloads copy into arena memory (an rvalue cannot donate its
  /// heap to the arena).
  WordBuf& operator=(const std::vector<Word>& ws) {
    assign(ws.data(), ws.size());
    return *this;
  }
  WordBuf& operator=(std::vector<Word>&& ws) {
    assign(ws.data(), ws.size());
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }
  Word* data() { return data_; }
  const Word* data() const { return data_; }
  Word* begin() { return data_; }
  Word* end() { return data_ + size_; }
  const Word* begin() const { return data_; }
  const Word* end() const { return data_ + size_; }
  Word& operator[](std::size_t i) { return data_[i]; }
  Word operator[](std::size_t i) const { return data_[i]; }

  void clear() { size_ = 0; }
  void reserve(std::size_t n) { ensure(n); }

  /// Grows zero-filled / shrinks, like std::vector::resize.
  void resize(std::size_t n) {
    ensure(n);
    if (n > size_) std::memset(data_ + size_, 0, (n - size_) * sizeof(Word));
    size_ = n;
  }

  void assign(const Word* p, std::size_t n) {
    ensure(n);
    if (n) std::memmove(data_, p, n * sizeof(Word));
    size_ = n;
  }

  void append(const Word* p, std::size_t n) {
    ensure(size_ + n);
    if (n) std::memcpy(data_ + size_, p, n * sizeof(Word));
    size_ += n;
  }

  void push_back(Word w) {
    ensure(size_ + 1);
    data_[size_++] = w;
  }

  std::vector<Word> toVector() const { return {data_, data_ + size_}; }

  friend bool operator==(const WordBuf& a, const WordBuf& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 ||
            std::memcmp(a.data_, b.data_, a.size_ * sizeof(Word)) == 0);
  }

 private:
  void ensure(std::size_t n) {
    if (n <= cap_) return;
    grow(n);
  }
  void grow(std::size_t n);
  void release() noexcept;

  Arena* arena_ = nullptr;
  Word* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace mpcspan::runtime
