// PRAM CRCW extension (Section 6, "PRAM" paragraph, and Section 1.3).
//
// The paper's MPC algorithms port to CRCW PRAM with the same depth up to a
// multiplicative O(log* n) factor coming from the hashing / semisorting /
// generalized-find-min primitives of [BS07], plus a new O(1)-depth merge
// primitive implemented union-find style: every cluster keeps a leader node
// and all members point at it, so merging redirects the smaller side's
// pointers in one parallel step.
//
// This module provides (a) the depth/work conversion for any SpannerResult
// and (b) LeaderForest, a concrete leader-pointer structure with the
// depth/work accounting of the O(1)-depth merge.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "runtime/round_engine.hpp"
#include "spanner/types.hpp"

namespace mpcspan {

/// Iterated logarithm (base 2); log*(n) = 0 for n <= 1.
int logStar(double n);

struct PramCost {
  long depth = 0;  // parallel time
  long work = 0;   // total operations (sum over processors)
};

/// Depth/work of executing `result` on a CRCW PRAM with n vertices and m
/// edges: depth = supersteps * Theta(log* n); work = Theta(m) per iteration
/// (every primitive touches each alive edge O(1) times) plus the output.
PramCost pramCostOf(const SpannerResult& result, std::size_t n, std::size_t m);

/// Phase tags (args[0]) of the "mpcspan.pram.leaderforest" kernel that owns
/// the leader-pointer cells engine-side (see LeaderForest::attachEngine).
/// Part of the public contract so tests and diagnostics can drive the
/// kernel directly.
inline constexpr Word kLeaderPhaseInit = 1;    // local: cell points at itself
inline constexpr Word kLeaderPhaseWrite = 2;   // round: {phase, lb, la}
inline constexpr Word kLeaderPhaseAbsorb = 3;  // local: adopt delivered write

/// Leader-pointer cluster structure: the PRAM merge primitive.
/// Each element points at its set's leader; merge(a, b) redirects every
/// pointer of the smaller set in one parallel step (O(1) depth with
/// |smaller| processors; O(|smaller|) work). Queries are O(1) depth always
/// (a single pointer read — no path compression needed).
class LeaderForest {
 public:
  explicit LeaderForest(std::size_t n);

  /// Executes each merge's pointer redirection as one real priority-CRCW
  /// write round on `engine` (not owned; must use a PramTopology with at
  /// least n cells — fewer throws std::invalid_argument): the leader-pointer
  /// cells live in a registered kernel *where the machines live* (inside the
  /// resident shard workers when the engine is sharded), each member cell
  /// recognizes the merge descriptor broadcast in the round's args and
  /// writes the new leader into itself — merge() ships only the
  /// (smaller-set leader, new leader) pair, never one coordinator-built
  /// message per member. The engine's ledger then equals the depth/work
  /// counters: rounds == depthCharged(), words == workCharged(). A sharded
  /// engine (EngineConfig::shards > 1) works unchanged — the write rounds
  /// are bit-identical by the engine's cross-shard determinism guarantee.
  ///
  /// Attaching registers (or resets) the engine's leader-pointer kernel and
  /// initializes every cell to itself, so the kernel cells always mirror a
  /// fresh forest: attach before any merge, and attach at most one live
  /// forest per engine at a time (the kernel is engine-global state).
  /// Observe the simulated cells with fetchKernel(kernelId()) — one word
  /// per cell.
  void attachEngine(runtime::RoundEngine* engine);
  /// The engine-side kernel the cells live in (invalid when detached).
  runtime::KernelId kernelId() const { return kernel_; }

  std::uint32_t leader(std::uint32_t x) const { return leader_[x]; }
  bool sameSet(std::uint32_t a, std::uint32_t b) const {
    return leader_[a] == leader_[b];
  }
  std::size_t setSize(std::uint32_t x) const {
    return members_[leader_[x]].size();
  }
  std::size_t numSets() const { return numSets_; }

  /// Merges the sets of a and b (smaller into larger); returns false if
  /// already joined. Charges 1 depth and |smaller| work. Throws
  /// std::out_of_range when a or b is not an element of the forest (with an
  /// engine attached that would otherwise index cells outside the machine
  /// range), and std::invalid_argument when the engine delivers a stripped
  /// (zero-word) write.
  bool merge(std::uint32_t a, std::uint32_t b);

  /// Accounting of all merges so far.
  long depthCharged() const { return depth_; }
  long workCharged() const { return work_; }

 private:
  std::vector<std::uint32_t> leader_;
  std::vector<std::vector<std::uint32_t>> members_;
  std::size_t numSets_;
  runtime::RoundEngine* engine_ = nullptr;
  runtime::KernelId kernel_;
  long depth_ = 0;
  long work_ = 0;
};

}  // namespace mpcspan
