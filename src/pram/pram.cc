#include "pram/pram.hpp"

#include <cmath>
#include <numeric>
#include <utility>

namespace mpcspan {

int logStar(double n) {
  int count = 0;
  while (n > 1.0) {
    n = std::log2(n);
    ++count;
  }
  return count;
}

PramCost pramCostOf(const SpannerResult& result, std::size_t n, std::size_t m) {
  PramCost cost;
  const int ls = std::max(1, logStar(static_cast<double>(std::max<std::size_t>(n, 2))));
  cost.depth = result.cost.supersteps() * ls;
  // Each superstep's primitives (hashing, semisorting, find-min, merge)
  // perform O(1) operations per alive edge; the alive set only shrinks, so
  // m per iteration is an upper bound, plus writing the output.
  cost.work = static_cast<long>(result.iterations + result.epochs + 1) *
                  static_cast<long>(m) +
              static_cast<long>(result.edges.size());
  return cost;
}

LeaderForest::LeaderForest(std::size_t n)
    : leader_(n), members_(n), numSets_(n) {
  std::iota(leader_.begin(), leader_.end(), 0);
  for (std::uint32_t v = 0; v < n; ++v) members_[v] = {v};
}

bool LeaderForest::merge(std::uint32_t a, std::uint32_t b) {
  std::uint32_t la = leader_[a];
  std::uint32_t lb = leader_[b];
  if (la == lb) return false;
  if (members_[la].size() < members_[lb].size()) std::swap(la, lb);
  // Redirect every member of the smaller set in one parallel step. With an
  // engine attached the redirection is a real CRCW write round: member v
  // writes the new leader into its own pointer cell v.
  if (engine_) {
    std::vector<std::vector<runtime::Message>> out(engine_->numMachines());
    for (std::uint32_t v : members_[lb]) out[v].push_back({v, {la}});
    const auto delivered = engine_->exchange(std::move(out));
    for (std::uint32_t v : members_[lb])
      leader_[v] = static_cast<std::uint32_t>(delivered[v].front().payload.front());
  } else {
    for (std::uint32_t v : members_[lb]) leader_[v] = la;
  }
  work_ += static_cast<long>(members_[lb].size());
  depth_ += 1;
  auto& big = members_[la];
  auto& small = members_[lb];
  big.insert(big.end(), small.begin(), small.end());
  small.clear();
  small.shrink_to_fit();
  --numSets_;
  return true;
}

}  // namespace mpcspan
