#include "pram/pram.hpp"

#include <cmath>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace mpcspan {

namespace {

/// The CRCW leader-pointer memory as a registered kernel: one cell per
/// machine, owned where the machine lives (inside the resident shard
/// workers when the engine is sharded). A merge round broadcasts only the
/// (smaller-set leader, new leader) descriptor; each member cell recognizes
/// itself (cell == lb) and performs the single-word priority-CRCW write into
/// its own cell — the same messages, delivery order, and ledger as the
/// legacy coordinator-built round that enumerated the members host-side.
class LeaderPointerKernel final : public runtime::StepKernel {
 public:
  static std::string kernelName() { return "mpcspan.pram.leaderforest"; }

  std::vector<runtime::Message> step(const runtime::KernelCtx& ctx) override {
    if (ctx.args.at(0) != kLeaderPhaseWrite)
      throw std::invalid_argument("LeaderPointerKernel: unknown step phase");
    ensureState(ctx);
    const Word lb = ctx.args.at(1);
    const Word la = ctx.args.at(2);
    if (cell_[ctx.machine] != lb) return {};
    return {{ctx.machine, {la}}};
  }

  void local(const runtime::KernelCtx& ctx) override {
    ensureState(ctx);
    switch (ctx.args.at(0)) {
      case kLeaderPhaseInit:
        cell_[ctx.machine] = ctx.machine;
        break;
      case kLeaderPhaseAbsorb: {
        if (ctx.inbox.empty()) break;  // no write landed on this cell
        const runtime::Delivery& d = ctx.inbox.front();
        if (d.payload.empty())
          throw std::invalid_argument(
              "LeaderForest: empty delivery in CRCW write round");
        cell_[ctx.machine] = d.payload.front();
        break;
      }
      default:
        throw std::invalid_argument("LeaderPointerKernel: unknown local phase");
    }
  }

  std::vector<Word> fetch(const runtime::KernelCtx& ctx) override {
    ensureState(ctx);
    return {cell_[ctx.machine]};
  }

 private:
  void ensureState(const runtime::KernelCtx& ctx) {
    std::call_once(sized_, [&] {
      cell_.resize(ctx.numMachines);
      for (std::size_t m = 0; m < cell_.size(); ++m) cell_[m] = m;
    });
  }

  std::once_flag sized_;
  std::vector<Word> cell_;  // per machine: its current leader pointer
};

}  // namespace

int logStar(double n) {
  int count = 0;
  while (n > 1.0) {
    n = std::log2(n);
    ++count;
  }
  return count;
}

PramCost pramCostOf(const SpannerResult& result, std::size_t n, std::size_t m) {
  PramCost cost;
  const int ls = std::max(1, logStar(static_cast<double>(std::max<std::size_t>(n, 2))));
  cost.depth = result.cost.supersteps() * ls;
  // Each superstep's primitives (hashing, semisorting, find-min, merge)
  // perform O(1) operations per alive edge; the alive set only shrinks, so
  // m per iteration is an upper bound, plus writing the output.
  cost.work = static_cast<long>(result.iterations + result.epochs + 1) *
                  static_cast<long>(m) +
              static_cast<long>(result.edges.size());
  return cost;
}

LeaderForest::LeaderForest(std::size_t n)
    : leader_(n), members_(n), numSets_(n) {
  std::iota(leader_.begin(), leader_.end(), 0);
  for (std::uint32_t v = 0; v < n; ++v) members_[v] = {v};
}

void LeaderForest::attachEngine(runtime::RoundEngine* engine) {
  if (engine && engine->numMachines() < leader_.size())
    throw std::invalid_argument(
        "LeaderForest: engine needs one memory cell per element");
  engine_ = engine;
  kernel_ = runtime::KernelId{};
  if (!engine_) return;
  kernel_ = runtime::ensureKernel<LeaderPointerKernel>(*engine_);
  // Reset the cells so the kernel mirrors this (fresh) forest even when the
  // engine's kernel instance outlived an earlier attachment.
  engine_->stepLocal(kernel_, {kLeaderPhaseInit});
}

bool LeaderForest::merge(std::uint32_t a, std::uint32_t b) {
  // Raw ids index leader_ host-side and the machine/cell range engine-side;
  // both are bounded by the forest size (attachEngine guarantees the engine
  // has at least that many cells), so reject anything larger with a typed
  // error instead of reading — or addressing a write — out of bounds.
  if (a >= leader_.size() || b >= leader_.size())
    throw std::out_of_range("LeaderForest: element id out of range");
  std::uint32_t la = leader_[a];
  std::uint32_t lb = leader_[b];
  if (la == lb) return false;
  if (members_[la].size() < members_[lb].size()) std::swap(la, lb);
  // Redirect every member of the smaller set in one parallel step. With an
  // engine attached the redirection is a real CRCW write round executed by
  // the leader-pointer kernel: only the (lb, la) descriptor is broadcast,
  // each member cell emits its own single-word write, and a free local
  // phase absorbs the delivered value into the cell.
  if (engine_) {
    engine_->step(kernel_, {kLeaderPhaseWrite, lb, la});
    engine_->stepLocal(kernel_, {kLeaderPhaseAbsorb});
  }
  for (std::uint32_t v : members_[lb]) leader_[v] = la;
  work_ += static_cast<long>(members_[lb].size());
  depth_ += 1;
  auto& big = members_[la];
  auto& small = members_[lb];
  big.insert(big.end(), small.begin(), small.end());
  small.clear();
  small.shrink_to_fit();
  --numSets_;
  return true;
}

}  // namespace mpcspan
