#include "graph/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace mpcspan {

void writeEdgeList(const Graph& g, std::ostream& out) {
  out.precision(17);  // round-trip exact doubles
  out << "# mpcspan edge list\n";
  out << "n " << g.numVertices() << "\n";
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << ' ' << e.w << "\n";
}

Graph readEdgeList(std::istream& in) {
  std::string line;
  std::size_t n = 0;
  bool haveN = false;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    if (!haveN) {
      std::string tag;
      ss >> tag;
      if (tag != "n" || !(ss >> n))
        throw std::runtime_error("edge list: expected header 'n <count>'");
      haveN = true;
      continue;
    }
    Edge e;
    if (!(ss >> e.u >> e.v)) throw std::runtime_error("edge list: bad edge line: " + line);
    if (!(ss >> e.w)) e.w = 1.0;
    edges.push_back(e);
  }
  if (!haveN) throw std::runtime_error("edge list: missing header");
  return graphFromEdges(n, edges);
}

void writeEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  writeEdgeList(g, out);
}

Graph readEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return readEdgeList(in);
}

}  // namespace mpcspan
