#include "graph/io.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/builder.hpp"

namespace mpcspan {

void writeEdgeList(const Graph& g, std::ostream& out) {
  out.precision(17);  // round-trip exact doubles
  out << "# mpcspan edge list\n";
  out << "n " << g.numVertices() << "\n";
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << ' ' << e.w << "\n";
}

Graph readEdgeList(std::istream& in) {
  std::string line;
  std::size_t n = 0;
  bool haveN = false;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    if (!haveN) {
      std::string tag;
      ss >> tag;
      if (tag != "n" || !(ss >> n))
        throw std::runtime_error("edge list: expected header 'n <count>'");
      haveN = true;
      continue;
    }
    Edge e;
    if (!(ss >> e.u >> e.v)) throw std::runtime_error("edge list: bad edge line: " + line);
    if (!(ss >> e.w)) e.w = 1.0;
    edges.push_back(e);
  }
  if (!haveN) throw std::runtime_error("edge list: missing header");
  return graphFromEdges(n, edges);
}

void writeEdgeListFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  writeEdgeList(g, out);
}

Graph readEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return readEdgeList(in);
}

// ---------------------------------------------------------------------------
// SNAP / DIMACS whitespace edge lists

namespace {

[[noreturn]] void badLine(std::size_t lineNo, const std::string& why,
                          const std::string& line) {
  throw std::runtime_error("snap/dimacs line " + std::to_string(lineNo) + ": " +
                           why + ": " + line);
}

// Strict non-negative integer token (no signs, no trailing junk).
bool parseId(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  out = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (BinReader::kMaxCount - digit) / 10) return false;  // overflow cap
    out = out * 10 + digit;
  }
  return true;
}

bool parseWeight(const std::string& tok, double& out) {
  std::istringstream ss(tok);
  if (!(ss >> out)) return false;
  std::string leftover;
  if (ss >> leftover) return false;
  return std::isfinite(out) && out > 0.0;
}

}  // namespace

Graph readSnapDimacs(std::istream& in) {
  std::string line;
  std::size_t lineNo = 0;
  bool haveHeader = false;  // DIMACS "p sp n m"
  std::uint64_t headerN = 0, headerM = 0, arcCount = 0;
  // Staged (u, v, w) triples; vertex count fixed up afterwards for SNAP.
  std::vector<Edge> staged;
  std::uint64_t maxId = 0;
  bool sawEdge = false;

  while (std::getline(in, line)) {
    ++lineNo;
    std::istringstream ss(line);
    std::string first;
    if (!(ss >> first)) continue;  // blank
    if (first[0] == '#' || first[0] == '%' || first == "c") continue;

    if (first == "p") {
      if (haveHeader) badLine(lineNo, "duplicate DIMACS header", line);
      if (sawEdge) badLine(lineNo, "DIMACS header after edge data", line);
      std::string problem, nTok, mTok, extra;
      if (!(ss >> problem >> nTok >> mTok) || (ss >> extra))
        badLine(lineNo, "malformed 'p' header (want 'p sp <n> <m>')", line);
      if (problem != "sp")
        badLine(lineNo, "unsupported DIMACS problem type '" + problem + "'", line);
      if (!parseId(nTok, headerN) || !parseId(mTok, headerM))
        badLine(lineNo, "non-numeric DIMACS header counts", line);
      haveHeader = true;
      continue;
    }

    std::string uTok, vTok, wTok, extra;
    double w = 1.0;
    if (first == "a") {
      if (!haveHeader) badLine(lineNo, "arc line before 'p sp' header", line);
      if (!(ss >> uTok >> vTok >> wTok) || (ss >> extra))
        badLine(lineNo, "malformed arc (want 'a <u> <v> <w>')", line);
      if (!parseWeight(wTok, w))
        badLine(lineNo, "arc weight must be positive and finite", line);
      ++arcCount;
    } else {
      if (haveHeader)
        badLine(lineNo, "expected 'a' arc line after DIMACS header", line);
      uTok = first;
      if (!(ss >> vTok)) badLine(lineNo, "edge needs two endpoints", line);
      if (ss >> wTok) {
        if (ss >> extra) badLine(lineNo, "trailing tokens after edge", line);
        if (!parseWeight(wTok, w))
          badLine(lineNo, "edge weight must be positive and finite", line);
      }
    }

    std::uint64_t u = 0, v = 0;
    if (!parseId(uTok, u) || !parseId(vTok, v))
      badLine(lineNo, "non-numeric vertex id", line);
    if (haveHeader) {
      // DIMACS ids are 1-indexed and bounded by the header.
      if (u == 0 || v == 0 || u > headerN || v > headerN)
        badLine(lineNo, "vertex id out of DIMACS range [1, n]", line);
      --u;
      --v;
    }
    maxId = std::max(maxId, std::max(u, v));
    staged.push_back(Edge{static_cast<VertexId>(u), static_cast<VertexId>(v),
                          static_cast<Weight>(w)});
    sawEdge = true;
  }
  if (haveHeader && arcCount != headerM)
    throw std::runtime_error("snap/dimacs: header promises " +
                             std::to_string(headerM) + " arcs, file has " +
                             std::to_string(arcCount));

  const std::uint64_t n =
      haveHeader ? headerN : (sawEdge ? maxId + 1 : 0);
  if (n > BinReader::kMaxCount)
    throw std::runtime_error("snap/dimacs: implausible vertex count " +
                             std::to_string(n));
  // GraphBuilder canonicalizes: drops self-loops, orients u < v, collapses
  // parallel edges (and DIMACS forward/backward arc pairs) to min weight.
  GraphBuilder b(static_cast<std::size_t>(n));
  for (const Edge& e : staged) b.addEdge(e.u, e.v, e.w);
  return b.build();
}

Graph readSnapDimacsFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return readSnapDimacs(in);
}

// ---------------------------------------------------------------------------
// Binary primitives

void BinWriter::u32(std::uint32_t x) {
  char buf[4];
  std::memcpy(buf, &x, 4);
  out_.write(buf, 4);
}

void BinWriter::u64(std::uint64_t x) {
  char buf[8];
  std::memcpy(buf, &x, 8);
  out_.write(buf, 8);
}

void BinWriter::f64(double x) {
  char buf[8];
  std::memcpy(buf, &x, 8);
  out_.write(buf, 8);
}

void BinWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  out_.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void BinWriter::u32Vec(const std::vector<std::uint32_t>& xs) {
  u64(xs.size());
  for (std::uint32_t x : xs) u32(x);
}

void BinWriter::u64Vec(const std::vector<std::uint64_t>& xs) {
  u64(xs.size());
  for (std::uint64_t x : xs) u64(x);
}

void BinWriter::f64Vec(const std::vector<double>& xs) {
  u64(xs.size());
  for (double x : xs) f64(x);
}

void BinReader::bytes(void* dst, std::size_t len) {
  in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(len));
  if (static_cast<std::size_t>(in_.gcount()) != len)
    fail("truncated (unexpected end of stream)");
}

std::uint32_t BinReader::u32() {
  std::uint32_t x;
  bytes(&x, 4);
  return x;
}

std::uint64_t BinReader::u64() {
  std::uint64_t x;
  bytes(&x, 8);
  return x;
}

double BinReader::f64() {
  double x;
  bytes(&x, 8);
  return x;
}

std::uint64_t BinReader::count(std::uint64_t maxCount) {
  const std::uint64_t c = u64();
  if (c > maxCount)
    fail("implausible count " + std::to_string(c) + " (corrupt length field)");
  return c;
}

std::string BinReader::str(std::uint64_t maxLen) {
  const std::uint32_t len = u32();
  if (len > maxLen) fail("implausible string length " + std::to_string(len));
  std::string s(len, '\0');
  if (len) bytes(s.data(), len);
  return s;
}

std::vector<std::uint32_t> BinReader::u32Vec(std::uint64_t maxCount) {
  const std::uint64_t c = count(maxCount);
  std::vector<std::uint32_t> xs(static_cast<std::size_t>(c));
  for (auto& x : xs) x = u32();
  return xs;
}

std::vector<std::uint64_t> BinReader::u64Vec(std::uint64_t maxCount) {
  const std::uint64_t c = count(maxCount);
  std::vector<std::uint64_t> xs(static_cast<std::size_t>(c));
  for (auto& x : xs) x = u64();
  return xs;
}

std::vector<double> BinReader::f64Vec(std::uint64_t maxCount) {
  const std::uint64_t c = count(maxCount);
  std::vector<double> xs(static_cast<std::size_t>(c));
  for (auto& x : xs) x = f64();
  return xs;
}

void BinReader::expectEof() {
  if (in_.peek() != std::char_traits<char>::eof())
    fail("trailing bytes after payload");
}

void BinReader::fail(const std::string& why) const {
  throw std::runtime_error(std::string(what_) + ": " + why);
}

// ---------------------------------------------------------------------------
// Binary graph

namespace {
constexpr std::uint32_t kGraphMagic = 0x4247504du;  // "MPGB" little-endian
constexpr std::uint32_t kGraphVersion = 1;
}  // namespace

void writeGraphBinary(const Graph& g, std::ostream& out) {
  BinWriter w(out);
  w.u32(kGraphMagic);
  w.u32(kGraphVersion);
  w.u64(g.numVertices());
  w.u64(g.numEdges());
  for (const Edge& e : g.edges()) {
    w.u32(e.u);
    w.u32(e.v);
    w.f64(e.w);
  }
}

Graph readGraphBinary(std::istream& in) {
  BinReader r(in, "binary graph");
  if (r.u32() != kGraphMagic) r.fail("bad magic (not an mpcspan binary graph)");
  const std::uint32_t version = r.u32();
  if (version != kGraphVersion)
    r.fail("unsupported version " + std::to_string(version));
  const std::uint64_t n = r.count();
  const std::uint64_t m = r.count();
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  for (std::uint64_t i = 0; i < m; ++i) {
    Edge e;
    e.u = r.u32();
    e.v = r.u32();
    e.w = r.f64();
    if (e.u >= n || e.v >= n) r.fail("edge endpoint out of range");
    if (!(e.w > 0.0) || !std::isfinite(e.w))
      r.fail("edge weight must be positive and finite");
    edges.push_back(e);
  }
  // graphFromEdges re-canonicalizes; a Graph's own edges are already
  // canonical, so ids round-trip unchanged.
  return graphFromEdges(static_cast<std::size_t>(n), edges);
}

}  // namespace mpcspan
