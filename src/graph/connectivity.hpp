// Connectivity helpers: component labelling and the spanning-property check
// every spanner must satisfy (a spanner preserves connectivity exactly).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mpcspan {

/// Component label per vertex (labels are representative vertex ids).
std::vector<VertexId> componentLabels(const Graph& g);

std::size_t numComponents(const Graph& g);

/// True if the subgraph formed by `edgeIds` has exactly the same connected
/// components as g itself.
bool sameComponents(const Graph& g, const std::vector<EdgeId>& edgeIds);

/// Extracts the subgraph of g containing only `edgeIds` (vertex set kept).
Graph subgraph(const Graph& g, const std::vector<EdgeId>& edgeIds);

}  // namespace mpcspan
