#include "graph/distance.hpp"

#include <queue>
#include <utility>

namespace mpcspan {

namespace {
using QItem = std::pair<Weight, VertexId>;  // (dist, vertex), min-heap
using MinHeap = std::priority_queue<QItem, std::vector<QItem>, std::greater<>>;
}  // namespace

std::vector<Weight> dijkstra(const Graph& g, VertexId src) {
  return dijkstraBounded(g, src, kInfDist);
}

std::vector<Weight> dijkstraBounded(const Graph& g, VertexId src, Weight bound) {
  std::vector<Weight> dist(g.numVertices(), kInfDist);
  MinHeap heap;
  dist[src] = 0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    for (const Incidence& inc : g.neighbors(v)) {
      const Weight nd = d + g.edge(inc.edge).w;
      if (nd < dist[inc.to] && nd <= bound) {
        dist[inc.to] = nd;
        heap.emplace(nd, inc.to);
      }
    }
  }
  return dist;
}

Weight dijkstraPair(const Graph& g, VertexId src, VertexId dst, Weight bound) {
  if (src == dst) return 0;
  std::vector<Weight> dist(g.numVertices(), kInfDist);
  MinHeap heap;
  dist[src] = 0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    if (v == dst) return d;
    for (const Incidence& inc : g.neighbors(v)) {
      const Weight nd = d + g.edge(inc.edge).w;
      if (nd < dist[inc.to] && nd <= bound) {
        dist[inc.to] = nd;
        heap.emplace(nd, inc.to);
      }
    }
  }
  return kInfDist;
}

std::vector<std::uint32_t> bfsHops(const Graph& g, VertexId src) {
  std::vector<std::uint32_t> hops(g.numVertices(), kInfHops);
  std::vector<VertexId> frontier{src};
  hops[src] = 0;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    std::vector<VertexId> next;
    for (VertexId v : frontier)
      for (const Incidence& inc : g.neighbors(v))
        if (hops[inc.to] == kInfHops) {
          hops[inc.to] = depth;
          next.push_back(inc.to);
        }
    frontier = std::move(next);
  }
  return hops;
}

MultiSourceBfs multiSourceBfs(const Graph& g, const std::vector<VertexId>& sources,
                              std::uint32_t maxDepth) {
  MultiSourceBfs out;
  out.hops.assign(g.numVertices(), kInfHops);
  out.parentEdge.assign(g.numVertices(), kNoEdge);
  out.source.assign(g.numVertices(), kNoVertex);
  std::vector<VertexId> frontier;
  for (VertexId s : sources) {
    if (out.hops[s] != kInfHops) continue;
    out.hops[s] = 0;
    out.source[s] = s;
    frontier.push_back(s);
  }
  std::uint32_t depth = 0;
  while (!frontier.empty() && depth < maxDepth) {
    ++depth;
    std::vector<VertexId> next;
    for (VertexId v : frontier)
      for (const Incidence& inc : g.neighbors(v))
        if (out.hops[inc.to] == kInfHops) {
          out.hops[inc.to] = depth;
          out.parentEdge[inc.to] = inc.edge;
          out.source[inc.to] = out.source[v];
          next.push_back(inc.to);
        }
    frontier = std::move(next);
  }
  return out;
}

BfsBall bfsBall(const Graph& g, VertexId src, std::uint32_t maxHops,
                std::size_t maxVertices) {
  BfsBall ball;
  if (maxVertices == 0) {
    ball.complete = false;
    return ball;
  }
  std::vector<char> seen(g.numVertices(), 0);
  std::vector<VertexId> frontier{src};
  seen[src] = 1;
  ball.vertices.push_back(src);
  std::uint32_t depth = 0;
  while (!frontier.empty() && depth < maxHops) {
    ++depth;
    std::vector<VertexId> next;
    for (VertexId v : frontier)
      for (const Incidence& inc : g.neighbors(v)) {
        if (seen[inc.to]) continue;
        if (ball.vertices.size() >= maxVertices) {
          ball.complete = false;
          return ball;
        }
        seen[inc.to] = 1;
        ball.vertices.push_back(inc.to);
        next.push_back(inc.to);
      }
    frontier = std::move(next);
  }
  return ball;
}

std::vector<std::vector<Weight>> allPairs(const Graph& g) {
  std::vector<std::vector<Weight>> out;
  out.reserve(g.numVertices());
  for (VertexId v = 0; v < g.numVertices(); ++v) out.push_back(dijkstra(g, v));
  return out;
}

}  // namespace mpcspan
