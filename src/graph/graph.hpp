// Core graph type: an immutable, weighted, undirected simple graph in CSR
// (compressed sparse row) form. Every spanner algorithm consumes this type
// and returns a subset of its edge ids, so edge identity is first-class:
// edge id e refers to edges()[e], and incidence lists store (neighbour,
// edge id) pairs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mpcspan {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;
using Weight = double;

inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);
inline constexpr EdgeId kNoEdge = static_cast<EdgeId>(-1);

/// An undirected weighted edge with u < v (canonical orientation).
struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  Weight w = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Half-edge stored in incidence lists: the far endpoint plus the id of the
/// underlying undirected edge.
struct Incidence {
  VertexId to = 0;
  EdgeId edge = 0;
};

class GraphBuilder;

class Graph {
 public:
  Graph() = default;

  std::size_t numVertices() const { return n_; }
  std::size_t numEdges() const { return edges_.size(); }

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Incidence list of v, each entry the far endpoint and edge id.
  std::span<const Incidence> neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  std::size_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Far endpoint of edge e as seen from `from` (which must be an endpoint).
  VertexId opposite(EdgeId e, VertexId from) const {
    const Edge& ed = edges_[e];
    return ed.u == from ? ed.v : ed.u;
  }

  /// True if every edge has weight exactly 1.
  bool isUnweighted() const { return unweighted_; }

  /// Total weight of all edges.
  Weight totalWeight() const;

  /// Maximum edge weight (0 for the empty graph).
  Weight maxWeight() const;

 private:
  friend class GraphBuilder;

  std::size_t n_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::size_t> offsets_;  // n_ + 1 entries
  std::vector<Incidence> adj_;        // 2 * numEdges() entries
  bool unweighted_ = true;
};

}  // namespace mpcspan
