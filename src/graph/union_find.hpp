// Union-find with path halving + union by size. The PRAM section of the
// paper implements cluster merging "like a union find data structure"; here
// it backs connectivity checks and the spanning-forest substrate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mpcspan {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  std::uint32_t find(std::uint32_t x);

  /// Merges the sets of a and b; returns false if already joined.
  bool unite(std::uint32_t a, std::uint32_t b);

  bool connected(std::uint32_t a, std::uint32_t b) { return find(a) == find(b); }

  std::size_t numComponents() const { return components_; }
  std::size_t size() const { return parent_.size(); }
  std::size_t componentSize(std::uint32_t x) { return size_[find(x)]; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t components_;
};

}  // namespace mpcspan
