// Quotient-graph construction (Definition 5.1): contract a clustering into
// super-nodes, keep the minimum-weight edge between every super-node pair.
// The spanner engine performs contractions incrementally on its own state;
// this standalone helper is the reference implementation used by tests and
// by the Appendix-B algorithm's recursion on the contracted graph.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace mpcspan {

struct Quotient {
  Graph graph;                          // super-graph; weights = min over class
  std::vector<VertexId> superOf;        // original vertex -> super-node id
  std::vector<EdgeId> representative;   // super-edge id -> original edge id
  std::size_t numClasses = 0;
};

/// `clusterOf[v]` assigns each vertex a cluster label (any uint32 values;
/// vertices labelled kNoVertex are dropped from the quotient). Edges whose
/// endpoints share a label become self-loops and disappear.
Quotient quotientGraph(const Graph& g, const std::vector<VertexId>& clusterOf);

}  // namespace mpcspan
