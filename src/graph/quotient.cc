#include "graph/quotient.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/builder.hpp"

namespace mpcspan {

Quotient quotientGraph(const Graph& g, const std::vector<VertexId>& clusterOf) {
  Quotient q;
  q.superOf.assign(g.numVertices(), kNoVertex);
  // Compact labels into 0..numClasses-1 deterministically (by label value).
  std::vector<VertexId> labels;
  labels.reserve(g.numVertices());
  for (VertexId v = 0; v < g.numVertices(); ++v)
    if (clusterOf[v] != kNoVertex) labels.push_back(clusterOf[v]);
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  q.numClasses = labels.size();
  std::unordered_map<VertexId, VertexId> compact;
  compact.reserve(labels.size() * 2);
  for (VertexId i = 0; i < labels.size(); ++i) compact.emplace(labels[i], i);
  for (VertexId v = 0; v < g.numVertices(); ++v)
    if (clusterOf[v] != kNoVertex) q.superOf[v] = compact.at(clusterOf[v]);

  // Min-weight representative per super-node pair.
  struct Best {
    Weight w;
    EdgeId id;
  };
  std::unordered_map<std::uint64_t, Best> best;
  best.reserve(g.numEdges());
  for (EdgeId id = 0; id < g.numEdges(); ++id) {
    const Edge& e = g.edge(id);
    VertexId a = q.superOf[e.u];
    VertexId b = q.superOf[e.v];
    if (a == kNoVertex || b == kNoVertex || a == b) continue;
    if (a > b) std::swap(a, b);
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    auto [it, inserted] = best.try_emplace(key, Best{e.w, id});
    if (!inserted && (e.w < it->second.w ||
                      (e.w == it->second.w && id < it->second.id)))
      it->second = Best{e.w, id};
  }

  GraphBuilder b(q.numClasses);
  std::vector<std::pair<std::uint64_t, Best>> sorted(best.begin(), best.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  q.representative.reserve(sorted.size());
  for (const auto& [key, val] : sorted) {
    b.addEdge(static_cast<VertexId>(key >> 32),
              static_cast<VertexId>(key & 0xffffffffu), val.w);
    q.representative.push_back(val.id);
  }
  q.graph = b.build();
  return q;
}

}  // namespace mpcspan
