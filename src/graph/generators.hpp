// Synthetic graph workloads. The paper's theorems are worst-case over all
// graphs; the benchmark harness exercises them across families with very
// different degree/girth/weight structure:
//   - G(n,m) and G(n,p): the classical sparse/dense random regimes,
//   - Barabási–Albert: heavy-tailed degrees (the "social network" workload
//     the MPC literature motivates),
//   - grid / torus / random geometric: high-girth, spatial ("road network"),
//   - cycle / path / star / complete / hypercube: structured extremes.
// Every generator is deterministic given the Rng.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace mpcspan {

/// How edge weights are drawn.
enum class WeightModel {
  kUnit,         // all weights 1 (unweighted)
  kUniform,      // uniform real in [1, wMax)
  kInteger,      // uniform integer in {1, ..., round(wMax)}
  kExponential,  // 1 + Exp(1) scaled into [1, ~wMax]; heavy right tail
};

struct WeightSpec {
  WeightModel model = WeightModel::kUnit;
  double wMax = 100.0;
};

/// Draws one weight according to `spec`.
Weight drawWeight(const WeightSpec& spec, Rng& rng);

/// Erdős–Rényi G(n,m): exactly m distinct edges chosen uniformly (collisions
/// resampled), optionally overlaid with a Hamiltonian cycle so the graph is
/// connected ("connected=true" adds n extra edges).
Graph gnmRandom(std::size_t n, std::size_t m, Rng& rng,
                const WeightSpec& weights = {}, bool connected = false);

/// Erdős–Rényi G(n,p) by geometric skipping; O(n + m) time.
Graph gnpRandom(std::size_t n, double p, Rng& rng, const WeightSpec& weights = {});

/// Barabási–Albert preferential attachment; each new vertex attaches
/// `attach` edges. Yields a connected heavy-tailed graph.
Graph barabasiAlbert(std::size_t n, std::size_t attach, Rng& rng,
                     const WeightSpec& weights = {});

/// w x h grid; 4-neighbour connectivity. torus=true wraps both dimensions.
Graph grid2d(std::size_t w, std::size_t h, Rng& rng,
             const WeightSpec& weights = {}, bool torus = false);

/// Random geometric graph: n points in the unit square, edges below distance
/// `radius`, weight = Euclidean distance scaled by weights.wMax (for kUnit
/// weights the edges are unit). Uses a cell grid; ~O(n + m).
Graph randomGeometric(std::size_t n, double radius, Rng& rng, bool euclideanWeights = true);

Graph cycleGraph(std::size_t n, Rng& rng, const WeightSpec& weights = {});
Graph pathGraph(std::size_t n, Rng& rng, const WeightSpec& weights = {});
Graph starGraph(std::size_t n, Rng& rng, const WeightSpec& weights = {});
Graph completeGraph(std::size_t n, Rng& rng, const WeightSpec& weights = {});

/// d-dimensional hypercube on 2^d vertices.
Graph hypercube(std::size_t dims, Rng& rng, const WeightSpec& weights = {});

/// Watts–Strogatz small world: ring lattice where each vertex connects to
/// its `nearest` nearest neighbours (must be even), each edge rewired with
/// probability beta. Interpolates between high-girth lattices (beta=0) and
/// random graphs (beta=1).
Graph wattsStrogatz(std::size_t n, std::size_t nearest, double beta, Rng& rng,
                    const WeightSpec& weights = {});

/// Named family selector used by benchmarks and parameterized tests.
enum class Family { kGnm, kBarabasiAlbert, kGrid, kGeometric, kCycle, kHypercube, kComplete };

const char* familyName(Family f);

/// Builds a graph of roughly n vertices / targetAvgDeg average degree for the
/// given family (families with fixed structure ignore targetAvgDeg).
Graph makeFamily(Family f, std::size_t n, double targetAvgDeg, Rng& rng,
                 const WeightSpec& weights = {});

}  // namespace mpcspan
