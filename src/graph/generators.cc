#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "graph/builder.hpp"

namespace mpcspan {

Weight drawWeight(const WeightSpec& spec, Rng& rng) {
  switch (spec.model) {
    case WeightModel::kUnit:
      return 1.0;
    case WeightModel::kUniform:
      return rng.uniform(1.0, spec.wMax);
    case WeightModel::kInteger: {
      const auto top = static_cast<std::uint64_t>(std::max(1.0, spec.wMax));
      return 1.0 + static_cast<double>(rng.next(top));
    }
    case WeightModel::kExponential: {
      // Inverse-CDF exponential, truncated so weights stay finite.
      const double u = std::max(rng.uniform(), 1e-12);
      const double x = -std::log(u);  // Exp(1)
      return 1.0 + std::min(x, 40.0) * (spec.wMax / 8.0);
    }
  }
  return 1.0;
}

namespace {
std::uint64_t edgeKey(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}
}  // namespace

Graph gnmRandom(std::size_t n, std::size_t m, Rng& rng, const WeightSpec& weights,
                bool connected) {
  if (n < 2) return GraphBuilder(n).build();
  const std::size_t maxEdges = n * (n - 1) / 2;
  if (m > maxEdges) m = maxEdges;
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  if (connected) {
    for (VertexId v = 0; v < n; ++v) {
      const VertexId u = static_cast<VertexId>((v + 1) % n);
      if (seen.insert(edgeKey(v, u)).second) b.addEdge(v, u, drawWeight(weights, rng));
    }
  }
  std::size_t added = 0;
  // The connected overlay may already occupy some of the maxEdges pairs;
  // stop when the graph is complete rather than resampling forever.
  while (added < m && seen.size() < maxEdges) {
    const auto u = static_cast<VertexId>(rng.next(n));
    const auto v = static_cast<VertexId>(rng.next(n));
    if (u == v) continue;
    if (!seen.insert(edgeKey(u, v)).second) continue;
    b.addEdge(u, v, drawWeight(weights, rng));
    ++added;
  }
  return b.build();
}

Graph gnpRandom(std::size_t n, double p, Rng& rng, const WeightSpec& weights) {
  GraphBuilder b(n);
  if (p <= 0.0 || n < 2) return b.build();
  if (p >= 1.0) return completeGraph(n, rng, weights);
  // Geometric skipping over the n*(n-1)/2 potential edges.
  const double logq = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (v < nn) {
    const double u = std::max(rng.uniform(), 1e-300);
    w += 1 + static_cast<std::int64_t>(std::floor(std::log(u) / logq));
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn)
      b.addEdge(static_cast<VertexId>(v), static_cast<VertexId>(w), drawWeight(weights, rng));
  }
  return b.build();
}

Graph barabasiAlbert(std::size_t n, std::size_t attach, Rng& rng, const WeightSpec& weights) {
  if (attach == 0) attach = 1;
  if (n < attach + 1) n = attach + 1;
  GraphBuilder b(n);
  // Repeated-endpoint list: sampling a uniform element gives a vertex with
  // probability proportional to its degree (plus one smoothing entry each).
  std::vector<VertexId> pool;
  pool.reserve(2 * n * attach);
  // Seed clique on the first attach+1 vertices.
  for (VertexId u = 0; u <= attach; ++u)
    for (VertexId v = u + 1; v <= attach; ++v) {
      b.addEdge(u, v, drawWeight(weights, rng));
      pool.push_back(u);
      pool.push_back(v);
    }
  for (VertexId v = static_cast<VertexId>(attach + 1); v < n; ++v) {
    std::unordered_set<VertexId> targets;
    while (targets.size() < attach) {
      const VertexId t = pool[rng.next(pool.size())];
      if (t != v) targets.insert(t);
    }
    for (VertexId t : targets) {
      b.addEdge(v, t, drawWeight(weights, rng));
      pool.push_back(v);
      pool.push_back(t);
    }
  }
  return b.build();
}

Graph grid2d(std::size_t w, std::size_t h, Rng& rng, const WeightSpec& weights, bool torus) {
  GraphBuilder b(w * h);
  auto id = [w](std::size_t x, std::size_t y) {
    return static_cast<VertexId>(y * w + x);
  };
  for (std::size_t y = 0; y < h; ++y)
    for (std::size_t x = 0; x < w; ++x) {
      if (x + 1 < w)
        b.addEdge(id(x, y), id(x + 1, y), drawWeight(weights, rng));
      else if (torus && w > 2)
        b.addEdge(id(x, y), id(0, y), drawWeight(weights, rng));
      if (y + 1 < h)
        b.addEdge(id(x, y), id(x, y + 1), drawWeight(weights, rng));
      else if (torus && h > 2)
        b.addEdge(id(x, y), id(x, 0), drawWeight(weights, rng));
    }
  return b.build();
}

Graph randomGeometric(std::size_t n, double radius, Rng& rng, bool euclideanWeights) {
  GraphBuilder b(n);
  std::vector<double> xs(n), ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform();
    ys[i] = rng.uniform();
  }
  const double r2 = radius * radius;
  const std::size_t cells = std::max<std::size_t>(1, static_cast<std::size_t>(1.0 / std::max(radius, 1e-6)));
  std::vector<std::vector<VertexId>> grid(cells * cells);
  auto cellOf = [&](double x) {
    auto c = static_cast<std::size_t>(x * static_cast<double>(cells));
    return std::min(c, cells - 1);
  };
  for (std::size_t i = 0; i < n; ++i)
    grid[cellOf(ys[i]) * cells + cellOf(xs[i])].push_back(static_cast<VertexId>(i));
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cx = cellOf(xs[i]);
    const std::size_t cy = cellOf(ys[i]);
    for (std::size_t dy = (cy == 0 ? 0 : cy - 1); dy <= std::min(cy + 1, cells - 1); ++dy)
      for (std::size_t dx = (cx == 0 ? 0 : cx - 1); dx <= std::min(cx + 1, cells - 1); ++dx)
        for (VertexId j : grid[dy * cells + dx]) {
          if (j <= i) continue;
          const double ddx = xs[i] - xs[j];
          const double ddy = ys[i] - ys[j];
          const double d2 = ddx * ddx + ddy * ddy;
          if (d2 <= r2) {
            const Weight w = euclideanWeights ? (1e-6 + std::sqrt(d2)) : 1.0;
            b.addEdge(static_cast<VertexId>(i), j, w);
          }
        }
  }
  return b.build();
}

Graph cycleGraph(std::size_t n, Rng& rng, const WeightSpec& weights) {
  GraphBuilder b(n);
  if (n >= 3)
    for (VertexId v = 0; v < n; ++v)
      b.addEdge(v, static_cast<VertexId>((v + 1) % n), drawWeight(weights, rng));
  else if (n == 2)
    b.addEdge(0, 1, drawWeight(weights, rng));
  return b.build();
}

Graph pathGraph(std::size_t n, Rng& rng, const WeightSpec& weights) {
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v)
    b.addEdge(v, v + 1, drawWeight(weights, rng));
  return b.build();
}

Graph starGraph(std::size_t n, Rng& rng, const WeightSpec& weights) {
  GraphBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.addEdge(0, v, drawWeight(weights, rng));
  return b.build();
}

Graph completeGraph(std::size_t n, Rng& rng, const WeightSpec& weights) {
  GraphBuilder b(n);
  for (VertexId u = 0; u < n; ++u)
    for (VertexId v = u + 1; v < n; ++v) b.addEdge(u, v, drawWeight(weights, rng));
  return b.build();
}

Graph hypercube(std::size_t dims, Rng& rng, const WeightSpec& weights) {
  const std::size_t n = std::size_t{1} << dims;
  GraphBuilder b(n);
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t d = 0; d < dims; ++d) {
      const std::size_t u = v ^ (std::size_t{1} << d);
      if (u > v) b.addEdge(static_cast<VertexId>(v), static_cast<VertexId>(u),
                           drawWeight(weights, rng));
    }
  return b.build();
}

Graph wattsStrogatz(std::size_t n, std::size_t nearest, double beta, Rng& rng,
                    const WeightSpec& weights) {
  if (nearest % 2 != 0) ++nearest;
  if (n < nearest + 2) return cycleGraph(n, rng, weights);
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> present;
  present.reserve(n * nearest);
  auto tryAdd = [&](VertexId u, VertexId v) {
    if (u == v) return false;
    return present.insert(edgeKey(u, v)).second;
  };
  for (VertexId v = 0; v < n; ++v)
    for (std::size_t d = 1; d <= nearest / 2; ++d) {
      VertexId u = static_cast<VertexId>((v + d) % n);
      if (rng.coin(beta)) {
        // Rewire to a uniform non-duplicate endpoint; fall back to the ring
        // edge if the vertex is saturated.
        for (int tries = 0; tries < 16; ++tries) {
          const auto cand = static_cast<VertexId>(rng.next(n));
          if (tryAdd(v, cand)) {
            b.addEdge(v, cand, drawWeight(weights, rng));
            u = kNoVertex;
            break;
          }
        }
        if (u == kNoVertex) continue;
      }
      if (tryAdd(v, u)) b.addEdge(v, u, drawWeight(weights, rng));
    }
  return b.build();
}

const char* familyName(Family f) {
  switch (f) {
    case Family::kGnm: return "gnm";
    case Family::kBarabasiAlbert: return "barabasi-albert";
    case Family::kGrid: return "grid";
    case Family::kGeometric: return "geometric";
    case Family::kCycle: return "cycle";
    case Family::kHypercube: return "hypercube";
    case Family::kComplete: return "complete";
  }
  return "?";
}

Graph makeFamily(Family f, std::size_t n, double targetAvgDeg, Rng& rng,
                 const WeightSpec& weights) {
  switch (f) {
    case Family::kGnm: {
      const auto m = static_cast<std::size_t>(static_cast<double>(n) * targetAvgDeg / 2.0);
      return gnmRandom(n, m, rng, weights, /*connected=*/true);
    }
    case Family::kBarabasiAlbert: {
      const auto attach = std::max<std::size_t>(1, static_cast<std::size_t>(targetAvgDeg / 2.0));
      return barabasiAlbert(n, attach, rng, weights);
    }
    case Family::kGrid: {
      const auto side = std::max<std::size_t>(2, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
      return grid2d(side, side, rng, weights);
    }
    case Family::kGeometric: {
      // radius tuned so expected degree ~ n * pi * r^2 = targetAvgDeg.
      const double r = std::sqrt(targetAvgDeg / (3.14159265358979 * static_cast<double>(n)));
      return randomGeometric(n, r, rng, weights.model != WeightModel::kUnit);
    }
    case Family::kCycle:
      return cycleGraph(n, rng, weights);
    case Family::kHypercube: {
      std::size_t d = 1;
      while ((std::size_t{1} << (d + 1)) <= n) ++d;
      return hypercube(d, rng, weights);
    }
    case Family::kComplete:
      return completeGraph(n, rng, weights);
  }
  return Graph{};
}

}  // namespace mpcspan
