#include "graph/builder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace mpcspan {

GraphBuilder::GraphBuilder(std::size_t numVertices) : n_(numVertices) {}

void GraphBuilder::addEdge(VertexId u, VertexId v, Weight w) {
  if (u >= n_ || v >= n_) throw std::out_of_range("GraphBuilder: vertex id out of range");
  if (!(w > 0.0) || !std::isfinite(w))
    throw std::invalid_argument("GraphBuilder: edge weight must be positive and finite");
  if (u == v) return;  // self-loops contribute nothing to any spanner
  if (u > v) std::swap(u, v);
  staged_.push_back(Edge{u, v, w});
}

Graph GraphBuilder::build() const {
  std::vector<Edge> edges = staged_;
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.w < b.w;
  });
  // Collapse parallel edges, keeping the minimum weight (sorted first).
  std::vector<Edge> unique;
  unique.reserve(edges.size());
  for (const Edge& e : edges) {
    if (!unique.empty() && unique.back().u == e.u && unique.back().v == e.v) continue;
    unique.push_back(e);
  }

  Graph g;
  g.n_ = n_;
  g.edges_ = std::move(unique);
  g.unweighted_ = true;
  for (const Edge& e : g.edges_)
    if (e.w != 1.0) {
      g.unweighted_ = false;
      break;
    }

  g.offsets_.assign(n_ + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  for (std::size_t i = 0; i < n_; ++i) g.offsets_[i + 1] += g.offsets_[i];
  g.adj_.resize(2 * g.edges_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId id = 0; id < g.edges_.size(); ++id) {
    const Edge& e = g.edges_[id];
    g.adj_[cursor[e.u]++] = Incidence{e.v, id};
    g.adj_[cursor[e.v]++] = Incidence{e.u, id};
  }
  return g;
}

Graph graphFromEdges(std::size_t numVertices, const std::vector<Edge>& edges) {
  GraphBuilder b(numVertices);
  for (const Edge& e : edges) b.addEdge(e.u, e.v, e.w);
  return b.build();
}

}  // namespace mpcspan
