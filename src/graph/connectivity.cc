#include "graph/connectivity.hpp"

#include "graph/builder.hpp"
#include "graph/union_find.hpp"

namespace mpcspan {

std::vector<VertexId> componentLabels(const Graph& g) {
  UnionFind uf(g.numVertices());
  for (const Edge& e : g.edges()) uf.unite(e.u, e.v);
  std::vector<VertexId> label(g.numVertices());
  for (VertexId v = 0; v < g.numVertices(); ++v) label[v] = uf.find(v);
  return label;
}

std::size_t numComponents(const Graph& g) {
  UnionFind uf(g.numVertices());
  for (const Edge& e : g.edges()) uf.unite(e.u, e.v);
  return uf.numComponents();
}

bool sameComponents(const Graph& g, const std::vector<EdgeId>& edgeIds) {
  UnionFind sub(g.numVertices());
  for (EdgeId id : edgeIds) sub.unite(g.edge(id).u, g.edge(id).v);
  // The spanner is a subgraph, so its components refine g's; equality holds
  // iff every g-edge stays inside one spanner component.
  for (const Edge& e : g.edges())
    if (!sub.connected(e.u, e.v)) return false;
  return true;
}

Graph subgraph(const Graph& g, const std::vector<EdgeId>& edgeIds) {
  GraphBuilder b(g.numVertices());
  for (EdgeId id : edgeIds) {
    const Edge& e = g.edge(id);
    b.addEdge(e.u, e.v, e.w);
  }
  return b.build();
}

}  // namespace mpcspan
