// Plain-text edge-list I/O ("u v w" per line, '#' comments, a leading
// "n <count>" header fixing the vertex count). Lets examples persist and
// reload workloads.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace mpcspan {

void writeEdgeList(const Graph& g, std::ostream& out);
Graph readEdgeList(std::istream& in);

void writeEdgeListFile(const Graph& g, const std::string& path);
Graph readEdgeListFile(const std::string& path);

}  // namespace mpcspan
