// Graph I/O.
//
// Three formats:
//  - the repo's plain-text edge list ("u v w" per line, '#' comments, a
//    leading "n <count>" header fixing the vertex count),
//  - a little-endian binary graph section (writeGraphBinary/readGraphBinary)
//    used standalone and as the graph section of the query artifacts
//    (src/query/build.hpp), built on the bounds-checked BinWriter/BinReader
//    primitives exported here,
//  - a minimal loader for public big-graph formats: SNAP whitespace edge
//    lists ("u v [w]", '#'/'%' comments, n inferred) and DIMACS shortest
//    -path files ("c" comments, "p sp n m" header, "a u v w" arcs,
//    1-indexed). Both are deduplicated and canonicalized via GraphBuilder.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace mpcspan {

void writeEdgeList(const Graph& g, std::ostream& out);
Graph readEdgeList(std::istream& in);

void writeEdgeListFile(const Graph& g, const std::string& path);
Graph readEdgeListFile(const std::string& path);

/// SNAP / DIMACS whitespace edge-list loader. Accepts SNAP-style rows
/// "u v [w]" (0-indexed ids; vertex count inferred as max id + 1) and
/// DIMACS-sp files ("p sp <n> <m>" header, "a u v w" arcs, 1-indexed ids
/// validated against the header). Comment lines start with '#', '%', or
/// "c". Self-loops are dropped and parallel edges collapse to the minimum
/// weight (GraphBuilder canonicalization). Throws std::runtime_error with
/// the offending line number on malformed input (non-numeric tokens,
/// non-positive or non-finite weights, ids out of range, trailing tokens).
Graph readSnapDimacs(std::istream& in);
Graph readSnapDimacsFile(const std::string& path);

/// Little-endian binary serialization primitives with explicit bounds
/// checks: every read validates the stream state and every count is capped
/// before sizing a container, so truncated or corrupt inputs surface as
/// std::runtime_error instead of huge allocations or partially valid
/// objects.
class BinWriter {
 public:
  explicit BinWriter(std::ostream& out) : out_(out) {}
  void u32(std::uint32_t x);
  void u64(std::uint64_t x);
  void f64(double x);
  void str(const std::string& s);  // u32 length + bytes
  void u32Vec(const std::vector<std::uint32_t>& xs);
  void u64Vec(const std::vector<std::uint64_t>& xs);
  void f64Vec(const std::vector<double>& xs);

 private:
  std::ostream& out_;
};

class BinReader {
 public:
  /// `what` names the format in error messages ("artifact", "graph", ...).
  BinReader(std::istream& in, const char* what) : in_(in), what_(what) {}

  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str(std::uint64_t maxLen = kMaxCount);
  /// Reads a u64 count, rejecting values above `maxCount` (default: the
  /// global plausibility cap) before any allocation happens.
  std::uint64_t count(std::uint64_t maxCount = kMaxCount);
  std::vector<std::uint32_t> u32Vec(std::uint64_t maxCount = kMaxCount);
  std::vector<std::uint64_t> u64Vec(std::uint64_t maxCount = kMaxCount);
  std::vector<double> f64Vec(std::uint64_t maxCount = kMaxCount);
  /// Throws unless the stream is exactly exhausted.
  void expectEof();
  [[noreturn]] void fail(const std::string& why) const;

  static constexpr std::uint64_t kMaxCount = 1ull << 30;

 private:
  void bytes(void* dst, std::size_t len);

  std::istream& in_;
  const char* what_;
};

/// Binary graph: "MPGB" magic, format version, n, m, canonical (u, v, w)
/// edge triples. Round-trips a Graph exactly (edge ids included).
void writeGraphBinary(const Graph& g, std::ostream& out);
Graph readGraphBinary(std::istream& in);

}  // namespace mpcspan
