#include "graph/graph.hpp"

namespace mpcspan {

Weight Graph::totalWeight() const {
  Weight sum = 0;
  for (const Edge& e : edges_) sum += e.w;
  return sum;
}

Weight Graph::maxWeight() const {
  Weight best = 0;
  for (const Edge& e : edges_) best = best > e.w ? best : e.w;
  return best;
}

}  // namespace mpcspan
