// Mutable staging area for constructing a Graph. Deduplicates parallel edges
// (keeping the minimum weight, which is the only edge a spanner could ever
// use) and drops self-loops, so the resulting Graph is always simple.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace mpcspan {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t numVertices);

  /// Adds an undirected edge; orientation is normalized internally.
  /// Self-loops are ignored. Weights must be positive and finite.
  void addEdge(VertexId u, VertexId v, Weight w = 1.0);

  std::size_t numVertices() const { return n_; }
  std::size_t numStagedEdges() const { return staged_.size(); }

  /// Finalizes into an immutable Graph. Parallel edges collapse to the
  /// minimum-weight representative. The builder may be reused afterwards.
  Graph build() const;

 private:
  std::size_t n_;
  std::vector<Edge> staged_;
};

/// Convenience: builds a graph straight from an edge list.
Graph graphFromEdges(std::size_t numVertices, const std::vector<Edge>& edges);

}  // namespace mpcspan
