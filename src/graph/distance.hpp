// Exact distance computations used both as reference oracles (to *measure*
// spanner stretch) and as the local computation step of the APSP application
// (Section 7: ship the spanner to one machine, answer queries there).
#pragma once

#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace mpcspan {

inline constexpr Weight kInfDist = std::numeric_limits<Weight>::infinity();

/// Dijkstra from `src`; returns dist[v] (kInfDist if unreachable).
std::vector<Weight> dijkstra(const Graph& g, VertexId src);

/// Dijkstra truncated at `bound`: any vertex farther than bound keeps
/// kInfDist. Used for cheap per-edge stretch certificates.
std::vector<Weight> dijkstraBounded(const Graph& g, VertexId src, Weight bound);

/// Single-pair Dijkstra with early exit; returns kInfDist if d(src,dst) > bound.
Weight dijkstraPair(const Graph& g, VertexId src, VertexId dst, Weight bound = kInfDist);

/// BFS hop distances from `src` (treats the graph as unweighted).
std::vector<std::uint32_t> bfsHops(const Graph& g, VertexId src);
inline constexpr std::uint32_t kInfHops = static_cast<std::uint32_t>(-1);

/// Multi-source BFS: dist/parent/source for the nearest source (hop metric).
/// parentEdge[v] is the edge towards the source (kNoEdge at sources and
/// unreached vertices). Ties broken by source order in the frontier.
struct MultiSourceBfs {
  std::vector<std::uint32_t> hops;
  std::vector<EdgeId> parentEdge;
  std::vector<VertexId> source;  // kNoVertex if unreached
};
MultiSourceBfs multiSourceBfs(const Graph& g, const std::vector<VertexId>& sources,
                              std::uint32_t maxDepth = kInfHops);

/// BFS ball around `src` truncated at `maxHops` hops and at `maxVertices`
/// visited vertices. Returns visited vertices in BFS order and whether the
/// full maxHops-ball was exhausted before hitting the cap (complete=true
/// means the ball is the entire maxHops-neighbourhood). Used by the
/// Appendix-B sparse/dense classification.
struct BfsBall {
  std::vector<VertexId> vertices;
  bool complete = true;
};
BfsBall bfsBall(const Graph& g, VertexId src, std::uint32_t maxHops,
                std::size_t maxVertices);

/// All-pairs distances via n Dijkstra runs. Quadratic memory: intended for
/// n up to a few thousand (reference oracle only).
std::vector<std::vector<Weight>> allPairs(const Graph& g);

}  // namespace mpcspan
