// Theorem 8.1: spanner construction in the Congested Clique with a *high
// probability* (not just expected) size bound.
//
// The expected-size analysis of the MPC algorithm rests on two per-iteration
// events: (1) the number of sampled clusters concentrates around p*|C|
// (Chernoff), and (2) the number of edges added is O(|C|/p) (Markov, holds
// with constant probability). Running O(log n) independent samplings per
// iteration and committing one where both events hold makes the final size
// bound hold w.h.p. In the clique this costs O(1) extra rounds per
// iteration: every super-node broadcasts its O(log n) sampling bits in one
// round, and O(log n) referee nodes tally per-run edge counts.
//
// RepetitionSamplingPolicy implements exactly that: it draws up to
// R = ceil(3 log2 n) candidate samplings, dry-runs the iteration plan for
// each, and commits the first one satisfying both envelopes (falling back
// to the minimum-edges draw if none does — never observed in practice, but
// the algorithm must terminate).
//
// The model runs all R samplings *simultaneously*; with a runtime thread
// pool attached, the policy mirrors that by dry-running a wave of draws in
// parallel and committing the lowest acceptable index — the committed draw
// and the reported stats are bit-identical to the sequential evaluation for
// every thread count (draws past the accepted index stay unaccounted).
#pragma once

#include "graph/graph.hpp"
#include "runtime/thread_pool.hpp"
#include "spanner/engine.hpp"
#include "spanner/types.hpp"

namespace mpcspan {

/// Acceptance envelopes for one sampling draw (Theorem 8.1's two events).
struct RepetitionThresholds {
  double clusterSlack = 2.0;  // sampled <= clusterSlack*p*|C| + logTerm
  double edgeSlack = 4.0;     // edges   <= edgeSlack*(supernodes/p + 1)
  double logTerm = 8.0;       // additive O(log n) slack on clusters
};

class RepetitionSamplingPolicy final : public SamplingPolicy {
 public:
  using Thresholds = RepetitionThresholds;

  /// `pool` (optional, not owned) parallelizes the dry-run waves.
  RepetitionSamplingPolicy(std::uint64_t seed, std::size_t n,
                           Thresholds thresholds = Thresholds(),
                           runtime::ThreadPool* pool = nullptr);

  std::vector<char> choose(
      const std::vector<char>& rootActive, double p, std::uint64_t drawKey,
      const std::function<IterPlanStats(const std::vector<char>&)>& dryRun,
      SpannerResult::RepetitionStats& stats) override;

  long fallbacks() const { return fallbacks_; }

 private:
  std::uint64_t seed_;
  std::size_t repetitions_;
  double logN_;
  Thresholds thresholds_;
  runtime::ThreadPool* pool_;
  long fallbacks_ = 0;
};

struct CcSpannerParams {
  std::uint32_t k = 8;
  std::uint32_t t = 0;  // 0 selects ceil(log2 k), the APSP setting
  std::uint64_t seed = 1;
  /// Lanes of the dry-run pool (0 = runtime default). Output is identical
  /// for every value.
  std::size_t threads = 0;
};

/// Builds the Theorem 8.1 spanner; cost.cliqueRounds() includes the O(1)
/// extra rounds per iteration for the repetition machinery.
SpannerResult buildCcSpanner(const Graph& g, const CcSpannerParams& params);

}  // namespace mpcspan
