// Congested Clique simulator (Section 8) — a thin facade over
// runtime::RoundEngine with a CliqueTopology.
//
// n nodes; in one synchronous round every ordered pair may exchange one
// Theta(log n)-bit message (one machine word here). The engine enforces the
// per-pair limit, counts rounds and words, and delivers deterministically;
// this facade adds the two routing facilities the paper relies on:
//   - Lenzen's routing [Len13]: any instance where each node sends and
//     receives at most n words completes in O(1) rounds (we charge 2).
//   - spanner collection: every node learns a payload of W words in
//     ceil(W/(n-1)) + O(1) rounds (Corollary 1.5's "let all vertices learn
//     the whole spanner").
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/round_engine.hpp"

namespace mpcspan {

class CongestedClique {
 public:
  /// `threads` is forwarded to the round engine's stepping pool, `shards`
  /// to its multi-process backend, `resident` selects that backend's
  /// worker lifetime (1 resident, 0 legacy fork-per-round, -1 the
  /// MPCSPAN_RESIDENT default; see runtime::EngineConfig), and `transport`
  /// routes its cross-shard sections (kDefault resolves via
  /// MPCSPAN_TCP_EXCHANGE / MPCSPAN_SHM_EXCHANGE / MPCSPAN_PEER_EXCHANGE).
  /// `pipeline` selects the pipelined barrier of resident mesh rounds
  /// (1 on, 0 strict, -1 the MPCSPAN_PIPELINE default).
  explicit CongestedClique(std::size_t n, std::size_t threads = 0,
                           std::size_t shards = 0, int resident = -1,
                           runtime::Transport transport =
                               runtime::Transport::kDefault,
                           int pipeline = -1);

  std::size_t numNodes() const { return n_; }
  std::size_t numShards() const { return engine_.numShards(); }
  /// True when resident mesh rounds run the pipelined barrier
  /// (MPCSPAN_PIPELINE=0 or pipeline=0 selects the strict reference).
  bool pipelinedShards() const { return engine_.pipelinedShards(); }
  std::size_t rounds() const { return engine_.rounds(); }
  std::size_t totalWords() const { return engine_.totalWordsSent(); }

  /// A directed message. The clique model allows exactly one word per
  /// ordered pair per round, so `payload` is normally one word; the vector
  /// form exists so the API edge can *reject* malformed (zero-word)
  /// messages explicitly instead of reading past an empty payload, and the
  /// topology rejects oversized ones.
  struct Msg {
    VertexId src;
    VertexId dst;
    std::vector<Word> payload;
  };

  /// One direct round: at most one word per ordered (src,dst) pair.
  /// Returns per-node inboxes as (src, payload) pairs in sender order.
  /// Throws std::invalid_argument on an out-of-range node id or an empty
  /// payload, CapacityError when a pair is reused or a payload exceeds the
  /// one-word budget.
  std::vector<std::vector<std::pair<VertexId, Word>>> directRound(
      const std::vector<Msg>& msgs);

  /// Validates a Lenzen routing instance (per-node send/receive <= n words)
  /// and charges its O(1) rounds. The caller performs delivery host-side;
  /// this accounts for the cost and rejects infeasible instances.
  void lenzenRoute(const std::vector<std::size_t>& sendPerNode,
                   const std::vector<std::size_t>& recvPerNode);

  /// Rounds for every node to learn the same `totalWords`-word payload
  /// (each node can receive n-1 words per round; the payload is spread over
  /// the nodes and then disseminated). Charges and returns the rounds.
  std::size_t collectToAll(std::size_t totalWords);

  /// One broadcast round: each node sends one word to all others.
  void broadcastRound() { chargeRounds(1); }

  void chargeRounds(std::size_t r) { engine_.chargeRounds(r); }

  /// The underlying substrate (clique topology).
  runtime::RoundEngine& engine() { return engine_; }

 private:
  std::size_t n_;
  runtime::RoundEngine engine_;
};

}  // namespace mpcspan
