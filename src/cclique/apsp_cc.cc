#include "cclique/apsp_cc.hpp"

#include <cmath>

#include "cclique/spanner_cc.hpp"
#include "graph/connectivity.hpp"
#include "graph/distance.hpp"

namespace mpcspan {

std::vector<Weight> CcApspResult::distancesFrom(const Graph& g, VertexId src) const {
  const Graph h = subgraph(g, spanner.edges);
  return dijkstra(h, src);
}

CcApspResult runCcApsp(const Graph& g, const CcApspParams& params) {
  CcApspResult out;
  const std::size_t n = std::max<std::size_t>(g.numVertices(), 2);
  out.kUsed = params.k != 0
                  ? params.k
                  : static_cast<std::uint32_t>(
                        std::max(2.0, std::ceil(std::log2(static_cast<double>(n)))));
  const double loglog = std::log2(std::max(2.0, std::log2(static_cast<double>(n))));
  out.tUsed = params.t != 0
                  ? params.t
                  : static_cast<std::uint32_t>(std::max(1.0, std::ceil(loglog)));

  CcSpannerParams sp;
  sp.k = out.kUsed;
  sp.t = out.tUsed;
  sp.seed = params.seed;
  sp.threads = params.threads;
  out.spanner = buildCcSpanner(g, sp);
  out.spannerRounds = out.spanner.cost.cliqueRounds();

  // Collection: every node learns the spanner (2 words per edge) at n-1
  // incoming words per round.
  CongestedClique clique(g.numVertices() == 0 ? 1 : g.numVertices(),
                         params.threads);
  out.collectRounds =
      static_cast<long>(clique.collectToAll(2 * out.spanner.edges.size()));
  out.totalRounds = out.spannerRounds + out.collectRounds;
  out.approxBound = out.spanner.stretchBound;
  return out;
}

}  // namespace mpcspan
