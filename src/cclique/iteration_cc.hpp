// One spanner growth iteration's find-minimum work in the Congested Clique
// (Section 8): the third substrate of the cross-model equivalence.
//
// Each graph vertex is a clique node and holds its incident edges. The
// kernel runs:
//   1. one label round — every active vertex sends its packed
//      (super-node, cluster) label to each alive neighbour as a real
//      one-word message through the clique RoundEngine (one word per
//      ordered pair: legal in a single round on a simple graph);
//   2. local candidate computation — from its incident weights and the
//      received labels, each node derives its candidate tuples;
//   3. per-super-node aggregation — members ship their candidates to the
//      super-node's representative. The cost is accounted as a Lenzen
//      routing instance when feasible (per-node send/receive <= n), else
//      as an O(1)-round sort-based find-minimum (Lemma 6.1); the reduction
//      itself is the shared deterministic reduceCandidates.
//
// The result is bit-identical to referenceIterationKernel and
// distIterationKernel on the same input — asserted by
// tests/test_dist_iteration.cc.
#pragma once

#include <vector>

#include "cclique/clique.hpp"
#include "graph/graph.hpp"
#include "spanner/growth_kernel.hpp"

namespace mpcspan {

DistIterationResult cliqueIterationKernel(CongestedClique& cc, const Graph& g,
                                          const std::vector<VertexId>& superOf,
                                          const std::vector<VertexId>& clusterOf,
                                          const std::vector<char>& sampled,
                                          const std::vector<char>* alive = nullptr);

}  // namespace mpcspan
