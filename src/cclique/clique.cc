#include "cclique/clique.hpp"

#include <memory>
#include <stdexcept>

namespace mpcspan {

namespace {

std::size_t checkedNodes(std::size_t n) {
  if (n == 0) throw std::invalid_argument("CongestedClique: n must be positive");
  return n;
}

}  // namespace

CongestedClique::CongestedClique(std::size_t n, std::size_t threads,
                                 std::size_t shards, int resident,
                                 runtime::Transport transport, int pipeline)
    : n_(checkedNodes(n)),
      engine_(runtime::EngineConfig{n, threads, shards, resident,
                                    /*peerExchange=*/-1, transport, pipeline},
              std::make_unique<runtime::CliqueTopology>()) {}

std::vector<std::vector<std::pair<VertexId, Word>>> CongestedClique::directRound(
    const std::vector<Msg>& msgs) {
  std::vector<std::vector<runtime::Message>> outboxes(n_);
  std::vector<std::size_t> perSrc(n_, 0);
  for (const Msg& m : msgs) {
    if (m.src >= n_ || m.dst >= n_)
      throw std::invalid_argument("CongestedClique: node id out of range");
    if (m.payload.empty())
      throw std::invalid_argument("CongestedClique: empty message payload");
    ++perSrc[m.src];
  }
  for (std::size_t v = 0; v < n_; ++v) outboxes[v].reserve(perSrc[v]);
  for (const Msg& m : msgs) outboxes[m.src].push_back({m.dst, m.payload});
  const std::vector<std::vector<runtime::Delivery>> delivered =
      engine_.exchange(std::move(outboxes));

  // Every payload passed the input check and the topology's one-word rule,
  // so a zero-word delivery can only mean a stripped/corrupt wire frame —
  // reject it rather than read a word that was never sent.
  for (const auto& deliveries : delivered)
    for (const runtime::Delivery& d : deliveries)
      if (d.payload.empty())
        throw std::runtime_error("CongestedClique: empty payload delivered");
  std::vector<std::vector<std::pair<VertexId, Word>>> inbox(n_);
  engine_.parallelFor(n_, [&](std::size_t v) {
    inbox[v].reserve(delivered[v].size());
    for (const runtime::Delivery& d : delivered[v])
      inbox[v].emplace_back(static_cast<VertexId>(d.src), d.payload.front());
  });
  return inbox;
}

void CongestedClique::lenzenRoute(const std::vector<std::size_t>& sendPerNode,
                                  const std::vector<std::size_t>& recvPerNode) {
  if (sendPerNode.size() != n_ || recvPerNode.size() != n_)
    throw std::invalid_argument("CongestedClique: per-node vectors must have size n");
  std::size_t total = 0;
  for (std::size_t v = 0; v < n_; ++v) {
    if (sendPerNode[v] > n_)
      throw CapacityError("Lenzen routing: node sends more than n words");
    if (recvPerNode[v] > n_)
      throw CapacityError("Lenzen routing: node receives more than n words");
    total += sendPerNode[v];
  }
  engine_.chargeRounds(2);  // [Len13]: O(1) rounds, deterministically 2 phases
  engine_.chargeTraffic(total);
}

std::size_t CongestedClique::collectToAll(std::size_t totalWords) {
  // Every node must receive totalWords words at n-1 words per round, plus
  // one round to spread the payload evenly first.
  const std::size_t perRound = n_ > 1 ? n_ - 1 : 1;
  const std::size_t r = 1 + (totalWords + perRound - 1) / perRound;
  engine_.chargeRounds(r);
  engine_.chargeTraffic(totalWords * n_);
  return r;
}

}  // namespace mpcspan
