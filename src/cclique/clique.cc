#include "cclique/clique.hpp"

#include <string>

namespace mpcspan {

CongestedClique::CongestedClique(std::size_t n) : n_(n) {
  if (n_ == 0) throw std::invalid_argument("CongestedClique: n must be positive");
}

std::vector<std::vector<std::pair<VertexId, Word>>> CongestedClique::directRound(
    const std::vector<Msg>& msgs) {
  // Per ordered pair at most one message.
  std::vector<std::vector<std::pair<VertexId, Word>>> inbox(n_);
  std::vector<std::vector<char>> usedRow(n_);  // lazily sized
  for (const Msg& m : msgs) {
    if (m.src >= n_ || m.dst >= n_)
      throw std::invalid_argument("CongestedClique: node id out of range");
    auto& row = usedRow[m.src];
    if (row.empty()) row.assign(n_, 0);
    if (row[m.dst])
      throw CapacityError("CongestedClique: pair (" + std::to_string(m.src) + "," +
                          std::to_string(m.dst) + ") used twice in one round");
    row[m.dst] = 1;
    inbox[m.dst].emplace_back(m.src, m.payload);
  }
  ++rounds_;
  words_ += msgs.size();
  return inbox;
}

void CongestedClique::lenzenRoute(const std::vector<std::size_t>& sendPerNode,
                                  const std::vector<std::size_t>& recvPerNode) {
  if (sendPerNode.size() != n_ || recvPerNode.size() != n_)
    throw std::invalid_argument("CongestedClique: per-node vectors must have size n");
  std::size_t total = 0;
  for (std::size_t v = 0; v < n_; ++v) {
    if (sendPerNode[v] > n_)
      throw CapacityError("Lenzen routing: node sends more than n words");
    if (recvPerNode[v] > n_)
      throw CapacityError("Lenzen routing: node receives more than n words");
    total += sendPerNode[v];
  }
  rounds_ += 2;  // [Len13]: O(1) rounds, deterministically 2 phases
  words_ += total;
}

std::size_t CongestedClique::collectToAll(std::size_t totalWords) {
  // Every node must receive totalWords words at n-1 words per round, plus
  // one round to spread the payload evenly first.
  const std::size_t perRound = n_ > 1 ? n_ - 1 : 1;
  const std::size_t r = 1 + (totalWords + perRound - 1) / perRound;
  rounds_ += r;
  words_ += totalWords * n_;
  return r;
}

}  // namespace mpcspan
