#include "cclique/spanner_cc.hpp"

#include <cmath>

#include "spanner/baswana_sen.hpp"
#include "spanner/tradeoff.hpp"
#include "util/rng.hpp"

namespace mpcspan {

RepetitionSamplingPolicy::RepetitionSamplingPolicy(std::uint64_t seed, std::size_t n,
                                                   Thresholds thresholds,
                                                   runtime::ThreadPool* pool)
    : seed_(seed),
      repetitions_(static_cast<std::size_t>(
          std::ceil(3.0 * std::log2(static_cast<double>(std::max<std::size_t>(n, 4)))))),
      logN_(std::log(static_cast<double>(std::max<std::size_t>(n, 3)))),
      thresholds_(thresholds),
      pool_(pool) {}

std::vector<char> RepetitionSamplingPolicy::choose(
    const std::vector<char>& rootActive, double p, std::uint64_t drawKey,
    const std::function<IterPlanStats(const std::vector<char>&)>& dryRun,
    SpannerResult::RepetitionStats& stats) {
  std::vector<char> bestDraw;
  std::size_t bestEdges = static_cast<std::size_t>(-1);
  // One wave of draws is dry-run at a time (in parallel when a pool is
  // attached — dryRun is a const plan computation, safe to run
  // concurrently). Commit = lowest acceptable index, and only draws up to
  // that index are accounted, so stats and output match the wave-of-one
  // sequential evaluation exactly.
  const std::size_t wave =
      pool_ ? std::max<std::size_t>(1, pool_->numThreads()) : 1;
  for (std::size_t base = 0; base < repetitions_; base += wave) {
    const std::size_t cnt = std::min(wave, repetitions_ - base);
    std::vector<std::vector<char>> draws(cnt);
    std::vector<IterPlanStats> plans(cnt);
    auto eval = [&](std::size_t i) {
      const std::uint64_t repSeed = seed_ ^ mix64(0xabcdef12u + (base + i));
      draws[i] = HashCoinPolicy::draw(rootActive, p, repSeed, drawKey);
      plans[i] = dryRun(draws[i]);
    };
    if (pool_ && cnt > 1)
      pool_->parallelFor(cnt, eval);
    else
      for (std::size_t i = 0; i < cnt; ++i) eval(i);

    for (std::size_t i = 0; i < cnt; ++i) {
      const IterPlanStats& plan = plans[i];
      ++stats.totalDraws;
      const double clusterBound =
          thresholds_.clusterSlack * p * static_cast<double>(plan.totalClusters) +
          thresholds_.logTerm * logN_;
      const double edgeBound =
          p > 0 ? thresholds_.edgeSlack *
                      (static_cast<double>(plan.activeSupernodes) / p + 1.0)
                : static_cast<double>(plan.activeSupernodes);
      const bool clustersOk = static_cast<double>(plan.sampledClusters) <= clusterBound;
      const bool edgesOk = static_cast<double>(plan.edgesAdded) <= edgeBound;
      if (clustersOk && edgesOk) {
        if (base + i > 0) ++stats.iterationsWithRetry;
        return std::move(draws[i]);
      }
      if (plan.edgesAdded < bestEdges) {
        bestEdges = plan.edgesAdded;
        bestDraw = std::move(draws[i]);
      }
    }
  }
  ++fallbacks_;
  ++stats.iterationsWithRetry;
  return bestDraw.empty() ? std::vector<char>(rootActive.size(), 0) : bestDraw;
}

SpannerResult buildCcSpanner(const Graph& g, const CcSpannerParams& params) {
  if (params.k <= 1) return identitySpanner(g, "cc-spanner");
  runtime::ThreadPool pool(params.threads);
  RepetitionSamplingPolicy policy(params.seed, g.numVertices(),
                                  RepetitionThresholds(), &pool);

  TradeoffParams tp;
  tp.k = params.k;
  tp.t = params.t;
  tp.seed = params.seed;
  tp.policy = &policy;
  SpannerResult result = buildTradeoffSpanner(g, tp);
  result.algorithm = "cc-spanner";
  // Theorem 8.1: a constant number of extra clique rounds per iteration
  // (one broadcast of the O(log n) sampling bits, one tally round).
  result.cost.chargeCliqueExtra(2 * static_cast<long>(result.iterations));
  return result;
}

}  // namespace mpcspan
