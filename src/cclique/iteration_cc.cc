#include "cclique/iteration_cc.hpp"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace mpcspan {

namespace {

/// Words per candidate tuple when shipped to its super-node representative
/// (key, weight, edge id).
constexpr std::size_t kTupleWords = 3;

}  // namespace

DistIterationResult cliqueIterationKernel(CongestedClique& cc, const Graph& g,
                                          const std::vector<VertexId>& superOf,
                                          const std::vector<VertexId>& clusterOf,
                                          const std::vector<char>& sampled,
                                          const std::vector<char>* alive) {
  const std::size_t n = g.numVertices();
  if (cc.numNodes() < n)
    throw std::invalid_argument("cliqueIterationKernel: clique smaller than graph");
  const std::size_t startRounds = cc.rounds();

  auto labelOf = [&](VertexId v) -> Word {
    const VertexId s = superOf[v];
    const VertexId c = s == kNoVertex ? kNoVertex : clusterOf[s];
    return (static_cast<Word>(s) << 32) | c;
  };

  // 1. Label round: each alive edge carries one label word in each
  // direction. Parallel edges would reuse an ordered pair with the same
  // label word, so deduplicate per pair — one word per pair per round.
  std::vector<CongestedClique::Msg> msgs;
  msgs.reserve(2 * g.numEdges());
  std::unordered_set<std::uint64_t> sentPair;
  sentPair.reserve(2 * g.numEdges());
  for (EdgeId id = 0; id < g.numEdges(); ++id) {
    if (alive && !(*alive)[id]) continue;
    const Edge& e = g.edge(id);
    if (sentPair.insert((static_cast<std::uint64_t>(e.u) << 32) | e.v).second) {
      msgs.push_back({e.u, e.v, labelOf(e.u)});
      msgs.push_back({e.v, e.u, labelOf(e.v)});
    }
  }
  const auto inbox = cc.directRound(msgs);

  // 2. Local candidates: each processing vertex derives, from its incident
  // weights and the received labels, one tuple per alive edge to a foreign
  // cluster — the same tuples the MPC kernel ships, keyed by the vertex's
  // super-node, so the shared reduction yields identical group minima.
  std::vector<CandTuple> cands;
  std::vector<std::size_t> sendPerNode(cc.numNodes(), 0);
  std::vector<std::size_t> recvPerNode(cc.numNodes(), 0);
  std::vector<VertexId> repOf;  // super-node -> representative (lowest member)
  for (VertexId v = 0; v < n; ++v) {
    const VertexId sv = superOf[v];
    if (sv == kNoVertex) continue;
    if (repOf.size() <= sv) repOf.resize(sv + 1, kNoVertex);
    if (repOf[sv] == kNoVertex) repOf[sv] = v;
    const VertexId cv = clusterOf[sv];
    if (cv == kNoVertex || sampled[cv]) continue;  // not processing
    std::unordered_map<VertexId, Word> labels;
    labels.reserve(inbox[v].size());
    for (const auto& [src, word] : inbox[v]) labels.emplace(src, word);
    std::size_t produced = 0;
    for (const Incidence& inc : g.neighbors(v)) {
      if (alive && !(*alive)[inc.edge]) continue;
      const auto it = labels.find(inc.to);
      if (it == labels.end()) continue;
      const VertexId su = static_cast<VertexId>(it->second >> 32);
      const VertexId cu = static_cast<VertexId>(it->second & 0xffffffffu);
      if (su == kNoVertex || cu == kNoVertex || cu == cv) continue;
      cands.push_back({packGroupKey(sv, cu), g.edge(inc.edge).w, inc.edge});
      ++produced;
    }
    sendPerNode[v] = kTupleWords * produced;
  }
  for (VertexId v = 0; v < n; ++v) {
    const VertexId sv = superOf[v];
    if (sv == kNoVertex || repOf[sv] == kNoVertex) continue;
    recvPerNode[repOf[sv]] += sendPerNode[v];
  }

  // 3. Aggregation at the representatives: a Lenzen instance when its
  // per-node bounds hold, otherwise the sort-based O(1)-round find-minimum
  // of Lemma 6.1 (charged at coarser granularity, like lenzenRoute).
  bool lenzenOk = true;
  for (std::size_t v = 0; v < cc.numNodes() && lenzenOk; ++v)
    lenzenOk = sendPerNode[v] <= cc.numNodes() && recvPerNode[v] <= cc.numNodes();
  if (lenzenOk) {
    cc.lenzenRoute(sendPerNode, recvPerNode);
  } else {
    cc.chargeRounds(4);
    cc.engine().chargeTraffic(kTupleWords * cands.size());
  }

  DistIterationResult out = reduceCandidates(cands, sampled);
  out.roundsUsed = cc.rounds() - startRounds;
  return out;
}

}  // namespace mpcspan
