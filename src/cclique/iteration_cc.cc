#include "cclique/iteration_cc.hpp"

#include <bit>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "runtime/pack.hpp"
#include "runtime/round_engine.hpp"

namespace mpcspan {

namespace {

/// Words per candidate tuple when shipped to its super-node representative
/// (key, weight, edge id).
constexpr std::size_t kTupleWords = 3;

/// Words per incidence record in the worker-resident adjacency block:
/// (far endpoint, edge id, weight bits), in incidence order — which the
/// graph builder emits in ascending edge-id order, the order the legacy
/// coordinator-built label round scanned.
constexpr std::size_t kAdjWords = 3;

// Phase tags (args[0]) of CliqueGrowthKernel. Both phases share one
// argument layout (broadcast per round; the adjacency never re-ships):
//   [0] phase   [1] adjacency handle   [2] n (graph vertices)
//   [3] sampled bit count              [4] alive-bits flag
//   [5] m (edge count)
//   [6, 6+n)               per-vertex label words ((super << 32) | cluster)
//   [6+n, +ceil([3]/64))   sampled cluster bits
//   [..., +ceil(m/64))     alive edge bits (only when [4] != 0)
constexpr Word kCliquePhaseLabelRound = 1;  // step: one real label round
constexpr Word kCliquePhaseCandidates = 2;  // local: derive candidate tuples

struct ArgsView {
  std::size_t n, sampledBits, m;
  bool hasAlive;
  const Word* labels;
  const Word* sampled;
  const Word* alive;
};

ArgsView parseArgs(const runtime::KernelCtx& ctx) {
  ArgsView v;
  v.n = ctx.args.at(2);
  v.sampledBits = ctx.args.at(3);
  v.hasAlive = ctx.args.at(4) != 0;
  v.m = ctx.args.at(5);
  const std::size_t sw = (v.sampledBits + 63) / 64;
  const std::size_t aw = v.hasAlive ? (v.m + 63) / 64 : 0;
  if (ctx.args.size() < 6 + v.n + sw + aw)
    throw std::invalid_argument("CliqueGrowthKernel: short argument vector");
  v.labels = ctx.args.data() + 6;
  v.sampled = v.labels + v.n;
  v.alive = v.sampled + sw;
  return v;
}

/// The spanner growth iteration's label round and candidate derivation as a
/// registered kernel: each clique node owns its incident-edge slice of the
/// graph (a worker-resident adjacency block, shipped once per iteration
/// call) and its derived candidate tuples. The label round mirrors the
/// legacy coordinator-built round message for message: one word per alive
/// edge in each direction, deduplicated per pair by lowest alive edge id,
/// emitted in ascending edge-id order — same messages, same delivery order,
/// same ledger.
class CliqueGrowthKernel final : public runtime::StepKernel {
 public:
  static std::string kernelName() { return "mpcspan.cclique.growth"; }

  std::vector<runtime::Message> step(const runtime::KernelCtx& ctx) override {
    if (ctx.args.at(0) != kCliquePhaseLabelRound)
      throw std::invalid_argument("CliqueGrowthKernel: unknown step phase");
    const ArgsView a = parseArgs(ctx);
    const std::size_t v = ctx.machine;
    if (v >= a.n) return {};
    const runtime::WordBuf& adj = ctx.store.block(ctx.args.at(1), v);
    std::unordered_set<VertexId> sentTo;
    sentTo.reserve(adj.size() / kAdjWords);
    std::vector<runtime::Message> out;
    for (std::size_t off = 0; off + kAdjWords <= adj.size(); off += kAdjWords) {
      const auto to = static_cast<std::size_t>(adj[off]);
      const auto edge = static_cast<std::size_t>(adj[off + 1]);
      if (a.hasAlive && !runtime::testArgBit(a.alive, a.m, edge)) continue;
      // First alive incidence per neighbour wins (ascending edge id — the
      // builder's incidence order), exactly the legacy per-pair dedup.
      if (!sentTo.insert(static_cast<VertexId>(to)).second) continue;
      out.push_back({to, {a.labels[v]}});
    }
    return out;
  }

  void local(const runtime::KernelCtx& ctx) override {
    if (ctx.args.at(0) != kCliquePhaseCandidates)
      throw std::invalid_argument("CliqueGrowthKernel: unknown local phase");
    ensureState(ctx);
    const ArgsView a = parseArgs(ctx);
    const std::size_t v = ctx.machine;
    std::vector<CandTuple>& cands = cands_[v];
    cands.clear();
    if (v >= a.n) return;
    const Word myLabel = a.labels[v];
    const auto sv = static_cast<VertexId>(myLabel >> 32);
    const auto cv = static_cast<VertexId>(myLabel & 0xffffffffu);
    if (sv == kNoVertex || cv == kNoVertex ||
        runtime::testArgBit(a.sampled, a.sampledBits, cv))
      return;  // not a processing vertex
    std::unordered_map<VertexId, Word> labels;
    labels.reserve(ctx.inbox.size());
    for (const runtime::Delivery& d : ctx.inbox) {
      if (d.payload.empty())
        throw std::invalid_argument(
            "CliqueGrowthKernel: empty label delivery");
      labels.emplace(static_cast<VertexId>(d.src), d.payload.front());
    }
    const runtime::WordBuf& adj = ctx.store.block(ctx.args.at(1), v);
    for (std::size_t off = 0; off + kAdjWords <= adj.size(); off += kAdjWords) {
      const auto to = static_cast<VertexId>(adj[off]);
      const auto edge = static_cast<std::uint32_t>(adj[off + 1]);
      if (a.hasAlive && !runtime::testArgBit(a.alive, a.m, edge)) continue;
      const auto it = labels.find(to);
      if (it == labels.end()) continue;
      const auto su = static_cast<VertexId>(it->second >> 32);
      const auto cu = static_cast<VertexId>(it->second & 0xffffffffu);
      if (su == kNoVertex || cu == kNoVertex || cu == cv) continue;
      cands.push_back({packGroupKey(sv, cu),
                       std::bit_cast<double>(adj[off + 2]), edge});
    }
  }

  std::vector<Word> fetch(const runtime::KernelCtx& ctx) override {
    ensureState(ctx);
    const std::vector<CandTuple>& cands = cands_[ctx.machine];
    return packItems(cands.data(), cands.size());
  }

 private:
  void ensureState(const runtime::KernelCtx& ctx) {
    std::call_once(sized_, [&] { cands_.resize(ctx.numMachines); });
  }

  std::once_flag sized_;
  std::vector<std::vector<CandTuple>> cands_;  // per machine (clique node)
};

}  // namespace

DistIterationResult cliqueIterationKernel(CongestedClique& cc, const Graph& g,
                                          const std::vector<VertexId>& superOf,
                                          const std::vector<VertexId>& clusterOf,
                                          const std::vector<char>& sampled,
                                          const std::vector<char>* alive) {
  const std::size_t n = g.numVertices();
  if (cc.numNodes() < n)
    throw std::invalid_argument("cliqueIterationKernel: clique smaller than graph");
  const std::size_t startRounds = cc.rounds();
  runtime::RoundEngine& eng = cc.engine();
  const std::size_t p = cc.numNodes();

  auto labelOf = [&](VertexId v) -> Word {
    const VertexId s = superOf[v];
    const VertexId c = s == kNoVertex ? kNoVertex : clusterOf[s];
    return (static_cast<Word>(s) << 32) | c;
  };

  // Ship each node its incident-edge slice (free data placement, like every
  // DistVector block) and broadcast the per-round state — labels, sampled
  // clusters, alive edges — as packed kernel args. The label round and the
  // candidate sweep then run where the nodes live; only the derived
  // candidate tuples come back.
  std::vector<std::vector<Word>> adj(p);
  eng.parallelFor(n, [&](std::size_t v) {
    const auto incidences = g.neighbors(static_cast<VertexId>(v));
    adj[v].reserve(kAdjWords * incidences.size());
    for (const Incidence& inc : incidences) {
      adj[v].push_back(inc.to);
      adj[v].push_back(inc.edge);
      adj[v].push_back(std::bit_cast<Word>(g.edge(inc.edge).w));
    }
  });
  // Leased: an aborted round leaves the engine usable by contract, so a
  // retrying caller must not accumulate dead adjacency blocks worker-side.
  const runtime::BlockLease adjBlocks(eng, eng.createBlocks(std::move(adj)));

  std::vector<Word> args{0, adjBlocks.handle(), n, sampled.size(),
                         alive != nullptr ? Word{1} : Word{0}, g.numEdges()};
  args.reserve(args.size() + n + sampled.size() / 64 + g.numEdges() / 64 + 2);
  for (VertexId v = 0; v < n; ++v) args.push_back(labelOf(v));
  {
    const std::vector<Word> bits = runtime::packArgBits(sampled);
    args.insert(args.end(), bits.begin(), bits.end());
  }
  if (alive) {
    const std::vector<Word> bits = runtime::packArgBits(*alive);
    args.insert(args.end(), bits.begin(), bits.end());
  }

  // 1. + 2. Label round (one real clique round) and local candidate
  // derivation, kernel-side.
  const runtime::KernelId k = runtime::ensureKernel<CliqueGrowthKernel>(eng);
  args[0] = kCliquePhaseLabelRound;
  eng.step(k, args);
  args[0] = kCliquePhaseCandidates;
  eng.stepLocal(k, std::move(args));
  const std::vector<std::vector<Word>> fetched = eng.fetchKernel(k);

  std::vector<CandTuple> cands;
  std::vector<std::size_t> sendPerNode(p, 0);
  {
    std::size_t total = 0;
    for (const std::vector<Word>& block : fetched) total += block.size();
    cands.reserve(total / kTupleWords);
  }
  for (std::size_t v = 0; v < p; ++v) {
    sendPerNode[v] = fetched[v].size();  // kTupleWords words per tuple
    const std::vector<CandTuple> mine = unpackItems<CandTuple>(fetched[v]);
    cands.insert(cands.end(), mine.begin(), mine.end());
  }

  // 3. Aggregation at the representatives: a Lenzen instance when its
  // per-node bounds hold, otherwise the sort-based O(1)-round find-minimum
  // of Lemma 6.1 (charged at coarser granularity, like lenzenRoute).
  std::vector<std::size_t> recvPerNode(p, 0);
  std::vector<VertexId> repOf;  // super-node -> representative (lowest member)
  for (VertexId v = 0; v < n; ++v) {
    const VertexId sv = superOf[v];
    if (sv == kNoVertex) continue;
    if (repOf.size() <= sv) repOf.resize(sv + 1, kNoVertex);
    if (repOf[sv] == kNoVertex) repOf[sv] = v;
  }
  for (VertexId v = 0; v < n; ++v) {
    const VertexId sv = superOf[v];
    if (sv == kNoVertex || repOf[sv] == kNoVertex) continue;
    recvPerNode[repOf[sv]] += sendPerNode[v];
  }
  bool lenzenOk = true;
  for (std::size_t v = 0; v < p && lenzenOk; ++v)
    lenzenOk = sendPerNode[v] <= p && recvPerNode[v] <= p;
  if (lenzenOk) {
    cc.lenzenRoute(sendPerNode, recvPerNode);
  } else {
    cc.chargeRounds(4);
    eng.chargeTraffic(kTupleWords * cands.size());
  }

  DistIterationResult out = reduceCandidates(cands, sampled);
  out.roundsUsed = cc.rounds() - startRounds;
  return out;
}

}  // namespace mpcspan
