// Corollary 1.5: O(log^s n)-approximate weighted APSP in the Congested
// Clique. Build the Theorem 8.1 spanner with k = ceil(log2 n) and
// t = O(log log n), let every node learn the whole spanner via Lenzen
// routing (ceil(2|E_S|/(n-1)) + O(1) rounds — 2 words per edge), then each
// node runs Dijkstra locally.
#pragma once

#include "cclique/clique.hpp"
#include "graph/graph.hpp"
#include "spanner/types.hpp"

namespace mpcspan {

struct CcApspParams {
  std::uint32_t k = 0;  // 0 selects ceil(log2 n)
  std::uint32_t t = 0;  // 0 selects ceil(log2 log2 n)
  std::uint64_t seed = 1;
  /// Lanes of the round-engine pool (0 = runtime default); output is
  /// identical for every value.
  std::size_t threads = 0;
};

struct CcApspResult {
  SpannerResult spanner;
  long spannerRounds = 0;   // clique rounds of the construction
  long collectRounds = 0;   // Lenzen collection of the spanner
  long totalRounds = 0;
  std::uint32_t kUsed = 0;
  std::uint32_t tUsed = 0;
  double approxBound = 0;   // the spanner's certified stretch bound

  /// Approximate distances from `src` (Dijkstra on the collected spanner,
  /// exactly what every clique node computes locally).
  std::vector<Weight> distancesFrom(const Graph& g, VertexId src) const;
};

CcApspResult runCcApsp(const Graph& g, const CcApspParams& params);

}  // namespace mpcspan
