#include "query/audit.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/distance.hpp"

namespace mpcspan::query {

AuditReport auditEnvelope(const Graph& g, std::span<const QueryPair> pairs,
                          std::span<const Weight> answers, double stretch,
                          std::size_t maxPairs) {
  if (pairs.size() != answers.size())
    throw std::invalid_argument("auditEnvelope: pairs/answers length mismatch");
  AuditReport report;
  double sumRatio = 0.0;
  for (std::size_t i = 0; i < pairs.size() && report.audited < maxPairs; ++i) {
    const auto [u, v] = pairs[i];
    if (u == v) continue;
    const Weight exact = dijkstraPair(g, u, v);
    if (exact == kInfDist || exact <= 0) continue;
    const double ratio = answers[i] / exact;
    report.maxRatio = std::max(report.maxRatio, ratio);
    sumRatio += ratio;
    if (ratio < 1.0 - 1e-9 || ratio > stretch + 1e-9)
      report.violations.push_back({u, v, answers[i], exact});
    ++report.audited;
  }
  report.meanRatio =
      report.audited ? sumRatio / static_cast<double>(report.audited) : 0.0;
  return report;
}

}  // namespace mpcspan::query
