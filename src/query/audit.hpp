// Envelope audit: checks served distance estimates against exact Dijkstra
// on the original graph and reports every pair whose ratio leaves the
// certified stretch envelope [1, stretch].
//
// This used to be an inline loop in `mpcspan query --audit`; it moved here
// so tests can pin the exit-nonzero-and-print-the-offender contract without
// shelling out, and so the serving daemon's client path can reuse it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "query/provider.hpp"

namespace mpcspan::query {

/// One pair whose answer left the envelope — everything a human needs to
/// reproduce the violation.
struct AuditViolation {
  VertexId u = 0;
  VertexId v = 0;
  Weight got = 0;    // served estimate
  Weight exact = 0;  // Dijkstra on the original graph
};

struct AuditReport {
  std::size_t audited = 0;  // pairs actually compared (after skips)
  double maxRatio = 0.0;
  double meanRatio = 0.0;
  std::vector<AuditViolation> violations;

  bool ok() const { return violations.empty(); }
};

/// Compares answers[i] against dijkstraPair(g, pairs[i]) for up to maxPairs
/// auditable pairs (u == v and disconnected/zero-distance pairs are skipped
/// — their ratio is undefined). A pair violates when its ratio falls below
/// 1 or above `stretch`, both with 1e-9 relative slack for float noise.
/// pairs and answers must be the same length.
AuditReport auditEnvelope(const Graph& g, std::span<const QueryPair> pairs,
                          std::span<const Weight> answers, double stretch,
                          std::size_t maxPairs = 200);

}  // namespace mpcspan::query
