#include "query/tiered.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace mpcspan::query {

TieredOracle::TieredOracle(
    std::vector<std::shared_ptr<const DistanceProvider>> tiers)
    : tiers_(std::move(tiers)), counters_(tiers_.size()) {
  if (tiers_.empty())
    throw std::invalid_argument("TieredOracle: needs at least one tier");
  for (const auto& t : tiers_)
    if (!t) throw std::invalid_argument("TieredOracle: null tier");
  for (const auto& t : tiers_)
    if (t->numVertices() != tiers_.front()->numVertices())
      throw std::invalid_argument(
          "TieredOracle: tiers disagree on vertex count");
}

std::size_t TieredOracle::numVertices() const {
  return tiers_.front()->numVertices();
}

Weight TieredOracle::timedTryQuery(std::size_t i, VertexId u,
                                   VertexId v) const {
  using Clock = std::chrono::steady_clock;
  Counters& c = counters_[i];
  c.attempts.fetch_add(1, std::memory_order_relaxed);
  const auto t0 = Clock::now();
  const Weight w = tiers_[i]->tryQuery(u, v);
  const auto dt = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
  c.nanos.fetch_add(dt, std::memory_order_relaxed);
  return w;
}

std::uint64_t TieredOracle::meanTierNanos(std::size_t i) const {
  const std::uint64_t attempts =
      counters_[i].attempts.load(std::memory_order_relaxed);
  if (attempts == 0) return 0;
  return counters_[i].nanos.load(std::memory_order_relaxed) / attempts;
}

Weight TieredOracle::query(VertexId u, VertexId v) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t last = tiers_.size() - 1;
  for (std::size_t i = 0; i <= last; ++i) {
    const Weight w = timedTryQuery(i, u, v);
    // Accept unless declined, or "infinite" from a non-final tier (whose
    // approximation may simply not reach the pair).
    if (w != kNoAnswer && (i == last || w != kInfDist)) {
      counters_[i].hits.fetch_add(1, std::memory_order_relaxed);
      return w;
    }
  }
  // Every tier declined (possible only when the last tier's tryQuery can
  // decline); report disconnected.
  return kInfDist;
}

BudgetedAnswer TieredOracle::queryBudgeted(
    VertexId u, VertexId v, const util::DeadlineBudget& budget) const {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t last = tiers_.size() - 1;
  // Two passes: the budgeted walk, then — only if every admitted tier
  // declined — a walk that ignores the budget (availability beats the
  // deadline; unreachable with the canonical sketch floor).
  for (const bool enforceBudget : {true, false}) {
    bool skipped = false;
    for (std::size_t i = last + 1; i-- > 0;) {
      if (enforceBudget && i > 0 && budget.bounded()) {
        const std::int64_t rem = budget.remainingNanos();
        if (rem == 0 ||
            meanTierNanos(i) > static_cast<std::uint64_t>(rem)) {
          skipped = true;
          continue;
        }
      }
      const Weight w = timedTryQuery(i, u, v);
      if (w == kNoAnswer) continue;
      // kInfDist is authoritative from the strongest tier, and from the
      // floor when nothing below remains to try; a mid-ladder "infinite"
      // falls through to a cheaper tier (mirror of query()'s rule).
      if (w == kInfDist && i != last && i != 0) continue;
      counters_[i].hits.fetch_add(1, std::memory_order_relaxed);
      const bool degraded = skipped;
      if (degraded) degraded_.fetch_add(1, std::memory_order_relaxed);
      return {w, static_cast<int>(i), degraded, tiers_[i]->stretchBound()};
    }
    if (!skipped) break;  // a full walk already ran; nothing to retry
  }
  return {kInfDist, -1, false, stretchBound()};
}

double TieredOracle::stretchBound() const {
  double s = 1.0;
  for (const auto& t : tiers_) s = std::max(s, t->stretchBound());
  return s;
}

std::size_t TieredOracle::memoryWords() const {
  std::size_t w = 0;
  for (const auto& t : tiers_) w += t->memoryWords();
  return w;
}

std::vector<TierStats> TieredOracle::stats() const {
  std::vector<TierStats> out(tiers_.size());
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    out[i].name = tiers_[i]->name();
    out[i].attempts = counters_[i].attempts.load(std::memory_order_relaxed);
    out[i].hits = counters_[i].hits.load(std::memory_order_relaxed);
    out[i].nanos = counters_[i].nanos.load(std::memory_order_relaxed);
  }
  return out;
}

OracleSnapshot TieredOracle::snapshot() const {
  OracleSnapshot s;
  s.tiers = stats();
  s.queries = queries_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  return s;
}

void TieredOracle::resetStats() {
  for (auto& c : counters_) {
    c.attempts.store(0, std::memory_order_relaxed);
    c.hits.store(0, std::memory_order_relaxed);
    c.nanos.store(0, std::memory_order_relaxed);
  }
  queries_.store(0, std::memory_order_relaxed);
  degraded_.store(0, std::memory_order_relaxed);
}

}  // namespace mpcspan::query
