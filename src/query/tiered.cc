#include "query/tiered.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace mpcspan::query {

TieredOracle::TieredOracle(
    std::vector<std::shared_ptr<const DistanceProvider>> tiers)
    : tiers_(std::move(tiers)), counters_(tiers_.size()) {
  if (tiers_.empty())
    throw std::invalid_argument("TieredOracle: needs at least one tier");
  for (const auto& t : tiers_)
    if (!t) throw std::invalid_argument("TieredOracle: null tier");
  for (const auto& t : tiers_)
    if (t->numVertices() != tiers_.front()->numVertices())
      throw std::invalid_argument(
          "TieredOracle: tiers disagree on vertex count");
}

std::size_t TieredOracle::numVertices() const {
  return tiers_.front()->numVertices();
}

Weight TieredOracle::query(VertexId u, VertexId v) const {
  using Clock = std::chrono::steady_clock;
  const std::size_t last = tiers_.size() - 1;
  for (std::size_t i = 0; i <= last; ++i) {
    Counters& c = counters_[i];
    c.attempts.fetch_add(1, std::memory_order_relaxed);
    const auto t0 = Clock::now();
    const Weight w = tiers_[i]->tryQuery(u, v);
    const auto dt = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count());
    c.nanos.fetch_add(dt, std::memory_order_relaxed);
    // Accept unless declined, or "infinite" from a non-final tier (whose
    // approximation may simply not reach the pair).
    if (w != kNoAnswer && (i == last || w != kInfDist)) {
      c.hits.fetch_add(1, std::memory_order_relaxed);
      return w;
    }
  }
  // Every tier declined (possible only when the last tier's tryQuery can
  // decline); report disconnected.
  return kInfDist;
}

double TieredOracle::stretchBound() const {
  double s = 1.0;
  for (const auto& t : tiers_) s = std::max(s, t->stretchBound());
  return s;
}

std::size_t TieredOracle::memoryWords() const {
  std::size_t w = 0;
  for (const auto& t : tiers_) w += t->memoryWords();
  return w;
}

std::vector<TierStats> TieredOracle::stats() const {
  std::vector<TierStats> out(tiers_.size());
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    out[i].name = tiers_[i]->name();
    out[i].attempts = counters_[i].attempts.load(std::memory_order_relaxed);
    out[i].hits = counters_[i].hits.load(std::memory_order_relaxed);
    out[i].nanos = counters_[i].nanos.load(std::memory_order_relaxed);
  }
  return out;
}

void TieredOracle::resetStats() {
  for (auto& c : counters_) {
    c.attempts.store(0, std::memory_order_relaxed);
    c.hits.store(0, std::memory_order_relaxed);
    c.nanos.store(0, std::memory_order_relaxed);
  }
}

}  // namespace mpcspan::query
