#include "query/adapters.hpp"

#include <stdexcept>

#include "graph/distance.hpp"

namespace mpcspan::query {

namespace {
// Wraps a caller-owned reference in a non-owning shared_ptr (aliasing
// constructor with an empty control block).
template <typename T>
std::shared_ptr<const T> unowned(const T& ref) {
  return std::shared_ptr<const T>(std::shared_ptr<const T>(), &ref);
}

template <typename T>
void requireNonNull(const std::shared_ptr<const T>& p, const char* what) {
  if (!p) throw std::invalid_argument(std::string(what) + ": null backing structure");
}
}  // namespace

ExactDistanceProvider::ExactDistanceProvider(std::shared_ptr<const Graph> g)
    : g_(std::move(g)) {
  requireNonNull(g_, "ExactDistanceProvider");
}

ExactDistanceProvider::ExactDistanceProvider(const Graph& g)
    : ExactDistanceProvider(unowned(g)) {}

Weight ExactDistanceProvider::query(VertexId u, VertexId v) const {
  if (u == v) return 0;
  return dijkstraPair(*g_, u, v);
}

std::size_t ExactDistanceProvider::memoryWords() const {
  // CSR: 2 incidences per edge (to, edge) + offsets + the edge triples.
  return 4 * g_->numEdges() + g_->numVertices() + 1 + 2 * g_->numEdges();
}

SketchDistanceProvider::SketchDistanceProvider(
    std::shared_ptr<const DistanceSketches> sk, double stretchOverride)
    : sk_(std::move(sk)), stretch_(stretchOverride) {
  requireNonNull(sk_, "SketchDistanceProvider");
  if (stretch_ <= 0) stretch_ = sk_->stretchBound();
}

SketchDistanceProvider::SketchDistanceProvider(const DistanceSketches& sk,
                                               double stretchOverride)
    : SketchDistanceProvider(unowned(sk), stretchOverride) {}

Weight SketchDistanceProvider::query(VertexId u, VertexId v) const {
  return sk_->query(u, v);
}

SpannerOracleProvider::SpannerOracleProvider(
    std::shared_ptr<const SpannerDistanceOracle> oracle, Mode mode,
    double stretchOverride)
    : oracle_(std::move(oracle)), mode_(mode), stretch_(stretchOverride) {
  requireNonNull(oracle_, "SpannerOracleProvider");
  if (stretch_ <= 0) stretch_ = oracle_->spanner().stretchBound;
  if (stretch_ <= 0) stretch_ = 1.0;  // identity spanner at k == 1
}

SpannerOracleProvider::SpannerOracleProvider(
    const SpannerDistanceOracle& oracle, Mode mode, double stretchOverride)
    : SpannerOracleProvider(unowned(oracle), mode, stretchOverride) {}

Weight SpannerOracleProvider::query(VertexId u, VertexId v) const {
  return oracle_->query(u, v);
}

Weight SpannerOracleProvider::tryQuery(VertexId u, VertexId v) const {
  if (mode_ == Mode::kCompute) return oracle_->query(u, v);
  if (u == v) return 0;
  const auto row = oracle_->cachedDistancesFrom(u);
  if (!row) return kNoAnswer;
  return (*row)[v];
}

std::size_t SpannerOracleProvider::memoryWords() const {
  return oracle_->spannerWords() +
         oracle_->cachedRows() * oracle_->spannerGraph().numVertices();
}

}  // namespace mpcspan::query
