// Build once, serve many: the query artifact.
//
// buildArtifact runs the full pipeline — spanner construction (host engine
// or the sharded MPC simulator), Thorup–Zwick sketches on the spanner —
// and captures everything serving needs in one QueryArtifact. The artifact
// saves to a versioned binary file (BinWriter/BinReader, graph/io.hpp) and
// loads back without *any* recomputation: sketches are adopted from their
// serialized tables, the oracle rebuilt from the stored spanner edge ids.
// An artifact built by the distributed sharded pipeline is served
// identically to a host-built one.
//
// makeQueryPlane assembles the serving stack from a loaded (or
// freshly built) artifact: sketch -> spanner-cache -> exact, wired into a
// TieredOracle.
//
// File layout (little-endian; all counts bounds-checked on load, any
// truncation or corruption throws std::runtime_error before any partially
// valid object escapes):
//   "MPQA" magic, version u32
//   graph section       (writeGraphBinary)
//   spanner section     algorithm str, k u32, t u32, stretch f64,
//                       edge-id vec (validated < m)
//   sketch section      params (k u32, seed u64), composed stretch f64,
//                       SketchTables (validated by the adopting ctor)
//   serving section     cacheSources u64, buildRounds u64, wordsMoved u64
//   EOF                 (trailing bytes are an error)
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "apsp/oracle.hpp"
#include "apsp/sketches.hpp"
#include "graph/graph.hpp"
#include "query/adapters.hpp"
#include "query/tiered.hpp"

namespace mpcspan::query {

/// Everything buildArtifact needs to know. `algo` is one of "tradeoff",
/// "baswana-sen" (host engine), "dist-tradeoff", "dist-baswana-sen"
/// (sharded MPC simulator; `threads`/`shards`/`gamma` apply).
struct BuildPlan {
  std::string algo = "tradeoff";
  std::uint32_t k = 8;
  std::uint32_t t = 0;  // tradeoff growth iterations; 0 = ceil(log2 k)
  std::uint64_t seed = 1;
  std::uint32_t sketchK = 3;
  std::uint64_t sketchSeed = 1;
  std::size_t cacheSources = 64;  // oracle LRU capacity when serving
  std::size_t threads = 0;        // dist-*: simulator stepping threads
  std::size_t shards = 0;         // dist-*: simulator shards
  double gamma = 0.5;             // dist-*: machine memory exponent
};

/// The serve-side state: input graph, spanner (edge ids + certified
/// stretch), sketches built on the spanner, and serving parameters.
struct QueryArtifact {
  Graph graph;
  std::vector<EdgeId> spannerEdges;  // ids into graph.edges(), sorted
  std::string algorithm;
  std::uint32_t k = 0;
  std::uint32_t t = 0;
  double spannerStretch = 0;  // certified (host) or theoretical (dist-*)
  SketchParams sketchParams;
  double composedStretch = 0;  // sketch stretch * spanner stretch
  DistanceSketches sketches;   // built on the spanner subgraph
  std::size_t cacheSources = 64;
  std::size_t buildRounds = 0;  // dist-*: simulator communication rounds
  std::size_t wordsMoved = 0;   // dist-*: total words routed
};

QueryArtifact buildArtifact(const Graph& g, const BuildPlan& plan);

void saveArtifact(const QueryArtifact& a, std::ostream& out);
QueryArtifact loadArtifact(std::istream& in);
void saveArtifactFile(const QueryArtifact& a, const std::string& path);
QueryArtifact loadArtifactFile(const std::string& path);

/// The assembled serving stack. Owns all backing structures; `tiered` is
/// the entry point. `oracle` is exposed so callers can warm its cache.
struct QueryPlane {
  std::shared_ptr<const Graph> graph;
  std::shared_ptr<const DistanceSketches> sketches;
  std::shared_ptr<SpannerDistanceOracle> oracle;
  std::shared_ptr<TieredOracle> tiered;
};

struct QueryPlaneOptions {
  /// Middle tier answers only from resident cache rows (declining
  /// otherwise) instead of computing on miss. On by default — it is what
  /// keeps the tier cheap; the exact tier backstops cold pairs.
  bool spannerCachedOnly = true;
};

/// Assembles sketch -> spanner -> exact over the artifact's structures.
/// Copies the artifact's graph and sketches into shared ownership; the
/// artifact itself need not outlive the plane.
QueryPlane makeQueryPlane(const QueryArtifact& a,
                          const QueryPlaneOptions& opt = {});

}  // namespace mpcspan::query
