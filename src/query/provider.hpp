// The query plane's provider contract.
//
// A DistanceProvider answers point-to-point distance estimates over a fixed
// vertex set. The contract every implementation must satisfy:
//
//  - query(u, v) returns an estimate d with d(u,v) <= d <= stretchBound() *
//    d(u,v) for connected pairs, kInfDist for disconnected pairs, and 0 for
//    u == v.
//  - All query methods are const and thread-safe: any number of threads may
//    call them concurrently, including concurrently with provider-specific
//    mutation entry points that declare themselves concurrent-safe (e.g.
//    SpannerDistanceOracle::warm). Implementations achieve this with
//    immutable state or internal synchronization — callers never lock.
//  - tryQuery(u, v) additionally may *decline*: it returns kNoAnswer when
//    this provider cannot answer the pair cheaply (e.g. a cache-only tier
//    whose row is cold). query() never declines.
//
// kInfDist is an answer ("disconnected"), kNoAnswer is the absence of one;
// composite providers (TieredOracle) rely on the distinction.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "graph/distance.hpp"
#include "graph/graph.hpp"

namespace mpcspan::query {

/// Sentinel returned by tryQuery when a provider declines to answer.
/// Distances are always >= 0, so -1 is unambiguous.
inline constexpr Weight kNoAnswer = -1.0;

using QueryPair = std::pair<VertexId, VertexId>;

class DistanceProvider {
 public:
  virtual ~DistanceProvider() = default;

  /// Short stable identifier ("exact", "sketch", "spanner-cache", ...).
  virtual std::string name() const = 0;

  /// Vertex count of the universe this provider answers over.
  virtual std::size_t numVertices() const = 0;

  /// Distance estimate per the contract above. Never returns kNoAnswer.
  virtual Weight query(VertexId u, VertexId v) const = 0;

  /// Like query(), but may return kNoAnswer to decline the pair. The
  /// default never declines.
  virtual Weight tryQuery(VertexId u, VertexId v) const { return query(u, v); }

  /// query() for each pairs[i] into out[i]. out.size() must equal
  /// pairs.size(). The default loops over query(); implementations may
  /// batch for locality.
  virtual void queryBatch(std::span<const QueryPair> pairs,
                          std::span<Weight> out) const;

  /// Certified multiplicative stretch: query(u,v) <= stretchBound()*d(u,v).
  virtual double stretchBound() const = 0;

  /// Resident size in 8-byte words.
  virtual std::size_t memoryWords() const = 0;
};

}  // namespace mpcspan::query
