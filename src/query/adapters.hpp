// DistanceProvider adapters over the repo's three answering structures:
// exact Dijkstra on the input graph, Thorup–Zwick sketches, and the
// spanner distance oracle (full or cache-only mode). Each adapter is a
// thin, allocation-free forwarding layer — its answers are bit-identical
// to calling the wrapped structure directly (tested in tests/test_query.cc).
//
// Adapters hold shared_ptr<const T> so a provider can outlive (or share)
// its backing structure; the aliasing-constructor overloads wrap a
// caller-owned reference without taking ownership (caller must keep it
// alive).
#pragma once

#include <memory>
#include <string>

#include "apsp/oracle.hpp"
#include "apsp/sketches.hpp"
#include "query/provider.hpp"

namespace mpcspan::query {

/// Ground truth: single-pair Dijkstra on the input graph. Stretch 1.
/// Queries are O(m log n) — this is the fallback tier, not a fast path.
class ExactDistanceProvider final : public DistanceProvider {
 public:
  explicit ExactDistanceProvider(std::shared_ptr<const Graph> g);
  /// Non-owning: caller keeps `g` alive for the provider's lifetime.
  explicit ExactDistanceProvider(const Graph& g);

  std::string name() const override { return "exact"; }
  std::size_t numVertices() const override { return g_->numVertices(); }
  Weight query(VertexId u, VertexId v) const override;
  double stretchBound() const override { return 1.0; }
  std::size_t memoryWords() const override;

 private:
  std::shared_ptr<const Graph> g_;
};

/// Thorup–Zwick sketches: O(k) lookups per query, stretch 2k-1 relative to
/// the graph the sketches were built on. When that graph is itself a
/// spanner, pass the composed bound via `stretchOverride`.
class SketchDistanceProvider final : public DistanceProvider {
 public:
  explicit SketchDistanceProvider(std::shared_ptr<const DistanceSketches> sk,
                                  double stretchOverride = 0);
  explicit SketchDistanceProvider(const DistanceSketches& sk,
                                  double stretchOverride = 0);

  std::string name() const override { return "sketch"; }
  std::size_t numVertices() const override { return sk_->numVertices(); }
  Weight query(VertexId u, VertexId v) const override;
  double stretchBound() const override { return stretch_; }
  std::size_t memoryWords() const override { return sk_->memoryWords(); }

 private:
  std::shared_ptr<const DistanceSketches> sk_;
  double stretch_;
};

/// The spanner distance oracle. Two modes:
///  - kCompute: query() Dijkstras (and caches) on a cache miss — always
///    answers.
///  - kCachedOnly: tryQuery() answers only from resident cache rows and
///    declines (kNoAnswer) otherwise; query() still computes. This is the
///    O(1)-latency middle-tier mode of the TieredOracle.
class SpannerOracleProvider final : public DistanceProvider {
 public:
  enum class Mode { kCompute, kCachedOnly };

  explicit SpannerOracleProvider(
      std::shared_ptr<const SpannerDistanceOracle> oracle,
      Mode mode = Mode::kCompute, double stretchOverride = 0);
  explicit SpannerOracleProvider(const SpannerDistanceOracle& oracle,
                                 Mode mode = Mode::kCompute,
                                 double stretchOverride = 0);

  std::string name() const override {
    return mode_ == Mode::kCachedOnly ? "spanner-cache" : "spanner";
  }
  std::size_t numVertices() const override {
    return oracle_->spannerGraph().numVertices();
  }
  Weight query(VertexId u, VertexId v) const override;
  Weight tryQuery(VertexId u, VertexId v) const override;
  double stretchBound() const override { return stretch_; }
  /// Spanner words plus the resident cache rows (n words each).
  std::size_t memoryWords() const override;

  const SpannerDistanceOracle& oracle() const { return *oracle_; }

 private:
  std::shared_ptr<const SpannerDistanceOracle> oracle_;
  Mode mode_;
  double stretch_;
};

}  // namespace mpcspan::query
