// TieredOracle: a DistanceProvider composed of cheaper-to-costlier tiers.
//
// query(u, v) walks the tiers in order, calling tryQuery on each. A tier's
// answer is accepted when it is not kNoAnswer and — for every tier but the
// last — not kInfDist: a non-final tier saying "infinite" may just mean its
// approximation can't see the connection (e.g. an eviction-cold cache), so
// the pair falls through to a stronger tier. The final tier's answer is
// returned as-is (its kInfDist is authoritative: disconnected).
//
// The canonical stack (makeQueryPlane in build.hpp):
//   sketch (O(k) lookup)  ->  spanner-cache (O(1), declines when cold)
//     ->  exact (Dijkstra fallback).
//
// Per-tier attempt/hit/latency counters are relaxed atomics — query() is
// const and thread-safe whenever every tier is (the provider contract).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/provider.hpp"
#include "util/deadline.hpp"

namespace mpcspan::query {

struct TierStats {
  std::string name;
  std::uint64_t attempts = 0;
  std::uint64_t hits = 0;     // answers accepted from this tier
  std::uint64_t nanos = 0;    // total time spent in this tier's tryQuery
};

/// One coherent aggregate of every TieredOracle counter — what the serving
/// daemon's STATS command reports. Reads are relaxed atomics (the same
/// discipline as stats()), so snapshotting never blocks or races live
/// queries; the fields are each individually consistent, not a cross-field
/// transaction.
struct OracleSnapshot {
  std::vector<TierStats> tiers;
  std::uint64_t queries = 0;   // query() + queryBudgeted() calls
  std::uint64_t degraded = 0;  // budget-degraded queryBudgeted answers
};

/// queryBudgeted's result: the estimate plus the certificate that makes a
/// degraded answer principled — which tier answered and the multiplicative
/// stretch bound it guarantees.
struct BudgetedAnswer {
  Weight dist = kInfDist;
  int tier = -1;           // index into tier(); -1 = every tier declined
  bool degraded = false;   // a more accurate tier was skipped for budget
  double stretch = 1.0;    // stretchBound() of the answering tier
};

class TieredOracle final : public DistanceProvider {
 public:
  /// Tiers in probe order, cheapest first. Throws std::invalid_argument if
  /// empty, any tier is null, or the tiers disagree on numVertices().
  explicit TieredOracle(
      std::vector<std::shared_ptr<const DistanceProvider>> tiers);

  std::string name() const override { return "tiered"; }
  std::size_t numVertices() const override;
  Weight query(VertexId u, VertexId v) const override;
  /// Max over tiers — any tier's accepted answer satisfies it.
  double stretchBound() const override;
  std::size_t memoryWords() const override;

  std::size_t numTiers() const { return tiers_.size(); }
  const DistanceProvider& tier(std::size_t i) const { return *tiers_[i]; }

  /// Deadline-budgeted, accuracy-first query — the serving daemon's entry
  /// point. Where query() walks cheapest-first (minimize work), this walks
  /// the ladder *costliest/most-accurate first* (maximize answer quality)
  /// and lets the budget prune it: a tier above the floor is entered only
  /// when the budget's remaining time covers that tier's observed mean
  /// tryQuery latency (counter-derived; a tier with no samples yet is
  /// always admitted — its first call seeds the estimate). Tier 0, the
  /// cheapest, is the degradation floor and is never skipped.
  ///
  /// Acceptance mirrors query(): kNoAnswer falls down the ladder, and
  /// kInfDist is authoritative only from the strongest tier (or from the
  /// floor, when nothing below remains to try). The answer is flagged
  /// `degraded` when a more accurate tier was skipped for budget — the
  /// caller gets the answering tier's certified stretchBound() alongside,
  /// so a degraded reply is a weaker certificate, not a guess.
  ///
  /// If every admitted tier declines (impossible in the canonical stack —
  /// the sketch floor always answers), the walk retries once ignoring the
  /// budget: availability beats the deadline. An unbounded budget makes
  /// this exactly "strongest tier answers".
  ///
  /// Thread-safe under the same contract as query().
  BudgetedAnswer queryBudgeted(VertexId u, VertexId v,
                               const util::DeadlineBudget& budget) const;

  /// Snapshot of per-tier counters (monotone since construction or the
  /// last resetStats).
  std::vector<TierStats> stats() const;
  /// Everything at once: per-tier counters plus the query/degraded totals.
  OracleSnapshot snapshot() const;
  /// Zeroes every counter stats()/snapshot() report, including the
  /// query/degraded totals (relaxed stores; safe against live queries).
  void resetStats();

 private:
  struct Counters {
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> nanos{0};
  };

  /// tryQuery on tier i with attempt/latency accounting (hit not counted).
  Weight timedTryQuery(std::size_t i, VertexId u, VertexId v) const;
  /// Observed mean tryQuery nanos of tier i; 0 until the first sample.
  std::uint64_t meanTierNanos(std::size_t i) const;

  std::vector<std::shared_ptr<const DistanceProvider>> tiers_;
  // Sized once at construction; atomics are immovable so the vector is
  // never resized.
  mutable std::vector<Counters> counters_;
  mutable std::atomic<std::uint64_t> queries_{0};
  mutable std::atomic<std::uint64_t> degraded_{0};
};

}  // namespace mpcspan::query
