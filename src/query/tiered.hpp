// TieredOracle: a DistanceProvider composed of cheaper-to-costlier tiers.
//
// query(u, v) walks the tiers in order, calling tryQuery on each. A tier's
// answer is accepted when it is not kNoAnswer and — for every tier but the
// last — not kInfDist: a non-final tier saying "infinite" may just mean its
// approximation can't see the connection (e.g. an eviction-cold cache), so
// the pair falls through to a stronger tier. The final tier's answer is
// returned as-is (its kInfDist is authoritative: disconnected).
//
// The canonical stack (makeQueryPlane in build.hpp):
//   sketch (O(k) lookup)  ->  spanner-cache (O(1), declines when cold)
//     ->  exact (Dijkstra fallback).
//
// Per-tier attempt/hit/latency counters are relaxed atomics — query() is
// const and thread-safe whenever every tier is (the provider contract).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "query/provider.hpp"

namespace mpcspan::query {

struct TierStats {
  std::string name;
  std::uint64_t attempts = 0;
  std::uint64_t hits = 0;     // answers accepted from this tier
  std::uint64_t nanos = 0;    // total time spent in this tier's tryQuery
};

class TieredOracle final : public DistanceProvider {
 public:
  /// Tiers in probe order, cheapest first. Throws std::invalid_argument if
  /// empty, any tier is null, or the tiers disagree on numVertices().
  explicit TieredOracle(
      std::vector<std::shared_ptr<const DistanceProvider>> tiers);

  std::string name() const override { return "tiered"; }
  std::size_t numVertices() const override;
  Weight query(VertexId u, VertexId v) const override;
  /// Max over tiers — any tier's accepted answer satisfies it.
  double stretchBound() const override;
  std::size_t memoryWords() const override;

  std::size_t numTiers() const { return tiers_.size(); }
  const DistanceProvider& tier(std::size_t i) const { return *tiers_[i]; }

  /// Snapshot of per-tier counters (monotone since construction or the
  /// last resetStats).
  std::vector<TierStats> stats() const;
  void resetStats();

 private:
  struct Counters {
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> nanos{0};
  };

  std::vector<std::shared_ptr<const DistanceProvider>> tiers_;
  // Sized once at construction; atomics are immovable so the vector is
  // never resized.
  mutable std::vector<Counters> counters_;
};

}  // namespace mpcspan::query
