#include "query/provider.hpp"

#include <stdexcept>

namespace mpcspan::query {

void DistanceProvider::queryBatch(std::span<const QueryPair> pairs,
                                  std::span<Weight> out) const {
  if (pairs.size() != out.size())
    throw std::invalid_argument("queryBatch: pairs/out size mismatch");
  for (std::size_t i = 0; i < pairs.size(); ++i)
    out[i] = query(pairs[i].first, pairs[i].second);
}

}  // namespace mpcspan::query
