#include "query/build.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "graph/connectivity.hpp"
#include "graph/io.hpp"
#include "mpc/dist_spanner.hpp"
#include "mpc/simulator.hpp"
#include "spanner/baswana_sen.hpp"
#include "spanner/tradeoff.hpp"

namespace mpcspan::query {

namespace {

std::uint32_t effectiveT(std::uint32_t k, std::uint32_t t) {
  if (t != 0) return t;
  return static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(std::log2(static_cast<double>(std::max(k, 2u))))));
}

struct SpannerBuild {
  std::vector<EdgeId> edges;
  std::string algorithm;
  std::uint32_t k = 0;
  std::uint32_t t = 0;
  double stretch = 0;
  std::size_t rounds = 0;
  std::size_t wordsMoved = 0;
};

SpannerBuild runSpanner(const Graph& g, const BuildPlan& plan) {
  SpannerBuild out;
  out.algorithm = plan.algo;
  out.k = plan.k;
  if (plan.algo == "tradeoff") {
    SpannerResult r = buildTradeoffSpanner(g, {plan.k, plan.t, plan.seed});
    out.edges = std::move(r.edges);
    out.t = r.t;
    out.stretch = r.stretchBound;
  } else if (plan.algo == "baswana-sen") {
    SpannerResult r = buildBaswanaSen(g, {plan.k, plan.seed});
    out.edges = std::move(r.edges);
    out.stretch = r.stretchBound;
  } else if (plan.algo == "dist-baswana-sen" || plan.algo == "dist-tradeoff") {
    MpcSimulator sim(
        MpcConfig::forInput(8 * std::max<std::size_t>(g.numEdges(), 8),
                            plan.gamma, 3.0),
        plan.threads, plan.shards);
    DistSpannerResult r;
    if (plan.algo == "dist-baswana-sen") {
      r = buildDistributedBaswanaSen(sim, g, plan.k, plan.seed);
      out.stretch = 2.0 * plan.k - 1.0;
    } else {
      out.t = effectiveT(plan.k, plan.t);
      r = buildDistributedTradeoff(sim, g, plan.k, plan.t, plan.seed);
      out.stretch = tradeoffTheoreticalStretch(plan.k, out.t);
    }
    out.edges = std::move(r.edges);
    out.rounds = r.simulatorRounds;
    out.wordsMoved = r.wordsMoved;
  } else {
    throw std::invalid_argument("buildArtifact: unknown algo '" + plan.algo +
                                "' (want tradeoff | baswana-sen | "
                                "dist-tradeoff | dist-baswana-sen)");
  }
  if (out.stretch <= 0) out.stretch = 1.0;  // identity spanner (k == 1)
  return out;
}

}  // namespace

QueryArtifact buildArtifact(const Graph& g, const BuildPlan& plan) {
  SpannerBuild sb = runSpanner(g, plan);
  const Graph h = subgraph(g, sb.edges);
  const SketchParams sp{plan.sketchK, plan.sketchSeed};
  DistanceSketches sketches(h, sp);
  const double composed = sketches.stretchBound() * sb.stretch;
  return QueryArtifact{g,
                       std::move(sb.edges),
                       std::move(sb.algorithm),
                       sb.k,
                       sb.t,
                       sb.stretch,
                       sp,
                       composed,
                       std::move(sketches),
                       plan.cacheSources,
                       sb.rounds,
                       sb.wordsMoved};
}

namespace {
constexpr std::uint32_t kArtifactMagic = 0x4151504du;  // "MPQA" little-endian
constexpr std::uint32_t kArtifactVersion = 1;
constexpr std::uint64_t kMaxSketchK = 4096;  // plausibility cap on levels
}  // namespace

void saveArtifact(const QueryArtifact& a, std::ostream& out) {
  BinWriter w(out);
  w.u32(kArtifactMagic);
  w.u32(kArtifactVersion);

  writeGraphBinary(a.graph, out);

  w.str(a.algorithm);
  w.u32(a.k);
  w.u32(a.t);
  w.f64(a.spannerStretch);
  w.u32Vec(a.spannerEdges);

  w.u32(a.sketchParams.k);
  w.u64(a.sketchParams.seed);
  w.f64(a.composedStretch);
  const SketchTables t = a.sketches.exportTables();
  w.u32(t.k);
  w.u64(t.n);
  for (const auto& row : t.pivotDist) w.f64Vec(row);
  for (const auto& row : t.pivot) w.u32Vec(row);
  w.u64Vec(t.bunchStart);
  w.u32Vec(t.bunchW);
  w.f64Vec(t.bunchDist);
  w.u32Vec(t.levelSizes);
  w.u64(t.relaxations);

  w.u64(a.cacheSources);
  w.u64(a.buildRounds);
  w.u64(a.wordsMoved);
}

QueryArtifact loadArtifact(std::istream& in) {
  BinReader r(in, "query artifact");
  if (r.u32() != kArtifactMagic)
    r.fail("bad magic (not an mpcspan query artifact)");
  const std::uint32_t version = r.u32();
  if (version != kArtifactVersion)
    r.fail("unsupported version " + std::to_string(version));

  Graph graph = readGraphBinary(in);
  const std::size_t m = graph.numEdges();

  std::string algorithm = r.str(256);
  const std::uint32_t k = r.u32();
  const std::uint32_t t = r.u32();
  const double spannerStretch = r.f64();
  std::vector<EdgeId> spannerEdges = r.u32Vec();
  for (EdgeId e : spannerEdges)
    if (e >= m) r.fail("spanner edge id out of range");

  SketchParams sp;
  sp.k = r.u32();
  sp.seed = r.u64();
  const double composedStretch = r.f64();
  SketchTables tables;
  tables.k = r.u32();
  if (tables.k == 0 || tables.k > kMaxSketchK)
    r.fail("implausible sketch level count " + std::to_string(tables.k));
  tables.n = r.count();
  if (tables.n != graph.numVertices())
    r.fail("sketch vertex count disagrees with graph");
  tables.pivotDist.resize(tables.k + 1);
  for (auto& row : tables.pivotDist) row = r.f64Vec();
  tables.pivot.resize(tables.k + 1);
  for (auto& row : tables.pivot) row = r.u32Vec();
  tables.bunchStart = r.u64Vec();
  tables.bunchW = r.u32Vec();
  tables.bunchDist = r.f64Vec();
  tables.levelSizes = r.u32Vec();
  tables.relaxations = r.u64();

  const std::size_t cacheSources = static_cast<std::size_t>(r.count());
  const std::size_t buildRounds = static_cast<std::size_t>(r.u64());
  const std::size_t wordsMoved = static_cast<std::size_t>(r.u64());
  r.expectEof();

  // The adopting constructor validates every table invariant; surface its
  // rejection as a corrupt-artifact error. Nothing partial escapes: the
  // artifact is returned only after this succeeds.
  try {
    DistanceSketches sketches(std::move(tables));
    return QueryArtifact{std::move(graph),
                         std::move(spannerEdges),
                         std::move(algorithm),
                         k,
                         t,
                         spannerStretch,
                         sp,
                         composedStretch,
                         std::move(sketches),
                         cacheSources,
                         buildRounds,
                         wordsMoved};
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("query artifact: corrupt sketch tables: ") +
                             e.what());
  }
}

void saveArtifactFile(const QueryArtifact& a, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  saveArtifact(a, out);
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + path);
}

QueryArtifact loadArtifactFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return loadArtifact(in);
}

QueryPlane makeQueryPlane(const QueryArtifact& a, const QueryPlaneOptions& opt) {
  QueryPlane plane;
  plane.graph = std::make_shared<const Graph>(a.graph);
  plane.sketches = std::make_shared<const DistanceSketches>(a.sketches);

  SpannerResult sr;
  sr.edges = a.spannerEdges;
  sr.algorithm = a.algorithm;
  sr.k = a.k;
  sr.t = a.t;
  sr.stretchBound = a.spannerStretch;
  sr.inputVertices = a.graph.numVertices();
  sr.inputEdges = a.graph.numEdges();
  plane.oracle = std::make_shared<SpannerDistanceOracle>(
      *plane.graph, std::move(sr), a.cacheSources);

  std::vector<std::shared_ptr<const DistanceProvider>> tiers;
  tiers.push_back(
      std::make_shared<SketchDistanceProvider>(plane.sketches, a.composedStretch));
  tiers.push_back(std::make_shared<SpannerOracleProvider>(
      std::shared_ptr<const SpannerDistanceOracle>(plane.oracle),
      opt.spannerCachedOnly ? SpannerOracleProvider::Mode::kCachedOnly
                            : SpannerOracleProvider::Mode::kCompute,
      a.spannerStretch));
  tiers.push_back(std::make_shared<ExactDistanceProvider>(plane.graph));
  plane.tiered = std::make_shared<TieredOracle>(std::move(tiers));
  return plane;
}

}  // namespace mpcspan::query
