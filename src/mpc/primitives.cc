#include "mpc/primitives.hpp"

#include <algorithm>

namespace mpcspan {

std::size_t treeBroadcastWords(MpcSimulator& sim, const std::vector<Word>& payload) {
  const std::size_t p = sim.numMachines();
  if (p <= 1) return 0;
  // Branching factor: the largest B such that one holder can forward B
  // copies within its per-round send budget (B=1 degrades to doubling via
  // one forward per holder per round, still O(log p) rounds).
  const std::size_t perCopy = std::max<std::size_t>(1, payload.size());
  if (perCopy > sim.wordsPerMachine())
    throw CapacityError("treeBroadcastWords: payload exceeds machine memory");
  const std::size_t branch =
      std::max<std::size_t>(1, sim.wordsPerMachine() / perCopy);

  std::vector<char> has(p, 0);
  has[0] = 1;
  std::size_t holders = 1;
  std::size_t rounds = 0;
  while (holders < p) {
    // Snapshot: only machines that held the payload at the *start* of the
    // round may forward it this round.
    const std::vector<char> holderSnapshot = has;
    std::vector<std::vector<MpcSimulator::Message>> out(p);
    std::size_t next = 0;
    for (std::size_t m = 0; m < p && holders < p; ++m) {
      if (!holderSnapshot[m]) continue;
      std::size_t fanned = 0;
      while (fanned < branch && holders < p) {
        while (next < p && has[next]) ++next;
        if (next >= p) break;
        out[m].push_back({next, payload});
        has[next] = 1;
        ++holders;
        ++fanned;
      }
    }
    sim.communicate(std::move(out));
    ++rounds;
  }
  return rounds;
}

std::vector<std::size_t> prefixCounts(MpcSimulator& sim,
                                      const std::vector<std::size_t>& counts) {
  const std::size_t p = sim.numMachines();
  if (counts.size() != p)
    throw std::invalid_argument("prefixCounts: counts size mismatch");
  if (p > sim.wordsPerMachine())
    throw CapacityError("prefixCounts: too many machines for coordinator scan");
  if (p <= 1) return std::vector<std::size_t>(p, 0);

  // Round 1: every machine reports its count to the coordinator.
  std::vector<std::vector<MpcSimulator::Message>> out(p);
  for (std::size_t m = 0; m < p; ++m)
    out[m].push_back({0, {static_cast<Word>(counts[m]), static_cast<Word>(m)}});
  auto inbox = sim.communicate(std::move(out));

  std::vector<std::size_t> gathered(p, 0);
  const std::vector<Word>& raw = inbox[0];
  for (std::size_t off = 0; off + 2 <= raw.size(); off += 2)
    gathered[static_cast<std::size_t>(raw[off + 1])] = static_cast<std::size_t>(raw[off]);

  std::vector<std::size_t> prefix(p, 0);
  for (std::size_t m = 1; m < p; ++m) prefix[m] = prefix[m - 1] + gathered[m - 1];

  // Round 2: coordinator returns each machine its offset.
  std::vector<std::vector<MpcSimulator::Message>> back(p);
  for (std::size_t m = 0; m < p; ++m)
    back[0].push_back({m, {static_cast<Word>(prefix[m])}});
  sim.communicate(std::move(back));
  return prefix;
}

}  // namespace mpcspan
