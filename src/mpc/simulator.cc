#include "mpc/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace mpcspan {

namespace {

std::unique_ptr<runtime::Topology> makeMpcTopology(const MpcConfig& cfg) {
  if (cfg.numMachines == 0 || cfg.wordsPerMachine == 0)
    throw std::invalid_argument("MpcSimulator: empty configuration");
  return std::make_unique<runtime::MpcTopology>(cfg.wordsPerMachine);
}

}  // namespace

MpcConfig MpcConfig::forInput(std::size_t inputWords, double gamma, double slack) {
  MpcConfig cfg;
  const std::size_t nw = std::max<std::size_t>(inputWords, 16);
  // The capacity the cluster must provide. Floating point appears exactly
  // once, to *define* the requirement; every machine count below is derived
  // from it with an integer ceiling, so numMachines * wordsPerMachine >=
  // need by construction — a double ceil() of the quotient can round to the
  // floor when slack * nw / S is within one ulp of an integer, silently
  // losing up to a machine's worth of capacity.
  const std::size_t need = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(slack * static_cast<double>(nw))));
  const auto machinesFor = [need](std::size_t wordsPerMachine) {
    return (need + wordsPerMachine - 1) / wordsPerMachine;
  };
  cfg.wordsPerMachine = std::max<std::size_t>(
      16, static_cast<std::size_t>(
              std::pow(static_cast<double>(nw), gamma)));
  cfg.numMachines = machinesFor(cfg.wordsPerMachine);
  // Coordinator-based O(1)-round primitives (one-level sample sort, prefix
  // scan, boundary fix-up) need every machine to hold O(numMachines) words
  // (splitter sets, per-machine counters). Enforce S >= 64 * machines (with
  // headroom for sample-sort skew); for gamma < 1/2 this raises the
  // effective local memory — the multi-level recursive variants that avoid
  // it cost the same O(1/gamma) rounds, so round accounting is unaffected.
  if (cfg.wordsPerMachine < 64 * cfg.numMachines) {
    cfg.wordsPerMachine = std::max<std::size_t>(
        16, static_cast<std::size_t>(
                std::ceil(std::sqrt(64.0 * static_cast<double>(need)))));
    cfg.numMachines = machinesFor(cfg.wordsPerMachine);
    // The integer ceilings can leave S a hair under 64 * machines; growing
    // S only shrinks the machine count, so this settles in O(1) steps.
    while (cfg.wordsPerMachine < 64 * cfg.numMachines) {
      cfg.wordsPerMachine = 64 * cfg.numMachines;
      cfg.numMachines = machinesFor(cfg.wordsPerMachine);
    }
  }
  return cfg;
}

MpcSimulator::MpcSimulator(MpcConfig cfg, std::size_t threads,
                           std::size_t shards, int resident,
                           runtime::Transport transport, int pipeline)
    : cfg_(cfg),
      engine_(runtime::EngineConfig{cfg.numMachines, threads, shards, resident,
                                    /*peerExchange=*/-1, transport, pipeline},
              makeMpcTopology(cfg)) {}

std::vector<std::vector<Word>> MpcSimulator::communicate(
    std::vector<std::vector<Message>> outboxes) {
  const std::vector<std::vector<runtime::Delivery>> delivered =
      engine_.exchange(std::move(outboxes));

  // Concatenate each machine's deliveries (already in sender order) into
  // the flat word inbox the primitives consume.
  std::vector<std::vector<Word>> inbox(delivered.size());
  engine_.parallelFor(delivered.size(), [&](std::size_t m) {
    std::size_t total = 0;
    for (const runtime::Delivery& d : delivered[m]) total += d.payload.size();
    inbox[m].reserve(total);
    for (const runtime::Delivery& d : delivered[m])
      inbox[m].insert(inbox[m].end(), d.payload.begin(), d.payload.end());
  });
  return inbox;
}

}  // namespace mpcspan
