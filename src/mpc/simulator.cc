#include "mpc/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace mpcspan {

MpcConfig MpcConfig::forInput(std::size_t inputWords, double gamma, double slack) {
  MpcConfig cfg;
  const double nw = static_cast<double>(std::max<std::size_t>(inputWords, 16));
  cfg.wordsPerMachine =
      std::max<std::size_t>(16, static_cast<std::size_t>(std::pow(nw, gamma)));
  cfg.numMachines = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(slack * nw / static_cast<double>(cfg.wordsPerMachine))));
  // Coordinator-based O(1)-round primitives (one-level sample sort, prefix
  // scan, boundary fix-up) need every machine to hold O(numMachines) words
  // (splitter sets, per-machine counters). Enforce S >= 64 * machines (with headroom for sample-sort skew); for
  // gamma < 1/2 this raises the effective local memory — the multi-level
  // recursive variants that avoid it cost the same O(1/gamma) rounds, so
  // round accounting is unaffected.
  if (cfg.wordsPerMachine < 64 * cfg.numMachines) {
    cfg.wordsPerMachine = std::max<std::size_t>(
        16, static_cast<std::size_t>(
                std::ceil(std::sqrt(64.0 * slack * nw))));
    cfg.numMachines = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(slack * nw / static_cast<double>(cfg.wordsPerMachine))));
  }
  return cfg;
}

MpcSimulator::MpcSimulator(MpcConfig cfg) : cfg_(cfg) {
  if (cfg_.numMachines == 0 || cfg_.wordsPerMachine == 0)
    throw std::invalid_argument("MpcSimulator: empty configuration");
}

std::vector<std::vector<Word>> MpcSimulator::communicate(
    std::vector<std::vector<Message>> outboxes) {
  if (outboxes.size() != cfg_.numMachines)
    throw std::invalid_argument("MpcSimulator: outboxes size mismatch");

  std::vector<std::size_t> sent(cfg_.numMachines, 0);
  std::vector<std::size_t> received(cfg_.numMachines, 0);
  std::size_t roundWords = 0;
  for (std::size_t src = 0; src < outboxes.size(); ++src) {
    for (const Message& msg : outboxes[src]) {
      if (msg.dst >= cfg_.numMachines)
        throw std::invalid_argument("MpcSimulator: message to unknown machine");
      sent[src] += msg.payload.size();
      received[msg.dst] += msg.payload.size();
      roundWords += msg.payload.size();
    }
  }
  for (std::size_t i = 0; i < cfg_.numMachines; ++i) {
    if (sent[i] > cfg_.wordsPerMachine)
      throw CapacityError("machine " + std::to_string(i) + " sends " +
                          std::to_string(sent[i]) + " words > capacity " +
                          std::to_string(cfg_.wordsPerMachine));
    if (received[i] > cfg_.wordsPerMachine)
      throw CapacityError("machine " + std::to_string(i) + " receives " +
                          std::to_string(received[i]) + " words > capacity " +
                          std::to_string(cfg_.wordsPerMachine));
  }

  std::vector<std::vector<Word>> inbox(cfg_.numMachines);
  for (std::size_t src = 0; src < outboxes.size(); ++src)
    for (Message& msg : outboxes[src]) {
      auto& in = inbox[msg.dst];
      in.insert(in.end(), msg.payload.begin(), msg.payload.end());
    }

  ++rounds_;
  wordsSent_ += roundWords;
  maxRoundWords_ = std::max(maxRoundWords_, roundWords);
  return inbox;
}

}  // namespace mpcspan
