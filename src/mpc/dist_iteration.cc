#include "mpc/dist_iteration.hpp"

#include <algorithm>
#include <unordered_map>

#include "mpc/primitives.hpp"

namespace mpcspan {

namespace {

/// Candidate tuple shipped between machines (trivially copyable).
struct CandTuple {
  std::uint64_t key;  // (v << 32) | cluster
  double w;
  std::uint32_t id;
};

std::uint64_t packKey(VertexId v, VertexId cluster) {
  return (static_cast<std::uint64_t>(v) << 32) | cluster;
}

/// Candidate edges: one per (processing super-node, incident alive edge).
/// The label joins (attaching superOf/clusterOf to edge tuples) are the
/// sort-based "Clustering" superstep of Lemma 6.1, charged separately by
/// the engine; here they are applied host-side before sharding.
std::vector<CandTuple> buildCandidates(const Graph& g,
                                       const std::vector<VertexId>& superOf,
                                       const std::vector<VertexId>& clusterOf,
                                       const std::vector<char>& sampled,
                                       const std::vector<char>* alive) {
  std::vector<CandTuple> cands;
  cands.reserve(2 * g.numEdges());
  auto processing = [&](VertexId s) {
    return clusterOf[s] != kNoVertex && !sampled[clusterOf[s]];
  };
  for (EdgeId id = 0; id < g.numEdges(); ++id) {
    if (alive && !(*alive)[id]) continue;
    const Edge& e = g.edge(id);
    const VertexId su = superOf[e.u];
    const VertexId sv = superOf[e.v];
    if (su == kNoVertex || sv == kNoVertex) continue;
    const VertexId cu = clusterOf[su];
    const VertexId cv = clusterOf[sv];
    if (cu == kNoVertex || cv == kNoVertex || cu == cv) continue;
    if (processing(su)) cands.push_back({packKey(su, cv), e.w, id});
    if (processing(sv)) cands.push_back({packKey(sv, cu), e.w, id});
  }
  return cands;
}

bool betterCand(const CandTuple& a, const CandTuple& b) {
  return a.w < b.w || (a.w == b.w && a.id < b.id);
}

}  // namespace

DistIterationResult distIterationKernel(MpcSimulator& sim, const Graph& g,
                                        const std::vector<VertexId>& superOf,
                                        const std::vector<VertexId>& clusterOf,
                                        const std::vector<char>& sampled,
                                        const std::vector<char>* alive) {
  DistIterationResult out;
  const std::size_t startRounds = sim.rounds();

  // (1) min edge per (v, cluster): distributed sort + segmented min.
  std::vector<CandTuple> cands =
      buildCandidates(g, superOf, clusterOf, sampled, alive);
  {
    DistVector<CandTuple> dv(sim, cands);
    distSort(dv, [](const CandTuple& a, const CandTuple& b) {
      if (a.key != b.key) return a.key < b.key;
      return betterCand(a, b);
    });
    const std::vector<CandTuple> reduced = segmentedMinSorted(
        dv, [](const CandTuple& c) { return c.key; }, betterCand);
    out.groupMins.reserve(reduced.size());
    for (const CandTuple& c : reduced)
      out.groupMins.push_back(GroupMinEdge{static_cast<VertexId>(c.key >> 32),
                                           static_cast<VertexId>(c.key & 0xffffffffu),
                                           c.w, c.id});
  }

  // (2) closest sampled cluster per v: second segmented min, keyed by v,
  // over the sampled-cluster group minima.
  std::vector<CandTuple> sampledMins;
  sampledMins.reserve(out.groupMins.size());
  for (const GroupMinEdge& gm : out.groupMins)
    if (sampled[gm.cluster])
      sampledMins.push_back(
          {packKey(gm.v, gm.cluster), gm.w, static_cast<std::uint32_t>(gm.id)});
  {
    DistVector<CandTuple> dv(sim, sampledMins);
    auto keyOf = [](const CandTuple& c) { return c.key >> 32; };  // v only
    distSort(dv, [&](const CandTuple& a, const CandTuple& b) {
      if (keyOf(a) != keyOf(b)) return keyOf(a) < keyOf(b);
      return betterCand(a, b);
    });
    const std::vector<CandTuple> reduced = segmentedMinSorted(dv, keyOf, betterCand);
    out.joins.reserve(reduced.size());
    for (const CandTuple& c : reduced)
      out.joins.push_back(ClosestSampled{static_cast<VertexId>(c.key >> 32),
                                         static_cast<VertexId>(c.key & 0xffffffffu),
                                         c.w, c.id});
  }

  out.roundsUsed = sim.rounds() - startRounds;
  return out;
}

DistIterationResult referenceIterationKernel(const Graph& g,
                                             const std::vector<VertexId>& superOf,
                                             const std::vector<VertexId>& clusterOf,
                                             const std::vector<char>& sampled,
                                             const std::vector<char>* alive) {
  DistIterationResult out;
  std::vector<CandTuple> cands =
      buildCandidates(g, superOf, clusterOf, sampled, alive);

  std::unordered_map<std::uint64_t, CandTuple> groupBest;
  groupBest.reserve(cands.size());
  for (const CandTuple& c : cands) {
    auto [it, inserted] = groupBest.try_emplace(c.key, c);
    if (!inserted && betterCand(c, it->second)) it->second = c;
  }
  for (const auto& [key, c] : groupBest)
    out.groupMins.push_back(GroupMinEdge{static_cast<VertexId>(key >> 32),
                                         static_cast<VertexId>(key & 0xffffffffu),
                                         c.w, c.id});
  std::sort(out.groupMins.begin(), out.groupMins.end(),
            [](const GroupMinEdge& a, const GroupMinEdge& b) {
              if (a.v != b.v) return a.v < b.v;
              return a.cluster < b.cluster;
            });

  std::unordered_map<VertexId, ClosestSampled> joinBest;
  for (const GroupMinEdge& gm : out.groupMins) {
    if (!sampled[gm.cluster]) continue;
    const ClosestSampled cs{gm.v, gm.cluster, gm.w, gm.id};
    auto [it, inserted] = joinBest.try_emplace(gm.v, cs);
    if (!inserted &&
        (cs.w < it->second.w || (cs.w == it->second.w && cs.id < it->second.id)))
      it->second = cs;
  }
  for (const auto& [v, cs] : joinBest) out.joins.push_back(cs);
  std::sort(out.joins.begin(), out.joins.end(),
            [](const ClosestSampled& a, const ClosestSampled& b) { return a.v < b.v; });
  return out;
}

}  // namespace mpcspan
