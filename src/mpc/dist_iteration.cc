#include "mpc/dist_iteration.hpp"

#include <algorithm>
#include <optional>

#include "mpc/growth_kernels.hpp"
#include "mpc/primitives.hpp"

namespace mpcspan {

namespace {

// Stateless comparator/predicate objects: every phase of the iteration runs
// as a registered kernel, so the orderings and the sampled-cluster filter
// cross into the shard workers by type and are default-constructed there
// (see mpc/primitives.hpp and mpc/growth_kernels.hpp).
struct CandByKey {
  // Primary order is packed word 0 (CandTuple::key), ascending — lets the
  // sort kernels run flat key passes (detail::PackedKeyWord).
  static constexpr std::size_t kPackedKeyWord = 0;
  bool operator()(const CandTuple& a, const CandTuple& b) const {
    if (a.key != b.key) return a.key < b.key;
    return betterCand(a, b);
  }
};
struct CandKey {
  std::uint64_t operator()(const CandTuple& c) const { return c.key; }
};
struct CandVertex {  // v only
  std::uint64_t operator()(const CandTuple& c) const { return c.key >> 32; }
};
struct CandByVertex {
  bool operator()(const CandTuple& a, const CandTuple& b) const {
    if (CandVertex{}(a) != CandVertex{}(b)) return CandVertex{}(a) < CandVertex{}(b);
    return betterCand(a, b);
  }
};
struct CandBetter {
  bool operator()(const CandTuple& a, const CandTuple& b) const {
    return betterCand(a, b);
  }
};
/// Keeps a group minimum iff its cluster (low key half) is sampled.
struct SampledClusterPred {
  bool operator()(const CandTuple& c, const Word* bits,
                  std::size_t numBits) const {
    return runtime::testArgBit(
        bits, numBits, static_cast<std::size_t>(c.key & 0xffffffffu));
  }
};

}  // namespace

DistIterationResult distIterationKernel(MpcSimulator& sim, const Graph& g,
                                        const std::vector<VertexId>& superOf,
                                        const std::vector<VertexId>& clusterOf,
                                        const std::vector<char>& sampled,
                                        const std::vector<char>* alive) {
  DistIterationResult out;
  const std::size_t startRounds = sim.rounds();
  runtime::RoundEngine& eng = sim.engine();
  const std::size_t p = eng.numMachines();

  // (1) min edge per (v, cluster): distributed sort + segmented min. The
  // candidate sweep is host-side (the graph lives with the coordinator);
  // everything after the initial block shipment stays worker-side.
  std::vector<CandTuple> cands = buildCandidates(g, superOf, clusterOf, sampled,
                                                 alive, &eng.pool());
  std::optional<DistVector<CandTuple>> sampledMins;
  {
    DistVector<CandTuple> dv(sim, cands);
    distSort(dv, CandByKey{});
    const std::vector<CandTuple> reduced =
        segmentedMinSorted(dv, CandKey{}, CandBetter{});
    out.groupMins.reserve(reduced.size());
    for (const CandTuple& c : reduced)
      out.groupMins.push_back(GroupMinEdge{static_cast<VertexId>(c.key >> 32),
                                           static_cast<VertexId>(c.key & 0xffffffffu),
                                           c.w, c.id});

    // (2)'s input — the group minima of *sampled* clusters, keyed by v — is
    // built without a coordinator round trip: the segmented min's reduced
    // sequence is emitted into a worker-resident block, filtered against
    // broadcast sampled bits, and re-laid out in DistVector order by a free
    // data-placement shuffle. Bit-identical to collecting host-side,
    // filtering, and re-shipping (which is what the coordinator-built path
    // did), with the same — free — ledger.
    const runtime::KernelId kSeg =
        detail::ensureKernel<SegMinKernel<CandTuple, CandKey, CandBetter>>(eng);
    // Leased / DistVector-owned from birth: a thrown round leaves the
    // engine usable by contract, so a retrying caller must not find dead
    // blocks accumulating in the workers.
    const runtime::BlockLease reducedBlocks(
        eng, eng.createBlocks(std::vector<std::vector<Word>>(p)));
    eng.stepLocal(kSeg, {kSegPhaseEmit, reducedBlocks.handle()});

    const runtime::KernelId kFilter = detail::ensureKernel<
        FilterScatterKernel<CandTuple, SampledClusterPred>>(eng);
    const std::vector<Word> bits = runtime::packArgBits(sampled);
    std::vector<Word> countArgs{kFilterPhaseCount, reducedBlocks.handle(),
                                sampled.size()};
    countArgs.insert(countArgs.end(), bits.begin(), bits.end());
    std::vector<Word> offsets(p, 0);
    std::size_t sampledTotal = 0;
    {
      const std::vector<std::vector<Word>> counts =
          eng.fetchKernel(kFilter, countArgs);
      for (std::size_t m = 0; m < p; ++m) {
        offsets[m] = sampledTotal;
        sampledTotal += static_cast<std::size_t>(counts[m].at(0));
      }
    }
    const std::size_t cap = distVectorCapItems<CandTuple>(sim);
    if (sampledTotal > p * cap)
      throw CapacityError("DistVector: data does not fit in the cluster");
    sampledMins.emplace(DistVector<CandTuple>::adopt(
        sim, eng.createBlocks(std::vector<std::vector<Word>>(p)),
        sampledTotal));
    std::vector<Word> scatterArgs{kFilterPhaseScatter, reducedBlocks.handle(),
                                  sampled.size(), cap};
    scatterArgs.insert(scatterArgs.end(), offsets.begin(), offsets.end());
    scatterArgs.insert(scatterArgs.end(), bits.begin(), bits.end());
    eng.stepShuffle(kFilter, scatterArgs);
    eng.stepLocal(kFilter, {kFilterPhaseBuild, sampledMins->handle()});
  }

  // (2) closest sampled cluster per v: second segmented min, keyed by v,
  // over the worker-resident sampled-cluster group minima.
  {
    DistVector<CandTuple>& dv = *sampledMins;
    distSort(dv, CandByVertex{});
    const std::vector<CandTuple> reduced =
        segmentedMinSorted(dv, CandVertex{}, CandBetter{});
    out.joins.reserve(reduced.size());
    for (const CandTuple& c : reduced)
      out.joins.push_back(ClosestSampled{static_cast<VertexId>(c.key >> 32),
                                         static_cast<VertexId>(c.key & 0xffffffffu),
                                         c.w, c.id});
  }

  out.roundsUsed = sim.rounds() - startRounds;
  return out;
}

DistIterationResult referenceIterationKernel(const Graph& g,
                                             const std::vector<VertexId>& superOf,
                                             const std::vector<VertexId>& clusterOf,
                                             const std::vector<char>& sampled,
                                             const std::vector<char>* alive) {
  return reduceCandidates(buildCandidates(g, superOf, clusterOf, sampled, alive),
                          sampled);
}

}  // namespace mpcspan
