#include "mpc/dist_iteration.hpp"

#include <algorithm>

#include "mpc/primitives.hpp"

namespace mpcspan {

DistIterationResult distIterationKernel(MpcSimulator& sim, const Graph& g,
                                        const std::vector<VertexId>& superOf,
                                        const std::vector<VertexId>& clusterOf,
                                        const std::vector<char>& sampled,
                                        const std::vector<char>* alive) {
  DistIterationResult out;
  const std::size_t startRounds = sim.rounds();

  // (1) min edge per (v, cluster): distributed sort + segmented min.
  std::vector<CandTuple> cands = buildCandidates(g, superOf, clusterOf, sampled,
                                                 alive, &sim.engine().pool());
  {
    DistVector<CandTuple> dv(sim, cands);
    distSort(dv, [](const CandTuple& a, const CandTuple& b) {
      if (a.key != b.key) return a.key < b.key;
      return betterCand(a, b);
    });
    const std::vector<CandTuple> reduced = segmentedMinSorted(
        dv, [](const CandTuple& c) { return c.key; }, betterCand);
    out.groupMins.reserve(reduced.size());
    for (const CandTuple& c : reduced)
      out.groupMins.push_back(GroupMinEdge{static_cast<VertexId>(c.key >> 32),
                                           static_cast<VertexId>(c.key & 0xffffffffu),
                                           c.w, c.id});
  }

  // (2) closest sampled cluster per v: second segmented min, keyed by v,
  // over the sampled-cluster group minima.
  std::vector<CandTuple> sampledMins;
  sampledMins.reserve(out.groupMins.size());
  for (const GroupMinEdge& gm : out.groupMins)
    if (sampled[gm.cluster])
      sampledMins.push_back({packGroupKey(gm.v, gm.cluster), gm.w,
                             static_cast<std::uint32_t>(gm.id)});
  {
    DistVector<CandTuple> dv(sim, sampledMins);
    auto keyOf = [](const CandTuple& c) { return c.key >> 32; };  // v only
    distSort(dv, [&](const CandTuple& a, const CandTuple& b) {
      if (keyOf(a) != keyOf(b)) return keyOf(a) < keyOf(b);
      return betterCand(a, b);
    });
    const std::vector<CandTuple> reduced = segmentedMinSorted(dv, keyOf, betterCand);
    out.joins.reserve(reduced.size());
    for (const CandTuple& c : reduced)
      out.joins.push_back(ClosestSampled{static_cast<VertexId>(c.key >> 32),
                                         static_cast<VertexId>(c.key & 0xffffffffu),
                                         c.w, c.id});
  }

  out.roundsUsed = sim.rounds() - startRounds;
  return out;
}

DistIterationResult referenceIterationKernel(const Graph& g,
                                             const std::vector<VertexId>& superOf,
                                             const std::vector<VertexId>& clusterOf,
                                             const std::vector<char>& sampled,
                                             const std::vector<char>* alive) {
  return reduceCandidates(buildCandidates(g, superOf, clusterOf, sampled, alive),
                          sampled);
}

}  // namespace mpcspan
