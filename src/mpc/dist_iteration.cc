#include "mpc/dist_iteration.hpp"

#include <algorithm>

#include "mpc/primitives.hpp"

namespace mpcspan {

namespace {

// Stateless comparator objects: distSort/segmentedMinSorted run as
// registered kernels, so the orderings cross into the shard workers by type
// and are default-constructed there (see mpc/primitives.hpp).
struct CandByKey {
  bool operator()(const CandTuple& a, const CandTuple& b) const {
    if (a.key != b.key) return a.key < b.key;
    return betterCand(a, b);
  }
};
struct CandKey {
  std::uint64_t operator()(const CandTuple& c) const { return c.key; }
};
struct CandVertex {  // v only
  std::uint64_t operator()(const CandTuple& c) const { return c.key >> 32; }
};
struct CandByVertex {
  bool operator()(const CandTuple& a, const CandTuple& b) const {
    if (CandVertex{}(a) != CandVertex{}(b)) return CandVertex{}(a) < CandVertex{}(b);
    return betterCand(a, b);
  }
};
struct CandBetter {
  bool operator()(const CandTuple& a, const CandTuple& b) const {
    return betterCand(a, b);
  }
};

}  // namespace

DistIterationResult distIterationKernel(MpcSimulator& sim, const Graph& g,
                                        const std::vector<VertexId>& superOf,
                                        const std::vector<VertexId>& clusterOf,
                                        const std::vector<char>& sampled,
                                        const std::vector<char>* alive) {
  DistIterationResult out;
  const std::size_t startRounds = sim.rounds();

  // (1) min edge per (v, cluster): distributed sort + segmented min.
  std::vector<CandTuple> cands = buildCandidates(g, superOf, clusterOf, sampled,
                                                 alive, &sim.engine().pool());
  {
    DistVector<CandTuple> dv(sim, cands);
    distSort(dv, CandByKey{});
    const std::vector<CandTuple> reduced =
        segmentedMinSorted(dv, CandKey{}, CandBetter{});
    out.groupMins.reserve(reduced.size());
    for (const CandTuple& c : reduced)
      out.groupMins.push_back(GroupMinEdge{static_cast<VertexId>(c.key >> 32),
                                           static_cast<VertexId>(c.key & 0xffffffffu),
                                           c.w, c.id});
  }

  // (2) closest sampled cluster per v: second segmented min, keyed by v,
  // over the sampled-cluster group minima.
  std::vector<CandTuple> sampledMins;
  sampledMins.reserve(out.groupMins.size());
  for (const GroupMinEdge& gm : out.groupMins)
    if (sampled[gm.cluster])
      sampledMins.push_back({packGroupKey(gm.v, gm.cluster), gm.w,
                             static_cast<std::uint32_t>(gm.id)});
  {
    DistVector<CandTuple> dv(sim, sampledMins);
    distSort(dv, CandByVertex{});
    const std::vector<CandTuple> reduced =
        segmentedMinSorted(dv, CandVertex{}, CandBetter{});
    out.joins.reserve(reduced.size());
    for (const CandTuple& c : reduced)
      out.joins.push_back(ClosestSampled{static_cast<VertexId>(c.key >> 32),
                                         static_cast<VertexId>(c.key & 0xffffffffu),
                                         c.w, c.id});
  }

  out.roundsUsed = sim.rounds() - startRounds;
  return out;
}

DistIterationResult referenceIterationKernel(const Graph& g,
                                             const std::vector<VertexId>& superOf,
                                             const std::vector<VertexId>& clusterOf,
                                             const std::vector<char>& sampled,
                                             const std::vector<char>* alive) {
  return reduceCandidates(buildCandidates(g, superOf, clusterOf, sampled, alive),
                          sampled);
}

}  // namespace mpcspan
