// End-to-end distributed Baswana–Sen on the MPC machine simulator.
//
// Every find-minimum of every iteration (and of phase 2) runs through
// distIterationKernel — i.e., real tuples, real sample sorts, real
// capacity-enforced message rounds — while the cheap label bookkeeping
// (cluster pointers, alive flags) is applied host-side, standing in for the
// Lemma 6.1 sort-based relabeling whose rounds are charged explicitly.
//
// Because sampling is the same deterministic hash-coin draw the
// ClusterEngine uses (same seed, same draw keys), the distributed execution
// must produce the *identical* spanner, edge for edge. That equivalence
// (tested in tests/test_dist_spanner.cc) is the repository's strongest
// evidence that the engine's round ledger corresponds to a real
// constant-round-per-iteration MPC execution.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/simulator.hpp"

namespace mpcspan {

struct DistSpannerResult {
  std::vector<EdgeId> edges;       // sorted spanner edge ids
  std::size_t simulatorRounds = 0; // real communication rounds used
  std::size_t iterations = 0;
  std::size_t wordsMoved = 0;
};

/// Distributed (2k-1)-spanner; identical output to
/// buildBaswanaSen(g, {k, seed}). `sim` must be provisioned for ~4x the
/// edge tuples (use MpcConfig::forInput(8 * m, gamma)).
DistSpannerResult buildDistributedBaswanaSen(MpcSimulator& sim, const Graph& g,
                                             std::uint32_t k, std::uint64_t seed);

/// Distributed Section-5 trade-off spanner *including contractions* (each
/// contraction's min-edge-per-super-node-pair dedup also runs through a
/// distributed sort + segmented min). Identical output to
/// buildTradeoffSpanner(g, {k, t, seed}) — super-node renumbering, draw
/// keys and every tie-break mirror the engine exactly.
DistSpannerResult buildDistributedTradeoff(MpcSimulator& sim, const Graph& g,
                                           std::uint32_t k, std::uint32_t t,
                                           std::uint64_t seed);

}  // namespace mpcspan
