// Constant-round MPC primitives on top of MpcSimulator, after [GSZ11] and
// the aggregation-tree subroutines of [DN19] cited in Section 6:
//
//   distSort        — sample sort: local sort, sample to coordinator,
//                     splitter broadcast down a B-ary tree, one all-to-all
//                     partition route, local merge. O(1/gamma) rounds.
//   treeBroadcast   — B-ary broadcast of a payload from machine 0.
//   prefixCounts    — exclusive prefix sums of per-machine counts
//                     (coordinator scan; 2 rounds).
//   segmentedMinSorted — per-key minimum over key-sorted data: local reduce,
//                     then a machine-0 boundary fix-up for keys that span
//                     machine boundaries. This is the "Find Minimum"
//                     subroutine the spanner algorithms charge per
//                     iteration (Lemma 6.1).
//
// All primitives move real words through engine rounds, so round counts and
// capacity violations are genuine, not estimated. Items must be trivially
// copyable.
//
// distSort and segmentedMinSorted execute as *registered kernels*
// (sort_kernels.hpp): the DistVector blocks they operate on live beside the
// machines — inside the resident shard workers when the engine is sharded —
// and every phase (local sort, sampling, splitter fan-out, the all-to-all
// route, boundary fix-ups) builds and validates its outboxes shard-side;
// the host only drives the phase schedule. The comparators therefore cross
// the process boundary *by type*: they must be stateless (capture-free)
// function objects, default-constructed inside each worker. In exchange,
// per-machine state persists worker-side across all phases and rounds, and
// the results are bit-identical to the in-process engine for every thread
// and shard count.
#pragma once

#include <algorithm>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/pack.hpp"
#include "mpc/simulator.hpp"
#include "mpc/sort_kernels.hpp"

namespace mpcspan {

namespace detail {

/// Finds or registers kernel K on the engine (now shared runtime machinery;
/// kept as an alias for the primitive kernels' historical spelling).
using runtime::ensureKernel;

}  // namespace detail

/// The per-machine item capacity of a DistVector block: machine m holds
/// items [m * cap, (m+1) * cap) of the logical sequence. One definition,
/// shared by the data-shipping constructor and every kernel that lays out
/// blocks worker-side for DistVector::adopt.
template <typename T>
std::size_t distVectorCapItems(const MpcSimulator& sim) {
  return std::max<std::size_t>(1,
                               sim.wordsPerMachine() / (2 * wordsPerItem<T>()));
}

/// A vector of T sharded in blocks across the simulator's machines. The
/// blocks are owned by the engine's BlockStore — host-side under a 1-shard
/// engine, inside the resident worker processes when sharded — and are
/// addressed by handle(); collectHostSide()/blocksHostSide() fetch copies
/// back for tests and host-side readout (free — never part of a simulated
/// algorithm).
template <typename T>
class DistVector {
 public:
  DistVector(MpcSimulator& sim, const std::vector<T>& data)
      : sim_(&sim), machines_(sim.numMachines()), size_(data.size()) {
    const std::size_t capItems = distVectorCapItems<T>(sim);
    // Block boundaries first (cheap, serial), then a parallel pack.
    std::vector<std::pair<std::size_t, std::size_t>> spans(machines_, {0, 0});
    std::size_t cursor = 0;
    for (std::size_t m = 0; m < machines_ && cursor < data.size(); ++m) {
      const std::size_t take = std::min(capItems, data.size() - cursor);
      spans[m] = {cursor, take};
      cursor += take;
    }
    if (cursor < data.size())
      throw CapacityError("DistVector: data does not fit in the cluster");
    std::vector<std::vector<Word>> blocks(machines_);
    sim.engine().parallelFor(machines_, [&](std::size_t m) {
      const auto [begin, take] = spans[m];
      blocks[m] = packItems(data.data() + begin, take);
    });
    handle_ = sim.engine().createBlocks(std::move(blocks));
  }

  /// Adopts blocks that a kernel already laid out worker-side (the growth
  /// iteration's filter/scatter chain builds its second-superstep input
  /// this way — the items never round-trip through the coordinator). The
  /// caller guarantees the blocks follow this class's layout: machine m
  /// holds items [m * cap, (m+1) * cap) of the logical sequence for the
  /// same cap the data-shipping constructor computes. Ownership of the
  /// handle transfers: the vector frees it on destruction.
  static DistVector adopt(MpcSimulator& sim, std::uint64_t handle,
                          std::size_t size) {
    return DistVector(sim, handle, size);
  }

  ~DistVector() {
    if (!sim_) return;
    try {
      sim_->engine().freeBlocks(handle_);
    } catch (...) {
      // A dead shard backend already surfaced loudly on the round that
      // killed it; freeing afterwards must not terminate.
    }
  }

  DistVector(const DistVector&) = delete;
  DistVector& operator=(const DistVector&) = delete;
  DistVector(DistVector&& o) noexcept
      : sim_(o.sim_), machines_(o.machines_), size_(o.size_),
        handle_(o.handle_) {
    o.sim_ = nullptr;
  }

  MpcSimulator& sim() const { return *sim_; }
  std::size_t numShards() const { return machines_; }
  std::size_t size() const { return size_; }
  /// BlockStore handle of the per-machine blocks (kernel args).
  std::uint64_t handle() const { return handle_; }

  /// Per-machine blocks, copied host-side (free; tests/diagnostics).
  std::vector<std::vector<T>> blocksHostSide() const {
    const std::vector<std::vector<Word>> raw =
        sim_->engine().readBlocks(handle_);
    std::vector<std::vector<T>> out(raw.size());
    for (std::size_t m = 0; m < raw.size(); ++m) out[m] = unpackItems<T>(raw[m]);
    return out;
  }

  /// Test/diagnostic helper: concatenates all blocks host-side. Charges no
  /// rounds — never part of a simulated algorithm.
  std::vector<T> collectHostSide() const {
    std::vector<T> out;
    out.reserve(size_);
    for (const std::vector<T>& block : blocksHostSide())
      out.insert(out.end(), block.begin(), block.end());
    return out;
  }

 private:
  DistVector(MpcSimulator& sim, std::uint64_t handle, std::size_t size)
      : sim_(&sim), machines_(sim.numMachines()), size_(size), handle_(handle) {}

  MpcSimulator* sim_;
  std::size_t machines_;
  std::size_t size_;
  std::uint64_t handle_ = 0;
};

/// Broadcasts `payload` from machine 0 to every machine along a B-ary tree
/// with the largest branching the capacity allows. Returns rounds used.
std::size_t treeBroadcastWords(MpcSimulator& sim, const std::vector<Word>& payload);

/// Exclusive prefix sums of per-machine counts via the coordinator
/// (2 rounds). Requires numMachines <= wordsPerMachine.
std::vector<std::size_t> prefixCounts(MpcSimulator& sim,
                                      const std::vector<std::size_t>& counts);

/// Distributed sample sort. cmp must be a strict weak order and a stateless
/// (capture-free) function object — it is default-constructed inside each
/// shard worker.
template <typename T, typename Cmp>
void distSort(DistVector<T>& dv, Cmp cmp) {
  static_assert(std::is_empty_v<Cmp>,
                "distSort: the comparator crosses into resident worker "
                "processes by type — use a stateless (capture-free) function "
                "object");
  (void)cmp;
  MpcSimulator& sim = dv.sim();
  runtime::RoundEngine& eng = sim.engine();
  const std::size_t p = eng.numMachines();
  const runtime::KernelId k = detail::ensureKernel<SortKernel<T, Cmp>>(eng);
  eng.stepLocal(k, {kSortPhaseSortLocal, dv.handle()});  // local, free
  if (p <= 1 || dv.size() <= 1) return;
  // One-level sample sort: every machine must hold the p-1 splitters.
  // MpcConfig::forInput guarantees this; hand-built configs must too.
  if ((p - 1) * wordsPerItem<T>() > sim.wordsPerMachine())
    throw CapacityError(
        "distSort: splitter set exceeds machine memory (need wordsPerMachine >= "
        "numMachines * item words; see MpcConfig::forInput)");

  // Round 1: evenly spaced local samples to machine 0.
  const std::size_t perMachineSamples = std::max<std::size_t>(
      1, std::min<std::size_t>(
             32, sim.wordsPerMachine() / (wordsPerItem<T>() * p)));
  eng.step(k, {kSortPhaseSample, dv.handle(), perMachineSamples});

  // Machine 0 picks the p-1 splitters and fans them down a B-ary tree, the
  // exact schedule of treeBroadcastWords: branch B from the capacity, the
  // holder prefix (1+B)x-ing every round. The driver replays the holder
  // arithmetic only to know how many fan rounds to issue.
  const std::size_t perCopy = (p - 1) * wordsPerItem<T>();
  const std::size_t branch =
      std::max<std::size_t>(1, sim.wordsPerMachine() / perCopy);
  eng.step(k, {kSortPhasePickAndFan, dv.handle(), branch});
  std::size_t holders = std::min(p, 1 + branch);
  while (holders < p) {
    eng.step(k, {kSortPhaseFanForward, dv.handle(), holders, branch});
    holders = std::min(p, holders + holders * branch);
  }

  // One all-to-all: machine j receives keys in (splitter[j-1], splitter[j]],
  // then merges locally (free).
  eng.step(k, {kSortPhaseRoute, dv.handle()});
  eng.stepLocal(k, {kSortPhaseMergeRoute, dv.handle()});
}

/// Per-key minimum over data already key-sorted across machines (machine
/// order = key order, e.g. right after distSort by key). keyOf maps an item
/// to a 64-bit key; better(a, b) returns true when a beats b; both must be
/// stateless (capture-free) function objects. Returns the reduced
/// key-sorted sequence (one item per key), collected host-side; the
/// simulated traffic is the cross-machine boundary fix-up.
template <typename T, typename KeyOf, typename Better>
std::vector<T> segmentedMinSorted(DistVector<T>& dv, KeyOf keyOf, Better better) {
  static_assert(std::is_empty_v<KeyOf> && std::is_empty_v<Better>,
                "segmentedMinSorted: keyOf/better cross into resident worker "
                "processes by type — use stateless (capture-free) function "
                "objects");
  (void)keyOf;
  (void)better;
  MpcSimulator& sim = dv.sim();
  runtime::RoundEngine& eng = sim.engine();
  const std::size_t p = eng.numMachines();
  const runtime::KernelId k =
      detail::ensureKernel<SegMinKernel<T, KeyOf, Better>>(eng);
  eng.stepLocal(k, {kSegPhaseReduce, dv.handle()});  // local, free

  if (p > 1) {
    // Round 1: first/last representative of every non-empty machine to
    // machine 0; round 2: machine 0 resolves the key runs spanning machine
    // boundaries and sends the fix-ups back; applying them is free.
    const std::size_t rec = 2 * wordsPerItem<T>() + 1;
    if (p * rec > sim.wordsPerMachine())
      throw CapacityError("segmentedMinSorted: boundary set exceeds capacity");
    eng.step(k, {kSegPhaseBoundary});
    eng.step(k, {kSegPhaseFix});
    eng.stepLocal(k, {kSegPhaseApply});
  }

  std::vector<T> result;
  result.reserve(dv.size());
  for (const std::vector<Word>& packed : eng.fetchKernel(k)) {
    const std::vector<T> items = unpackItems<T>(packed);
    result.insert(result.end(), items.begin(), items.end());
  }
  return result;
}

}  // namespace mpcspan
