// Constant-round MPC primitives on top of MpcSimulator, after [GSZ11] and
// the aggregation-tree subroutines of [DN19] cited in Section 6:
//
//   distSort        — sample sort: local sort, sample to coordinator,
//                     splitter broadcast down a B-ary tree, one all-to-all
//                     partition route, local merge. O(1/gamma) rounds.
//   treeBroadcast   — B-ary broadcast of a payload from machine 0.
//   prefixCounts    — exclusive prefix sums of per-machine counts
//                     (coordinator scan; 2 rounds).
//   segmentedMinSorted — per-key minimum over key-sorted data: local reduce,
//                     then a coordinator boundary fix-up for keys that span
//                     machine boundaries. This is the "Find Minimum"
//                     subroutine the spanner algorithms charge per
//                     iteration (Lemma 6.1).
//
// All primitives move real words through MpcSimulator::communicate, so round
// counts and capacity violations are genuine, not estimated. Items must be
// trivially copyable.
//
// Local (free) phases — per-shard sorting, packing, reducing — run on the
// simulator's round-engine thread pool: each machine's shard is an
// independent loop index, so the result is bit-identical for every thread
// count while the hot simulation loops scale with cores.
#pragma once

#include <algorithm>
#include <cstring>
#include <vector>

#include "mpc/simulator.hpp"

namespace mpcspan {

template <typename T>
constexpr std::size_t wordsPerItem() {
  static_assert(std::is_trivially_copyable_v<T>);
  return (sizeof(T) + sizeof(Word) - 1) / sizeof(Word);
}

template <typename T>
std::vector<Word> packItems(const T* items, std::size_t count) {
  std::vector<Word> words(count * wordsPerItem<T>(), 0);
  for (std::size_t i = 0; i < count; ++i)
    std::memcpy(words.data() + i * wordsPerItem<T>(), items + i, sizeof(T));
  return words;
}

template <typename T>
std::vector<T> unpackItems(const std::vector<Word>& words) {
  const std::size_t count = words.size() / wordsPerItem<T>();
  std::vector<T> items(count);
  for (std::size_t i = 0; i < count; ++i)
    std::memcpy(&items[i], words.data() + i * wordsPerItem<T>(), sizeof(T));
  return items;
}

/// A vector of T sharded in blocks across the simulator's machines.
template <typename T>
class DistVector {
 public:
  DistVector(MpcSimulator& sim, const std::vector<T>& data)
      : sim_(&sim), shards_(sim.numMachines()) {
    const std::size_t capItems =
        std::max<std::size_t>(1, sim.wordsPerMachine() / (2 * wordsPerItem<T>()));
    // Block boundaries first (cheap, serial), then a parallel fill.
    std::vector<std::pair<std::size_t, std::size_t>> spans(shards_.size(), {0, 0});
    std::size_t cursor = 0;
    for (std::size_t m = 0; m < shards_.size() && cursor < data.size(); ++m) {
      const std::size_t take = std::min(capItems, data.size() - cursor);
      spans[m] = {cursor, take};
      cursor += take;
    }
    if (cursor < data.size())
      throw CapacityError("DistVector: data does not fit in the cluster");
    sim.engine().parallelFor(shards_.size(), [&](std::size_t m) {
      const auto [begin, take] = spans[m];
      shards_[m].assign(data.begin() + static_cast<std::ptrdiff_t>(begin),
                        data.begin() + static_cast<std::ptrdiff_t>(begin + take));
    });
  }

  MpcSimulator& sim() const { return *sim_; }
  std::size_t numShards() const { return shards_.size(); }
  std::vector<std::vector<T>>& shards() { return shards_; }
  const std::vector<std::vector<T>>& shards() const { return shards_; }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) total += s.size();
    return total;
  }

  /// Test/diagnostic helper: concatenates all shards host-side. Charges no
  /// rounds — never part of a simulated algorithm.
  std::vector<T> collectHostSide() const {
    std::vector<T> out;
    out.reserve(size());
    for (const auto& s : shards_) out.insert(out.end(), s.begin(), s.end());
    return out;
  }

 private:
  MpcSimulator* sim_;
  std::vector<std::vector<T>> shards_;
};

/// Broadcasts `payload` from machine 0 to every machine along a B-ary tree
/// with the largest branching the capacity allows. Returns rounds used.
std::size_t treeBroadcastWords(MpcSimulator& sim, const std::vector<Word>& payload);

/// Exclusive prefix sums of per-machine counts via the coordinator
/// (2 rounds). Requires numMachines <= wordsPerMachine.
std::vector<std::size_t> prefixCounts(MpcSimulator& sim,
                                      const std::vector<std::size_t>& counts);

/// Distributed sample sort. cmp must be a strict weak order.
template <typename T, typename Cmp>
void distSort(DistVector<T>& dv, Cmp cmp) {
  MpcSimulator& sim = dv.sim();
  runtime::RoundEngine& eng = sim.engine();
  const std::size_t p = dv.numShards();
  auto& shards = dv.shards();
  eng.parallelFor(p, [&](std::size_t m) {  // local, free
    std::sort(shards[m].begin(), shards[m].end(), cmp);
  });
  if (p <= 1 || dv.size() <= 1) return;
  // One-level sample sort: every machine must hold the p-1 splitters.
  // MpcConfig::forInput guarantees this; hand-built configs must too.
  if ((p - 1) * wordsPerItem<T>() > sim.wordsPerMachine())
    throw CapacityError(
        "distSort: splitter set exceeds machine memory (need wordsPerMachine >= "
        "numMachines * item words; see MpcConfig::forInput)");

  // Round 1: evenly spaced local samples to the coordinator.
  const std::size_t perMachineSamples = std::max<std::size_t>(
      1, std::min<std::size_t>(
             32, sim.wordsPerMachine() / (wordsPerItem<T>() * p)));
  std::vector<std::vector<MpcSimulator::Message>> out(p);
  eng.parallelFor(p, [&](std::size_t m) {
    const auto& s = shards[m];
    if (s.empty()) return;
    std::vector<T> samples;
    const std::size_t take = std::min(perMachineSamples, s.size());
    // Uniform random positions, seeded per machine: deterministic per-shard
    // quantile positions would pool into only `take` distinct quantile
    // levels across machines — far too coarse when numMachines > take —
    // and including shard extremes biases the splitters.
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ (m * 0xbf58476d1ce4e5b9ULL);
    for (std::size_t i = 0; i < take; ++i) {
      h = h * 6364136223846793005ULL + 1442695040888963407ULL;
      samples.push_back(s[(h >> 33) % s.size()]);
    }
    std::sort(samples.begin(), samples.end(), cmp);
    out[m].push_back({0, packItems(samples.data(), samples.size())});
  });
  auto inbox = sim.communicate(std::move(out));
  std::vector<T> samples = unpackItems<T>(inbox[0]);
  std::sort(samples.begin(), samples.end(), cmp);

  // Coordinator picks p-1 splitters, broadcasts them down the tree.
  std::vector<T> splitters;
  for (std::size_t i = 1; i < p; ++i) {
    if (samples.empty()) break;
    splitters.push_back(samples[std::min(samples.size() - 1, i * samples.size() / p)]);
  }
  treeBroadcastWords(sim, packItems(splitters.data(), splitters.size()));

  // One all-to-all: shard j receives keys in (splitter[j-1], splitter[j]].
  std::vector<std::vector<MpcSimulator::Message>> route(p);
  eng.parallelFor(p, [&](std::size_t m) {
    const auto& s = shards[m];
    std::size_t begin = 0;
    for (std::size_t j = 0; j <= splitters.size(); ++j) {
      std::size_t end;
      if (j == splitters.size()) {
        end = s.size();
      } else {
        end = static_cast<std::size_t>(
            std::upper_bound(s.begin() + static_cast<std::ptrdiff_t>(begin), s.end(),
                             splitters[j], cmp) -
            s.begin());
      }
      if (end > begin)
        route[m].push_back({j, packItems(s.data() + begin, end - begin)});
      begin = end;
    }
  });
  inbox = sim.communicate(std::move(route));
  eng.parallelFor(p, [&](std::size_t m) {
    shards[m] = unpackItems<T>(inbox[m]);
    std::sort(shards[m].begin(), shards[m].end(), cmp);  // local merge
  });
}

/// Per-key minimum over data already key-sorted across machines (machine
/// order = key order, e.g. right after distSort by key). keyOf maps an item
/// to a 64-bit key; better(a, b) returns true when a beats b. Returns the
/// reduced key-sorted sequence (one item per key), collected host-side;
/// the simulated traffic is the cross-machine boundary fix-up.
template <typename T, typename KeyOf, typename Better>
std::vector<T> segmentedMinSorted(DistVector<T>& dv, KeyOf keyOf, Better better) {
  MpcSimulator& sim = dv.sim();
  runtime::RoundEngine& eng = sim.engine();
  const std::size_t p = dv.numShards();
  auto& shards = dv.shards();

  // Local reduce (free): one representative per key per machine.
  std::vector<std::vector<T>> reduced(p);
  eng.parallelFor(p, [&](std::size_t m) {
    for (const T& item : shards[m]) {
      if (!reduced[m].empty() && keyOf(reduced[m].back()) == keyOf(item)) {
        if (better(item, reduced[m].back())) reduced[m].back() = item;
      } else {
        reduced[m].push_back(item);
      }
    }
  });

  if (p > 1) {
    // Round 1: first/last representative of every non-empty machine to the
    // coordinator.
    const std::size_t rec = 2 * wordsPerItem<T>() + 1;
    if (p * rec > sim.wordsPerMachine())
      throw CapacityError("segmentedMinSorted: boundary set exceeds capacity");
    std::vector<std::vector<MpcSimulator::Message>> out(p);
    for (std::size_t m = 0; m < p; ++m) {
      if (reduced[m].empty()) continue;
      std::vector<T> pair{reduced[m].front(), reduced[m].back()};
      std::vector<Word> payload = packItems(pair.data(), pair.size());
      payload.push_back(m);
      out[m].push_back({0, std::move(payload)});
    }
    auto inbox = sim.communicate(std::move(out));

    struct Boundary {
      std::size_t machine;
      T first, last;
    };
    std::vector<Boundary> bounds;
    const std::vector<Word>& raw = inbox[0];
    for (std::size_t off = 0; off + rec <= raw.size(); off += rec) {
      Boundary b;
      std::memcpy(&b.first, raw.data() + off, sizeof(T));
      std::memcpy(&b.last, raw.data() + off + wordsPerItem<T>(), sizeof(T));
      b.machine = static_cast<std::size_t>(raw[off + rec - 1]);
      bounds.push_back(b);
    }
    std::sort(bounds.begin(), bounds.end(),
              [](const Boundary& a, const Boundary& b) { return a.machine < b.machine; });

    // Resolve key runs that span machine boundaries. Because the data is
    // key-sorted and the local reduce left one copy per key per machine, a
    // run over machines m0..mEnd consists of last[m0], first[m0+1], ...,
    // first[mEnd] (fully-covered middle machines have first == last).
    struct FixEntry {
      std::uint64_t key;
      T winner;
      bool keepHere;
    };
    std::vector<std::vector<FixEntry>> fixes(p);
    std::size_t i = 0;
    while (i + 1 < bounds.size()) {
      const std::uint64_t key = keyOf(bounds[i].last);
      if (keyOf(bounds[i + 1].first) != key) {
        ++i;
        continue;
      }
      T winner = bounds[i].last;
      std::vector<std::size_t> members{i};
      std::size_t j = i + 1;
      while (j < bounds.size() && keyOf(bounds[j].first) == key) {
        members.push_back(j);
        if (better(bounds[j].first, winner)) winner = bounds[j].first;
        if (keyOf(bounds[j].last) != key) break;  // run ends inside machine j
        ++j;
      }
      for (std::size_t t : members)
        fixes[bounds[t].machine].push_back({key, winner, t == i});
      i = members.back() == i ? i + 1 : members.back();
    }

    // Round 2: coordinator sends fix-ups back.
    std::vector<std::vector<MpcSimulator::Message>> back(p);
    for (std::size_t m = 0; m < p; ++m) {
      if (fixes[m].empty()) continue;
      std::vector<Word> payload;
      for (const FixEntry& f : fixes[m]) {
        payload.push_back(f.key);
        payload.push_back(f.keepHere ? 1 : 0);
        const std::vector<Word> w = packItems(&f.winner, 1);
        payload.insert(payload.end(), w.begin(), w.end());
      }
      back[0].push_back({m, std::move(payload)});
    }
    auto inbox2 = sim.communicate(std::move(back));

    // Apply fixes (local compute): the single local copy of the key is
    // replaced by the winner on exactly one machine and dropped elsewhere.
    eng.parallelFor(p, [&](std::size_t m) {
      const std::vector<Word>& fw = inbox2[m];
      const std::size_t frec = 2 + wordsPerItem<T>();
      for (std::size_t off = 0; off + frec <= fw.size(); off += frec) {
        const std::uint64_t key = fw[off];
        const bool keep = fw[off + 1] != 0;
        T winner;
        std::memcpy(&winner, fw.data() + off + 2, sizeof(T));
        auto& r = reduced[m];
        for (std::size_t idx = 0; idx < r.size(); ++idx)
          if (keyOf(r[idx]) == key) {
            if (keep)
              r[idx] = winner;
            else
              r.erase(r.begin() + static_cast<std::ptrdiff_t>(idx));
            break;
          }
      }
    });
  }

  std::vector<T> result;
  for (std::size_t m = 0; m < p; ++m)
    result.insert(result.end(), reduced[m].begin(), reduced[m].end());
  return result;
}

}  // namespace mpcspan
