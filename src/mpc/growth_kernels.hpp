// Registered kernels behind the growth iteration's superstep hand-off
// (mpc/dist_iteration.cc).
//
// After superstep 1 (distSort + segmentedMinSorted over the candidate
// tuples), the legacy driver collected every group minimum host-side,
// filtered it by the sampled clusters, and re-shipped the survivors through
// a fresh DistVector — a full coordinator round trip per iteration that was
// free in the simulated ledger (host-side data management) but real wall
// clock under the sharded backend. FilterScatterKernel replaces the round
// trip: the reduced sequence stays worker-side (SegMinKernel's
// kSegPhaseEmit block), each machine filters its slice against broadcast
// sampled bits, and one free data-placement shuffle
// (RoundEngine::stepShuffle) re-lays the survivors out in the exact
// DistVector layout (distVectorCapItems) — bit-identical blocks, rounds,
// and ledger to the legacy collect/re-create, with the items moving
// worker-to-worker at most once.
//
// The filter predicate crosses into the resident workers by type, like the
// sort comparators: a stateless function object tested against broadcast
// bit args (runtime::packArgBits).
#pragma once

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <string>
#include <typeinfo>
#include <vector>

#include "runtime/pack.hpp"
#include "runtime/kernel.hpp"

namespace mpcspan {

/// Phase tags (args[0]) of FilterScatterKernel. Argument layouts:
///   count  (fetch):   {phase, srcHandle, numBits, bits...}
///   scatter (shuffle round): {phase, srcHandle, numBits, capItems,
///                             offsets[numMachines]..., bits...}
///   build  (local):   {phase, dstHandle}
constexpr Word kFilterPhaseCount = 1;
constexpr Word kFilterPhaseScatter = 2;
constexpr Word kFilterPhaseBuild = 3;

/// Filters a reduced block by Pred against broadcast bits, then scatters
/// the survivors into DistVector-layout destination blocks. Pred must be a
/// stateless (capture-free) function object with
///   bool operator()(const T&, const Word* bits, std::size_t numBits) const.
template <typename T, typename Pred>
class FilterScatterKernel final : public runtime::StepKernel {
 public:
  static std::string kernelName() {
    return std::string("mpcspan.filterscatter.") +
           typeid(FilterScatterKernel).name();
  }

  std::vector<runtime::Message> step(const runtime::KernelCtx& ctx) override {
    if (ctx.args.at(0) != kFilterPhaseScatter)
      throw std::invalid_argument("FilterScatterKernel: unknown step phase");
    // args: {phase, src, numBits, cap, offsets[p], bits...}.
    const std::size_t p = ctx.numMachines;
    const std::size_t cap = ctx.args.at(3);
    if (ctx.args.size() < 4 + p)
      throw std::invalid_argument("FilterScatterKernel: short scatter args");
    const std::vector<T>& keep = filtered(ctx, /*bitsAt=*/4 + p);
    const std::size_t base = ctx.args[4 + ctx.machine];
    // Global index base + j lands on machine (base + j) / cap; consecutive
    // indices share destinations, so ship each run as one packed message
    // (ascending destination = ascending global index, which is what makes
    // the build phase's inbox concatenation reproduce the DistVector
    // layout).
    std::vector<runtime::Message> out;
    std::size_t j = 0;
    while (j < keep.size()) {
      const std::size_t dst = (base + j) / cap;
      const std::size_t runEnd = std::min(keep.size(), (dst + 1) * cap - base);
      out.push_back({dst, packItems(keep.data() + j, runEnd - j)});
      j = runEnd;
    }
    return out;
  }

  void local(const runtime::KernelCtx& ctx) override {
    if (ctx.args.at(0) != kFilterPhaseBuild)
      throw std::invalid_argument("FilterScatterKernel: unknown local phase");
    // The scatter's deliveries arrive in (src, send position) order =
    // ascending global index; concatenation is the machine's block.
    std::size_t total = 0;
    for (const runtime::Delivery& d : ctx.inbox) total += d.payload.size();
    runtime::WordBuf& block = ctx.store.block(ctx.args.at(1), ctx.machine);
    block.clear();
    block.reserve(total);
    for (const runtime::Delivery& d : ctx.inbox)
      block.append(d.payload.data(), d.payload.size());
  }

  std::vector<Word> fetch(const runtime::KernelCtx& ctx) override {
    if (ctx.args.at(0) != kFilterPhaseCount)
      throw std::invalid_argument("FilterScatterKernel: unknown fetch phase");
    return {filtered(ctx, /*bitsAt=*/3).size()};
  }

 private:
  /// The count fetch and the scatter step filter the same block against the
  /// same bits back to back on every iteration, so the result is cached per
  /// machine under an exact (handle, bits) key — comparing the key is far
  /// cheaper than re-unpacking the block. Callers must not mutate a block
  /// between phases that reuse its handle with identical bits (the growth
  /// driver never does: each iteration emits into a fresh handle).
  const std::vector<T>& filtered(const runtime::KernelCtx& ctx,
                                 std::size_t bitsAt) {
    const std::size_t numBits = ctx.args.at(2);
    const std::size_t bitWords = (numBits + 63) / 64;
    if (ctx.args.size() < bitsAt + bitWords)
      throw std::invalid_argument("FilterScatterKernel: short bit args");
    const Word* bits = ctx.args.data() + bitsAt;
    std::call_once(sized_, [&] { cache_.resize(ctx.numMachines); });
    MachineCache& cache = cache_[ctx.machine];
    std::vector<Word> key;
    key.reserve(2 + bitWords);
    key.push_back(ctx.args.at(1));
    key.push_back(numBits);
    key.insert(key.end(), bits, bits + bitWords);
    if (key == cache.key) return cache.kept;
    const std::vector<T> items =
        unpackItems<T>(ctx.store.block(ctx.args.at(1), ctx.machine));
    cache.kept.clear();
    cache.kept.reserve(items.size());
    for (const T& item : items)
      if (pred_(item, bits, numBits)) cache.kept.push_back(item);
    cache.key = std::move(key);
    return cache.kept;
  }

  struct MachineCache {
    std::vector<Word> key;  // {handle, numBits, bits...}
    std::vector<T> kept;
  };

  Pred pred_{};
  std::once_flag sized_;
  std::vector<MachineCache> cache_;  // per machine
};

}  // namespace mpcspan
