#include "mpc/dist_spanner.hpp"

#include <cmath>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include <algorithm>

#include "mpc/dist_iteration.hpp"
#include "mpc/primitives.hpp"
#include "spanner/engine.hpp"

namespace mpcspan {

namespace {

std::uint64_t pairKey(VertexId v, VertexId cluster) {
  return (static_cast<std::uint64_t>(v) << 32) | cluster;
}

/// Super-edge tuple of the contraction dedup, with its stateless orderings
/// (they cross into the shard workers by type — see mpc/primitives.hpp).
struct PairTuple {
  std::uint64_t key;
  double w;
  std::uint32_t id;
};
struct PairBetter {
  bool operator()(const PairTuple& a, const PairTuple& b) const {
    return a.w < b.w || (a.w == b.w && a.id < b.id);
  }
};
struct PairByKey {
  // Primary order is packed word 0 (PairTuple::key), ascending — lets the
  // sort kernels run flat key passes (detail::PackedKeyWord).
  static constexpr std::size_t kPackedKeyWord = 0;
  bool operator()(const PairTuple& a, const PairTuple& b) const {
    if (a.key != b.key) return a.key < b.key;
    return PairBetter{}(a, b);
  }
};
struct PairKey {
  std::uint64_t operator()(const PairTuple& t) const { return t.key; }
};

/// Shared driver state for the distributed spanner constructions.
struct DistState {
  std::vector<VertexId> superOf;    // original vertex -> super-node
  std::vector<VertexId> clusterOf;  // super-node -> cluster root
  std::size_t nSuper = 0;
  std::vector<char> alive;          // per edge id
  std::vector<char> inSpanner;      // per edge id
};

/// One cluster-growth iteration (Steps B1-B6), with the find-minimum work
/// done by distIterationKernel on `sim`. Mirrors ClusterEngine exactly.
void runDistIteration(MpcSimulator& sim, const Graph& g, DistState& st,
                      double p, std::uint64_t seed, std::uint64_t drawKey) {
  std::vector<char> rootActive(st.nSuper, 0);
  for (VertexId s = 0; s < st.nSuper; ++s)
    if (st.clusterOf[s] != kNoVertex) rootActive[st.clusterOf[s]] = 1;
  const std::vector<char> sampled =
      HashCoinPolicy::draw(rootActive, std::clamp(p, 0.0, 1.0), seed, drawKey);

  const DistIterationResult res =
      distIterationKernel(sim, g, st.superOf, st.clusterOf, sampled, &st.alive);

  std::unordered_map<VertexId, ClosestSampled> joins;
  joins.reserve(res.joins.size());
  for (const ClosestSampled& cs : res.joins) joins.emplace(cs.v, cs);

  std::unordered_set<std::uint64_t> discard;
  discard.reserve(res.groupMins.size());
  for (const GroupMinEdge& gm : res.groupMins) {
    const auto it = joins.find(gm.v);
    const bool addAndDiscard = it == joins.end() ||
                               gm.cluster == it->second.cluster ||
                               gm.w < it->second.w;
    if (addAndDiscard) {
      st.inSpanner[gm.id] = 1;
      discard.insert(pairKey(gm.v, gm.cluster));
    }
  }

  auto processing = [&](VertexId s) {
    return st.clusterOf[s] != kNoVertex && !sampled[st.clusterOf[s]];
  };
  // Parallel sweep: each edge id writes only its own alive flag, and the
  // discard set is read-only here, so the result is schedule-independent.
  sim.engine().pool().parallelForChunks(
      g.numEdges(), 8192, [&](std::size_t begin, std::size_t end) {
        for (EdgeId id = static_cast<EdgeId>(begin); id < end; ++id) {
          if (!st.alive[id]) continue;
          const Edge& e = g.edge(id);
          const VertexId su = st.superOf[e.u];
          const VertexId sv = st.superOf[e.v];
          const bool deadU =
              processing(su) && discard.count(pairKey(su, st.clusterOf[sv])) > 0;
          const bool deadV =
              processing(sv) && discard.count(pairKey(sv, st.clusterOf[su])) > 0;
          if (deadU || deadV) st.alive[id] = 0;
        }
      });

  std::vector<VertexId> next = st.clusterOf;
  for (VertexId s = 0; s < st.nSuper; ++s) {
    if (!processing(s)) continue;
    const auto it = joins.find(s);
    next[s] = it != joins.end() ? it->second.cluster : kNoVertex;
  }
  st.clusterOf = std::move(next);

  // Step B6.
  sim.engine().pool().parallelForChunks(
      g.numEdges(), 8192, [&](std::size_t begin, std::size_t end) {
        for (EdgeId id = static_cast<EdgeId>(begin); id < end; ++id) {
          if (!st.alive[id]) continue;
          const Edge& e = g.edge(id);
          const VertexId su = st.superOf[e.u];
          const VertexId sv = st.superOf[e.v];
          if (st.clusterOf[su] == st.clusterOf[sv]) st.alive[id] = 0;
        }
      });
}

/// Step C: contract the clustering, deduplicating parallel super-edges via
/// a distributed sort + segmented min over (pair, weight, id) tuples.
void runDistContraction(MpcSimulator& sim, const Graph& g, DistState& st) {
  // Renumber roots exactly as ClusterEngine::contract does.
  std::vector<VertexId> newId(st.nSuper, kNoVertex);
  std::size_t n2 = 0;
  for (VertexId s = 0; s < st.nSuper; ++s)
    if (st.clusterOf[s] == s) newId[s] = static_cast<VertexId>(n2++);
  for (VertexId v = 0; v < st.superOf.size(); ++v) {
    const VertexId s = st.superOf[v];
    if (s == kNoVertex) continue;
    const VertexId c = st.clusterOf[s];
    st.superOf[v] = c == kNoVertex ? kNoVertex : newId[c];
  }

  std::vector<PairTuple> tuples;
  for (EdgeId id = 0; id < g.numEdges(); ++id) {
    if (!st.alive[id]) continue;
    const Edge& e = g.edge(id);
    VertexId a = st.superOf[e.u];
    VertexId b = st.superOf[e.v];
    if (a > b) std::swap(a, b);
    tuples.push_back({(static_cast<std::uint64_t>(a) << 32) | b, e.w, id});
  }
  DistVector<PairTuple> dv(sim, tuples);
  distSort(dv, PairByKey{});
  const std::vector<PairTuple> winners =
      segmentedMinSorted(dv, PairKey{}, PairBetter{});

  std::fill(st.alive.begin(), st.alive.end(), 0);
  for (const PairTuple& t : winners) st.alive[t.id] = 1;

  st.nSuper = n2;
  st.clusterOf.resize(st.nSuper);
  std::iota(st.clusterOf.begin(), st.clusterOf.end(), 0);
}

/// Phase 2 via the kernel: group alive edges by (original endpoint,
/// opposite cluster) with nothing sampled, keep every group minimum.
void runDistPhase2(MpcSimulator& sim, const Graph& g, DistState& st) {
  const std::size_t n = g.numVertices();
  std::vector<VertexId> identityMap(n);
  std::iota(identityMap.begin(), identityMap.end(), 0);
  std::vector<VertexId> clusterPerVertex(n, kNoVertex);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId s = st.superOf[v];
    if (s != kNoVertex) clusterPerVertex[v] = st.clusterOf[s];
  }
  const DistIterationResult finalPass = distIterationKernel(
      sim, g, identityMap, clusterPerVertex, std::vector<char>(n, 0), &st.alive);
  for (const GroupMinEdge& gm : finalPass.groupMins) st.inSpanner[gm.id] = 1;
}

DistState makeState(const Graph& g) {
  DistState st;
  const std::size_t n = g.numVertices();
  st.superOf.resize(n);
  std::iota(st.superOf.begin(), st.superOf.end(), 0);
  st.clusterOf.resize(n);
  std::iota(st.clusterOf.begin(), st.clusterOf.end(), 0);
  st.nSuper = n;
  st.alive.assign(g.numEdges(), 1);
  st.inSpanner.assign(g.numEdges(), 0);
  return st;
}

}  // namespace

DistSpannerResult buildDistributedBaswanaSen(MpcSimulator& sim, const Graph& g,
                                             std::uint32_t k, std::uint64_t seed) {
  DistSpannerResult out;
  const std::size_t startRounds = sim.rounds();
  const std::size_t n = g.numVertices();
  if (k <= 1 || n == 0) {
    out.edges.resize(g.numEdges());
    std::iota(out.edges.begin(), out.edges.end(), 0);
    return out;
  }

  const double p = std::pow(static_cast<double>(std::max<std::size_t>(n, 2)),
                            -1.0 / static_cast<double>(k));
  DistState st = makeState(g);
  for (std::uint32_t j = 0; j + 1 < k; ++j) {
    // Same draw key / seed as the ClusterEngine's single-epoch schedule,
    // so the sampled sets coincide exactly.
    runDistIteration(sim, g, st, p, seed, /*drawKey=*/j);
    ++out.iterations;
  }
  runDistPhase2(sim, g, st);

  for (EdgeId id = 0; id < g.numEdges(); ++id)
    if (st.inSpanner[id]) out.edges.push_back(id);
  out.simulatorRounds = sim.rounds() - startRounds;
  out.wordsMoved = sim.totalWordsSent();
  return out;
}

DistSpannerResult buildDistributedTradeoff(MpcSimulator& sim, const Graph& g,
                                           std::uint32_t k, std::uint32_t t,
                                           std::uint64_t seed) {
  DistSpannerResult out;
  const std::size_t startRounds = sim.rounds();
  if (k <= 1 || g.numVertices() == 0) {
    out.edges.resize(g.numEdges());
    std::iota(out.edges.begin(), out.edges.end(), 0);
    return out;
  }
  if (t == 0)
    t = static_cast<std::uint32_t>(
        std::max(1.0, std::ceil(std::log2(static_cast<double>(k)))));

  DistState st = makeState(g);
  const std::vector<EpochSpec> schedule = tradeoffSchedule(g.numVertices(), k, t);
  for (std::size_t epochIdx = 0; epochIdx < schedule.size(); ++epochIdx) {
    const EpochSpec& spec = schedule[epochIdx];
    std::size_t active = 0;
    for (VertexId s = 0; s < st.nSuper; ++s)
      if (st.clusterOf[s] != kNoVertex) ++active;
    const double p = spec.prob(active);
    for (std::uint32_t j = 0; j < spec.iterations; ++j) {
      const std::uint64_t drawKey = (static_cast<std::uint64_t>(epochIdx) << 32) | j;
      runDistIteration(sim, g, st, p, seed, drawKey);
      ++out.iterations;
    }
    if (spec.contractAfter) runDistContraction(sim, g, st);
  }
  runDistPhase2(sim, g, st);

  for (EdgeId id = 0; id < g.numEdges(); ++id)
    if (st.inSpanner[id]) out.edges.push_back(id);
  out.simulatorRounds = sim.rounds() - startRounds;
  out.wordsMoved = sim.totalWordsSent();
  return out;
}

}  // namespace mpcspan
