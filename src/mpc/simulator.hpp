// Word-accurate MPC machine simulator.
//
// Models the [KSV10/GSZ11/BKS13] machine cluster: `numMachines` machines,
// each with `wordsPerMachine` words of local memory; computation proceeds in
// synchronous rounds, and in one round no machine may send or receive more
// words than its memory. The simulator routes messages, enforces those
// limits (throwing CapacityError on violation — a violation means the
// *algorithm* breaks the model, so it must be loud), and counts rounds and
// traffic. The Goodrich-style primitives in primitives.hpp run on top of it.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace mpcspan {

using Word = std::uint64_t;

struct MpcConfig {
  std::size_t numMachines = 0;
  std::size_t wordsPerMachine = 0;

  /// Machines for input size N with local memory S=N^gamma: S words each,
  /// ceil(N/S) machines (plus slack factor for intermediate data).
  static MpcConfig forInput(std::size_t inputWords, double gamma, double slack = 2.0);
};

class CapacityError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class MpcSimulator {
 public:
  explicit MpcSimulator(MpcConfig cfg);

  std::size_t numMachines() const { return cfg_.numMachines; }
  std::size_t wordsPerMachine() const { return cfg_.wordsPerMachine; }

  std::size_t rounds() const { return rounds_; }
  std::size_t totalWordsSent() const { return wordsSent_; }
  std::size_t maxRoundWords() const { return maxRoundWords_; }

  /// A message from one machine to another within a single round.
  struct Message {
    std::size_t dst;
    std::vector<Word> payload;
  };

  /// Executes one synchronous communication round. `outboxes[i]` holds the
  /// messages machine i sends. Returns the inbox of each machine (payloads
  /// concatenated in sender order). Enforces per-machine send and receive
  /// limits of wordsPerMachine.
  std::vector<std::vector<Word>> communicate(
      std::vector<std::vector<Message>> outboxes);

  /// Charges `n` rounds without moving data (used when a primitive's round
  /// structure is simulated at a coarser granularity, e.g. local sorting
  /// phases that occupy a round boundary).
  void chargeRounds(std::size_t n) { rounds_ += n; }

 private:
  MpcConfig cfg_;
  std::size_t rounds_ = 0;
  std::size_t wordsSent_ = 0;
  std::size_t maxRoundWords_ = 0;
};

}  // namespace mpcspan
