// Word-accurate MPC machine simulator — a thin facade over
// runtime::RoundEngine with an MpcTopology.
//
// Models the [KSV10/GSZ11/BKS13] machine cluster: `numMachines` machines,
// each with `wordsPerMachine` words of local memory; computation proceeds in
// synchronous rounds, and in one round no machine may send or receive more
// words than its memory. The engine routes messages, enforces those limits
// (throwing CapacityError on violation — a violation means the *algorithm*
// breaks the model, so it must be loud), counts rounds and traffic, and
// steps machines in parallel on a work-stealing thread pool with
// deterministic delivery. The Goodrich-style primitives in primitives.hpp
// run on top of it.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/round_engine.hpp"

namespace mpcspan {

struct MpcConfig {
  std::size_t numMachines = 0;
  std::size_t wordsPerMachine = 0;

  /// Machines for input size N with local memory S=N^gamma: S words each,
  /// ceil(N/S) machines (plus slack factor for intermediate data).
  static MpcConfig forInput(std::size_t inputWords, double gamma, double slack = 2.0);
};

class MpcSimulator {
 public:
  /// `threads` is forwarded to the round engine's stepping pool, `shards`
  /// to its multi-process backend, `resident` selects that backend's
  /// worker lifetime (1 resident, 0 legacy fork-per-round, -1 the
  /// MPCSPAN_RESIDENT default; see runtime::EngineConfig), and `transport`
  /// routes its cross-shard sections (kDefault resolves via
  /// MPCSPAN_TCP_EXCHANGE / MPCSPAN_SHM_EXCHANGE / MPCSPAN_PEER_EXCHANGE).
  /// `pipeline` selects the pipelined barrier of resident mesh rounds
  /// (1 on, 0 strict, -1 the MPCSPAN_PIPELINE default). Results are
  /// bit-identical for every thread, shard, backend, transport, and
  /// pipeline choice.
  explicit MpcSimulator(MpcConfig cfg, std::size_t threads = 0,
                        std::size_t shards = 0, int resident = -1,
                        runtime::Transport transport =
                            runtime::Transport::kDefault,
                        int pipeline = -1);

  std::size_t numMachines() const { return cfg_.numMachines; }
  std::size_t numShards() const { return engine_.numShards(); }
  /// True when the rounds run on resident shard worker processes (the
  /// default for shards > 1; MPCSPAN_RESIDENT=0 selects the legacy
  /// fork-per-round dispatch).
  bool residentShards() const { return engine_.residentShards(); }
  /// True when resident kernel rounds route cross-shard sections over the
  /// worker-to-worker mesh (MPCSPAN_PEER_EXCHANGE=0 selects the
  /// coordinator-relay reference).
  bool peerMeshShards() const { return engine_.peerMeshShards(); }
  /// True when the mesh sections move through shared-memory rings (the
  /// default for resident meshes; MPCSPAN_SHM_EXCHANGE=0 selects the
  /// socket-mesh reference).
  bool shmRingShards() const { return engine_.shmRingShards(); }
  /// True when the mesh is TCP, formed by rendezvous (MPCSPAN_TCP_EXCHANGE=1
  /// or an explicit kTcp; cross-machine capable).
  bool tcpMeshShards() const { return engine_.tcpMeshShards(); }
  /// True when resident mesh rounds run the pipelined barrier — overlap of
  /// one round's cross-shard delivery with the next round's local phase
  /// (MPCSPAN_PIPELINE=0 or pipeline=0 selects the strict reference).
  bool pipelinedShards() const { return engine_.pipelinedShards(); }
  std::size_t wordsPerMachine() const { return cfg_.wordsPerMachine; }

  std::size_t rounds() const { return engine_.rounds(); }
  std::size_t totalWordsSent() const { return engine_.totalWordsSent(); }
  std::size_t maxRoundWords() const { return engine_.maxRoundWords(); }

  /// A message from one machine to another within a single round.
  using Message = runtime::Message;

  /// Executes one synchronous communication round. `outboxes[i]` holds the
  /// messages machine i sends. Returns the inbox of each machine (payloads
  /// concatenated in sender order — deterministic for every thread count).
  /// Enforces per-machine send and receive limits of wordsPerMachine.
  std::vector<std::vector<Word>> communicate(
      std::vector<std::vector<Message>> outboxes);

  /// Charges `n` rounds without moving data (used when a primitive's round
  /// structure is simulated at a coarser granularity, e.g. local sorting
  /// phases that occupy a round boundary).
  void chargeRounds(std::size_t n) { engine_.chargeRounds(n); }

  /// The underlying substrate; consumers use its pool for deterministic
  /// parallel local phases (sorting, packing) between rounds.
  runtime::RoundEngine& engine() { return engine_; }

 private:
  MpcConfig cfg_;
  runtime::RoundEngine engine_;
};

}  // namespace mpcspan
