// The spanner iteration's distributed kernel, implemented end-to-end on the
// word-accurate MPC simulator (a runtime::RoundEngine facade).
//
// One growth iteration of the Section-5 algorithm reduces to two group-by
// minima over the alive edge set (Section 6 / Lemma 6.1):
//   (1) per (super-node v, neighbouring cluster c): the minimum-weight edge
//       in E(v, c)  — Steps B3/B4's candidate edges;
//   (2) per super-node v: the minimum over (1) restricted to *sampled*
//       clusters — the closest sampled cluster N(v) (Step B3).
// Both are realized as distSort by key followed by segmentedMinSorted, i.e.
// real tuples moving through machines with enforced memory limits.
//
// The record types and the deterministic reduction live in
// spanner/growth_kernel.hpp, shared with the host reference and the
// Congested Clique kernel (cclique/iteration_cc.hpp); the equivalence tests
// (tests/test_dist_iteration.cc) check that all substrates reproduce the
// same decisions bit-for-bit, which is the library's evidence that the
// charged O(1/gamma)-round supersteps are implementable exactly as claimed.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/simulator.hpp"
#include "spanner/growth_kernel.hpp"

namespace mpcspan {

/// Runs the kernel on `sim` for the iteration state
/// (clusterOf[s] = cluster root of super-node s, kNoVertex = exited;
/// sampled[r] marks sampled roots). Edges whose endpoints' clusters are both
/// sampled or exited produce no candidates, mirroring the engine.
/// `superOf` maps each original vertex to its current super-node
/// (kNoVertex = inactive); pass the identity for the first epoch.
/// `alive` (optional) restricts the candidate edges to the still-unprocessed
/// ones; nullptr means every edge of g.
DistIterationResult distIterationKernel(MpcSimulator& sim, const Graph& g,
                                        const std::vector<VertexId>& superOf,
                                        const std::vector<VertexId>& clusterOf,
                                        const std::vector<char>& sampled,
                                        const std::vector<char>* alive = nullptr);

/// Host-side reference implementation (same tie-breaking); used by tests
/// and by callers that only need the values, not the simulation.
DistIterationResult referenceIterationKernel(const Graph& g,
                                             const std::vector<VertexId>& superOf,
                                             const std::vector<VertexId>& clusterOf,
                                             const std::vector<char>& sampled,
                                             const std::vector<char>* alive = nullptr);

}  // namespace mpcspan
