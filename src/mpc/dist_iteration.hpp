// The spanner iteration's distributed kernel, implemented end-to-end on the
// word-accurate MPC simulator.
//
// One growth iteration of the Section-5 algorithm reduces to two group-by
// minima over the alive edge set (Section 6 / Lemma 6.1):
//   (1) per (super-node v, neighbouring cluster c): the minimum-weight edge
//       in E(v, c)  — Steps B3/B4's candidate edges;
//   (2) per super-node v: the minimum over (1) restricted to *sampled*
//       clusters — the closest sampled cluster N(v) (Step B3).
// Both are realized as distSort by key followed by segmentedMinSorted, i.e.
// real tuples moving through machines with enforced memory limits.
//
// ClusterEngine computes the same quantities host-side for speed; the
// equivalence test (tests/test_dist_iteration.cc) checks that this
// distributed kernel reproduces the engine's decisions bit-for-bit, which
// is the library's evidence that the charged O(1/gamma)-round supersteps
// are implementable exactly as claimed.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/simulator.hpp"

namespace mpcspan {

/// Minimum-weight edge of a (super-node, cluster) group.
struct GroupMinEdge {
  VertexId v = 0;        // processing super-node
  VertexId cluster = 0;  // neighbouring cluster root
  Weight w = 0;
  EdgeId id = 0;

  friend bool operator==(const GroupMinEdge&, const GroupMinEdge&) = default;
};

/// The join decision of one processing super-node (Step B3).
struct ClosestSampled {
  VertexId v = 0;
  VertexId cluster = 0;  // N(v)
  Weight w = 0;
  EdgeId id = 0;

  friend bool operator==(const ClosestSampled&, const ClosestSampled&) = default;
};

struct DistIterationResult {
  /// (1) sorted by (v, cluster).
  std::vector<GroupMinEdge> groupMins;
  /// (2) sorted by v; only super-nodes with >= 1 sampled neighbour appear.
  std::vector<ClosestSampled> joins;
  std::size_t roundsUsed = 0;
};

/// Runs the kernel on `sim` for the iteration state
/// (clusterOf[s] = cluster root of super-node s, kNoVertex = exited;
/// sampled[r] marks sampled roots). Edges whose endpoints' clusters are both
/// sampled or exited produce no candidates, mirroring the engine.
/// `superOf` maps each original vertex to its current super-node
/// (kNoVertex = inactive); pass the identity for the first epoch.
/// `alive` (optional) restricts the candidate edges to the still-unprocessed
/// ones; nullptr means every edge of g.
DistIterationResult distIterationKernel(MpcSimulator& sim, const Graph& g,
                                        const std::vector<VertexId>& superOf,
                                        const std::vector<VertexId>& clusterOf,
                                        const std::vector<char>& sampled,
                                        const std::vector<char>* alive = nullptr);

/// Host-side reference implementation (same tie-breaking); used by tests
/// and by callers that only need the values, not the simulation.
DistIterationResult referenceIterationKernel(const Graph& g,
                                             const std::vector<VertexId>& superOf,
                                             const std::vector<VertexId>& clusterOf,
                                             const std::vector<char>& sampled,
                                             const std::vector<char>* alive = nullptr);

}  // namespace mpcspan
