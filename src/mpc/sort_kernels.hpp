// Registered step kernels behind distSort / segmentedMinSorted — the
// worker-resident implementation of the Goodrich-style primitives.
//
// Each phase of the legacy coordinator-driven primitives becomes a kernel
// phase selected by args[0], executed where the data lives: local sorting,
// sampling, splitter fan-out, the all-to-all route, and the segmented-min
// boundary fix-up all build their outboxes *inside the shard workers*
// against worker-owned DistVector blocks (runtime::BlockStore) — the
// coordinator only drives the phase schedule. The phases mirror the legacy
// host-driven implementation bit for bit (same sampling hashes, splitter
// picks, broadcast schedule, partition bounds, fix-up resolution), so
// rounds, ledger words, and final block contents are identical to what the
// coordinator-side primitives produced, and identical across 1/N shards ×
// 1/N threads.
//
// Kernels are type-parameterized on the item and its stateless comparators;
// each instantiation registers itself in the process-global kernel registry
// at static initialization (GlobalKernelRegistrar), so a resident worker
// can construct it by name no matter when the engine first uses it.
#pragma once

#include <algorithm>
#include <cstring>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <typeinfo>
#include <vector>

#include "runtime/pack.hpp"
#include "runtime/kernel.hpp"
#include "runtime/simd.hpp"

namespace mpcspan {

/// Phase tags (args[0]) of the primitive kernels. args[1] is the DistVector
/// block handle for the phases that touch it.
constexpr Word kSortPhaseSortLocal = 1;   // local: sort the block
constexpr Word kSortPhaseSample = 2;      // round: samples -> machine 0
constexpr Word kSortPhasePickAndFan = 3;  // round: pick splitters, fan round 1
constexpr Word kSortPhaseFanForward = 4;  // round: broadcast fan round r > 1
constexpr Word kSortPhaseRoute = 5;       // round: all-to-all partition route
constexpr Word kSortPhaseMergeRoute = 6;  // local: merge the routed runs

constexpr Word kSegPhaseReduce = 1;    // local: per-key reduce of the block
constexpr Word kSegPhaseBoundary = 2;  // round: first/last records -> 0
constexpr Word kSegPhaseFix = 3;       // round: machine 0 resolves runs
constexpr Word kSegPhaseApply = 4;     // local: apply fix-ups
constexpr Word kSegPhaseEmit = 5;      // local: pack reduced_ into block args[1]

namespace detail {

/// Flattens a machine's resident inbox into one word vector in delivery
/// order — exactly the view MpcSimulator::communicate hands the legacy
/// primitives.
inline std::vector<Word> flatInbox(const runtime::KernelCtx& ctx) {
  std::size_t total = 0;
  for (const runtime::Delivery& d : ctx.inbox) total += d.payload.size();
  std::vector<Word> flat;
  flat.reserve(total);
  for (const runtime::Delivery& d : ctx.inbox)
    flat.insert(flat.end(), d.payload.begin(), d.payload.end());
  return flat;
}

/// Reads one item out of a packed block without unpacking the rest (items
/// occupy fixed wordsPerItem<T>() cells). Works on any contiguous word
/// container (std::vector<Word>, the arena-backed runtime::WordBuf).
template <typename T, typename Words>
T itemAt(const Words& block, std::size_t pos) {
  T item;
  std::memcpy(&item, block.data() + pos * wordsPerItem<T>(), sizeof(T));
  return item;
}

/// Opt-in comparator contract: `static constexpr std::size_t
/// kPackedKeyWord` on a comparator promises that it orders items
/// *primarily* by that unsigned word of the packed cell, ascending (key
/// ties may be broken arbitrarily). Kernels then run flat key passes
/// (runtime/simd.hpp) over the packed block instead of per-item memcpy
/// probes, falling back to the full comparator only inside equal-key
/// runs. std::less<> over single-word unsigned items makes the same
/// promise by definition.
template <typename T, typename Cmp, typename = void>
struct PackedKeyWord {
  static constexpr bool kAvailable =
      std::is_same_v<T, Word> && std::is_same_v<Cmp, std::less<>>;
  static constexpr std::size_t value = 0;
};
template <typename T, typename Cmp>
struct PackedKeyWord<T, Cmp, std::void_t<decltype(Cmp::kPackedKeyWord)>> {
  static constexpr bool kAvailable = true;
  static constexpr std::size_t value = Cmp::kPackedKeyWord;
};

}  // namespace detail

/// Distributed sample sort (see distSort in primitives.hpp for the driver
/// and the round schedule). Per-machine persistent state: the splitter set,
/// absorbed from the broadcast by every machine.
template <typename T, typename Cmp>
class SortKernel final : public runtime::StepKernel {
 public:
  static std::string kernelName() {
    return std::string("mpcspan.distsort.") + typeid(SortKernel).name();
  }

  std::vector<runtime::Message> step(const runtime::KernelCtx& ctx) override {
    ensureState(ctx);
    switch (ctx.args.at(0)) {
      case kSortPhaseSample:
        return sample(ctx);
      case kSortPhasePickAndFan:
        return pickAndFan(ctx);
      case kSortPhaseFanForward:
        return fanForward(ctx);
      case kSortPhaseRoute:
        return route(ctx);
      default:
        throw std::invalid_argument("SortKernel: unknown step phase");
    }
  }

  void local(const runtime::KernelCtx& ctx) override {
    ensureState(ctx);
    switch (ctx.args.at(0)) {
      case kSortPhaseSortLocal: {
        runtime::WordBuf& block = ctx.store.block(ctx.args.at(1), ctx.machine);
        std::vector<T> items = unpackItems<T>(block);
        std::sort(items.begin(), items.end(), cmp_);
        block = packItems(items.data(), items.size());
        splitters_[ctx.machine].clear();  // a fresh sort forgets old splitters
        break;
      }
      case kSortPhaseMergeRoute: {
        std::vector<T> items = unpackItems<T>(detail::flatInbox(ctx));
        std::sort(items.begin(), items.end(), cmp_);
        ctx.store.block(ctx.args.at(1), ctx.machine) =
            packItems(items.data(), items.size());
        break;
      }
      default:
        throw std::invalid_argument("SortKernel: unknown local phase");
    }
  }

 private:
  void ensureState(const runtime::KernelCtx& ctx) {
    std::call_once(sized_, [&] { splitters_.resize(ctx.numMachines); });
  }

  std::vector<runtime::Message> sample(const runtime::KernelCtx& ctx) {
    const std::size_t perMachineSamples = ctx.args.at(2);
    const runtime::WordBuf& block = ctx.store.block(ctx.args.at(1), ctx.machine);
    const std::size_t count = block.size() / wordsPerItem<T>();
    if (count == 0) return {};
    // Uniform random positions, seeded per machine: deterministic per-shard
    // quantile positions would pool into only `take` distinct quantile
    // levels across machines — far too coarse when numMachines > take —
    // and including shard extremes biases the splitters. Items are read in
    // place — no point unpacking the whole block for <= 32 picks.
    std::vector<T> samples;
    const std::size_t take = std::min(perMachineSamples, count);
    samples.reserve(take);
    std::uint64_t h =
        0x9e3779b97f4a7c15ULL ^ (ctx.machine * 0xbf58476d1ce4e5b9ULL);
    for (std::size_t i = 0; i < take; ++i) {
      h = h * 6364136223846793005ULL + 1442695040888963407ULL;
      samples.push_back(detail::itemAt<T>(block, (h >> 33) % count));
    }
    std::sort(samples.begin(), samples.end(), cmp_);
    return {{0, packItems(samples.data(), samples.size())}};
  }

  std::vector<runtime::Message> pickAndFan(const runtime::KernelCtx& ctx) {
    if (ctx.machine != 0) return {};
    std::vector<T> samples = unpackItems<T>(detail::flatInbox(ctx));
    std::sort(samples.begin(), samples.end(), cmp_);
    const std::size_t p = ctx.numMachines;
    std::vector<T>& splitters = splitters_[0];
    splitters.clear();
    for (std::size_t i = 1; i < p; ++i) {
      if (samples.empty()) break;
      splitters.push_back(
          samples[std::min(samples.size() - 1, i * samples.size() / p)]);
    }
    return fanOut(ctx, /*holders=*/1, /*branch=*/ctx.args.at(2));
  }

  std::vector<runtime::Message> fanForward(const runtime::KernelCtx& ctx) {
    absorbSplitters(ctx);
    const std::size_t holders = ctx.args.at(2);
    if (ctx.machine >= holders) return {};
    return fanOut(ctx, holders, /*branch=*/ctx.args.at(3));
  }

  /// One broadcast fan round: holders are the machine prefix [0, holders);
  /// targets extend the prefix in ascending order, `branch` consecutive per
  /// holder — the exact schedule of the legacy treeBroadcastWords, so the
  /// per-round message pattern (and the ledger) is unchanged.
  std::vector<runtime::Message> fanOut(const runtime::KernelCtx& ctx,
                                       std::size_t holders,
                                       std::size_t branch) {
    const std::size_t p = ctx.numMachines;
    const std::size_t newHolders = std::min(p - holders, holders * branch);
    const std::size_t first = holders + ctx.machine * branch;
    const std::size_t last = std::min(first + branch, holders + newHolders);
    std::vector<runtime::Message> out;
    if (first >= last) return out;
    const std::vector<Word> payload = packItems(splitters_[ctx.machine].data(),
                                                splitters_[ctx.machine].size());
    out.reserve(last - first);
    for (std::size_t t = first; t < last; ++t) out.push_back({t, payload});
    return out;
  }

  /// Broadcast targets store the splitters the round after receipt (their
  /// resident inbox is replaced every round, and every machine steps every
  /// round, so the hand-off can never be missed). Machine 0 set its own set
  /// in pickAndFan; splitters are never legitimately empty here (p >= 2 and
  /// a non-empty vector guarantee at least one sample, hence p-1 picks).
  void absorbSplitters(const runtime::KernelCtx& ctx) {
    std::vector<T>& mine = splitters_[ctx.machine];
    if (!mine.empty() || ctx.inbox.empty()) return;
    const runtime::Payload& payload = ctx.inbox.front().payload;
    const std::vector<Word> words(payload.begin(), payload.end());
    mine = unpackItems<T>(words);
  }

  std::vector<runtime::Message> route(const runtime::KernelCtx& ctx) {
    absorbSplitters(ctx);
    const std::vector<T>& splitters = splitters_[ctx.machine];
    const runtime::WordBuf& block = ctx.store.block(ctx.args.at(1), ctx.machine);
    constexpr std::size_t wpi = wordsPerItem<T>();
    const std::size_t count = block.size() / wpi;
    // The block is sorted and packed in fixed-width cells, so each run is a
    // contiguous word slice: find the boundaries in place and ship the
    // slices without an unpack/repack round trip. When the comparator
    // exposes its packed key word, the keys come out in one vectorized
    // gather and each bound is a flat-array scan; the full comparator is
    // only consulted inside the splitter's equal-key run (it may break key
    // ties). Both paths compute the same upper bound.
    constexpr bool kFlatKeys = detail::PackedKeyWord<T, Cmp>::kAvailable;
    std::vector<Word> keys;
    if constexpr (kFlatKeys) {
      keys.resize(count);
      runtime::simd::gatherStride(block.data(),
                                  detail::PackedKeyWord<T, Cmp>::value, wpi,
                                  count, keys.data());
    }
    std::vector<runtime::Message> out;
    std::size_t begin = 0;
    for (std::size_t j = 0; j <= splitters.size(); ++j) {
      std::size_t end;
      if (j == splitters.size()) {
        end = count;
      } else {
        // upper_bound: first index whose item compares after splitters[j].
        std::size_t lo = begin, hi = count;
        if constexpr (kFlatKeys) {
          Word cell[wpi] = {};
          std::memcpy(cell, &splitters[j], sizeof(T));
          const Word sk = cell[detail::PackedKeyWord<T, Cmp>::value];
          lo = runtime::simd::lowerBoundFrom(keys.data(), begin, count, sk);
          hi = runtime::simd::upperBoundFrom(keys.data(), lo, count, sk);
        }
        while (lo < hi) {
          const std::size_t mid = lo + (hi - lo) / 2;
          if (cmp_(splitters[j], detail::itemAt<T>(block, mid)))
            hi = mid;
          else
            lo = mid + 1;
        }
        end = lo;
      }
      if (end > begin)
        out.push_back(
            {j, std::vector<Word>(
                    block.begin() + static_cast<std::ptrdiff_t>(begin * wpi),
                    block.begin() + static_cast<std::ptrdiff_t>(end * wpi))});
      begin = end;
    }
    return out;
  }

  Cmp cmp_{};
  std::once_flag sized_;
  std::vector<std::vector<T>> splitters_;  // per machine
};

/// Per-key minimum over key-sorted blocks (see segmentedMinSorted in
/// primitives.hpp). Per-machine persistent state: the locally reduced
/// sequence, later corrected by machine 0's boundary fix-ups and collected
/// via fetch().
template <typename T, typename KeyOf, typename Better>
class SegMinKernel final : public runtime::StepKernel {
 public:
  static std::string kernelName() {
    return std::string("mpcspan.segmin.") + typeid(SegMinKernel).name();
  }

  std::vector<runtime::Message> step(const runtime::KernelCtx& ctx) override {
    ensureState(ctx);
    switch (ctx.args.at(0)) {
      case kSegPhaseBoundary:
        return boundary(ctx);
      case kSegPhaseFix:
        return fix(ctx);
      default:
        throw std::invalid_argument("SegMinKernel: unknown step phase");
    }
  }

  void local(const runtime::KernelCtx& ctx) override {
    ensureState(ctx);
    switch (ctx.args.at(0)) {
      case kSegPhaseReduce: {
        // Local reduce (free): one representative per key per machine.
        // Restructured as flat passes over the contiguous block: extract
        // every key (keyOf_ is a stateless inlined functor, so this loop
        // autovectorizes), find run starts with the vectorized
        // neighbour-compare, then take each run's minimum — instead of a
        // branch-per-item append loop.
        std::vector<T>& red = reduced_[ctx.machine];
        red.clear();
        const std::vector<T> items =
            unpackItems<T>(ctx.store.block(ctx.args.at(1), ctx.machine));
        std::vector<Word> keys(items.size());
        for (std::size_t i = 0; i < items.size(); ++i) keys[i] = keyOf_(items[i]);
        std::vector<std::uint32_t> starts;
        runtime::simd::runStarts(keys.data(), keys.size(), starts);
        red.reserve(starts.size());
        for (std::size_t r = 0; r < starts.size(); ++r) {
          const std::size_t b = starts[r];
          const std::size_t e =
              r + 1 < starts.size() ? starts[r + 1] : items.size();
          T best = items[b];
          for (std::size_t i = b + 1; i < e; ++i)
            if (better_(items[i], best)) best = items[i];
          red.push_back(best);
        }
        break;
      }
      case kSegPhaseApply:
        apply(ctx);
        break;
      case kSegPhaseEmit: {
        // Hand the reduced sequence to another kernel as a worker-resident
        // block (the growth iteration chains it into its second superstep
        // without a coordinator round trip).
        const std::vector<T>& red = reduced_[ctx.machine];
        ctx.store.block(ctx.args.at(1), ctx.machine) =
            packItems(red.data(), red.size());
        break;
      }
      default:
        throw std::invalid_argument("SegMinKernel: unknown local phase");
    }
  }

  std::vector<Word> fetch(const runtime::KernelCtx& ctx) override {
    ensureState(ctx);
    const std::vector<T>& red = reduced_[ctx.machine];
    return packItems(red.data(), red.size());
  }

 private:
  void ensureState(const runtime::KernelCtx& ctx) {
    std::call_once(sized_, [&] { reduced_.resize(ctx.numMachines); });
  }

  std::vector<runtime::Message> boundary(const runtime::KernelCtx& ctx) {
    const std::vector<T>& red = reduced_[ctx.machine];
    if (red.empty()) return {};
    std::vector<T> pair{red.front(), red.back()};
    std::vector<Word> payload = packItems(pair.data(), pair.size());
    payload.push_back(ctx.machine);
    return {{0, std::move(payload)}};
  }

  std::vector<runtime::Message> fix(const runtime::KernelCtx& ctx) {
    if (ctx.machine != 0) return {};
    const std::size_t rec = 2 * wordsPerItem<T>() + 1;
    const std::vector<Word> raw = detail::flatInbox(ctx);

    struct Boundary {
      std::size_t machine;
      T first, last;
    };
    std::vector<Boundary> bounds;
    for (std::size_t off = 0; off + rec <= raw.size(); off += rec) {
      Boundary b;
      std::memcpy(&b.first, raw.data() + off, sizeof(T));
      std::memcpy(&b.last, raw.data() + off + wordsPerItem<T>(), sizeof(T));
      b.machine = static_cast<std::size_t>(raw[off + rec - 1]);
      bounds.push_back(b);
    }
    std::sort(bounds.begin(), bounds.end(), [](const Boundary& a,
                                               const Boundary& b) {
      return a.machine < b.machine;
    });

    // Resolve key runs that span machine boundaries. Because the data is
    // key-sorted and the local reduce left one copy per key per machine, a
    // run over machines m0..mEnd consists of last[m0], first[m0+1], ...,
    // first[mEnd] (fully-covered middle machines have first == last).
    struct FixEntry {
      std::uint64_t key;
      T winner;
      bool keepHere;
    };
    std::vector<std::vector<FixEntry>> fixes(ctx.numMachines);
    std::size_t i = 0;
    while (i + 1 < bounds.size()) {
      const std::uint64_t key = keyOf_(bounds[i].last);
      if (keyOf_(bounds[i + 1].first) != key) {
        ++i;
        continue;
      }
      T winner = bounds[i].last;
      std::vector<std::size_t> members{i};
      std::size_t j = i + 1;
      while (j < bounds.size() && keyOf_(bounds[j].first) == key) {
        members.push_back(j);
        if (better_(bounds[j].first, winner)) winner = bounds[j].first;
        if (keyOf_(bounds[j].last) != key) break;  // run ends inside machine j
        ++j;
      }
      for (std::size_t t : members)
        fixes[bounds[t].machine].push_back({key, winner, t == i});
      i = members.back() == i ? i + 1 : members.back();
    }

    std::vector<runtime::Message> out;
    for (std::size_t m = 0; m < ctx.numMachines; ++m) {
      if (fixes[m].empty()) continue;
      std::vector<Word> payload;
      for (const FixEntry& f : fixes[m]) {
        payload.push_back(f.key);
        payload.push_back(f.keepHere ? 1 : 0);
        const std::vector<Word> w = packItems(&f.winner, 1);
        payload.insert(payload.end(), w.begin(), w.end());
      }
      out.push_back({m, std::move(payload)});
    }
    return out;
  }

  void apply(const runtime::KernelCtx& ctx) {
    // Apply fixes (local compute): the single local copy of the key is
    // replaced by the winner on exactly one machine and dropped elsewhere.
    // reduced_ inherits the block's order, and segmentedMinSorted's
    // contract is key-sorted (ascending) input with one representative per
    // key after the reduce — so the lookup is a binary search, not the
    // former linear scan per fix-up.
    const std::vector<Word> fw = detail::flatInbox(ctx);
    const std::size_t frec = 2 + wordsPerItem<T>();
    std::vector<T>& red = reduced_[ctx.machine];
    for (std::size_t off = 0; off + frec <= fw.size(); off += frec) {
      const std::uint64_t key = fw[off];
      const bool keep = fw[off + 1] != 0;
      T winner;
      std::memcpy(&winner, fw.data() + off + 2, sizeof(T));
      const auto it = std::lower_bound(
          red.begin(), red.end(), key,
          [this](const T& a, std::uint64_t k) { return keyOf_(a) < k; });
      if (it != red.end() && keyOf_(*it) == key) {
        if (keep)
          *it = winner;
        else
          red.erase(it);
      }
    }
  }

  KeyOf keyOf_{};
  Better better_{};
  std::once_flag sized_;
  std::vector<std::vector<T>> reduced_;  // per machine
};

}  // namespace mpcspan
