#include "mpc/cost_model.hpp"

#include <cmath>

namespace mpcspan {

const char* primName(Prim p) {
  switch (p) {
    case Prim::kSample: return "sample";
    case Prim::kFindMin: return "find-min";
    case Prim::kMerge: return "merge";
    case Prim::kContraction: return "contraction";
    case Prim::kSort: return "sort";
    case Prim::kBroadcast: return "broadcast";
    case Prim::kExponentiation: return "exponentiation";
    case Prim::kLocalSim: return "local-sim";
    case Prim::kCount_: break;
  }
  return "?";
}

void CostModel::charge(Prim p, long count) {
  counts_[static_cast<std::size_t>(p)] += count;
}

void CostModel::chargeCliqueExtra(long rounds) { cliqueExtra_ += rounds; }

long CostModel::invocations(Prim p) const {
  return counts_[static_cast<std::size_t>(p)];
}

long CostModel::supersteps() const {
  long total = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i)
    if (static_cast<Prim>(i) != Prim::kLocalSim) total += counts_[i];
  return total;
}

long CostModel::mpcRounds(double gamma) const {
  const long perStep = static_cast<long>(std::ceil(1.0 / gamma));
  return supersteps() * perStep;
}

long CostModel::nearLinearRounds() const { return supersteps(); }

long CostModel::cliqueRounds() const { return supersteps() + cliqueExtra_; }

void CostModel::absorb(const CostModel& other) {
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  cliqueExtra_ += other.cliqueExtra_;
}

std::string CostModel::ledgerString() const {
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (!out.empty()) out += ", ";
    out += primName(static_cast<Prim>(i));
    out += "=";
    out += std::to_string(counts_[i]);
  }
  if (cliqueExtra_ != 0) out += ", clique-extra=" + std::to_string(cliqueExtra_);
  return out;
}

}  // namespace mpcspan
