// Round accounting for the MPC / Congested Clique cost analyses (Section 6,
// Lemma 6.1, and Section 8 of the paper).
//
// The spanner algorithms are written as sequences of *supersteps*, each one
// of the constant-round distributed subroutines the paper builds on:
// sort / find-minimum / broadcast ([GSZ11], [DN19]) and the derived
// clustering / merge / contraction operations (Lemma 6.1). In the strongly
// sublinear regime every superstep costs O(1/gamma) MPC rounds; in the
// near-linear regime (and in Congested Clique via [BDH18] semi-MPC
// simulation) it costs O(1) rounds. The CostModel keeps a per-primitive
// ledger so benchmarks can report both the superstep count (the paper's
// "iterations") and converted round counts per regime.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace mpcspan {

enum class Prim : std::uint8_t {
  kSample = 0,      // cluster sub-sampling (local coin flips + label update)
  kFindMin,         // minimum-weight edge per (super-node, cluster) group
  kMerge,           // cluster merge / label propagation
  kContraction,     // quotient-graph construction (end of epoch)
  kSort,            // generic distributed sort invocation
  kBroadcast,       // one tree broadcast
  kExponentiation,  // one graph-exponentiation doubling step (Appendix B)
  kLocalSim,        // local-memory computation (free in rounds, tracked)
  kCount_,
};

const char* primName(Prim p);

class CostModel {
 public:
  /// Records `count` invocations of primitive p.
  void charge(Prim p, long count = 1);

  /// Adds Congested-Clique-only extra rounds (e.g. Theorem 8.1's repetition
  /// selection or Lenzen-routing collection steps).
  void chargeCliqueExtra(long rounds);

  long invocations(Prim p) const;

  /// Total supersteps (every primitive except kLocalSim).
  long supersteps() const;

  /// Rounds in the strongly sublinear regime with memory n^gamma per
  /// machine: ceil(1/gamma) per superstep (Lemma 6.1).
  long mpcRounds(double gamma) const;

  /// Rounds in the near-linear regime: 1 per superstep.
  long nearLinearRounds() const;

  /// Congested Clique rounds: 1 per superstep + extras.
  long cliqueRounds() const;

  /// Dynamic-stream passes (Section 2.4: "a pass corresponds to one round
  /// of communication in MPC"): 1 per superstep. The t=1 algorithm thus
  /// gives a log k-pass streaming spanner with stretch k^{log2 3},
  /// improving [AGM12]'s k^{log2 5} at the same pass count.
  long streamingPasses() const { return nearLinearRounds(); }

  /// Merges another ledger into this one (used when an algorithm runs a
  /// sub-algorithm, e.g. Section 3's black-box second phase).
  void absorb(const CostModel& other);

  std::string ledgerString() const;

 private:
  std::array<long, static_cast<std::size_t>(Prim::kCount_)> counts_{};
  long cliqueExtra_ = 0;
};

}  // namespace mpcspan
