#include "util/args.hpp"

#include <cstdlib>
#include <stdexcept>

namespace mpcspan {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::flag(const std::string& name, const std::string& defaultValue,
                           const std::string& help) {
  if (specs_.emplace(name, Spec{defaultValue, help}).second) order_.push_back(name);
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      helpRequested_ = true;
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    const auto eq = arg.find('=');
    bool haveValue = false;
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      haveValue = true;
    }
    const auto it = specs_.find(arg);
    if (it == specs_.end()) {
      error_ = "unknown flag: --" + arg;
      return false;
    }
    if (!haveValue) {
      // "--flag value" unless the next token is another flag (boolean form).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    values_[arg] = value;
  }
  return true;
}

bool ArgParser::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string ArgParser::get(const std::string& name) const {
  const auto v = values_.find(name);
  if (v != values_.end()) return v->second;
  const auto s = specs_.find(name);
  if (s == specs_.end()) throw std::invalid_argument("unregistered flag: " + name);
  return s->second.defaultValue;
}

std::int64_t ArgParser::getInt(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double ArgParser::getDouble(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool ArgParser::getBool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string ArgParser::usage() const {
  std::string out = program_ + " — " + description_ + "\n\nflags:\n";
  for (const std::string& name : order_) {
    const Spec& s = specs_.at(name);
    out += "  --" + name;
    if (!s.defaultValue.empty()) out += " (default: " + s.defaultValue + ")";
    out += "\n      " + s.help + "\n";
  }
  return out;
}

}  // namespace mpcspan
