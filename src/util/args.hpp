// Minimal command-line flag parser for the CLI tools and examples.
// Supports --flag=value, --flag value, and boolean --flag forms; collects
// unknown flags as errors and prints a generated usage string.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mpcspan {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers a flag with a default value; returns *this for chaining.
  ArgParser& flag(const std::string& name, const std::string& defaultValue,
                  const std::string& help);

  /// Parses argv. Returns false (and fills error()) on unknown flags or
  /// missing values. "--help" sets helpRequested().
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::int64_t getInt(const std::string& name) const;
  double getDouble(const std::string& name) const;
  bool getBool(const std::string& name) const;

  bool helpRequested() const { return helpRequested_; }
  const std::string& error() const { return error_; }
  std::string usage() const;

 private:
  struct Spec {
    std::string defaultValue;
    std::string help;
  };
  std::string program_;
  std::string description_;
  std::vector<std::string> order_;
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  bool helpRequested_ = false;
  std::string error_;
};

}  // namespace mpcspan
