#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mpcspan {

double percentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  if (xs.empty()) return s;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  double sum = 0.0;
  for (double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (double x : sorted) sq += (x - s.mean) * (x - s.mean);
  s.stddev = s.count > 1 ? std::sqrt(sq / static_cast<double>(s.count - 1)) : 0.0;
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = percentileSorted(sorted, 0.50);
  s.p90 = percentileSorted(sorted, 0.90);
  s.p99 = percentileSorted(sorted, 0.99);
  return s;
}

double geometricMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double logSum = 0.0;
  for (double x : xs) logSum += std::log(x);
  return std::exp(logSum / static_cast<double>(xs.size()));
}

}  // namespace mpcspan
