// Deterministic, seedable random number generation.
//
// All randomized algorithms in this library (cluster sampling, hitting sets,
// graph generators) draw from Rng so that every experiment is reproducible
// from a single 64-bit seed. The generator is xoshiro256**, seeded through
// SplitMix64 as recommended by its authors; both are implemented here from
// the public-domain reference algorithms so the library has no dependency on
// platform-specific std::random_engine behaviour.
#pragma once

#include <cstdint>
#include <limits>

namespace mpcspan {

/// SplitMix64 step; used for seeding and for cheap per-key hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless 64-bit mix (Stafford variant 13). Used to derive independent
/// per-vertex randomness from (seed, vertex, epoch) triples, which is how the
/// Appendix-B algorithm shares "the same randomness for each vertex" across
/// all locally simulated balls.
std::uint64_t mix64(std::uint64_t x);

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound). bound must be > 0. Uses rejection
  /// sampling (Lemire's method) to avoid modulo bias.
  std::uint64_t next(std::uint64_t bound);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool coin(double p);

  /// Derive an independent child generator; stream `i` of this seed.
  Rng fork(std::uint64_t stream) const;

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

}  // namespace mpcspan
