// Sharded bounded LRU cache for the hot query path.
//
// The map is split into independently locked shards (key -> shard by mixed
// hash), so N reader threads promote/miss/insert concurrently while a
// warmer fills other shards. Values are handed out as
// shared_ptr<const Value>: eviction never invalidates a row a reader is
// still holding, which is what lets SpannerDistanceOracle::query stay a
// const, thread-safe operation under cache churn.
//
// Capacity is global; each shard enforces its own quota (capacity split
// round-robin across shards), so the total resident count never exceeds
// `capacity`, while a skewed key distribution may evict inside a hot shard
// before the global count reaches it. Exact LRU order is guaranteed within
// a shard (construct with shards=1 for a strict LRU).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace mpcspan {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  using ValuePtr = std::shared_ptr<const Value>;

  /// `capacity` bounds the total resident entries across all shards;
  /// capacity 0 disables retention (every lookup misses, inserts are
  /// dropped). `shards` is clamped to [1, max(1, capacity)]; 0 selects the
  /// default of min(8, capacity).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 0)
      : capacity_(capacity) {
    const std::size_t maxUseful = std::max<std::size_t>(1, capacity);
    if (shards == 0) shards = std::min<std::size_t>(8, maxUseful);
    shards = std::min(std::max<std::size_t>(1, shards), maxUseful);
    shards_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) {
      auto s = std::make_unique<Shard>();
      s->cap = capacity / shards + (i < capacity % shards ? 1 : 0);
      shards_.push_back(std::move(s));
    }
  }

  /// Movable for construction-time handoff only (the atomic counters are
  /// snapshotted); must not race concurrent users of `other`.
  ShardedLruCache(ShardedLruCache&& other) noexcept
      : capacity_(other.capacity_),
        shards_(std::move(other.shards_)),
        hits_(other.hits_.load(std::memory_order_relaxed)),
        misses_(other.misses_.load(std::memory_order_relaxed)) {}
  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(ShardedLruCache&&) = delete;

  std::size_t capacity() const { return capacity_; }
  std::size_t numShards() const { return shards_.size(); }

  /// Total resident entries (locks every shard; O(shards)).
  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->m);
      total += s->map.size();
    }
    return total;
  }

  /// Returns the cached value (promoted to most-recently-used) or nullptr.
  ValuePtr get(const Key& key) {
    Shard& s = shardFor(key);
    std::lock_guard<std::mutex> lock(s.m);
    auto it = s.map.find(key);
    if (it == s.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
  }

  /// True if resident; no promotion, no hit/miss accounting.
  bool contains(const Key& key) const {
    const Shard& s = shardFor(key);
    std::lock_guard<std::mutex> lock(s.m);
    return s.map.find(key) != s.map.end();
  }

  /// Inserts (or promotes an existing entry for) `key` and returns the
  /// resident value. When a concurrent caller raced the same key in first,
  /// the earlier value wins and is returned — with a deterministic compute
  /// function both copies are identical, so callers cannot observe the race.
  ValuePtr insertOrGet(const Key& key, ValuePtr value) {
    Shard& s = shardFor(key);
    std::lock_guard<std::mutex> lock(s.m);
    auto it = s.map.find(key);
    if (it != s.map.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return it->second->second;
    }
    if (s.cap == 0) return value;  // retention disabled for this shard
    s.lru.emplace_front(key, std::move(value));
    s.map.emplace(key, s.lru.begin());
    while (s.map.size() > s.cap) {
      s.map.erase(s.lru.back().first);
      s.lru.pop_back();
    }
    return s.lru.front().second;
  }

  /// get() or, on miss, compute the value *outside* the shard lock (the
  /// compute is the expensive part — a Dijkstra run) and insert it.
  /// `fn()` must be deterministic per key: racing computes may duplicate
  /// work, but the first inserted value is the one every caller sees.
  template <typename Fn>
  ValuePtr getOrCompute(const Key& key, Fn&& fn) {
    if (ValuePtr hit = get(key)) return hit;
    auto computed = std::make_shared<const Value>(fn());
    return insertOrGet(key, std::move(computed));
  }

  void clear() {
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->m);
      s->map.clear();
      s->lru.clear();
    }
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Resident keys in most-to-least-recently-used order within each shard,
  /// shards concatenated in index order (test/introspection helper).
  std::vector<Key> keysByRecency() const {
    std::vector<Key> keys;
    for (const auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->m);
      for (const auto& [k, v] : s->lru) keys.push_back(k);
    }
    return keys;
  }

 private:
  struct Shard {
    mutable std::mutex m;
    std::list<std::pair<Key, ValuePtr>> lru;  // front = most recently used
    std::unordered_map<Key, typename std::list<std::pair<Key, ValuePtr>>::iterator,
                       Hash>
        map;
    std::size_t cap = 0;
  };

  Shard& shardFor(const Key& key) {
    return *shards_[shardIndex(key)];
  }
  const Shard& shardFor(const Key& key) const {
    return *shards_[shardIndex(key)];
  }
  std::size_t shardIndex(const Key& key) const {
    // std::hash of an integer key is typically the identity; remix so
    // consecutive keys spread across shards instead of striding.
    return static_cast<std::size_t>(
        mix64(static_cast<std::uint64_t>(Hash{}(key))) % shards_.size());
  }

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace mpcspan
