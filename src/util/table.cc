#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace mpcspan {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::header(std::vector<std::string> names) { header_ = std::move(names); }

void Table::addRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

std::string Table::num(std::size_t v) { return std::to_string(v); }
std::string Table::num(long v) { return std::to_string(v); }
std::string Table::num(int v) { return std::to_string(v); }

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> width(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::fprintf(out, "\n== %s ==\n", title_.c_str());
  auto printRow = [&](const std::vector<std::string>& row) {
    std::fputc('|', out);
    for (std::size_t c = 0; c < row.size(); ++c)
      std::fprintf(out, " %-*s |", static_cast<int>(width[c]), row[c].c_str());
    std::fputc('\n', out);
  };
  printRow(header_);
  std::fputc('|', out);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    for (std::size_t i = 0; i < width[c] + 2; ++i) std::fputc('-', out);
    std::fputc('|', out);
  }
  std::fputc('\n', out);
  for (const auto& row : rows_) printRow(row);
  std::fflush(out);
}

}  // namespace mpcspan
