// One shared wall-clock budget for a multi-step operation.
//
// A per-wait timeout is the right contract for a single stream (a peer
// making progress is alive), but wrong for any operation composed of many
// waits — a peer trickling one byte per poll interval, or a query walking
// several answer tiers, would reset the clock at every step and extend the
// whole operation unbounded. A DeadlineBudget fixes the expiry instant once,
// at construction (monotonic clock); every wait it paces asks only for the
// time still remaining, so trickling spends the budget instead of
// refreshing it.
//
// Grew out of the shard transport's round barrier (PR 8) and generalized
// here so the serving daemon can use the same budget for per-request
// deadlines: src/runtime/shard/transport.hpp keeps a compatibility alias,
// and src/serve/ paces request parsing, reply writes, and the degradation
// ladder (query::TieredOracle::queryBudgeted) off one budget per request.
//
// Constructed from a negative total the budget is unbounded (remainingMs()
// is -1, poll's "wait forever"). DeadlineBudget(0) is bounded and already
// expired — "answer with whatever you have right now".
#pragma once

#include <chrono>
#include <cstdint>

namespace mpcspan::util {

class DeadlineBudget {
 public:
  DeadlineBudget() = default;  // unbounded
  explicit DeadlineBudget(int totalMs)
      : totalMs_(totalMs),
        deadline_(std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(totalMs < 0 ? 0 : totalMs)) {}

  bool bounded() const { return totalMs_ >= 0; }
  int totalMs() const { return totalMs_; }

  /// Milliseconds left, clamped to >= 0; -1 when unbounded. Suitable as a
  /// poll() timeout verbatim.
  int remainingMs() const {
    if (!bounded()) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          deadline_ - std::chrono::steady_clock::now())
                          .count();
    return left > 0 ? static_cast<int>(left) : 0;
  }

  /// Nanoseconds left, clamped to >= 0; -1 when unbounded. The query
  /// plane's tier-admission check compares this against observed per-tier
  /// latencies, which sit well below a millisecond.
  std::int64_t remainingNanos() const {
    if (!bounded()) return -1;
    const auto left = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          deadline_ - std::chrono::steady_clock::now())
                          .count();
    return left > 0 ? static_cast<std::int64_t>(left) : 0;
  }

  bool expired() const { return bounded() && remainingNanos() == 0; }

 private:
  int totalMs_ = -1;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace mpcspan::util
