// Minimal leveled logging. Disabled below the configured level at runtime;
// all call sites go through MPCSPAN_LOG so verbose algorithm tracing can stay
// in the code without polluting benchmark output.
#pragma once

#include <cstdio>
#include <string>

namespace mpcspan {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel logLevel();
void setLogLevel(LogLevel level);

namespace detail {
void logImpl(LogLevel level, const char* file, int line, const std::string& msg);
std::string formatLog(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

}  // namespace mpcspan

#define MPCSPAN_LOG(level, ...)                                              \
  do {                                                                       \
    if (static_cast<int>(level) >= static_cast<int>(::mpcspan::logLevel()))  \
      ::mpcspan::detail::logImpl(level, __FILE__, __LINE__,                  \
                                 ::mpcspan::detail::formatLog(__VA_ARGS__)); \
  } while (0)

#define MPCSPAN_DEBUG(...) MPCSPAN_LOG(::mpcspan::LogLevel::kDebug, __VA_ARGS__)
#define MPCSPAN_INFO(...) MPCSPAN_LOG(::mpcspan::LogLevel::kInfo, __VA_ARGS__)
#define MPCSPAN_WARN(...) MPCSPAN_LOG(::mpcspan::LogLevel::kWarn, __VA_ARGS__)
