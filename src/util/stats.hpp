// Small descriptive-statistics helpers used by the benchmark harness and by
// tests that audit distributions (stretch ratios, cluster counts, ...).
#pragma once

#include <cstddef>
#include <vector>

namespace mpcspan {

/// Summary of a sample: count, mean, min/max, selected percentiles.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Computes a Summary; copies and sorts internally. Empty input yields a
/// zeroed Summary.
Summary summarize(const std::vector<double>& xs);

/// Percentile by linear interpolation on a *sorted* sample; q in [0,1].
double percentileSorted(const std::vector<double>& sorted, double q);

/// Geometric mean; all inputs must be > 0. Empty input yields 0.
double geometricMean(const std::vector<double>& xs);

}  // namespace mpcspan
