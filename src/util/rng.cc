#include "util/rng.hpp"

namespace mpcspan {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into the mantissa.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::next(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::coin(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork(std::uint64_t stream) const {
  return Rng(mix64(seed_ ^ (0xd1b54a32d192ed03ULL * (stream + 1))));
}

}  // namespace mpcspan
