// Markdown-style table printer for the benchmark harness. Each bench binary
// reproduces one table/figure of the paper; printing goes through this class
// so that every binary emits the same machine-greppable format.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace mpcspan {

class Table {
 public:
  explicit Table(std::string title);

  /// Sets column headers; must be called before addRow.
  void header(std::vector<std::string> names);

  /// Adds a row of preformatted cells; size must match header.
  void addRow(std::vector<std::string> cells);

  /// Renders the table (title, header, separator, rows) to `out`.
  void print(std::FILE* out = stdout) const;

  /// Formats a double with `prec` significant-looking decimals.
  static std::string num(double v, int prec = 3);
  static std::string num(std::size_t v);
  static std::string num(long v);
  static std::string num(int v);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpcspan
