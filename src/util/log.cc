#include "util/log.hpp"

#include <atomic>
#include <cstdarg>
#include <vector>

namespace mpcspan {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace

LogLevel logLevel() { return static_cast<LogLevel>(g_level.load()); }
void setLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

namespace detail {

std::string formatLog(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args);
    out.assign(buf.data(), static_cast<std::size_t>(needed));
  }
  va_end(args);
  return out;
}

void logImpl(LogLevel level, const char* file, int line, const std::string& msg) {
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR", "OFF"};
  std::fprintf(stderr, "[%s] %s:%d: %s\n",
               kNames[static_cast<int>(level)], file, line, msg.c_str());
}

}  // namespace detail
}  // namespace mpcspan
