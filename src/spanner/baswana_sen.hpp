// Baswana–Sen [BS07]: the classical (2k-1)-spanner of expected size
// O(k * n^{1+1/k}) for weighted graphs, used by the paper both as the
// baseline (it needs Theta(k) rounds, which the paper's algorithms beat
// exponentially) and as the black-box inner algorithm of Section 3.
//
// Instantiated on the ClusterEngine as a single epoch of k-1 growth
// iterations at probability n^{-1/k} with no contraction, followed by
// Phase 2.
#pragma once

#include "graph/graph.hpp"
#include "spanner/engine.hpp"
#include "spanner/types.hpp"

namespace mpcspan {

struct BaswanaSenParams {
  std::uint32_t k = 4;
  std::uint64_t seed = 1;
  SamplingPolicy* policy = nullptr;  // optional override (Congested Clique)
};

/// Builds a (2k-1)-spanner. For k == 1 the spanner is the whole graph.
SpannerResult buildBaswanaSen(const Graph& g, const BaswanaSenParams& params);

/// Shared helper: the "whole graph" result used by every algorithm at k==1.
SpannerResult identitySpanner(const Graph& g, const char* algorithm);

}  // namespace mpcspan
