#include "spanner/cluster_merging.hpp"

#include "spanner/baswana_sen.hpp"

namespace mpcspan {

SpannerResult buildClusterMergingSpanner(const Graph& g,
                                         const ClusterMergingParams& params) {
  if (params.k <= 1) return identitySpanner(g, "cluster-merging");
  // Section 4 is exactly the Section 5 schedule at t=1: with singleton
  // epochs, "cluster-vertex" growth on the quotient graph *is* whole-cluster
  // merging (each super-node is the previous epoch's contracted cluster),
  // and the probabilities n^{-2^{i-1}/k} match (t+1)^{i-1} = 2^{i-1}.
  ClusterEngine::Options opts;
  opts.seed = params.seed;
  opts.policy = params.policy;
  ClusterEngine engine(g, params.k, opts);
  SpannerResult result = engine.run(tradeoffSchedule(g.numVertices(), params.k, 1));
  result.algorithm = "cluster-merging";
  result.t = 1;
  return result;
}

}  // namespace mpcspan
