// Theorem 1.3 / Appendix B: O(k)-stretch spanners for unweighted graphs in
// O(log k / gamma) MPC rounds with total memory O(m + n^{1+gamma}),
// adapting Parter–Yogev's Congested Clique construction [PY18].
//
// Pipeline (Appendix B.2):
//  1. Ball growing: every vertex collects its (4k)-hop ball, capped at
//     Theta(n^{gamma/2}) vertices, via graph exponentiation
//     (ceil(log2 4k) doubling supersteps, each O(1/gamma) rounds). A vertex
//     is *sparse* if the full ball fits under the cap, else *dense*.
//  2. Sparse side: simulate k iterations of (unweighted) Baswana–Sen with
//     shared per-vertex randomness. Because a sparse vertex's ball contains
//     its whole (4k)-hop neighbourhood, the local simulation is exact; we
//     realize it by one global run with deterministic hash-coin sampling and
//     keep every Baswana–Sen edge within k+1 hops of a sparse vertex (the
//     span of any discarded sparse-incident edge lies in that region).
//  3. Dense side: a hitting set Z (each vertex kept w.p. ~ln(n)/cap^(1/2)
//     so that every dense ball is hit w.h.p.); a multi-source BFS forest
//     assigns each dense vertex its nearest z in Z and contributes the
//     connecting paths (forest edges only, <= n-1 edges).
//  4. Auxiliary graph on Z: an edge (z1, z2) per adjacent pair of dense
//     vertices assigned to z1, z2; a (2*ceil(4/gamma)-1)-spanner of it via
//     Baswana–Sen, mapped back to one representative original edge each.
//
// Dense-dense edges are spanned through Z with stretch O(k/gamma); sparse-
// incident edges inherit Baswana–Sen's 2k-1.
#pragma once

#include "graph/graph.hpp"
#include "spanner/types.hpp"

namespace mpcspan {

struct UnweightedFastParams {
  std::uint32_t k = 4;
  double gamma = 0.5;  // local memory n^gamma
  std::uint64_t seed = 1;
  /// Ball-size cap override (0 = the paper's n^{gamma/2}). The asymptotic
  /// sparse/dense regime needs n^{gamma/2} >> (4k)-ball sizes and >> log n,
  /// i.e. astronomically large n; benches use this knob to emulate that
  /// regime's cap at laptop-scale n. Correctness never depends on the cap —
  /// it only moves vertices between the sparse and dense code paths.
  std::size_t capOverride = 0;
};

struct UnweightedFastResult {
  SpannerResult spanner;
  std::size_t sparseVertices = 0;
  std::size_t denseVertices = 0;
  std::size_t hittingSetSize = 0;
  std::size_t unhitDense = 0;  // dense vertices missed by Z (fallback applied)
  std::size_t ballCap = 0;
  std::size_t bsEdgesKept = 0;
  std::size_t forestEdges = 0;
  std::size_t auxEdges = 0;
};

/// Requires an unweighted graph (throws std::invalid_argument otherwise).
UnweightedFastResult buildUnweightedFastSpanner(const Graph& g,
                                                const UnweightedFastParams& params);

}  // namespace mpcspan
