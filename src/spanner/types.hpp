// Common result/parameter types for all spanner algorithms.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "mpc/cost_model.hpp"

namespace mpcspan {

/// Output of a spanner construction, together with the execution profile
/// needed to audit the paper's claims (round ledger, cluster-count decay,
/// certified stretch bound).
struct SpannerResult {
  /// Ids (into the input graph's edge list) of spanner edges, sorted.
  std::vector<EdgeId> edges;

  std::string algorithm;
  std::uint32_t k = 0;  // stretch parameter
  std::uint32_t t = 0;  // growth iterations per epoch (0 when n/a)

  /// Superstep/round ledger (see mpc/cost_model.hpp).
  CostModel cost;

  std::size_t epochs = 0;
  std::size_t iterations = 0;  // total cluster-growth iterations executed

  /// Certified weighted-stretch radius of the final clustering (Lemma 5.8 /
  /// Corollary 5.9 recurrence, tracked exactly during the run).
  double finalRadius = 0;

  /// Certified worst-case stretch: every non-spanner edge (u,v,w) satisfies
  /// dist_spanner(u,v) <= stretchBound * w. Derived from the radius
  /// recurrence plus the contraction-chain correction (see engine.cc).
  double stretchBound = 0;

  /// Active super-node count at the start of each epoch (Lemma 5.12 decay).
  std::vector<std::size_t> supernodesPerEpoch;

  /// Cluster (root) count at the start of every growth iteration.
  std::vector<std::size_t> clustersPerIteration;

  /// Sampling probability used in each epoch.
  std::vector<double> samplingProbs;

  /// Theorem 8.1 statistics (Congested Clique parallel repetition).
  struct RepetitionStats {
    long iterationsWithRetry = 0;  // iterations where draw #1 was rejected
    long totalDraws = 0;           // total sampling draws across iterations
  } repetition;

  std::size_t inputVertices = 0;
  std::size_t inputEdges = 0;

  double sizeRatio(double denomExtra) const;  // |edges| / (n^{1+1/k} * denomExtra)
};

}  // namespace mpcspan
