#include "spanner/unweighted_fast.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "graph/builder.hpp"
#include "graph/distance.hpp"
#include "spanner/baswana_sen.hpp"
#include "util/rng.hpp"

namespace mpcspan {

UnweightedFastResult buildUnweightedFastSpanner(const Graph& g,
                                                const UnweightedFastParams& params) {
  if (!g.isUnweighted())
    throw std::invalid_argument("unweighted-fast spanner requires an unweighted graph");
  if (params.gamma <= 0.0 || params.gamma > 1.0)
    throw std::invalid_argument("gamma must lie in (0, 1]");

  UnweightedFastResult out;
  if (params.k <= 1) {
    out.spanner = identitySpanner(g, "unweighted-fast");
    return out;
  }

  const std::size_t n = g.numVertices();
  const std::uint32_t k = params.k;
  const std::uint32_t maxHops = 4 * k;
  SpannerResult& sp = out.spanner;
  sp.algorithm = "unweighted-fast";
  sp.k = k;
  sp.inputVertices = n;
  sp.inputEdges = g.numEdges();
  std::vector<char> keep(g.numEdges(), 0);

  // --- 1. Capped ball growing (graph exponentiation) -----------------------
  const std::size_t cap =
      params.capOverride != 0
          ? params.capOverride
          : static_cast<std::size_t>(std::max(
                8.0, std::ceil(std::pow(
                         static_cast<double>(std::max<std::size_t>(n, 2)),
                         params.gamma / 2.0))));
  out.ballCap = cap;
  std::vector<char> sparse(n, 0);
  for (VertexId v = 0; v < n; ++v)
    sparse[v] = bfsBall(g, v, maxHops, cap).complete ? 1 : 0;
  const auto doublingSteps =
      static_cast<long>(std::ceil(std::log2(static_cast<double>(maxHops) + 1.0)));
  sp.cost.charge(Prim::kExponentiation, doublingSteps);

  std::vector<VertexId> sparseList, denseList;
  for (VertexId v = 0; v < n; ++v)
    (sparse[v] ? sparseList : denseList).push_back(v);
  out.sparseVertices = sparseList.size();
  out.denseVertices = denseList.size();

  // --- 2. Sparse side: shared-randomness Baswana–Sen ----------------------
  // The global hash-coin run equals the union of the local ball simulations
  // (each ball sees the whole (4k)-hop neighbourhood of its sparse centre,
  // and sampling depends only on (seed, epoch, iteration, root)). Locality:
  // the spanning path of a discarded sparse-incident edge has length at most
  // 2k-1 from the sparse endpoint, so keeping Baswana–Sen edges within 2k
  // hops of some sparse vertex preserves every such certificate.
  BaswanaSenParams bsp;
  bsp.k = k;
  bsp.seed = params.seed;
  SpannerResult bs = buildBaswanaSen(g, bsp);
  {
    const MultiSourceBfs nearSparse = multiSourceBfs(g, sparseList, 2 * k);
    for (EdgeId id : bs.edges) {
      const Edge& e = g.edge(id);
      if (nearSparse.hops[e.u] != kInfHops || nearSparse.hops[e.v] != kInfHops) {
        keep[id] = 1;
        ++out.bsEdgesKept;
      }
    }
  }
  // Local simulation adds no extra rounds (Appendix B); the randomness
  // replication is one broadcast.
  sp.cost.charge(Prim::kBroadcast);

  // --- 3. Dense side: hitting set + BFS forest -----------------------------
  std::vector<VertexId> assign(n, kNoVertex);
  std::vector<VertexId> hitting;
  if (!denseList.empty()) {
    // Each dense ball holds >= cap vertices, so keeping every vertex with
    // probability ~4 ln(n)/cap hits each ball w.h.p.
    const double q = std::min(
        1.0, 4.0 * std::log(static_cast<double>(std::max<std::size_t>(n, 3))) /
                 static_cast<double>(cap));
    for (VertexId v = 0; v < n; ++v) {
      const std::uint64_t h = mix64(params.seed ^ mix64(0x5b4c6f1du ^ (static_cast<std::uint64_t>(v) << 1)));
      if (static_cast<double>(h >> 11) * 0x1.0p-53 < q) hitting.push_back(v);
    }
    if (hitting.empty()) hitting.push_back(denseList.front());
    sp.cost.charge(Prim::kSample);

    const MultiSourceBfs fromZ = multiSourceBfs(g, hitting, maxHops);
    std::vector<char> onPath(n, 0);
    for (VertexId v : denseList) {
      if (fromZ.source[v] == kNoVertex) {
        ++out.unhitDense;
        continue;
      }
      assign[v] = fromZ.source[v];
      // Add the BFS path v -> Z to the spanner; stop at already-traced
      // prefixes so each forest edge is added exactly once.
      VertexId cur = v;
      while (!onPath[cur] && fromZ.parentEdge[cur] != kNoEdge) {
        onPath[cur] = 1;
        const EdgeId pe = fromZ.parentEdge[cur];
        if (!keep[pe]) {
          keep[pe] = 1;
          ++out.forestEdges;
        }
        cur = g.opposite(pe, cur);
      }
    }
    sp.cost.charge(Prim::kMerge);  // path/forest labelling
  }
  out.hittingSetSize = hitting.size();

  // --- 4. Auxiliary spanner on the hitting set -----------------------------
  std::uint32_t kz = static_cast<std::uint32_t>(std::ceil(4.0 / params.gamma));
  kz = std::max<std::uint32_t>(kz, 2);
  if (!hitting.empty() && !denseList.empty()) {
    std::vector<VertexId> zIndex(n, kNoVertex);
    for (VertexId i = 0; i < hitting.size(); ++i) zIndex[hitting[i]] = i;

    // Aux edge (z1,z2) per adjacent dense pair with distinct assignments;
    // representative = smallest original edge id.
    std::unordered_map<std::uint64_t, EdgeId> rep;
    for (EdgeId id = 0; id < g.numEdges(); ++id) {
      const Edge& e = g.edge(id);
      if (sparse[e.u] || sparse[e.v]) continue;  // sparse side already covers
      const VertexId au = assign[e.u];
      const VertexId av = assign[e.v];
      if (au == kNoVertex || av == kNoVertex) {
        // Unhit fallback: keep the edge outright (w.h.p. never taken).
        if (!keep[id]) keep[id] = 1;
        continue;
      }
      if (au == av) continue;  // spanned through the shared BFS tree
      VertexId a = zIndex[au];
      VertexId b = zIndex[av];
      if (a > b) std::swap(a, b);
      const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
      auto [it, inserted] = rep.try_emplace(key, id);
      if (!inserted && id < it->second) it->second = id;
    }
    out.auxEdges = rep.size();

    if (!rep.empty()) {
      std::vector<std::pair<std::uint64_t, EdgeId>> auxList(rep.begin(), rep.end());
      std::sort(auxList.begin(), auxList.end());
      GraphBuilder ab(hitting.size());
      for (const auto& [key, origId] : auxList)
        ab.addEdge(static_cast<VertexId>(key >> 32),
                   static_cast<VertexId>(key & 0xffffffffu), 1.0);
      const Graph aux = ab.build();
      // aux.edges() is sorted by (u,v), matching auxList's order, so aux
      // edge id i maps back to auxList[i].second.
      BaswanaSenParams zParams;
      zParams.k = kz;
      zParams.seed = params.seed ^ 0x9e3779b97f4a7c15ULL;
      SpannerResult zs = buildBaswanaSen(aux, zParams);
      for (EdgeId auxId : zs.edges) keep[auxList[auxId].second] = 1;
      sp.cost.absorb(zs.cost);
    }
  }

  // --- Finalize -------------------------------------------------------------
  for (EdgeId id = 0; id < g.numEdges(); ++id)
    if (keep[id]) sp.edges.push_back(id);
  // Sparse-incident edges: 2k-1. Dense-dense via Z: up to 4k to reach Z on
  // each side plus (2kz-1) auxiliary hops, each expanding to at most 8k+1
  // original hops.
  const double denseBound =
      8.0 * k + (2.0 * kz - 1.0) * (8.0 * k + 1.0);
  sp.stretchBound = std::max(2.0 * k - 1.0, denseBound);
  sp.finalRadius = static_cast<double>(maxHops);
  sp.epochs = 1;
  sp.iterations = bs.iterations;
  return out;
}

}  // namespace mpcspan
