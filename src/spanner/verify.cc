#include "spanner/verify.hpp"

#include <algorithm>
#include <cmath>

#include "graph/connectivity.hpp"
#include "graph/distance.hpp"
#include "util/rng.hpp"

namespace mpcspan {

StretchReport verifySpanner(const Graph& g, const std::vector<EdgeId>& spannerEdges,
                            double boundHint, const VerifyOptions& opts) {
  StretchReport report;
  report.spanning = sameComponents(g, spannerEdges);
  const Graph h = subgraph(g, spannerEdges);

  std::vector<char> inSpanner(g.numEdges(), 0);
  for (EdgeId id : spannerEdges) inSpanner[id] = 1;

  // Non-spanner edges, grouped by their u endpoint so one bounded Dijkstra
  // per distinct source covers all its audited edges.
  std::vector<EdgeId> toCheck;
  for (EdgeId id = 0; id < g.numEdges(); ++id)
    if (!inSpanner[id]) toCheck.push_back(id);
  Rng rng(opts.seed);
  if (opts.maxEdgeChecks != 0 && toCheck.size() > opts.maxEdgeChecks) {
    // Uniform subsample without replacement (partial Fisher–Yates).
    for (std::size_t i = 0; i < opts.maxEdgeChecks; ++i) {
      const std::size_t j = i + rng.next(toCheck.size() - i);
      std::swap(toCheck[i], toCheck[j]);
    }
    toCheck.resize(opts.maxEdgeChecks);
  }
  std::sort(toCheck.begin(), toCheck.end(), [&](EdgeId a, EdgeId b) {
    if (g.edge(a).u != g.edge(b).u) return g.edge(a).u < g.edge(b).u;
    return a < b;
  });

  double stretchSum = 0.0;
  std::size_t i = 0;
  while (i < toCheck.size()) {
    const VertexId src = g.edge(toCheck[i]).u;
    std::size_t end = i;
    Weight maxNeed = 0;
    while (end < toCheck.size() && g.edge(toCheck[end]).u == src) {
      maxNeed = std::max(maxNeed, g.edge(toCheck[end]).w);
      ++end;
    }
    const double budget = std::max(boundHint, 4.0) * 2.0 * maxNeed + 1.0;
    const std::vector<Weight> dist = dijkstraBounded(h, src, budget);
    for (; i < end; ++i) {
      const Edge& e = g.edge(toCheck[i]);
      const double ratio = dist[e.v] == kInfDist
                               ? std::numeric_limits<double>::infinity()
                               : dist[e.v] / e.w;
      report.maxEdgeStretch = std::max(report.maxEdgeStretch, ratio);
      stretchSum += std::min(ratio, budget / e.w);
      ++report.edgesChecked;
      if (ratio > boundHint + 1e-9) ++report.violations;
    }
  }
  if (report.edgesChecked > 0)
    report.meanEdgeStretch = stretchSum / static_cast<double>(report.edgesChecked);

  // Pairwise audit.
  if (opts.pairSources > 0 && g.numVertices() > 0) {
    for (std::size_t s = 0; s < opts.pairSources; ++s) {
      const auto src = static_cast<VertexId>(rng.next(g.numVertices()));
      const std::vector<Weight> dg = dijkstra(g, src);
      const std::vector<Weight> dh = dijkstra(h, src);
      for (VertexId v = 0; v < g.numVertices(); ++v) {
        if (v == src || dg[v] == kInfDist || dg[v] == 0) continue;
        const double ratio =
            dh[v] == kInfDist ? std::numeric_limits<double>::infinity() : dh[v] / dg[v];
        report.maxPairStretch = std::max(report.maxPairStretch, ratio);
        ++report.pairsChecked;
      }
    }
  }
  return report;
}

double measurePairStretch(const Graph& g, const std::vector<EdgeId>& spannerEdges,
                          std::size_t sources, std::uint64_t seed) {
  if (g.numVertices() == 0) return 1.0;
  const Graph h = subgraph(g, spannerEdges);
  Rng rng(seed);
  double worst = 1.0;
  for (std::size_t s = 0; s < sources; ++s) {
    const auto src = static_cast<VertexId>(rng.next(g.numVertices()));
    const std::vector<Weight> dg = dijkstra(g, src);
    const std::vector<Weight> dh = dijkstra(h, src);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
      if (v == src || dg[v] == kInfDist || dg[v] == 0) continue;
      if (dh[v] == kInfDist) return std::numeric_limits<double>::infinity();
      worst = std::max(worst, dh[v] / dg[v]);
    }
  }
  return worst;
}

}  // namespace mpcspan
