#include "spanner/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "util/log.hpp"

namespace mpcspan {

// ---------------------------------------------------------------------------
// Sampling
// ---------------------------------------------------------------------------

std::vector<char> HashCoinPolicy::draw(const std::vector<char>& rootActive, double p,
                                       std::uint64_t seed, std::uint64_t drawKey) {
  std::vector<char> sampled(rootActive.size(), 0);
  if (p <= 0.0) return sampled;
  // Threshold comparison on a per-root hash: root r is sampled iff
  // U(seed, drawKey, r) < p, with U uniform in [0,1). Each root decides
  // locally and independently, as in the distributed model.
  const double threshold = std::min(p, 1.0);
  for (std::size_t r = 0; r < rootActive.size(); ++r) {
    if (!rootActive[r]) continue;
    const std::uint64_t h =
        mix64(seed ^ mix64(drawKey * 0x9e3779b97f4a7c15ULL + r + 1));
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    sampled[r] = u < threshold ? 1 : 0;
  }
  return sampled;
}

std::vector<char> HashCoinPolicy::choose(
    const std::vector<char>& rootActive, double p, std::uint64_t drawKey,
    const std::function<IterPlanStats(const std::vector<char>&)>& /*dryRun*/,
    SpannerResult::RepetitionStats& stats) {
  ++stats.totalDraws;
  return draw(rootActive, p, seed_, drawKey);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

ClusterEngine::ClusterEngine(const Graph& g, std::uint32_t k, Options opts)
    : g_(g), k_(k), opts_(opts), defaultPolicy_(opts.seed) {
  if (k_ == 0) throw std::invalid_argument("ClusterEngine: k must be >= 1");
  nSuper_ = g_.numVertices();
  clusterOf_.resize(nSuper_);
  for (VertexId s = 0; s < nSuper_; ++s) clusterOf_[s] = s;
  alive_.reserve(g_.numEdges());
  for (EdgeId id = 0; id < g_.numEdges(); ++id)
    alive_.push_back(AliveEdge{g_.edge(id).u, g_.edge(id).v, id});
  inSpanner_.assign(g_.numEdges(), 0);
  result_.k = k_;
  result_.inputVertices = g_.numVertices();
  result_.inputEdges = g_.numEdges();
}

std::vector<char> ClusterEngine::activeRoots() const {
  std::vector<char> rootActive(nSuper_, 0);
  for (VertexId s = 0; s < nSuper_; ++s)
    if (clusterOf_[s] != kNoVertex) rootActive[clusterOf_[s]] = 1;
  return rootActive;
}

SpannerResult ClusterEngine::run(const std::vector<EpochSpec>& schedule) {
  for (std::size_t epochIdx = 0; epochIdx < schedule.size(); ++epochIdx) {
    const EpochSpec& spec = schedule[epochIdx];
    std::size_t active = 0;
    for (VertexId s = 0; s < nSuper_; ++s)
      if (clusterOf_[s] != kNoVertex) ++active;
    result_.supernodesPerEpoch.push_back(active);

    double p = spec.prob ? spec.prob(active) : 0.5;
    p = std::clamp(p, 0.0, 1.0);
    result_.samplingProbs.push_back(p);

    for (std::uint32_t j = 0; j < spec.iterations; ++j) {
      const std::uint64_t drawKey = (static_cast<std::uint64_t>(epochIdx) << 32) | j;
      runIteration(p, drawKey);
      ++result_.iterations;
    }
    if (spec.contractAfter) contract();
    ++result_.epochs;
  }
  phase2();

  result_.finalRadius = rCur_;
  // Every discarded edge is spanned within 4r+2 times its weight
  // (Theorem 5.11 cases), except step-C contraction discards, which chain
  // through surviving representatives and pick up at most two cluster
  // traversals per contraction: the 2*sum(r at contraction) correction.
  result_.stretchBound = 4.0 * rCur_ + 2.0 + 2.0 * contractedRadiusSum_;

  result_.edges.clear();
  for (EdgeId id = 0; id < inSpanner_.size(); ++id)
    if (inSpanner_[id]) result_.edges.push_back(id);
  return result_;
}

void ClusterEngine::runIteration(double p, std::uint64_t drawKey) {
  result_.cost.charge(Prim::kSample);
  result_.cost.charge(Prim::kFindMin);
  result_.cost.charge(Prim::kMerge);

  const std::vector<char> rootActive = activeRoots();
  std::size_t numRoots = 0;
  for (char c : rootActive) numRoots += c != 0;
  result_.clustersPerIteration.push_back(numRoots);

  SamplingPolicy* policy = opts_.policy ? opts_.policy : &defaultPolicy_;
  auto dryRun = [this](const std::vector<char>& sampled) {
    return computePlan(sampled).stats;
  };
  const std::vector<char> sampled =
      policy->choose(rootActive, p, drawKey, dryRun, result_.repetition);

  Plan plan = computePlan(sampled);
  applyPlan(plan);
}

ClusterEngine::Plan ClusterEngine::computePlan(const std::vector<char>& sampled) const {
  Plan plan;
  for (char c : sampled) plan.stats.sampledClusters += c != 0;
  for (VertexId s = 0; s < nSuper_; ++s) {
    if (clusterOf_[s] == kNoVertex) continue;
    ++plan.stats.activeSupernodes;
    if (clusterOf_[s] == s) ++plan.stats.totalClusters;
  }

  // Candidate records: for every super-node v whose cluster is unsampled,
  // one entry per incident alive edge, keyed by the neighbouring cluster.
  struct Cand {
    VertexId v;
    VertexId cluster;  // cluster root of the far endpoint
    Weight w;
    EdgeId id;
    std::uint32_t aliveIdx;
  };
  std::vector<Cand> cands;
  cands.reserve(alive_.size());
  auto isProcessing = [&](VertexId s) {
    return clusterOf_[s] != kNoVertex && !sampled[clusterOf_[s]];
  };
  for (std::uint32_t idx = 0; idx < alive_.size(); ++idx) {
    const AliveEdge& ae = alive_[idx];
    const Weight w = g_.edge(ae.id).w;
    if (isProcessing(ae.su))
      cands.push_back(Cand{ae.su, clusterOf_[ae.sv], w, ae.id, idx});
    if (isProcessing(ae.sv))
      cands.push_back(Cand{ae.sv, clusterOf_[ae.su], w, ae.id, idx});
  }
  std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
    if (a.v != b.v) return a.v < b.v;
    if (a.cluster != b.cluster) return a.cluster < b.cluster;
    if (a.w != b.w) return a.w < b.w;
    return a.id < b.id;
  });

  // Track super-nodes that have *no* alive edges: they exit silently, which
  // the candidate sweep below cannot see. Collect them first.
  std::vector<char> hasEdge(nSuper_, 0);
  for (const Cand& c : cands) hasEdge[c.v] = 1;
  for (VertexId v = 0; v < nSuper_; ++v)
    if (isProcessing(v) && !hasEdge[v]) plan.exits.push_back(v);

  std::size_t i = 0;
  while (i < cands.size()) {
    const VertexId v = cands[i].v;
    const std::size_t vBegin = i;
    while (i < cands.size() && cands[i].v == v) ++i;
    const std::size_t vEnd = i;

    // First sweep: the closest sampled neighbour N(v) (min weight, ties by
    // edge id — the group is sorted, so the first edge of a sampled
    // cluster's sub-group is that cluster's minimum).
    Weight bestW = 0;
    EdgeId bestId = kNoEdge;
    VertexId bestCluster = kNoVertex;
    for (std::size_t a = vBegin; a < vEnd;) {
      const VertexId c = cands[a].cluster;
      const Cand& minCand = cands[a];  // sub-group min by (w, id)
      while (a < vEnd && cands[a].cluster == c) ++a;
      if (!sampled[c]) continue;
      if (bestId == kNoEdge || minCand.w < bestW ||
          (minCand.w == bestW && minCand.id < bestId)) {
        bestW = minCand.w;
        bestId = minCand.id;
        bestCluster = c;
      }
    }

    // Second sweep: per-cluster actions.
    for (std::size_t a = vBegin; a < vEnd;) {
      const VertexId c = cands[a].cluster;
      const std::size_t gBegin = a;
      while (a < vEnd && cands[a].cluster == c) ++a;
      const Cand& minCand = cands[gBegin];
      bool addAndDiscard;
      if (bestId == kNoEdge) {
        addAndDiscard = true;  // Step B4: no sampled neighbour at all
      } else if (c == bestCluster) {
        addAndDiscard = true;  // Step B3: the joined cluster's group
      } else {
        // Step B3, strictly-lighter rule (see Options::strictLighterRule).
        addAndDiscard = opts_.strictLighterRule && minCand.w < bestW;
      }
      if (addAndDiscard) {
        plan.spannerAdds.push_back(minCand.id);
        for (std::size_t x = gBegin; x < a; ++x)
          plan.deadAliveIdx.push_back(cands[x].aliveIdx);
      }
    }

    if (bestId == kNoEdge)
      plan.exits.push_back(v);
    else
      plan.joins.emplace_back(v, bestCluster);
  }

  // Unique added edges for the policy statistics.
  {
    std::vector<EdgeId> adds = plan.spannerAdds;
    std::sort(adds.begin(), adds.end());
    adds.erase(std::unique(adds.begin(), adds.end()), adds.end());
    std::size_t newAdds = 0;
    for (EdgeId id : adds) newAdds += inSpanner_[id] ? 0 : 1;
    plan.stats.edgesAdded = newAdds;
  }
  return plan;
}

void ClusterEngine::applyPlan(const Plan& plan) {
  for (const auto& [v, root] : plan.joins) clusterOf_[v] = root;
  for (VertexId v : plan.exits) clusterOf_[v] = kNoVertex;
  for (EdgeId id : plan.spannerAdds) inSpanner_[id] = 1;

  std::vector<char> dead(alive_.size(), 0);
  for (std::uint32_t idx : plan.deadAliveIdx) dead[idx] = 1;

  // Step B6: drop intra-cluster edges of the new clustering.
  std::vector<AliveEdge> next;
  next.reserve(alive_.size());
  for (std::uint32_t idx = 0; idx < alive_.size(); ++idx) {
    if (dead[idx]) continue;
    const AliveEdge& ae = alive_[idx];
    const VertexId cu = clusterOf_[ae.su];
    const VertexId cv = clusterOf_[ae.sv];
    assert(cu != kNoVertex && cv != kNoVertex &&
           "Lemma 5.6 invariant: alive edges have clustered endpoints");
    if (cu == cv) continue;
    next.push_back(ae);
  }
  alive_ = std::move(next);
#ifndef NDEBUG
  checkInvariant();  // Lemma 5.6
#endif

  // Lemma 5.8: one growth iteration adds 2*r_super + 1 to the radius.
  rCur_ += 2.0 * rSuper_ + 1.0;
}

void ClusterEngine::contract() {
  result_.cost.charge(Prim::kContraction);

  std::vector<VertexId> newId(nSuper_, kNoVertex);
  std::size_t n2 = 0;
  for (VertexId s = 0; s < nSuper_; ++s)
    if (clusterOf_[s] == s) newId[s] = static_cast<VertexId>(n2++);

  // Relabel to cluster roots; keep the min-weight representative per pair
  // (Step C); all other parallel super-edges are silently discarded.
  struct Best {
    Weight w;
    std::uint32_t aliveIdx;
  };
  std::unordered_map<std::uint64_t, Best> best;
  best.reserve(alive_.size());
  for (std::uint32_t idx = 0; idx < alive_.size(); ++idx) {
    AliveEdge& ae = alive_[idx];
    assert(clusterOf_[ae.su] != kNoVertex && clusterOf_[ae.sv] != kNoVertex);
    ae.su = newId[clusterOf_[ae.su]];
    ae.sv = newId[clusterOf_[ae.sv]];
    assert(ae.su != ae.sv && "intra-cluster edges must be gone before contraction");
    VertexId a = ae.su, b = ae.sv;
    if (a > b) std::swap(a, b);
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    const Weight w = g_.edge(ae.id).w;
    auto [it, inserted] = best.try_emplace(key, Best{w, idx});
    if (!inserted && (w < it->second.w ||
                      (w == it->second.w && ae.id < alive_[it->second.aliveIdx].id)))
      it->second = Best{w, idx};
  }
  std::vector<char> keep(alive_.size(), 0);
  for (const auto& [key, b] : best) keep[b.aliveIdx] = 1;
  std::vector<AliveEdge> next;
  next.reserve(best.size());
  for (std::uint32_t idx = 0; idx < alive_.size(); ++idx)
    if (keep[idx]) next.push_back(alive_[idx]);
  alive_ = std::move(next);

  nSuper_ = n2;
  clusterOf_.resize(nSuper_);
  for (VertexId s = 0; s < nSuper_; ++s) clusterOf_[s] = s;

  contractedRadiusSum_ += rCur_;
  rSuper_ = rCur_;
}

void ClusterEngine::phase2() {
  result_.cost.charge(Prim::kFindMin);

  // Group alive edges by (original endpoint, opposite cluster); keep the
  // minimum per group, discard everything else.
  struct Best {
    Weight w;
    EdgeId id;
  };
  std::unordered_map<std::uint64_t, Best> best;
  best.reserve(2 * alive_.size());
  auto update = [&](VertexId origV, VertexId cluster, Weight w, EdgeId id) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(origV) << 32) | cluster;
    auto [it, inserted] = best.try_emplace(key, Best{w, id});
    if (!inserted &&
        (w < it->second.w || (w == it->second.w && id < it->second.id)))
      it->second = Best{w, id};
  };
  for (const AliveEdge& ae : alive_) {
    const Edge& e = g_.edge(ae.id);
    const VertexId cu = clusterOf_[ae.su];
    const VertexId cv = clusterOf_[ae.sv];
    assert(cu != kNoVertex && cv != kNoVertex);
    update(e.u, cv, e.w, ae.id);
    update(e.v, cu, e.w, ae.id);
  }
  for (const auto& [key, b] : best) inSpanner_[b.id] = 1;
  alive_.clear();
}

void ClusterEngine::checkInvariant() const {
  for (const AliveEdge& ae : alive_) {
    (void)ae;
    assert(clusterOf_[ae.su] != kNoVertex && clusterOf_[ae.sv] != kNoVertex);
  }
}

std::vector<EpochSpec> tradeoffSchedule(std::size_t n, std::uint32_t k, std::uint32_t t) {
  if (t == 0) t = 1;
  std::vector<EpochSpec> schedule;
  if (k <= 1) return schedule;
  const double lk = std::log(static_cast<double>(k));
  const double lt = std::log(static_cast<double>(t) + 1.0);
  const auto l = static_cast<std::size_t>(std::ceil(lk / lt - 1e-9));
  const double dn = static_cast<double>(std::max<std::size_t>(n, 2));
  for (std::size_t i = 1; i <= std::max<std::size_t>(l, 1); ++i) {
    // p_i = n^{-(t+1)^{i-1}/k}, exponent clamped at 1 (p >= 1/n always).
    double expo = std::pow(static_cast<double>(t) + 1.0,
                           static_cast<double>(i - 1)) /
                  static_cast<double>(k);
    expo = std::min(expo, 1.0);
    const double p = std::pow(dn, -expo);
    EpochSpec spec;
    spec.iterations = t;
    spec.prob = [p](std::size_t) { return p; };
    spec.contractAfter = true;
    schedule.push_back(spec);
  }
  return schedule;
}

}  // namespace mpcspan
