#include "spanner/sqrtk.hpp"

#include <cmath>

#include "spanner/baswana_sen.hpp"

namespace mpcspan {

SpannerResult buildSqrtKSpanner(const Graph& g, const SqrtKParams& params) {
  if (params.k <= 1) return identitySpanner(g, "sqrtk");

  const auto t = static_cast<std::uint32_t>(
      std::max(1.0, std::ceil(std::sqrt(static_cast<double>(params.k)))));
  const double p1 =
      std::pow(static_cast<double>(std::max<std::size_t>(g.numVertices(), 2)),
               -1.0 / static_cast<double>(params.k));

  // Epoch 1: t iterations of [BS07] at n^{-1/k}, then contract (the
  // super-graph G-hat of Section 3).
  EpochSpec first;
  first.iterations = t;
  first.prob = [p1](std::size_t) { return p1; };
  first.contractAfter = true;

  // Epoch 2: a (2t-1)-spanner on G-hat — t-1 iterations at probability
  // n-hat^{-1/t}, where n-hat is the contracted size (known only at run
  // time, hence the callback form).
  EpochSpec second;
  second.iterations = t > 1 ? t - 1 : 1;
  second.prob = [t](std::size_t nHat) {
    return std::pow(static_cast<double>(std::max<std::size_t>(nHat, 2)),
                    -1.0 / static_cast<double>(t));
  };
  second.contractAfter = false;

  ClusterEngine::Options opts;
  opts.seed = params.seed;
  opts.policy = params.policy;
  ClusterEngine engine(g, params.k, opts);
  SpannerResult result = engine.run({first, second});
  result.algorithm = "sqrtk";
  result.t = t;
  return result;
}

}  // namespace mpcspan
