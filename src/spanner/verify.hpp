// Spanner verification: the empirical side of every stretch/size theorem.
//
// A subgraph H of G is a c-spanner iff for every edge (u,v,w) of G,
// dist_H(u,v) <= c*w — per-edge certificates imply the pairwise property by
// concatenation, but we audit both: per-edge by bounded Dijkstra on H
// grouped by source, pairwise by full Dijkstra on G and H from sampled
// sources.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace mpcspan {

struct VerifyOptions {
  /// Cap on the number of non-spanner edges audited (0 = all).
  std::size_t maxEdgeChecks = 0;
  /// Dijkstra sources for the pairwise audit (0 disables it).
  std::size_t pairSources = 8;
  std::uint64_t seed = 7;
};

struct StretchReport {
  bool spanning = false;        // same connected components as G
  double maxEdgeStretch = 0.0;  // max over audited edges of dist_H/weight
  double meanEdgeStretch = 0.0;
  std::size_t edgesChecked = 0;
  double maxPairStretch = 0.0;  // max over audited (source, target) pairs
  std::size_t pairsChecked = 0;
  std::size_t violations = 0;   // audited edges with stretch > boundHint
};

/// Audits `spannerEdges` against g. `boundHint` is only used to count
/// violations (pass the algorithm's certified stretchBound); measurement is
/// reported regardless.
StretchReport verifySpanner(const Graph& g, const std::vector<EdgeId>& spannerEdges,
                            double boundHint, const VerifyOptions& opts = {});

/// Max stretch over sampled vertex pairs only (cheaper; used by benches).
double measurePairStretch(const Graph& g, const std::vector<EdgeId>& spannerEdges,
                          std::size_t sources, std::uint64_t seed);

}  // namespace mpcspan
