// Section 5: the general round/stretch trade-off algorithm (Theorem 1.1 /
// Theorem 5.15). Parameterized by t (growth iterations per epoch):
//
//   l = ceil(log k / log(t+1)) epochs; epoch i runs t iterations of
//   cluster-vertex growth at probability n^{-(t+1)^{i-1}/k} on the quotient
//   graph, then contracts. Phase 2 finishes the remaining edges.
//
//   rounds  O(t * log k / log(t+1))
//   stretch O(k^s),  s = log(2t+1)/log(t+1)
//   size    O(n^{1+1/k} * (t + log k)) in expectation
//
// t=1 recovers Section 4 (stretch k^{log2 3}); t=k recovers Baswana–Sen;
// t=log k is the paper's sweet spot (k^{1+o(1)} stretch in O(log^2 k /
// log log k) iterations) used for the APSP application.
#pragma once

#include "graph/graph.hpp"
#include "spanner/engine.hpp"
#include "spanner/types.hpp"

namespace mpcspan {

struct TradeoffParams {
  std::uint32_t k = 8;
  /// Growth iterations per epoch; 0 selects the paper's t = ceil(log2 k).
  std::uint32_t t = 0;
  std::uint64_t seed = 1;
  SamplingPolicy* policy = nullptr;
};

SpannerResult buildTradeoffSpanner(const Graph& g, const TradeoffParams& params);

/// The paper's stretch exponent s = log(2t+1)/log(t+1).
double tradeoffStretchExponent(std::uint32_t t);

/// Theoretical stretch k^s for reporting (the engine additionally certifies
/// an exact run-specific bound in SpannerResult::stretchBound).
double tradeoffTheoreticalStretch(std::uint32_t k, std::uint32_t t);

}  // namespace mpcspan
