#include "spanner/tradeoff.hpp"

#include <cmath>

#include "spanner/baswana_sen.hpp"

namespace mpcspan {

double tradeoffStretchExponent(std::uint32_t t) {
  const double td = static_cast<double>(t == 0 ? 1 : t);
  return std::log(2.0 * td + 1.0) / std::log(td + 1.0);
}

double tradeoffTheoreticalStretch(std::uint32_t k, std::uint32_t t) {
  return std::pow(static_cast<double>(k), tradeoffStretchExponent(t));
}

SpannerResult buildTradeoffSpanner(const Graph& g, const TradeoffParams& params) {
  if (params.k <= 1) return identitySpanner(g, "tradeoff");

  std::uint32_t t = params.t;
  if (t == 0)
    t = static_cast<std::uint32_t>(
        std::max(1.0, std::ceil(std::log2(static_cast<double>(params.k)))));

  ClusterEngine::Options opts;
  opts.seed = params.seed;
  opts.policy = params.policy;
  ClusterEngine engine(g, params.k, opts);
  SpannerResult result = engine.run(tradeoffSchedule(g.numVertices(), params.k, t));
  result.algorithm = "tradeoff";
  result.t = t;
  return result;
}

}  // namespace mpcspan
