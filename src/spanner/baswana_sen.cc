#include "spanner/baswana_sen.hpp"

#include <cmath>
#include <numeric>

namespace mpcspan {

SpannerResult identitySpanner(const Graph& g, const char* algorithm) {
  SpannerResult r;
  r.algorithm = algorithm;
  r.k = 1;
  r.inputVertices = g.numVertices();
  r.inputEdges = g.numEdges();
  r.edges.resize(g.numEdges());
  std::iota(r.edges.begin(), r.edges.end(), 0);
  r.stretchBound = 1.0;
  return r;
}

SpannerResult buildBaswanaSen(const Graph& g, const BaswanaSenParams& params) {
  if (params.k <= 1) return identitySpanner(g, "baswana-sen");

  const double p =
      std::pow(static_cast<double>(std::max<std::size_t>(g.numVertices(), 2)),
               -1.0 / static_cast<double>(params.k));
  EpochSpec epoch;
  epoch.iterations = params.k - 1;
  epoch.prob = [p](std::size_t) { return p; };
  epoch.contractAfter = false;

  ClusterEngine::Options opts;
  opts.seed = params.seed;
  opts.policy = params.policy;
  ClusterEngine engine(g, params.k, opts);
  SpannerResult result = engine.run({epoch});
  result.algorithm = "baswana-sen";
  result.t = params.k;
  // Without contractions the radius recurrence gives r = k-1 exactly, and
  // the classical analysis certifies stretch 2k-1 (tighter than the generic
  // engine bound).
  result.stretchBound =
      std::min(result.stretchBound, 2.0 * static_cast<double>(params.k) - 1.0);
  return result;
}

}  // namespace mpcspan
