#include "spanner/types.hpp"

#include <cmath>

namespace mpcspan {

double SpannerResult::sizeRatio(double denomExtra) const {
  if (inputVertices == 0 || k == 0) return 0.0;
  const double n = static_cast<double>(inputVertices);
  const double denom = std::pow(n, 1.0 + 1.0 / static_cast<double>(k)) * denomExtra;
  return denom > 0 ? static_cast<double>(edges.size()) / denom : 0.0;
}

}  // namespace mpcspan
