// ClusterEngine — the shared cluster-growth machinery behind all of the
// paper's spanner constructions (Sections 3, 4, 5 and the Baswana–Sen
// baseline they generalize).
//
// Every algorithm is an *epoch schedule*: epoch i runs `iterations`
// rounds of cluster-vertex growth at sampling probability p_i on the current
// quotient graph (Section 5, Step B), optionally followed by a contraction
// (Step C). The engine executes the schedule with snapshot-parallel
// iteration semantics (all per-super-node decisions are computed against the
// iteration-start edge set, then applied atomically — the MPC execution
// order), maintains Lemma 5.6's invariant that every alive edge has both
// endpoints inside current clusters, tracks the weighted-stretch-radius
// recurrence of Lemma 5.8 exactly, and finishes with Phase 2.
//
// Instantiations:
//   Baswana–Sen:      1 epoch, k-1 iterations, p = n^{-1/k}, no contraction.
//   Section 3 (√k):   2 epochs of ~√k iterations; second probability drawn
//                     from the contracted graph size.
//   Section 4 (t=1):  log2(k) epochs, 1 iteration each, p_i = n^{-2^{i-1}/k}.
//   Section 5:        l = ceil(log k/log(t+1)) epochs, t iterations each,
//                     p_i = n^{-(t+1)^{i-1}/k}.
//
// Sampling is deterministic per (seed, epoch, iteration, cluster root): each
// root flips an independent hash-coin. This matches the distributed model
// (each cluster center flips locally, no coordination) and makes every run
// reproducible. A SamplingPolicy hook lets Theorem 8.1's Congested Clique
// parallel-repetition scheme replace the single draw with O(log n) draws and
// a dry-run selection.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "spanner/types.hpp"
#include "util/rng.hpp"

namespace mpcspan {

/// One epoch of the schedule.
struct EpochSpec {
  std::uint32_t iterations = 1;
  /// Sampling probability for all iterations of this epoch, as a function of
  /// the number of active super-nodes at epoch start (Section 3's second
  /// phase re-derives it from the contracted size; the others ignore the
  /// argument).
  std::function<double(std::size_t activeSupernodes)> prob;
  bool contractAfter = true;
};

/// Outcome statistics of one iteration plan; consumed by sampling policies.
struct IterPlanStats {
  std::size_t sampledClusters = 0;
  std::size_t edgesAdded = 0;
  std::size_t totalClusters = 0;
  std::size_t activeSupernodes = 0;
};

/// Chooses which cluster roots are sampled in one iteration.
/// `rootActive[r]` marks current roots; the policy must return a vector of
/// the same size with sampled[r] => rootActive[r]. `dryRun` evaluates the
/// iteration plan a choice would produce, without committing it.
class SamplingPolicy {
 public:
  virtual ~SamplingPolicy() = default;
  virtual std::vector<char> choose(
      const std::vector<char>& rootActive, double p, std::uint64_t drawKey,
      const std::function<IterPlanStats(const std::vector<char>&)>& dryRun,
      SpannerResult::RepetitionStats& stats) = 0;
};

/// Default: one deterministic hash-coin draw per root (standard MPC run).
class HashCoinPolicy final : public SamplingPolicy {
 public:
  explicit HashCoinPolicy(std::uint64_t seed) : seed_(seed) {}
  std::vector<char> choose(
      const std::vector<char>& rootActive, double p, std::uint64_t drawKey,
      const std::function<IterPlanStats(const std::vector<char>&)>& dryRun,
      SpannerResult::RepetitionStats& stats) override;

  /// The single-draw primitive shared with the repetition policy.
  static std::vector<char> draw(const std::vector<char>& rootActive, double p,
                                std::uint64_t seed, std::uint64_t drawKey);

 private:
  std::uint64_t seed_;
};

class ClusterEngine {
 public:
  struct Options {
    std::uint64_t seed = 1;
    /// Optional override of the sampling mechanism (Theorem 8.1).
    SamplingPolicy* policy = nullptr;
    /// Ablation hook: Step B3's rule that a joining super-node also adds
    /// the minimum edge to every neighbouring cluster *strictly lighter*
    /// than its join edge. This is what makes the construction correct on
    /// weighted graphs; disabling it (bench_a1_ablation) voids the
    /// certified stretch bound for weighted inputs.
    bool strictLighterRule = true;
  };

  ClusterEngine(const Graph& g, std::uint32_t k, Options opts);

  /// Runs phase 1 (the epoch schedule) followed by phase 2, and returns the
  /// result. Must be called exactly once.
  SpannerResult run(const std::vector<EpochSpec>& schedule);

 private:
  struct AliveEdge {
    VertexId su;  // current super-node containing g.edge(id).u
    VertexId sv;  // current super-node containing g.edge(id).v
    EdgeId id;
  };

  struct Plan {
    std::vector<std::pair<VertexId, VertexId>> joins;  // (super-node, new root)
    std::vector<VertexId> exits;
    std::vector<EdgeId> spannerAdds;
    std::vector<std::uint32_t> deadAliveIdx;  // indices into alive_
    IterPlanStats stats;
  };

  void runIteration(double p, std::uint64_t drawKey);
  Plan computePlan(const std::vector<char>& sampled) const;
  void applyPlan(const Plan& plan);
  void removeIntraClusterEdges();
  void contract();
  void phase2();
  std::vector<char> activeRoots() const;
  void checkInvariant() const;

  const Graph& g_;
  std::uint32_t k_;
  Options opts_;
  HashCoinPolicy defaultPolicy_;

  std::size_t nSuper_ = 0;
  std::vector<AliveEdge> alive_;
  std::vector<VertexId> clusterOf_;  // super-node -> cluster root (kNoVertex = exited)
  std::vector<char> inSpanner_;      // per input edge id

  // Weighted-stretch-radius recurrence (Lemma 5.8).
  double rSuper_ = 0;          // internal radius of current super-nodes
  double rCur_ = 0;            // radius of the current clustering
  double contractedRadiusSum_ = 0;  // sum of r at each contraction (chain bound)

  SpannerResult result_;
};

/// Builds the epoch schedule of the Section 5 trade-off algorithm.
std::vector<EpochSpec> tradeoffSchedule(std::size_t n, std::uint32_t k, std::uint32_t t);

}  // namespace mpcspan
