// Substrate-neutral pieces of one spanner growth iteration (Section 6 /
// Lemma 6.1): the record types of the two find-minimum supersteps, the
// host-side candidate sweep, and the deterministic group-min/join reduction
// that every substrate kernel shares.
//
// Three kernels consume this module and must produce bit-identical
// decisions on the same input:
//   - referenceIterationKernel (host, mpc/dist_iteration.hpp),
//   - distIterationKernel      (MPC RoundEngine, real sample sorts),
//   - cliqueIterationKernel    (clique RoundEngine, real label round).
// The shared reduction (weight, then edge id tie-break) is what makes that
// equivalence well-defined.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/thread_pool.hpp"

namespace mpcspan {

/// Minimum-weight edge of a (super-node, cluster) group.
struct GroupMinEdge {
  VertexId v = 0;        // processing super-node
  VertexId cluster = 0;  // neighbouring cluster root
  Weight w = 0;
  EdgeId id = 0;

  friend bool operator==(const GroupMinEdge&, const GroupMinEdge&) = default;
};

/// The join decision of one processing super-node (Step B3).
struct ClosestSampled {
  VertexId v = 0;
  VertexId cluster = 0;  // N(v)
  Weight w = 0;
  EdgeId id = 0;

  friend bool operator==(const ClosestSampled&, const ClosestSampled&) = default;
};

struct DistIterationResult {
  /// (1) minimum-weight edge per (super-node, cluster), sorted by (v, cluster).
  std::vector<GroupMinEdge> groupMins;
  /// (2) sorted by v; only super-nodes with >= 1 sampled neighbour appear.
  std::vector<ClosestSampled> joins;
  std::size_t roundsUsed = 0;
};

/// Candidate tuple of the find-minimum supersteps (trivially copyable — it
/// is shipped verbatim between machines by the MPC kernel).
struct CandTuple {
  std::uint64_t key;  // (v << 32) | cluster
  double w;
  std::uint32_t id;
};

inline std::uint64_t packGroupKey(VertexId v, VertexId cluster) {
  return (static_cast<std::uint64_t>(v) << 32) | cluster;
}

inline bool betterCand(const CandTuple& a, const CandTuple& b) {
  return a.w < b.w || (a.w == b.w && a.id < b.id);
}

/// Candidate edges: one per (processing super-node, incident alive edge).
/// The label joins (attaching superOf/clusterOf to edge tuples) are the
/// sort-based "Clustering" superstep of Lemma 6.1, charged separately by
/// the substrates; here they are applied host-side. When a `pool` is given
/// the edge sweep runs chunk-parallel on it — chunking depends only on the
/// edge count, so the output order equals the serial edge-id order for
/// every thread count.
std::vector<CandTuple> buildCandidates(const Graph& g,
                                       const std::vector<VertexId>& superOf,
                                       const std::vector<VertexId>& clusterOf,
                                       const std::vector<char>& sampled,
                                       const std::vector<char>* alive = nullptr,
                                       runtime::ThreadPool* pool = nullptr);

/// Deterministic reduction of raw candidates into per-(v, cluster) group
/// minima and per-v closest sampled clusters, with (weight, edge id)
/// tie-breaking. roundsUsed is left 0 — substrate kernels fill it in.
DistIterationResult reduceCandidates(const std::vector<CandTuple>& cands,
                                     const std::vector<char>& sampled);

}  // namespace mpcspan
