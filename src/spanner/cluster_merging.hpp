// Section 4: the cluster-merging algorithm — the t=1 extreme of the general
// trade-off. log2(k) epochs; in epoch i clusters are sampled with
// probability n^{-2^{i-1}/k} (doubly-exponentially decreasing), unsampled
// clusters merge whole into sampled neighbours, and the graph contracts
// after every epoch. Stretch O(k^{log2 3}), expected size
// O(n^{1+1/k} log k), O(log k) iterations (Theorem 4.14).
#pragma once

#include "graph/graph.hpp"
#include "spanner/engine.hpp"
#include "spanner/types.hpp"

namespace mpcspan {

struct ClusterMergingParams {
  std::uint32_t k = 8;
  std::uint64_t seed = 1;
  SamplingPolicy* policy = nullptr;
};

SpannerResult buildClusterMergingSpanner(const Graph& g,
                                         const ClusterMergingParams& params);

}  // namespace mpcspan
