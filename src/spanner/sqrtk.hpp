// Section 3: the near-optimal two-phase cluster-contraction algorithm.
// Runs t = ceil(sqrt(k)) Baswana–Sen iterations at probability n^{-1/k},
// contracts the clustering into a super-graph, then runs a full
// (2t'-1)-spanner construction (Baswana–Sen as a black box, t' = t) on the
// contracted graph with probability derived from the *contracted* size.
// O(sqrt(k)) rounds, stretch O(k), size O(sqrt(k) * n^{1+1/k}).
//
// Note: the paper's Section 3 text sets "t' = sqrt(n)" in two places; that
// is a typo for sqrt(k) (only sqrt(k) yields the claimed O(sqrt k) rounds
// and O(k)=O(t*t') stretch, and the surrounding text uses k). We implement
// t = t' = ceil(sqrt(k)).
#pragma once

#include "graph/graph.hpp"
#include "spanner/engine.hpp"
#include "spanner/types.hpp"

namespace mpcspan {

struct SqrtKParams {
  std::uint32_t k = 9;
  std::uint64_t seed = 1;
  SamplingPolicy* policy = nullptr;
};

SpannerResult buildSqrtKSpanner(const Graph& g, const SqrtKParams& params);

}  // namespace mpcspan
