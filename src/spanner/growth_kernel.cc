#include "spanner/growth_kernel.hpp"

#include <algorithm>
#include <unordered_map>

namespace mpcspan {

namespace {

/// Fixed-size edge chunk for the parallel candidate sweep: depends only on
/// the edge count, never the thread count.
constexpr std::size_t kCandChunk = 8192;

}  // namespace

std::vector<CandTuple> buildCandidates(const Graph& g,
                                       const std::vector<VertexId>& superOf,
                                       const std::vector<VertexId>& clusterOf,
                                       const std::vector<char>& sampled,
                                       const std::vector<char>* alive,
                                       runtime::ThreadPool* pool) {
  auto processing = [&](VertexId s) {
    return clusterOf[s] != kNoVertex && !sampled[clusterOf[s]];
  };
  auto sweep = [&](EdgeId begin, EdgeId end, std::vector<CandTuple>& out) {
    for (EdgeId id = begin; id < end; ++id) {
      if (alive && !(*alive)[id]) continue;
      const Edge& e = g.edge(id);
      const VertexId su = superOf[e.u];
      const VertexId sv = superOf[e.v];
      if (su == kNoVertex || sv == kNoVertex) continue;
      const VertexId cu = clusterOf[su];
      const VertexId cv = clusterOf[sv];
      if (cu == kNoVertex || cv == kNoVertex || cu == cv) continue;
      if (processing(su)) out.push_back({packGroupKey(su, cv), e.w, id});
      if (processing(sv)) out.push_back({packGroupKey(sv, cu), e.w, id});
    }
  };

  const std::size_t m = g.numEdges();
  if (!pool || pool->numThreads() <= 1 || m <= kCandChunk) {
    std::vector<CandTuple> cands;
    cands.reserve(2 * m);
    sweep(0, static_cast<EdgeId>(m), cands);
    return cands;
  }

  const std::size_t numChunks = (m + kCandChunk - 1) / kCandChunk;
  std::vector<std::vector<CandTuple>> parts(numChunks);
  pool->parallelForChunks(m, kCandChunk, [&](std::size_t begin, std::size_t end) {
    auto& out = parts[begin / kCandChunk];
    out.reserve(2 * (end - begin));
    sweep(static_cast<EdgeId>(begin), static_cast<EdgeId>(end), out);
  });
  std::vector<CandTuple> cands;
  std::size_t total = 0;
  for (const auto& part : parts) total += part.size();
  cands.reserve(total);
  for (const auto& part : parts) cands.insert(cands.end(), part.begin(), part.end());
  return cands;
}

DistIterationResult reduceCandidates(const std::vector<CandTuple>& cands,
                                     const std::vector<char>& sampled) {
  DistIterationResult out;

  std::unordered_map<std::uint64_t, CandTuple> groupBest;
  groupBest.reserve(cands.size());
  for (const CandTuple& c : cands) {
    auto [it, inserted] = groupBest.try_emplace(c.key, c);
    if (!inserted && betterCand(c, it->second)) it->second = c;
  }
  out.groupMins.reserve(groupBest.size());
  for (const auto& [key, c] : groupBest)
    out.groupMins.push_back(GroupMinEdge{static_cast<VertexId>(key >> 32),
                                         static_cast<VertexId>(key & 0xffffffffu),
                                         c.w, c.id});
  std::sort(out.groupMins.begin(), out.groupMins.end(),
            [](const GroupMinEdge& a, const GroupMinEdge& b) {
              if (a.v != b.v) return a.v < b.v;
              return a.cluster < b.cluster;
            });

  std::unordered_map<VertexId, ClosestSampled> joinBest;
  for (const GroupMinEdge& gm : out.groupMins) {
    if (!sampled[gm.cluster]) continue;
    const ClosestSampled cs{gm.v, gm.cluster, gm.w, gm.id};
    auto [it, inserted] = joinBest.try_emplace(gm.v, cs);
    if (!inserted &&
        (cs.w < it->second.w || (cs.w == it->second.w && cs.id < it->second.id)))
      it->second = cs;
  }
  out.joins.reserve(joinBest.size());
  for (const auto& [v, cs] : joinBest) out.joins.push_back(cs);
  std::sort(out.joins.begin(), out.joins.end(),
            [](const ClosestSampled& a, const ClosestSampled& b) { return a.v < b.v; });
  return out;
}

}  // namespace mpcspan
