// The worker-to-worker peer exchange: resident STEP rounds over the mesh
// must be bit-identical to the coordinator-relay reference (rounds, ledger,
// kernel state, resident inbox contents) across shard and thread counts on
// all three topologies; a peer death mid-exchange surfaces ShardError for
// everyone with no zombies and no partial inbox merge; and corrupt section
// frames are rejected without integer overflow (WireReader / section-merge
// hardening).
#include "runtime/shard/peer_mesh.hpp"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "runtime/round_engine.hpp"
#include "runtime/shard/sharded_engine.hpp"
#include "runtime/shard/wire.hpp"

namespace mpcspan {
namespace {

using runtime::CliqueTopology;
using runtime::Delivery;
using runtime::EngineConfig;
using runtime::KernelCtx;
using runtime::KernelId;
using runtime::Message;
using runtime::MpcTopology;
using runtime::PramTopology;
using runtime::RoundEngine;
using runtime::StepKernel;
using runtime::Topology;
using runtime::shard::mergeSectionRows;
using runtime::shard::ShardError;
using runtime::shard::WireReader;
using runtime::shard::WireWriter;

/// Deterministic cross-shard-heavy kernel: per-machine owned state feeds the
/// next round's emissions, so any divergence in routing or merge order
/// compounds across rounds instead of cancelling out. args[0] picks the
/// topology-legal traffic shape.
class MeshProbeKernel final : public StepKernel {
 public:
  static std::string kernelName() { return "test.meshprobe"; }

  std::vector<Message> step(const KernelCtx& ctx) override {
    ensureSized(ctx);
    const Word mode = ctx.args.empty() ? 0 : ctx.args[0];
    const std::size_t n = ctx.numMachines;
    const std::size_t m = ctx.machine;
    Word sum = 1;
    for (const Delivery& d : ctx.inbox) sum += 3 * d.src + d.payload.front();
    state_[m] += sum;
    const Word r = ++round_[m];
    std::vector<Message> out;
    if (mode == 0) {
      // MPC: mixed single-word (inline payload) and multi-word fan-out.
      out.push_back({(m + r) % n, {state_[m], state_[m] ^ m, r}});
      out.push_back({(m * 3 + 1) % n, {state_[m]}});
      if (m % 2 == 0) out.push_back({(m + n - 1) % n, {r, static_cast<Word>(m)}});
    } else if (mode == 1) {
      // Clique: one single-word message per ordered pair.
      out.push_back({(m + r) % n, {state_[m]}});
    } else {
      // PRAM: concurrent single-word writes, priority-CRCW resolved.
      out.push_back({(m * 5 + r) % 4, {state_[m]}});
    }
    return out;
  }

  std::vector<Word> fetch(const KernelCtx& ctx) override {
    ensureSized(ctx);
    return {state_[ctx.machine], round_[ctx.machine]};
  }

 private:
  void ensureSized(const KernelCtx& ctx) {
    std::call_once(sized_, [&] {
      state_.resize(ctx.numMachines);
      round_.resize(ctx.numMachines);
    });
  }

  std::once_flag sized_;
  std::vector<Word> state_;
  std::vector<Word> round_;
};

std::unique_ptr<Topology> makeTopology(int mode) {
  if (mode == 0) return std::make_unique<MpcTopology>(64);
  if (mode == 1) return std::make_unique<CliqueTopology>();
  return std::make_unique<PramTopology>();
}

/// Everything observable after a kernel-round workload.
struct Result {
  std::vector<std::vector<Word>> fetched;
  std::vector<Word> flatInboxes;
  std::size_t rounds = 0, words = 0, maxRound = 0;

  friend bool operator==(const Result&, const Result&) = default;
};

Result runWorkload(int mode, std::size_t threads, std::size_t shards,
                   int peer) {
  const std::size_t n = 12;
  EngineConfig cfg{n, threads, shards, /*resident=*/1, /*peerExchange=*/peer};
  RoundEngine eng(cfg, makeTopology(mode));
  const KernelId k = eng.registerKernel(
      MeshProbeKernel::kernelName(),
      [] { return std::make_unique<MeshProbeKernel>(); });
  for (int i = 0; i < 5; ++i) eng.step(k, {static_cast<Word>(mode)});
  // One free data-placement round rides the same exchange machinery.
  eng.stepShuffle(k, {static_cast<Word>(mode)});
  Result res;
  res.fetched = eng.fetchKernel(k);
  for (const auto& inbox : eng.snapshotInboxes())
    for (const Delivery& d : inbox) {
      res.flatInboxes.push_back(d.src);
      res.flatInboxes.insert(res.flatInboxes.end(), d.payload.begin(),
                             d.payload.end());
    }
  res.rounds = eng.rounds();
  res.words = eng.totalWordsSent();
  res.maxRound = eng.maxRoundWords();
  return res;
}

TEST(PeerExchange, BitIdenticalToRelayAndInProcessOnAllTopologies) {
  for (const int mode : {0, 1, 2}) {
    const Result base = runWorkload(mode, 1, 1, 1);
    EXPECT_EQ(base.rounds, 5u) << "mode " << mode;
    for (const std::size_t shards : {2u, 3u, 4u})
      for (const int peer : {0, 1})
        EXPECT_EQ(base, runWorkload(mode, 1, shards, peer))
            << "mode " << mode << ", " << shards << " shards, peer=" << peer;
    EXPECT_EQ(base, runWorkload(mode, 2, 4, 1)) << "mode " << mode
                                                << ", 2 threads x 4 shards";
  }
}

TEST(PeerExchange, BackendSelectionFollowsConfigAndEnv) {
  {
    RoundEngine eng(EngineConfig{8, 1, 2, 1, 1},
                    std::make_unique<MpcTopology>(16));
    EXPECT_TRUE(eng.peerMeshShards());
  }
  {
    RoundEngine eng(EngineConfig{8, 1, 2, 1, 0},
                    std::make_unique<MpcTopology>(16));
    EXPECT_FALSE(eng.peerMeshShards());
  }
  {
    // The legacy fork-per-round backend never runs the mesh.
    RoundEngine eng(EngineConfig{8, 1, 2, 0, 1},
                    std::make_unique<MpcTopology>(16));
    EXPECT_FALSE(eng.peerMeshShards());
  }
  ASSERT_EQ(::setenv("MPCSPAN_PEER_EXCHANGE", "0", 1), 0);
  {
    RoundEngine eng(EngineConfig{8, 1, 2}, std::make_unique<MpcTopology>(16));
    EXPECT_FALSE(eng.peerMeshShards());
  }
  ASSERT_EQ(::unsetenv("MPCSPAN_PEER_EXCHANGE"), 0);
  {
    RoundEngine eng(EngineConfig{8, 1, 2}, std::make_unique<MpcTopology>(16));
    EXPECT_TRUE(eng.peerMeshShards());
  }
}

TEST(PeerExchange, CapacityAbortConsumesNoPeerDataAndKeepsWorkersAlive) {
  // A validation failure aborts after the peer bytes moved but before any
  // worker merged them: resident inboxes, kernel state, and the ledger must
  // be exactly as before the aborted round, and the engine stays usable.
  class Flooder final : public StepKernel {
   public:
    std::vector<Message> step(const KernelCtx& ctx) override {
      if (!ctx.args.empty())
        return {{0, {1, 2, 3, 4, 5}}};  // 8 machines x 5 words > cap 16
      return {{(ctx.machine + 5) % ctx.numMachines, {ctx.machine + 7}}};
    }
  };
  RoundEngine eng(EngineConfig{8, 1, 4, 1, 1},
                  std::make_unique<MpcTopology>(16));
  const KernelId k =
      eng.registerKernel("test.flooder", [] { return std::make_unique<Flooder>(); });
  eng.step(k);
  const std::size_t wordsBefore = eng.totalWordsSent();
  const auto inboxesBefore = eng.snapshotInboxes();
  EXPECT_THROW(eng.step(k, {1}), CapacityError);
  EXPECT_EQ(eng.rounds(), 1u);
  EXPECT_EQ(eng.totalWordsSent(), wordsBefore);
  const auto inboxesAfter = eng.snapshotInboxes();
  ASSERT_EQ(inboxesBefore.size(), inboxesAfter.size());
  for (std::size_t m = 0; m < inboxesBefore.size(); ++m) {
    ASSERT_EQ(inboxesBefore[m].size(), inboxesAfter[m].size());
    for (std::size_t i = 0; i < inboxesBefore[m].size(); ++i) {
      EXPECT_EQ(inboxesBefore[m][i].src, inboxesAfter[m][i].src);
      EXPECT_EQ(inboxesBefore[m][i].payload, inboxesAfter[m][i].payload);
    }
  }
  eng.step(k);  // the workers survived the abort
  EXPECT_EQ(eng.rounds(), 2u);
}

TEST(PeerExchange, KernelThrowAbortsBeforeAnyPeerByteMoves) {
  // Phase-A failure: the coordinator's abort byte arrives before the mesh
  // exchange starts, so the round dies with no section shipped anywhere.
  class Thrower final : public StepKernel {
   public:
    std::vector<Message> step(const KernelCtx& ctx) override {
      if (!ctx.args.empty() && ctx.machine == 5)
        throw std::runtime_error("boom in shard");
      return {{(ctx.machine + 3) % ctx.numMachines, {ctx.machine}}};
    }
  };
  RoundEngine eng(EngineConfig{8, 1, 4, 1, 1},
                  std::make_unique<MpcTopology>(32));
  const KernelId k =
      eng.registerKernel("test.thrower", [] { return std::make_unique<Thrower>(); });
  eng.step(k);
  EXPECT_THROW(eng.step(k, {1}), std::runtime_error);
  EXPECT_EQ(eng.rounds(), 1u);
  eng.step(k);
  EXPECT_EQ(eng.rounds(), 2u);
}

TEST(PeerExchange, PeerDeathMidExchangeSurfacesShardErrorForAll) {
  // The injected fault (MPCSPAN_TEST_PEER_DIE_SHARD, read at worker fork)
  // kills shard 1 right after the phase-A go — mid mesh exchange from every
  // peer's point of view. Every other worker must observe the dead peer on
  // its mesh socket and exit, the engine must fail loudly (not hang), stay
  // failed, and reap every worker — no zombies, no partial inbox merge.
  ASSERT_EQ(::setenv("MPCSPAN_TEST_PEER_DIE_SHARD", "1", 1), 0);
  std::vector<pid_t> pids;
  {
    RoundEngine eng(EngineConfig{8, 1, 4, 1, 1},
                    std::make_unique<MpcTopology>(32));
    const KernelId k = eng.registerKernel(
        MeshProbeKernel::kernelName(),
        [] { return std::make_unique<MeshProbeKernel>(); });
    // Fork the workers on a round that does not reach the fault hook.
    std::vector<std::vector<Message>> out(8);
    out[0].push_back({7, {1}});
    eng.exchange(std::move(out));
    pids = eng.shardBackend()->workerPids();
    ASSERT_EQ(pids.size(), 4u);
    EXPECT_THROW(eng.step(k), ShardError);
    EXPECT_THROW(eng.step(k), ShardError);  // the backend stays failed
  }
  ASSERT_EQ(::unsetenv("MPCSPAN_TEST_PEER_DIE_SHARD"), 0);
  for (const pid_t pid : pids) {
    int st = 0;
    EXPECT_EQ(::waitpid(pid, &st, WNOHANG), -1) << "worker leaked: " << pid;
    EXPECT_EQ(errno, ECHILD);
  }
}

// --- The mesh transport itself, in-process. ---

TEST(PeerMesh, LargeFrameFullDuplexExchangeCompletes) {
  // Three "workers" (threads) exchange ~1.6 MB sections — far beyond any
  // AF_UNIX socket buffer — all sending and receiving concurrently. The
  // poll-multiplexed exchange must complete without any pairwise ordering
  // (a naive blocking send-then-recv schedule deadlocks here).
  constexpr std::size_t kWorkers = 3;
  constexpr std::size_t kWords = 200000;
  auto mesh = runtime::shard::makeMesh(kWorkers);
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(kWorkers);
  std::vector<std::vector<std::vector<Message>>> received(
      kWorkers, std::vector<std::vector<Message>>(kWorkers));
  for (std::size_t i = 0; i < kWorkers; ++i) {
    threads.emplace_back([&, i] {
      try {
        std::vector<WireWriter> sections(kWorkers);
        std::vector<std::uint64_t> counts(kWorkers, 0);
        for (std::size_t t = 0; t < kWorkers; ++t) {
          if (t == i) continue;
          std::vector<Word> pay(kWords);
          for (std::size_t w = 0; w < kWords; ++w) pay[w] = i * 1000 + t + w;
          sections[t].row(i, t, pay.data(), pay.size());
          counts[t] = 1;
        }
        auto frames =
            runtime::shard::meshExchange(mesh[i], i, counts, sections);
        for (std::size_t t = 0; t < kWorkers; ++t) {
          if (t == i) continue;
          const std::uint64_t count = frames[t].u64();
          ASSERT_EQ(count, 1u);
          mergeSectionRows(frames[t], count, t, t + 1, i, i + 1, received[i]);
        }
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (std::size_t i = 0; i < kWorkers; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
    for (std::size_t t = 0; t < kWorkers; ++t) {
      if (t == i) continue;
      ASSERT_EQ(received[i][t].size(), 1u) << i << " <- " << t;
      const Message& msg = received[i][t][0];
      EXPECT_EQ(msg.dst, i);
      ASSERT_EQ(msg.payload.size(), kWords);
      EXPECT_EQ(msg.payload[0], t * 1000 + i);
      EXPECT_EQ(msg.payload[kWords - 1], t * 1000 + i + kWords - 1);
    }
  }
}

// --- Corrupt section frames: rejected without integer overflow. ---

WireReader toReader(const WireWriter& w) {
  return WireReader::fromBytes(
      std::vector<std::uint8_t>(w.data(), w.data() + w.size()));
}

TEST(PeerSectionParse, ImplausibleRowCountRejectedWithoutOverflow) {
  std::vector<std::vector<Message>> projected(8);
  WireReader empty = WireReader::fromBytes({});
  EXPECT_THROW(mergeSectionRows(empty, ~std::uint64_t{0}, 0, 4, 4, 8, projected),
               ShardError);
  // A count whose byte requirement would wrap a 64-bit multiply.
  WireWriter w;
  w.u64(1);
  WireReader r = toReader(w);
  EXPECT_THROW(
      mergeSectionRows(r, (~std::uint64_t{0}) / 8, 0, 4, 4, 8, projected),
      ShardError);
  for (const auto& rows : projected) EXPECT_TRUE(rows.empty());
}

TEST(PeerSectionParse, ImplausiblePayloadLengthRejectedWithoutOverflow) {
  std::vector<std::vector<Message>> projected(8);
  WireWriter w;
  w.u64(0);                       // src
  w.u64(4);                       // dst
  w.u64(std::uint64_t{1} << 61);  // len: * sizeof(Word) would wrap
  WireReader r = toReader(w);
  EXPECT_THROW(mergeSectionRows(r, 1, 0, 4, 4, 8, projected), ShardError);
  for (const auto& rows : projected) EXPECT_TRUE(rows.empty());
}

TEST(PeerSectionParse, RowOutOfRangeRejectedBeforeAnyRowLands) {
  std::vector<std::vector<Message>> projected(8);
  const Word payload = 42;
  // First row valid, second row's src escapes the sender's shard range: the
  // vet pass must reject the whole section before row one is consumed.
  WireWriter w;
  w.row(1, 5, &payload, 1);
  w.row(6, 5, &payload, 1);
  WireReader r = toReader(w);
  EXPECT_THROW(mergeSectionRows(r, 2, 0, 4, 4, 8, projected), ShardError);
  for (const auto& rows : projected) EXPECT_TRUE(rows.empty());

  WireWriter w2;
  w2.row(1, 2, &payload, 1);  // dst outside the receiver's range
  WireReader r2 = toReader(w2);
  EXPECT_THROW(mergeSectionRows(r2, 1, 0, 4, 4, 8, projected), ShardError);
}

TEST(PeerSectionParse, TruncatedRowRejected) {
  std::vector<std::vector<Message>> projected(8);
  const Word payload = 7;
  WireWriter w;
  w.row(0, 4, &payload, 1);
  w.u64(1);  // a second row's src, then nothing
  WireReader r = toReader(w);
  EXPECT_THROW(mergeSectionRows(r, 2, 0, 4, 4, 8, projected), ShardError);
  for (const auto& rows : projected) EXPECT_TRUE(rows.empty());
}

TEST(PeerSectionParse, ValidSectionMergesInRowOrder) {
  std::vector<std::vector<Message>> projected(8);
  const Word a[3] = {10, 11, 12};
  const Word b = 20;
  WireWriter w;
  w.row(1, 6, a, 3);
  w.row(1, 4, &b, 1);
  w.row(3, 5, &b, 1);
  WireReader r = toReader(w);
  mergeSectionRows(r, 3, 0, 4, 4, 8, projected);
  ASSERT_EQ(projected[1].size(), 2u);
  EXPECT_EQ(projected[1][0].dst, 6u);
  EXPECT_EQ(projected[1][0].payload, (std::vector<Word>{10, 11, 12}));
  EXPECT_EQ(projected[1][1].dst, 4u);
  ASSERT_EQ(projected[3].size(), 1u);
  EXPECT_EQ(projected[3][0].dst, 5u);
  EXPECT_TRUE(r.atEnd());
}

// --- WireReader hardening (the raw cursor under wire-supplied sizes). ---

TEST(WireReader, WireSuppliedSizesCannotOverflow) {
  WireWriter w;
  w.u64(~std::uint64_t{0});  // a string/word-count length field of 2^64-1
  {
    WireReader r = toReader(w);
    EXPECT_THROW(r.str(), ShardError);
  }
  {
    WireReader r = toReader(w);
    std::vector<Word> out(1);
    (void)r.u64();
    EXPECT_THROW(r.words(out.data(), ~std::uint64_t{0} / 2), ShardError);
  }
  {
    WireReader r = WireReader::fromBytes({1, 2, 3});  // not even one u64
    EXPECT_THROW(r.u64(), ShardError);
  }
  {
    WireReader r = toReader(w);
    EXPECT_THROW(r.seek(9), ShardError);
    r.seek(8);
    EXPECT_TRUE(r.atEnd());
  }
}

}  // namespace
}  // namespace mpcspan
