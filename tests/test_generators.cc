#include "graph/generators.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"

namespace mpcspan {
namespace {

TEST(Generators, GnmProducesRequestedEdges) {
  Rng rng(1);
  const Graph g = gnmRandom(100, 300, rng);
  EXPECT_EQ(g.numVertices(), 100u);
  EXPECT_EQ(g.numEdges(), 300u);
}

TEST(Generators, GnmConnectedOverlayIsConnected) {
  Rng rng(2);
  const Graph g = gnmRandom(200, 100, rng, {}, /*connected=*/true);
  EXPECT_EQ(numComponents(g), 1u);
}

TEST(Generators, GnmCapsAtCompleteGraph) {
  Rng rng(3);
  const Graph g = gnmRandom(10, 10000, rng);
  EXPECT_EQ(g.numEdges(), 45u);
}

TEST(Generators, GnmDeterministicGivenSeed) {
  Rng a(7), b(7);
  const Graph ga = gnmRandom(64, 128, a);
  const Graph gb = gnmRandom(64, 128, b);
  ASSERT_EQ(ga.numEdges(), gb.numEdges());
  for (EdgeId i = 0; i < ga.numEdges(); ++i) EXPECT_EQ(ga.edge(i), gb.edge(i));
}

TEST(Generators, GnpMatchesExpectedDensity) {
  Rng rng(4);
  const Graph g = gnpRandom(400, 0.05, rng);
  const double expected = 0.05 * 400 * 399 / 2;
  EXPECT_NEAR(static_cast<double>(g.numEdges()), expected, 0.15 * expected);
}

TEST(Generators, GnpZeroAndOne) {
  Rng rng(5);
  EXPECT_EQ(gnpRandom(50, 0.0, rng).numEdges(), 0u);
  EXPECT_EQ(gnpRandom(20, 1.0, rng).numEdges(), 190u);
}

TEST(Generators, BarabasiAlbertConnectedWithHeavyTail) {
  Rng rng(6);
  const Graph g = barabasiAlbert(500, 3, rng);
  EXPECT_EQ(numComponents(g), 1u);
  std::size_t maxDeg = 0;
  for (VertexId v = 0; v < g.numVertices(); ++v)
    maxDeg = std::max(maxDeg, g.degree(v));
  // Preferential attachment yields hubs far above the mean degree (~6).
  EXPECT_GT(maxDeg, 20u);
}

TEST(Generators, Grid2dStructure) {
  Rng rng(8);
  const Graph g = grid2d(5, 4, rng);
  EXPECT_EQ(g.numVertices(), 20u);
  EXPECT_EQ(g.numEdges(), 4u * 4 + 5u * 3);  // horizontal + vertical
  EXPECT_EQ(numComponents(g), 1u);
}

TEST(Generators, TorusAddsWrapEdges) {
  Rng rng(9);
  const Graph g = grid2d(4, 4, rng, {}, /*torus=*/true);
  EXPECT_EQ(g.numEdges(), 2u * 16);  // 4-regular
  for (VertexId v = 0; v < g.numVertices(); ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, GeometricEdgesRespectRadius) {
  Rng rng(10);
  const Graph g = randomGeometric(300, 0.08, rng, /*euclideanWeights=*/true);
  for (const Edge& e : g.edges()) EXPECT_LE(e.w, 0.08 + 1e-5);
}

TEST(Generators, CyclePathStarComplete) {
  Rng rng(11);
  EXPECT_EQ(cycleGraph(10, rng).numEdges(), 10u);
  EXPECT_EQ(pathGraph(10, rng).numEdges(), 9u);
  EXPECT_EQ(starGraph(10, rng).numEdges(), 9u);
  EXPECT_EQ(completeGraph(10, rng).numEdges(), 45u);
  EXPECT_EQ(cycleGraph(2, rng).numEdges(), 1u);
  EXPECT_EQ(cycleGraph(1, rng).numEdges(), 0u);
}

TEST(Generators, HypercubeIsRegular) {
  Rng rng(12);
  const Graph g = hypercube(5, rng);
  EXPECT_EQ(g.numVertices(), 32u);
  for (VertexId v = 0; v < g.numVertices(); ++v) EXPECT_EQ(g.degree(v), 5u);
}

TEST(Generators, WeightModels) {
  Rng rng(13);
  WeightSpec unit;
  EXPECT_DOUBLE_EQ(drawWeight(unit, rng), 1.0);
  WeightSpec uni{WeightModel::kUniform, 50.0};
  WeightSpec integer{WeightModel::kInteger, 10.0};
  WeightSpec expo{WeightModel::kExponential, 100.0};
  for (int i = 0; i < 500; ++i) {
    const double u = drawWeight(uni, rng);
    EXPECT_GE(u, 1.0);
    EXPECT_LT(u, 50.0);
    const double z = drawWeight(integer, rng);
    EXPECT_EQ(z, std::floor(z));
    EXPECT_GE(z, 1.0);
    EXPECT_LE(z, 10.0);
    EXPECT_GE(drawWeight(expo, rng), 1.0);
  }
}

class FamilyTest : public ::testing::TestWithParam<Family> {};

TEST_P(FamilyTest, ProducesNonTrivialGraph) {
  Rng rng(14);
  const Graph g = makeFamily(GetParam(), 256, 6.0, rng);
  EXPECT_GT(g.numVertices(), 0u);
  EXPECT_GT(g.numEdges(), 0u);
  EXPECT_TRUE(g.isUnweighted());
}

TEST_P(FamilyTest, WeightedVariant) {
  Rng rng(15);
  const Graph g = makeFamily(GetParam(), 128, 6.0, rng,
                             {WeightModel::kUniform, 10.0});
  bool anyNonUnit = false;
  for (const Edge& e : g.edges()) anyNonUnit |= e.w != 1.0;
  EXPECT_TRUE(anyNonUnit);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, FamilyTest,
    ::testing::Values(Family::kGnm, Family::kBarabasiAlbert, Family::kGrid,
                      Family::kGeometric, Family::kCycle, Family::kHypercube,
                      Family::kComplete),
    [](const auto& info) {
      std::string name = familyName(info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(Generators, WattsStrogatzRingAtBetaZero) {
  Rng rng(16);
  const Graph g = wattsStrogatz(100, 4, 0.0, rng);
  EXPECT_EQ(g.numEdges(), 200u);  // n * nearest / 2
  for (VertexId v = 0; v < g.numVertices(); ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(Generators, WattsStrogatzRewiringChangesStructure) {
  Rng a(17), b(17);
  const Graph ring = wattsStrogatz(200, 6, 0.0, a);
  const Graph rewired = wattsStrogatz(200, 6, 0.5, b);
  // Rewiring keeps the edge count close but breaks the lattice: some edge
  // must leave the +-3 ring band.
  EXPECT_NEAR(double(rewired.numEdges()), double(ring.numEdges()),
              0.1 * double(ring.numEdges()));
  bool anyLong = false;
  for (const Edge& e : rewired.edges()) {
    const std::size_t gap = std::min<std::size_t>(e.v - e.u, 200 - (e.v - e.u));
    anyLong |= gap > 3;
  }
  EXPECT_TRUE(anyLong);
}

TEST(Generators, WattsStrogatzOddNearestRoundsUp) {
  Rng rng(18);
  const Graph g = wattsStrogatz(60, 3, 0.0, rng);  // -> nearest = 4
  EXPECT_EQ(g.numEdges(), 120u);
}

TEST(Generators, WattsStrogatzTinyGraphFallsBackToCycle) {
  Rng rng(19);
  const Graph g = wattsStrogatz(4, 4, 0.2, rng);
  EXPECT_EQ(g.numEdges(), 4u);
}

TEST(Generators, FamilyNamesAreDistinct) {
  EXPECT_STRNE(familyName(Family::kGnm), familyName(Family::kGrid));
  EXPECT_STREQ(familyName(Family::kBarabasiAlbert), "barabasi-albert");
}

}  // namespace
}  // namespace mpcspan
