#include "spanner/baswana_sen.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spanner/verify.hpp"

namespace mpcspan {
namespace {

TEST(BaswanaSen, StretchBoundIs2kMinus1) {
  Rng rng(1);
  const Graph g = gnmRandom(100, 300, rng, {}, true);
  for (std::uint32_t k : {2u, 3u, 5u}) {
    const auto r = buildBaswanaSen(g, {.k = k, .seed = 1});
    EXPECT_DOUBLE_EQ(r.stretchBound, 2.0 * k - 1.0);
  }
}

TEST(BaswanaSen, FullEdgeAuditUnweighted) {
  Rng rng(2);
  const Graph g = gnmRandom(256, 1200, rng, {}, true);
  for (std::uint32_t k : {2u, 3u, 4u}) {
    const auto r = buildBaswanaSen(g, {.k = k, .seed = 7});
    const auto report = verifySpanner(g, r.edges, r.stretchBound);
    EXPECT_TRUE(report.spanning);
    EXPECT_EQ(report.violations, 0u) << "k=" << k << " maxStretch=" << report.maxEdgeStretch;
    EXPECT_LE(report.maxEdgeStretch, 2.0 * k - 1.0 + 1e-9);
  }
}

TEST(BaswanaSen, FullEdgeAuditWeighted) {
  Rng rng(3);
  const Graph g =
      gnmRandom(256, 1200, rng, {WeightModel::kUniform, 100.0}, true);
  for (std::uint32_t k : {2u, 4u}) {
    const auto r = buildBaswanaSen(g, {.k = k, .seed = 11});
    const auto report = verifySpanner(g, r.edges, r.stretchBound);
    EXPECT_TRUE(report.spanning);
    EXPECT_EQ(report.violations, 0u) << "k=" << k;
  }
}

TEST(BaswanaSen, SizeNearTheoreticalBound) {
  Rng rng(4);
  const std::size_t n = 2000;
  const Graph g = gnmRandom(n, 20000, rng, {WeightModel::kUniform, 10.0}, true);
  for (std::uint32_t k : {2u, 3u, 4u, 6u}) {
    const auto r = buildBaswanaSen(g, {.k = k, .seed = 5});
    // E[size] = O(k * n^{1+1/k}); allow generous constant 4.
    const double bound = 4.0 * k *
                         std::pow(static_cast<double>(n),
                                  1.0 + 1.0 / static_cast<double>(k));
    EXPECT_LT(static_cast<double>(r.edges.size()), bound) << "k=" << k;
    // A spanner is never larger than the graph.
    EXPECT_LE(r.edges.size(), g.numEdges());
  }
}

TEST(BaswanaSen, IterationCountIsKMinus1) {
  Rng rng(5);
  const Graph g = gnmRandom(200, 800, rng, {}, true);
  for (std::uint32_t k : {2u, 5u, 9u}) {
    const auto r = buildBaswanaSen(g, {.k = k, .seed = 2});
    EXPECT_EQ(r.iterations, static_cast<std::size_t>(k - 1));
    EXPECT_EQ(r.epochs, 1u);
  }
}

TEST(BaswanaSen, SparsifiesDenseGraphs) {
  Rng rng(6);
  const Graph g = completeGraph(128, rng, {WeightModel::kUniform, 4.0});
  const auto r = buildBaswanaSen(g, {.k = 3, .seed = 3});
  // K_128 has 8128 edges; a 5-spanner should be far smaller.
  EXPECT_LT(r.edges.size(), g.numEdges() / 3);
  const auto report = verifySpanner(g, r.edges, r.stretchBound,
                                    {.maxEdgeChecks = 2000, .pairSources = 4});
  EXPECT_TRUE(report.spanning);
  EXPECT_EQ(report.violations, 0u);
}

TEST(BaswanaSen, TreePreservedExactly) {
  // On a tree every edge is a bridge, so the spanner must contain all edges.
  Rng rng(7);
  const Graph g = pathGraph(64, rng, {WeightModel::kUniform, 9.0});
  const auto r = buildBaswanaSen(g, {.k = 4, .seed = 9});
  EXPECT_EQ(r.edges.size(), g.numEdges());
}

TEST(BaswanaSen, HighGirthCycleKeepsAllEdgesForSmallK) {
  // A long cycle has girth n; for 2k-1 < n-1 no edge can be dropped.
  Rng rng(8);
  const Graph g = cycleGraph(100, rng);
  const auto r = buildBaswanaSen(g, {.k = 3, .seed = 4});
  EXPECT_EQ(r.edges.size(), g.numEdges());
}

}  // namespace
}  // namespace mpcspan
