#include "spanner/cluster_merging.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spanner/verify.hpp"

namespace mpcspan {
namespace {

TEST(ClusterMerging, RunsLogKEpochsOfOneIteration) {
  Rng rng(1);
  const Graph g = gnmRandom(400, 1600, rng, {}, true);
  for (std::uint32_t k : {4u, 8u, 16u, 32u}) {
    const auto r = buildClusterMergingSpanner(g, {.k = k, .seed = 1});
    const auto expected =
        static_cast<std::size_t>(std::ceil(std::log2(static_cast<double>(k))));
    EXPECT_EQ(r.epochs, expected) << "k=" << k;
    EXPECT_EQ(r.iterations, expected);
    EXPECT_EQ(r.t, 1u);
  }
}

TEST(ClusterMerging, RadiusMatchesSection4) {
  // Theorem 4.8: radius (3^i - 1)/2 after i epochs.
  Rng rng(2);
  const Graph g = gnmRandom(300, 1500, rng, {}, true);
  const auto r = buildClusterMergingSpanner(g, {.k = 16, .seed = 2});
  EXPECT_DOUBLE_EQ(r.finalRadius,
                   (std::pow(3.0, static_cast<double>(r.epochs)) - 1.0) / 2.0);
}

TEST(ClusterMerging, CertifiedStretchHolds) {
  Rng rng(3);
  const Graph g = gnmRandom(400, 2000, rng, {WeightModel::kUniform, 20.0}, true);
  const auto r = buildClusterMergingSpanner(g, {.k = 8, .seed = 3});
  const auto report = verifySpanner(g, r.edges, r.stretchBound);
  EXPECT_TRUE(report.spanning);
  EXPECT_EQ(report.violations, 0u) << "max stretch " << report.maxEdgeStretch
                                   << " vs bound " << r.stretchBound;
}

TEST(ClusterMerging, StretchNearKlog3NotWorse) {
  // The paper's asymptotic stretch is k^{log2 3}; the certified per-run
  // bound 4r+2+chain is a constant factor above it. Check the relationship.
  Rng rng(4);
  const Graph g = gnmRandom(300, 1200, rng, {}, true);
  for (std::uint32_t k : {4u, 16u, 64u}) {
    const auto r = buildClusterMergingSpanner(g, {.k = k, .seed = 4});
    const double klog3 = std::pow(static_cast<double>(k), std::log2(3.0));
    EXPECT_LE(r.stretchBound, 8.0 * klog3 + 10.0) << "k=" << k;
  }
}

TEST(ClusterMerging, SamplingProbsFollowDoubleExponential) {
  Rng rng(5);
  const Graph g = gnmRandom(500, 2000, rng, {}, true);
  const auto r = buildClusterMergingSpanner(g, {.k = 16, .seed = 5});
  const double n = static_cast<double>(g.numVertices());
  ASSERT_EQ(r.samplingProbs.size(), r.epochs);
  for (std::size_t i = 0; i < r.epochs; ++i)
    EXPECT_NEAR(r.samplingProbs[i],
                std::pow(n, -std::pow(2.0, static_cast<double>(i)) / 16.0), 1e-12);
}

TEST(ClusterMerging, DenseGraphSizeWithinBound) {
  Rng rng(6);
  const std::size_t n = 1024;
  const Graph g = gnmRandom(n, 16000, rng, {WeightModel::kUniform, 5.0}, true);
  for (std::uint32_t k : {4u, 8u}) {
    const auto r = buildClusterMergingSpanner(g, {.k = k, .seed = 6});
    const double logk = std::log2(static_cast<double>(k));
    const double bound =
        6.0 * std::pow(static_cast<double>(n), 1.0 + 1.0 / k) * (logk + 1.0);
    EXPECT_LT(static_cast<double>(r.edges.size()), bound) << "k=" << k;
  }
}

}  // namespace
}  // namespace mpcspan
