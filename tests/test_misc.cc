// Remaining corners: the logging facility, clique traffic accounting,
// oracle behaviour on disconnected inputs, and format edge cases.
#include <gtest/gtest.h>

#include "apsp/oracle.hpp"
#include "cclique/clique.hpp"
#include "graph/builder.hpp"
#include "graph/distance.hpp"
#include "graph/generators.hpp"
#include "spanner/baswana_sen.hpp"
#include "util/log.hpp"

namespace mpcspan {
namespace {

TEST(Log, LevelRoundTrips) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::kDebug);
  EXPECT_EQ(logLevel(), LogLevel::kDebug);
  setLogLevel(LogLevel::kOff);
  EXPECT_EQ(logLevel(), LogLevel::kOff);
  // Below-threshold messages are suppressed (smoke: must not crash).
  MPCSPAN_DEBUG("suppressed %d", 42);
  setLogLevel(before);
}

TEST(Log, FormatterHandlesArguments) {
  const std::string s = detail::formatLog("x=%d y=%s", 7, "ok");
  EXPECT_EQ(s, "x=7 y=ok");
  EXPECT_EQ(detail::formatLog("plain"), "plain");
}

TEST(CongestedClique, TrafficAccounting) {
  CongestedClique cc(6);
  cc.directRound({{0, 1, {9}}, {2, 3, {9}}});
  EXPECT_EQ(cc.totalWords(), 2u);
  cc.lenzenRoute(std::vector<std::size_t>(6, 3), std::vector<std::size_t>(6, 3));
  EXPECT_EQ(cc.totalWords(), 2u + 18u);
  cc.broadcastRound();
  EXPECT_EQ(cc.rounds(), 1u + 2u + 1u);
}

TEST(Oracle, DisconnectedQueriesAreInfinite) {
  GraphBuilder b(6);
  b.addEdge(0, 1, 2.0);
  b.addEdge(2, 3, 2.0);
  const Graph g = b.build();
  auto spanner = buildBaswanaSen(g, {.k = 2, .seed = 1});
  SpannerDistanceOracle oracle(g, std::move(spanner));
  EXPECT_EQ(oracle.query(0, 3), kInfDist);
  EXPECT_EQ(oracle.query(4, 5), kInfDist);
  EXPECT_DOUBLE_EQ(oracle.query(0, 1), 2.0);
}

TEST(Oracle, DistancesFromReturnsStableRow) {
  Rng rng(2);
  const Graph g = gnmRandom(60, 200, rng, {}, true);
  auto spanner = buildBaswanaSen(g, {.k = 2, .seed = 2});
  SpannerDistanceOracle oracle(g, std::move(spanner));
  const auto d1 = oracle.distancesFrom(3);
  const auto d2 = oracle.distancesFrom(3);  // cached
  EXPECT_EQ(d1.get(), d2.get());
  EXPECT_DOUBLE_EQ((*d1)[3], 0.0);
  EXPECT_GE(oracle.cacheHits(), 1u);
}

TEST(Generators, MakeFamilyGeometricWeighted) {
  Rng rng(3);
  const Graph g = makeFamily(Family::kGeometric, 400, 8.0, rng,
                             {WeightModel::kUniform, 10.0});
  EXPECT_GT(g.numEdges(), 0u);
  EXPECT_FALSE(g.isUnweighted());  // Euclidean weights
}

TEST(Generators, GnmConnectedAtFullDensityTerminates) {
  // Regression for the fuzz-found hang: connected overlay + m = maxEdges.
  Rng rng(4);
  const Graph g = gnmRandom(12, 66, rng, {}, /*connected=*/true);
  EXPECT_EQ(g.numEdges(), 66u);  // complete graph
}

}  // namespace
}  // namespace mpcspan
