#include "graph/distance.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mpcspan {
namespace {

Graph diamond() {
  // 0-1 (1), 0-2 (4), 1-2 (1), 2-3 (1), 1-3 (5)
  GraphBuilder b(4);
  b.addEdge(0, 1, 1.0);
  b.addEdge(0, 2, 4.0);
  b.addEdge(1, 2, 1.0);
  b.addEdge(2, 3, 1.0);
  b.addEdge(1, 3, 5.0);
  return b.build();
}

TEST(Dijkstra, KnownDistances) {
  const Graph g = diamond();
  const auto d = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);  // via 1
  EXPECT_DOUBLE_EQ(d[3], 3.0);  // via 1,2
}

TEST(Dijkstra, UnreachableIsInfinite) {
  GraphBuilder b(3);
  b.addEdge(0, 1, 1.0);
  const auto d = dijkstra(b.build(), 0);
  EXPECT_EQ(d[2], kInfDist);
}

TEST(Dijkstra, BoundedCutsOff) {
  const Graph g = diamond();
  const auto d = dijkstraBounded(g, 0, 2.0);
  EXPECT_DOUBLE_EQ(d[2], 2.0);
  EXPECT_EQ(d[3], kInfDist);
}

TEST(Dijkstra, PairQueryMatchesFull) {
  Rng rng(3);
  const Graph g = gnmRandom(120, 400, rng, {WeightModel::kUniform, 10.0}, true);
  const auto d = dijkstra(g, 5);
  for (VertexId v : {0u, 10u, 60u, 119u})
    EXPECT_DOUBLE_EQ(dijkstraPair(g, 5, v), d[v]);
}

TEST(Dijkstra, PairQueryRespectsBound) {
  const Graph g = diamond();
  EXPECT_EQ(dijkstraPair(g, 0, 3, 2.0), kInfDist);
  EXPECT_DOUBLE_EQ(dijkstraPair(g, 0, 3, 10.0), 3.0);
  EXPECT_DOUBLE_EQ(dijkstraPair(g, 2, 2), 0.0);
}

TEST(Bfs, HopDistances) {
  Rng rng(4);
  const Graph g = pathGraph(6, rng);
  const auto h = bfsHops(g, 0);
  for (std::uint32_t v = 0; v < 6; ++v) EXPECT_EQ(h[v], v);
}

TEST(Bfs, MatchesDijkstraOnUnweighted) {
  Rng rng(5);
  const Graph g = gnmRandom(200, 600, rng, {}, true);
  const auto h = bfsHops(g, 17);
  const auto d = dijkstra(g, 17);
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    if (h[v] == kInfHops)
      EXPECT_EQ(d[v], kInfDist);
    else
      EXPECT_DOUBLE_EQ(d[v], static_cast<double>(h[v]));
  }
}

TEST(MultiSourceBfs, NearestSourceAndParents) {
  Rng rng(6);
  const Graph g = pathGraph(10, rng);
  const auto ms = multiSourceBfs(g, {0, 9});
  EXPECT_EQ(ms.hops[0], 0u);
  EXPECT_EQ(ms.hops[9], 0u);
  EXPECT_EQ(ms.source[2], 0u);
  EXPECT_EQ(ms.source[8], 9u);
  EXPECT_EQ(ms.hops[4], 4u);
  // Parent pointers walk back to the claimed source.
  VertexId cur = 6;
  while (ms.parentEdge[cur] != kNoEdge) cur = g.opposite(ms.parentEdge[cur], cur);
  EXPECT_EQ(cur, ms.source[6]);
}

TEST(MultiSourceBfs, DepthLimit) {
  Rng rng(7);
  const Graph g = pathGraph(10, rng);
  const auto ms = multiSourceBfs(g, {0}, 3);
  EXPECT_EQ(ms.hops[3], 3u);
  EXPECT_EQ(ms.hops[4], kInfHops);
  EXPECT_EQ(ms.source[4], kNoVertex);
}

TEST(BfsBall, CompleteWhenSmall) {
  Rng rng(8);
  const Graph g = cycleGraph(10, rng);
  const BfsBall ball = bfsBall(g, 0, 10, 100);
  EXPECT_TRUE(ball.complete);
  EXPECT_EQ(ball.vertices.size(), 10u);
}

TEST(BfsBall, CapsAtMaxVertices) {
  Rng rng(9);
  const Graph g = starGraph(100, rng);
  const BfsBall ball = bfsBall(g, 0, 2, 10);
  EXPECT_FALSE(ball.complete);
  EXPECT_LE(ball.vertices.size(), 10u);
}

TEST(BfsBall, RespectsHopLimit) {
  Rng rng(10);
  const Graph g = pathGraph(20, rng);
  const BfsBall ball = bfsBall(g, 0, 3, 1000);
  EXPECT_TRUE(ball.complete);
  EXPECT_EQ(ball.vertices.size(), 4u);  // 0,1,2,3
}

TEST(AllPairs, SymmetricAndConsistent) {
  Rng rng(11);
  const Graph g = gnmRandom(60, 150, rng, {WeightModel::kUniform, 5.0}, true);
  const auto ap = allPairs(g);
  for (VertexId u = 0; u < g.numVertices(); u += 7)
    for (VertexId v = 0; v < g.numVertices(); v += 11) {
      EXPECT_DOUBLE_EQ(ap[u][v], ap[v][u]);
      EXPECT_GE(ap[u][v], 0.0);
    }
  // Triangle inequality on a few triples.
  EXPECT_LE(ap[0][2], ap[0][1] + ap[1][2] + 1e-9);
}

}  // namespace
}  // namespace mpcspan
