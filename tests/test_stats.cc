#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/table.hpp"

namespace mpcspan {
namespace {

TEST(Stats, EmptySampleIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

TEST(Stats, SingleElement) {
  const Summary s = summarize({4.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 4.5);
  EXPECT_DOUBLE_EQ(s.min, 4.5);
  EXPECT_DOUBLE_EQ(s.max, 4.5);
  EXPECT_DOUBLE_EQ(s.p50, 4.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, KnownSample) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> sorted{0, 10};
  EXPECT_DOUBLE_EQ(percentileSorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentileSorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentileSorted(sorted, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentileSorted(sorted, 0.25), 2.5);
}

TEST(Stats, PercentileHandlesUnsortedInputViaSummarize) {
  const Summary s = summarize({9, 1, 5, 3, 7});
  EXPECT_DOUBLE_EQ(s.p50, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
  EXPECT_NEAR(geometricMean({2, 8}), 4.0, 1e-12);
  EXPECT_NEAR(geometricMean({1, 1, 1}), 1.0, 1e-12);
}

TEST(Table, FormatsNumbers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
  EXPECT_EQ(Table::num(7), "7");
}

TEST(Table, PrintsHeaderAndRows) {
  Table t("demo");
  t.header({"a", "bb"});
  t.addRow({"1", "2"});
  t.addRow({"333", "4"});
  // Smoke: render to a temp file and check content shape.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.print(f);
  std::rewind(f);
  char buf[512] = {0};
  const std::size_t got = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const std::string s(buf, got);
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("| a "), std::string::npos);
}

}  // namespace
}  // namespace mpcspan
